// Command paperbench regenerates the tables and figures of the paper's
// evaluation on the simulated machine and prints measured-vs-paper
// results.
//
// Usage:
//
//	paperbench -experiment all
//	paperbench -experiment table1
//	paperbench -experiment fig3 -csv fig3.csv
//	paperbench -experiment table4 -repeats 3
//	paperbench -experiment table6 -telemetry table6.telemetry.jsonl
//	paperbench -phase-replay run.samples
//
// Experiments: table1 table2 table3 fig1 fig2 fig3 fig4 table4 table5
// table6 table7 coldstart overhead dutycycle ablation-policy
// ablation-mechanism powercap all.
//
// -phase-replay bypasses the experiments entirely: it decodes a text
// sample stream (one "power bw conc" triple per line, # comments
// allowed) and replays it through the adaptive policy's change-point
// detector, printing every detected phase boundary.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/compiler"
	"repro/internal/experiments"
	"repro/internal/maestro/phase"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (see command doc)")
		csvPath    = flag.String("csv", "", "also write the result as CSV to this file (tables and figures only)")
		repeats    = flag.Int("repeats", 1, "runs per configuration, keeping the best time (the paper uses 10)")
		seed       = flag.Int64("seed", 42, "workload input seed")
		telePath   = flag.String("telemetry", "", "write a per-run telemetry sidecar (JSONL of metrics + decision journal) to this file")
		replayPath = flag.String("phase-replay", "", "replay a telemetry sample file (lines of 'power bw conc') through the phase detector and print the change points, instead of running experiments")
	)
	flag.Parse()

	if *replayPath != "" {
		if err := replayPhases(*replayPath); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		return
	}

	lab := experiments.NewLab()
	lab.Repeats = *repeats
	lab.Seed = *seed

	var sidecar *experiments.SidecarWriter
	if *telePath != "" {
		f, err := os.Create(*telePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		sidecar = experiments.NewSidecarWriter(f)
		lab.Telemetry = sidecar.Record
	}

	if err := run(lab, *experiment, *csvPath); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
	if sidecar != nil {
		if err := sidecar.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
	}
}

func run(lab *experiments.Lab, experiment, csvPath string) error {
	all := experiment == "all"
	matched := false
	emitCSV := func(result interface{ WriteCSV(w *os.File) error }) error {
		if csvPath == "" || all {
			return nil
		}
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		return result.WriteCSV(f)
	}

	type tableFn func() (experiments.TableResult, error)
	tables := []struct {
		name string
		fn   tableFn
	}{
		{"table1", lab.TableI},
		{"table2", lab.TableII},
		{"table3", lab.TableIII},
	}
	for _, tb := range tables {
		name, fn := tb.name, tb.fn
		if !all && experiment != name {
			continue
		}
		matched = true
		res, err := fn()
		if err != nil {
			return err
		}
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if err := emitCSV(csvAdapter{table: &res}); err != nil {
			return err
		}
	}

	type figFn func() (experiments.FigureResult, error)
	figures := []struct {
		name string
		fn   figFn
	}{
		{"fig1", lab.Figure1},
		{"fig2", lab.Figure2},
		{"fig3", lab.Figure3},
		{"fig4", lab.Figure4},
	}
	for _, fg := range figures {
		name, fn := fg.name, fg.fn
		if !all && experiment != name {
			continue
		}
		matched = true
		res, err := fn()
		if err != nil {
			return err
		}
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if err := emitCSV(csvAdapter{fig: &res}); err != nil {
			return err
		}
	}

	throttleTables := []struct {
		name string
		app  string
	}{
		{"table4", compiler.AppLULESH},
		{"table5", compiler.AppDijkstra},
		{"table6", compiler.AppHealth},
		{"table7", compiler.AppStrassen},
	}
	for _, tt := range throttleTables {
		name, app := tt.name, tt.app
		if !all && experiment != name {
			continue
		}
		matched = true
		res, err := lab.ThrottleTable(app)
		if err != nil {
			return err
		}
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	if all || experiment == "coldstart" {
		matched = true
		res, err := lab.ColdStart()
		if err != nil {
			return err
		}
		fmt.Printf("Cold start (%s): cold %.0f J / %.1f W vs warm %.0f J / %.1f W — first run saves %.1f%% (paper: 3.2%%)\n\n",
			res.App, res.ColdJoules, res.ColdWatts, res.WarmJoules, res.WarmWatts, res.SavingPct)
	}
	if all || experiment == "overhead" {
		matched = true
		rows, err := lab.ThrottleOverhead()
		if err != nil {
			return err
		}
		fmt.Println("MAESTRO overhead on well-scaling applications (paper: never throttles, <= 0.6%):")
		for _, r := range rows {
			fmt.Printf("  %-24s fixed %6.2fs  dynamic %6.2fs  overhead %5.2f%%  activations %d\n",
				r.App, r.FixedSec, r.DynamicSec, r.OverheadPct, r.Activations)
		}
		fmt.Println()
	}
	if all || experiment == "dutycycle" {
		matched = true
		res, err := lab.DutyCycleSavings()
		if err != nil {
			return err
		}
		fmt.Printf("Duty-cycle savings: 16 active %.1f W vs 12 active + 4 throttled %.1f W — saves %.1f W (paper: >12 W)\n\n",
			float64(res.FullPower), float64(res.ThrottledPower), float64(res.Saving))
	}

	if all || experiment == "ablation-policy" {
		matched = true
		rows, err := lab.PolicyAblation()
		if err != nil {
			return err
		}
		fmt.Println("Policy ablation: dual-condition (paper) vs power-only gating (§IV-A) vs adaptive (phase model):")
		for _, r := range rows {
			fmt.Printf("  %-24s baseline %6.2fs/%6.0fJ  dual %6.2fs/%6.0fJ (%+5.1f%%)  power-only %6.2fs/%6.0fJ (%+5.1f%%)  adaptive %6.2fs/%6.0fJ (%+5.1f%%)\n",
				r.App, r.Baseline.Seconds, r.Baseline.Joules,
				r.Dual.Seconds, r.Dual.Joules, r.DualDeltaE,
				r.PowerOnly.Seconds, r.PowerOnly.Joules, r.PowerDeltaE,
				r.Adaptive.Seconds, r.Adaptive.Joules, r.AdaptiveDeltaE)
		}
		fmt.Println()
	}
	if all || experiment == "ablation-mechanism" {
		matched = true
		rows, err := lab.MechanismAblation()
		if err != nil {
			return err
		}
		fmt.Println("Mechanism ablation: duty-cycle concurrency throttling vs socket-wide DVFS (§IV):")
		for _, r := range rows {
			fmt.Printf("  %-24s (gear %.2f) baseline %6.2fs/%6.0fJ  duty %6.2fs/%6.0fJ  dvfs %6.2fs/%6.0fJ\n",
				r.App, r.Gear, r.Baseline.Seconds, r.Baseline.Joules,
				r.DutyCycle.Seconds, r.DutyCycle.Joules,
				r.DVFS.Seconds, r.DVFS.Joules)
		}
		fmt.Println()
	}
	if all || experiment == "powercap" {
		matched = true
		res, err := lab.PowerCapStudy(120)
		if err != nil {
			return err
		}
		fmt.Printf("Power capping (%s): uncapped %.1f W / %.2f s -> capped@%.0f W %.1f W / %.2f s (tightenings %d, min limit %d)\n\n",
			res.App, res.Uncapped.Watts, res.Uncapped.Seconds, float64(res.Cap),
			res.Capped.Watts, res.Capped.Seconds, res.CapStats.Tightenings, res.CapStats.MinLimit)
	}

	if !matched {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}

// replayPhases runs a recorded sample stream through the offline phase
// detector — the same detector the adaptive policy runs live — and
// prints each detected change point with the sample that fired it.
func replayPhases(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	samples, err := phase.DecodeSamples(f)
	if err != nil {
		return err
	}
	marks := phase.Replay(samples, phase.Config{})
	fmt.Printf("%s: %d samples, %d change point(s)\n", path, len(samples), len(marks))
	for _, i := range marks {
		s := samples[i]
		fmt.Printf("  sample %6d: power %8.1f W  bw %12.3e B/s  conc %8.1f\n", i, s.Power, s.Bw, s.Conc)
	}
	return nil
}

// csvAdapter lets either result kind satisfy the emitCSV shape.
type csvAdapter struct {
	table *experiments.TableResult
	fig   *experiments.FigureResult
}

func (a csvAdapter) WriteCSV(w *os.File) error {
	if a.table != nil {
		return a.table.WriteCSV(w)
	}
	return a.fig.WriteCSV(w)
}
