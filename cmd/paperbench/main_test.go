package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

func TestRunUnknownExperiment(t *testing.T) {
	lab := experiments.NewLab()
	if err := run(lab, "bogus", ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunDutyCycle(t *testing.T) {
	lab := experiments.NewLab()
	if err := run(lab, "dutycycle", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunColdStart(t *testing.T) {
	lab := experiments.NewLab()
	if err := run(lab, "coldstart", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunTableWithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("table sweep in -short mode")
	}
	lab := experiments.NewLab()
	csvPath := filepath.Join(t.TempDir(), "t1.csv")
	if err := run(lab, "table1", csvPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("CSV file is empty")
	}
}
