// Command energymeter runs one benchmark of the paper's suite on the
// simulated machine under the task runtime, bracketed in an RCR
// measurement region, and prints the region report — elapsed time,
// Joules, average Watts and per-socket temperatures — like the
// RCRdaemon's region API (paper §II-B).
//
// Usage:
//
//	energymeter -app lulesh
//	energymeter -app dijkstra -compiler icc -opt 3 -threads 8
//	energymeter -app bots-strassen-cutoff -throttle
//	energymeter -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/qthreads"
	"repro/internal/workloads"
	"repro/internal/workloads/suite"
)

func main() {
	var (
		app      = flag.String("app", "lulesh", "benchmark to run (-list to enumerate)")
		comp     = flag.String("compiler", "gcc", "modeled compiler: gcc or icc")
		opt      = flag.Int("opt", 2, "modeled optimization level 0-3")
		threads  = flag.Int("threads", 16, "worker threads")
		scale    = flag.Float64("scale", 1, "input scale relative to the paper's")
		throttle = flag.Bool("throttle", false, "enable MAESTRO adaptive concurrency throttling")
		spin     = flag.Bool("spin", false, "spin-only idle policy (Qthreads/MAESTRO behaviour)")
		list     = flag.Bool("list", false, "list available benchmarks and exit")
		traceCSV = flag.String("trace", "", "write the scheduler event trace as CSV to this file")
		histCSV  = flag.String("history", "", "write the power/concurrency timeline as CSV to this file")
	)
	flag.Parse()

	if *list {
		for _, n := range suite.Names() {
			fmt.Println(n)
		}
		return
	}
	if err := run(*app, *comp, *opt, *threads, *scale, *throttle, *spin, *traceCSV, *histCSV); err != nil {
		fmt.Fprintln(os.Stderr, "energymeter:", err)
		os.Exit(1)
	}
}

func run(app, comp string, opt, threads int, scale float64, throttle, spin bool, traceCSV, histCSV string) error {
	target := compiler.Target{Opt: compiler.OptLevel(opt) + compiler.O0}
	switch comp {
	case "gcc":
		target.Compiler = compiler.GCC
	case "icc":
		target.Compiler = compiler.ICC
	default:
		return fmt.Errorf("unknown compiler %q (gcc or icc)", comp)
	}
	if opt < 0 || opt > 3 {
		return fmt.Errorf("optimization level %d out of range 0-3", opt)
	}

	wl, err := suite.New(app)
	if err != nil {
		return err
	}
	mcfg := machine.M620()
	if err := wl.Prepare(workloads.Params{MachineConfig: mcfg, Target: target, Scale: scale}); err != nil {
		return err
	}

	qcfg := qthreads.DefaultConfig()
	qcfg.SpinOnlyIdle = spin || throttle
	var rec *qthreads.Recorder
	if traceCSV != "" {
		rec = qthreads.NewRecorder(0)
		qcfg.Tracer = rec
	}
	sys, err := core.New(core.Options{
		Machine:            mcfg,
		Workers:            threads,
		Qthreads:           qcfg,
		AdaptiveThrottling: throttle,
		RecordHistory:      histCSV != "",
		Warm:               true,
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	fmt.Printf("running %s (%v, %d threads, scale %g) on the simulated M620...\n", app, target, threads, scale)
	rep, err := sys.RunWorkload(wl)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	if paper, ok := compiler.PaperEntry(app, target); ok && threads == 16 && scale == 1 {
		fmt.Printf("paper (16 threads): %.1f s, %.0f J, %.1f W\n", paper.Seconds, paper.Joules, paper.Watts)
	}
	if stats, ok := sys.Throttling(); ok {
		fmt.Printf("maestro: %d samples, %d activations, %d deactivations, throttled %.2f s\n",
			stats.Samples, stats.Activations, stats.Deactivations, stats.ThrottledTime.Seconds())
	}
	if rec != nil {
		if err := writeCSVFile(traceCSV, rec.WriteCSV); err != nil {
			return err
		}
		fmt.Printf("scheduler trace (%d events) written to %s\n", len(rec.Events()), traceCSV)
	}
	if histCSV != "" {
		if err := writeCSVFile(histCSV, sys.History().WriteCSV); err != nil {
			return err
		}
		fmt.Printf("power timeline (%d samples) written to %s\n", sys.History().Len(), histCSV)
	}
	return nil
}

// writeCSVFile creates path and streams a CSV writer into it.
func writeCSVFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}
