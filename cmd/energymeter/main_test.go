package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run("nqueens", "tcc", 2, 8, 1, false, false, "", ""); err == nil {
		t.Error("unknown compiler accepted")
	}
	if err := run("nqueens", "gcc", 7, 8, 1, false, false, "", ""); err == nil {
		t.Error("bad optimization level accepted")
	}
	if err := run("bogus-app", "gcc", 2, 8, 1, false, false, "", ""); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestRunSmallBenchmark(t *testing.T) {
	if err := run("nqueens", "gcc", 2, 8, 0.2, false, false, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithThrottle(t *testing.T) {
	if err := run("bots-health-cutoff", "gcc", 3, 16, 1, true, false, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesTraceAndHistory(t *testing.T) {
	dir := t.TempDir()
	tr := filepath.Join(dir, "trace.csv")
	hi := filepath.Join(dir, "hist.csv")
	if err := run("nqueens", "gcc", 2, 8, 0.2, false, false, tr, hi); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{tr, hi} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 20 {
			t.Errorf("%s suspiciously small (%d bytes)", p, len(data))
		}
	}
}
