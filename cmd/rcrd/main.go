// Command rcrd is the standalone Resource Centric Reflection daemon: it
// serves blackboard snapshots over a Unix socket — the IPC stand-in for
// the real RCRdaemon's shared-memory region (paper §II-B) — while a
// background load runs on the simulated machine. A client mode queries a
// running daemon and prints the hierarchy.
//
// Usage:
//
//	rcrd -socket /tmp/rcrd.sock -load lulesh -duration 30s   # serve
//	rcrd -socket /tmp/rcrd.sock -query                       # query
//	rcrd -socket /tmp/rcrd.sock -metrics                     # telemetry text
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/rcr"
	"repro/internal/workloads"
	"repro/internal/workloads/suite"
)

func main() {
	var (
		socket   = flag.String("socket", "/tmp/rcrd.sock", "unix socket path")
		query    = flag.Bool("query", false, "query a running daemon instead of serving")
		metrics  = flag.Bool("metrics", false, "query a running daemon's telemetry (/metrics-style text)")
		asJSON   = flag.Bool("json", false, "with -query, print the snapshot as JSON")
		load     = flag.String("load", "lulesh", "benchmark to loop as background load while serving")
		duration = flag.Duration("duration", 30*time.Second, "how long (host time) to serve before exiting")
	)
	flag.Parse()

	if *metrics {
		if err := runMetricsQuery(*socket); err != nil {
			fmt.Fprintln(os.Stderr, "rcrd:", err)
			os.Exit(1)
		}
		return
	}
	if *query {
		if err := runQuery(*socket, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, "rcrd:", err)
			os.Exit(1)
		}
		return
	}
	if err := serve(*socket, *load, *duration); err != nil {
		fmt.Fprintln(os.Stderr, "rcrd:", err)
		os.Exit(1)
	}
}

func runMetricsQuery(socket string) error {
	ctx, cancel := context.WithTimeout(context.Background(), rcr.DefaultQueryTimeout)
	defer cancel()
	text, err := rcr.QueryMetrics(ctx, "unix", socket)
	if err != nil {
		return err
	}
	if text == "" {
		return fmt.Errorf("daemon at %s is not instrumented", socket)
	}
	fmt.Print(text)
	return nil
}

func runQuery(socket string, asJSON bool) error {
	snap, err := rcr.Query("unix", socket)
	if err != nil {
		return err
	}
	if asJSON {
		return snap.WriteJSON(os.Stdout)
	}
	fmt.Printf("snapshot at t=%v\n", snap.Now)
	printMeters("system", snap.System)
	for s, sock := range snap.Sockets {
		printMeters(fmt.Sprintf("socket %d", s), sock.Meters)
		for c, coreMeters := range sock.Cores {
			if len(coreMeters) > 0 {
				printMeters(fmt.Sprintf("  core %d", c), coreMeters)
			}
		}
	}
	return nil
}

func printMeters(label string, ms []rcr.MeterValue) {
	if len(ms) == 0 {
		return
	}
	fmt.Printf("%s:\n", label)
	for _, m := range ms {
		fmt.Printf("  %-10s %14.3f  (updated %v)\n", m.Name, m.Value, m.Updated)
	}
}

func serve(socket, load string, duration time.Duration) error {
	if err := os.Remove(socket); err != nil && !os.IsNotExist(err) {
		return err
	}
	// A long-lived daemon runs fault-tolerant: guarded RAPL reads and a
	// supervised sampler (docs/robustness.md).
	sys, err := core.New(core.Options{Warm: true, Telemetry: true, FaultTolerant: true})
	if err != nil {
		return err
	}
	defer sys.Close()

	ln, err := net.Listen("unix", socket)
	if err != nil {
		return err
	}
	srv := rcr.NewServer(sys.Blackboard(), sys.Machine(), ln)
	srv.Instrument(sys.Telemetry())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	fmt.Printf("rcrd: serving %s for %v with background load %q\n", socket, duration, load)

	// Loop the load until the serving window closes.
	loadErr := make(chan error, 1)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				loadErr <- nil
				return
			default:
			}
			wl, err := suite.New(load)
			if err != nil {
				loadErr <- err
				return
			}
			if err := wl.Prepare(workloads.Params{MachineConfig: sys.Machine().Config()}); err != nil {
				loadErr <- err
				return
			}
			if _, err := sys.RunWorkload(wl); err != nil {
				loadErr <- err
				return
			}
		}
	}()

	var firstErr error
	select {
	case firstErr = <-loadErr:
	case <-time.After(duration):
		close(stop)
		firstErr = <-loadErr // let the in-flight run finish cleanly
	}
	if err := srv.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := <-serveErr; err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
