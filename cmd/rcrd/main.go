// Command rcrd is the standalone Resource Centric Reflection daemon: it
// serves blackboard snapshots over a Unix socket — the IPC stand-in for
// the real RCRdaemon's shared-memory region (paper §II-B) — while a
// background load runs on the simulated machine. A client mode queries a
// running daemon and prints the hierarchy.
//
// Usage:
//
//	rcrd -socket /tmp/rcrd.sock -load lulesh -duration 30s   # serve
//	rcrd -socket /tmp/rcrd.sock -query                       # query
//	rcrd -socket /tmp/rcrd.sock -subscribe -duration 5s      # follow the delta stream
//	rcrd -socket /tmp/rcrd.sock -metrics                     # telemetry text
//
// Cluster mode runs an N-shard fleet — each shard a full daemon on its
// own socket under -cluster-dir — with a hierarchical controller
// dividing -global-cap watts across the shards by scaling headroom
// (internal/cluster); -load becomes a comma-separated mix cycled across
// shards:
//
//	rcrd -cluster 4 -global-cap 200 -load lulesh,nqueens -duration 30s
//
// Elastic membership: -initial seeds a smaller fleet and scheduled
// admin ops grow, drain, and shrink it mid-run (docs/cluster.md
// §Membership):
//
//	rcrd -cluster 4 -initial 2 -join "2@5s,3@8s" -drain "0@20s" -decommission "0@25s"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rcr"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workloads"
	"repro/internal/workloads/suite"
)

// restoreFreshness bounds how old a state snapshot may be and still be
// restored on startup; older files are rejected as stale (the guard
// quarantines and history they describe are ancient) and the daemon
// cold-starts instead.
const restoreFreshness = time.Minute

// serveConfig collects the daemon-mode settings.
type serveConfig struct {
	socket       string
	load         string
	duration     time.Duration
	statePath    string
	drainTimeout time.Duration
	maxConns     int
	shed         bool
}

func main() {
	var (
		socket     = flag.String("socket", "/tmp/rcrd.sock", "unix socket path")
		query      = flag.Bool("query", false, "query a running daemon instead of serving")
		subCmd     = flag.Bool("subscribe", false, "follow a running daemon's delta stream for -duration instead of serving")
		metrics    = flag.Bool("metrics", false, "query a running daemon's telemetry (/metrics-style text)")
		asJSON     = flag.Bool("json", false, "with -query, print the snapshot as JSON")
		load       = flag.String("load", "lulesh", "benchmark to loop as background load while serving")
		duration   = flag.Duration("duration", 30*time.Second, "how long (host time) to serve before exiting")
		state      = flag.String("state", "", "crash-safe state file: restored on start (if fresh), checkpointed while serving, written on shutdown")
		drainTO    = flag.Duration("drain-timeout", time.Second, "how long shutdown lets in-flight queries finish before cutting them off")
		maxConns   = flag.Int("max-conns", 0, "cap on concurrently served connections (0 = server default)")
		shed       = flag.Bool("shed", true, "answer overload with a cheap BUSY response instead of queueing clients")
		clusterN   = flag.Int("cluster", 0, "run an N-shard fleet under a hierarchical global power cap instead of a single daemon")
		globalCap  = flag.Float64("global-cap", 0, "fleet-wide power budget in watts (cluster mode; 0 = 50 W per shard)")
		clusterDir = flag.String("cluster-dir", "", "directory for the fleet's shard sockets (cluster mode; empty = a temp dir)")
		aggN       = flag.Int("aggregators", 1, "aggregator replicas in cluster mode; ≥2 runs the HA control plane (lease-based leader, fenced cap writes, hot standbys)")
		initialN   = flag.Int("initial", 0, "initial fleet size in cluster mode (0 = all shards); the rest join later via -join")
		joinSpec   = flag.String("join", "", "scheduled shard joins, \"id@offset,...\" (cluster mode; e.g. \"3@10s\")")
		drainSpec  = flag.String("drain", "", "scheduled shard drains, \"id@offset,...\" (cluster mode)")
		decomSpec  = flag.String("decommission", "", "scheduled shard decommissions, \"id@offset,...\" (cluster mode)")
	)
	flag.Parse()

	if *clusterN > 0 {
		var ops []memberOp
		for _, src := range []struct {
			kind memberOpKind
			spec string
		}{{opJoin, *joinSpec}, {opDrain, *drainSpec}, {opDecommission, *decomSpec}} {
			parsed, err := parseMemberOps(src.kind, src.spec, *clusterN)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rcrd:", err)
				os.Exit(2)
			}
			ops = append(ops, parsed...)
		}
		sortOps(ops)
		if *initialN < 0 || *initialN > *clusterN {
			fmt.Fprintf(os.Stderr, "rcrd: -initial %d out of range [0, %d]\n", *initialN, *clusterN)
			os.Exit(2)
		}
		if err := serveCluster(clusterServeConfig{
			shards:      *clusterN,
			dir:         *clusterDir,
			loads:       strings.Split(*load, ","),
			global:      units.Watts(*globalCap),
			duration:    *duration,
			aggregators: *aggN,
			initial:     *initialN,
			ops:         ops,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "rcrd:", err)
			os.Exit(1)
		}
		return
	}

	if *metrics {
		if err := runMetricsQuery(*socket); err != nil {
			fmt.Fprintln(os.Stderr, "rcrd:", err)
			os.Exit(1)
		}
		return
	}
	if *query {
		if err := runQuery(*socket, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, "rcrd:", err)
			os.Exit(1)
		}
		return
	}
	if *subCmd {
		if err := runSubscribe(*socket, *duration); err != nil {
			fmt.Fprintln(os.Stderr, "rcrd:", err)
			os.Exit(1)
		}
		return
	}
	if err := serve(serveConfig{
		socket:       *socket,
		load:         *load,
		duration:     *duration,
		statePath:    *state,
		drainTimeout: *drainTO,
		maxConns:     *maxConns,
		shed:         *shed,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "rcrd:", err)
		os.Exit(1)
	}
}

func runMetricsQuery(socket string) error {
	ctx, cancel := context.WithTimeout(context.Background(), rcr.DefaultQueryTimeout)
	defer cancel()
	text, err := rcr.QueryMetrics(ctx, "unix", socket)
	if err != nil {
		return err
	}
	if text == "" {
		return fmt.Errorf("daemon at %s is not instrumented", socket)
	}
	fmt.Print(text)
	return nil
}

func runQuery(socket string, asJSON bool) error {
	snap, err := rcr.Query("unix", socket)
	if err != nil {
		return err
	}
	if asJSON {
		return snap.WriteJSON(os.Stdout)
	}
	fmt.Printf("snapshot at t=%v\n", snap.Now)
	printMeters("system", snap.System)
	for s, sock := range snap.Sockets {
		printMeters(fmt.Sprintf("socket %d", s), sock.Meters)
		for c, coreMeters := range sock.Cores {
			if len(coreMeters) > 0 {
				printMeters(fmt.Sprintf("  core %d", c), coreMeters)
			}
		}
	}
	return nil
}

// runSubscribe follows the daemon's delta stream for dur, printing one
// line per applied frame. Ctrl-C or the duration ends it cleanly; a
// resync gap is absorbed (the server follows it with a full frame).
func runSubscribe(socket string, dur time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		select {
		case <-sigCh:
			cancel()
		case <-ctx.Done():
		}
	}()

	sub, err := rcr.Subscribe(ctx, "unix", socket)
	if err != nil {
		return err
	}
	defer sub.Close()
	frames := 0
	for {
		if err := sub.Next(ctx); err != nil {
			if errors.Is(err, rcr.ErrDeltaGap) {
				fmt.Println("rcrd: stream gap, awaiting resync")
				continue
			}
			if ctx.Err() != nil {
				fmt.Printf("rcrd: stream closed after %d frames\n", frames)
				return nil
			}
			return err
		}
		frames++
		snap := sub.Snapshot()
		node := 0.0
		for _, sock := range snap.Sockets {
			for _, m := range sock.Meters {
				if m.Name == rcr.MeterPower {
					node += m.Value
				}
			}
		}
		st := sub.State()
		fmt.Printf("t=%-12v ver=%-8d node=%7.1f W  (%d sockets, %d meters)\n",
			snap.Now, st.Ver, node, len(snap.Sockets), len(st.Names))
	}
}

func printMeters(label string, ms []rcr.MeterValue) {
	if len(ms) == 0 {
		return
	}
	fmt.Printf("%s:\n", label)
	for _, m := range ms {
		fmt.Printf("  %-10s %14.3f  (updated %v)\n", m.Name, m.Value, m.Updated)
	}
}

// restoreState loads a prior state snapshot into sys, journaling the
// outcome. Corrupt or stale files are rejected — the daemon cold-starts
// rather than trust a torn or ancient snapshot — and a missing file is
// simply the first boot.
func restoreState(sys *core.System, path string) {
	st, err := resilience.LoadState(path, restoreFreshness, time.Now())
	jnl := sys.Journal()
	now := sys.Machine().Now()
	switch {
	case err == nil:
		sys.RestoreCheckpoint(st)
		jnl.Record(telemetry.Decision{T: now, Kind: telemetry.KindStateRestored, Detail: "fresh"})
		fmt.Printf("rcrd: restored state from %s (saved %v ago)\n",
			path, time.Since(time.Unix(0, st.SavedAtUnixNano)).Round(time.Millisecond))
	case errors.Is(err, os.ErrNotExist):
		// First boot: nothing to restore.
	case errors.Is(err, resilience.ErrStateCorrupt):
		jnl.Record(telemetry.Decision{T: now, Kind: telemetry.KindStateRejected, Detail: "corrupt"})
		fmt.Fprintf(os.Stderr, "rcrd: state file %s rejected (%v); cold start\n", path, err)
	case errors.Is(err, resilience.ErrStateStale):
		jnl.Record(telemetry.Decision{T: now, Kind: telemetry.KindStateRejected, Detail: "stale"})
		fmt.Fprintf(os.Stderr, "rcrd: state file %s rejected (%v); cold start\n", path, err)
	default:
		jnl.Record(telemetry.Decision{T: now, Kind: telemetry.KindStateRejected, Detail: "unreadable"})
		fmt.Fprintf(os.Stderr, "rcrd: state file %s unreadable (%v); cold start\n", path, err)
	}
}

func serve(cfg serveConfig) error {
	if err := os.Remove(cfg.socket); err != nil && !os.IsNotExist(err) {
		return err
	}
	// A long-lived daemon runs fault-tolerant: guarded RAPL reads and a
	// supervised sampler (docs/robustness.md). With a state file it also
	// records history, so restarts resume the time series.
	sys, err := core.New(core.Options{
		Warm:          true,
		Telemetry:     true,
		FaultTolerant: true,
		RecordHistory: cfg.statePath != "",
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	// Crash-safe state: restore a fresh prior snapshot (guard quarantine
	// survives a restart; corrupt or stale files are rejected), then keep
	// checkpointing while serving.
	var keeper *resilience.Keeper
	if cfg.statePath != "" {
		restoreState(sys, cfg.statePath)
		keeper, err = resilience.StartKeeper(sys.Machine(), cfg.statePath, 0, sys.Checkpoint, sys.Telemetry(), sys.Journal())
		if err != nil {
			return err
		}
		defer keeper.Stop()
	}

	ln, err := net.Listen("unix", cfg.socket)
	if err != nil {
		return err
	}
	srv := rcr.NewServer(sys.Blackboard(), sys.Machine(), ln)
	srv.MaxConns = cfg.maxConns
	srv.Shed = cfg.shed
	srv.DrainTimeout = cfg.drainTimeout
	srv.Instrument(sys.Telemetry())
	// Delta publisher: SUB clients get coalesced frames on the sampler
	// tick cadence; the attachment survives supervised sampler restarts.
	srv.Pub = rcr.NewPublisher(sys.Blackboard())
	srv.Pub.Instrument(sys.Telemetry())
	sys.AttachPublisher(srv.Pub)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	fmt.Printf("rcrd: serving %s for %v with background load %q\n", cfg.socket, cfg.duration, cfg.load)

	// Loop the load until the serving window closes.
	loadErr := make(chan error, 1)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				loadErr <- nil
				return
			default:
			}
			wl, err := suite.New(cfg.load)
			if err != nil {
				loadErr <- err
				return
			}
			if err := wl.Prepare(workloads.Params{MachineConfig: sys.Machine().Config()}); err != nil {
				loadErr <- err
				return
			}
			if _, err := sys.RunWorkload(wl); err != nil {
				loadErr <- err
				return
			}
		}
	}()

	// SIGTERM/SIGINT begin the same graceful drain the duration timer
	// does: stop the load, let in-flight queries finish within the drain
	// timeout, and write a final state snapshot.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	var firstErr error
	select {
	case firstErr = <-loadErr:
	case sig := <-sigCh:
		fmt.Printf("rcrd: %v: draining (timeout %v)\n", sig, cfg.drainTimeout)
		close(stop)
		firstErr = <-loadErr // let the in-flight run finish cleanly
	case <-time.After(cfg.duration):
		close(stop)
		firstErr = <-loadErr
	}
	if err := srv.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := <-serveErr; err != nil && firstErr == nil {
		firstErr = err
	}
	if keeper != nil {
		keeper.Stop() // final synchronous snapshot (idempotent with the defer)
		if err := keeper.LastErr(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// clusterServeConfig collects the cluster-mode settings.
type clusterServeConfig struct {
	shards      int
	dir         string
	loads       []string
	global      units.Watts
	duration    time.Duration
	aggregators int
	// initial is the seeded fleet size (0 = all shards Active from the
	// start); ops are the scheduled -join/-drain/-decommission admin
	// operations, sorted by fire time.
	initial int
	ops     []memberOp
}

// serveCluster runs the fleet: N full daemons on their own sockets, a
// per-shard background load cycled from the -load mix, and the
// hierarchical aggregator re-partitioning the global budget while a
// once-a-second status line shows the fleet state.
func serveCluster(cfg clusterServeConfig) error {
	if cfg.global <= 0 {
		cfg.global = units.Watts(50 * float64(cfg.shards))
	}
	fleet, err := cluster.NewFleet(cluster.FleetConfig{Shards: cfg.shards, Dir: cfg.dir})
	if err != nil {
		return err
	}
	defer fleet.Close()

	if cfg.aggregators <= 0 {
		cfg.aggregators = 1
	}
	reg := telemetry.NewRegistry()
	t0 := time.Now()
	journal := telemetry.NewJournal(1<<10, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Elastic fleet: with -initial/-join/-drain/-decommission the
	// controllers steer a Membership registry instead of the static shard
	// list. Each replica owns its own registry — the operator's admin op
	// is broadcast to all of them, the same way a config push reaches
	// every controller, so a promoted standby steers the same fleet.
	elastic := len(cfg.ops) > 0 || (cfg.initial > 0 && cfg.initial < cfg.shards)
	endpoints := fleet.Endpoints()
	var registries []*cluster.Membership
	if elastic {
		seed := endpoints
		if cfg.initial > 0 {
			seed = endpoints[:cfg.initial]
		}
		registries = make([]*cluster.Membership, cfg.aggregators)
		for i := range registries {
			m, err := cluster.NewMembership(seed, func() time.Duration { return time.Since(t0) })
			if err != nil {
				return err
			}
			m.Journal(journal)
			if i == 0 {
				m.Instrument(reg)
			}
			registries[i] = m
		}
	}
	aggs := make([]*cluster.Aggregator, cfg.aggregators)
	aggDone := make(chan error, cfg.aggregators)
	for i := range aggs {
		acfg := cluster.AggregatorConfig{
			Shards:        fleet.Endpoints(),
			Global:        cfg.global,
			Period:        50 * time.Millisecond,
			HealthHorizon: 500 * time.Millisecond,
			Clock:         func() time.Duration { return time.Since(t0) },
			SetCap:        fleet.SetCap,
			Telemetry:     reg,
			Journal:       journal,
		}
		if elastic {
			acfg.Members = registries[i]
		}
		if cfg.aggregators > 1 {
			// Redundant control plane: every replica writes over the
			// fenced wire path. The lease must outrun the cap write's
			// socket-dial tail on a loaded host — a lease shorter than the
			// tail reads its own slow writes as a dead leader and churns
			// elections — hence seconds here versus the soak's tens of
			// milliseconds over in-process guards (docs/cluster.md §HA).
			acfg.SetCap = nil
			acfg.HA = &cluster.HAConfig{
				ID:         uint32(i + 1),
				LeaseTTL:   2 * time.Second,
				Grace:      500 * time.Millisecond,
				JitterSeed: uint64(t0.UnixNano()) ^ uint64(i+1)<<40,
				WriteCap:   fleet.WriteCap,
			}
		}
		agg, err := cluster.NewAggregator(acfg)
		if err != nil {
			return err
		}
		aggs[i] = agg
		go func(a *cluster.Aggregator) { aggDone <- a.Run(ctx) }(agg)
	}
	// fleetStatus picks the ruling replica's view (any replica's when no
	// leader is currently elected, so shard health stays visible).
	fleetStatus := func() cluster.AggregatorStatus {
		st := aggs[0].Status()
		for _, a := range aggs[1:] {
			if s := a.Status(); s.Leader {
				st = s
			}
		}
		return st
	}
	if cfg.aggregators > 1 {
		fmt.Printf("rcrd: cluster of %d shards under a %.0f W global cap, %d HA aggregators, for %v (mix %v)\n",
			cfg.shards, float64(cfg.global), cfg.aggregators, cfg.duration, cfg.loads)
	} else {
		fmt.Printf("rcrd: cluster of %d shards under a %.0f W global cap for %v (mix %v)\n",
			cfg.shards, float64(cfg.global), cfg.duration, cfg.loads)
	}

	// One looping background load per shard, cycled from the mix.
	stop := make(chan struct{})

	// Admin op scheduler: fire each -join/-drain/-decommission at its
	// offset, broadcasting to every replica's registry. Only the first
	// replica's outcome is printed — they all see the same op stream.
	if len(cfg.ops) > 0 {
		go func() {
			for _, op := range cfg.ops {
				wait := op.at - time.Since(t0)
				if wait > 0 {
					select {
					case <-stop:
						return
					case <-time.After(wait):
					}
				}
				for ri, m := range registries {
					line := applyMemberOp(op, m, endpoints)
					if ri == 0 {
						fmt.Println(line)
					}
				}
			}
		}()
	}
	loadErrs := make([]error, cfg.shards)
	var wg sync.WaitGroup
	for i := 0; i < cfg.shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := strings.TrimSpace(cfg.loads[i%len(cfg.loads)])
			for {
				select {
				case <-stop:
					return
				default:
				}
				wl, err := suite.New(name)
				if err == nil {
					err = wl.Prepare(workloads.Params{MachineConfig: fleet.System(i).Machine().Config()})
				}
				if err == nil {
					_, err = fleet.System(i).RunWorkload(wl)
				}
				if err != nil {
					loadErrs[i] = err
					return
				}
			}
		}(i)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	status := time.NewTicker(time.Second)
	defer status.Stop()
	end := time.After(cfg.duration)
loop:
	for {
		select {
		case <-status.C:
			st := fleetStatus()
			member := ""
			if elastic {
				member = fmt.Sprintf(", members %d (%d joining, %d draining), epoch %d",
					int(reg.Gauge("cluster_members").Value()), st.Joining, st.Draining, st.MembershipEpoch)
			}
			if cfg.aggregators > 1 {
				fmt.Printf("rcrd: healthy %d/%d, Σcaps %.1f/%.0f W, %d repartitions, %d shard restarts, fence %d, %d elections%s\n",
					st.Healthy, cfg.shards, float64(st.CapsSum), float64(cfg.global),
					reg.Counter("cluster_repartitions_total").Value(), st.ShardRestarts,
					st.Fence, reg.Counter("cluster_leader_elections_total").Value(), member)
			} else {
				fmt.Printf("rcrd: healthy %d/%d, Σcaps %.1f/%.0f W, %d repartitions, %d shard restarts%s\n",
					st.Healthy, cfg.shards, float64(st.CapsSum), float64(cfg.global),
					reg.Counter("cluster_repartitions_total").Value(), st.ShardRestarts, member)
			}
		case sig := <-sigCh:
			fmt.Printf("rcrd: %v: stopping fleet\n", sig)
			break loop
		case <-end:
			break loop
		}
	}
	close(stop)
	wg.Wait()
	cancel()
	for range aggs {
		<-aggDone
	}
	st := fleetStatus()
	fmt.Printf("rcrd: final caps (W):")
	for _, c := range st.Caps {
		fmt.Printf(" %.1f", float64(c))
	}
	fmt.Println()
	for i, err := range loadErrs {
		if err != nil {
			return fmt.Errorf("shard %d load: %w", i, err)
		}
	}
	return nil
}
