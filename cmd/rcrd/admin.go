package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
)

// Membership admin ops for cluster mode (docs/cluster.md §Membership).
// The -join/-drain/-decommission flags each take a comma-separated list
// of "id@offset" specs — "4@10s,5@12s" — scheduled against the run's
// host clock. Ops are applied to every aggregator replica's registry:
// the operator's config push reaches all controllers, so a standby
// promoted later steers the same fleet the deposed leader did.

// memberOpKind names one admin operation.
type memberOpKind int

const (
	opJoin memberOpKind = iota
	opDrain
	opDecommission
)

func (k memberOpKind) String() string {
	switch k {
	case opJoin:
		return "join"
	case opDrain:
		return "drain"
	default:
		return "decommission"
	}
}

// memberOp is one scheduled membership change.
type memberOp struct {
	kind  memberOpKind
	shard int
	at    time.Duration
}

// parseMemberOps parses one flag's "id@offset,id@offset" spec. maxShard
// bounds the shard IDs against the fleet size.
func parseMemberOps(kind memberOpKind, spec string, maxShard int) ([]memberOp, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var ops []memberOp
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		id, off, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("%s spec %q: want id@offset (e.g. 4@10s)", kind, part)
		}
		shard, err := strconv.Atoi(strings.TrimSpace(id))
		if err != nil || shard < 0 || shard >= maxShard {
			return nil, fmt.Errorf("%s spec %q: shard id must be in [0, %d)", kind, part, maxShard)
		}
		at, err := time.ParseDuration(strings.TrimSpace(off))
		if err != nil || at < 0 {
			return nil, fmt.Errorf("%s spec %q: bad offset: %v", kind, part, err)
		}
		ops = append(ops, memberOp{kind: kind, shard: shard, at: at})
	}
	return ops, nil
}

// sortOps orders scheduled ops by fire time (stable for equal times, so
// a drain and a decommission of the same shard at the same offset keep
// their flag order: join < drain < decommission by construction site).
func sortOps(ops []memberOp) {
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].at < ops[j].at })
}

// applyMemberOp applies one op to a registry, returning a status string
// for the run log. Errors are reported, not fatal — an op against a
// member in the wrong state is an operator mistake, not a daemon bug.
func applyMemberOp(op memberOp, m *cluster.Membership, endpoints []cluster.ShardEndpoint) string {
	var err error
	switch op.kind {
	case opJoin:
		err = m.Join(endpoints[op.shard])
	case opDrain:
		err = m.Drain(op.shard)
	case opDecommission:
		err = m.Decommission(op.shard)
	}
	if err != nil {
		return fmt.Sprintf("rcrd: %s shard %d: %v", op.kind, op.shard, err)
	}
	return fmt.Sprintf("rcrd: %s shard %d (epoch %d)", op.kind, op.shard, m.Epoch())
}
