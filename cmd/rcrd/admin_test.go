package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

func TestParseMemberOps(t *testing.T) {
	ops, err := parseMemberOps(opJoin, " 2@5s , 3@1500ms", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []memberOp{
		{kind: opJoin, shard: 2, at: 5 * time.Second},
		{kind: opJoin, shard: 3, at: 1500 * time.Millisecond},
	}
	if len(ops) != len(want) {
		t.Fatalf("parsed %d ops, want %d", len(ops), len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("op %d = %+v, want %+v", i, ops[i], want[i])
		}
	}

	if ops, err := parseMemberOps(opDrain, "   ", 4); err != nil || ops != nil {
		t.Fatalf("blank spec: (%v, %v), want (nil, nil)", ops, err)
	}
	for name, spec := range map[string]string{
		"missing at":   "2",
		"bad id":       "x@5s",
		"id too big":   "4@5s",
		"negative id":  "-1@5s",
		"bad offset":   "2@fast",
		"negative off": "2@-5s",
	} {
		if _, err := parseMemberOps(opDecommission, spec, 4); err == nil {
			t.Errorf("%s: spec %q accepted", name, spec)
		}
	}
}

func TestSortMemberOpsStable(t *testing.T) {
	ops := []memberOp{
		{kind: opDrain, shard: 1, at: 10 * time.Second},
		{kind: opJoin, shard: 2, at: 5 * time.Second},
		{kind: opDecommission, shard: 1, at: 10 * time.Second},
	}
	sortOps(ops)
	if ops[0].kind != opJoin {
		t.Fatalf("first op = %v, want join", ops[0].kind)
	}
	// Equal fire times keep flag order: drain before decommission.
	if ops[1].kind != opDrain || ops[2].kind != opDecommission {
		t.Fatalf("equal-time order = %v, %v; want drain, decommission", ops[1].kind, ops[2].kind)
	}
}

func TestApplyMemberOp(t *testing.T) {
	endpoints := make([]cluster.ShardEndpoint, 4)
	for i := range endpoints {
		endpoints[i] = cluster.ShardEndpoint{ID: i, Network: "unix", Addr: "/tmp/adm.sock"}
	}
	m, err := cluster.NewMembership(endpoints[:2], func() time.Duration { return 0 })
	if err != nil {
		t.Fatal(err)
	}

	if got := applyMemberOp(memberOp{kind: opJoin, shard: 2}, m, endpoints); !strings.Contains(got, "join shard 2 (epoch") {
		t.Fatalf("join status %q", got)
	}
	if mb, ok := m.Get(2); !ok || mb.State != cluster.MemberJoining {
		t.Fatalf("member 2 after join: %+v ok=%v", mb, ok)
	}
	if got := applyMemberOp(memberOp{kind: opDrain, shard: 0}, m, endpoints); !strings.Contains(got, "drain shard 0 (epoch") {
		t.Fatalf("drain status %q", got)
	}
	if got := applyMemberOp(memberOp{kind: opDecommission, shard: 0}, m, endpoints); !strings.Contains(got, "decommission shard 0 (epoch") {
		t.Fatalf("decommission status %q", got)
	}
	// An op against the wrong state reports the error instead of failing.
	if got := applyMemberOp(memberOp{kind: opDrain, shard: 0}, m, endpoints); !strings.Contains(got, "not active") && !strings.Contains(got, "cluster:") {
		t.Fatalf("bad-state drain status %q", got)
	}
}
