package main

import (
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/rcr"
)

func TestServeAndQuery(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "rcrd.sock")
	done := make(chan error, 1)
	go func() { done <- serve(sock, "nqueens", 1500*time.Millisecond) }()

	// Wait for the socket to appear, then query it repeatedly while the
	// background load runs.
	var snap rcr.Snapshot
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("daemon never answered")
		}
		if _, err := net.Dial("unix", sock); err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		s, err := rcr.Query("unix", sock)
		if err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		snap = s
		if len(snap.Sockets) == 2 && len(snap.Sockets[0].Meters) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The blackboard must carry the standard meters.
	names := map[string]bool{}
	for _, mv := range snap.Sockets[0].Meters {
		names[mv.Name] = true
	}
	for _, want := range []string{rcr.MeterEnergy, rcr.MeterTemperature, rcr.MeterMemConcurrency} {
		if !names[want] {
			t.Errorf("socket meters missing %q (have %v)", want, names)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	// The query path also prints; exercise it against a dead socket for
	// the error branch.
	if err := runQuery(sock, false); err == nil {
		t.Error("query against a stopped daemon succeeded")
	}
}

func TestServeUnknownLoad(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "rcrd.sock")
	if err := serve(sock, "not-a-benchmark", 500*time.Millisecond); err == nil {
		t.Error("serve with unknown load succeeded")
	}
}
