package main

import (
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rapl"
	"repro/internal/rcr"
	"repro/internal/resilience"
	"repro/internal/telemetry"
)

func TestServeAndQuery(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "rcrd.sock")
	statePath := filepath.Join(dir, "rcrd.state")
	done := make(chan error, 1)
	go func() {
		done <- serve(serveConfig{socket: sock, load: "nqueens", duration: 1500 * time.Millisecond, drainTimeout: time.Second, statePath: statePath})
	}()

	// Wait for the socket to appear, then query it repeatedly while the
	// background load runs.
	var snap rcr.Snapshot
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("daemon never answered")
		}
		if _, err := net.Dial("unix", sock); err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		s, err := rcr.Query("unix", sock)
		if err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		snap = s
		if len(snap.Sockets) == 2 && len(snap.Sockets[0].Meters) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The blackboard must carry the standard meters.
	names := map[string]bool{}
	for _, mv := range snap.Sockets[0].Meters {
		names[mv.Name] = true
	}
	for _, want := range []string{rcr.MeterEnergy, rcr.MeterTemperature, rcr.MeterMemConcurrency} {
		if !names[want] {
			t.Errorf("socket meters missing %q (have %v)", want, names)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	// The query path also prints; exercise it against a dead socket for
	// the error branch.
	if err := runQuery(sock, false); err == nil {
		t.Error("query against a stopped daemon succeeded")
	}
	// Shutdown must have left a decodable, fresh state snapshot with the
	// guard checkpoint and recorded history aboard.
	st, err := resilience.LoadState(statePath, restoreFreshness, time.Now())
	if err != nil {
		t.Fatalf("shutdown state snapshot: %v", err)
	}
	if len(st.Guard) == 0 {
		t.Error("shutdown state snapshot carries no guard checkpoint")
	}
	if len(st.History) == 0 {
		t.Error("shutdown state snapshot carries no history")
	}
}

// TestRestoreStateOutcomes is the restart half of the crash-safety
// contract at the command level: a fresh snapshot naming a quarantined
// domain restores (the restarted daemon keeps distrusting the sensor),
// while corrupt and stale files are rejected and the daemon cold-starts
// with a pristine guard. Each outcome must land in the journal.
func TestRestoreStateOutcomes(t *testing.T) {
	newSys := func() *core.System {
		sys, err := core.New(core.Options{Telemetry: true, FaultTolerant: true, RecordHistory: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sys.Close() })
		return sys
	}
	lastKind := func(sys *core.System) string {
		entries := sys.Journal().Entries()
		if len(entries) == 0 {
			return ""
		}
		return entries[len(entries)-1].Kind
	}
	writeState := func(path string, savedAt time.Time) {
		st := resilience.DaemonState{
			SavedAtUnixNano: savedAt.UnixNano(),
			Guard: []rapl.DomainCheckpoint{
				{State: rapl.GuardQuarantined, Faults: 5, Backoff: time.Second, RetryIn: 500 * time.Millisecond},
				{State: rapl.GuardSensing},
			},
		}
		if err := resilience.SaveState(path, st); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()

	t.Run("fresh", func(t *testing.T) {
		path := filepath.Join(dir, "fresh.state")
		writeState(path, time.Now())
		sys := newSys()
		restoreState(sys, path)
		cps := sys.Guard().Checkpoint()
		if len(cps) == 0 || cps[0].State != rapl.GuardQuarantined {
			t.Fatalf("domain 0 state after restore = %+v, want quarantined", cps)
		}
		if k := lastKind(sys); k != telemetry.KindStateRestored {
			t.Errorf("journal kind %q, want %q", k, telemetry.KindStateRestored)
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		path := filepath.Join(dir, "corrupt.state")
		writeState(path, time.Now())
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0x40
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		sys := newSys()
		restoreState(sys, path)
		for i, cp := range sys.Guard().Checkpoint() {
			if cp.State != rapl.GuardSensing {
				t.Errorf("domain %d state %v after rejected restore, want pristine sensing", i, cp.State)
			}
		}
		if k := lastKind(sys); k != telemetry.KindStateRejected {
			t.Errorf("journal kind %q, want %q", k, telemetry.KindStateRejected)
		}
	})
	t.Run("stale", func(t *testing.T) {
		path := filepath.Join(dir, "stale.state")
		writeState(path, time.Now().Add(-2*restoreFreshness))
		sys := newSys()
		restoreState(sys, path)
		for i, cp := range sys.Guard().Checkpoint() {
			if cp.State != rapl.GuardSensing {
				t.Errorf("domain %d state %v after stale restore, want pristine sensing", i, cp.State)
			}
		}
		if k := lastKind(sys); k != telemetry.KindStateRejected {
			t.Errorf("journal kind %q, want %q", k, telemetry.KindStateRejected)
		}
	})
	t.Run("missing", func(t *testing.T) {
		sys := newSys()
		restoreState(sys, filepath.Join(dir, "never-written.state"))
		if k := lastKind(sys); k != "" {
			t.Errorf("journal kind %q after first boot, want no record", k)
		}
	})
}

func TestServeUnknownLoad(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "rcrd.sock")
	if err := serve(serveConfig{socket: sock, load: "not-a-benchmark", duration: 500 * time.Millisecond}); err == nil {
		t.Error("serve with unknown load succeeded")
	}
}

// TestServeCluster runs the fleet mode end to end: two shards with a
// skewed load mix under a binding global cap must both come up, stay
// healthy, and receive a headroom-skewed partition before shutdown.
func TestServeCluster(t *testing.T) {
	if err := serveCluster(clusterServeConfig{
		shards:   2,
		dir:      t.TempDir(),
		loads:    []string{"lulesh", "nqueens"},
		global:   120,
		duration: 1500 * time.Millisecond,
	}); err != nil {
		t.Fatalf("serveCluster: %v", err)
	}
}

func TestServeClusterUnknownLoad(t *testing.T) {
	if err := serveCluster(clusterServeConfig{
		shards:   1,
		dir:      t.TempDir(),
		loads:    []string{"not-a-benchmark"},
		duration: 400 * time.Millisecond,
	}); err == nil {
		t.Error("cluster mode with unknown load succeeded")
	}
}
