// Adaptive throttling on LULESH, Table IV style: run the hydrodynamics
// mini-app under three configurations — 16 fixed workers, 12 fixed
// workers, and 16 workers with the MAESTRO daemon deciding dynamically —
// and compare time, energy and power.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/qthreads"
	"repro/internal/workloads"
	"repro/internal/workloads/lulesh"
)

func main() {
	type config struct {
		name     string
		workers  int
		throttle bool
	}
	configs := []config{
		{"16 threads, dynamic throttling", 16, true},
		{"16 threads, fixed", 16, false},
		{"12 threads, fixed", 12, false},
	}
	target := compiler.Target{Compiler: compiler.GCC, Opt: compiler.O3}

	fmt.Println("LULESH under the MAESTRO runtime (cf. paper Table IV):")
	for _, c := range configs {
		wl := lulesh.New()
		mcfg := machine.M620()
		if err := wl.Prepare(workloads.Params{MachineConfig: mcfg, Target: target}); err != nil {
			log.Fatal(err)
		}
		qcfg := qthreads.DefaultConfig()
		qcfg.SpinOnlyIdle = true // the paper's runtime spins rather than parks
		sys, err := core.New(core.Options{
			Machine:            mcfg,
			Workers:            c.workers,
			Qthreads:           qcfg,
			AdaptiveThrottling: c.throttle,
			Warm:               true,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.RunWorkload(wl)
		if err != nil {
			sys.Close()
			log.Fatal(err)
		}
		fmt.Printf("  %-32s %6.1f s  %7.0f J  %6.1f W", c.name,
			rep.Elapsed.Seconds(), float64(rep.Energy), float64(rep.AvgPower))
		if stats, ok := sys.Throttling(); ok {
			fmt.Printf("  (throttled %.1f s across %d activations)",
				stats.ThrottledTime.Seconds(), stats.Activations)
		}
		fmt.Println()
		sys.Close()
	}
	fmt.Println("\npaper Table IV:            dynamic 48.4 s / 6860 J / 141.7 W")
	fmt.Println("                           fixed16 45.5 s / 7089 J / 155.9 W")
	fmt.Println("                           fixed12 48.2 s / 6341 J / 131.5 W")
}
