// Thread sweep: reproduce one curve of the paper's Figures 1-4 for a
// chosen benchmark — speedup and normalized energy versus thread count —
// and print where the energy minimum falls (for poorly-scaling programs
// it is below the maximum thread count; paper §II-C.4).
//
//	go run ./examples/threadsweep               # dijkstra
//	go run ./examples/threadsweep -app lulesh
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/compiler"
	"repro/internal/experiments"
)

func main() {
	app := flag.String("app", compiler.AppDijkstra, "benchmark to sweep")
	flag.Parse()

	lab := experiments.NewLab()
	series, err := lab.Sweep(*app, compiler.Baseline, []int{1, 2, 4, 8, 12, 16})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s (gcc -O2), simulated M620:\n", *app)
	fmt.Printf("%8s %10s %10s %10s %10s %10s\n", "threads", "time[s]", "joules", "watts", "speedup", "E/E(1)")
	for i, k := range series.Threads {
		fmt.Printf("%8d %10.2f %10.0f %10.1f %10.2f %10.2f\n",
			k, series.Seconds[i], series.Joules[i], series.Watts[i],
			series.Speedup[i], series.NormEnergy[i])
	}
	fmt.Printf("\nminimum energy at %d threads", series.MinEnergyThreads())
	if series.MinEnergyThreads() < 16 {
		fmt.Printf(" — running below the hardware maximum saves energy, the effect MAESTRO exploits")
	}
	fmt.Println()
}
