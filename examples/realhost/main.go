// Real-host RAPL: the rapl.Reader interface works against the Linux
// powercap interface on a real Intel machine as well as against the
// simulated MSR file. This example tries the real sysfs backend first
// (it needs an Intel host and read access to
// /sys/class/powercap/intel-rapl*/energy_uj, typically root) and falls
// back to measuring a burst on the simulated machine.
//
//	go run ./examples/realhost
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/qthreads"
	"repro/internal/rapl"
	"repro/internal/units"
)

func main() {
	if reader, err := rapl.NewSysfsReader(rapl.DefaultPowercapPath); err == nil {
		measureRealHost(reader)
		return
	} else {
		fmt.Printf("no readable RAPL powercap interface (%v); using the simulator\n", err)
	}
	measureSimulated()
}

// measureRealHost samples the machine you are actually running on.
func measureRealHost(reader *rapl.SysfsReader) {
	fmt.Printf("found %d RAPL package domains; sampling for 2 s...\n", reader.Domains())
	start := make([]units.Joules, reader.Domains())
	for d := range start {
		e, err := reader.Energy(d)
		if err != nil {
			log.Fatal(err)
		}
		start[d] = e
	}
	time.Sleep(2 * time.Second)
	for d := range start {
		e, err := reader.Energy(d)
		if err != nil {
			log.Fatal(err)
		}
		delta := e - start[d]
		fmt.Printf("  %s: %v over 2 s = %v\n", reader.Name(d), delta, units.PowerOver(delta, 2*time.Second))
	}
}

// measureSimulated runs a compute burst on the simulated node instead.
func measureSimulated() {
	sys, err := core.New(core.Options{Warm: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	rep, err := sys.Run("burst", func(tc *qthreads.TC) {
		g := tc.NewGroup()
		for i := 0; i < sys.Runtime().Workers(); i++ {
			g.Spawn(tc, func(tc *qthreads.TC) { tc.Compute(2.7e9) }) // 1 s
		}
		g.Wait(tc)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
}
