// Power capping: run a sustained high-power kernel under a node power
// budget, with concurrency throttling as the actuator (the paper's §V/§VI
// outlook), and dump the power timeline as CSV for plotting.
//
//	go run ./examples/powercap
//	go run ./examples/powercap -cap 110 -csv timeline.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/qthreads"
	"repro/internal/units"
)

func main() {
	capW := flag.Float64("cap", 120, "node power cap in watts (0 disables)")
	csvPath := flag.String("csv", "", "write the power timeline as CSV to this file")
	flag.Parse()

	sys, err := core.New(core.Options{
		Warm:          true,
		PowerCap:      units.Watts(*capW),
		RecordHistory: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// A sustained compute burn that would draw ~150 W uncapped.
	report, err := sys.Run("capped-burn", func(tc *qthreads.TC) {
		g := tc.NewGroup()
		for i := 0; i < 4800; i++ {
			g.Spawn(tc, func(tc *qthreads.TC) { tc.Compute(2e7) })
		}
		g.Wait(tc)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
	if stats, ok := sys.Capping(); ok {
		fmt.Printf("cap %.0f W: %d tightenings, %d relaxations, tightest limit %d workers/socket, %d/%d samples over budget\n",
			*capW, stats.Tightenings, stats.Relaxations, stats.MinLimit, stats.OverBudget, stats.Samples)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := sys.History().WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("power timeline (%d samples) written to %s\n", sys.History().Len(), *csvPath)
	} else {
		pts := sys.History().Points()
		fmt.Printf("timeline: %d samples; first %.1f W, last %.1f W\n",
			len(pts), pts[0].NodePower, pts[len(pts)-1].NodePower)
	}
}
