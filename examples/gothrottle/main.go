// Real-program throttling: apply the paper's adaptive concurrency
// throttling to an ordinary Go worker pool on the machine you are
// running on. With readable RAPL counters (Linux, Intel, usually root)
// the daemon samples real package energy; otherwise the example
// demonstrates the control loop against a synthetic power source.
//
//	go run ./examples/gothrottle
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/gomax"
	"repro/internal/rapl"
	"repro/internal/units"
)

func main() {
	pool, err := gomax.NewPool(8)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	reader, synthetic := pickReader()
	th, err := gomax.StartThrottler(pool, reader, gomax.ThrottlerConfig{
		Period:    50 * time.Millisecond,
		HighPower: 120,
		LowPower:  60,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer th.Stop()

	// A real embarrassingly parallel job: numerically integrate sin(x)
	// over many subranges.
	const tasks = 400
	results := make([]float64, tasks)
	start := time.Now()
	for i := 0; i < tasks; i++ {
		i := i
		if err := pool.Submit(func() {
			lo := float64(i) * math.Pi / tasks
			hi := float64(i+1) * math.Pi / tasks
			sum := 0.0
			const steps = 200_000
			h := (hi - lo) / steps
			for s := 0; s < steps; s++ {
				sum += math.Sin(lo+(float64(s)+0.5)*h) * h
			}
			results[i] = sum
		}); err != nil {
			log.Fatal(err)
		}
	}
	pool.Wait()

	total := 0.0
	for _, r := range results {
		total += r
	}
	st := th.Stats()
	fmt.Printf("integral of sin over [0,π] = %.6f (want 2) in %v\n", total, time.Since(start).Round(time.Millisecond))
	fmt.Printf("throttler: %d samples, %d activations, %d deactivations, engaged=%v, final limit %d/%d\n",
		st.Samples, st.Activations, st.Deactivations, st.Engaged, pool.Limit(), pool.Workers())
	if synthetic {
		fmt.Println("(no readable RAPL interface on this host; a synthetic ~150 W source drove the decisions)")
	}
}

// pickReader prefers the host's powercap interface, falling back to a
// synthetic source that looks like a busy 150 W node.
func pickReader() (rapl.Reader, bool) {
	if r, err := rapl.NewSysfsReader(rapl.DefaultPowercapPath); err == nil {
		fmt.Printf("sampling real RAPL counters (%d package domains)\n", r.Domains())
		return r, false
	}
	return syntheticReader{start: time.Now(), perDomain: 75}, true
}

// syntheticReader derives cumulative energy from wall-clock time at a
// fixed power, so readings stay exact even when the CPU-bound pool
// starves background goroutines.
type syntheticReader struct {
	start     time.Time
	perDomain units.Watts
}

func (s syntheticReader) Domains() int      { return 2 }
func (s syntheticReader) Name(d int) string { return fmt.Sprintf("synthetic-%d", d) }
func (s syntheticReader) Energy(d int) (units.Joules, error) {
	return units.EnergyOver(s.perDomain, time.Since(s.start)), nil
}
