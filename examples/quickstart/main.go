// Quickstart: measure the energy of a parallel loop.
//
// The System bundles the paper's whole stack — a simulated two-socket
// Sandybridge node, RAPL energy counters, the RCR sampler and the
// Qthreads-style task runtime. Run any task-parallel code on it and get
// an energy/power report for the bracketed region.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/qthreads"
)

func main() {
	sys, err := core.New(core.Options{Warm: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// A daxpy-like parallel loop: each chunk charges its compute cycles
	// and memory traffic to the core executing it.
	const n = 1 << 20
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
	}

	report, err := sys.Run("daxpy", func(tc *qthreads.TC) {
		tc.ParallelFor(n, 1<<14, func(tc *qthreads.TC, lo, hi int) {
			for i := lo; i < hi; i++ {
				y[i] += 2.5 * x[i]
			}
			elems := float64(hi - lo)
			tc.Execute(machine.Work{
				Ops:     elems * 220, // cycles per element (virtual cost)
				Bytes:   elems * 24,  // two reads + one write
				Overlap: 0.6,         // prefetched streaming
			})
		})
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
	fmt.Printf("sanity: y[10] = %.1f\n", y[10])
}
