package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rcr"
	"repro/internal/resilience"
	"repro/internal/resilience/leak"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// haApply is one audited cap actuation at a shard's fence guard.
type haApply struct {
	shard int
	fence uint64
	cap   float64
}

// haAudit is the independent invariant monitor behind every guard's
// apply seam: conservation after every single actuation, plus the full
// apply log for hand-off and fencing analysis.
type haAudit struct {
	budget float64
	mu     sync.Mutex
	caps   []float64
	log    []haApply
	bad    int
}

func (au *haAudit) applyFn(shard int) func(cap float64, fence uint64) error {
	return func(cap float64, fence uint64) error {
		au.mu.Lock()
		defer au.mu.Unlock()
		au.caps[shard] = cap
		au.log = append(au.log, haApply{shard: shard, fence: fence, cap: cap})
		sum := 0.0
		for _, c := range au.caps {
			sum += c
		}
		if sum > au.budget+sumEps {
			au.bad++
		}
		return nil
	}
}

func (au *haAudit) snapshotLog() []haApply {
	au.mu.Lock()
	defer au.mu.Unlock()
	return append([]haApply(nil), au.log...)
}

func (au *haAudit) violations() int {
	au.mu.Lock()
	defer au.mu.Unlock()
	return au.bad
}

// haReplica is one aggregator replica wired to scripted delta streams
// and the shared guard fleet, with a blockable / holdable write path.
type haReplica struct {
	agg     *Aggregator
	streams []*scriptStream
	journal *telemetry.Journal

	blocked atomic.Bool // partition: every write fails
	holding atomic.Bool // split-brain: writes queue for late delivery
	heldMu  sync.Mutex
	held    []heldCapWrite

	cancel context.CancelFunc
	done   chan struct{}
}

type heldCapWrite struct {
	shard int
	w     rcr.CapWrite
}

// flushHeld delivers the replica's queued writes (the split-brain
// window closing) and returns the acks.
func (r *haReplica) flushHeld(guards []*rcr.FenceGuard) []rcr.CapAck {
	r.heldMu.Lock()
	held := r.held
	r.held = nil
	r.heldMu.Unlock()
	acks := make([]rcr.CapAck, 0, len(held))
	for _, hw := range held {
		acks = append(acks, guards[hw.shard].Offer(hw.w))
	}
	return acks
}

// haHarness wires N replicas over one shared fleet of fence guards.
type haHarness struct {
	clock  *fakeClock
	reg    *telemetry.Registry
	audit  *haAudit
	guards []*rcr.FenceGuard
	reps   []*haReplica
	shards int
}

func newHAHarness(t *testing.T, replicas, shards int, global units.Watts) *haHarness {
	t.Helper()
	h := &haHarness{
		clock:  &fakeClock{},
		reg:    telemetry.NewRegistry(),
		audit:  &haAudit{budget: float64(global), caps: make([]float64, shards)},
		shards: shards,
	}
	h.guards = make([]*rcr.FenceGuard, shards)
	for i := range h.guards {
		h.guards[i] = rcr.NewFenceGuard(h.clock.now, h.audit.applyFn(i))
		h.guards[i].Instrument(h.reg)
	}
	endpoints := make([]ShardEndpoint, shards)
	for i := range endpoints {
		endpoints[i] = ShardEndpoint{ID: i, Network: "unix", Addr: fmt.Sprintf("shard-%d", i)}
	}
	for r := 0; r < replicas; r++ {
		rep := &haReplica{
			journal: telemetry.NewJournal(1024, 1),
			streams: make([]*scriptStream, shards),
			done:    make(chan struct{}),
		}
		for i := range rep.streams {
			rep.streams[i] = &scriptStream{ch: make(chan scriptEvent)}
		}
		agg, err := NewAggregator(AggregatorConfig{
			Shards:        endpoints,
			Global:        global,
			Floor:         10,
			Max:           200,
			Period:        time.Hour, // tests drive Poll directly
			HealthHorizon: time.Hour, // health churn is not under test here
			Clock:         h.clock.now,
			Telemetry:     h.reg,
			Journal:       rep.journal,
			HA: &HAConfig{
				ID:         uint32(r + 1),
				LeaseTTL:   time.Second,
				Grace:      250 * time.Millisecond,
				JitterSeed: uint64(1000 * (r + 1)),
				WriteCap: func(shard int, w rcr.CapWrite) (rcr.CapAck, error) {
					if rep.blocked.Load() {
						return rcr.CapAck{}, errors.New("injected partition")
					}
					if rep.holding.Load() {
						rep.heldMu.Lock()
						rep.held = append(rep.held, heldCapWrite{shard: shard, w: w})
						rep.heldMu.Unlock()
						return rcr.CapAck{}, errors.New("injected timeout (write held)")
					}
					return h.guards[shard].Offer(w), nil
				},
			},
			Tune: func(shard int, cfg *resilience.ClientConfig) {
				cfg.Subscribe = func(context.Context, string, string) (resilience.SubStream, error) {
					return rep.streams[shard], nil
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		rep.agg = agg
		ctx, cancel := context.WithCancel(context.Background())
		rep.cancel = cancel
		go func() { defer close(rep.done); _ = agg.Run(ctx) }()
		t.Cleanup(func() {
			rep.cancel()
			<-rep.done
		})
		h.reps = append(h.reps, rep)
	}
	return h
}

// feedAll pushes one moving-heartbeat snapshot per shard to every
// replica's streams and polls until every replica sees a full fleet.
func (h *haHarness) feedAll(t *testing.T, beat float64) {
	t.Helper()
	now := h.clock.now()
	for _, rep := range h.reps {
		for i := range rep.streams {
			conc := 4.0
			if i%2 == 0 {
				conc = 26
			}
			rep.streams[i].ch <- scriptEvent{snap: shardSnap(beat, 80, conc, now)}
		}
	}
}

// pollAllUntil drives every replica's Poll until cond holds.
func (h *haHarness) pollAllUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for _, rep := range h.reps {
			rep.agg.Poll()
		}
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition never held: %s", what)
}

func (h *haHarness) leaders() []int {
	var out []int
	for r, rep := range h.reps {
		if rep.agg.Status().Leader {
			out = append(out, r)
		}
	}
	return out
}

func journalHas(j *telemetry.Journal, kind string) int {
	n := 0
	for _, d := range j.Entries() {
		if d.Kind == kind {
			n++
		}
	}
	return n
}

// TestHAElectionSingleWinner: two standby replicas over a virgin fleet
// elect exactly one leader; the loser's rival campaign is fenced out by
// the shards, and the winner partitions the budget under conservation.
func TestHAElectionSingleWinner(t *testing.T) {
	leak.Check(t)
	h := newHAHarness(t, 2, 3, 150)
	h.feedAll(t, 1)
	h.pollAllUntil(t, "fleet observed", func() bool {
		for _, rep := range h.reps {
			if rep.agg.Status().Healthy != h.shards {
				return false
			}
		}
		return true
	})

	// Past grace, past every possible jitter (jitter < grace): whoever
	// campaigns first wins; the rival is rejected by the live lease.
	h.clock.advance(300 * time.Millisecond) // > grace
	h.pollAllUntil(t, "candidacies scheduled", func() bool { return true })
	h.clock.advance(260 * time.Millisecond) // > max jitter
	h.pollAllUntil(t, "a leader elected", func() bool { return len(h.leaders()) == 1 })

	// Keep polling: leadership must stay single.
	for k := 0; k < 5; k++ {
		h.clock.advance(50 * time.Millisecond)
		for _, rep := range h.reps {
			rep.agg.Poll()
		}
		if n := len(h.leaders()); n != 1 {
			t.Fatalf("%d leaders after settle poll %d", n, k)
		}
	}
	if got := h.reg.Counter("cluster_leader_elections_total").Value(); got != 1 {
		t.Errorf("%d elections, want exactly 1", got)
	}
	leader := h.reps[h.leaders()[0]]
	if journalHas(leader.journal, telemetry.KindLeaderElected) != 1 {
		t.Error("winning campaign not journaled")
	}
	st := leader.agg.Status()
	if st.CapsSum <= 0 || float64(st.CapsSum) > 150+sumEps {
		t.Errorf("leader caps sum %.1f W", float64(st.CapsSum))
	}
	if h.audit.violations() != 0 {
		t.Errorf("%d conservation violations", h.audit.violations())
	}
	// The compute-bound shard (odd index) outranks the memory-bound ones.
	if st.Caps[1] <= st.Caps[0] {
		t.Errorf("headroom ignored under HA: caps %v", st.Caps)
	}
}

// TestHAHandoffReplaysCommittedAssignment: the leader dies mid-flight;
// the promoted standby adopts the committed assignment from campaign
// acks and re-asserts it verbatim — under its own fence — before any
// new partition, and conservation holds across the entire hand-off.
func TestHAHandoffReplaysCommittedAssignment(t *testing.T) {
	leak.Check(t)
	h := newHAHarness(t, 2, 3, 150)
	h.feedAll(t, 1)
	h.pollAllUntil(t, "fleet observed", func() bool {
		for _, rep := range h.reps {
			if rep.agg.Status().Healthy != h.shards {
				return false
			}
		}
		return true
	})
	h.clock.advance(300 * time.Millisecond)
	h.pollAllUntil(t, "schedule", func() bool { return true })
	h.clock.advance(260 * time.Millisecond)
	h.pollAllUntil(t, "leader elected", func() bool { return len(h.leaders()) == 1 })
	first := h.leaders()[0]
	standby := 1 - first
	h.pollAllUntil(t, "caps assigned", func() bool {
		return h.reps[first].agg.Status().CapsSum > 0
	})
	committed := make([]float64, h.shards)
	copy(committed, h.audit.caps)

	// The leader dies: its write path is severed and it stops polling.
	h.reps[first].blocked.Store(true)
	fenceBefore := h.reps[first].agg.Status().Fence
	preHandoffApplies := len(h.audit.snapshotLog())

	// Let the lease lapse, then drive only the standby.
	h.clock.advance(1100 * time.Millisecond) // > TTL: shard leases expire
	drive := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			h.reps[standby].agg.Poll()
			if cond() {
				return
			}
			h.clock.advance(20 * time.Millisecond)
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("condition never held: %s", what)
	}
	drive(func() bool { return h.reps[standby].agg.Status().Leader }, "standby promoted")

	st := h.reps[standby].agg.Status()
	if st.Fence <= fenceBefore {
		t.Fatalf("promoted fence %d not above the dead leader's %d", st.Fence, fenceBefore)
	}
	// The first cap-carrying applies under the new fence must re-assert
	// the committed assignment exactly — replay before repartition.
	log := h.audit.snapshotLog()[preHandoffApplies:]
	replayed := map[int]bool{}
	for _, ap := range log {
		if ap.fence != st.Fence {
			t.Fatalf("apply %+v under unexpected fence (want %d)", ap, st.Fence)
		}
		if !replayed[ap.shard] {
			if ap.cap != committed[ap.shard] {
				t.Fatalf("shard %d first post-handoff cap %.1f W, want the committed %.1f W",
					ap.shard, ap.cap, committed[ap.shard])
			}
			replayed[ap.shard] = true
		}
	}
	if len(replayed) != h.shards {
		t.Fatalf("replay reached %d/%d shards", len(replayed), h.shards)
	}
	if h.audit.violations() != 0 {
		t.Errorf("%d conservation violations across hand-off", h.audit.violations())
	}
	if journalHas(h.reps[standby].journal, telemetry.KindLeaderElected) != 1 {
		t.Error("promotion not journaled")
	}
}

// TestHASplitBrainFencedOut: the leader is isolated mid-window — it
// still believes it leads while its writes hang in the network. The
// standby takes over with a higher fence; when the old leader's held
// writes finally arrive they are all fence-rejected, and the old leader
// demotes itself the moment its lease runs out unrenewed.
func TestHASplitBrainFencedOut(t *testing.T) {
	leak.Check(t)
	h := newHAHarness(t, 2, 3, 150)
	h.feedAll(t, 1)
	h.pollAllUntil(t, "fleet observed", func() bool {
		for _, rep := range h.reps {
			if rep.agg.Status().Healthy != h.shards {
				return false
			}
		}
		return true
	})
	h.clock.advance(300 * time.Millisecond)
	h.pollAllUntil(t, "schedule", func() bool { return true })
	h.clock.advance(260 * time.Millisecond)
	h.pollAllUntil(t, "leader elected", func() bool { return len(h.leaders()) == 1 })
	first := h.leaders()[0]
	standby := 1 - first
	h.pollAllUntil(t, "caps assigned", func() bool {
		return h.reps[first].agg.Status().CapsSum > 0
	})

	// Split-brain window opens: the leader's writes are held in flight.
	h.reps[first].holding.Store(true)
	// The isolated leader keeps polling inside its lease — it still
	// believes it leads and keeps issuing (held) writes.
	h.clock.advance(200 * time.Millisecond)
	h.reps[first].agg.Poll()
	if !h.reps[first].agg.Status().Leader {
		t.Fatal("leader gave up inside its own lease")
	}
	// Its lease lapses unrenewed: self-demotion, no more writes.
	h.clock.advance(900 * time.Millisecond)
	h.reps[first].agg.Poll()
	if h.reps[first].agg.Status().Leader {
		t.Fatal("leader outlived its unrenewed lease")
	}
	if journalHas(h.reps[first].journal, telemetry.KindLeaderDemoted) == 0 {
		t.Error("demotion not journaled")
	}

	// The standby takes over.
	drive := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			h.reps[standby].agg.Poll()
			if cond() {
				return
			}
			h.clock.advance(20 * time.Millisecond)
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("condition never held: %s", what)
	}
	drive(func() bool { return h.reps[standby].agg.Status().Leader }, "standby promoted")
	newFence := h.reps[standby].agg.Status().Fence

	// The window closes: the old leader's stale writes finally arrive.
	rejectsBefore := h.reg.Counter("cluster_fence_rejects_total").Value()
	appliesBefore := len(h.audit.snapshotLog())
	acks := h.reps[first].flushHeld(h.guards)
	if len(acks) == 0 {
		t.Fatal("split-brain window held no writes")
	}
	for _, ack := range acks {
		if ack.Status != rcr.CapFenceRejected {
			t.Fatalf("stale write accepted after takeover: %+v", ack)
		}
		if ack.Fence < newFence {
			t.Fatalf("guard reports fence %d below the new leader's %d", ack.Fence, newFence)
		}
	}
	if got := h.reg.Counter("cluster_fence_rejects_total").Value(); got != rejectsBefore+uint64(len(acks)) {
		t.Errorf("fence rejects %d, want %d", got, rejectsBefore+uint64(len(acks)))
	}
	if got := len(h.audit.snapshotLog()); got != appliesBefore {
		t.Fatalf("%d caps applied by the demoted leader's stale writes", got-appliesBefore)
	}
	if h.audit.violations() != 0 {
		t.Errorf("%d conservation violations", h.audit.violations())
	}
}

// TestHAStandbyObservesLeaseThroughMeters: a standby whose streams
// carry a live mirrored lease never campaigns, no matter how long it
// waits; once the mirrored expiry lapses, it does.
func TestHAStandbyObservesLeaseThroughMeters(t *testing.T) {
	leak.Check(t)
	h := newHAHarness(t, 1, 2, 100)
	rep := h.reps[0]

	leaseSnap := func(beat float64, fence uint64, expiry time.Duration, now time.Duration) rcr.Snapshot {
		s := shardSnap(beat, 80, 10, now)
		s.System = append(s.System,
			rcr.MeterValue{Name: rcr.MeterFence, Value: float64(fence), Updated: now},
			rcr.MeterValue{Name: rcr.MeterLeaseHolder, Value: 99, Updated: now},
			rcr.MeterValue{Name: rcr.MeterLeaseExpiry, Value: expiry.Seconds(), Updated: now},
			rcr.MeterValue{Name: rcr.MeterFencedCap, Value: 50, Updated: now},
		)
		return s
	}
	// Another replica (id 99) holds the lease until t=10s.
	for i := range rep.streams {
		rep.streams[i].ch <- scriptEvent{snap: leaseSnap(1, 7, 10*time.Second, h.clock.now())}
	}
	h.pollAllUntil(t, "lease observed", func() bool { return rep.agg.Status().Healthy == 2 })
	for k := 0; k < 6; k++ {
		h.clock.advance(time.Second) // far past grace — but the lease is live
		rep.agg.Poll()
	}
	if rep.agg.Status().Leader || rep.agg.Status().Elections != 0 {
		t.Fatalf("standby campaigned against a live mirrored lease: %+v", rep.agg.Status())
	}
	// t=6s now; the mirrored lease runs to 10s. Walk past it plus grace.
	h.clock.advance(4500 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for !rep.agg.Status().Leader && time.Now().Before(deadline) {
		rep.agg.Poll()
		h.clock.advance(50 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	st := rep.agg.Status()
	if !st.Leader {
		t.Fatal("standby never campaigned after the mirrored lease lapsed")
	}
	if st.Fence <= 7 {
		t.Fatalf("campaign fence %d not above the observed 7", st.Fence)
	}
	// It adopted the mirrored committed cap as its baseline: the replay
	// re-asserts 50 W per shard.
	log := h.audit.snapshotLog()
	if len(log) == 0 || log[0].cap != 50 {
		t.Fatalf("replay did not re-assert the mirrored 50 W committed cap: %+v", log)
	}
}

// TestHAValidation: HA config validation.
func TestHAValidation(t *testing.T) {
	ep := []ShardEndpoint{{ID: 0, Network: "unix", Addr: "x"}}
	clock := func() time.Duration { return 0 }
	wc := func(int, rcr.CapWrite) (rcr.CapAck, error) { return rcr.CapAck{}, nil }
	if _, err := NewAggregator(AggregatorConfig{Shards: ep, Global: 100, Clock: clock,
		HA: &HAConfig{ID: 0, WriteCap: wc}}); err == nil {
		t.Error("replica ID 0 accepted")
	}
	if _, err := NewAggregator(AggregatorConfig{Shards: ep, Global: 100, Clock: clock,
		HA: &HAConfig{ID: 1}}); err == nil {
		t.Error("HA without WriteCap accepted")
	}
	// With HA, SetCap is not required.
	if _, err := NewAggregator(AggregatorConfig{Shards: ep, Global: 100, Clock: clock,
		HA: &HAConfig{ID: 1, WriteCap: wc}}); err != nil {
		t.Errorf("valid HA config rejected: %v", err)
	}
}
