package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience/leak"
	"repro/internal/telemetry"
	"repro/internal/workloads"
	"repro/internal/workloads/suite"
)

// TestFleetClosedLoop stands up two real full-stack shards — one
// memory-bound (lulesh), one compute-bound (nqueens) — under a live
// aggregator with a binding global budget, and checks the loop end to
// end: shard heartbeats reach the aggregator through the real wire,
// both shards are judged healthy while their workloads run, the
// partition skews watts toward the compute-bound shard's headroom, and
// the pushed caps land in each node's own PowerCap controller.
func TestFleetClosedLoop(t *testing.T) {
	leak.Check(t)
	fleet, err := NewFleet(FleetConfig{Shards: 2, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	reg := telemetry.NewRegistry()
	t0 := time.Now()
	agg, err := NewAggregator(AggregatorConfig{
		Shards:        fleet.Endpoints(),
		Global:        120, // binding: well under two uncapped nodes
		Floor:         10,
		Max:           300,
		Period:        5 * time.Millisecond,
		HealthHorizon: 300 * time.Millisecond, // rides out Prepare gaps between loop iterations
		Clock:         func() time.Duration { return time.Since(t0) },
		SetCap:        fleet.SetCap,
		Telemetry:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	aggDone := make(chan error, 1)
	go func() { aggDone <- agg.Run(ctx) }()

	// Loop each shard's workload until told to stop: shard 0 lulesh,
	// shard 1 nqueens — the paper's canonical memory-bound/compute-bound
	// pair.
	apps := []string{"lulesh", "nqueens"}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	runErr := make([]error, fleet.Len())
	for i := 0; i < fleet.Len(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				wl, err := suite.New(apps[i])
				if err == nil {
					err = wl.Prepare(workloads.Params{
						MachineConfig: fleet.System(i).Machine().Config(),
						Scale:         0.5,
					})
				}
				if err == nil {
					_, err = fleet.System(i).RunWorkload(wl)
				}
				if err != nil {
					runErr[i] = err
					return
				}
			}
		}(i)
	}

	// Wait for the loop to close: both shards healthy and a skewed
	// partition pushed into the real cap controllers.
	deadline := time.Now().Add(10 * time.Second)
	var st AggregatorStatus
	for time.Now().Before(deadline) {
		st = agg.Status()
		if st.Healthy == 2 && st.Caps[1] > st.Caps[0] && st.Caps[0] > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	cancel()
	<-aggDone
	for i, err := range runErr {
		if err != nil {
			t.Fatalf("shard %d workload: %v", i, err)
		}
	}
	if st.Healthy != 2 {
		t.Fatalf("shards never both healthy: %+v", st)
	}
	if st.Caps[1] <= st.Caps[0] {
		t.Errorf("compute-bound shard got %.1f W ≤ memory-bound %.1f W: partition ignored real headroom",
			float64(st.Caps[1]), float64(st.Caps[0]))
	}
	if float64(st.CapsSum) > 120+sumEps {
		t.Errorf("Σcaps %.3f exceeds the 120 W budget", float64(st.CapsSum))
	}
	// The pushed shares really landed in each node's cap controller:
	// with the aggregator stopped, its applied bookkeeping and the
	// controllers must agree exactly. (The mid-run snapshot st cannot be
	// compared — the aggregator kept repartitioning after it was taken.)
	final := agg.Status()
	for i := 0; i < fleet.Len(); i++ {
		if got := fleet.System(i).PowerCapController().Cap(); got != final.Caps[i] {
			t.Errorf("shard %d PowerCap holds %.1f W, aggregator applied %.1f W",
				i, float64(got), float64(final.Caps[i]))
		}
	}
	t.Logf("caps: lulesh %.1f W, nqueens %.1f W (Σ %.1f of 120 W)",
		float64(st.Caps[0]), float64(st.Caps[1]), float64(st.CapsSum))
}
