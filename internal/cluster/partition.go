// Package cluster scales the single-node rcrd stack out to a simulated
// fleet. N independent core.System instances (shards) each run their own
// sampler, blackboard and rcrd server; an aggregator tier subscribes to
// every shard's delta stream, rolls the shard snapshots up into a
// cluster blackboard, and divides a global power budget across the
// shards — the multi-node power-clamping environment the paper's §VI
// outlook sketches around Rountree et al.'s hierarchical power
// allocation. Per-node enforcement stays where it already lives: each
// shard's maestro.PowerCap receives its share via SetCap and walks its
// own throttle toward it.
//
// The partitioner in this file is deliberately a pure function so its
// invariants can be property-tested in isolation:
//
//   - conservation: Σ(assigned caps) never exceeds the global budget,
//     and ApplyOrder sequences a re-partition so the invariant holds at
//     every intermediate step, not just at the endpoints;
//   - floors: no shard is pushed below its configured floor while the
//     budget can afford all floors (an overcommitted budget scales all
//     floors proportionally rather than zeroing anyone);
//   - monotonicity: raising one shard's reported headroom, all else
//     equal, never shrinks that shard's assignment;
//   - determinism: the same inputs always produce bitwise-identical
//     output.
package cluster

import "repro/internal/units"

// NodeReport is one shard's input to the budget partitioner: what the
// aggregator learned about the shard from its rolled-up meters.
type NodeReport struct {
	// Headroom in [0,1] is the shard's scaling headroom — how far its
	// workload sits below the memory-bandwidth knee, i.e. how much extra
	// power it could turn into throughput. The aggregator derives it
	// from the shard's memory-concurrency meter against the machine
	// preset's knee: a compute-bound shard (nqueens) reports high
	// headroom, a memory-bound one (lulesh) reports low headroom because
	// the paper shows throttling barely costs it performance. Values
	// outside [0,1] are clamped.
	Headroom float64
	// Floor is the smallest cap the shard may be assigned. It must stay
	// positive: maestro.PowerCap rejects non-positive bounds, and a
	// shard starved to zero watts could never report back. Non-positive
	// floors are clamped to a minimal positive floor.
	Floor units.Watts
	// Max is the most power the shard can usefully absorb (its uncapped
	// draw); budget beyond Max is redistributed to other shards rather
	// than wasted. Max below Floor is clamped up to Floor.
	Max units.Watts
	// Healthy marks the shard live. An unhealthy shard keeps only its
	// floor — enough to stay enforceable when it returns — and its
	// surplus share flows to the healthy shards.
	Healthy bool
}

// minFloor is the clamp applied to non-positive floors, in watts. One
// watt is far below any real node's idle draw; it exists only so a
// defective report can never produce a cap SetCap would reject.
const minFloor = 1.0

// waterEps is the residue below which water-filling stops: surplus
// smaller than a milliwatt is measurement noise, and chasing it would
// only burn passes.
const waterEps = 1e-3

// sumEps is the conservation tolerance on Σcaps comparisons:
// water-filling grants from a strictly decreasing remainder, so any
// overshoot is pure float64 rounding — far below a microwatt on
// fleet-scale sums. The property tests and the aggregator's runtime
// self-check both judge against it.
const sumEps = 1e-6

func clampFloor(n NodeReport) float64 {
	f := float64(n.Floor)
	if f < minFloor {
		f = minFloor
	}
	return f
}

func clampMax(n NodeReport) float64 {
	m := float64(n.Max)
	if f := clampFloor(n); m < f {
		m = f
	}
	return m
}

func clampHeadroom(h float64) float64 {
	switch {
	case h < 0 || h != h: // negative or NaN
		return 0
	case h > 1:
		return 1
	}
	return h
}

// Partition divides the global budget across the reported shards and
// returns the per-shard caps, reusing out's backing array when it is
// large enough. The algorithm is two-phase:
//
//  1. Floors: every shard, healthy or not, is assigned its floor. If
//     the floors alone overcommit the budget, all floors are scaled
//     down proportionally so their sum equals the budget.
//  2. Water-filling: the surplus is distributed to healthy shards in
//     proportion to their headroom, clamped at each shard's Max; budget
//     a saturated shard cannot absorb is redistributed among the rest
//     in further passes. If every eligible shard reports zero headroom
//     the surplus is split equally instead. Surplus no healthy shard
//     can absorb is held back, not burned.
//
// The returned caps always satisfy Σ(caps) ≤ global (up to float64
// rounding, which the implementation biases to under- rather than
// over-shoot by granting from a strictly decreasing remainder).
func Partition(global units.Watts, nodes []NodeReport, out []units.Watts) []units.Watts {
	if cap(out) < len(nodes) {
		out = make([]units.Watts, len(nodes))
	}
	out = out[:len(nodes)]
	if len(nodes) == 0 {
		return out
	}
	g := float64(global)
	if g < 0 || g != g {
		g = 0
	}

	// Phase 1: floors, scaled down proportionally when overcommitted.
	floorSum := 0.0
	for i := range nodes {
		floorSum += clampFloor(nodes[i])
	}
	scale := 1.0
	if floorSum > g {
		scale = g / floorSum
	}
	remaining := g
	for i := range nodes {
		grant := clampFloor(nodes[i]) * scale
		if grant > remaining {
			grant = remaining
		}
		out[i] = units.Watts(grant)
		remaining -= grant
	}

	// Phase 2: water-fill the surplus. Each pass either drains the
	// surplus or saturates at least one shard at its Max, so the pass
	// count is bounded by the shard count.
	for pass := 0; pass <= len(nodes) && remaining > waterEps; pass++ {
		wsum := 0.0
		eligible := 0
		for i := range nodes {
			if !nodes[i].Healthy || float64(out[i]) >= clampMax(nodes[i]) {
				continue
			}
			wsum += clampHeadroom(nodes[i].Headroom)
			eligible++
		}
		if eligible == 0 {
			break // surplus held back
		}
		budget := remaining
		progressed := false
		for i := range nodes {
			maxW := clampMax(nodes[i])
			if !nodes[i].Healthy || float64(out[i]) >= maxW {
				continue
			}
			var share float64
			if wsum > 0 {
				share = budget * clampHeadroom(nodes[i].Headroom) / wsum
			} else {
				share = budget / float64(eligible)
			}
			if room := maxW - float64(out[i]); share > room {
				share = room
			}
			if share > remaining {
				share = remaining
			}
			if share <= 0 {
				continue
			}
			out[i] = units.Watts(float64(out[i]) + share)
			remaining -= share
			progressed = true
		}
		if !progressed {
			break // only zero-headroom shards remain and wsum > 0 rounds to nothing
		}
	}
	return out
}

// Sum totals a cap assignment.
func Sum(caps []units.Watts) units.Watts {
	var s units.Watts
	for _, c := range caps {
		s += c
	}
	return s
}

// ApplyOrder returns the order in which to push a re-partition from old
// to next so that the fleet-wide sum of applied caps never exceeds
// max(Σold, Σnext) at any intermediate step: all decreases first, then
// all increases, each group in index order. With decreases applied
// first the running sum only falls from Σold; once the increases start,
// every shard it has touched already holds its next value, so the
// running sum is bounded by Σnext. The result is a permutation of the
// indices; old and next must be the same length (ApplyOrder panics
// otherwise, since a mismatched re-partition is a programming error).
func ApplyOrder(old, next []units.Watts) []int {
	if len(old) != len(next) {
		panic("cluster: ApplyOrder length mismatch")
	}
	order := make([]int, 0, len(old))
	for i := range next {
		if next[i] <= old[i] {
			order = append(order, i)
		}
	}
	for i := range next {
		if next[i] > old[i] {
			order = append(order, i)
		}
	}
	return order
}
