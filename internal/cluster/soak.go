package cluster

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/rcr"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Fleet chaos soak: N synthetic shards — each a real rcrd server on a
// real unix socket with its own blackboard and delta publisher — under
// one aggregator, driven through a seeded faults.FleetSchedule that
// kills/restarts shards, resets their connections and slow-lorises
// their sockets while the global budget keeps being re-partitioned.
// The shards are synthetic (a feeder goroutine stands in for the full
// core.System stack) because the soak subject is the aggregation tier:
// subscription resilience across shard crashes, restart/epoch
// detection, and above all the conservation invariant, audited
// independently at the SetCap seam after every single application.
//
// Like the single-node soak (internal/resilience/soak) this runs in
// host time against real sockets; internal/cluster/fleet.go is the
// full-stack (virtual-time core.System) counterpart used by the
// experiments harness.

// SoakConfig tunes one fleet soak run.
type SoakConfig struct {
	// Seed determines the fleet fault schedule and all retry jitter.
	Seed uint64
	// Shards is the fleet size. Zero selects 8.
	Shards int
	// Budget is the wall-time length of the run. Zero selects 2 s; all
	// fault windows close by 80% of it, leaving a convergence tail.
	Budget time.Duration
	// FeedPeriod is the synthetic shards' sample cadence. Zero selects
	// 2 ms.
	FeedPeriod time.Duration
	// Period is the aggregator's poll/repartition cadence. Zero selects
	// 10 ms.
	Period time.Duration
	// Global is the fleet-wide budget. Zero selects 60 W per shard —
	// binding, so the partitioner always has real work.
	Global units.Watts
	// ConvergeK is how many final polls must pass with a full-health,
	// cap-stable fleet for the run to count as converged. Zero selects 3.
	ConvergeK uint64
	// Dir hosts the shard sockets; empty selects a fresh temp dir.
	Dir string
	// SkipResourceAudit disables the per-run goroutine/heap audit (the
	// corpus fan-out runs many soaks concurrently and audits once).
	SkipResourceAudit bool
	// Telemetry, when non-nil, receives every component's instruments.
	Telemetry *telemetry.Registry
}

// SoakReport is the audited outcome of one fleet soak run.
type SoakReport struct {
	Seed      uint64
	Shards    int
	Events    int
	ClearTime time.Duration

	// Aggregation activity.
	Polls         uint64
	Repartitions  uint64
	CapPushes     uint64 // individual SetCap applications audited
	GapResyncs    uint64 // delta-gap episodes ridden out by shard clients
	Resubscribes  uint64 // streams re-opened after a shard loss
	RestartsSeen  uint64 // shard restarts the aggregator detected (epoch bumps)
	HealthyAtEnd  int
	Converged     bool
	LastChange    uint64 // poll index of the final cap change
	FinalCapsSumW float64

	// Faults injected.
	ShardKills uint64 // shard server kill/restart cycles performed
	Resets     uint64
	LorisConns uint64

	// Invariant audit.
	ConservationViolations uint64 // Σ applied caps > global, at any push
	GoroutineGrowth        int
	HeapGrowthBytes        int64

	Violations []string
}

// Passed reports whether every invariant held.
func (r *SoakReport) Passed() bool { return len(r.Violations) == 0 }

// Summary renders the report as one line.
func (r *SoakReport) Summary() string {
	return fmt.Sprintf("seed %d: %d shards, %d events, %d polls, %d repartitions, %d cap-pushes, %d kills, %d resets, %d loris, %d restarts-seen, %d gap-resyncs, %d resubs, %d conservation-violations, healthy %d/%d, converged %v, goroutines %+d",
		r.Seed, r.Shards, r.Events, r.Polls, r.Repartitions, r.CapPushes,
		r.ShardKills, r.Resets, r.LorisConns, r.RestartsSeen, r.GapResyncs, r.Resubscribes,
		r.ConservationViolations, r.HealthyAtEnd, r.Shards, r.Converged, r.GoroutineGrowth)
}

// soakHeapBound is the accepted HeapAlloc delta across a run.
const soakHeapBound = 48 << 20

// hostClock measures host time from a run's start; it serves as the
// aggregator's clock and every shard server's rcr.Clock.
type hostClock struct{ t0 time.Time }

func (c *hostClock) Now() time.Duration { return time.Since(c.t0) }

// capAuditor is the independent conservation monitor wrapped around the
// SetCap seam: it re-checks Σ(applied caps) ≤ global after every single
// application, so a partitioner or apply-order bug cannot hide between
// polls.
type capAuditor struct {
	global float64
	mu     sync.Mutex
	caps   []float64
	pushes uint64
	bad    uint64
}

func (ca *capAuditor) set(shard int, cap units.Watts) error {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	ca.caps[shard] = float64(cap)
	ca.pushes++
	sum := 0.0
	for _, c := range ca.caps {
		sum += c
	}
	if sum > ca.global+sumEps {
		ca.bad++
	}
	return nil
}

// cap returns the shard's currently applied cap (0 = never assigned).
func (ca *capAuditor) cap(shard int) float64 {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return ca.caps[shard]
}

// soakShard is one synthetic shard: a restartable rcrd server whose
// blackboard is fed by the shared feeder. A restart swaps in a fresh
// blackboard, so the new incarnation's heartbeat restarts from 1 —
// exactly what a real shard crash looks like to the aggregator.
type soakShard struct {
	id     int
	socket string
	clock  *hostClock
	sched  faults.FleetSchedule
	reg    *telemetry.Registry
	rep    *SoakReport

	// fence, when non-nil, is the shard's fencing authority. It lives
	// here — outside the restartable server — because a real node's
	// controller-side fence ratchet survives daemon restarts: a new
	// incarnation must not grant a stale fence its dead predecessor
	// already refused. start() re-binds it to each fresh blackboard.
	fence *rcr.FenceGuard

	mu       sync.Mutex
	bb       *rcr.Blackboard
	srv      *rcr.Server
	serveErr chan error
	beat     float64
}

func (s *soakShard) start() error {
	if err := os.Remove(s.socket); err != nil && !os.IsNotExist(err) {
		return err
	}
	ln, err := net.Listen("unix", s.socket)
	if err != nil {
		return err
	}
	bb, err := rcr.NewBlackboard(2, 2)
	if err != nil {
		ln.Close()
		return err
	}
	srv := rcr.NewServer(bb, s.clock, &shardChaosListener{Listener: ln, shard: s})
	srv.MaxConns = 8
	srv.AcceptQueue = 16
	srv.Shed = true
	srv.DrainTimeout = 50 * time.Millisecond
	srv.ReadTimeout = 100 * time.Millisecond
	srv.WriteTimeout = 100 * time.Millisecond
	srv.Pub = rcr.NewPublisher(bb)
	srv.Pub.Instrument(s.reg)
	srv.Instrument(s.reg)
	if s.fence != nil {
		s.fence.Bind(bb)
		srv.Fence = s.fence
	}
	ch := make(chan error, 1)
	go func() { ch <- srv.Serve() }()
	s.mu.Lock()
	s.bb, s.srv, s.serveErr, s.beat = bb, srv, ch, 0
	s.mu.Unlock()
	return nil
}

// offerCap delivers one fenced cap write to the shard's guard — but
// only while the shard is up: a killed or restarting shard cannot ack,
// exactly like a dead daemon, so the HA leader sees a transport error
// and its lease renewal on this shard fails.
func (s *soakShard) offerCap(w rcr.CapWrite) (rcr.CapAck, error) {
	s.mu.Lock()
	up := s.srv != nil
	s.mu.Unlock()
	if !up || s.fence == nil {
		return rcr.CapAck{}, fmt.Errorf("shard %d: down (injected)", s.id)
	}
	return s.fence.Offer(w), nil
}

func (s *soakShard) stop() {
	s.mu.Lock()
	srv, ch := s.srv, s.serveErr
	s.srv, s.serveErr, s.bb = nil, nil, nil
	s.mu.Unlock()
	if srv == nil {
		return
	}
	_ = srv.Close()
	<-ch
}

// feed writes one synthetic sample tick: heartbeat, per-socket power
// and memory concurrency, then drives the publisher. Power follows the
// applied cap — a capped shard draws min(demand, cap) — so the
// aggregator's partitioning visibly shapes the fleet it observes. Even
// shards are memory-bound (high concurrency near the knee, low
// headroom), odd shards compute-bound (low concurrency, high headroom):
// the skew that makes proportional partitioning differ from an equal
// split.
func (s *soakShard) feed(now time.Duration, cap float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.srv == nil {
		return
	}
	s.beat++
	demand, conc := 150.0, 4.0 // compute-bound
	if s.id%2 == 0 {
		demand, conc = 100.0, 26.0 // memory-bound, near the 28-ref knee
	}
	power := demand
	if cap > 0 && cap < power {
		power = cap
	}
	power += 3 * float64(int(s.beat)%3-1) // ±3 W sampling ripple
	if power < 0 {
		power = 0
	}
	s.bb.SetSystem(rcr.MeterHeartbeat, s.beat, now)
	for d := 0; d < s.bb.Sockets(); d++ {
		s.bb.SetSocket(d, rcr.MeterPower, power/float64(s.bb.Sockets()), now)
		s.bb.SetSocket(d, rcr.MeterMemConcurrency, conc, now)
	}
	s.srv.Pub.Tick(now)
}

// run executes the shard's ServerRestart windows: the shard dies at
// each window's start and a fresh incarnation comes back at its end.
func (s *soakShard) run(budget time.Duration, kills *uint64) {
	type window struct{ start, end time.Duration }
	var wins []window
	for _, ev := range s.sched.Events {
		if ev.Shard == s.id && ev.Kind == faults.ServerRestart {
			wins = append(wins, window{ev.Start, ev.End})
		}
	}
	for i := 0; i < len(wins); i++ {
		for j := i + 1; j < len(wins); j++ {
			if wins[j].start < wins[i].start {
				wins[i], wins[j] = wins[j], wins[i]
			}
		}
	}
	for _, w := range wins {
		if d := w.start - s.clock.Now(); d > 0 {
			time.Sleep(d)
		}
		if s.clock.Now() >= budget {
			return
		}
		s.stop()
		if d := w.end - s.clock.Now(); d > 0 {
			time.Sleep(d)
		}
		if err := s.start(); err != nil {
			time.Sleep(5 * time.Millisecond)
			if err := s.start(); err != nil {
				return
			}
		}
		atomic.AddUint64(kills, 1)
	}
}

// shardChaosListener injects ConnReset windows scoped to its shard.
type shardChaosListener struct {
	net.Listener
	shard *soakShard
}

func (l *shardChaosListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	for _, k := range l.shard.sched.ActiveOn(l.shard.id, l.shard.clock.Now()) {
		if k == faults.ConnReset {
			atomic.AddUint64(&l.shard.rep.Resets, 1)
			return &resetConn{Conn: c}, nil
		}
	}
	return c, nil
}

// resetConn fails every write as if the peer reset the connection.
type resetConn struct{ net.Conn }

func (c *resetConn) Write([]byte) (int, error) {
	c.Conn.Close()
	return 0, fmt.Errorf("write: connection reset by peer (injected)")
}

// runFleetLoris dials slow-loris connections against shards inside
// their SlowLoris windows: one byte, then silence, until the server's
// read deadline frees the worker.
func runFleetLoris(clock *hostClock, shards []*soakShard, sched faults.FleetSchedule, budget time.Duration, rep *SoakReport) {
	conns := make(map[int][]net.Conn)
	defer func() {
		for _, cs := range conns {
			for _, c := range cs {
				c.Close()
			}
		}
	}()
	for clock.Now() < budget {
		now := clock.Now()
		for _, sh := range shards {
			active := false
			for _, k := range sched.ActiveOn(sh.id, now) {
				if k == faults.SlowLoris {
					active = true
				}
			}
			if active && len(conns[sh.id]) < 4 {
				if c, err := net.DialTimeout("unix", sh.socket, 20*time.Millisecond); err == nil {
					conns[sh.id] = append(conns[sh.id], c)
					atomic.AddUint64(&rep.LorisConns, 1)
					_, _ = c.Write([]byte("G"))
				}
			}
			if !active && len(conns[sh.id]) > 0 {
				for _, c := range conns[sh.id] {
					c.Close()
				}
				conns[sh.id] = conns[sh.id][:0]
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// RunSoak executes one fleet chaos soak and audits it.
func RunSoak(cfg SoakConfig) (*SoakReport, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 2 * time.Second
	}
	if cfg.FeedPeriod <= 0 {
		cfg.FeedPeriod = 2 * time.Millisecond
	}
	if cfg.Period <= 0 {
		cfg.Period = 10 * time.Millisecond
	}
	if cfg.Global <= 0 {
		cfg.Global = units.Watts(60 * float64(cfg.Shards))
	}
	if cfg.ConvergeK == 0 {
		cfg.ConvergeK = 3
	}
	if raceEnabled {
		// Race instrumentation slows the pipeline several-fold; stretch
		// the whole timebase uniformly so the run exercises the same
		// number of polls, feeds and fault windows in slowed-down time.
		cfg.Budget *= 4
		cfg.FeedPeriod *= 4
		cfg.Period *= 4
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "clustersoak"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	sched := faults.GenerateFleetSchedule(cfg.Seed, cfg.Shards, cfg.Budget*4/5)
	rep := &SoakReport{
		Seed:      cfg.Seed,
		Shards:    cfg.Shards,
		Events:    len(sched.Events),
		ClearTime: sched.ClearTime(),
	}

	var goroutinesBefore int
	var msBefore runtime.MemStats
	if !cfg.SkipResourceAudit {
		goroutinesBefore = runtime.NumGoroutine()
		runtime.GC()
		runtime.ReadMemStats(&msBefore)
	}

	clock := &hostClock{t0: time.Now()}
	shards := make([]*soakShard, cfg.Shards)
	endpoints := make([]ShardEndpoint, cfg.Shards)
	for i := range shards {
		shards[i] = &soakShard{
			id:     i,
			socket: filepath.Join(dir, fmt.Sprintf("shard-%d.sock", i)),
			clock:  clock,
			sched:  sched,
			reg:    reg,
			rep:    rep,
		}
		if err := shards[i].start(); err != nil {
			for j := 0; j < i; j++ {
				shards[j].stop()
			}
			return nil, err
		}
		endpoints[i] = ShardEndpoint{ID: i, Network: "unix", Addr: shards[i].socket}
	}

	auditor := &capAuditor{global: float64(cfg.Global), caps: make([]float64, cfg.Shards)}
	journal := telemetry.NewJournal(1<<12, 1)
	agg, err := NewAggregator(AggregatorConfig{
		Shards:        endpoints,
		Global:        cfg.Global,
		Floor:         10,
		Max:           200,
		Period:        cfg.Period,
		HealthHorizon: 6 * cfg.Period,
		Clock:         clock.Now,
		SetCap:        auditor.set,
		Telemetry:     reg,
		Journal:       journal,
		Tune: func(shard int, ccfg *resilience.ClientConfig) {
			ccfg.Backoff = resilience.Backoff{
				Base: 5 * time.Millisecond,
				Max:  40 * time.Millisecond,
				Seed: cfg.Seed ^ uint64(shard)<<20,
			}
		},
	})
	if err != nil {
		for _, sh := range shards {
			sh.stop()
		}
		return nil, err
	}

	// Feeder: one goroutine ticks every shard on the host cadence.
	stopFeed := make(chan struct{})
	var feedWG sync.WaitGroup
	feedWG.Add(1)
	go func() {
		defer feedWG.Done()
		tick := time.NewTicker(cfg.FeedPeriod)
		defer tick.Stop()
		for {
			select {
			case <-stopFeed:
				return
			case <-tick.C:
				now := clock.Now()
				for i, sh := range shards {
					sh.feed(now, auditor.cap(i))
				}
			}
		}
	}()

	// Aggregator: subscriptions plus the poll/repartition ticker.
	ctx, cancel := context.WithCancel(context.Background())
	aggDone := make(chan error, 1)
	go func() { aggDone <- agg.Run(ctx) }()

	// Chaos: per-shard restart schedules plus the fleet loris attacker.
	var chaosWG sync.WaitGroup
	for _, sh := range shards {
		chaosWG.Add(1)
		go func(sh *soakShard) {
			defer chaosWG.Done()
			sh.run(cfg.Budget, &rep.ShardKills)
		}(sh)
	}
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		runFleetLoris(clock, shards, sched, cfg.Budget, rep)
	}()

	// Let the run play out, then tear down in dependency order.
	time.Sleep(cfg.Budget - clock.Now())
	chaosWG.Wait()
	st := agg.Status()
	converged := agg.ConvergedSince(cfg.ConvergeK)
	cancel()
	<-aggDone
	close(stopFeed)
	feedWG.Wait()
	for _, sh := range shards {
		sh.stop()
	}

	rep.Polls = st.Polls
	rep.Repartitions = reg.Counter("cluster_repartitions_total").Value()
	rep.RestartsSeen = st.ShardRestarts
	rep.HealthyAtEnd = st.Healthy
	rep.Converged = converged
	rep.LastChange = st.LastChange
	rep.FinalCapsSumW = float64(st.CapsSum)
	rep.CapPushes = auditor.pushes
	rep.ConservationViolations = auditor.bad + reg.Counter("cluster_conservation_violations_total").Value()
	rep.GapResyncs = reg.Counter("resilience_client_gap_resyncs_total").Value()
	rep.Resubscribes = reg.Counter("resilience_client_resubscribes_total").Value()

	if !cfg.SkipResourceAudit {
		deadline := time.Now().Add(2 * time.Second)
		growth := runtime.NumGoroutine() - goroutinesBefore
		for growth > 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			growth = runtime.NumGoroutine() - goroutinesBefore
		}
		rep.GoroutineGrowth = growth
		var msAfter runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&msAfter)
		rep.HeapGrowthBytes = int64(msAfter.HeapAlloc) - int64(msBefore.HeapAlloc)
	}

	rep.audit(cfg)
	return rep, nil
}

// audit fills Violations: the invariants every seed must hold.
func (r *SoakReport) audit(cfg SoakConfig) {
	if r.ConservationViolations > 0 {
		r.Violations = append(r.Violations,
			fmt.Sprintf("%d conservation violations: Σ applied caps exceeded the %0.f W budget", r.ConservationViolations, float64(cfg.Global)))
	}
	if r.Polls == 0 {
		r.Violations = append(r.Violations, "aggregator never polled")
	}
	if r.CapPushes == 0 {
		r.Violations = append(r.Violations, "no cap was ever pushed: the budget was never partitioned")
	}
	if !r.Converged {
		r.Violations = append(r.Violations,
			fmt.Sprintf("fleet did not converge after the last fault window (%d/%d healthy, caps last changed at poll %d of %d)",
				r.HealthyAtEnd, r.Shards, r.LastChange, r.Polls))
	}
	if r.GoroutineGrowth > 0 {
		r.Violations = append(r.Violations,
			fmt.Sprintf("goroutine leak: %+d after teardown", r.GoroutineGrowth))
	}
	if r.HeapGrowthBytes > soakHeapBound {
		r.Violations = append(r.Violations,
			fmt.Sprintf("heap grew %d bytes (bound %d)", r.HeapGrowthBytes, soakHeapBound))
	}
}
