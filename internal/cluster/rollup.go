package cluster

import (
	"fmt"
	"math"
	"time"
)

// Cluster roll-up encoding ("CLS1"): the aggregator's fleet-wide state
// as one frame, exported up the hierarchy (a rack aggregator feeding a
// row aggregator) or to operators. Unlike the per-node RCRF/RCRD frames
// the records here carry explicit shard identity and incarnation, so a
// receiver can reject replayed or out-of-order frames no matter how
// they were transported:
//
//	header:
//	  magic    [4]byte "CLS1"
//	  now      int64   (ns, aggregator host clock)
//	  budget   float64 (global watt budget)
//	  nShards  uint16
//	per shard, ascending strictly unique id:
//	  id       uint16
//	  epoch    uint32  shard incarnation (bumps when a restart is seen)
//	  ver      uint64  shard blackboard version inside the epoch
//	  flags    uint8   (ShardHealthy)
//	  power    float64 (W, current draw)
//	  headroom float64 (in [0,1])
//	  cap      float64 (W, assigned share of the budget)
//
// All integers are little-endian. Decoding is strict — unknown flags,
// non-finite or negative quantities, out-of-range headroom, unsorted
// ids and trailing bytes are all rejected — so a corrupt frame fails
// loudly instead of poisoning the receiving blackboard, and encoding is
// canonical: any frame that decodes re-encodes to the identical bytes
// (the fuzz harness holds this as an invariant).

var rollupMagic = [4]byte{'C', 'L', 'S', '1'}

// ShardHealthy flags a shard record as live at collection time.
const ShardHealthy uint8 = 1 << 0

// maxRollupShards bounds the decoded shard count; 4096 nodes is an
// order of magnitude beyond the fleet sizes this tier simulates.
const maxRollupShards = 4096

// ShardRecord is one shard's line in a roll-up frame.
type ShardRecord struct {
	ID       uint16
	Epoch    uint32 // incarnation; a restart starts a new epoch
	Ver      uint64 // blackboard version within the epoch
	Healthy  bool
	Power    float64 // W
	Headroom float64 // [0,1]
	Cap      float64 // W, assigned share
}

// ClusterFrame is the decoded form of a "CLS1" frame.
type ClusterFrame struct {
	Now    time.Duration
	Budget float64
	Shards []ShardRecord
}

const rollupHeaderSize = 4 + 8 + 8 + 2
const rollupRecordSize = 2 + 4 + 8 + 1 + 8 + 8 + 8

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v), byte(v>>8))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// AppendClusterFrame serializes f onto dst (one allocation at most).
func AppendClusterFrame(dst []byte, f *ClusterFrame) []byte {
	need := rollupHeaderSize + rollupRecordSize*len(f.Shards)
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, rollupMagic[:]...)
	dst = appendU64(dst, uint64(int64(f.Now)))
	dst = appendU64(dst, math.Float64bits(f.Budget))
	dst = appendU16(dst, uint16(len(f.Shards)))
	for i := range f.Shards {
		s := &f.Shards[i]
		dst = appendU16(dst, s.ID)
		dst = appendU32(dst, s.Epoch)
		dst = appendU64(dst, s.Ver)
		var flags uint8
		if s.Healthy {
			flags |= ShardHealthy
		}
		dst = append(dst, flags)
		dst = appendU64(dst, math.Float64bits(s.Power))
		dst = appendU64(dst, math.Float64bits(s.Headroom))
		dst = appendU64(dst, math.Float64bits(s.Cap))
	}
	return dst
}

type rollupReader struct {
	data []byte
	off  int
}

func (r *rollupReader) take(n int) ([]byte, error) {
	if len(r.data)-r.off < n {
		return nil, fmt.Errorf("cluster: frame truncated at byte %d (need %d more)", r.off, n)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *rollupReader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return uint16(b[0]) | uint16(b[1])<<8, nil
}

func (r *rollupReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

func (r *rollupReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
}

// wattOK accepts a finite, non-negative power/cap/budget quantity.
func wattOK(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// DecodeClusterFrame parses a "CLS1" frame into f (Shards replaced).
// Decoding is strict: every quantity is validated so a corrupt or
// crafted frame errors out rather than entering the blackboard.
func DecodeClusterFrame(data []byte, f *ClusterFrame) error {
	r := &rollupReader{data: data}
	magic, err := r.take(4)
	if err != nil {
		return err
	}
	if [4]byte(magic) != rollupMagic {
		return fmt.Errorf("cluster: bad roll-up magic %q", magic)
	}
	now, err := r.u64()
	if err != nil {
		return err
	}
	if int64(now) < 0 {
		return fmt.Errorf("cluster: negative frame time %d", int64(now))
	}
	f.Now = time.Duration(int64(now))
	budgetBits, err := r.u64()
	if err != nil {
		return err
	}
	f.Budget = math.Float64frombits(budgetBits)
	if !wattOK(f.Budget) {
		return fmt.Errorf("cluster: implausible budget %g W", f.Budget)
	}
	n, err := r.u16()
	if err != nil {
		return err
	}
	if n > maxRollupShards {
		return fmt.Errorf("cluster: implausible shard count %d", n)
	}
	f.Shards = f.Shards[:0]
	lastID := -1
	for i := 0; i < int(n); i++ {
		var s ShardRecord
		if s.ID, err = r.u16(); err != nil {
			return err
		}
		if int(s.ID) <= lastID {
			return fmt.Errorf("cluster: shard ids not strictly increasing (%d after %d)", s.ID, lastID)
		}
		lastID = int(s.ID)
		if s.Epoch, err = r.u32(); err != nil {
			return err
		}
		if s.Ver, err = r.u64(); err != nil {
			return err
		}
		flags, err := r.take(1)
		if err != nil {
			return err
		}
		if flags[0]&^ShardHealthy != 0 {
			return fmt.Errorf("cluster: shard %d has unknown flags %#x", s.ID, flags[0])
		}
		s.Healthy = flags[0]&ShardHealthy != 0
		powerBits, err := r.u64()
		if err != nil {
			return err
		}
		s.Power = math.Float64frombits(powerBits)
		if !wattOK(s.Power) {
			return fmt.Errorf("cluster: shard %d has implausible power %g W", s.ID, s.Power)
		}
		hrBits, err := r.u64()
		if err != nil {
			return err
		}
		s.Headroom = math.Float64frombits(hrBits)
		if math.IsNaN(s.Headroom) || s.Headroom < 0 || s.Headroom > 1 {
			return fmt.Errorf("cluster: shard %d has headroom %g outside [0,1]", s.ID, s.Headroom)
		}
		capBits, err := r.u64()
		if err != nil {
			return err
		}
		s.Cap = math.Float64frombits(capBits)
		if !wattOK(s.Cap) {
			return fmt.Errorf("cluster: shard %d has implausible cap %g W", s.ID, s.Cap)
		}
		f.Shards = append(f.Shards, s)
	}
	if r.off != len(data) {
		return fmt.Errorf("cluster: %d trailing bytes after roll-up frame", len(data)-r.off)
	}
	return nil
}

// IsClusterFrame reports whether data begins with the roll-up magic.
func IsClusterFrame(data []byte) bool {
	return len(data) >= 4 && [4]byte(data[:4]) == rollupMagic
}

// shardSeen is the receiver's high-water mark for one shard.
type shardSeen struct {
	epoch uint32
	ver   uint64
	rec   ShardRecord
}

// ClusterState is the receiving side of the roll-up path: it folds
// decoded frames into a per-shard latest-record view while refusing to
// move backwards. A record from an older epoch (a replayed frame from
// before a shard restart) or a stale version within the current epoch
// is skipped and counted, never merged — the replay/anti-poison
// guarantee the fuzz and regression tests pin down. Not safe for
// concurrent use; the aggregator owns it from a single goroutine.
type ClusterState struct {
	shards map[uint16]*shardSeen
	now    time.Duration

	// Applied counts records accepted; Replayed counts stale-version
	// skips; Regressed counts old-epoch skips.
	Applied   uint64
	Replayed  uint64
	Regressed uint64
}

// NewClusterState returns an empty receiver state.
func NewClusterState() *ClusterState {
	return &ClusterState{shards: make(map[uint16]*shardSeen)}
}

// Now returns the newest frame time folded in.
func (cs *ClusterState) Now() time.Duration { return cs.now }

// Shard returns the latest accepted record for a shard id.
func (cs *ClusterState) Shard(id uint16) (ShardRecord, bool) {
	s, ok := cs.shards[id]
	if !ok {
		return ShardRecord{}, false
	}
	return s.rec, true
}

// Apply folds one decoded frame into the state and reports how many of
// its records were accepted. Per shard, a record is accepted when it
// opens a new epoch or advances the version within the current epoch;
// an older epoch or a non-advancing version is skipped and counted.
// Frame time moves monotonically.
func (cs *ClusterState) Apply(f *ClusterFrame) int {
	if f.Now > cs.now {
		cs.now = f.Now
	}
	accepted := 0
	for i := range f.Shards {
		rec := f.Shards[i]
		s, ok := cs.shards[rec.ID]
		switch {
		case !ok:
			cs.shards[rec.ID] = &shardSeen{epoch: rec.Epoch, ver: rec.Ver, rec: rec}
		case rec.Epoch < s.epoch:
			cs.Regressed++
			continue
		case rec.Epoch == s.epoch && rec.Ver <= s.ver:
			cs.Replayed++
			continue
		default:
			s.epoch, s.ver, s.rec = rec.Epoch, rec.Ver, rec
		}
		accepted++
		cs.Applied++
	}
	return accepted
}
