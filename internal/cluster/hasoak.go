package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/rcr"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// HA chaos soak: the fleet soak (soak.go) with a redundant control
// plane on top. N aggregator replicas run the HA leadership protocol
// (ha.go) over the same synthetic shard fleet; every shard carries a
// real rcr.FenceGuard that outlives server restarts. Two fault tiers
// run at once: the shard-side FleetSchedule (restarts, resets, loris)
// and a WAN-tier faults.WANSchedule against the control plane itself —
// leader kills, asymmetric partitions, added latency and split-brain
// hold-and-release windows.
//
// The auditor sits at the guards' apply seam — the only place a cap
// can actually land — and checks, after every single application:
//
//   - conservation: Σ(applied caps) ≤ global budget;
//   - fenced-write safety: the applying fence never regresses on a
//     shard (a demoted leader's write landed);
//   - single leadership: no cap lands under fence f once a strictly
//     higher fence has been actuating the fleet for more than a poll
//     period (two replicas applying caps at once);
//   - hand-off latency: the gap from each leader kill to the first cap
//     applied under a higher fence.

// HASoakConfig tunes one HA fleet soak run.
type HASoakConfig struct {
	// Seed determines both fault schedules and all jitter.
	Seed uint64
	// Shards is the fleet size. Zero selects 8.
	Shards int
	// Replicas is the control-plane size. Zero selects 2.
	Replicas int
	// Budget is the wall-time length of the run. Zero selects 2 s; all
	// fault windows close by 64% of it, leaving a convergence tail.
	Budget time.Duration
	// FeedPeriod is the synthetic shards' sample cadence. Zero selects
	// 2 ms.
	FeedPeriod time.Duration
	// Period is each replica's poll cadence. Zero selects 10 ms.
	Period time.Duration
	// Global is the fleet-wide budget. Zero selects 60 W per shard.
	Global units.Watts
	// LeaseTTL is the leadership lease. Zero selects 8×Period. Guard
	// offers are in-process here, so the TTL need not absorb the socket
	// dial tails that bound it in a real deployment (docs/cluster.md).
	LeaseTTL time.Duration
	// Dir hosts the shard sockets; empty selects a fresh temp dir.
	Dir string
	// SkipResourceAudit disables the goroutine/heap audit (the corpus
	// fan-out runs many soaks concurrently and audits once).
	SkipResourceAudit bool
	// Telemetry, when non-nil, receives every component's instruments.
	Telemetry *telemetry.Registry
}

// HASoakReport is the audited outcome of one HA soak run.
type HASoakReport struct {
	Seed      uint64
	Shards    int
	Replicas  int
	Events    int // shard-tier fault events
	WANEvents int // control-plane-tier fault events
	LeaseTTL  time.Duration
	ClearTime time.Duration

	// Control-plane activity.
	Elections    uint64
	Demotions    uint64
	FenceGrants  uint64
	FenceRejects uint64
	CapRetries   uint64
	CapApplies   uint64 // accepted fenced cap applications audited
	LeaderKills  uint64
	GapResyncs   uint64
	Resubscribes uint64

	// Shard-tier faults injected (same meanings as SoakReport).
	ShardKills uint64
	Resets     uint64
	LorisConns uint64

	// WAN-tier faults injected.
	WANDropped uint64
	WANDelayed uint64
	WANHeld    uint64
	WANFlushed uint64

	// Invariant audit.
	FencedWriteViolations  uint64 // applying fence regressed on a shard
	DoubleLeaderApplies    uint64 // cap landed under a long-superseded fence
	ConservationViolations uint64
	HandoffMarks           int             // authority kills awaiting takeover
	Handoffs               []time.Duration // resolved kill→takeover gaps
	HandoffMedian          time.Duration
	LeadersAtEnd           int
	HealthyAtEnd           int
	Converged              bool
	FinalCapsSumW          float64
	GoroutineGrowth        int
	HeapGrowthBytes        int64

	Violations []string
}

// Passed reports whether every invariant held.
func (r *HASoakReport) Passed() bool { return len(r.Violations) == 0 }

// Summary renders the report as one line.
func (r *HASoakReport) Summary() string {
	return fmt.Sprintf("seed %d: %d shards × %d replicas, %d+%d events, %d elections, %d demotions, %d leader-kills, %d applies, %d rejects, %d retries, %d shard-kills, wan %d dropped/%d held/%d flushed, handoff median %v, %d fence-violations, %d double-leader, %d conservation, leaders %d, healthy %d/%d, converged %v, goroutines %+d",
		r.Seed, r.Shards, r.Replicas, r.Events, r.WANEvents,
		r.Elections, r.Demotions, r.LeaderKills, r.CapApplies, r.FenceRejects, r.CapRetries,
		r.ShardKills, r.WANDropped, r.WANHeld, r.WANFlushed,
		r.HandoffMedian, r.FencedWriteViolations, r.DoubleLeaderApplies, r.ConservationViolations,
		r.LeadersAtEnd, r.HealthyAtEnd, r.Shards, r.Converged, r.GoroutineGrowth)
}

// haKillMark is one leader kill awaiting its takeover: resolved by the
// first cap applied under a fence above the level held at kill time.
type haKillMark struct {
	at      time.Duration
	fence   uint64
	handoff time.Duration // 0 = unresolved
}

// haCapAuditor audits the guards' apply seam. One instance is shared by
// every shard's FenceGuard, so it sees the fleet's applications in a
// single serialized order — which is what makes the cross-shard
// invariants (conservation, double leadership) checkable at all.
var soakApplyTrace = os.Getenv("CHURN_TRACE") != ""

type haCapAuditor struct {
	global   float64
	debugTag string
	period   time.Duration
	clock    *hostClock

	mu           sync.Mutex
	caps         []float64
	lastFence    []uint64
	firstSeen    map[uint64]time.Duration // fence → first accepted apply
	applies      uint64
	conservation uint64
	fenceRegress uint64
	doubleLeader uint64
	kills        []*haKillMark
}

// applyFn builds the guard apply closure for one shard.
func (a *haCapAuditor) applyFn(shard int) func(cap float64, fence uint64) error {
	return func(capW float64, fence uint64) error {
		now := a.clock.Now()
		a.mu.Lock()
		defer a.mu.Unlock()
		a.applies++
		if fence < a.lastFence[shard] {
			a.fenceRegress++
		}
		a.lastFence[shard] = fence
		// Two leaders at once: a cap landing under fence f after a
		// strictly higher fence has been actuating for more than one
		// poll period. The one-period grace absorbs the legitimate
		// overlap where a superseded leader's final in-flight write
		// lands just as its successor starts.
		for f, t0 := range a.firstSeen {
			if f > fence && now-t0 > a.period {
				a.doubleLeader++
				break
			}
		}
		if _, ok := a.firstSeen[fence]; !ok {
			a.firstSeen[fence] = now
		}
		for _, k := range a.kills {
			if k.handoff == 0 && fence > k.fence && now > k.at {
				k.handoff = now - k.at
			}
		}
		a.caps[shard] = capW
		sum := 0.0
		for _, c := range a.caps {
			sum += c
		}
		if sum > a.global+sumEps {
			a.conservation++
		}
		if soakApplyTrace {
			mark := ""
			if sum > a.global+sumEps {
				mark = " VIOLATION"
			}
			fmt.Printf("[%s] APPLY @%v shard=%d cap=%.2f fence=%d sum=%.1f%s\n", a.debugTag, now, shard, capW, fence, sum, mark)
		}
		return nil
	}
}

func (a *haCapAuditor) cap(shard int) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.caps[shard]
}

// markKill records a leader kill at the fleet's current max fence.
func (a *haCapAuditor) markKill(at time.Duration, fence uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.kills = append(a.kills, &haKillMark{at: at, fence: fence})
}

func (a *haCapAuditor) handoffs() []time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	var hs []time.Duration
	for _, k := range a.kills {
		if k.handoff > 0 {
			hs = append(hs, k.handoff)
		}
	}
	return hs
}

// handoffsBefore returns only the kill→takeover gaps that RESOLVED by
// the given instant. A churn run can legitimately destroy election
// quorum (enough member servers stopped by failed-op fallout that no
// candidate's book can grant a majority); the takeover then waits for
// the settle phase's operator repairs, and its gap measures the outage,
// not the protocol. The latency bound judges only in-run hand-offs.
func (a *haCapAuditor) handoffsBefore(limit time.Duration) []time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	var hs []time.Duration
	for _, k := range a.kills {
		if k.handoff > 0 && k.at+k.handoff <= limit {
			hs = append(hs, k.handoff)
		}
	}
	return hs
}

// haSoakReplica is one restartable control-plane replica slot.
type haSoakReplica struct {
	agg    *Aggregator
	cancel context.CancelFunc
	done   chan error
}

// RunHASoak executes one HA fleet chaos soak and audits it.
func RunHASoak(cfg HASoakConfig) (*HASoakReport, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 2 * time.Second
	}
	if cfg.FeedPeriod <= 0 {
		cfg.FeedPeriod = 2 * time.Millisecond
	}
	if cfg.Period <= 0 {
		cfg.Period = 10 * time.Millisecond
	}
	if cfg.Global <= 0 {
		cfg.Global = units.Watts(60 * float64(cfg.Shards))
	}
	if raceEnabled {
		cfg.Budget *= 4
		cfg.FeedPeriod *= 4
		cfg.Period *= 4
		if cfg.LeaseTTL > 0 {
			cfg.LeaseTTL *= 4
		}
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 8 * cfg.Period
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "hasoak"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	horizon := cfg.Budget * 4 / 5
	sched := faults.GenerateFleetSchedule(cfg.Seed, cfg.Shards, horizon)
	wan := faults.GenerateWANSchedule(cfg.Seed, cfg.Replicas, cfg.Shards, horizon)
	inj := faults.NewWANInjector(wan)
	clear := sched.ClearTime()
	if wc := wan.ClearTime(); wc > clear {
		clear = wc
	}
	rep := &HASoakReport{
		Seed: cfg.Seed, Shards: cfg.Shards, Replicas: cfg.Replicas,
		Events: len(sched.Events), WANEvents: len(wan.Events),
		LeaseTTL: cfg.LeaseTTL, ClearTime: clear,
	}

	var goroutinesBefore int
	var msBefore runtime.MemStats
	if !cfg.SkipResourceAudit {
		goroutinesBefore = runtime.NumGoroutine()
		runtime.GC()
		runtime.ReadMemStats(&msBefore)
	}

	clock := &hostClock{t0: time.Now()}
	auditor := &haCapAuditor{
		global:    float64(cfg.Global),
		period:    cfg.Period,
		clock:     clock,
		caps:      make([]float64, cfg.Shards),
		lastFence: make([]uint64, cfg.Shards),
		firstSeen: make(map[uint64]time.Duration),
	}
	journal := telemetry.NewJournal(1<<12, 1)

	// Shards. Each guard lives in the soakShard — outside the
	// restartable server — and actuates straight into the auditor.
	shards := make([]*soakShard, cfg.Shards)
	endpoints := make([]ShardEndpoint, cfg.Shards)
	for i := range shards {
		guard := rcr.NewFenceGuard(clock.Now, auditor.applyFn(i))
		guard.Instrument(reg)
		guard.Journal(journal)
		shards[i] = &soakShard{
			id:     i,
			socket: filepath.Join(dir, fmt.Sprintf("shard-%d.sock", i)),
			clock:  clock,
			sched:  sched,
			reg:    reg,
			rep:    &SoakReport{}, // shard-tier counters, folded in below
			fence:  guard,
		}
		if err := shards[i].start(); err != nil {
			for j := 0; j < i; j++ {
				shards[j].stop()
			}
			return nil, err
		}
		endpoints[i] = ShardEndpoint{ID: i, Network: "unix", Addr: shards[i].socket}
	}

	// Replica slots. A killed replica's slot is rebuilt with a fresh
	// Aggregator carrying the same ID — a restarted daemon, not a new
	// peer — and a generation-salted jitter seed.
	buildReplica := func(idx, gen int) (*haSoakReplica, error) {
		agg, err := NewAggregator(AggregatorConfig{
			Shards:        endpoints,
			Global:        cfg.Global,
			Floor:         10,
			Max:           200,
			Period:        cfg.Period,
			HealthHorizon: 6 * cfg.Period,
			Clock:         clock.Now,
			Telemetry:     reg,
			Journal:       journal,
			HA: &HAConfig{
				ID:         uint32(idx + 1),
				LeaseTTL:   cfg.LeaseTTL,
				JitterSeed: cfg.Seed ^ uint64(idx+1)<<40 ^ uint64(gen)<<8,
				WriteCap: func(shard int, w rcr.CapWrite) (rcr.CapAck, error) {
					// The held-write closure may run later on the
					// flusher goroutine; the buffered channel keeps the
					// ack hand-off properly synchronized.
					res := make(chan rcr.CapAck, 1)
					err := inj.GateWrite(idx, shard, clock.Now(), func() error {
						ack, err := shards[shard].offerCap(w)
						if err != nil {
							return err
						}
						res <- ack
						return nil
					})
					if err != nil {
						return rcr.CapAck{}, err
					}
					return <-res, nil
				},
			},
			Tune: func(shard int, ccfg *resilience.ClientConfig) {
				ccfg.Backoff = resilience.Backoff{
					Base: 5 * time.Millisecond,
					Max:  40 * time.Millisecond,
					Seed: cfg.Seed ^ uint64(idx+1)<<30 ^ uint64(shard)<<20,
				}
				ccfg.Subscribe = func(ctx context.Context, network, addr string) (resilience.SubStream, error) {
					if inj.SubBlocked(idx, shard, clock.Now()) {
						return nil, fmt.Errorf("wan: replica %d partitioned from shard %d", idx, shard)
					}
					return rcr.Subscribe(ctx, network, addr)
				}
			},
		})
		if err != nil {
			return nil, err
		}
		ctx, cancel := context.WithCancel(context.Background())
		r := &haSoakReplica{agg: agg, cancel: cancel, done: make(chan error, 1)}
		go func() { r.done <- agg.Run(ctx) }()
		return r, nil
	}

	var repMu sync.Mutex
	replicas := make([]*haSoakReplica, cfg.Replicas)
	for i := range replicas {
		r, err := buildReplica(i, 0)
		if err != nil {
			for j := 0; j < i; j++ {
				replicas[j].cancel()
				<-replicas[j].done
			}
			for _, sh := range shards {
				sh.stop()
			}
			return nil, err
		}
		replicas[i] = r
	}
	liveReplicas := func() []*haSoakReplica {
		repMu.Lock()
		defer repMu.Unlock()
		out := make([]*haSoakReplica, len(replicas))
		copy(out, replicas)
		return out
	}

	// Feeder.
	stopFeed := make(chan struct{})
	var feedWG sync.WaitGroup
	feedWG.Add(1)
	go func() {
		defer feedWG.Done()
		tick := time.NewTicker(cfg.FeedPeriod)
		defer tick.Stop()
		for {
			select {
			case <-stopFeed:
				return
			case <-tick.C:
				now := clock.Now()
				for i, sh := range shards {
					sh.feed(now, auditor.cap(i))
				}
			}
		}
	}()

	// Chaos, tier 1: shard restarts + loris (same as the plain soak).
	var chaosWG sync.WaitGroup
	for _, sh := range shards {
		chaosWG.Add(1)
		go func(sh *soakShard) {
			defer chaosWG.Done()
			sh.run(cfg.Budget, &rep.ShardKills)
		}(sh)
	}
	shardRep := &SoakReport{}
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		runFleetLoris(clock, shards, sched, cfg.Budget, shardRep)
	}()

	// Chaos, tier 2a: the split-brain flusher releases held writes when
	// their window closes — the delayed delivery the fence exists for.
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		tick := time.NewTicker(cfg.Period)
		defer tick.Stop()
		for clock.Now() < cfg.Budget {
			<-tick.C
			inj.Flush(clock.Now())
		}
	}()

	// Chaos, tier 2b: leader kills. The schedule's Agg is advisory; each
	// kill resolves to whichever replica actually leads at that moment
	// (waiting up to half the window for one to emerge), so the fault
	// always lands on the control plane's active element.
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		for _, ev := range wan.Kills() {
			if d := ev.Start - clock.Now(); d > 0 {
				time.Sleep(d)
			}
			if clock.Now() >= cfg.Budget {
				return
			}
			// Prefer the authoritative leader: among replicas claiming
			// leadership, the one with the highest fence (a partitioned
			// stale claimant still inside its old lease may also claim).
			victim, victimFence := -1, uint64(0)
			mid := ev.Start + (ev.End-ev.Start)/2
			for victim < 0 && clock.Now() < mid {
				for i, r := range liveReplicas() {
					if r == nil {
						continue
					}
					if st := r.agg.Status(); st.Leader && st.Fence >= victimFence {
						victim, victimFence = i, st.Fence
					}
				}
				if victim < 0 {
					time.Sleep(cfg.Period / 2)
				}
			}
			if victim < 0 {
				victim = ev.Agg % cfg.Replicas
			}
			var fmax uint64
			for _, g := range shards {
				if st := g.fence.State(); st.Fence > fmax {
					fmax = st.Fence
				}
			}
			repMu.Lock()
			r := replicas[victim]
			replicas[victim] = nil
			repMu.Unlock()
			if r == nil { // advisory slot still rebuilding from a prior kill
				continue
			}
			// Only a kill that removes the fleet's actual authority has a
			// hand-off to measure; killing a stale claimant or an idle
			// standby leaves the real leader running.
			if st := r.agg.Status(); st.Leader && st.Fence >= fmax {
				auditor.markKill(clock.Now(), fmax)
			}
			r.cancel()
			<-r.done
			atomic.AddUint64(&rep.LeaderKills, 1)
			if d := ev.End - clock.Now(); d > 0 {
				time.Sleep(d)
			}
			nr, err := buildReplica(victim, 1+int(rep.LeaderKills))
			if err != nil {
				return
			}
			repMu.Lock()
			replicas[victim] = nr
			repMu.Unlock()
		}
	}()

	// Let the run play out, then tear down in dependency order.
	time.Sleep(cfg.Budget - clock.Now())
	chaosWG.Wait()
	inj.Flush(cfg.Budget * 2) // late split-brain deliveries must bounce off fences

	// Census with bounded patience: a demotion in the run's last moments
	// legitimately leaves the fleet leaderless until the next election
	// cycle completes (observed expiry + grace + jitter + campaign), and
	// on a loaded host that cycle can straddle the budget's end. The
	// convergence gate is "eventually exactly one leader", so give the
	// control plane up to six lease TTLs past the budget to settle.
	leaders, healthy := 0, 0
	var capsSum units.Watts
	census := func() {
		leaders, healthy = 0, 0
		capsSum = 0
		for _, r := range liveReplicas() {
			if r == nil {
				continue
			}
			st := r.agg.Status()
			if st.Leader {
				leaders++
				healthy = st.Healthy
				capsSum = st.CapsSum
			}
		}
	}
	census()
	for deadline := time.Now().Add(6 * cfg.LeaseTTL); (leaders != 1 || healthy != cfg.Shards) && time.Now().Before(deadline); {
		time.Sleep(cfg.Period / 2)
		census()
	}
	for _, r := range liveReplicas() {
		if r == nil {
			continue
		}
		r.cancel()
		<-r.done
	}
	close(stopFeed)
	feedWG.Wait()
	for _, sh := range shards {
		sh.stop()
	}

	rep.Elections = reg.Counter("cluster_leader_elections_total").Value()
	rep.Demotions = reg.Counter("cluster_leader_demotions_total").Value()
	rep.FenceGrants = reg.Counter("cluster_fence_grants_total").Value()
	rep.FenceRejects = reg.Counter("cluster_fence_rejects_total").Value()
	rep.CapRetries = reg.Counter("cluster_cap_retries_total").Value()
	rep.GapResyncs = reg.Counter("resilience_client_gap_resyncs_total").Value()
	rep.Resubscribes = reg.Counter("resilience_client_resubscribes_total").Value()
	rep.Resets = shardRep.Resets
	for _, sh := range shards {
		rep.Resets += sh.rep.Resets
	}
	rep.LorisConns = shardRep.LorisConns
	ws := inj.Stats()
	rep.WANDropped, rep.WANDelayed, rep.WANHeld, rep.WANFlushed =
		ws.Dropped, ws.Delayed, ws.Captured, ws.Flushed

	auditor.mu.Lock()
	rep.CapApplies = auditor.applies
	rep.FencedWriteViolations = auditor.fenceRegress
	rep.DoubleLeaderApplies = auditor.doubleLeader
	rep.ConservationViolations = auditor.conservation
	rep.HandoffMarks = len(auditor.kills)
	auditor.mu.Unlock()
	rep.Handoffs = auditor.handoffs()
	rep.HandoffMedian = medianDuration(rep.Handoffs)
	rep.LeadersAtEnd = leaders
	rep.HealthyAtEnd = healthy
	rep.Converged = leaders == 1 && healthy == cfg.Shards
	rep.FinalCapsSumW = float64(capsSum)

	if !cfg.SkipResourceAudit {
		deadline := time.Now().Add(2 * time.Second)
		growth := runtime.NumGoroutine() - goroutinesBefore
		for growth > 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			growth = runtime.NumGoroutine() - goroutinesBefore
		}
		rep.GoroutineGrowth = growth
		var msAfter runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&msAfter)
		rep.HeapGrowthBytes = int64(msAfter.HeapAlloc) - int64(msBefore.HeapAlloc)
	}

	rep.audit(cfg)
	return rep, nil
}

func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// audit fills Violations: the invariants every seed must hold.
func (r *HASoakReport) audit(cfg HASoakConfig) {
	if r.FencedWriteViolations > 0 {
		r.Violations = append(r.Violations,
			fmt.Sprintf("%d fenced-write violations: a demoted leader's cap landed", r.FencedWriteViolations))
	}
	if r.DoubleLeaderApplies > 0 {
		r.Violations = append(r.Violations,
			fmt.Sprintf("%d double-leadership applications: two fences actuated the fleet at once", r.DoubleLeaderApplies))
	}
	if r.ConservationViolations > 0 {
		r.Violations = append(r.Violations,
			fmt.Sprintf("%d conservation violations: Σ applied caps exceeded the %.0f W budget", r.ConservationViolations, float64(cfg.Global)))
	}
	if r.Elections == 0 {
		r.Violations = append(r.Violations, "no replica was ever elected leader")
	}
	if r.CapApplies == 0 {
		r.Violations = append(r.Violations, "no fenced cap was ever applied")
	}
	if r.HandoffMarks > 0 && len(r.Handoffs) == 0 {
		r.Violations = append(r.Violations,
			fmt.Sprintf("%d authority kills but no successor ever applied a cap under a higher fence", r.HandoffMarks))
	}
	// Per-run hand-off bound: 4× TTL per seed absorbs a takeover that
	// collides with a partition window; the corpus gates the median of
	// all hand-offs at the 2×TTL target from the HA design.
	if r.HandoffMedian > 4*r.LeaseTTL {
		r.Violations = append(r.Violations,
			fmt.Sprintf("hand-off median %v exceeds 4× lease TTL (%v)", r.HandoffMedian, r.LeaseTTL))
	}
	if !r.Converged {
		r.Violations = append(r.Violations,
			fmt.Sprintf("control plane did not converge: %d leaders at end, %d/%d healthy", r.LeadersAtEnd, r.HealthyAtEnd, r.Shards))
	}
	if r.GoroutineGrowth > 0 {
		r.Violations = append(r.Violations,
			fmt.Sprintf("goroutine leak: %+d after teardown", r.GoroutineGrowth))
	}
	if r.HeapGrowthBytes > soakHeapBound {
		r.Violations = append(r.Violations,
			fmt.Sprintf("heap grew %d bytes (bound %d)", r.HeapGrowthBytes, soakHeapBound))
	}
}
