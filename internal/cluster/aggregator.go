package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/rcr"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// ShardEndpoint locates one shard's rcrd server.
type ShardEndpoint struct {
	ID      int
	Network string // "unix" or "tcp"
	Addr    string
}

// Meter names the aggregator writes into the cluster blackboard, one
// socket domain per shard (docs/cluster.md). Shard power reuses
// rcr.MeterPower so existing tooling reads it unchanged.
const (
	// MeterHeadroom is a shard's derived scaling headroom in [0,1].
	MeterHeadroom = "headroom"
	// MeterCap is a shard's currently applied power cap in Watts.
	MeterCap = "cap"
	// MeterBudget is the global watt budget (system scope).
	MeterBudget = "budget"
	// MeterHealthy is a shard's liveness as 0/1.
	MeterHealthy = "healthy"
)

// AggregatorConfig tunes an Aggregator.
type AggregatorConfig struct {
	// Shards seeds the fleet's rcrd endpoints. Ignored when Members is
	// set; otherwise at least one is required and the aggregator builds
	// its own registry with every seed endpoint Active.
	Shards []ShardEndpoint
	// Members, when non-nil, is the fleet's membership registry: the
	// aggregator reconciles its book against it at every poll boundary,
	// so joins, drains and decommissions applied to the registry take
	// effect within one period. An initially empty registry is valid —
	// the fleet grows by Join. The caller owns instrumenting and
	// journaling the registry (Membership.Instrument/Journal).
	Members *Membership
	// Global is the fleet-wide power budget. Required positive.
	Global units.Watts
	// Floor and Max bound every shard's assignment (per-shard floors are
	// uniform at this tier; heterogeneous fleets would move them into
	// ShardEndpoint). Floor zero selects 10 W; Max zero selects 200 W.
	Floor units.Watts
	Max   units.Watts
	// Period is the host-time cadence of the poll/repartition loop.
	// Zero selects 50 ms.
	Period time.Duration
	// HealthHorizon is how long a shard's heartbeat may sit still (in
	// host time) before the shard is declared lost and its surplus is
	// redistributed. Zero selects 4×Period.
	HealthHorizon time.Duration
	// WarmupGrace is how long a Joining member may stay silent after
	// admission before it counts against the fleet's health gauges. A
	// joiner is budgeted its floor from admission but has not booted its
	// sampler yet — silence inside the grace is expected, not an outage.
	// Zero selects 2×HealthHorizon.
	WarmupGrace time.Duration
	// KneeRef is the per-socket memory-concurrency knee used to derive
	// headroom: a shard saturating the knee is memory-bound (throttling
	// is nearly free, extra power nearly useless), a shard far below it
	// is compute-bound. Zero selects 28, the M620 preset's knee.
	KneeRef float64
	// Clock supplies host time. Required. The shards' own snapshots run
	// on their private virtual clocks, which advance at unrelated rates —
	// the aggregator therefore judges staleness by heartbeat *movement*
	// against this clock, never by comparing snapshot timestamps across
	// timebases.
	Clock func() time.Duration
	// SetCap pushes an assignment down into one shard's enforcement
	// loop (maestro.PowerCap.SetCap behind the fleet seam). Required
	// unless HA is set — the HA control plane writes caps through the
	// fenced HA.WriteCap seam instead.
	SetCap func(shard int, cap units.Watts) error
	// HA, when non-nil, runs this aggregator as one replica of a
	// redundant control plane (ha.go): it only pushes caps while holding
	// the fleet lease, renews that lease through fenced cap writes, and
	// stands by — electing itself with a fresh fence after the observed
	// lease expires — otherwise.
	HA *HAConfig
	// Tune, when non-nil, adjusts each shard client's config before the
	// client is built — the test seam for scripted transports and faster
	// backoff.
	Tune func(shard int, cfg *resilience.ClientConfig)
	// Telemetry receives the cluster_* instruments; Journal receives
	// repartition and shard-transition records. Both optional.
	Telemetry *telemetry.Registry
	Journal   *telemetry.Journal
}

// shardState is the aggregator's per-shard bookkeeping, owned by the
// poll goroutine. Slots are created and retired by reconcile as the
// membership registry changes; a slot is identified by (id,
// incarnation), so a member replaced under its prior identity gets a
// fresh slot with nothing carried over.
type shardState struct {
	client *resilience.Client

	id         int
	ep         ShardEndpoint
	inc        uint32        // membership incarnation this slot serves
	mstate     MemberState   // registry state at the last reconcile
	admittedAt time.Duration // host-time admission stamp (warm-up grace)
	stateEpoch uint64        // registry epoch of the member's last state change
	capLanded  bool          // a cap write landed on THIS incarnation's guard
	// residual is the guard's self-reported committed cap when it exceeds
	// the clamped book value — a re-joining member's previous life still
	// physically enforced until a this-life write lands. The partitioner
	// never sees it; it only pessimizes apply ORDER (the residue must be
	// stepped down before any survivor is raised) and the failed-decrease
	// blocking. Cleared the moment a cap write lands on this incarnation.
	residual units.Watts

	// subCancel tears down this slot's subscription goroutine when the
	// member is decommissioned or replaced; nil until Run starts it.
	subCancel context.CancelFunc

	everSeen  bool
	lastBeat  float64       // last heartbeat value observed
	lastMove  time.Duration // host time the heartbeat last advanced
	epoch     uint32        // incarnation; bumps when the heartbeat runs backwards
	healthy   bool
	power     float64
	headroom  float64
	beatStamp time.Duration // virtual-time Updated of the newest heartbeat

	// Lease state passively observed through the shard's delta stream:
	// the fence guard mirrors fence/holder/expiry/applied-cap into the
	// shard blackboard (rcr.FenceGuard), so every standby replica knows
	// who leads and what assignment is committed without any extra
	// coordination traffic.
	obsFence  uint64
	obsExpiry time.Duration // host-time lease expiry reported by the shard
	obsCap    float64       // shard's last committed fenced cap
	obsHasCap bool

	// HA-only per-shard write tracking (ha.go); zero when cfg.HA is nil.
	// pendingCap/pendingSeq track the largest cap value of this fence's
	// writes that failed in transport and may still be in flight;
	// granted marks that the shard's guard has accepted this replica's
	// current fence; memAckFence/memAckEpoch are the freshest committed
	// membership the shard has acked, so the leader re-attaches the
	// frame only while a shard is behind.
	pendingCap  float64
	pendingSeq  uint64
	granted     bool
	memAckFence uint64
	memAckEpoch uint64
}

// aggMetrics is the aggregator's instrument set.
type aggMetrics struct {
	polls         *telemetry.Counter
	repartitions  *telemetry.Counter
	violations    *telemetry.Counter // conservation self-checks failed (must stay 0)
	shardRestarts *telemetry.Counter
	capErrors     *telemetry.Counter // SetCap pushes that failed
	capRetries    *telemetry.Counter // failed pushes retried immediately
	elections     *telemetry.Counter // lease elections won (HA)
	demotions     *telemetry.Counter // leaderships surrendered (HA)
	budgetW       *telemetry.Gauge
	capsSumW      *telemetry.Gauge
	powerW        *telemetry.Gauge
	unhealthy     *telemetry.Gauge
	warmingUp     *telemetry.Gauge
	isLeader      *telemetry.Gauge
}

// Aggregator subscribes to every shard's delta stream, rolls the fleet
// up into a cluster blackboard, and re-partitions the global power
// budget each period. Shard outages are ridden out by the underlying
// resilience.Client (failover, resubscribe, last-known-good cache);
// the aggregator's own job is to notice a shard has gone quiet, lend
// its share to the rest of the fleet, and give it back on recovery —
// all without ever letting the sum of applied caps exceed the budget.
//
// The fleet's composition is a runtime variable: every poll starts by
// reconciling the book against the membership registry, so members
// join at their floor (warm-up grace), drain by water-filling their
// surplus back to the survivors, and return their watts to the pool
// only at decommission.
type Aggregator struct {
	cfg      AggregatorConfig
	members  *Membership
	met      *aggMetrics
	debugTag string // soak trace label; empty outside traced soak runs

	// mu guards everything below: Poll (single driver) mutates under it,
	// Status/Frame/ConvergedSince read under it.
	mu           sync.Mutex
	board        *rcr.Blackboard
	boardSockets int
	shards       []*shardState
	applied      []units.Watts
	reports      []NodeReport
	nextCaps     []units.Watts
	polls        uint64
	lastChange   uint64 // poll index of the last applied cap change
	restarts     uint64
	healthyN     int
	allExpected  bool   // every member expected alive was healthy last poll
	memEpoch     uint64 // registry epoch the book was last reconciled to

	// runCtx is Run's context while Run is active; reconcile derives
	// per-slot subscription contexts from it so a decommissioned
	// member's stream tears down without stopping the fleet. subWG
	// tracks every subscription goroutine ever started.
	runCtx context.Context
	subWG  sync.WaitGroup

	// Cached encoding of the registry's current record (HA replication).
	memFrame        []byte
	memFrameEpoch   uint64
	memEpochScratch []uint64 // scratch for the quorum-epoch order statistic

	// HA replica state (ha.go); untouched when cfg.HA is nil.
	leader      bool
	fence       uint64        // this replica's fence while leading
	knownFence  uint64        // highest fence observed anywhere
	leaseUntil  time.Duration // this replica's lease validity while leading
	obsExpiry   time.Duration // freshest lease expiry observed fleet-wide
	candidateAt time.Duration // scheduled election instant (0: none)
	jitterState uint64
	replay      bool // promoted: re-assert the adopted assignment first
	elections   uint64
	demotions   uint64
	seq         uint64 // per-fence write sequence; reset on election
}

// NewAggregator validates cfg and builds the aggregator. Caps start
// unassigned; the first Poll partitions and pushes them.
func NewAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	if cfg.Members == nil && len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: aggregator requires at least one shard or a membership registry")
	}
	if cfg.Global <= 0 {
		return nil, fmt.Errorf("cluster: global budget %v must be positive", cfg.Global)
	}
	if cfg.Clock == nil {
		return nil, errors.New("cluster: aggregator requires a host clock")
	}
	if cfg.HA != nil {
		if cfg.HA.ID == 0 {
			return nil, errors.New("cluster: HA replica ID 0 is reserved")
		}
		if cfg.HA.WriteCap == nil && cfg.HA.WriteMem == nil {
			return nil, errors.New("cluster: HA requires a fenced WriteCap or WriteMem seam")
		}
	} else if cfg.SetCap == nil {
		return nil, errors.New("cluster: aggregator requires a SetCap seam")
	}
	if cfg.Floor <= 0 {
		cfg.Floor = 10
	}
	if cfg.Max <= 0 {
		cfg.Max = 200
	}
	if cfg.Max < cfg.Floor {
		// An inverted band is a configuration error, not something to
		// clamp silently: every shard would be pinned to its floor and the
		// water-fill could never distribute the surplus the caller asked
		// to budget.
		return nil, fmt.Errorf("cluster: cap band inverted: Max %v < Floor %v", cfg.Max, cfg.Floor)
	}
	if cfg.Period <= 0 {
		cfg.Period = 50 * time.Millisecond
	}
	if cfg.HealthHorizon <= 0 {
		cfg.HealthHorizon = 4 * cfg.Period
	}
	if cfg.WarmupGrace <= 0 {
		cfg.WarmupGrace = 2 * cfg.HealthHorizon
	}
	if cfg.KneeRef <= 0 {
		cfg.KneeRef = 28
	}
	members := cfg.Members
	if members == nil {
		var err error
		if members, err = NewMembership(cfg.Shards, cfg.Clock); err != nil {
			return nil, err
		}
		if cfg.Telemetry != nil {
			members.Instrument(cfg.Telemetry)
		}
		members.Journal(cfg.Journal)
	}
	a := &Aggregator{cfg: cfg, members: members}
	if reg := cfg.Telemetry; reg != nil {
		a.met = &aggMetrics{
			polls:         reg.Counter("cluster_polls_total"),
			repartitions:  reg.Counter("cluster_repartitions_total"),
			violations:    reg.Counter("cluster_conservation_violations_total"),
			shardRestarts: reg.Counter("cluster_shard_restarts_total"),
			capErrors:     reg.Counter("cluster_cap_push_errors_total"),
			capRetries:    reg.Counter("cluster_cap_retries_total"),
			elections:     reg.Counter("cluster_leader_elections_total"),
			demotions:     reg.Counter("cluster_leader_demotions_total"),
			budgetW:       reg.Gauge("cluster_budget_watts"),
			capsSumW:      reg.Gauge("cluster_caps_sum_watts"),
			powerW:        reg.Gauge("cluster_power_watts"),
			unhealthy:     reg.Gauge("cluster_unhealthy_shards"),
			warmingUp:     reg.Gauge("cluster_members_warming_up"),
			isLeader:      reg.Gauge("cluster_leader"),
		}
		a.met.budgetW.Set(float64(cfg.Global))
	}
	if cfg.HA != nil {
		a.jitterState = cfg.HA.JitterSeed ^ uint64(cfg.HA.ID)*0x9e3779b97f4a7c15
	}
	// First reconcile builds the initial book; subscriptions start when
	// Run provides a context.
	a.mu.Lock()
	err := a.reconcileLocked(cfg.Clock())
	a.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return a, nil
}

// buildClient constructs one shard's resilient client.
func (a *Aggregator) buildClient(ep ShardEndpoint) (*resilience.Client, error) {
	ccfg := resilience.ClientConfig{
		Network: ep.Network,
		Addrs:   []string{ep.Addr},
		// Shard snapshots are stamped in the shard's *virtual* time,
		// which has no relation to the aggregator's host clock, so
		// age-based staleness is meaningless here: liveness is judged
		// by heartbeat movement in Poll instead. The horizon is set
		// far beyond any run length to keep Latest serving.
		StalenessHorizon: 365 * 24 * time.Hour,
		Clock:            a.cfg.Clock,
		Journal:          a.cfg.Journal,
		Telemetry:        a.cfg.Telemetry,
	}
	if a.cfg.Tune != nil {
		a.cfg.Tune(ep.ID, &ccfg)
	}
	client, err := resilience.NewClient(ccfg)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d client: %w", ep.ID, err)
	}
	return client, nil
}

// reconcileLocked re-derives the aggregator's book from the membership
// registry when the registry epoch has moved: retained members keep
// their slots (observed state, applied watts, HA grants), a replaced
// incarnation or brand-new member gets a fresh slot with a fresh
// client and subscription, and a decommissioned member's slot is torn
// down — its subscription cancelled, its watts back in the pool the
// moment the next partition runs. Called with a.mu held.
func (a *Aggregator) reconcileLocked(now time.Duration) error {
	epoch := a.members.Epoch()
	if epoch == a.memEpoch && a.shards != nil {
		return nil
	}
	mems := a.members.Members()
	prev := make(map[int]*shardState, len(a.shards))
	prevApplied := make(map[int]units.Watts, len(a.shards))
	for i, st := range a.shards {
		prev[st.id] = st
		prevApplied[st.id] = a.applied[i]
	}
	shards := make([]*shardState, 0, len(mems))
	applied := make([]units.Watts, 0, len(mems))
	for _, mb := range mems {
		if st, ok := prev[mb.ID]; ok && st.inc == mb.Incarnation {
			delete(prev, mb.ID)
			if st.mstate != mb.State {
				// The epoch that changed this member's state gates its cap
				// writes (ha.go): actuation waits until the change is
				// durable on a quorum of guards.
				st.stateEpoch = epoch
			}
			st.mstate = mb.State
			st.admittedAt = mb.AdmittedAt
			st.ep = mb.Endpoint
			shards = append(shards, st)
			applied = append(applied, prevApplied[mb.ID])
			continue
		}
		if st, ok := prev[mb.ID]; ok {
			// Same ID, new incarnation: the previous life's slot carries
			// nothing over — not even its applied watts, which the new
			// partition re-derives from a zero baseline.
			delete(prev, mb.ID)
			a.stopSubLocked(st)
		}
		client, err := a.buildClient(mb.Endpoint)
		if err != nil {
			return err
		}
		st := &shardState{
			client:     client,
			id:         mb.ID,
			ep:         mb.Endpoint,
			inc:        mb.Incarnation,
			mstate:     mb.State,
			admittedAt: mb.AdmittedAt,
			stateEpoch: epoch,
		}
		shards = append(shards, st)
		applied = append(applied, 0)
		a.startSubLocked(st)
	}
	for _, st := range prev {
		a.stopSubLocked(st)
	}
	a.shards = shards
	a.applied = applied
	a.reports = make([]NodeReport, len(shards))
	a.nextCaps = a.nextCaps[:0]
	if len(shards) > a.boardSockets {
		n := len(shards)
		board, err := rcr.NewBlackboard(n, 1)
		if err != nil {
			return err
		}
		a.board = board
		a.boardSockets = n
	} else if a.board != nil {
		// The board keeps its high-water socket count; orphaned slots are
		// zeroed so a reader never mistakes a departed member for a live
		// one.
		for i := len(shards); i < a.boardSockets; i++ {
			a.board.SetSocket(i, rcr.MeterPower, 0, now)
			a.board.SetSocket(i, MeterHeadroom, 0, now)
			a.board.SetSocket(i, MeterCap, 0, now)
			a.board.SetSocket(i, MeterHealthy, 0, now)
		}
	}
	if a.board == nil {
		// Empty fleet: keep a one-socket board so system-scope meters
		// (budget, total power) stay readable.
		board, err := rcr.NewBlackboard(1, 1)
		if err != nil {
			return err
		}
		a.board = board
		a.boardSockets = 1
	}
	a.memEpoch = epoch
	return nil
}

// startSubLocked launches a slot's subscription goroutine under Run's
// context. A no-op before Run starts (tests driving Poll directly feed
// the clients through their own transports).
func (a *Aggregator) startSubLocked(st *shardState) {
	if a.runCtx == nil || st.subCancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(a.runCtx)
	st.subCancel = cancel
	a.subWG.Add(1)
	go func(c *resilience.Client) {
		defer a.subWG.Done()
		_ = c.Subscribe(ctx)
	}(st.client)
}

// stopSubLocked cancels a retiring slot's subscription; the goroutine
// drains into subWG.
func (a *Aggregator) stopSubLocked(st *shardState) {
	if st.subCancel != nil {
		st.subCancel()
		st.subCancel = nil
	}
}

// Members returns the aggregator's membership registry — the handle
// admin operations (Join, Drain, Decommission, Replace) go through.
func (a *Aggregator) Members() *Membership { return a.members }

// Board exposes the cluster blackboard: one socket domain per shard
// (power, headroom, cap, healthy), budget and total power at system
// scope. Readers use the ordinary seqlock accessors. The board is
// rebuilt when the fleet grows past its socket count, so long-lived
// readers should re-fetch it rather than cache the pointer across
// membership changes.
func (a *Aggregator) Board() *rcr.Blackboard {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.board
}

// Run subscribes to every shard and re-partitions each period until ctx
// is cancelled; it returns ctx.Err() after all of its goroutines have
// drained. The subscription streams keep the shard clients' caches
// fresh in the background while the poll loop runs on its own ticker;
// members joining later get their streams started by reconcile.
func (a *Aggregator) Run(ctx context.Context) error {
	a.mu.Lock()
	a.runCtx = ctx
	for _, st := range a.shards {
		a.startSubLocked(st)
	}
	a.mu.Unlock()
	tick := time.NewTicker(a.cfg.Period)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			a.subWG.Wait()
			a.mu.Lock()
			a.runCtx = nil
			for _, st := range a.shards {
				st.subCancel = nil
			}
			a.mu.Unlock()
			return ctx.Err()
		case <-tick.C:
			a.Poll()
		}
	}
}

// Poll runs one reconcile → observe → roll-up → partition → push
// cycle. It is the deterministic unit Run drives on a ticker; tests
// and the experiment harness call it directly. Poll is the fleet's
// single driver — it must not be called concurrently with itself.
func (a *Aggregator) Poll() {
	now := a.cfg.Clock()
	if a.met != nil {
		a.met.polls.Inc()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.reconcileLocked(now); err != nil {
		// A client build failure leaves the book on the previous epoch;
		// the next poll retries.
		a.journal(telemetry.KindCapRetry, fmt.Sprintf("membership reconcile: %v", err))
	}
	totalPower := 0.0
	healthy, warming := 0, 0
	allExpected := true
	for i, st := range a.shards {
		wasHealthy := st.healthy
		snap, err := st.client.Latest()
		if err == nil {
			a.observe(st, &snap, now)
		}
		// A shard is live while its heartbeat keeps moving in host time;
		// a never-seen shard is unhealthy from the start.
		st.healthy = st.everSeen && now-st.lastMove <= a.cfg.HealthHorizon
		if st.healthy {
			healthy++
			totalPower += st.power
			if st.mstate == MemberJoining && !a.replay && st.capLanded {
				// First life signs: promote the joiner. The registry bumps
				// its epoch, so replicas and the next reconcile see it.
				// Deferred until a cap write has landed on this incarnation
				// (and, under HA, no replay is pending): a re-joining
				// member's guard durably remembers a previous life's
				// committed cap — watts the fleet redistributed when it
				// departed — and every safeguard against re-adopting that
				// residue (the floor clamps in elect and pushFenced) is
				// keyed on the Joining state. Activating on health alone
				// would mark the member Active in the record while its
				// guard still reports the stale cap, and a successor
				// elected after a leader kill would adopt and re-commit it
				// on top of the redistribution.
				a.members.Activate(st.id)
				st.mstate = MemberActive
				st.stateEpoch = a.members.Epoch()
			}
		}
		inGrace := st.mstate == MemberJoining && now-st.admittedAt <= a.cfg.WarmupGrace
		if inGrace && !st.healthy {
			warming++
		}
		if st.healthy != wasHealthy {
			kind := telemetry.KindShardRecovered
			if !st.healthy {
				kind = telemetry.KindShardLost
			}
			a.journal(kind, fmt.Sprintf("shard %d", st.id))
		}
		if !st.healthy && st.mstate != MemberDrained && !inGrace {
			allExpected = false
		}
		maxW := a.cfg.Max
		if st.mstate != MemberActive {
			// A leaver is pinned to its floor: the partitioner water-fills
			// its surplus back to the survivors, decreases first. A JOINER
			// is pinned too — admission is at the floor until Activate. The
			// pin is what makes a re-join conservation-safe: the member's
			// previous life's guard may still durably enforce a full share
			// whose watts the fleet redistributed when it departed, so its
			// first this-life write must be a step DOWN to the floor (a
			// decrease, ordered ahead of every survivor's raise) — never a
			// fresh full share granted on top of the redistribution.
			maxW = a.cfg.Floor
		}
		a.reports[i] = NodeReport{
			Headroom: st.headroom,
			Floor:    a.cfg.Floor,
			Max:      maxW,
			Healthy:  st.healthy,
		}
	}

	var changed bool
	if a.cfg.HA != nil {
		changed = a.haStep(now)
	} else if len(a.shards) > 0 {
		a.nextCaps = Partition(a.cfg.Global, a.reports, a.nextCaps)
		changed = a.push(a.nextCaps)
	}

	// A draining member whose committed cap has been stepped down to its
	// floor is safe to power off. Only an actuating aggregator may make
	// that call: a standby's book is an observation, not an ack.
	if a.cfg.HA == nil || a.leader {
		for i, st := range a.shards {
			if st.mstate == MemberDraining && float64(a.applied[i]) <= float64(a.cfg.Floor)+sumEps && a.applied[i] > 0 {
				a.members.CompleteDrain(st.id)
				st.mstate = MemberDrained
			}
		}
	}

	a.polls++
	if changed {
		a.lastChange = a.polls
	}
	a.healthyN = healthy
	a.allExpected = allExpected
	capsSum := float64(Sum(a.applied))

	// Roll the fleet up into the cluster blackboard.
	for i, st := range a.shards {
		hv := 0.0
		if st.healthy {
			hv = 1
		}
		a.board.SetSocket(i, rcr.MeterPower, st.power, now)
		a.board.SetSocket(i, MeterHeadroom, st.headroom, now)
		a.board.SetSocket(i, MeterCap, float64(a.applied[i]), now)
		a.board.SetSocket(i, MeterHealthy, hv, now)
	}
	a.board.SetSystem(MeterBudget, float64(a.cfg.Global), now)
	a.board.SetSystem(rcr.MeterPower, totalPower, now)
	a.board.SetSystem(rcr.MeterHeartbeat, float64(a.polls), now)

	if a.met != nil {
		a.met.capsSumW.Set(capsSum)
		a.met.powerW.Set(totalPower)
		a.met.unhealthy.Set(float64(len(a.shards) - healthy - warming))
		a.met.warmingUp.Set(float64(warming))
		if capsSum > float64(a.cfg.Global)+sumEps {
			a.met.violations.Inc()
		}
	}
}

// observe folds one shard snapshot into its state: heartbeat movement
// (liveness and restart detection), per-shard power, and headroom
// derived from memory concurrency against the knee.
func (a *Aggregator) observe(st *shardState, snap *rcr.Snapshot, now time.Duration) {
	var beat *rcr.MeterValue
	for j := range snap.System {
		m := &snap.System[j]
		switch m.Name {
		case rcr.MeterHeartbeat:
			beat = m
		case rcr.MeterFence:
			if f := uint64(m.Value); f > st.obsFence {
				st.obsFence = f
				st.obsExpiry = 0 // expiry below belongs to the new fence
			}
		case rcr.MeterLeaseExpiry:
			if e := time.Duration(m.Value * float64(time.Second)); e > st.obsExpiry {
				st.obsExpiry = e
			}
		case rcr.MeterFencedCap:
			st.obsCap, st.obsHasCap = m.Value, true
		}
	}
	if beat == nil {
		return // no sampler output yet
	}
	switch {
	case !st.everSeen:
		st.everSeen = true
		st.lastMove = now
	case beat.Value < st.lastBeat || (beat.Value == st.lastBeat && beat.Updated < st.beatStamp):
		// The heartbeat ran backwards: a fresh blackboard, i.e. a new
		// incarnation of the shard. Version space restarts with it.
		st.epoch++
		a.restarts++
		if a.met != nil {
			a.met.shardRestarts.Inc()
		}
		a.journal(telemetry.KindShardRestarted,
			fmt.Sprintf("shard %d epoch %d, heartbeat %.0f -> %.0f", st.id, st.epoch, st.lastBeat, beat.Value))
		st.lastMove = now
	case beat.Value != st.lastBeat:
		st.lastMove = now
	}
	st.lastBeat = beat.Value
	st.beatStamp = beat.Updated

	power, conc := 0.0, 0.0
	for s := range snap.Sockets {
		for j := range snap.Sockets[s].Meters {
			m := &snap.Sockets[s].Meters[j]
			switch m.Name {
			case rcr.MeterPower:
				power += m.Value
			case rcr.MeterMemConcurrency:
				conc += m.Value
			}
		}
	}
	st.power = power
	if n := len(snap.Sockets); n > 0 {
		conc /= float64(n)
	}
	st.headroom = clampHeadroom(1 - conc/a.cfg.KneeRef)
}

// push applies a new cap assignment through the SetCap seam in
// conservation-safe order and reports whether anything changed. A shard
// whose push fails keeps its previous applied value — the conservation
// invariant is judged against what was actually acknowledged. Called
// with a.mu held.
func (a *Aggregator) push(next []units.Watts) bool {
	changed := false
	blocked := false // a decrease failed; increases must wait a poll
	order := ApplyOrder(a.applied, next)
	for _, i := range order {
		if next[i] == a.applied[i] {
			continue
		}
		if blocked && next[i] > a.applied[i] {
			continue // the unacknowledged decrease still holds its watts
		}
		if err := a.cfg.SetCap(a.shards[i].id, next[i]); err != nil {
			// One bounded immediate retry: a transient drop on a decrease
			// would otherwise stall the whole decrease-before-increase
			// sequence for a full poll period.
			if a.met != nil {
				a.met.capRetries.Inc()
			}
			a.journal(telemetry.KindCapRetry,
				fmt.Sprintf("shard %d cap %.1f W: %v", a.shards[i].id, float64(next[i]), err))
			err = a.cfg.SetCap(a.shards[i].id, next[i])
			if err != nil {
				if a.met != nil {
					a.met.capErrors.Inc()
				}
				if next[i] < a.applied[i] {
					blocked = true
				}
				continue
			}
		}
		a.applied[i] = next[i]
		a.shards[i].capLanded = true
		changed = true
	}
	if changed {
		if a.met != nil {
			a.met.repartitions.Inc()
		}
		a.journal(telemetry.KindRepartition,
			fmt.Sprintf("caps sum %.1f W of %.1f W budget", float64(Sum(a.applied)), float64(a.cfg.Global)))
	}
	return changed
}

func (a *Aggregator) journal(kind, detail string) {
	a.cfg.Journal.Record(telemetry.Decision{T: a.cfg.Clock(), Kind: kind, Detail: detail})
}

// AggregatorStatus is a point-in-time view of the aggregator.
type AggregatorStatus struct {
	Polls         uint64
	LastChange    uint64 // poll index of the last cap change (0: never)
	Healthy       int
	Shards        int
	CapsSum       units.Watts
	ShardRestarts uint64
	Caps          []units.Watts

	// Membership composition at the last reconcile.
	MembershipEpoch uint64
	Joining         int
	Draining        int
	Drained         int

	// HA replica state; zero values for single-aggregator deployments.
	Leader    bool
	Fence     uint64
	Elections uint64
	Demotions uint64
}

// Status snapshots the aggregator's bookkeeping.
func (a *Aggregator) Status() AggregatorStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := AggregatorStatus{
		Polls:           a.polls,
		LastChange:      a.lastChange,
		Healthy:         a.healthyN,
		Shards:          len(a.shards),
		CapsSum:         Sum(a.applied),
		ShardRestarts:   a.restarts,
		Caps:            append([]units.Watts(nil), a.applied...),
		MembershipEpoch: a.memEpoch,
		Leader:          a.leader,
		Fence:           a.fence,
		Elections:       a.elections,
		Demotions:       a.demotions,
	}
	for _, st := range a.shards {
		switch st.mstate {
		case MemberJoining:
			s.Joining++
		case MemberDraining:
			s.Draining++
		case MemberDrained:
			s.Drained++
		}
	}
	return s
}

// ConvergedSince reports whether the fleet has settled: every member
// expected to be alive (everything short of Drained, with Joining
// members' warm-up grace honoured) is healthy and no cap change has
// landed during the last k polls. The soak gate uses it after the
// fault schedule clears.
func (a *Aggregator) ConvergedSince(k uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.allExpected && a.polls >= a.lastChange+k
}

// Frame exports the fleet as a CLS1 roll-up frame for the next tier up:
// shard epochs come from restart detection, versions from the heartbeat
// tick count (monotone within an epoch).
func (a *Aggregator) Frame() ClusterFrame {
	a.mu.Lock()
	defer a.mu.Unlock()
	f := ClusterFrame{
		Now:    a.cfg.Clock(),
		Budget: float64(a.cfg.Global),
		Shards: make([]ShardRecord, len(a.shards)),
	}
	for i, st := range a.shards {
		f.Shards[i] = ShardRecord{
			ID:       uint16(st.id),
			Epoch:    st.epoch,
			Ver:      uint64(st.lastBeat),
			Healthy:  st.healthy,
			Power:    st.power,
			Headroom: st.headroom,
			Cap:      float64(a.applied[i]),
		}
	}
	return f
}
