package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/rcr"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// ShardEndpoint locates one shard's rcrd server.
type ShardEndpoint struct {
	ID      int
	Network string // "unix" or "tcp"
	Addr    string
}

// Meter names the aggregator writes into the cluster blackboard, one
// socket domain per shard (docs/cluster.md). Shard power reuses
// rcr.MeterPower so existing tooling reads it unchanged.
const (
	// MeterHeadroom is a shard's derived scaling headroom in [0,1].
	MeterHeadroom = "headroom"
	// MeterCap is a shard's currently applied power cap in Watts.
	MeterCap = "cap"
	// MeterBudget is the global watt budget (system scope).
	MeterBudget = "budget"
	// MeterHealthy is a shard's liveness as 0/1.
	MeterHealthy = "healthy"
)

// AggregatorConfig tunes an Aggregator.
type AggregatorConfig struct {
	// Shards lists the fleet's rcrd endpoints. At least one is required.
	Shards []ShardEndpoint
	// Global is the fleet-wide power budget. Required positive.
	Global units.Watts
	// Floor and Max bound every shard's assignment (per-shard floors are
	// uniform at this tier; heterogeneous fleets would move them into
	// ShardEndpoint). Floor zero selects 10 W; Max zero selects 200 W.
	Floor units.Watts
	Max   units.Watts
	// Period is the host-time cadence of the poll/repartition loop.
	// Zero selects 50 ms.
	Period time.Duration
	// HealthHorizon is how long a shard's heartbeat may sit still (in
	// host time) before the shard is declared lost and its surplus is
	// redistributed. Zero selects 4×Period.
	HealthHorizon time.Duration
	// KneeRef is the per-socket memory-concurrency knee used to derive
	// headroom: a shard saturating the knee is memory-bound (throttling
	// is nearly free, extra power nearly useless), a shard far below it
	// is compute-bound. Zero selects 28, the M620 preset's knee.
	KneeRef float64
	// Clock supplies host time. Required. The shards' own snapshots run
	// on their private virtual clocks, which advance at unrelated rates —
	// the aggregator therefore judges staleness by heartbeat *movement*
	// against this clock, never by comparing snapshot timestamps across
	// timebases.
	Clock func() time.Duration
	// SetCap pushes an assignment down into one shard's enforcement
	// loop (maestro.PowerCap.SetCap behind the fleet seam). Required
	// unless HA is set — the HA control plane writes caps through the
	// fenced HA.WriteCap seam instead.
	SetCap func(shard int, cap units.Watts) error
	// HA, when non-nil, runs this aggregator as one replica of a
	// redundant control plane (ha.go): it only pushes caps while holding
	// the fleet lease, renews that lease through fenced cap writes, and
	// stands by — electing itself with a fresh fence after the observed
	// lease expires — otherwise.
	HA *HAConfig
	// Tune, when non-nil, adjusts each shard client's config before the
	// client is built — the test seam for scripted transports and faster
	// backoff.
	Tune func(shard int, cfg *resilience.ClientConfig)
	// Telemetry receives the cluster_* instruments; Journal receives
	// repartition and shard-transition records. Both optional.
	Telemetry *telemetry.Registry
	Journal   *telemetry.Journal
}

// shardState is the aggregator's per-shard bookkeeping, owned by the
// poll goroutine.
type shardState struct {
	client *resilience.Client

	everSeen  bool
	lastBeat  float64       // last heartbeat value observed
	lastMove  time.Duration // host time the heartbeat last advanced
	epoch     uint32        // incarnation; bumps when the heartbeat runs backwards
	healthy   bool
	power     float64
	headroom  float64
	beatStamp time.Duration // virtual-time Updated of the newest heartbeat

	// Lease state passively observed through the shard's delta stream:
	// the fence guard mirrors fence/holder/expiry/applied-cap into the
	// shard blackboard (rcr.FenceGuard), so every standby replica knows
	// who leads and what assignment is committed without any extra
	// coordination traffic.
	obsFence  uint64
	obsExpiry time.Duration // host-time lease expiry reported by the shard
	obsCap    float64       // shard's last committed fenced cap
	obsHasCap bool
}

// aggMetrics is the aggregator's instrument set.
type aggMetrics struct {
	polls         *telemetry.Counter
	repartitions  *telemetry.Counter
	violations    *telemetry.Counter // conservation self-checks failed (must stay 0)
	shardRestarts *telemetry.Counter
	capErrors     *telemetry.Counter // SetCap pushes that failed
	capRetries    *telemetry.Counter // failed pushes retried immediately
	elections     *telemetry.Counter // lease elections won (HA)
	demotions     *telemetry.Counter // leaderships surrendered (HA)
	budgetW       *telemetry.Gauge
	capsSumW      *telemetry.Gauge
	powerW        *telemetry.Gauge
	unhealthy     *telemetry.Gauge
	isLeader      *telemetry.Gauge
}

// Aggregator subscribes to every shard's delta stream, rolls the fleet
// up into a cluster blackboard, and re-partitions the global power
// budget each period. Shard outages are ridden out by the underlying
// resilience.Client (failover, resubscribe, last-known-good cache);
// the aggregator's own job is to notice a shard has gone quiet, lend
// its share to the rest of the fleet, and give it back on recovery —
// all without ever letting the sum of applied caps exceed the budget.
type Aggregator struct {
	cfg   AggregatorConfig
	board *rcr.Blackboard
	met   *aggMetrics

	// mu guards everything below: Poll (single driver) mutates under it,
	// Status/Frame/ConvergedSince read under it.
	mu         sync.Mutex
	shards     []shardState
	applied    []units.Watts
	reports    []NodeReport
	nextCaps   []units.Watts
	polls      uint64
	lastChange uint64 // poll index of the last applied cap change
	restarts   uint64
	healthyN   int

	// HA replica state (ha.go); untouched when cfg.HA is nil.
	leader      bool
	fence       uint64        // this replica's fence while leading
	knownFence  uint64        // highest fence observed anywhere
	leaseUntil  time.Duration // this replica's lease validity while leading
	obsExpiry   time.Duration // freshest lease expiry observed fleet-wide
	candidateAt time.Duration // scheduled election instant (0: none)
	jitterState uint64
	replay      bool // promoted: re-assert the adopted assignment first
	elections   uint64
	demotions   uint64
	seq         uint64 // per-fence write sequence; reset on election
	// pendingCap/pendingSeq track, per shard, the largest cap value of
	// this fence's writes that failed in transport and may still be in
	// flight (held by a partition, say). Until the shard acks a write at
	// or past pendingSeq — proof the guard's seq barrier has passed the
	// pending write's slot, so it can never land — the leader must
	// assume the pending cap may yet apply, and suppresses every
	// increase fleet-wide (pushFenced's blocked rule): the conservation
	// invariant is then kept against Σ max(applied, pending).
	pendingCap []float64
	pendingSeq []uint64
	// granted marks shards whose guard has accepted this replica's
	// current fence. Until every shard has granted it, the leader writes
	// lease-only: a deposed predecessor may still hold live leases on
	// the minority and keep capping those shards by its own (individually
	// conserving, jointly unbounded) book, so actuating before exclusive
	// control could break conservation. Once a shard grants, its adopted
	// cap is frozen — the predecessor's writes bounce off the fence.
	granted []bool
}

// NewAggregator validates cfg and builds the aggregator. Caps start
// unassigned; the first Poll partitions and pushes them.
func NewAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: aggregator requires at least one shard")
	}
	if cfg.Global <= 0 {
		return nil, fmt.Errorf("cluster: global budget %v must be positive", cfg.Global)
	}
	if cfg.Clock == nil {
		return nil, errors.New("cluster: aggregator requires a host clock")
	}
	if cfg.HA != nil {
		if cfg.HA.ID == 0 {
			return nil, errors.New("cluster: HA replica ID 0 is reserved")
		}
		if cfg.HA.WriteCap == nil {
			return nil, errors.New("cluster: HA requires a fenced WriteCap seam")
		}
	} else if cfg.SetCap == nil {
		return nil, errors.New("cluster: aggregator requires a SetCap seam")
	}
	if cfg.Floor <= 0 {
		cfg.Floor = 10
	}
	if cfg.Max <= 0 {
		cfg.Max = 200
	}
	if cfg.Max < cfg.Floor {
		// An inverted band is a configuration error, not something to
		// clamp silently: every shard would be pinned to its floor and the
		// water-fill could never distribute the surplus the caller asked
		// to budget.
		return nil, fmt.Errorf("cluster: cap band inverted: Max %v < Floor %v", cfg.Max, cfg.Floor)
	}
	if cfg.Period <= 0 {
		cfg.Period = 50 * time.Millisecond
	}
	if cfg.HealthHorizon <= 0 {
		cfg.HealthHorizon = 4 * cfg.Period
	}
	if cfg.KneeRef <= 0 {
		cfg.KneeRef = 28
	}
	board, err := rcr.NewBlackboard(len(cfg.Shards), 1)
	if err != nil {
		return nil, err
	}
	a := &Aggregator{
		cfg:      cfg,
		shards:   make([]shardState, len(cfg.Shards)),
		board:    board,
		applied:  make([]units.Watts, len(cfg.Shards)),
		reports:  make([]NodeReport, len(cfg.Shards)),
		nextCaps: make([]units.Watts, 0, len(cfg.Shards)),
	}
	for i, ep := range cfg.Shards {
		ccfg := resilience.ClientConfig{
			Network: ep.Network,
			Addrs:   []string{ep.Addr},
			// Shard snapshots are stamped in the shard's *virtual* time,
			// which has no relation to the aggregator's host clock, so
			// age-based staleness is meaningless here: liveness is judged
			// by heartbeat movement in Poll instead. The horizon is set
			// far beyond any run length to keep Latest serving.
			StalenessHorizon: 365 * 24 * time.Hour,
			Clock:            cfg.Clock,
			Journal:          cfg.Journal,
			Telemetry:        cfg.Telemetry,
		}
		if cfg.Tune != nil {
			cfg.Tune(ep.ID, &ccfg)
		}
		client, err := resilience.NewClient(ccfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d client: %w", ep.ID, err)
		}
		a.shards[i].client = client
	}
	if reg := cfg.Telemetry; reg != nil {
		a.met = &aggMetrics{
			polls:         reg.Counter("cluster_polls_total"),
			repartitions:  reg.Counter("cluster_repartitions_total"),
			violations:    reg.Counter("cluster_conservation_violations_total"),
			shardRestarts: reg.Counter("cluster_shard_restarts_total"),
			capErrors:     reg.Counter("cluster_cap_push_errors_total"),
			capRetries:    reg.Counter("cluster_cap_retries_total"),
			elections:     reg.Counter("cluster_leader_elections_total"),
			demotions:     reg.Counter("cluster_leader_demotions_total"),
			budgetW:       reg.Gauge("cluster_budget_watts"),
			capsSumW:      reg.Gauge("cluster_caps_sum_watts"),
			powerW:        reg.Gauge("cluster_power_watts"),
			unhealthy:     reg.Gauge("cluster_unhealthy_shards"),
			isLeader:      reg.Gauge("cluster_leader"),
		}
		a.met.budgetW.Set(float64(cfg.Global))
	}
	if cfg.HA != nil {
		a.jitterState = cfg.HA.JitterSeed ^ uint64(cfg.HA.ID)*0x9e3779b97f4a7c15
		a.pendingCap = make([]float64, len(cfg.Shards))
		a.pendingSeq = make([]uint64, len(cfg.Shards))
		a.granted = make([]bool, len(cfg.Shards))
	}
	return a, nil
}

// Board exposes the cluster blackboard: one socket domain per shard
// (power, headroom, cap, healthy), budget and total power at system
// scope. Readers use the ordinary seqlock accessors.
func (a *Aggregator) Board() *rcr.Blackboard { return a.board }

// Run subscribes to every shard and re-partitions each period until ctx
// is cancelled; it returns ctx.Err() after all of its goroutines have
// drained. The subscription streams keep the shard clients' caches
// fresh in the background while the poll loop runs on its own ticker.
func (a *Aggregator) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	for i := range a.shards {
		wg.Add(1)
		go func(c *resilience.Client) {
			defer wg.Done()
			_ = c.Subscribe(ctx)
		}(a.shards[i].client)
	}
	tick := time.NewTicker(a.cfg.Period)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return ctx.Err()
		case <-tick.C:
			a.Poll()
		}
	}
}

// Poll runs one observe → roll-up → partition → push cycle. It is the
// deterministic unit Run drives on a ticker; tests and the experiment
// harness call it directly. Poll is the fleet's single driver — it must
// not be called concurrently with itself.
func (a *Aggregator) Poll() {
	now := a.cfg.Clock()
	if a.met != nil {
		a.met.polls.Inc()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	totalPower := 0.0
	healthy := 0
	for i := range a.shards {
		st := &a.shards[i]
		wasHealthy := st.healthy
		snap, err := st.client.Latest()
		if err == nil {
			a.observe(a.cfg.Shards[i].ID, st, &snap, now)
		}
		// A shard is live while its heartbeat keeps moving in host time;
		// a never-seen shard is unhealthy from the start.
		st.healthy = st.everSeen && now-st.lastMove <= a.cfg.HealthHorizon
		if st.healthy {
			healthy++
			totalPower += st.power
		}
		if st.healthy != wasHealthy {
			kind := telemetry.KindShardRecovered
			if !st.healthy {
				kind = telemetry.KindShardLost
			}
			a.journal(kind, fmt.Sprintf("shard %d", a.cfg.Shards[i].ID))
		}
		a.reports[i] = NodeReport{
			Headroom: st.headroom,
			Floor:    a.cfg.Floor,
			Max:      a.cfg.Max,
			Healthy:  st.healthy,
		}
	}

	var changed bool
	if a.cfg.HA != nil {
		changed = a.haStep(now)
	} else {
		a.nextCaps = Partition(a.cfg.Global, a.reports, a.nextCaps)
		changed = a.push(a.nextCaps)
	}

	a.polls++
	if changed {
		a.lastChange = a.polls
	}
	a.healthyN = healthy
	capsSum := float64(Sum(a.applied))

	// Roll the fleet up into the cluster blackboard.
	for i := range a.shards {
		st := &a.shards[i]
		hv := 0.0
		if st.healthy {
			hv = 1
		}
		a.board.SetSocket(i, rcr.MeterPower, st.power, now)
		a.board.SetSocket(i, MeterHeadroom, st.headroom, now)
		a.board.SetSocket(i, MeterCap, float64(a.applied[i]), now)
		a.board.SetSocket(i, MeterHealthy, hv, now)
	}
	a.board.SetSystem(MeterBudget, float64(a.cfg.Global), now)
	a.board.SetSystem(rcr.MeterPower, totalPower, now)
	a.board.SetSystem(rcr.MeterHeartbeat, float64(a.polls), now)

	if a.met != nil {
		a.met.capsSumW.Set(capsSum)
		a.met.powerW.Set(totalPower)
		a.met.unhealthy.Set(float64(len(a.shards) - healthy))
		if capsSum > float64(a.cfg.Global)+sumEps {
			a.met.violations.Inc()
		}
	}
}

// observe folds one shard snapshot into its state: heartbeat movement
// (liveness and restart detection), per-shard power, and headroom
// derived from memory concurrency against the knee.
func (a *Aggregator) observe(id int, st *shardState, snap *rcr.Snapshot, now time.Duration) {
	var beat *rcr.MeterValue
	for j := range snap.System {
		m := &snap.System[j]
		switch m.Name {
		case rcr.MeterHeartbeat:
			beat = m
		case rcr.MeterFence:
			if f := uint64(m.Value); f > st.obsFence {
				st.obsFence = f
				st.obsExpiry = 0 // expiry below belongs to the new fence
			}
		case rcr.MeterLeaseExpiry:
			if e := time.Duration(m.Value * float64(time.Second)); e > st.obsExpiry {
				st.obsExpiry = e
			}
		case rcr.MeterFencedCap:
			st.obsCap, st.obsHasCap = m.Value, true
		}
	}
	if beat == nil {
		return // no sampler output yet
	}
	switch {
	case !st.everSeen:
		st.everSeen = true
		st.lastMove = now
	case beat.Value < st.lastBeat || (beat.Value == st.lastBeat && beat.Updated < st.beatStamp):
		// The heartbeat ran backwards: a fresh blackboard, i.e. a new
		// incarnation of the shard. Version space restarts with it.
		st.epoch++
		a.restarts++
		if a.met != nil {
			a.met.shardRestarts.Inc()
		}
		a.journal(telemetry.KindShardRestarted,
			fmt.Sprintf("shard %d epoch %d, heartbeat %.0f -> %.0f", id, st.epoch, st.lastBeat, beat.Value))
		st.lastMove = now
	case beat.Value != st.lastBeat:
		st.lastMove = now
	}
	st.lastBeat = beat.Value
	st.beatStamp = beat.Updated

	power, conc := 0.0, 0.0
	for s := range snap.Sockets {
		for j := range snap.Sockets[s].Meters {
			m := &snap.Sockets[s].Meters[j]
			switch m.Name {
			case rcr.MeterPower:
				power += m.Value
			case rcr.MeterMemConcurrency:
				conc += m.Value
			}
		}
	}
	st.power = power
	if n := len(snap.Sockets); n > 0 {
		conc /= float64(n)
	}
	st.headroom = clampHeadroom(1 - conc/a.cfg.KneeRef)
}

// push applies a new cap assignment through the SetCap seam in
// conservation-safe order and reports whether anything changed. A shard
// whose push fails keeps its previous applied value — the conservation
// invariant is judged against what was actually acknowledged. Called
// with a.mu held.
func (a *Aggregator) push(next []units.Watts) bool {
	changed := false
	blocked := false // a decrease failed; increases must wait a poll
	order := ApplyOrder(a.applied, next)
	for _, i := range order {
		if next[i] == a.applied[i] {
			continue
		}
		if blocked && next[i] > a.applied[i] {
			continue // the unacknowledged decrease still holds its watts
		}
		if err := a.cfg.SetCap(a.cfg.Shards[i].ID, next[i]); err != nil {
			// One bounded immediate retry: a transient drop on a decrease
			// would otherwise stall the whole decrease-before-increase
			// sequence for a full poll period.
			if a.met != nil {
				a.met.capRetries.Inc()
			}
			a.journal(telemetry.KindCapRetry,
				fmt.Sprintf("shard %d cap %.1f W: %v", a.cfg.Shards[i].ID, float64(next[i]), err))
			err = a.cfg.SetCap(a.cfg.Shards[i].ID, next[i])
			if err != nil {
				if a.met != nil {
					a.met.capErrors.Inc()
				}
				if next[i] < a.applied[i] {
					blocked = true
				}
				continue
			}
		}
		a.applied[i] = next[i]
		changed = true
	}
	if changed {
		if a.met != nil {
			a.met.repartitions.Inc()
		}
		a.journal(telemetry.KindRepartition,
			fmt.Sprintf("caps sum %.1f W of %.1f W budget", float64(Sum(a.applied)), float64(a.cfg.Global)))
	}
	return changed
}

func (a *Aggregator) journal(kind, detail string) {
	a.cfg.Journal.Record(telemetry.Decision{T: a.cfg.Clock(), Kind: kind, Detail: detail})
}

// AggregatorStatus is a point-in-time view of the aggregator.
type AggregatorStatus struct {
	Polls         uint64
	LastChange    uint64 // poll index of the last cap change (0: never)
	Healthy       int
	Shards        int
	CapsSum       units.Watts
	ShardRestarts uint64
	Caps          []units.Watts

	// HA replica state; zero values for single-aggregator deployments.
	Leader    bool
	Fence     uint64
	Elections uint64
	Demotions uint64
}

// Status snapshots the aggregator's bookkeeping.
func (a *Aggregator) Status() AggregatorStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AggregatorStatus{
		Polls:         a.polls,
		LastChange:    a.lastChange,
		Healthy:       a.healthyN,
		Shards:        len(a.shards),
		CapsSum:       Sum(a.applied),
		ShardRestarts: a.restarts,
		Caps:          append([]units.Watts(nil), a.applied...),
		Leader:        a.leader,
		Fence:         a.fence,
		Elections:     a.elections,
		Demotions:     a.demotions,
	}
}

// ConvergedSince reports whether the fleet has settled: every shard
// healthy and no cap change during the last k polls. The soak gate uses
// it after the fault schedule clears.
func (a *Aggregator) ConvergedSince(k uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.healthyN == len(a.shards) && a.polls >= a.lastChange+k
}

// Frame exports the fleet as a CLS1 roll-up frame for the next tier up:
// shard epochs come from restart detection, versions from the heartbeat
// tick count (monotone within an epoch).
func (a *Aggregator) Frame() ClusterFrame {
	a.mu.Lock()
	defer a.mu.Unlock()
	f := ClusterFrame{
		Now:    a.cfg.Clock(),
		Budget: float64(a.cfg.Global),
		Shards: make([]ShardRecord, len(a.shards)),
	}
	for i := range a.shards {
		st := &a.shards[i]
		f.Shards[i] = ShardRecord{
			ID:       uint16(a.cfg.Shards[i].ID),
			Epoch:    st.epoch,
			Ver:      uint64(st.lastBeat),
			Healthy:  st.healthy,
			Power:    st.power,
			Headroom: st.headroom,
			Cap:      float64(a.applied[i]),
		}
	}
	return f
}
