package cluster

import (
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience/leak"
)

// TestHASoakSingleSeed runs one full-length HA soak with the strict
// resource audit: two replicas, eight shards, both fault tiers live.
func TestHASoakSingleSeed(t *testing.T) {
	leak.Check(t)
	rep, err := RunHASoak(HASoakConfig{Seed: 7, Budget: 1500 * time.Millisecond})
	if err != nil {
		t.Fatalf("ha soak: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.LeaderKills == 0 {
		t.Error("the WAN schedule never killed a leader")
	}
	if rep.FenceGrants == 0 {
		t.Error("no fenced write was ever granted")
	}
	t.Log(rep.Summary())
}

// TestHASoakTriReplica is the larger non-short configuration: three
// replicas over sixteen shards, so elections have a real contender set
// and minority campaigns (and their release path) actually occur.
func TestHASoakTriReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("tri-replica soak is not -short work; the corpus covers the protocol")
	}
	leak.Check(t)
	rep, err := RunHASoak(HASoakConfig{Seed: 64, Shards: 16, Replicas: 3, Budget: 2 * time.Second})
	if err != nil {
		t.Fatalf("ha soak: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.LeadersAtEnd != 1 {
		t.Errorf("%d leaders at end, want exactly 1", rep.LeadersAtEnd)
	}
	t.Log(rep.Summary())
}

// TestHASoakCorpus is the headline HA gate: a seeded corpus of WAN
// fault schedules layered on the fleet schedules. Every seed must hold
// the fenced-write, single-leadership and conservation invariants and
// converge to exactly one leader; collectively the corpus must exercise
// every control-plane fault kind — leader kills, partitions, held
// split-brain deliveries — and the median hand-off across all resolved
// leader kills must beat 2× the lease TTL.
func TestHASoakCorpus(t *testing.T) {
	leak.Check(t)
	runs := 256
	budget := 400 * time.Millisecond
	if testing.Short() {
		runs = 24
	}
	workers := 4
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workers = n
	}
	if workers > 16 {
		workers = 16
	}
	if raceEnabled {
		workers = 2
		runs = runs / 2
	}
	var (
		mu                              sync.Mutex
		handoffRatios                   []float64
		elections, demotions, kills     uint64
		applies, rejects, retries       uint64
		dropped, held, flushed, delayed uint64
		shardKills, resubs, converged   uint64
		seedCh                          = make(chan int)
		wg                              sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seedCh {
				rep, err := RunHASoak(HASoakConfig{
					Seed:              uint64(seed),
					Budget:            budget,
					SkipResourceAudit: true,
				})
				if err != nil {
					mu.Lock()
					t.Errorf("seed %d: %v", seed, err)
					mu.Unlock()
					continue
				}
				if !rep.Passed() {
					mu.Lock()
					for _, v := range rep.Violations {
						t.Errorf("seed %d: %s", seed, v)
					}
					t.Logf("seed %d: %s", seed, rep.Summary())
					mu.Unlock()
					continue
				}
				mu.Lock()
				for _, h := range rep.Handoffs {
					handoffRatios = append(handoffRatios, float64(h)/float64(rep.LeaseTTL))
				}
				elections += rep.Elections
				demotions += rep.Demotions
				kills += rep.LeaderKills
				applies += rep.CapApplies
				rejects += rep.FenceRejects
				retries += rep.CapRetries
				dropped += rep.WANDropped
				delayed += rep.WANDelayed
				held += rep.WANHeld
				flushed += rep.WANFlushed
				shardKills += rep.ShardKills
				resubs += rep.Resubscribes
				if rep.Converged {
					converged++
				}
				mu.Unlock()
			}
		}()
	}
	for seed := 0; seed < runs; seed++ {
		seedCh <- seed
	}
	close(seedCh)
	wg.Wait()
	if t.Failed() {
		return
	}
	if kills == 0 {
		t.Error("no run ever killed a leader: fail-over was never exercised")
	}
	// Demotion (a deposed leader stepping itself down, rather than being
	// killed) is the rarest event in the corpus — it needs a kill window
	// that lets the old incarnation restart into a superseded fence, or a
	// split-brain loser. The truncated -short corpus cannot guarantee one;
	// only the full corpus gates on it.
	if demotions == 0 && !testing.Short() {
		t.Error("no leader was ever demoted: the fencing/step-down path was never exercised")
	}
	if rejects == 0 {
		t.Error("no fenced write was ever rejected: stale-leader writes were never exercised")
	}
	if dropped == 0 {
		t.Error("no write was ever dropped by a partition")
	}
	if held == 0 {
		t.Error("no write was ever held by a split-brain window")
	}
	if shardKills == 0 {
		t.Error("the shard-tier fault schedule never fired under HA")
	}
	if len(handoffRatios) == 0 {
		t.Fatal("no hand-off was ever measured across the corpus")
	}
	sort.Float64s(handoffRatios)
	median := handoffRatios[len(handoffRatios)/2]
	if median >= 2.0 {
		t.Errorf("median hand-off %.2f× lease TTL, want < 2×", median)
	}
	t.Logf("%d runs: %d elections, %d demotions, %d leader-kills, %d applies, %d rejects, %d retries, wan %d dropped/%d delayed/%d held/%d flushed, %d shard-kills, %d resubs, %d hand-offs (median %.2f× TTL, p95 %.2f×), %d/%d converged",
		runs, elections, demotions, kills, applies, rejects, retries,
		dropped, delayed, held, flushed, shardKills, resubs,
		len(handoffRatios), median, handoffRatios[len(handoffRatios)*95/100], converged, runs)
}
