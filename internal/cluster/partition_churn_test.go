package cluster

import (
	"testing"

	"repro/internal/units"
)

// Partitioner-level churn properties: the membership tier grows and
// shrinks the fleet by adding and removing slots between partitions,
// and the pure-function contract the aggregator relies on is that a
// repartition across a membership change, walked in ApplyOrder, never
// lets the fleet's running total escape the envelope of the two
// assignments it moves between — and that a departed slot, once its
// watts are handed back, is never assigned again.
//
// The suite models churn exactly the way reconcile does: a fixed
// universe of shard identities, an active subset, and caps tracked over
// the UNION of the old and new fleets so a departure is an explicit
// step down to zero rather than a slot silently vanishing mid-walk.

// churnFleet is one step's fleet: the active identity set and its
// reports, indexed by universe slot.
type churnFleet struct {
	active []bool
	nodes  []NodeReport
}

func genChurnFleet(r *prng, universe int) churnFleet {
	f := churnFleet{
		active: make([]bool, universe),
		nodes:  make([]NodeReport, universe),
	}
	for i := 0; i < universe; i++ {
		floor := 5 + 20*r.float()
		f.nodes[i] = NodeReport{
			Headroom: r.float(),
			Floor:    units.Watts(floor),
			Max:      units.Watts(floor + 150*r.float()),
			Healthy:  r.next()%6 != 0,
		}
		f.active[i] = r.next()%2 == 0
	}
	// At least one member, or there is nothing to partition.
	f.active[int(r.next()%uint64(universe))] = true
	return f
}

// partitionActive runs the partitioner over the active subset and
// scatters the result back onto universe slots; inactive slots get 0.
func partitionActive(global units.Watts, f churnFleet) []units.Watts {
	var sub []NodeReport
	var idx []int
	for i, on := range f.active {
		if on {
			sub = append(sub, f.nodes[i])
			idx = append(idx, i)
		}
	}
	caps := Partition(global, sub, nil)
	out := make([]units.Watts, len(f.active))
	for j, i := range idx {
		out[i] = caps[j]
	}
	return out
}

// churnStep mutates the fleet the way one membership op does: a join
// (activate an inactive slot), a departure (deactivate an active one),
// or both — plus the usual per-poll report drift.
func churnStep(r *prng, f *churnFleet) {
	switch r.next() % 4 {
	case 0: // join
		for pass := 0; pass < len(f.active); pass++ {
			i := int(r.next() % uint64(len(f.active)))
			if !f.active[i] {
				f.active[i] = true
				break
			}
		}
	case 1: // departure (keep at least one member)
		n := 0
		for _, on := range f.active {
			if on {
				n++
			}
		}
		if n > 1 {
			for pass := 0; pass < len(f.active); pass++ {
				i := int(r.next() % uint64(len(f.active)))
				if f.active[i] {
					f.active[i] = false
					break
				}
			}
		}
	case 2: // swap: one out, one in
		for pass := 0; pass < len(f.active); pass++ {
			i, j := int(r.next()%uint64(len(f.active))), int(r.next()%uint64(len(f.active)))
			if f.active[i] && !f.active[j] {
				f.active[i], f.active[j] = false, true
				break
			}
		}
	}
	for i := range f.nodes {
		f.nodes[i].Headroom = r.float()
		if r.next()%7 == 0 {
			f.nodes[i].Healthy = !f.nodes[i].Healthy
		}
	}
}

// TestPartitionChurnEnvelope: across a random churn history, walking
// every repartition in ApplyOrder keeps the running Σ within
// max(Σold, Σnew) + ε at every intermediate step — the conservation
// envelope that makes elastic membership safe to actuate one cap write
// at a time.
func TestPartitionChurnEnvelope(t *testing.T) {
	const universe = 10
	for seed := uint64(0); seed < 300; seed++ {
		r := &prng{state: seed ^ 0xc08b}
		global := units.Watts(50 + 900*r.float())
		fleet := genChurnFleet(r, universe)
		caps := partitionActive(global, fleet)

		for step := 0; step < 12; step++ {
			churnStep(r, &fleet)
			next := partitionActive(global, fleet)

			envelope := float64(Sum(caps))
			if s := float64(Sum(next)); s > envelope {
				envelope = s
			}
			order := ApplyOrder(caps, next)
			running := append([]units.Watts(nil), caps...)
			for _, i := range order {
				running[i] = next[i]
				if s := float64(Sum(running)); s > envelope+sumEps {
					t.Fatalf("seed %d step %d: mid-churn Σ %.6f W exceeds envelope %.6f W after slot %d",
						seed, step, s, envelope, i)
				}
			}
			caps = next
		}
	}
}

// TestPartitionChurnDepartedStaysZero: once a slot leaves the fleet its
// assignment is zero and stays zero through every later repartition —
// no churn history may ever hand watts back to a departed identity, and
// the step that zeroes it is ordered with the decreases (before any
// survivor absorbs its surplus).
func TestPartitionChurnDepartedStaysZero(t *testing.T) {
	const universe = 8
	for seed := uint64(0); seed < 300; seed++ {
		r := &prng{state: seed ^ 0xdead}
		global := units.Watts(50 + 900*r.float())
		fleet := genChurnFleet(r, universe)
		caps := partitionActive(global, fleet)
		departed := make([]bool, universe)

		for step := 0; step < 12; step++ {
			wasActive := append([]bool(nil), fleet.active...)
			churnStep(r, &fleet)
			for i := range departed {
				switch {
				case wasActive[i] && !fleet.active[i]:
					departed[i] = true
				case fleet.active[i]:
					departed[i] = false // re-joined: eligible again
				}
			}
			next := partitionActive(global, fleet)
			for i, gone := range departed {
				if gone && next[i] != 0 {
					t.Fatalf("seed %d step %d: departed slot %d assigned %.3f W",
						seed, step, i, float64(next[i]))
				}
			}

			// The zeroing write must sort with the decreases: by the time
			// any slot's assignment grows, every departed slot has already
			// been stepped to zero.
			order := ApplyOrder(caps, next)
			running := append([]units.Watts(nil), caps...)
			for _, i := range order {
				if next[i] > running[i] {
					for j, gone := range departed {
						if gone && running[j] != 0 {
							t.Fatalf("seed %d step %d: slot %d raised while departed slot %d still holds %.3f W",
								seed, step, i, j, float64(running[j]))
						}
					}
				}
				running[i] = next[i]
			}
			caps = next
		}
	}
}

// TestPartitionChurnRejoinFromFloor: a slot that departs and later
// re-joins re-enters through the same partition contract as any other
// member — its first assignment is at least its (clamped) floor, and
// the fleet total still conserves. This is the partitioner half of the
// rejoin-residue story: the aggregator clamps the book, the partitioner
// guarantees a floor-funded re-entry exists inside the budget.
func TestPartitionChurnRejoinFromFloor(t *testing.T) {
	const universe = 6
	for seed := uint64(0); seed < 200; seed++ {
		r := &prng{state: seed ^ 0xf1007}
		global := units.Watts(120 + 600*r.float())
		fleet := genChurnFleet(r, universe)
		victim := -1
		for i, on := range fleet.active {
			if on {
				victim = i
				break
			}
		}
		fleet.active[victim] = false
		n := 0
		for _, on := range fleet.active {
			if on {
				n++
			}
		}
		if n == 0 {
			fleet.active[(victim+1)%universe] = true
		}
		partitionActive(global, fleet) // departed state

		fleet.active[victim] = true // re-join
		next := partitionActive(global, fleet)
		if s := float64(Sum(next)); s > float64(global)+sumEps {
			t.Fatalf("seed %d: rejoin partition Σ %.6f W exceeds %.6f W", seed, s, float64(global))
		}
		floorSum := 0.0
		for i, on := range fleet.active {
			if on {
				floorSum += clampFloor(fleet.nodes[i])
			}
		}
		want := clampFloor(fleet.nodes[victim])
		if floorSum > float64(global) {
			want *= float64(global) / floorSum // overcommitted: floors scale
		}
		if float64(next[victim]) < want-sumEps {
			t.Fatalf("seed %d: re-joined slot %d granted %.3f W, below its funded floor %.3f W",
				seed, victim, float64(next[victim]), want)
		}
	}
}
