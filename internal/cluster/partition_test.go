package cluster

import (
	"math"
	"testing"
	"time"

	"repro/internal/units"
)

// splitmix64 mirrors the faults package's stateless PRNG so the property
// corpus here is seeded the same way as every other deterministic corpus
// in the repo.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

type prng struct{ state uint64 }

func (r *prng) next() uint64 {
	r.state = splitmix64(r.state)
	return r.state
}

// float returns a uniform value in [0, 1).
func (r *prng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// genNodes derives a deterministic fleet from a seed: 1–12 shards with
// floors in [5, 25) W, maxes in [floor, floor+150) W, headroom in [0,1)
// and ~1 in 6 shards unhealthy.
func genNodes(r *prng) []NodeReport {
	n := 1 + int(r.next()%12)
	nodes := make([]NodeReport, n)
	for i := range nodes {
		floor := 5 + 20*r.float()
		nodes[i] = NodeReport{
			Headroom: r.float(),
			Floor:    units.Watts(floor),
			Max:      units.Watts(floor + 150*r.float()),
			Healthy:  r.next()%6 != 0,
		}
	}
	return nodes
}

func checkInvariants(t *testing.T, seed uint64, global units.Watts, nodes []NodeReport, caps []units.Watts) {
	t.Helper()
	if len(caps) != len(nodes) {
		t.Fatalf("seed %d: %d caps for %d nodes", seed, len(caps), len(nodes))
	}
	if s := float64(Sum(caps)); s > float64(global)+sumEps {
		t.Fatalf("seed %d: Σcaps %.9f W exceeds global %.9f W", seed, s, float64(global))
	}
	floorSum := 0.0
	for i := range nodes {
		floorSum += float64(clampFloor(nodes[i]))
	}
	for i, c := range caps {
		if c <= 0 {
			t.Fatalf("seed %d: shard %d assigned non-positive cap %v (SetCap would reject it)", seed, i, c)
		}
		if floorSum <= float64(global) && float64(c) < clampFloor(nodes[i])-sumEps {
			t.Fatalf("seed %d: shard %d cap %v below floor %v with affordable floors", seed, i, c, nodes[i].Floor)
		}
		if float64(c) > clampMax(nodes[i])+sumEps {
			t.Fatalf("seed %d: shard %d cap %v above max %v", seed, i, c, nodes[i].Max)
		}
		if !nodes[i].Healthy && floorSum <= float64(global) && float64(c) > clampFloor(nodes[i])+sumEps {
			t.Fatalf("seed %d: unhealthy shard %d got %v above its floor %v", seed, i, c, nodes[i].Floor)
		}
	}
}

func TestPartitionInvariants(t *testing.T) {
	for seed := uint64(0); seed < 500; seed++ {
		r := &prng{state: seed}
		nodes := genNodes(r)
		global := units.Watts(20 + 1000*r.float())
		caps := Partition(global, nodes, nil)
		checkInvariants(t, seed, global, nodes, caps)
	}
}

func TestPartitionDistributesToSaturation(t *testing.T) {
	// With an ample budget every healthy shard must be driven to its
	// Max — surplus is only ever held back once nobody can absorb more.
	nodes := []NodeReport{
		{Headroom: 0.9, Floor: 10, Max: 100, Healthy: true},
		{Headroom: 0.1, Floor: 10, Max: 80, Healthy: true},
		{Headroom: 0.5, Floor: 10, Max: 60, Healthy: false},
	}
	caps := Partition(1000, nodes, nil)
	if math.Abs(float64(caps[0])-100) > sumEps || math.Abs(float64(caps[1])-80) > sumEps {
		t.Errorf("healthy shards not saturated under ample budget: %v", caps)
	}
	if math.Abs(float64(caps[2])-10) > sumEps {
		t.Errorf("unhealthy shard got %v, want its 10 W floor", caps[2])
	}
}

func TestPartitionProportionalToHeadroom(t *testing.T) {
	// Two identical unsaturated shards: the surplus must split in
	// headroom proportion (3:1 here) on top of equal floors.
	nodes := []NodeReport{
		{Headroom: 0.75, Floor: 10, Max: 1000, Healthy: true},
		{Headroom: 0.25, Floor: 10, Max: 1000, Healthy: true},
	}
	caps := Partition(120, nodes, nil) // surplus 100 → 75/25
	if math.Abs(float64(caps[0])-85) > sumEps || math.Abs(float64(caps[1])-35) > sumEps {
		t.Errorf("caps %v, want [85, 35]", caps)
	}
}

func TestPartitionOvercommittedFloors(t *testing.T) {
	nodes := []NodeReport{
		{Headroom: 1, Floor: 60, Max: 100, Healthy: true},
		{Headroom: 1, Floor: 40, Max: 100, Healthy: true},
	}
	caps := Partition(50, nodes, nil) // floors sum to 100, budget 50
	if s := float64(Sum(caps)); s > 50+sumEps {
		t.Fatalf("overcommitted floors exceed budget: Σ %.6f", s)
	}
	// Proportional scaling: 60:40 ratio preserved.
	if math.Abs(float64(caps[0])-30) > sumEps || math.Abs(float64(caps[1])-20) > sumEps {
		t.Errorf("caps %v, want proportional [30, 20]", caps)
	}
}

func TestPartitionMonotoneInHeadroom(t *testing.T) {
	// Raising one shard's headroom, all else equal, must never shrink
	// that shard's assignment.
	for seed := uint64(0); seed < 300; seed++ {
		r := &prng{state: seed ^ 0xabcdef}
		nodes := genNodes(r)
		global := units.Watts(20 + 800*r.float())
		j := int(r.next() % uint64(len(nodes)))
		nodes[j].Healthy = true
		base := Partition(global, nodes, nil)

		raised := append([]NodeReport(nil), nodes...)
		raised[j].Headroom = nodes[j].Headroom + (1-nodes[j].Headroom)*r.float()
		bumped := Partition(global, raised, nil)
		if float64(bumped[j]) < float64(base[j])-sumEps {
			t.Fatalf("seed %d: shard %d cap fell %.6f -> %.6f after headroom rose %.4f -> %.4f",
				seed, j, float64(base[j]), float64(bumped[j]),
				nodes[j].Headroom, raised[j].Headroom)
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		r1 := &prng{state: seed}
		nodes1 := genNodes(r1)
		g1 := units.Watts(20 + 1000*r1.float())
		r2 := &prng{state: seed}
		nodes2 := genNodes(r2)
		g2 := units.Watts(20 + 1000*r2.float())
		a := Partition(g1, nodes1, nil)
		b := Partition(g2, nodes2, nil)
		for i := range a {
			if a[i] != b[i] { // bitwise equality, not approximate
				t.Fatalf("seed %d: nondeterministic partition at %d: %v != %v", seed, i, a[i], b[i])
			}
		}
	}
}

func TestPartitionDegenerateInputs(t *testing.T) {
	if got := Partition(100, nil, nil); len(got) != 0 {
		t.Errorf("nil nodes produced %v", got)
	}
	// Garbage reports must still produce safe, positive, conserving caps.
	nodes := []NodeReport{
		{Headroom: math.NaN(), Floor: -5, Max: -10, Healthy: true},
		{Headroom: 7, Floor: 0, Max: 0, Healthy: true},
	}
	caps := Partition(-3, nodes, nil)
	if s := float64(Sum(caps)); s > sumEps {
		t.Errorf("negative budget distributed %.6f W", s)
	}
	caps = Partition(50, nodes, nil)
	for i, c := range caps {
		if c <= 0 {
			t.Errorf("shard %d: non-positive cap %v from garbage report", i, c)
		}
	}
	if s := float64(Sum(caps)); s > 50+sumEps {
		t.Errorf("garbage reports broke conservation: Σ %.6f", s)
	}
}

// TestPartitionDegenerateProperties property-tests the shapes the
// generator above cannot reach: empty fleets, single-shard fleets,
// fleets whose floors exactly exhaust the budget, and inverted
// Floor/Max bands (which Partition clamps to a floor-pinned band and
// NewAggregator rejects outright).
func TestPartitionDegenerateProperties(t *testing.T) {
	for seed := uint64(0); seed < 300; seed++ {
		r := &prng{state: seed ^ 0xde9e}
		global := units.Watts(1 + 1000*r.float())

		// Zero shards: no caps, regardless of budget, nil or empty input.
		if got := Partition(global, nil, nil); len(got) != 0 {
			t.Fatalf("seed %d: nil fleet produced %v", seed, got)
		}
		if got := Partition(global, []NodeReport{}, nil); len(got) != 0 {
			t.Fatalf("seed %d: empty fleet produced %v", seed, got)
		}

		// One shard: the whole eligible budget lands on it — a healthy
		// shard is driven to min(Max, budget) whenever the budget covers
		// its floor; an unhealthy one is pinned to its floor.
		floor := 5 + 20*r.float()
		one := []NodeReport{{
			Headroom: r.float(),
			Floor:    units.Watts(floor),
			Max:      units.Watts(floor + 150*r.float()),
			Healthy:  r.next()%2 == 0,
		}}
		caps := Partition(global, one, nil)
		checkInvariants(t, seed, global, one, caps)
		if float64(global) >= floor {
			want := clampFloor(one[0])
			if one[0].Healthy {
				want = math.Min(clampMax(one[0]), float64(global))
			}
			if math.Abs(float64(caps[0])-want) > sumEps {
				t.Fatalf("seed %d: single shard (healthy=%v) got %v, want %.6f",
					seed, one[0].Healthy, caps[0], want)
			}
		}

		// Floors exactly exhaust the budget: every shard gets precisely
		// its floor — no scaling, no surplus, healthy or not.
		nodes := genNodes(r)
		floorSum := 0.0
		for i := range nodes {
			floorSum += clampFloor(nodes[i])
		}
		caps = Partition(units.Watts(floorSum), nodes, nil)
		checkInvariants(t, seed, units.Watts(floorSum), nodes, caps)
		for i, c := range caps {
			if math.Abs(float64(c)-clampFloor(nodes[i])) > sumEps {
				t.Fatalf("seed %d: floors == budget but shard %d got %v, floor %.6f",
					seed, i, c, clampFloor(nodes[i]))
			}
		}

		// Inverted band (Max < Floor): Partition clamps the max up to the
		// floor, so an affordable fleet pins every shard exactly at its
		// floor and conservation still holds.
		inverted := genNodes(r)
		for i := range inverted {
			inverted[i].Max = inverted[i].Floor - units.Watts(1+10*r.float())
			inverted[i].Healthy = true
		}
		big := units.Watts(5000)
		caps = Partition(big, inverted, nil)
		checkInvariants(t, seed, big, inverted, caps)
		for i, c := range caps {
			if math.Abs(float64(c)-clampFloor(inverted[i])) > sumEps {
				t.Fatalf("seed %d: inverted band shard %d got %v, want its %.6f floor",
					seed, i, c, clampFloor(inverted[i]))
			}
		}
	}
}

// TestAggregatorRejectsInvertedBand: the config layer refuses Max <
// Floor instead of silently clamping the whole fleet to its floors.
func TestAggregatorRejectsInvertedBand(t *testing.T) {
	_, err := NewAggregator(AggregatorConfig{
		Shards: []ShardEndpoint{{ID: 0, Network: "unix", Addr: "x.sock"}},
		Global: 100,
		Floor:  50,
		Max:    20,
		Clock:  func() time.Duration { return 0 },
		SetCap: func(int, units.Watts) error { return nil },
	})
	if err == nil {
		t.Fatal("NewAggregator accepted Max < Floor")
	}
}

func TestPartitionReusesOutBuffer(t *testing.T) {
	nodes := genNodes(&prng{state: 7})
	buf := make([]units.Watts, 0, 32)
	caps := Partition(200, nodes, buf)
	if &caps[0] != &buf[:1][0] {
		t.Error("Partition allocated despite sufficient out capacity")
	}
}

// TestApplyOrderConservation is the mid-repartition half of the
// conservation property: replaying a re-partition one SetCap at a time
// in ApplyOrder, the fleet-wide sum must stay within the global budget
// at every intermediate step, for 400 seeded before/after pairs.
func TestApplyOrderConservation(t *testing.T) {
	for seed := uint64(0); seed < 400; seed++ {
		r := &prng{state: seed ^ 0x5eed}
		nodes := genNodes(r)
		global := units.Watts(20 + 1000*r.float())
		old := Partition(global, nodes, nil)

		// Perturb the fleet the way a real poll does: headroom moves,
		// health flips.
		for i := range nodes {
			nodes[i].Headroom = r.float()
			if r.next()%5 == 0 {
				nodes[i].Healthy = !nodes[i].Healthy
			}
		}
		next := Partition(global, nodes, nil)

		order := ApplyOrder(old, next)
		if len(order) != len(old) {
			t.Fatalf("seed %d: order has %d entries for %d shards", seed, len(order), len(old))
		}
		seen := make([]bool, len(old))
		running := append([]units.Watts(nil), old...)
		for _, idx := range order {
			if idx < 0 || idx >= len(old) || seen[idx] {
				t.Fatalf("seed %d: order %v is not a permutation", seed, order)
			}
			seen[idx] = true
			running[idx] = next[idx]
			if s := float64(Sum(running)); s > float64(global)+sumEps {
				t.Fatalf("seed %d: mid-repartition Σ %.6f W exceeds global %.6f W after applying shard %d",
					seed, s, float64(global), idx)
			}
		}
	}
}

func TestApplyOrderDecreasesFirst(t *testing.T) {
	old := []units.Watts{50, 30, 40}
	next := []units.Watts{20, 60, 40}
	order := ApplyOrder(old, next)
	want := []int{0, 2, 1} // decreases/equal in index order, then increases
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	ApplyOrder(old, next[:2])
}
