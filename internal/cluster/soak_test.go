package cluster

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience/leak"
)

// TestFleetSoakSingleSeed runs one full-length N=8 soak with the strict
// resource audit and spells out each invariant, so a regression names
// what broke.
func TestFleetSoakSingleSeed(t *testing.T) {
	leak.Check(t)
	rep, err := RunSoak(SoakConfig{Seed: 7, Shards: 8, Budget: 1500 * time.Millisecond})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Repartitions == 0 {
		t.Error("the budget was never re-partitioned")
	}
	if rep.FinalCapsSumW <= 0 {
		t.Error("no watts were ever assigned")
	}
	t.Log(rep.Summary())
}

// TestFleetSoakN64 is the headline gate: a 64-shard fleet under the
// full fault schedule, zero conservation violations, zero goroutine
// leaks, convergence after the faults clear. Skipped in -short (the
// corpus covers N=16 there).
func TestFleetSoakN64(t *testing.T) {
	if testing.Short() {
		t.Skip("N=64 soak is not -short work; the corpus covers N=16")
	}
	leak.Check(t)
	rep, err := RunSoak(SoakConfig{Seed: 64, Shards: 64, Budget: 2 * time.Second})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.HealthyAtEnd != 64 {
		t.Errorf("only %d/64 shards healthy at end", rep.HealthyAtEnd)
	}
	t.Log(rep.Summary())
}

// TestFleetSoakCorpus fans a seeded corpus of fleet fault schedules
// across a worker pool: every seed must conserve the budget at every
// cap push, converge after its faults clear, and leak nothing (one leak
// gate covers the whole corpus; per-run resource audits are off because
// the process is shared). Collectively the corpus must exercise every
// fault kind — shard kills, connection resets, slow-loris peers — and
// must observe real shard restarts through the aggregator's epoch
// detection, so the invariants are known to have been tested under fire
// rather than vacuously.
func TestFleetSoakCorpus(t *testing.T) {
	leak.Check(t)
	runs, shards := 256, 8
	budget := 400 * time.Millisecond
	if testing.Short() {
		runs, shards = 24, 16
	}
	workers := 4
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workers = n
	}
	if workers > 16 {
		workers = 16
	}
	if raceEnabled {
		// Concurrent instrumented runs contend hard for CPU; keep the
		// fleet schedules real-time-faithful by running fewer at once.
		workers = 2
		runs = runs / 2
	}
	var (
		mu                         sync.Mutex
		kills, resets, loris       uint64
		restartsSeen, repartitions uint64
		polls, pushes, converged   uint64
		gapResyncs, resubs         uint64
		seedCh                     = make(chan int)
		wg                         sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seedCh {
				rep, err := RunSoak(SoakConfig{
					Seed:              uint64(seed),
					Shards:            shards,
					Budget:            budget,
					SkipResourceAudit: true,
				})
				if err != nil {
					mu.Lock()
					t.Errorf("seed %d: %v", seed, err)
					mu.Unlock()
					continue
				}
				if !rep.Passed() {
					mu.Lock()
					for _, v := range rep.Violations {
						t.Errorf("seed %d: %s", seed, v)
					}
					mu.Unlock()
					continue
				}
				atomic.AddUint64(&kills, rep.ShardKills)
				atomic.AddUint64(&resets, rep.Resets)
				atomic.AddUint64(&loris, rep.LorisConns)
				atomic.AddUint64(&restartsSeen, rep.RestartsSeen)
				atomic.AddUint64(&repartitions, rep.Repartitions)
				atomic.AddUint64(&polls, rep.Polls)
				atomic.AddUint64(&pushes, rep.CapPushes)
				atomic.AddUint64(&gapResyncs, rep.GapResyncs)
				atomic.AddUint64(&resubs, rep.Resubscribes)
				if rep.Converged {
					atomic.AddUint64(&converged, 1)
				}
			}
		}()
	}
	for seed := 0; seed < runs; seed++ {
		seedCh <- seed
	}
	close(seedCh)
	wg.Wait()
	if t.Failed() {
		return
	}
	if kills == 0 {
		t.Error("no run ever killed a shard: the corpus never exercised crash recovery")
	}
	if resets == 0 {
		t.Error("no run ever reset a connection")
	}
	if loris == 0 {
		t.Error("no run ever attached a slow-loris peer")
	}
	if restartsSeen == 0 {
		t.Error("the aggregator never detected a shard restart: epoch detection was never exercised")
	}
	if resubs == 0 {
		t.Error("no stream was ever resubscribed: the failover path was never exercised")
	}
	t.Logf("%d runs × %d shards: %d polls, %d repartitions, %d cap-pushes, %d kills, %d resets, %d loris, %d restarts-seen, %d gap-resyncs, %d resubs, %d/%d converged",
		runs, shards, polls, repartitions, pushes, kills, resets, loris, restartsSeen, gapResyncs, resubs, converged, runs)
}
