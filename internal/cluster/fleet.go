package cluster

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/rcr"
	"repro/internal/units"
)

// Fleet is the full-stack counterpart of the soak's synthetic shards: N
// independent core.System instances — each a complete simulated node
// with its own sampler, blackboard, task runtime and power-cap
// controller — served over per-shard unix sockets exactly like the
// standalone rcrd daemon. An Aggregator pointed at Endpoints() closes
// the loop: shard meters flow up through the delta streams, per-shard
// budget shares flow back down through SetCap into each node's
// maestro.PowerCap.
//
// Shards run on their own virtual clocks (time advances as their
// workloads execute), so cross-shard coordination — the aggregator —
// lives in host time and judges shard liveness by heartbeat movement,
// never by comparing virtual timestamps across nodes.
type Fleet struct {
	dir    string
	ownDir bool
	shards []*fleetShard
}

// fleetShard is one full-stack node plus its daemon endpoint.
type fleetShard struct {
	sys      *core.System
	srv      *rcr.Server
	socket   string
	serveErr chan error
}

// FleetConfig sizes a Fleet.
type FleetConfig struct {
	// Shards is the node count. Zero selects 4.
	Shards int
	// Dir hosts the shard sockets; empty selects a fresh temp dir that
	// Close removes.
	Dir string
	// Machine is each node's configuration; zero value selects M620.
	Machine machine.Config
	// Workers is each node's task-runtime worker count; zero means all
	// cores.
	Workers int
	// SamplePeriod is each node's blackboard refresh interval (virtual
	// time); zero selects the sampler default.
	SamplePeriod time.Duration
	// InitialCap is each node's starting power bound. It must be
	// positive: the cap controller is the aggregator's actuator, so every
	// shard needs one running. Zero selects a bound high enough (1 kW) to
	// be non-binding until the aggregator assigns a real share.
	InitialCap units.Watts
}

// NewFleet builds and starts every shard; on any failure the shards
// already started are torn down.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.InitialCap <= 0 {
		cfg.InitialCap = 1000
	}
	f := &Fleet{dir: cfg.Dir}
	if f.dir == "" {
		dir, err := os.MkdirTemp("", "rcrd-fleet")
		if err != nil {
			return nil, err
		}
		f.dir, f.ownDir = dir, true
	} else if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := startFleetShard(i, f.dir, cfg)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		f.shards = append(f.shards, sh)
	}
	return f, nil
}

func startFleetShard(id int, dir string, cfg FleetConfig) (*fleetShard, error) {
	sys, err := core.New(core.Options{
		Machine:      cfg.Machine,
		Workers:      cfg.Workers,
		SamplePeriod: cfg.SamplePeriod,
		PowerCap:     cfg.InitialCap,
		Warm:         true,
		Telemetry:    true,
	})
	if err != nil {
		return nil, err
	}
	socket := filepath.Join(dir, fmt.Sprintf("shard-%d.sock", id))
	if err := os.Remove(socket); err != nil && !os.IsNotExist(err) {
		sys.Close()
		return nil, err
	}
	ln, err := net.Listen("unix", socket)
	if err != nil {
		sys.Close()
		return nil, err
	}
	srv := rcr.NewServer(sys.Blackboard(), sys.Machine(), ln)
	srv.Instrument(sys.Telemetry())
	srv.Pub = rcr.NewPublisher(sys.Blackboard())
	srv.Pub.Instrument(sys.Telemetry())
	sys.AttachPublisher(srv.Pub)
	sh := &fleetShard{sys: sys, srv: srv, socket: socket, serveErr: make(chan error, 1)}
	go func() { sh.serveErr <- srv.Serve() }()
	return sh, nil
}

// Len returns the shard count.
func (f *Fleet) Len() int { return len(f.shards) }

// System returns shard i's full stack (to run workloads on it).
func (f *Fleet) System(i int) *core.System { return f.shards[i].sys }

// Endpoints returns the shard daemon addresses in AggregatorConfig form.
func (f *Fleet) Endpoints() []ShardEndpoint {
	eps := make([]ShardEndpoint, len(f.shards))
	for i, sh := range f.shards {
		eps[i] = ShardEndpoint{ID: i, Network: "unix", Addr: sh.socket}
	}
	return eps
}

// SetCap retunes shard i's power bound — the seam handed to
// AggregatorConfig.SetCap so the hierarchical controller enforces its
// partition through each node's own cap controller.
func (f *Fleet) SetCap(i int, cap units.Watts) error {
	if i < 0 || i >= len(f.shards) {
		return fmt.Errorf("cluster: no shard %d", i)
	}
	return f.shards[i].sys.PowerCapController().SetCap(cap)
}

// Close tears every shard down (server first, then the stack) and
// removes the socket dir if the fleet created it. Idempotent.
func (f *Fleet) Close() {
	for _, sh := range f.shards {
		if sh.srv != nil {
			_ = sh.srv.Close()
			<-sh.serveErr
			sh.srv = nil
		}
		sh.sys.Close()
	}
	f.shards = nil
	if f.ownDir && f.dir != "" {
		os.RemoveAll(f.dir)
		f.dir = ""
	}
}
