package cluster

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/rcr"
	"repro/internal/units"
)

// Fleet is the full-stack counterpart of the soak's synthetic shards: N
// independent core.System instances — each a complete simulated node
// with its own sampler, blackboard, task runtime and power-cap
// controller — served over per-shard unix sockets exactly like the
// standalone rcrd daemon. An Aggregator pointed at Endpoints() closes
// the loop: shard meters flow up through the delta streams, per-shard
// budget shares flow back down through SetCap into each node's
// maestro.PowerCap.
//
// Shards run on their own virtual clocks (time advances as their
// workloads execute), so cross-shard coordination — the aggregator —
// lives in host time and judges shard liveness by heartbeat movement,
// never by comparing virtual timestamps across nodes.
type Fleet struct {
	dir    string
	ownDir bool
	base   time.Time // fence-lease host-time origin
	shards []*fleetShard
}

// fleetShard is one full-stack node plus its daemon endpoint.
type fleetShard struct {
	sys      *core.System
	srv      *rcr.Server
	fence    *rcr.FenceGuard
	socket   string
	serveErr chan error
}

// FleetConfig sizes a Fleet.
type FleetConfig struct {
	// Shards is the node count. Zero selects 4.
	Shards int
	// Dir hosts the shard sockets; empty selects a fresh temp dir that
	// Close removes.
	Dir string
	// Machine is each node's configuration; zero value selects M620.
	Machine machine.Config
	// Workers is each node's task-runtime worker count; zero means all
	// cores.
	Workers int
	// SamplePeriod is each node's blackboard refresh interval (virtual
	// time); zero selects the sampler default.
	SamplePeriod time.Duration
	// InitialCap is each node's starting power bound. It must be
	// positive: the cap controller is the aggregator's actuator, so every
	// shard needs one running. Zero selects a bound high enough (1 kW) to
	// be non-binding until the aggregator assigns a real share.
	InitialCap units.Watts
}

// NewFleet builds and starts every shard; on any failure the shards
// already started are torn down.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.InitialCap <= 0 {
		cfg.InitialCap = 1000
	}
	f := &Fleet{dir: cfg.Dir, base: time.Now()}
	if f.dir == "" {
		dir, err := os.MkdirTemp("", "rcrd-fleet")
		if err != nil {
			return nil, err
		}
		f.dir, f.ownDir = dir, true
	} else if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := startFleetShard(i, f.dir, cfg, f.base)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		f.shards = append(f.shards, sh)
	}
	return f, nil
}

func startFleetShard(id int, dir string, cfg FleetConfig, base time.Time) (*fleetShard, error) {
	sys, err := core.New(core.Options{
		Machine:      cfg.Machine,
		Workers:      cfg.Workers,
		SamplePeriod: cfg.SamplePeriod,
		PowerCap:     cfg.InitialCap,
		Warm:         true,
		Telemetry:    true,
	})
	if err != nil {
		return nil, err
	}
	socket := filepath.Join(dir, fmt.Sprintf("shard-%d.sock", id))
	if err := os.Remove(socket); err != nil && !os.IsNotExist(err) {
		sys.Close()
		return nil, err
	}
	ln, err := net.Listen("unix", socket)
	if err != nil {
		sys.Close()
		return nil, err
	}
	srv := rcr.NewServer(sys.Blackboard(), sys.Machine(), ln)
	srv.Instrument(sys.Telemetry())
	srv.Pub = rcr.NewPublisher(sys.Blackboard())
	srv.Pub.Instrument(sys.Telemetry())
	sys.AttachPublisher(srv.Pub)
	// The shard's fencing authority: fenced cap writes land in the
	// node's own controller through the fence ratchet, and the lease
	// state mirrors into the blackboard so standby aggregators track it
	// passively through their delta subscriptions.
	pc := sys.PowerCapController()
	guard := rcr.NewFenceGuard(
		func() time.Duration { return time.Since(base) },
		func(cap float64, fence uint64) error {
			return pc.SetCapFenced(units.Watts(cap), fence)
		},
	)
	guard.Instrument(sys.Telemetry())
	guard.Bind(sys.Blackboard())
	srv.Fence = guard
	sh := &fleetShard{sys: sys, srv: srv, fence: guard, socket: socket, serveErr: make(chan error, 1)}
	go func() { sh.serveErr <- srv.Serve() }()
	return sh, nil
}

// Len returns the shard count.
func (f *Fleet) Len() int { return len(f.shards) }

// System returns shard i's full stack (to run workloads on it).
func (f *Fleet) System(i int) *core.System { return f.shards[i].sys }

// Endpoints returns the shard daemon addresses in AggregatorConfig form.
func (f *Fleet) Endpoints() []ShardEndpoint {
	eps := make([]ShardEndpoint, len(f.shards))
	for i, sh := range f.shards {
		eps[i] = ShardEndpoint{ID: i, Network: "unix", Addr: sh.socket}
	}
	return eps
}

// SetCap retunes shard i's power bound — the seam handed to
// AggregatorConfig.SetCap so the hierarchical controller enforces its
// partition through each node's own cap controller.
func (f *Fleet) SetCap(i int, cap units.Watts) error {
	if i < 0 || i >= len(f.shards) {
		return fmt.Errorf("cluster: no shard %d", i)
	}
	return f.shards[i].sys.PowerCapController().SetCap(cap)
}

// WriteCap sends a fenced cap write to shard i over its real daemon
// socket — the seam handed to HAConfig.WriteCap so redundant
// aggregators exercise the full wire path (CAP op, fence guard, node
// controller) rather than an in-process shortcut.
func (f *Fleet) WriteCap(i int, w rcr.CapWrite) (rcr.CapAck, error) {
	if i < 0 || i >= len(f.shards) {
		return rcr.CapAck{}, fmt.Errorf("cluster: no shard %d", i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return rcr.WriteCap(ctx, "unix", f.shards[i].socket, w)
}

// Close tears the fleet down in two phases: first every shard server
// drains concurrently (in-flight exchanges finish, subscriptions close
// cleanly), then every core.System stops. Closing a shard's system
// while other shards' servers were still draining used to kill live
// delta streams mid-exchange and show up as spurious sub_lost noise in
// the aggregator's telemetry; the barrier between the phases guarantees
// no server is serving by the time any stack goes down. Idempotent.
func (f *Fleet) Close() {
	var wg sync.WaitGroup
	for _, sh := range f.shards {
		if sh.srv == nil {
			continue
		}
		wg.Add(1)
		go func(sh *fleetShard) {
			defer wg.Done()
			_ = sh.srv.Close()
			<-sh.serveErr
		}(sh)
	}
	wg.Wait()
	for _, sh := range f.shards {
		sh.srv = nil
		sh.sys.Close()
	}
	f.shards = nil
	if f.ownDir && f.dir != "" {
		os.RemoveAll(f.dir)
		f.dir = ""
	}
}
