package cluster

import (
	"fmt"
	"time"
)

// Membership wire encoding ("CLSM"): the registry's epoch-versioned
// record as one frame, replicated from the HA leader to the shard
// fence guards (and exported to operators) exactly like the CLS1
// roll-up — explicit identity and versioning in-band so a receiver can
// reject replays no matter how the frame was transported:
//
//	header:
//	  magic   [4]byte "CLSM"
//	  now     int64  (ns, sender host clock)
//	  epoch   uint64 (registry epoch, ≥ 1)
//	  n       uint16 (member count, tombstones included)
//	per member, ascending strictly unique id:
//	  id      uint16
//	  inc     uint32 (incarnation, ≥ 1)
//	  state   uint8  (MemberState, < NumMemberStates)
//	  network uint8  (0 unix, 1 tcp)
//	  alen    uint16 (endpoint address length ≤ maxMemberAddr)
//	  addr    [alen]byte (printable ASCII)
//
// All integers little-endian. Decoding is strict — unknown states or
// networks, zero epochs or incarnations, unsorted ids, over-long or
// non-printable addresses and trailing bytes are all rejected — and
// encoding is canonical: any frame that decodes re-encodes to the
// identical bytes (FuzzDecodeMembership holds this as an invariant).

var memMagic = [4]byte{'C', 'L', 'S', 'M'}

// maxMembers bounds the decoded member count; matches the roll-up
// frame's fleet bound.
const maxMembers = maxRollupShards

// maxMemberAddr bounds an endpoint address — longer than any sane
// socket path or host:port, short enough that a crafted frame cannot
// drive a giant allocation.
const maxMemberAddr = 256

// Wire codes for MemberRecord.Network.
const (
	memNetUnix uint8 = 0
	memNetTCP  uint8 = 1
)

// MemberRecord is one member's line in a membership frame.
type MemberRecord struct {
	ID          uint16
	Incarnation uint32 // ≥ 1
	State       MemberState
	Network     string // "unix" or "tcp"
	Addr        string
}

// Endpoint converts the record back to a shard endpoint.
func (r MemberRecord) Endpoint() ShardEndpoint {
	return ShardEndpoint{ID: int(r.ID), Network: r.Network, Addr: r.Addr}
}

// MembershipRecord is the decoded form of a "CLSM" frame: the whole
// registry at one epoch, tombstones included.
type MembershipRecord struct {
	Now     time.Duration
	Epoch   uint64
	Members []MemberRecord
}

const memHeaderSize = 4 + 8 + 8 + 2
const memRecordFixed = 2 + 4 + 1 + 1 + 2

func memNetCode(network string) (uint8, error) {
	switch network {
	case "unix":
		return memNetUnix, nil
	case "tcp":
		return memNetTCP, nil
	default:
		return 0, fmt.Errorf("cluster: membership network %q is not encodable", network)
	}
}

func memNetName(code uint8) (string, error) {
	switch code {
	case memNetUnix:
		return "unix", nil
	case memNetTCP:
		return "tcp", nil
	default:
		return "", fmt.Errorf("cluster: membership network code %d unknown", code)
	}
}

// addrOK accepts printable-ASCII endpoint addresses within the length
// bound. Socket paths and host:port strings are both printable ASCII;
// anything else in a frame is corruption or craft.
func addrOK(addr string) bool {
	if len(addr) > maxMemberAddr {
		return false
	}
	for i := 0; i < len(addr); i++ {
		if addr[i] < 0x20 || addr[i] > 0x7e {
			return false
		}
	}
	return true
}

// AppendMembership serializes rec onto dst (one allocation at most).
// Members must already be sorted by strictly increasing ID and every
// field encodable; Membership.Record always satisfies both.
func AppendMembership(dst []byte, rec *MembershipRecord) ([]byte, error) {
	if rec.Epoch == 0 {
		return dst, fmt.Errorf("cluster: membership epoch 0 is reserved")
	}
	if len(rec.Members) > maxMembers {
		return dst, fmt.Errorf("cluster: %d members exceeds the frame bound %d", len(rec.Members), maxMembers)
	}
	need := memHeaderSize
	for i := range rec.Members {
		need += memRecordFixed + len(rec.Members[i].Addr)
	}
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, memMagic[:]...)
	dst = appendU64(dst, uint64(int64(rec.Now)))
	dst = appendU64(dst, rec.Epoch)
	dst = appendU16(dst, uint16(len(rec.Members)))
	lastID := -1
	for i := range rec.Members {
		m := &rec.Members[i]
		if int(m.ID) <= lastID {
			return dst, fmt.Errorf("cluster: membership ids not strictly increasing (%d after %d)", m.ID, lastID)
		}
		lastID = int(m.ID)
		if m.Incarnation == 0 {
			return dst, fmt.Errorf("cluster: member %d incarnation 0 is reserved", m.ID)
		}
		if m.State >= NumMemberStates {
			return dst, fmt.Errorf("cluster: member %d state %d unknown", m.ID, m.State)
		}
		net, err := memNetCode(m.Network)
		if err != nil {
			return dst, err
		}
		if !addrOK(m.Addr) {
			return dst, fmt.Errorf("cluster: member %d address not encodable", m.ID)
		}
		dst = appendU16(dst, m.ID)
		dst = appendU32(dst, m.Incarnation)
		dst = append(dst, uint8(m.State), net)
		dst = appendU16(dst, uint16(len(m.Addr)))
		dst = append(dst, m.Addr...)
	}
	return dst, nil
}

// DecodeMembership parses a "CLSM" frame into rec (Members replaced).
// Decoding is strict; a corrupt or crafted frame errors out rather
// than entering a registry.
func DecodeMembership(data []byte, rec *MembershipRecord) error {
	r := &rollupReader{data: data}
	magic, err := r.take(4)
	if err != nil {
		return err
	}
	if [4]byte(magic) != memMagic {
		return fmt.Errorf("cluster: bad membership magic %q", magic)
	}
	now, err := r.u64()
	if err != nil {
		return err
	}
	if int64(now) < 0 {
		return fmt.Errorf("cluster: negative membership frame time %d", int64(now))
	}
	rec.Now = time.Duration(int64(now))
	if rec.Epoch, err = r.u64(); err != nil {
		return err
	}
	if rec.Epoch == 0 {
		return fmt.Errorf("cluster: membership epoch 0 is reserved")
	}
	n, err := r.u16()
	if err != nil {
		return err
	}
	if n > maxMembers {
		return fmt.Errorf("cluster: implausible member count %d", n)
	}
	rec.Members = rec.Members[:0]
	lastID := -1
	for i := 0; i < int(n); i++ {
		var m MemberRecord
		if m.ID, err = r.u16(); err != nil {
			return err
		}
		if int(m.ID) <= lastID {
			return fmt.Errorf("cluster: membership ids not strictly increasing (%d after %d)", m.ID, lastID)
		}
		lastID = int(m.ID)
		if m.Incarnation, err = r.u32(); err != nil {
			return err
		}
		if m.Incarnation == 0 {
			return fmt.Errorf("cluster: member %d incarnation 0 is reserved", m.ID)
		}
		b, err := r.take(2)
		if err != nil {
			return err
		}
		m.State = MemberState(b[0])
		if m.State >= NumMemberStates {
			return fmt.Errorf("cluster: member %d state %d unknown", m.ID, b[0])
		}
		if m.Network, err = memNetName(b[1]); err != nil {
			return err
		}
		alen, err := r.u16()
		if err != nil {
			return err
		}
		if alen > maxMemberAddr {
			return fmt.Errorf("cluster: member %d address length %d exceeds bound", m.ID, alen)
		}
		ab, err := r.take(int(alen))
		if err != nil {
			return err
		}
		m.Addr = string(ab)
		if !addrOK(m.Addr) {
			return fmt.Errorf("cluster: member %d address not printable", m.ID)
		}
		rec.Members = append(rec.Members, m)
	}
	if r.off != len(data) {
		return fmt.Errorf("cluster: %d trailing bytes after membership frame", len(data)-r.off)
	}
	return nil
}

// IsMembershipFrame reports whether data begins with the CLSM magic.
func IsMembershipFrame(data []byte) bool {
	return len(data) >= 4 && [4]byte(data[:4]) == memMagic
}

// MembershipView is the receiving side of the membership path: it folds
// decoded records into a latest-committed view while refusing to move
// backwards, the same replay/anti-poison posture ClusterState takes for
// roll-up frames. Authority is ordered by (fence, epoch): fences are
// totally ordered across leaders, so a successor's very first record —
// whatever its epoch numbering — supersedes every record a deposed
// leader committed, while within one fence the registry epoch orders
// normally. Not safe for concurrent use.
type MembershipView struct {
	fence uint64
	rec   MembershipRecord
	has   bool

	// Adopted counts records accepted; Stale counts replays and
	// regressions refused.
	Adopted uint64
	Stale   uint64
}

// NewMembershipView returns an empty view.
func NewMembershipView() *MembershipView { return &MembershipView{} }

// Supersedes reports whether a record committed under fence at epoch
// would replace the view's current record.
func (v *MembershipView) Supersedes(fence, epoch uint64) bool {
	if !v.has {
		return true
	}
	if fence != v.fence {
		return fence > v.fence
	}
	return epoch > v.rec.Epoch
}

// Apply folds one record committed under the given fence into the view
// and reports whether it was adopted.
func (v *MembershipView) Apply(fence uint64, rec MembershipRecord) bool {
	if !v.Supersedes(fence, rec.Epoch) {
		v.Stale++
		return false
	}
	v.fence = fence
	v.rec = rec
	v.rec.Members = append([]MemberRecord(nil), rec.Members...)
	v.has = true
	v.Adopted++
	return true
}

// Latest returns the committed record and its fence (zero values when
// nothing has been adopted yet).
func (v *MembershipView) Latest() (MembershipRecord, uint64, bool) {
	return v.rec, v.fence, v.has
}
