package cluster

import (
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func testEndpoints(n int) []ShardEndpoint {
	eps := make([]ShardEndpoint, n)
	for i := range eps {
		eps[i] = ShardEndpoint{ID: i, Network: "unix", Addr: "/tmp/shard-" + string(rune('a'+i)) + ".sock"}
	}
	return eps
}

// TestMembershipLifecycle walks one member through the whole life
// cycle — join, activate, drain, complete, decommission — checking the
// state at each step, that every transition bumps the epoch, and that
// the tombstone preserves the incarnation for the next life.
func TestMembershipLifecycle(t *testing.T) {
	now := time.Duration(0)
	m, err := NewMembership(testEndpoints(2), func() time.Duration { return now })
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Epoch(); got != 1 {
		t.Fatalf("seed epoch = %d, want 1", got)
	}

	ep := ShardEndpoint{ID: 7, Network: "unix", Addr: "/tmp/shard-7.sock"}
	now = 5 * time.Millisecond
	if err := m.Join(ep); err != nil {
		t.Fatal(err)
	}
	mb, ok := m.Get(7)
	if !ok || mb.State != MemberJoining || mb.Incarnation != 1 {
		t.Fatalf("after join: %+v ok=%v, want Joining inc 1", mb, ok)
	}
	if mb.AdmittedAt != 5*time.Millisecond {
		t.Fatalf("AdmittedAt = %v, want 5ms", mb.AdmittedAt)
	}
	if err := m.Join(ep); err == nil {
		t.Fatal("joining an in-fleet ID must error")
	}

	epoch := m.Epoch()
	m.Activate(7)
	if mb, _ := m.Get(7); mb.State != MemberActive {
		t.Fatalf("after activate: %s, want active", mb.State)
	}
	if m.Epoch() <= epoch {
		t.Fatal("activate must bump the epoch")
	}
	m.Activate(7) // no-op on a non-Joining member
	if mb, _ := m.Get(7); mb.State != MemberActive {
		t.Fatal("double activate changed state")
	}

	if err := m.Drain(7); err != nil {
		t.Fatal(err)
	}
	if mb, _ := m.Get(7); mb.State != MemberDraining {
		t.Fatalf("after drain: %s, want draining", mb.State)
	}
	if err := m.Drain(7); err == nil {
		t.Fatal("double drain must error")
	}
	m.CompleteDrain(7)
	if mb, _ := m.Get(7); mb.State != MemberDrained {
		t.Fatalf("after complete: %s, want drained", mb.State)
	}
	// Drained still occupies a fleet slot: its floor stays budgeted.
	if got := len(m.Members()); got != 3 {
		t.Fatalf("fleet size = %d, want 3 (drained member still in fleet)", got)
	}

	if err := m.Decommission(7); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Members()); got != 2 {
		t.Fatalf("fleet size = %d after decommission, want 2", got)
	}
	if err := m.Decommission(7); err == nil {
		t.Fatal("decommissioning a Left member must error")
	}

	// Re-join over the tombstone: fresh incarnation, nothing carried over.
	if err := m.Join(ep); err != nil {
		t.Fatal(err)
	}
	if mb, _ := m.Get(7); mb.Incarnation != 2 || mb.State != MemberJoining {
		t.Fatalf("re-join: inc=%d state=%s, want inc 2 joining", mb.Incarnation, mb.State)
	}
}

// TestMembershipReplace: one epoch bump swaps in the new incarnation —
// no intermediate record ever lacks the ID.
func TestMembershipReplace(t *testing.T) {
	m, err := NewMembership(testEndpoints(2), func() time.Duration { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	before := m.Epoch()
	if err := m.Replace(ShardEndpoint{ID: 1, Network: "unix", Addr: "/tmp/new-1.sock"}); err != nil {
		t.Fatal(err)
	}
	if got := m.Epoch(); got != before+1 {
		t.Fatalf("replace bumped epoch %d→%d, want exactly one bump", before, got)
	}
	mb, ok := m.Get(1)
	if !ok || mb.Incarnation != 2 || mb.State != MemberJoining || mb.Endpoint.Addr != "/tmp/new-1.sock" {
		t.Fatalf("after replace: %+v", mb)
	}
	if err := m.Replace(ShardEndpoint{ID: 9}); err == nil {
		t.Fatal("replacing an absent member must error")
	}
}

// TestMembershipRecordAdopt: Record→Adopt round-trips the registry
// content (tombstones included, preserving incarnation high-water), the
// adopted epoch never regresses, and an adopted Joining member's
// warm-up grace restarts from the adopting replica's clock.
func TestMembershipRecordAdopt(t *testing.T) {
	now := time.Duration(0)
	src, err := NewMembership(testEndpoints(3), func() time.Duration { return now })
	if err != nil {
		t.Fatal(err)
	}
	// Build history: decommission 2 (tombstone at inc 1), re-join it
	// (inc 2, Joining), drain 1.
	if err := src.Decommission(2); err != nil {
		t.Fatal(err)
	}
	if err := src.Join(ShardEndpoint{ID: 2, Network: "unix", Addr: "/tmp/shard-2b.sock"}); err != nil {
		t.Fatal(err)
	}
	if err := src.Drain(1); err != nil {
		t.Fatal(err)
	}
	rec := src.Record()
	if rec.Epoch != src.Epoch() {
		t.Fatalf("record epoch %d, registry %d", rec.Epoch, src.Epoch())
	}

	dstNow := 30 * time.Millisecond
	dst, err := NewMembership(nil, func() time.Duration { return dstNow })
	if err != nil {
		t.Fatal(err)
	}
	dst.Adopt(rec)
	if got := dst.Epoch(); got <= rec.Epoch {
		t.Fatalf("adopted epoch %d must move past the record's %d", got, rec.Epoch)
	}
	mems := dst.Members()
	if len(mems) != 3 {
		t.Fatalf("adopted fleet size %d, want 3", len(mems))
	}
	mb, _ := dst.Get(2)
	if mb.Incarnation != 2 || mb.State != MemberJoining {
		t.Fatalf("adopted member 2: %+v, want inc 2 joining", mb)
	}
	if mb.AdmittedAt != dstNow {
		t.Fatalf("adopted joiner's grace restarts at %v, got %v", dstNow, mb.AdmittedAt)
	}
	if mb, _ := dst.Get(1); mb.State != MemberDraining {
		t.Fatalf("adopted member 1: %s, want draining", mb.State)
	}

	// A re-join on the adopting side continues the tombstone's lineage.
	if err := dst.Decommission(2); err != nil {
		t.Fatal(err)
	}
	if err := dst.Join(ShardEndpoint{ID: 2, Network: "unix", Addr: "/tmp/shard-2c.sock"}); err != nil {
		t.Fatal(err)
	}
	if mb, _ := dst.Get(2); mb.Incarnation != 3 {
		t.Fatalf("post-adopt re-join incarnation %d, want 3", mb.Incarnation)
	}
}

// TestMembershipInstrumentJournal: the cluster_member_* instruments and
// member_* journal kinds fire on the corresponding transitions.
func TestMembershipInstrumentJournal(t *testing.T) {
	reg := telemetry.NewRegistry()
	jnl := telemetry.NewJournal(64, 1)
	m, err := NewMembership(testEndpoints(2), func() time.Duration { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	m.Instrument(reg)
	m.Journal(jnl)

	if err := m.Join(ShardEndpoint{ID: 5, Network: "unix", Addr: "/tmp/s5.sock"}); err != nil {
		t.Fatal(err)
	}
	m.Activate(5)
	if err := m.Drain(5); err != nil {
		t.Fatal(err)
	}
	m.CompleteDrain(5)
	if err := m.Decommission(5); err != nil {
		t.Fatal(err)
	}

	for name, want := range map[string]uint64{
		"cluster_member_joins_total":         1,
		"cluster_member_drains_total":        1,
		"cluster_member_decommissions_total": 1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("cluster_members").Value(); got != 2 {
		t.Errorf("cluster_members = %v, want 2", got)
	}

	kinds := map[string]int{}
	for _, d := range jnl.Entries() {
		kinds[d.Kind]++
	}
	for _, k := range []string{
		telemetry.KindMemberJoined,
		telemetry.KindMemberActivated,
		telemetry.KindMemberDrained,
		telemetry.KindMemberDecommissioned,
	} {
		if kinds[k] == 0 {
			t.Errorf("journal kind %s never recorded (saw %v)", k, kinds)
		}
	}
	// The drain path records both the request and the completion.
	if kinds[telemetry.KindMemberDrained] != 2 {
		t.Errorf("member_drained recorded %d times, want 2 (request + floor ack)", kinds[telemetry.KindMemberDrained])
	}
	var decomDetail string
	for _, d := range jnl.Entries() {
		if d.Kind == telemetry.KindMemberDecommissioned {
			decomDetail = d.Detail
		}
	}
	if !strings.Contains(decomDetail, "member 5") {
		t.Errorf("decommission detail %q does not name the member", decomDetail)
	}
}
