package cluster

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"
)

func testFrame() ClusterFrame {
	return ClusterFrame{
		Now:    1500 * time.Millisecond,
		Budget: 400,
		Shards: []ShardRecord{
			{ID: 0, Epoch: 1, Ver: 42, Healthy: true, Power: 96.5, Headroom: 0.8, Cap: 120},
			{ID: 1, Epoch: 3, Ver: 7, Healthy: false, Power: 0, Headroom: 0, Cap: 10},
			{ID: 5, Epoch: 1, Ver: 900, Healthy: true, Power: 130.25, Headroom: 0.125, Cap: 130},
		},
	}
}

func TestClusterFrameRoundTrip(t *testing.T) {
	f := testFrame()
	enc := AppendClusterFrame(nil, &f)
	if !IsClusterFrame(enc) {
		t.Fatal("encoded frame not recognized")
	}
	var got ClusterFrame
	if err := DecodeClusterFrame(enc, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", f, got)
	}
	// Canonical: re-encoding the decode reproduces the bytes.
	if re := AppendClusterFrame(nil, &got); !bytes.Equal(re, enc) {
		t.Fatal("re-encode is not bit-identical")
	}
	// Empty fleet is a valid frame too.
	empty := ClusterFrame{Now: time.Second, Budget: 100}
	enc = AppendClusterFrame(nil, &empty)
	var back ClusterFrame
	if err := DecodeClusterFrame(enc, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Shards) != 0 || back.Budget != 100 {
		t.Fatalf("empty frame decoded to %+v", back)
	}
}

func TestDecodeClusterFrameRejectsCorruption(t *testing.T) {
	base := testFrame()
	mutate := func(name string, fn func(f *ClusterFrame)) {
		f := testFrame()
		f.Shards = append([]ShardRecord(nil), base.Shards...)
		fn(&f)
		enc := AppendClusterFrame(nil, &f)
		var got ClusterFrame
		if err := DecodeClusterFrame(enc, &got); err == nil {
			t.Errorf("%s: corrupt frame accepted", name)
		}
	}
	mutate("NaN budget", func(f *ClusterFrame) { f.Budget = math.NaN() })
	mutate("negative budget", func(f *ClusterFrame) { f.Budget = -1 })
	mutate("negative power", func(f *ClusterFrame) { f.Shards[0].Power = -3 })
	mutate("inf cap", func(f *ClusterFrame) { f.Shards[1].Cap = math.Inf(1) })
	mutate("headroom above 1", func(f *ClusterFrame) { f.Shards[2].Headroom = 1.5 })
	mutate("NaN headroom", func(f *ClusterFrame) { f.Shards[0].Headroom = math.NaN() })
	mutate("duplicate id", func(f *ClusterFrame) { f.Shards[1].ID = f.Shards[0].ID })
	mutate("unsorted ids", func(f *ClusterFrame) { f.Shards[0].ID = 9 })

	f := testFrame()
	enc := AppendClusterFrame(nil, &f)
	var got ClusterFrame
	if err := DecodeClusterFrame(append(enc, 0), &got); err == nil {
		t.Error("trailing byte accepted")
	}
	if err := DecodeClusterFrame(enc[:len(enc)-1], &got); err == nil {
		t.Error("truncated frame accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if err := DecodeClusterFrame(bad, &got); err == nil {
		t.Error("bad magic accepted")
	}
	// Unknown flag bit in shard 0's record.
	bad = append([]byte(nil), enc...)
	bad[rollupHeaderSize+2+4+8] |= 0x80
	if err := DecodeClusterFrame(bad, &got); err == nil {
		t.Error("unknown flag bit accepted")
	}
	// Implausible shard count with no records behind it.
	hdr := AppendClusterFrame(nil, &ClusterFrame{})
	hdr[len(hdr)-2], hdr[len(hdr)-1] = 0xff, 0xff
	if err := DecodeClusterFrame(hdr, &got); err == nil {
		t.Error("implausible shard count accepted")
	}
}

// TestClusterStateReplayProtection pins the anti-poison guarantee: a
// replayed frame from before a shard restart (older epoch) or a stale
// duplicate (same epoch, non-advancing version) never overwrites newer
// state.
func TestClusterStateReplayProtection(t *testing.T) {
	cs := NewClusterState()

	fresh := ClusterFrame{Now: time.Second, Budget: 300, Shards: []ShardRecord{
		{ID: 0, Epoch: 2, Ver: 10, Healthy: true, Power: 90, Headroom: 0.5, Cap: 100},
		{ID: 1, Epoch: 1, Ver: 50, Healthy: true, Power: 80, Headroom: 0.2, Cap: 90},
	}}
	if got := cs.Apply(&fresh); got != 2 {
		t.Fatalf("fresh frame applied %d records, want 2", got)
	}

	// Replay of an older incarnation of shard 0 plus a stale version of
	// shard 1: both skipped, neither merged.
	replay := ClusterFrame{Now: 500 * time.Millisecond, Budget: 300, Shards: []ShardRecord{
		{ID: 0, Epoch: 1, Ver: 999, Healthy: true, Power: 55, Headroom: 0.9, Cap: 40},
		{ID: 1, Epoch: 1, Ver: 50, Healthy: false, Power: 1, Headroom: 0, Cap: 5},
	}}
	if got := cs.Apply(&replay); got != 0 {
		t.Fatalf("replayed frame applied %d records, want 0", got)
	}
	if cs.Regressed != 1 || cs.Replayed != 1 {
		t.Errorf("regressed %d replayed %d, want 1 and 1", cs.Regressed, cs.Replayed)
	}
	if rec, _ := cs.Shard(0); rec.Power != 90 || rec.Epoch != 2 {
		t.Errorf("shard 0 poisoned by old-epoch replay: %+v", rec)
	}
	if rec, _ := cs.Shard(1); !rec.Healthy || rec.Power != 80 {
		t.Errorf("shard 1 poisoned by stale duplicate: %+v", rec)
	}
	if cs.Now() != time.Second {
		t.Errorf("frame time moved backwards to %v", cs.Now())
	}

	// A genuine restart (newer epoch) resets the version space.
	restart := ClusterFrame{Now: 2 * time.Second, Budget: 300, Shards: []ShardRecord{
		{ID: 1, Epoch: 2, Ver: 1, Healthy: true, Power: 20, Headroom: 0.7, Cap: 90},
	}}
	if got := cs.Apply(&restart); got != 1 {
		t.Fatalf("restart frame applied %d records, want 1", got)
	}
	if rec, _ := cs.Shard(1); rec.Epoch != 2 || rec.Power != 20 {
		t.Errorf("restart epoch not accepted: %+v", rec)
	}
	if _, ok := cs.Shard(7); ok {
		t.Error("unknown shard id reported present")
	}
}

// FuzzDecodeClusterFrame hammers the roll-up decoder with arbitrary
// payloads: it must never panic, and any payload it accepts must
// re-encode bit-exactly (canonical encoding) and survive ClusterState
// application without corrupting replay protection.
func FuzzDecodeClusterFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(rollupMagic[:])
	frame := testFrame()
	enc := AppendClusterFrame(nil, &frame)
	f.Add(enc)
	f.Add(enc[:len(enc)/2])
	f.Add(append(append([]byte(nil), enc...), 0))
	f.Add(AppendClusterFrame(nil, &ClusterFrame{Budget: 1}))
	// A replay pair: newer state followed by an older-epoch record.
	old := ClusterFrame{Budget: 10, Shards: []ShardRecord{{ID: 3, Epoch: 1, Ver: 99, Cap: 10}}}
	f.Add(AppendClusterFrame(nil, &old))
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr ClusterFrame
		if err := DecodeClusterFrame(data, &fr); err != nil {
			return
		}
		re := AppendClusterFrame(nil, &fr)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted payload does not re-encode to itself:\n in %x\nout %x", data, re)
		}
		// Feeding an accepted frame twice must count every record of the
		// second pass as replayed or regressed — never double-apply.
		cs := NewClusterState()
		first := cs.Apply(&fr)
		if first != len(fr.Shards) {
			t.Fatalf("first apply accepted %d of %d records", first, len(fr.Shards))
		}
		if again := cs.Apply(&fr); again != 0 {
			t.Fatalf("identical frame re-applied %d records", again)
		}
		if cs.Replayed+cs.Regressed != uint64(len(fr.Shards)) {
			t.Fatalf("replay accounting lost records: replayed %d regressed %d of %d",
				cs.Replayed, cs.Regressed, len(fr.Shards))
		}
	})
}
