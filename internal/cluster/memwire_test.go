package cluster

import (
	"bytes"
	"testing"
	"time"
)

func sampleMembershipRecord() MembershipRecord {
	return MembershipRecord{
		Now:   1234 * time.Millisecond,
		Epoch: 17,
		Members: []MemberRecord{
			{ID: 0, Incarnation: 1, State: MemberActive, Network: "unix", Addr: "/tmp/s0.sock"},
			{ID: 1, Incarnation: 3, State: MemberDraining, Network: "tcp", Addr: "10.0.0.2:7410"},
			{ID: 4, Incarnation: 2, State: MemberLeft, Network: "unix", Addr: "/tmp/s4.sock"},
			{ID: 9, Incarnation: 1, State: MemberJoining, Network: "unix", Addr: "/tmp/s9.sock"},
		},
	}
}

// TestMembershipWireRoundTrip: encode→decode→re-encode is the identity
// on both the record and the bytes.
func TestMembershipWireRoundTrip(t *testing.T) {
	rec := sampleMembershipRecord()
	frame, err := AppendMembership(nil, &rec)
	if err != nil {
		t.Fatal(err)
	}
	var got MembershipRecord
	if err := DecodeMembership(frame, &got); err != nil {
		t.Fatal(err)
	}
	if got.Epoch != rec.Epoch || got.Now != rec.Now || len(got.Members) != len(rec.Members) {
		t.Fatalf("decoded %+v, want %+v", got, rec)
	}
	for i, m := range got.Members {
		if m != rec.Members[i] {
			t.Fatalf("member %d decoded %+v, want %+v", i, m, rec.Members[i])
		}
	}
	again, err := AppendMembership(nil, &got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, again) {
		t.Fatal("re-encode is not canonical")
	}
	if !IsMembershipFrame(frame) {
		t.Fatal("IsMembershipFrame rejected a CLSM frame")
	}
}

// TestMembershipWireRejects: the strict decoder refuses every class of
// malformed frame, and the encoder refuses to produce them.
func TestMembershipWireRejects(t *testing.T) {
	good := sampleMembershipRecord()
	base, err := AppendMembership(nil, &good)
	if err != nil {
		t.Fatal(err)
	}
	var rec MembershipRecord
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte("CLSX"), base[4:]...),
		"truncated":  base[:len(base)-3],
		"trailing":   append(append([]byte(nil), base...), 0),
		"zero epoch": func() []byte { b := append([]byte(nil), base...); copy(b[12:20], make([]byte, 8)); return b }(),
	}
	for name, frame := range cases {
		if err := DecodeMembership(frame, &rec); err == nil {
			t.Errorf("%s: decode accepted a malformed frame", name)
		}
	}

	for name, bad := range map[string]MembershipRecord{
		"zero epoch": {Epoch: 0},
		"unsorted ids": {Epoch: 1, Members: []MemberRecord{
			{ID: 2, Incarnation: 1, Network: "unix", Addr: "a"},
			{ID: 1, Incarnation: 1, Network: "unix", Addr: "b"},
		}},
		"zero incarnation": {Epoch: 1, Members: []MemberRecord{
			{ID: 0, Incarnation: 0, Network: "unix", Addr: "a"},
		}},
		"unknown state": {Epoch: 1, Members: []MemberRecord{
			{ID: 0, Incarnation: 1, State: NumMemberStates, Network: "unix", Addr: "a"},
		}},
		"bad network": {Epoch: 1, Members: []MemberRecord{
			{ID: 0, Incarnation: 1, Network: "carrier-pigeon", Addr: "a"},
		}},
		"unprintable addr": {Epoch: 1, Members: []MemberRecord{
			{ID: 0, Incarnation: 1, Network: "unix", Addr: "a\x01b"},
		}},
	} {
		if _, err := AppendMembership(nil, &bad); err == nil {
			t.Errorf("%s: encode accepted an invalid record", name)
		}
	}
}

// TestMembershipViewOrdering: records order by (fence, epoch) — a
// successor's first commit supersedes a deposed leader's higher epochs,
// replays are refused and counted.
func TestMembershipViewOrdering(t *testing.T) {
	v := NewMembershipView()
	if !v.Apply(2, MembershipRecord{Epoch: 10}) {
		t.Fatal("first record refused")
	}
	if v.Apply(2, MembershipRecord{Epoch: 10}) {
		t.Fatal("replay adopted")
	}
	if v.Apply(1, MembershipRecord{Epoch: 99}) {
		t.Fatal("deposed leader's record adopted over a higher fence")
	}
	if !v.Apply(3, MembershipRecord{Epoch: 2}) {
		t.Fatal("successor's first commit refused despite lower epoch")
	}
	rec, fence, ok := v.Latest()
	if !ok || fence != 3 || rec.Epoch != 2 {
		t.Fatalf("latest = (%d, %d, %v), want (3, 2, true)", fence, rec.Epoch, ok)
	}
	if v.Adopted != 2 || v.Stale != 2 {
		t.Fatalf("adopted/stale = %d/%d, want 2/2", v.Adopted, v.Stale)
	}
}

// FuzzDecodeMembership holds the decoder's contract under arbitrary
// bytes: it never panics, and any frame it accepts re-encodes to the
// identical bytes (canonical encoding).
func FuzzDecodeMembership(f *testing.F) {
	rec := sampleMembershipRecord()
	seed, err := AppendMembership(nil, &rec)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	empty := MembershipRecord{Epoch: 1}
	if seed, err = AppendMembership(nil, &empty); err == nil {
		f.Add(seed)
	}
	f.Add([]byte("CLSM"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var dec MembershipRecord
		if err := DecodeMembership(data, &dec); err != nil {
			return
		}
		out, err := AppendMembership(nil, &dec)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", data, out)
		}
	})
}
