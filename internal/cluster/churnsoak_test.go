package cluster

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience/leak"
)

// TestChurnSoakSingleSeed runs one full-length churn soak with the
// strict resource audit: the fleet grows from its base through join
// storms, churns through crashes, drains and re-joins while the WAN
// tier kills leaders, and must converge to the schedule's final fleet
// with zero conservation violations and no orphaned servers.
func TestChurnSoakSingleSeed(t *testing.T) {
	leak.Check(t)
	rep, err := RunChurnSoak(ChurnSoakConfig{Seed: 7, Budget: 1500 * time.Millisecond})
	if err != nil {
		t.Fatalf("churn soak: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Joins == 0 {
		t.Error("no member ever joined")
	}
	if rep.Decommissions == 0 {
		t.Error("no member was ever decommissioned")
	}
	t.Log(rep.Summary())
}

// TestChurnSoakGrowShrink is the headline elasticity shape from the
// robustness plan: N=4 → 64 → 4 under the full fault stack. Not -short
// work — it runs sixty-plus real servers on real sockets.
func TestChurnSoakGrowShrink(t *testing.T) {
	if testing.Short() {
		t.Skip("the 4→64→4 soak is not -short work; the corpus covers the protocol")
	}
	leak.Check(t)
	rep, err := RunChurnSoak(ChurnSoakConfig{
		Seed:   11,
		Base:   4,
		Peak:   64,
		Budget: 4 * time.Second,
		// Sixty-four real servers plus feeder and drivers want a slacker
		// cadence than the 10-shard default on modest hosts; the lease
		// TTL (8×period) and every latency bound scale with it.
		Period: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("churn soak: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Peak != 64 {
		t.Fatalf("peak %d, want 64", rep.Peak)
	}
	if rep.Joins < uint64(rep.Peak-rep.Base) {
		t.Errorf("%d joins cannot have grown the fleet from %d to %d", rep.Joins, rep.Base, rep.Peak)
	}
	t.Log(rep.Summary())
}

// TestChurnSoakCorpus is the churn gate: a seeded corpus of membership
// schedules layered on WAN fault schedules. Every seed must hold the
// conservation, fenced-write and single-leadership invariants through
// the churn, leave no departed member's server or socket behind, and
// converge — leader, registry and health — to the schedule's replayed
// final fleet. Collectively the corpus must exercise every churn op
// outcome: clean drains, forced departures, and operator retries across
// leader kills.
func TestChurnSoakCorpus(t *testing.T) {
	leak.Check(t)
	runs := 256
	budget := 500 * time.Millisecond
	if testing.Short() {
		runs = 24
	}
	workers := 4
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workers = n
	}
	if workers > 16 {
		workers = 16
	}
	if raceEnabled {
		workers = 2
		runs = runs / 2
	}
	var (
		mu                          sync.Mutex
		elections, demotions, kills uint64
		applies, joins, decomms     uint64
		cleanDrains, forcedDrains   uint64
		opFailures, opRepairs       uint64
		dropped, held, flushed      uint64
		converged                   uint64
		seedCh                      = make(chan int)
		wg                          sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seedCh {
				rep, err := RunChurnSoak(ChurnSoakConfig{
					Seed:              uint64(seed),
					Budget:            budget,
					SkipResourceAudit: true,
				})
				if err != nil {
					mu.Lock()
					t.Errorf("seed %d: %v", seed, err)
					mu.Unlock()
					continue
				}
				if !rep.Passed() {
					mu.Lock()
					for _, v := range rep.Violations {
						t.Errorf("seed %d: %s", seed, v)
					}
					t.Logf("seed %d: %s", seed, rep.Summary())
					mu.Unlock()
					continue
				}
				mu.Lock()
				elections += rep.Elections
				demotions += rep.Demotions
				kills += rep.LeaderKills
				applies += rep.CapApplies
				joins += rep.Joins
				decomms += rep.Decommissions
				cleanDrains += rep.CleanDrains
				forcedDrains += rep.ForcedDrains
				opFailures += rep.OpFailures
				opRepairs += rep.OpRepairs
				dropped += rep.WANDropped
				held += rep.WANHeld
				flushed += rep.WANFlushed
				if rep.Converged {
					converged++
				}
				mu.Unlock()
			}
		}()
	}
	for seed := 0; seed < runs; seed++ {
		seedCh <- seed
	}
	close(seedCh)
	wg.Wait()
	if t.Failed() {
		return
	}
	if kills == 0 {
		t.Error("no run ever killed a leader under churn")
	}
	if cleanDrains == 0 {
		t.Error("no drain ever completed cleanly: the Draining→Drained step-down path was never exercised")
	}
	if dropped == 0 {
		t.Error("no write was ever dropped by a partition")
	}
	if held == 0 {
		t.Error("no write was ever held by a split-brain window")
	}
	if joins == 0 || decomms == 0 {
		t.Error("the membership tier never churned the fleet")
	}
	t.Logf("%d runs: %d elections, %d demotions, %d leader-kills, %d applies, %d joins, %d decommissions, %d clean-drains, %d forced-drains, %d op-failures, %d repairs, wan %d dropped/%d held/%d flushed, %d/%d converged",
		runs, elections, demotions, kills, applies, joins, decomms,
		cleanDrains, forcedDrains, opFailures, opRepairs,
		dropped, held, flushed, converged, runs)
}
