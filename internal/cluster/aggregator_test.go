package cluster

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rcr"
	"repro/internal/resilience"
	"repro/internal/resilience/leak"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// scriptEvent is one scripted push: a snapshot to apply or an error to
// surface from the stream.
type scriptEvent struct {
	snap rcr.Snapshot
	err  error
}

// scriptStream is a scripted SubStream: the test pushes events, the
// client's Subscribe loop consumes them — the same seam the resilience
// client tests use, here driving a whole aggregator.
type scriptStream struct {
	ch   chan scriptEvent
	snap rcr.Snapshot
}

func (s *scriptStream) Next(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case ev := <-s.ch:
		if ev.err != nil {
			return ev.err
		}
		s.snap = ev.snap
		return nil
	}
}

func (s *scriptStream) Snapshot() rcr.Snapshot { return s.snap }
func (s *scriptStream) Close() error           { return nil }

// fakeClock is a manually advanced host clock.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() time.Duration      { return time.Duration(c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// shardSnap builds a shard snapshot: a heartbeat plus one socket with
// the given power and memory concurrency.
func shardSnap(beat, power, conc float64, now time.Duration) rcr.Snapshot {
	return rcr.Snapshot{
		Now:    now,
		System: []rcr.MeterValue{{Name: rcr.MeterHeartbeat, Value: beat, Updated: now}},
		Sockets: []rcr.DomainSnap{{Meters: []rcr.MeterValue{
			{Name: rcr.MeterPower, Value: power, Updated: now},
			{Name: rcr.MeterMemConcurrency, Value: conc, Updated: now},
		}}},
	}
}

// aggHarness wires an aggregator to scripted per-shard streams and a
// recording SetCap seam.
type aggHarness struct {
	agg     *Aggregator
	streams []*scriptStream
	clock   *fakeClock
	reg     *telemetry.Registry
	journal *telemetry.Journal
	cancel  context.CancelFunc
	done    chan struct{}
}

func newAggHarness(t *testing.T, shards int, global units.Watts) *aggHarness {
	t.Helper()
	h := &aggHarness{
		clock:   &fakeClock{},
		reg:     telemetry.NewRegistry(),
		journal: telemetry.NewJournal(1024, 1),
		streams: make([]*scriptStream, shards),
		done:    make(chan struct{}),
	}
	endpoints := make([]ShardEndpoint, shards)
	for i := range endpoints {
		endpoints[i] = ShardEndpoint{ID: i, Network: "unix", Addr: fmt.Sprintf("shard-%d", i)}
		h.streams[i] = &scriptStream{ch: make(chan scriptEvent)}
	}
	agg, err := NewAggregator(AggregatorConfig{
		Shards:        endpoints,
		Global:        global,
		Floor:         10,
		Max:           200,
		Period:        time.Hour, // Run's ticker never fires; tests drive Poll directly
		HealthHorizon: 100 * time.Millisecond,
		Clock:         h.clock.now,
		SetCap:        func(int, units.Watts) error { return nil },
		Telemetry:     h.reg,
		Journal:       h.journal,
		Tune: func(shard int, cfg *resilience.ClientConfig) {
			cfg.Subscribe = func(context.Context, string, string) (resilience.SubStream, error) {
				return h.streams[shard], nil
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.agg = agg
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	go func() { defer close(h.done); _ = agg.Run(ctx) }()
	t.Cleanup(func() {
		h.cancel()
		<-h.done
	})
	return h
}

// push feeds one snapshot to a shard's stream and returns once the
// subscribe goroutine has consumed it.
func (h *aggHarness) push(shard int, snap rcr.Snapshot) {
	h.streams[shard].ch <- scriptEvent{snap: snap}
}

// pollUntil drives Poll until cond holds or a wall deadline passes (the
// subscribe goroutines apply pushed frames asynchronously).
func (h *aggHarness) pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		h.agg.Poll()
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition never held: %s", what)
}

func (h *aggHarness) journalCount(kind string) int {
	n := 0
	for _, d := range h.journal.Entries() {
		if d.Kind == kind {
			n++
		}
	}
	return n
}

// TestAggregatorPartitionsTowardHeadroom: a memory-bound shard (memconc
// at the knee) and a compute-bound shard (far below it) under a binding
// budget — the compute-bound shard must receive the lion's share, the
// sum must respect the budget, and both must sit at or above the floor.
func TestAggregatorPartitionsTowardHeadroom(t *testing.T) {
	leak.Check(t)
	h := newAggHarness(t, 2, 100)
	h.push(0, shardSnap(1, 90, 26, h.clock.now())) // memory-bound
	h.push(1, shardSnap(1, 140, 4, h.clock.now())) // compute-bound
	h.pollUntil(t, "both shards healthy with caps assigned", func() bool {
		st := h.agg.Status()
		return st.Healthy == 2 && st.CapsSum > 0
	})
	st := h.agg.Status()
	if float64(st.CapsSum) > 100+sumEps {
		t.Fatalf("Σcaps %.3f exceeds the 100 W budget", float64(st.CapsSum))
	}
	if st.Caps[1] <= st.Caps[0] {
		t.Errorf("compute-bound shard got %.1f W, memory-bound %.1f W: headroom ignored",
			float64(st.Caps[1]), float64(st.Caps[0]))
	}
	if st.Caps[0] < 10 || st.Caps[1] < 10 {
		t.Errorf("floor violated: %v", st.Caps)
	}
	// The cluster blackboard mirrors the roll-up.
	if m, ok := h.agg.Board().System(MeterBudget); !ok || m.Value != 100 {
		t.Errorf("budget meter = %+v", m)
	}
	if m, ok := h.agg.Board().Socket(1, MeterCap); !ok || m.Value != float64(st.Caps[1]) {
		t.Errorf("cap meter = %+v, want %.1f", m, float64(st.Caps[1]))
	}
}

// TestAggregatorLendsAndRecovers: a shard whose heartbeat stops moving
// is declared lost, its surplus flows to the survivors, and it gets its
// share back after recovery — both transitions journaled.
func TestAggregatorLendsAndRecovers(t *testing.T) {
	leak.Check(t)
	h := newAggHarness(t, 2, 100)
	h.push(0, shardSnap(1, 60, 12, h.clock.now()))
	h.push(1, shardSnap(1, 60, 12, h.clock.now()))
	h.pollUntil(t, "both healthy", func() bool { return h.agg.Status().Healthy == 2 })
	capsBefore := h.agg.Status().Caps

	// Shard 1 goes dark: clock runs past the horizon while only shard 0
	// keeps beating.
	h.clock.advance(150 * time.Millisecond)
	h.push(0, shardSnap(2, 60, 12, h.clock.now()))
	h.pollUntil(t, "shard 1 lost", func() bool { return h.agg.Status().Healthy == 1 })
	st := h.agg.Status()
	if st.Caps[1] != 10 {
		t.Errorf("lost shard holds %.1f W, want its 10 W floor", float64(st.Caps[1]))
	}
	if st.Caps[0] <= capsBefore[0] {
		t.Errorf("survivor's cap %.1f W did not grow from %.1f W", float64(st.Caps[0]), float64(capsBefore[0]))
	}
	if float64(st.CapsSum) > 100+sumEps {
		t.Fatalf("Σcaps %.3f exceeds budget during outage", float64(st.CapsSum))
	}
	if h.journalCount(telemetry.KindShardLost) == 0 {
		t.Error("shard loss not journaled")
	}

	// Recovery: the heartbeat moves again.
	h.push(1, shardSnap(2, 60, 12, h.clock.now()))
	h.pollUntil(t, "shard 1 recovered", func() bool { return h.agg.Status().Healthy == 2 })
	st = h.agg.Status()
	if st.Caps[1] <= 10 {
		t.Errorf("recovered shard still at %.1f W", float64(st.Caps[1]))
	}
	if h.journalCount(telemetry.KindShardRecovered) == 0 {
		t.Error("shard recovery not journaled")
	}
}

// TestAggregatorDetectsRestart: a heartbeat running backwards is a new
// shard incarnation — counted, journaled, and exported as a new epoch.
func TestAggregatorDetectsRestart(t *testing.T) {
	leak.Check(t)
	h := newAggHarness(t, 1, 100)
	h.push(0, shardSnap(50, 80, 10, h.clock.now()))
	h.pollUntil(t, "shard seen", func() bool { return h.agg.Status().Healthy == 1 })
	if f := h.agg.Frame(); f.Shards[0].Epoch != 0 || f.Shards[0].Ver != 50 {
		t.Fatalf("initial frame %+v", f.Shards[0])
	}

	h.push(0, shardSnap(2, 80, 10, h.clock.now())) // fresh blackboard: beat restarted
	h.pollUntil(t, "restart detected", func() bool { return h.agg.Status().ShardRestarts == 1 })
	if h.journalCount(telemetry.KindShardRestarted) != 1 {
		t.Errorf("%d restart records, want 1", h.journalCount(telemetry.KindShardRestarted))
	}
	f := h.agg.Frame()
	if f.Shards[0].Epoch != 1 || f.Shards[0].Ver != 2 {
		t.Errorf("post-restart frame %+v, want epoch 1 ver 2", f.Shards[0])
	}

	// The exported frame survives the wire and replay protection: an
	// old-epoch frame captured before the restart cannot poison a
	// receiver that already folded the new incarnation in.
	preRestart := ClusterFrame{Budget: 100, Shards: []ShardRecord{{ID: 0, Epoch: 0, Ver: 50, Healthy: true, Power: 80, Headroom: 0.5, Cap: 90}}}
	var decoded ClusterFrame
	if err := DecodeClusterFrame(AppendClusterFrame(nil, &f), &decoded); err != nil {
		t.Fatalf("exported frame does not decode: %v", err)
	}
	cs := NewClusterState()
	cs.Apply(&decoded)
	if got := cs.Apply(&preRestart); got != 0 {
		t.Errorf("pre-restart replay applied %d records", got)
	}
}

// TestAggregatorGapResyncObservable is the regression test for delta-gap
// visibility on the aggregation path: a gap episode inside a shard's
// live stream (dropped deltas during a shard hiccup) must surface as
// exactly one sub_gap_resync journal record and one counter increment
// per episode — and the shard state the aggregator acts on must jump
// from the pre-gap snapshot straight to the resync frame, never through
// a stale merge.
func TestAggregatorGapResyncObservable(t *testing.T) {
	leak.Check(t)
	h := newAggHarness(t, 1, 100)
	gapCounter := h.reg.Counter("resilience_client_gap_resyncs_total")

	h.push(0, shardSnap(10, 80, 10, h.clock.now()))
	h.pollUntil(t, "pre-gap frame applied", func() bool { return h.agg.Frame().Shards[0].Ver == 10 })

	// Episode 1: three consecutive gapped deltas, then the server's
	// full-frame resync. Mid-episode the aggregator must still be acting
	// on the pre-gap state, not a partial merge.
	for i := 0; i < 3; i++ {
		h.streams[0].ch <- scriptEvent{err: rcr.ErrDeltaGap}
	}
	h.pollUntil(t, "gap episode journaled", func() bool { return gapCounter.Value() == 1 })
	if v := h.agg.Frame().Shards[0].Ver; v != 10 {
		t.Errorf("mid-gap shard ver %d, want the pre-gap 10 (stale merge?)", v)
	}
	h.push(0, shardSnap(14, 82, 10, h.clock.now()))
	h.pollUntil(t, "resync frame applied", func() bool { return h.agg.Frame().Shards[0].Ver == 14 })
	if got := h.journalCount(telemetry.KindSubGapResync); got != 1 {
		t.Errorf("%d sub_gap_resync records after one episode, want 1", got)
	}

	// Episode 2 proves per-episode (not per-frame) accounting.
	h.streams[0].ch <- scriptEvent{err: rcr.ErrDeltaGap}
	h.pollUntil(t, "second episode counted", func() bool { return gapCounter.Value() == 2 })
	h.push(0, shardSnap(15, 82, 10, h.clock.now()))
	h.pollUntil(t, "second resync applied", func() bool { return h.agg.Frame().Shards[0].Ver == 15 })
	if got := h.journalCount(telemetry.KindSubGapResync); got != 2 {
		t.Errorf("%d sub_gap_resync records after two episodes, want 2", got)
	}
	// A ridden-out gap is not an outage: no loss/resume records, no
	// resubscribe.
	if h.journalCount(telemetry.KindSubLost) != 0 || h.journalCount(telemetry.KindSubResumed) != 0 {
		t.Error("gap episodes journaled as outages")
	}
	if v := h.reg.Counter("resilience_client_resubscribes_total").Value(); v != 0 {
		t.Errorf("%d resubscribes during in-stream gaps, want 0", v)
	}
}

func TestNewAggregatorValidation(t *testing.T) {
	ep := []ShardEndpoint{{ID: 0, Network: "unix", Addr: "x"}}
	clock := func() time.Duration { return 0 }
	setCap := func(int, units.Watts) error { return nil }
	cases := []struct {
		name string
		cfg  AggregatorConfig
	}{
		{"no shards", AggregatorConfig{Global: 100, Clock: clock, SetCap: setCap}},
		{"no budget", AggregatorConfig{Shards: ep, Clock: clock, SetCap: setCap}},
		{"no clock", AggregatorConfig{Shards: ep, Global: 100, SetCap: setCap}},
		{"no setcap", AggregatorConfig{Shards: ep, Global: 100, Clock: clock}},
	}
	for _, c := range cases {
		if _, err := NewAggregator(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
