package cluster

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/rcr"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Membership churn soak: the HA soak (hasoak.go) with the fleet's
// *composition* under fault as well. A faults.MembershipSchedule grows
// the fleet from Base to Peak through join storms, churns it through
// dead-on-arrival joins, forced decommissions, drains and re-joins
// under prior identity, then drains it back down — all while the WAN
// tier keeps killing leaders, partitioning replicas and holding
// split-brain deliveries. A driver goroutine plays the schedule the way
// an operator would: it owns the shard processes (a server starts
// before its join, stops at its crash instant, powers off only after a
// drain completes) and applies every registry op to whichever replica
// currently leads, retrying across leader changes because an op applied
// to a leader that dies before replicating it is simply lost.
//
// The audited invariants extend the HA soak's:
//
//   - conservation across composition changes: Σ(applied caps) ≤ global
//     after every apply, with a departed member's watts leaving the
//     audited sum before any survivor's increase can land;
//   - fenced-write and single-leadership safety, unchanged;
//   - membership convergence: once the schedule clears, the surviving
//     leader's registry must settle to exactly the schedule's replayed
//     final fleet, every member Active and healthy;
//   - clean departure: a decommissioned member's server is down and its
//     socket no longer accepts connections at the end of the run, and
//     the goroutine audit proves its subscription and server goroutines
//     died with it.
//
// The shard-restart fault tier is deliberately absent here: membership
// churn is the shard-lifecycle chaos in this soak, and a schedule-driven
// restart of a decommissioned server would violate the clean-departure
// gate by design. soak.go and hasoak.go keep that tier covered.

// ChurnSoakConfig tunes one membership churn soak run.
type ChurnSoakConfig struct {
	// Seed determines the membership and WAN schedules and all jitter.
	Seed uint64
	// Base is the seed fleet size. Zero selects 4.
	Base int
	// Peak is the high-water fleet size the join storms grow to. Zero
	// selects 10.
	Peak int
	// Replicas is the control-plane size. Zero selects 2.
	Replicas int
	// Budget is the wall-time length of the run. Zero selects 2 s; all
	// churn and WAN ops resolve by 80% of it, leaving a convergence tail.
	Budget time.Duration
	// FeedPeriod is the synthetic shards' sample cadence. Zero selects
	// 2 ms.
	FeedPeriod time.Duration
	// Period is each replica's poll cadence. Zero selects 10 ms.
	Period time.Duration
	// Global is the fleet-wide budget. Zero selects 60 W per Peak shard,
	// so the budget stays binding at the high-water fleet and feasible
	// (above the sum of floors) through every transient.
	Global units.Watts
	// LeaseTTL is the leadership lease. Zero selects 8×Period.
	LeaseTTL time.Duration
	// Dir hosts the shard sockets; empty selects a fresh temp dir.
	Dir string
	// SkipResourceAudit disables the goroutine/heap audit (the corpus
	// fan-out runs many soaks concurrently and audits once).
	SkipResourceAudit bool
	// Telemetry, when non-nil, receives every component's instruments.
	Telemetry *telemetry.Registry
}

// ChurnSoakReport is the audited outcome of one churn soak run.
type ChurnSoakReport struct {
	Seed      uint64
	Base      int
	Peak      int
	Replicas  int
	MemEvents int // membership churn ops scheduled
	WANEvents int
	LeaseTTL  time.Duration
	ClearTime time.Duration

	// Control-plane activity.
	Elections    uint64
	Demotions    uint64
	LeaderKills  uint64
	CapApplies   uint64
	FenceGrants  uint64
	FenceRejects uint64
	CapRetries   uint64

	// Membership activity (registry counters plus driver outcomes).
	Joins         uint64
	Drains        uint64
	Decommissions uint64
	CleanDrains   uint64 // drains that reached Drained before power-off
	ForcedDrains  uint64 // drains the driver forced out after its patience
	OpFailures    uint64 // ops that missed their deadline at fire time
	OpRepairs     uint64 // settle-phase re-asserts of lost ops

	// WAN-tier faults injected.
	WANDropped uint64
	WANDelayed uint64
	WANHeld    uint64
	WANFlushed uint64

	// Invariant audit.
	FencedWriteViolations  uint64
	DoubleLeaderApplies    uint64
	ConservationViolations uint64
	HandoffMarks           int
	Handoffs               []time.Duration
	HandoffMedian          time.Duration
	OrphanSockets          int // departed members still accepting connections
	LeadersAtEnd           int
	MembersAtEnd           int
	HealthyAtEnd           int
	FinalFleetOK           bool // leader's registry matches the replayed final fleet
	Converged              bool
	FinalCapsSumW          float64
	GoroutineGrowth        int
	HeapGrowthBytes        int64

	Violations []string
}

// Passed reports whether every invariant held.
func (r *ChurnSoakReport) Passed() bool { return len(r.Violations) == 0 }

// Summary renders the report as one line.
func (r *ChurnSoakReport) Summary() string {
	return fmt.Sprintf("seed %d: fleet %d->%d->%d × %d replicas, %d+%d events, %d elections, %d demotions, %d leader-kills, %d applies, %d joins, %d drains (%d clean/%d forced), %d decommissions, %d op-failures, %d repairs, wan %d dropped/%d held/%d flushed, %d fence-violations, %d double-leader, %d conservation, %d orphan-sockets, leaders %d, members %d, healthy %d, final-fleet %v, converged %v, goroutines %+d",
		r.Seed, r.Base, r.Peak, r.MembersAtEnd, r.Replicas, r.MemEvents, r.WANEvents,
		r.Elections, r.Demotions, r.LeaderKills, r.CapApplies,
		r.Joins, r.Drains, r.CleanDrains, r.ForcedDrains, r.Decommissions, r.OpFailures, r.OpRepairs,
		r.WANDropped, r.WANHeld, r.WANFlushed,
		r.FencedWriteViolations, r.DoubleLeaderApplies, r.ConservationViolations, r.OrphanSockets,
		r.LeadersAtEnd, r.MembersAtEnd, r.HealthyAtEnd, r.FinalFleetOK, r.Converged, r.GoroutineGrowth)
}

// retire zeroes a departed shard's audited cap. The driver stops the
// shard's server first — no further apply can land — and retires the
// slot *before* decommissioning the member, so the departed watts are
// out of the audited sum before any survivor's increase arrives and the
// conservation check stays strict across the hand-back.
func (a *haCapAuditor) retire(shard int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.caps[shard] = 0
}

// offerMem delivers one fenced membership-carrying write to the shard's
// guard, with the same down-shard semantics as offerCap: a stopped
// server cannot ack, so delayed split-brain deliveries against a
// departed member bounce in transport.
func (s *soakShard) offerMem(w rcr.MemWrite) (rcr.MemAck, error) {
	s.mu.Lock()
	up := s.srv != nil
	s.mu.Unlock()
	if !up || s.fence == nil {
		return rcr.MemAck{}, fmt.Errorf("shard %d: down (injected)", s.id)
	}
	return s.fence.OfferMem(w), nil
}

// up reports whether the shard's server is currently running.
func (s *soakShard) up() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.srv != nil
}

// RunChurnSoak executes one membership churn soak and audits it.
func RunChurnSoak(cfg ChurnSoakConfig) (*ChurnSoakReport, error) {
	if cfg.Base <= 0 {
		cfg.Base = 4
	}
	if cfg.Peak <= 0 {
		cfg.Peak = 10
	}
	if cfg.Peak < cfg.Base {
		cfg.Peak = cfg.Base
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 2 * time.Second
	}
	if cfg.FeedPeriod <= 0 {
		cfg.FeedPeriod = 2 * time.Millisecond
	}
	if cfg.Period <= 0 {
		cfg.Period = 10 * time.Millisecond
	}
	if cfg.Global <= 0 {
		cfg.Global = units.Watts(60 * float64(cfg.Peak))
	}
	if raceEnabled {
		cfg.Budget *= 4
		cfg.FeedPeriod *= 4
		cfg.Period *= 4
		if cfg.LeaseTTL > 0 {
			cfg.LeaseTTL *= 4
		}
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 8 * cfg.Period
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "churnsoak"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	horizon := cfg.Budget * 4 / 5
	msched := faults.GenerateMembershipSchedule(cfg.Seed, cfg.Base, cfg.Peak, horizon)
	// The pool covers every identity the schedule will ever use; shards
	// beyond Base exist from the start (guard included — a node's fence
	// ledger is durable across its lives) but their servers only run
	// while the member is in the fleet.
	pool := msched.Base
	for _, ev := range msched.Events {
		if ev.Shard+1 > pool {
			pool = ev.Shard + 1
		}
	}
	wan := faults.GenerateWANSchedule(cfg.Seed, cfg.Replicas, pool, horizon)
	inj := faults.NewWANInjector(wan)
	clear := msched.ClearTime()
	if wc := wan.ClearTime(); wc > clear {
		clear = wc
	}
	final := msched.FinalFleet()
	wantFinal := make(map[int]bool, len(final))
	for _, id := range final {
		wantFinal[id] = true
	}
	rep := &ChurnSoakReport{
		Seed: cfg.Seed, Base: msched.Base, Peak: msched.Peak, Replicas: cfg.Replicas,
		MemEvents: len(msched.Events), WANEvents: len(wan.Events),
		LeaseTTL: cfg.LeaseTTL, ClearTime: clear,
	}

	var goroutinesBefore int
	var msBefore runtime.MemStats
	if !cfg.SkipResourceAudit {
		goroutinesBefore = runtime.NumGoroutine()
		runtime.GC()
		runtime.ReadMemStats(&msBefore)
	}

	clock := &hostClock{t0: time.Now()}
	auditor := &haCapAuditor{
		global:    float64(cfg.Global),
		debugTag:  fmt.Sprintf("seed=%d", cfg.Seed),
		period:    cfg.Period,
		clock:     clock,
		caps:      make([]float64, pool),
		lastFence: make([]uint64, pool),
		firstSeen: make(map[uint64]time.Duration),
	}
	journal := telemetry.NewJournal(1<<12, 1)

	shards := make([]*soakShard, pool)
	endpoints := make([]ShardEndpoint, pool)
	for i := range shards {
		guard := rcr.NewFenceGuard(clock.Now, auditor.applyFn(i))
		guard.Instrument(reg)
		guard.Journal(journal)
		shards[i] = &soakShard{
			id:     i,
			socket: filepath.Join(dir, fmt.Sprintf("shard-%d.sock", i)),
			clock:  clock,
			reg:    reg,
			rep:    &SoakReport{},
			fence:  guard,
		}
		endpoints[i] = ShardEndpoint{ID: i, Network: "unix", Addr: shards[i].socket}
	}
	for i := 0; i < msched.Base; i++ {
		if err := shards[i].start(); err != nil {
			for j := 0; j < i; j++ {
				shards[j].stop()
			}
			return nil, err
		}
	}
	baseEndpoints := endpoints[:msched.Base]

	// Replica slots. Every replica — rebuilt ones included — starts from
	// the static Base config, the way a restarted daemon reads its stale
	// config file; it learns the actual fleet by adopting the committed
	// membership record its campaign acks return.
	buildReplica := func(idx, gen int) (*haSoakReplica, error) {
		members, err := NewMembership(baseEndpoints, clock.Now)
		if err != nil {
			return nil, err
		}
		members.Instrument(reg)
		members.Journal(journal)
		agg, err := NewAggregator(AggregatorConfig{
			Members:       members,
			Global:        cfg.Global,
			Floor:         10,
			Max:           200,
			Period:        cfg.Period,
			HealthHorizon: 6 * cfg.Period,
			Clock:         clock.Now,
			Telemetry:     reg,
			Journal:       journal,
			HA: &HAConfig{
				ID:         uint32(idx + 1),
				LeaseTTL:   cfg.LeaseTTL,
				JitterSeed: cfg.Seed ^ uint64(idx+1)<<40 ^ uint64(gen)<<8,
				WriteMem: func(shard int, mw rcr.MemWrite) (rcr.MemAck, error) {
					// Every fenced write rides the membership op, so the
					// committed record is replicated and fetched through the
					// same gated, fault-injected path as the caps. The held
					// closure may run later on the flusher goroutine; the
					// buffered channel keeps the ack hand-off synchronized.
					res := make(chan rcr.MemAck, 1)
					err := inj.GateWrite(idx, shard, clock.Now(), func() error {
						ack, err := shards[shard].offerMem(mw)
						if err != nil {
							return err
						}
						res <- ack
						return nil
					})
					if err != nil {
						return rcr.MemAck{}, err
					}
					return <-res, nil
				},
			},
			Tune: func(shard int, ccfg *resilience.ClientConfig) {
				ccfg.Backoff = resilience.Backoff{
					Base: 5 * time.Millisecond,
					Max:  40 * time.Millisecond,
					Seed: cfg.Seed ^ uint64(idx+1)<<30 ^ uint64(shard)<<20,
				}
				ccfg.Subscribe = func(ctx context.Context, network, addr string) (resilience.SubStream, error) {
					if inj.SubBlocked(idx, shard, clock.Now()) {
						return nil, fmt.Errorf("wan: replica %d partitioned from shard %d", idx, shard)
					}
					return rcr.Subscribe(ctx, network, addr)
				}
			},
		})
		if err != nil {
			return nil, err
		}
		if soakApplyTrace {
			agg.debugTag = fmt.Sprintf("seed=%d/r%d", cfg.Seed, idx)
		}
		ctx, cancel := context.WithCancel(context.Background())
		r := &haSoakReplica{agg: agg, cancel: cancel, done: make(chan error, 1)}
		go func() { r.done <- agg.Run(ctx) }()
		return r, nil
	}

	var repMu sync.Mutex
	replicas := make([]*haSoakReplica, cfg.Replicas)
	for i := range replicas {
		r, err := buildReplica(i, 0)
		if err != nil {
			for j := 0; j < i; j++ {
				replicas[j].cancel()
				<-replicas[j].done
			}
			for _, sh := range shards {
				sh.stop()
			}
			return nil, err
		}
		replicas[i] = r
	}
	liveReplicas := func() []*haSoakReplica {
		repMu.Lock()
		defer repMu.Unlock()
		out := make([]*haSoakReplica, len(replicas))
		copy(out, replicas)
		return out
	}
	// leaderAgg resolves the current authority: among replicas claiming
	// leadership, the one with the highest fence (a partitioned stale
	// claimant still inside its old lease may also claim).
	leaderAgg := func() *Aggregator {
		var best *Aggregator
		var bf uint64
		for _, r := range liveReplicas() {
			if r == nil {
				continue
			}
			if st := r.agg.Status(); st.Leader && st.Fence >= bf {
				best, bf = r.agg, st.Fence
			}
		}
		return best
	}

	// Feeder: down shards ignore their tick, so one loop feeds the pool.
	stopFeed := make(chan struct{})
	var feedWG sync.WaitGroup
	feedWG.Add(1)
	go func() {
		defer feedWG.Done()
		tick := time.NewTicker(cfg.FeedPeriod)
		defer tick.Stop()
		for {
			select {
			case <-stopFeed:
				return
			case <-tick.C:
				now := clock.Now()
				for i, sh := range shards {
					sh.feed(now, auditor.cap(i))
				}
			}
		}
	}()

	var chaosWG sync.WaitGroup

	// Chaos tier 1: the membership driver. Ops fire at their scheduled
	// instant; the registry write retries against whichever replica leads
	// until the op lands or the deadline passes, because an op accepted
	// by a leader that is killed before replicating it is simply gone —
	// the operator's retry is part of the protocol, and the settle phase
	// below re-asserts anything that stayed lost.
	sleepUntil := func(t time.Duration) {
		if d := t - clock.Now(); d > 0 {
			time.Sleep(d)
		}
	}
	opDeadline := func(at time.Duration) time.Duration {
		d := at + 8*cfg.LeaseTTL
		if d > cfg.Budget {
			d = cfg.Budget
		}
		return d
	}
	withLeader := func(deadline time.Duration, op func(m *Membership) error) bool {
		for {
			if agg := leaderAgg(); agg != nil {
				if err := op(agg.Members()); err == nil {
					// In the leader's registry is not yet done: the op is
					// durable only once the epoch carrying it is acked by a
					// quorum of guards. A leader killed before that takes
					// the only copy with it — a successor elected from a
					// quorum adopts a record without the op. Wait for
					// durability, re-issuing against any new leader (the
					// ops are idempotent state checks).
					for agg == leaderAgg() {
						if agg.MembershipDurable() {
							return true
						}
						if clock.Now() >= deadline {
							return false
						}
						time.Sleep(cfg.Period / 2)
					}
					continue // authority moved: re-issue against its successor
				}
			}
			if clock.Now() >= deadline {
				return false
			}
			time.Sleep(cfg.Period / 2)
		}
	}
	// The ops are written idempotently against the registry's *current*
	// state, so a retry that crosses a leader change never double-applies
	// and a target whose earlier op was lost resolves to the op's intent.
	joinOp := func(id int) func(m *Membership) error {
		return func(m *Membership) error {
			if mb, ok := m.Get(id); ok && mb.State.InFleet() {
				return nil
			}
			return m.Join(endpoints[id])
		}
	}
	drainOp := func(id int) func(m *Membership) error {
		return func(m *Membership) error {
			mb, ok := m.Get(id)
			if !ok || !mb.State.InFleet() {
				return nil // already out — the drain's end state
			}
			if mb.State == MemberDraining || mb.State == MemberDrained {
				return nil
			}
			return m.Drain(id)
		}
	}
	decomOp := func(id int) func(m *Membership) error {
		return func(m *Membership) error {
			if mb, ok := m.Get(id); !ok || !mb.State.InFleet() {
				return nil
			}
			return m.Decommission(id)
		}
	}
	// stopAndDecommission is every departure's final step, in the order
	// the conservation audit requires: server down (no further apply can
	// land), enforcement registers power-cycled (a rejoining incarnation
	// must not resurrect a cap ledger whose watts the fleet already
	// reclaimed), audited slot retired (the watts leave the audited
	// sum), and only then the registry op that hands the watts back to
	// the pool.
	stopAndDecommission := func(id int, deadline time.Duration) {
		shards[id].stop()
		if shards[id].fence != nil {
			shards[id].fence.PowerCycle()
		}
		auditor.retire(id)
		if !withLeader(deadline, decomOp(id)) {
			atomic.AddUint64(&rep.OpFailures, 1)
		}
	}
	runMemberEvent := func(ev faults.MembershipEvent) {
		switch ev.Op {
		case faults.OpJoin:
			if err := shards[ev.Shard].start(); err != nil {
				atomic.AddUint64(&rep.OpFailures, 1)
				return
			}
			if !withLeader(opDeadline(ev.At), joinOp(ev.Shard)) {
				atomic.AddUint64(&rep.OpFailures, 1)
			}
		case faults.OpJoinCrash:
			if err := shards[ev.Shard].start(); err == nil {
				withLeader(opDeadline(ev.At), joinOp(ev.Shard))
			}
			sleepUntil(ev.At + ev.Dwell)
			stopAndDecommission(ev.Shard, opDeadline(ev.At+ev.Dwell))
		case faults.OpDecommission:
			stopAndDecommission(ev.Shard, opDeadline(ev.At))
		case faults.OpDrain:
			if !withLeader(opDeadline(ev.At), drainOp(ev.Shard)) {
				atomic.AddUint64(&rep.OpFailures, 1)
			}
			// Wait out the dwell for the leader to step the member to its
			// floor and mark it Drained; an operator whose patience runs out
			// forces the member off anyway — the registry op, not the drain
			// ceremony, is what returns the watts.
			patience := ev.At + ev.Dwell + 4*cfg.LeaseTTL
			if patience > cfg.Budget {
				patience = cfg.Budget
			}
			drained := false
			for clock.Now() < patience {
				if agg := leaderAgg(); agg != nil {
					if mb, ok := agg.Members().Get(ev.Shard); !ok || !mb.State.InFleet() || mb.State == MemberDrained {
						drained = true
						break
					}
				}
				time.Sleep(cfg.Period / 2)
			}
			if drained {
				atomic.AddUint64(&rep.CleanDrains, 1)
			} else {
				atomic.AddUint64(&rep.ForcedDrains, 1)
			}
			stopAndDecommission(ev.Shard, opDeadline(patience))
		case faults.OpRejoin:
			stopAndDecommission(ev.Shard, opDeadline(ev.At))
			sleepUntil(ev.At + ev.Dwell)
			if clock.Now() >= cfg.Budget {
				return
			}
			if err := shards[ev.Shard].start(); err != nil {
				atomic.AddUint64(&rep.OpFailures, 1)
				return
			}
			if !withLeader(opDeadline(ev.At+ev.Dwell), joinOp(ev.Shard)) {
				atomic.AddUint64(&rep.OpFailures, 1)
			}
		}
	}
	var memWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		defer memWG.Wait()
		for _, ev := range msched.Events {
			sleepUntil(ev.At)
			if clock.Now() >= cfg.Budget {
				return
			}
			ev := ev
			memWG.Add(1)
			go func() {
				defer memWG.Done()
				runMemberEvent(ev)
			}()
		}
	}()

	// Chaos tier 2a: the split-brain flusher releases held writes when
	// their window closes.
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		tick := time.NewTicker(cfg.Period)
		defer tick.Stop()
		for clock.Now() < cfg.Budget {
			<-tick.C
			inj.Flush(clock.Now())
		}
	}()

	// Chaos tier 2b: leader kills, resolved to whichever replica actually
	// leads — the drain-races-leader-kill interleaving the churn tier
	// exists to exercise.
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		for _, ev := range wan.Kills() {
			sleepUntil(ev.Start)
			if clock.Now() >= cfg.Budget {
				return
			}
			victim, victimFence := -1, uint64(0)
			mid := ev.Start + (ev.End-ev.Start)/2
			for victim < 0 && clock.Now() < mid {
				for i, r := range liveReplicas() {
					if r == nil {
						continue
					}
					if st := r.agg.Status(); st.Leader && st.Fence >= victimFence {
						victim, victimFence = i, st.Fence
					}
				}
				if victim < 0 {
					time.Sleep(cfg.Period / 2)
				}
			}
			if victim < 0 {
				victim = ev.Agg % cfg.Replicas
			}
			var fmax uint64
			for _, g := range shards {
				if st := g.fence.State(); st.Fence > fmax {
					fmax = st.Fence
				}
			}
			repMu.Lock()
			r := replicas[victim]
			replicas[victim] = nil
			repMu.Unlock()
			if r == nil {
				continue
			}
			if st := r.agg.Status(); st.Leader && st.Fence >= fmax {
				auditor.markKill(clock.Now(), fmax)
			}
			r.cancel()
			<-r.done
			atomic.AddUint64(&rep.LeaderKills, 1)
			sleepUntil(ev.End)
			// A failed rebuild must not abandon the replica slot — on a
			// two-replica plane that silently halves the control plane for
			// the rest of the run. Retry across a few poll periods before
			// giving up on this one kill window.
			for attempt := 0; attempt < 5; attempt++ {
				nr, err := buildReplica(victim, 1+int(atomic.LoadUint64(&rep.LeaderKills)))
				if err == nil {
					repMu.Lock()
					replicas[victim] = nr
					repMu.Unlock()
					break
				}
				time.Sleep(cfg.Period)
			}
		}
	}()

	// Let the run play out, then settle.
	sleepUntil(cfg.Budget)
	chaosWG.Wait()
	inj.Flush(cfg.Budget * 2) // late split-brain deliveries must bounce

	// Settle phase: the operator reconciling the fleet to its plan.
	// ensureFinal re-asserts ops a mid-run leader accepted and then lost
	// with its life; the census then demands the surviving leader's
	// registry and health converge to the replayed final fleet.
	fleetSettled := func(st AggregatorStatus, m *Membership) bool {
		mems := m.Members()
		if len(mems) != len(final) {
			return false
		}
		for i, mb := range mems {
			if mb.ID != final[i] || mb.State != MemberActive {
				return false
			}
		}
		return st.Healthy == len(final)
	}
	ensureFinal := func() {
		// Power the final fleet's servers back on first, leader or not: a
		// run whose ops failed during a no-leader window may have stopped
		// enough shards to destroy election quorum, and only restarted
		// servers can grant the campaign that restores a leader.
		for _, id := range final {
			if !shards[id].up() {
				if err := shards[id].start(); err != nil {
					continue
				}
				atomic.AddUint64(&rep.OpRepairs, 1)
			}
		}
		agg := leaderAgg()
		if agg == nil {
			// No leader to repair through. A campaign needs grants from a
			// majority of the CANDIDATE'S book — which may still be the
			// base fleet, or any mid-churn registry, not the schedule's
			// final fleet — so restarting final servers alone can leave
			// every candidate short of quorum forever. Power on whatever
			// each surviving replica's own registry says the fleet is; the
			// leader this restores will then decommission the extras below.
			for _, r := range liveReplicas() {
				if r == nil {
					continue
				}
				for _, mb := range r.agg.Members().Members() {
					if mb.State.InFleet() && !shards[mb.ID].up() {
						if err := shards[mb.ID].start(); err == nil {
							atomic.AddUint64(&rep.OpRepairs, 1)
						}
					}
				}
			}
			return
		}
		m := agg.Members()
		present := make(map[int]bool)
		for _, mb := range m.Members() {
			present[mb.ID] = true
			if !wantFinal[mb.ID] {
				shards[mb.ID].stop()
				if shards[mb.ID].fence != nil {
					shards[mb.ID].fence.PowerCycle()
				}
				auditor.retire(mb.ID)
				if m.Decommission(mb.ID) == nil {
					atomic.AddUint64(&rep.OpRepairs, 1)
				}
			}
		}
		for _, id := range final {
			if !present[id] {
				if m.Join(endpoints[id]) == nil {
					atomic.AddUint64(&rep.OpRepairs, 1)
				}
			}
		}
		// The no-leader branch may have powered on extras a stale
		// minority registry still listed; once a leader is steering the
		// fleet again the operator powers off anything outside the plan
		// that the leader's own book (handled above) never knew about.
		for id, sh := range shards {
			if !wantFinal[id] && sh.up() {
				sh.stop()
				if sh.fence != nil {
					sh.fence.PowerCycle()
				}
				auditor.retire(id)
				atomic.AddUint64(&rep.OpRepairs, 1)
			}
		}
	}
	leaders, healthy, membersAtEnd := 0, 0, 0
	fleetOK := false
	var capsSum units.Watts
	census := func() {
		leaders, healthy, membersAtEnd = 0, 0, 0
		capsSum, fleetOK = 0, false
		for _, r := range liveReplicas() {
			if r == nil {
				continue
			}
			st := r.agg.Status()
			if st.Leader {
				leaders++
				healthy = st.Healthy
				capsSum = st.CapsSum
				membersAtEnd = st.Shards
				fleetOK = fleetSettled(st, r.agg.Members())
			}
		}
	}
	census()
	for deadline := time.Now().Add(10 * cfg.LeaseTTL); (leaders != 1 || !fleetOK) && time.Now().Before(deadline); {
		time.Sleep(cfg.Period / 2)
		ensureFinal()
		census()
	}

	// Clean-departure audit, before teardown stops the survivors: every
	// identity outside the final fleet must be down and its socket dead.
	for id, sh := range shards {
		if wantFinal[id] {
			continue
		}
		if sh.up() {
			rep.OrphanSockets++
			continue
		}
		if c, err := net.DialTimeout("unix", sh.socket, 10*time.Millisecond); err == nil {
			c.Close()
			rep.OrphanSockets++
		}
	}

	for _, r := range liveReplicas() {
		if r == nil {
			continue
		}
		r.cancel()
		<-r.done
	}
	close(stopFeed)
	feedWG.Wait()
	for _, sh := range shards {
		sh.stop()
	}

	rep.Elections = reg.Counter("cluster_leader_elections_total").Value()
	rep.Demotions = reg.Counter("cluster_leader_demotions_total").Value()
	rep.FenceGrants = reg.Counter("cluster_fence_grants_total").Value()
	rep.FenceRejects = reg.Counter("cluster_fence_rejects_total").Value()
	rep.CapRetries = reg.Counter("cluster_cap_retries_total").Value()
	rep.Joins = reg.Counter("cluster_member_joins_total").Value()
	rep.Drains = reg.Counter("cluster_member_drains_total").Value()
	rep.Decommissions = reg.Counter("cluster_member_decommissions_total").Value()
	ws := inj.Stats()
	rep.WANDropped, rep.WANDelayed, rep.WANHeld, rep.WANFlushed =
		ws.Dropped, ws.Delayed, ws.Captured, ws.Flushed

	auditor.mu.Lock()
	rep.CapApplies = auditor.applies
	rep.FencedWriteViolations = auditor.fenceRegress
	rep.DoubleLeaderApplies = auditor.doubleLeader
	rep.ConservationViolations = auditor.conservation
	rep.HandoffMarks = len(auditor.kills)
	auditor.mu.Unlock()
	rep.Handoffs = auditor.handoffs()
	// The latency bound judges in-run hand-offs only: a takeover that had
	// to wait for the settle phase's repairs (election quorum destroyed
	// by failed-op fallout) measures the outage, not the protocol.
	rep.HandoffMedian = medianDuration(auditor.handoffsBefore(cfg.Budget))
	rep.LeadersAtEnd = leaders
	rep.MembersAtEnd = membersAtEnd
	rep.HealthyAtEnd = healthy
	rep.FinalFleetOK = fleetOK
	rep.Converged = leaders == 1 && fleetOK
	rep.FinalCapsSumW = float64(capsSum)

	if !cfg.SkipResourceAudit {
		deadline := time.Now().Add(2 * time.Second)
		growth := runtime.NumGoroutine() - goroutinesBefore
		for growth > 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			growth = runtime.NumGoroutine() - goroutinesBefore
		}
		rep.GoroutineGrowth = growth
		var msAfter runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&msAfter)
		rep.HeapGrowthBytes = int64(msAfter.HeapAlloc) - int64(msBefore.HeapAlloc)
	}

	rep.audit(cfg)
	return rep, nil
}

// audit fills Violations: the invariants every churn seed must hold.
func (r *ChurnSoakReport) audit(cfg ChurnSoakConfig) {
	if r.FencedWriteViolations > 0 {
		r.Violations = append(r.Violations,
			fmt.Sprintf("%d fenced-write violations: a demoted leader's cap landed", r.FencedWriteViolations))
	}
	if r.DoubleLeaderApplies > 0 {
		r.Violations = append(r.Violations,
			fmt.Sprintf("%d double-leadership applications: two fences actuated the fleet at once", r.DoubleLeaderApplies))
	}
	if r.ConservationViolations > 0 {
		r.Violations = append(r.Violations,
			fmt.Sprintf("%d conservation violations: Σ applied caps exceeded the %.0f W budget under churn", r.ConservationViolations, float64(cfg.Global)))
	}
	if r.Elections == 0 {
		r.Violations = append(r.Violations, "no replica was ever elected leader")
	}
	if r.CapApplies == 0 {
		r.Violations = append(r.Violations, "no fenced cap was ever applied")
	}
	if r.Joins == 0 {
		r.Violations = append(r.Violations, "no member ever joined: the churn tier never fired")
	}
	if r.Decommissions == 0 {
		r.Violations = append(r.Violations, "no member was ever decommissioned")
	}
	if r.OrphanSockets > 0 {
		r.Violations = append(r.Violations,
			fmt.Sprintf("%d departed members still had live servers or sockets", r.OrphanSockets))
	}
	if r.HandoffMarks > 0 && len(r.Handoffs) == 0 {
		r.Violations = append(r.Violations,
			fmt.Sprintf("%d authority kills but no successor ever applied a cap under a higher fence", r.HandoffMarks))
	}
	// 6× rather than the HA soak's 4×: a churn soak runs join/drain
	// drivers and up to Peak real servers on top of the control plane,
	// and the corpus runs several such fleets concurrently — on a small
	// host the scheduler tail stretches every hand-off.
	if r.HandoffMedian > 6*r.LeaseTTL {
		r.Violations = append(r.Violations,
			fmt.Sprintf("hand-off median %v exceeds 6× lease TTL (%v)", r.HandoffMedian, r.LeaseTTL))
	}
	if !r.FinalFleetOK {
		r.Violations = append(r.Violations,
			fmt.Sprintf("membership did not converge to the schedule's final fleet (%d members at end)", r.MembersAtEnd))
	}
	if !r.Converged {
		r.Violations = append(r.Violations,
			fmt.Sprintf("control plane did not converge: %d leaders at end, %d healthy of %d members", r.LeadersAtEnd, r.HealthyAtEnd, r.MembersAtEnd))
	}
	if r.GoroutineGrowth > 0 {
		r.Violations = append(r.Violations,
			fmt.Sprintf("goroutine leak: %+d after teardown", r.GoroutineGrowth))
	}
	if r.HeapGrowthBytes > soakHeapBound {
		r.Violations = append(r.Violations,
			fmt.Sprintf("heap grew %d bytes (bound %d)", r.HeapGrowthBytes, soakHeapBound))
	}
}
