//go:build race

package cluster

// raceEnabled reports whether the race detector is compiled in; the
// soak stretches its timebase under -race because instrumented code
// runs several times slower than the real-time fault schedule assumes.
const raceEnabled = true
