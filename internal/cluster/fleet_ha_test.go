package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/rcr"
	"repro/internal/resilience/leak"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workloads"
	"repro/internal/workloads/suite"
)

// TestFleetWriteCapWire drives the fenced cap path end to end over a
// real shard socket: the CAP op reaches the shard's fence guard, the
// guard actuates the node's own PowerCap controller, and a stale fence
// bounces without touching the bound.
func TestFleetWriteCapWire(t *testing.T) {
	leak.Check(t)
	fleet, err := NewFleet(FleetConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	ack, err := fleet.WriteCap(0, rcr.CapWrite{
		Fence: 5, Leader: 1, Seq: 1, Lease: time.Second, HasCap: true, Cap: 140,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Status != rcr.CapApplied {
		t.Fatalf("ack %+v", ack)
	}
	if got := fleet.System(0).PowerCapController().Cap(); got != 140 {
		t.Fatalf("node controller holds %.1f W, want the fenced 140", float64(got))
	}
	// Stale fence: rejected at the guard, bound untouched.
	ack, err = fleet.WriteCap(0, rcr.CapWrite{
		Fence: 4, Leader: 2, Seq: 1, Lease: time.Second, HasCap: true, Cap: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Status != rcr.CapFenceRejected {
		t.Fatalf("stale fence ack %+v", ack)
	}
	if got := fleet.System(0).PowerCapController().Cap(); got != 140 {
		t.Fatalf("stale write moved the bound to %.1f W", float64(got))
	}
	if ack.Fence != 5 || !ack.HasApplied || ack.Applied != 140 {
		t.Fatalf("reject ack does not report the authoritative state: %+v", ack)
	}
	if _, err := fleet.WriteCap(7, rcr.CapWrite{Fence: 1, Leader: 1, Seq: 1, Lease: time.Second}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

// TestFleetHALeaderKillMidRepartition is the acceptance test for the HA
// control plane over real full-stack shards: two aggregator replicas
// share the fleet, the elected leader is killed while it is actively
// repartitioning a binding budget, and (a) no shard ever rises above
// its pre-kill cap until the promoted standby is in charge, (b) the
// budget is conserved at the node controllers throughout, and (c) the
// standby takes over with a higher fence and converges the fleet.
func TestFleetHALeaderKillMidRepartition(t *testing.T) {
	leak.Check(t)
	fleet, err := NewFleet(FleetConfig{Shards: 2, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	t0 := time.Now()
	const global = 120
	type replica struct {
		agg     *Aggregator
		cancel  context.CancelFunc
		done    chan error
		stopped bool
	}
	stopReplica := func(r *replica) {
		if !r.stopped {
			r.cancel()
			<-r.done
			r.stopped = true
		}
	}
	reps := make([]*replica, 2)
	journals := make([]*telemetry.Journal, 2)
	for r := range reps {
		journals[r] = telemetry.NewJournal(512, 1)
		agg, err := NewAggregator(AggregatorConfig{
			Shards:        fleet.Endpoints(),
			Global:        global,
			Floor:         10,
			Max:           300,
			Period:        20 * time.Millisecond,
			HealthHorizon: 500 * time.Millisecond,
			Clock:         func() time.Duration { return time.Since(t0) },
			Telemetry:     telemetry.NewRegistry(),
			Journal:       journals[r],
			HA: &HAConfig{
				ID: uint32(r + 1),
				// Generous against this harness's write-path tail: two
				// full-stack workloads contending with every fenced write's
				// fresh dial. A lease that outruns the tail keeps the
				// pre-kill reign stable; hand-off latency is gated by the
				// soak, not here.
				LeaseTTL:   1500 * time.Millisecond,
				Grace:      400 * time.Millisecond,
				JitterSeed: uint64(77 * (r + 1)),
				WriteCap:   fleet.WriteCap,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- agg.Run(ctx) }()
		reps[r] = &replica{agg: agg, cancel: cancel, done: done}
	}
	defer func() {
		for _, r := range reps {
			stopReplica(r)
		}
	}()

	// Keep both shards hot so heartbeats move and the budget binds.
	apps := []string{"lulesh", "nqueens"}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	runErr := make([]error, fleet.Len())
	for i := 0; i < fleet.Len(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				wl, err := suite.New(apps[i])
				if err == nil {
					err = wl.Prepare(workloads.Params{
						MachineConfig: fleet.System(i).Machine().Config(),
						Scale:         0.5,
					})
				}
				if err == nil {
					_, err = fleet.System(i).RunWorkload(wl)
				}
				if err != nil {
					runErr[i] = err
					return
				}
			}
		}(i)
	}
	defer func() {
		close(stop)
		wg.Wait()
		for i, err := range runErr {
			if err != nil {
				t.Errorf("shard %d workload: %v", i, err)
			}
		}
	}()

	// Phase 1: a leader emerges and actively partitions the fleet.
	leaderIdx := -1
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for r, rep := range reps {
			st := rep.agg.Status()
			if st.Leader && st.Healthy == 2 && st.LastChange > 0 &&
				st.Caps[0] > 0 && st.Caps[1] > 0 {
				leaderIdx = r
			}
		}
		if leaderIdx >= 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if leaderIdx < 0 {
		for r, j := range journals {
			shown := 0
			entries := j.Entries()
			for k := len(entries) - 1; k >= 0 && shown < 10; k-- {
				d := entries[k]
				switch d.Kind {
				case telemetry.KindLeaderElected, telemetry.KindLeaderDemoted,
					telemetry.KindFenceRejected, telemetry.KindCapRetry, telemetry.KindRepartition:
					t.Logf("replica %d journal: %v %s %s", r+1, d.T, d.Kind, d.Detail)
					shown++
				}
			}
		}
		t.Fatalf("no replica ever led and repartitioned: %+v / %+v",
			reps[0].agg.Status(), reps[1].agg.Status())
	}
	standby := reps[1-leaderIdx]

	// Phase 2: kill the leader mid-flight, then freeze the pre-kill
	// state (sampling before the stop would race its final writes).
	stopReplica(reps[leaderIdx])
	killedStatus := reps[leaderIdx].agg.Status()
	preKill := make([]units.Watts, fleet.Len())
	for i := range preKill {
		preKill[i] = fleet.System(i).PowerCapController().Cap()
	}

	// Phase 3: monitor the node controllers through the hand-off. Until
	// the standby is promoted nobody may raise any shard's bound, and
	// the budget holds at the actuators the whole way.
	var promoted bool
	deadline = time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		caps := make([]units.Watts, fleet.Len())
		sum := units.Watts(0)
		for i := 0; i < fleet.Len(); i++ {
			caps[i] = fleet.System(i).PowerCapController().Cap()
			sum += caps[i]
		}
		if float64(sum) > global+sumEps {
			t.Fatalf("node controllers hold Σ %.3f W > %d W during hand-off", float64(sum), global)
		}
		// The per-shard no-rise check is only decisive while the standby
		// is verifiably not yet in charge: reading its status *after* the
		// samples rules out a promotion racing the read.
		st := standby.agg.Status()
		if !promoted && !st.Leader {
			for i := range caps {
				if caps[i] > preKill[i] {
					t.Fatalf("shard %d rose to %.1f W above its pre-kill %.1f W with no leader in charge",
						i, float64(caps[i]), float64(preKill[i]))
				}
			}
		}
		if st.Leader {
			promoted = true
			if st.Healthy == 2 && st.LastChange > 0 {
				break // promoted and driving: hand-off complete
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !promoted {
		t.Fatalf("standby never promoted: %+v", standby.agg.Status())
	}
	final := standby.agg.Status()
	if final.Fence <= killedStatus.Fence {
		t.Errorf("promoted fence %d not above the killed leader's %d", final.Fence, killedStatus.Fence)
	}
	if final.Elections == 0 {
		t.Error("promotion without an election on the record")
	}
	if float64(final.CapsSum) > global+sumEps {
		t.Errorf("Σcaps %.3f exceeds the %d W budget after hand-off", float64(final.CapsSum), global)
	}
	// The standby's assignment really landed in the node controllers.
	stopReplica(standby)
	settled := standby.agg.Status()
	for i := 0; i < fleet.Len(); i++ {
		if got := fleet.System(i).PowerCapController().Cap(); got != settled.Caps[i] {
			t.Errorf("shard %d controller holds %.1f W, promoted leader applied %.1f W",
				i, float64(got), float64(settled.Caps[i]))
		}
	}
	t.Logf("hand-off: killed replica %d (fence %d) → replica %d (fence %d), caps %.1f/%.1f of %d W",
		leaderIdx+1, killedStatus.Fence, 2-leaderIdx, settled.Fence,
		float64(settled.Caps[0]), float64(settled.Caps[1]), global)
}

// TestFleetCloseWithLiveSubscribers is the regression test for the
// two-phase Close: tearing the fleet down under a live aggregator used
// to interleave one shard's stack teardown with other shards' server
// drains, so delta streams died mid-exchange and the client journaled
// spurious extra sub_lost episodes. With the drain barrier, every
// stream ends cleanly at phase one: at most one outage per shard is
// journaled, Close never deadlocks, and a second Close is a no-op.
func TestFleetCloseWithLiveSubscribers(t *testing.T) {
	leak.Check(t)
	fleet, err := NewFleet(FleetConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	shards := fleet.Len()
	closed := false
	defer func() {
		if !closed {
			fleet.Close()
		}
	}()

	t0 := time.Now()
	journal := telemetry.NewJournal(512, 1)
	agg, err := NewAggregator(AggregatorConfig{
		Shards:        fleet.Endpoints(),
		Global:        200,
		Floor:         10,
		Max:           300,
		Period:        5 * time.Millisecond,
		HealthHorizon: 300 * time.Millisecond,
		Clock:         func() time.Duration { return time.Since(t0) },
		SetCap:        fleet.SetCap,
		Telemetry:     telemetry.NewRegistry(),
		Journal:       journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- agg.Run(ctx) }()

	// Let every subscription establish (the streams exist even while the
	// idle shards' samplers are quiet).
	time.Sleep(100 * time.Millisecond)

	// Tear the fleet down under the live aggregator, with a watchdog on
	// the drain barrier.
	closeDone := make(chan struct{})
	go func() { fleet.Close(); close(closeDone) }()
	select {
	case <-closeDone:
		closed = true
	case <-time.After(10 * time.Second):
		t.Fatal("Fleet.Close deadlocked under live subscribers")
	}

	// Give the clients one backoff round to notice, then stop.
	time.Sleep(50 * time.Millisecond)
	cancel()
	<-done

	// One outage per shard at most: each stream ended exactly once, at
	// the phase-one drain.
	lost := 0
	for _, d := range journal.Entries() {
		if d.Kind == telemetry.KindSubLost {
			lost++
		}
	}
	if lost > shards {
		t.Errorf("%d sub_lost episodes for a %d-shard close: teardown churned the streams", lost, shards)
	}

	// Idempotent.
	fleet.Close()
}
