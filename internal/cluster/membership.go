package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Fleet membership (docs/cluster.md §Membership). The cluster tier was
// originally sized once at construction; Membership makes the fleet's
// composition a runtime variable with an explicit life cycle:
//
//	Joining ──first heartbeat──▶ Active ──Drain──▶ Draining
//	   │                            │                  │
//	   │                            │         stepped to floor, acked
//	   │                            │                  ▼
//	   └────────Decommission────────┴──────────▶    Drained
//	                                                   │
//	                                             Decommission
//	                                                   ▼
//	                                                 Left
//
// Every transition bumps the registry epoch, so the whole membership is
// an epoch-versioned record: the aggregator reconciles its book against
// it at each poll boundary, the HA leader replicates it to the shard
// guards as a CLSM frame (memwire.go), and a promoted standby adopts
// the committed record exactly as it adopts the cap assignment.
//
// Invariants the life cycle exists to protect:
//
//   - admission at the floor: a Joining member is budgeted its Floor
//     from the instant it is admitted, but receives no surplus and is
//     never declared lost inside its warm-up grace — silence from a
//     shard that has not yet heartbeat is expected, not a failure;
//   - conservation through drain: a Draining member is pinned to its
//     floor so the partitioner water-fills its surplus back to the
//     survivors, decreases before increases, and only once the member
//     has actually been stepped down and acked does it become Drained
//     (safe to power off);
//   - watts return only on removal: a Drained member still draws its
//     floor, so its floor stays in the book until Decommission — the
//     operator's assertion that the node is off — removes it. A Left
//     member is never written again and never assigned watts.
//
// Left members persist as tombstones so a re-join under a prior
// identity gets a fresh incarnation; the map is bounded by the number
// of distinct shard IDs ever used, not by churn volume.

// MemberState is one member's position in the membership life cycle.
type MemberState uint8

// Membership life-cycle states.
const (
	// MemberJoining: admitted, budgeted its floor, not yet heard from.
	MemberJoining MemberState = iota
	// MemberActive: heartbeating; participates in the surplus water-fill.
	MemberActive
	// MemberDraining: leaving voluntarily; pinned to its floor while the
	// surplus water-fills back to the survivors.
	MemberDraining
	// MemberDrained: stepped down to its floor and acked — safe to power
	// off. Still a member; its floor stays budgeted until decommission.
	MemberDrained
	// MemberLeft: removed. Never written, never budgeted; the ID is a
	// tombstone holding the incarnation high-water mark for re-joins.
	MemberLeft

	// NumMemberStates bounds the valid state values (wire validation).
	NumMemberStates
)

// String returns the state name.
func (s MemberState) String() string {
	switch s {
	case MemberJoining:
		return "joining"
	case MemberActive:
		return "active"
	case MemberDraining:
		return "draining"
	case MemberDrained:
		return "drained"
	case MemberLeft:
		return "left"
	default:
		return fmt.Sprintf("MemberState(%d)", int(s))
	}
}

// InFleet reports whether the state still occupies a slot in the
// aggregator's book (everything short of Left).
func (s MemberState) InFleet() bool { return s < MemberLeft }

// Member is one shard's membership entry.
type Member struct {
	ID int
	// Incarnation distinguishes successive lives of the same ID: a
	// re-join under a prior identity gets the tombstone's incarnation
	// plus one, so stale state from the previous life can never be
	// mistaken for the new one.
	Incarnation uint32
	State       MemberState
	Endpoint    ShardEndpoint
	// AdmittedAt is the host time of the (re-)join; the aggregator's
	// warm-up grace is measured from it.
	AdmittedAt time.Duration
}

// memMetrics is the registry's instrument set.
type memMetrics struct {
	joins     *telemetry.Counter
	drains    *telemetry.Counter
	decomms   *telemetry.Counter
	replaces  *telemetry.Counter
	members   *telemetry.Gauge
	epochG    *telemetry.Gauge
	drainingG *telemetry.Gauge
}

// Membership is the fleet's epoch-versioned member registry. All
// methods are safe for concurrent use; the aggregator reconciles
// against it once per poll, admin ops mutate it from other goroutines.
type Membership struct {
	clock   func() time.Duration
	journal *telemetry.Journal
	met     *memMetrics

	mu      sync.Mutex
	epoch   uint64
	members map[int]*Member
}

// NewMembership builds a registry seeded with the given endpoints, all
// Active at incarnation 1, epoch 1. An empty seed is a valid empty
// fleet at epoch 1 (members join later). clock supplies host time for
// admission stamps; required.
func NewMembership(seed []ShardEndpoint, clock func() time.Duration) (*Membership, error) {
	if clock == nil {
		return nil, fmt.Errorf("cluster: membership requires a clock")
	}
	m := &Membership{clock: clock, epoch: 1, members: make(map[int]*Member)}
	for _, ep := range seed {
		if _, dup := m.members[ep.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate member id %d in seed", ep.ID)
		}
		m.members[ep.ID] = &Member{ID: ep.ID, Incarnation: 1, State: MemberActive, Endpoint: ep}
	}
	return m, nil
}

// Instrument registers the cluster_member_* instruments.
func (m *Membership) Instrument(reg *telemetry.Registry) {
	m.met = &memMetrics{
		joins:     reg.Counter("cluster_member_joins_total"),
		drains:    reg.Counter("cluster_member_drains_total"),
		decomms:   reg.Counter("cluster_member_decommissions_total"),
		replaces:  reg.Counter("cluster_member_replaces_total"),
		members:   reg.Gauge("cluster_members"),
		epochG:    reg.Gauge("cluster_membership_epoch"),
		drainingG: reg.Gauge("cluster_members_draining"),
	}
	m.mu.Lock()
	m.gaugesLocked()
	m.mu.Unlock()
}

// Journal routes member transition records to j.
func (m *Membership) Journal(j *telemetry.Journal) { m.journal = j }

func (m *Membership) record(kind, detail string) {
	m.journal.Record(telemetry.Decision{T: m.clock(), Kind: kind, Detail: detail})
}

// gaugesLocked refreshes the membership gauges. Called with mu held.
func (m *Membership) gaugesLocked() {
	if m.met == nil {
		return
	}
	inFleet, draining := 0, 0
	for _, mb := range m.members {
		if mb.State.InFleet() {
			inFleet++
		}
		if mb.State == MemberDraining {
			draining++
		}
	}
	m.met.members.Set(float64(inFleet))
	m.met.drainingG.Set(float64(draining))
	m.met.epochG.Set(float64(m.epoch))
}

// Epoch returns the registry's current epoch. Every mutation advances
// it, so an unchanged epoch means an unchanged membership.
func (m *Membership) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Get returns a copy of one member's entry.
func (m *Membership) Get(id int) (Member, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mb, ok := m.members[id]
	if !ok {
		return Member{}, false
	}
	return *mb, true
}

// Members returns every entry still in the fleet (Joining through
// Drained), sorted by ID. Left tombstones are excluded.
func (m *Membership) Members() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Member, 0, len(m.members))
	for _, mb := range m.members {
		if mb.State.InFleet() {
			out = append(out, *mb)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Join admits a shard. A brand-new ID starts at incarnation 1; a
// re-join over a Left tombstone starts a fresh incarnation, so nothing
// learned about the previous life carries over. Joining an ID that is
// still in the fleet is an error — drain or decommission it first.
func (m *Membership) Join(ep ShardEndpoint) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	inc := uint32(1)
	if prev, ok := m.members[ep.ID]; ok {
		if prev.State.InFleet() {
			return fmt.Errorf("cluster: member %d is already in the fleet (%s)", ep.ID, prev.State)
		}
		inc = prev.Incarnation + 1
	}
	m.members[ep.ID] = &Member{
		ID: ep.ID, Incarnation: inc, State: MemberJoining,
		Endpoint: ep, AdmittedAt: m.clock(),
	}
	m.epoch++
	if m.met != nil {
		m.met.joins.Inc()
	}
	m.gaugesLocked()
	m.record(telemetry.KindMemberJoined,
		fmt.Sprintf("member %d incarnation %d at %s (epoch %d)", ep.ID, inc, ep.Addr, m.epoch))
	return nil
}

// Activate promotes a Joining member to Active — the aggregator calls
// it on the member's first observed heartbeat. A no-op in any other
// state (the record may have been adopted mid-transition).
func (m *Membership) Activate(id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mb, ok := m.members[id]
	if !ok || mb.State != MemberJoining {
		return
	}
	mb.State = MemberActive
	m.epoch++
	m.gaugesLocked()
	m.record(telemetry.KindMemberActivated,
		fmt.Sprintf("member %d incarnation %d heartbeating (epoch %d)", id, mb.Incarnation, m.epoch))
}

// Drain begins a voluntary departure: the member is pinned to its
// floor and its surplus water-fills back to the survivors. Only a
// Joining or Active member can start draining.
func (m *Membership) Drain(id int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	mb, ok := m.members[id]
	if !ok || mb.State == MemberLeft {
		return fmt.Errorf("cluster: member %d is not in the fleet", id)
	}
	if mb.State == MemberDraining || mb.State == MemberDrained {
		return fmt.Errorf("cluster: member %d is already draining (%s)", id, mb.State)
	}
	mb.State = MemberDraining
	m.epoch++
	if m.met != nil {
		m.met.drains.Inc()
	}
	m.gaugesLocked()
	m.record(telemetry.KindMemberDrained,
		fmt.Sprintf("member %d drain requested (epoch %d)", id, m.epoch))
	return nil
}

// CompleteDrain marks a Draining member Drained — the aggregator calls
// it once the member's applied cap has been stepped down to its floor
// and acked. The member's floor stays budgeted until Decommission.
func (m *Membership) CompleteDrain(id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mb, ok := m.members[id]
	if !ok || mb.State != MemberDraining {
		return
	}
	mb.State = MemberDrained
	m.epoch++
	m.gaugesLocked()
	m.record(telemetry.KindMemberDrained,
		fmt.Sprintf("member %d stepped to floor, safe to power off (epoch %d)", id, m.epoch))
}

// Decommission removes a member from the fleet entirely. This is the
// operator's assertion that the node is powered off (or being forced
// out after a crash): only at this point do the member's watts return
// to the pool. The ID becomes a tombstone; re-joining it later starts
// a fresh incarnation.
func (m *Membership) Decommission(id int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	mb, ok := m.members[id]
	if !ok || mb.State == MemberLeft {
		return fmt.Errorf("cluster: member %d is not in the fleet", id)
	}
	mb.State = MemberLeft
	m.epoch++
	if m.met != nil {
		m.met.decomms.Inc()
	}
	m.gaugesLocked()
	m.record(telemetry.KindMemberDecommissioned,
		fmt.Sprintf("member %d incarnation %d removed (epoch %d)", id, mb.Incarnation, m.epoch))
	return nil
}

// Replace atomically decommissions a member and re-admits its ID at a
// new endpoint with a fresh incarnation — the crashed-host replacement
// path, one epoch bump so no intermediate record exists in which the
// ID is absent.
func (m *Membership) Replace(ep ShardEndpoint) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	mb, ok := m.members[ep.ID]
	if !ok || mb.State == MemberLeft {
		return fmt.Errorf("cluster: member %d is not in the fleet", ep.ID)
	}
	inc := mb.Incarnation + 1
	m.members[ep.ID] = &Member{
		ID: ep.ID, Incarnation: inc, State: MemberJoining,
		Endpoint: ep, AdmittedAt: m.clock(),
	}
	m.epoch++
	if m.met != nil {
		m.met.replaces.Inc()
	}
	m.gaugesLocked()
	m.record(telemetry.KindMemberJoined,
		fmt.Sprintf("member %d replaced: incarnation %d at %s (epoch %d)", ep.ID, inc, ep.Addr, m.epoch))
	return nil
}

// Record exports the registry as an epoch-versioned membership record,
// tombstones included — a re-joining ID's incarnation must survive
// replication, or an adopting leader could resurrect a stale life.
func (m *Membership) Record() MembershipRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec := MembershipRecord{Now: m.clock(), Epoch: m.epoch, Members: make([]MemberRecord, 0, len(m.members))}
	for _, mb := range m.members {
		rec.Members = append(rec.Members, MemberRecord{
			ID:          uint16(mb.ID),
			Incarnation: mb.Incarnation,
			State:       mb.State,
			Network:     mb.Endpoint.Network,
			Addr:        mb.Endpoint.Addr,
		})
	}
	sort.Slice(rec.Members, func(i, j int) bool { return rec.Members[i].ID < rec.Members[j].ID })
	return rec
}

// Adopt replaces the registry's whole content with a committed record —
// the promoted leader's hand-off path, mirroring how it adopts the cap
// assignment. The caller decides authority (fence then epoch order,
// ha.go); Adopt itself is unconditional. The local epoch never
// regresses and always moves: a replica that advanced its registry with
// ops that were never committed (demoted before replication) may later
// adopt an older committed epoch, and an epoch that ran backwards could
// collide with a number the reconciler has already seen — same epoch,
// different content — leaving the book stale. Bumping past both
// lineages makes every adoption visible to the reconciler and makes the
// adopting leader re-replicate the record under its own fence. Joining
// members' warm-up grace restarts from now: the adopting replica has no
// idea how long they have been silent, and a false lost-verdict is the
// failure mode the grace exists to prevent.
func (m *Membership) Adopt(rec MembershipRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clock()
	if rec.Epoch > m.epoch {
		m.epoch = rec.Epoch
	}
	m.epoch++
	m.members = make(map[int]*Member, len(rec.Members))
	for _, mr := range rec.Members {
		mb := &Member{
			ID:          int(mr.ID),
			Incarnation: mr.Incarnation,
			State:       mr.State,
			Endpoint:    ShardEndpoint{ID: int(mr.ID), Network: mr.Network, Addr: mr.Addr},
		}
		if mr.State == MemberJoining {
			mb.AdmittedAt = now
		}
		m.members[mb.ID] = mb
	}
	m.gaugesLocked()
	m.record(telemetry.KindMembershipAdopted,
		fmt.Sprintf("committed membership epoch %d adopted: %d members", rec.Epoch, len(rec.Members)))
}
