package cluster

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/rcr"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// HA control plane (docs/cluster.md §HA). N aggregator replicas watch
// the same shard fleet through their own delta subscriptions; exactly
// one — the lease holder — pushes caps. There is no coordination
// service: the shard fleet itself is the quorum. Every fenced cap write
// doubles as a lease renewal, every shard's FenceGuard mirrors its
// lease state into the shard blackboard, and every standby learns that
// state passively through the delta stream it already consumes.
//
// Leadership protocol:
//
//   - The leader renews its lease by writing to every shard each poll
//     (changed caps carry the new bound; unchanged shards get a
//     lease-only write). Renewal on a majority extends the lease one
//     TTL from the poll's start. A leader that cannot renew a majority
//     steps down when its lease runs out; a leader that sees a higher
//     fence — in an ack or in a shard's mirrored meters — steps down
//     immediately and stops writing.
//   - A standby watches the freshest lease expiry the fleet reports.
//     Once host time passes expiry + grace it schedules a candidacy
//     after a deterministic per-replica jitter (so replicas don't
//     stampede), then campaigns: fence = highest-observed + 1, written
//     to every shard. A majority of grants makes it leader; a failed
//     campaign releases whatever minority it won so the real winner
//     need not wait out the TTL.
//   - A promoted standby adopts the fleet's committed assignment — from
//     the campaign acks (every ack reports the shard's applied cap) and
//     the mirrored fencedcap meters — and replays it under its own
//     fence before computing any new partition, so the conservation
//     invariant Σ(applied) ≤ budget holds across the hand-off: the new
//     leader's baseline is what the shards actually hold, not a guess.
//   - With the WriteMem seam, the leader also replicates the fleet's
//     committed membership record under its fence (rcr.MemWrite), and
//     a promoted standby adopts the most authoritative record its
//     campaign acks return — ordered by (fence, epoch), because fences
//     are totally ordered across leaders while epochs are only ordered
//     within one registry's history. A deposed leader's stale
//     membership view therefore can never reintroduce a departed shard
//     and double-spend its watts: its commits carry a dead fence.
//
// Shards enforce the fence (rcr.FenceGuard): a write from a demoted
// leader — lower fence, or equal fence after a takeover — is rejected
// no matter how delayed its delivery, which is what makes split-brain
// windows safe: both replicas may *believe* they lead, but the fleet
// applies caps from at most one.

// HAConfig tunes one replica of the redundant control plane.
type HAConfig struct {
	// ID identifies this replica in fence ownership; required non-zero
	// and unique across replicas.
	ID uint32
	// LeaseTTL is the lease duration requested with every fenced write.
	// Zero selects 6× the poll period.
	LeaseTTL time.Duration
	// Grace is how long past the observed lease expiry a standby waits
	// before scheduling its candidacy — headroom for a renewal that is
	// merely late in the delta stream. Zero selects LeaseTTL/4.
	Grace time.Duration
	// JitterSeed seeds the deterministic election jitter (0..Grace)
	// that separates replicas' candidacies.
	JitterSeed uint64
	// WriteCap performs one fenced cap write against a shard:
	// rcr.WriteCap over the shard's socket in production, the fault
	// injector's gated seam in the soak. Required unless WriteMem is
	// set, in which case every fenced write rides the membership op.
	WriteCap func(shard int, w rcr.CapWrite) (rcr.CapAck, error)
	// WriteMem, when set, routes every fenced write through the
	// membership piggyback op (rcr.WriteMem over "MEM\n"): campaign
	// probes fetch each shard's committed membership record in the ack,
	// and the leader attaches the registry's current record to writes
	// against shards whose acked record is behind. Optional; a nil
	// WriteMem runs the control plane membership-blind, exactly as
	// before.
	WriteMem func(shard int, mw rcr.MemWrite) (rcr.MemAck, error)
}

func (a *Aggregator) leaseTTL() time.Duration {
	if ttl := a.cfg.HA.LeaseTTL; ttl > 0 {
		return ttl
	}
	return 6 * a.cfg.Period
}

func (a *Aggregator) electionGrace() time.Duration {
	if g := a.cfg.HA.Grace; g > 0 {
		return g
	}
	return a.leaseTTL() / 4
}

// electionJitter advances the replica's deterministic jitter stream and
// returns a delay in [0, grace).
func (a *Aggregator) electionJitter() time.Duration {
	a.jitterState = splitmix64ha(a.jitterState)
	grace := a.electionGrace()
	if grace <= 0 {
		return 0
	}
	return time.Duration(a.jitterState % uint64(grace))
}

func splitmix64ha(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// haStep is the HA replica's per-poll leadership step: fold observed
// lease state, then act as leader (renew + push) or standby (watch +
// campaign). Called from Poll with a.mu held, after observe/health.
// Reports whether any cap changed.
func (a *Aggregator) haStep(now time.Duration) bool {
	// Fold the lease state the shards mirror through their streams.
	for _, st := range a.shards {
		if st.obsFence > a.knownFence {
			a.knownFence = st.obsFence
		}
		if st.obsExpiry > a.obsExpiry {
			a.obsExpiry = st.obsExpiry
			if !a.leader {
				// Someone's lease is being renewed: stand down any
				// scheduled candidacy.
				a.candidateAt = 0
			}
		}
	}
	if len(a.shards) == 0 {
		return false
	}
	if !a.leader {
		a.standbyStep(now)
	}
	if a.leader {
		return a.leaderStep(now)
	}
	return false
}

// standbyStep watches the lease and campaigns once it has demonstrably
// lapsed. May promote the replica (a.leader) so the same poll can push.
func (a *Aggregator) standbyStep(now time.Duration) {
	if now <= a.obsExpiry+a.electionGrace() {
		a.candidateAt = 0
		return
	}
	if a.candidateAt == 0 {
		a.candidateAt = now + a.electionJitter()
		return
	}
	if now < a.candidateAt {
		return
	}
	a.elect(now)
}

// writeFenced performs one fenced write against a shard, routing
// through the membership op when the seam is configured. The frame, if
// any, is attached by the caller via mw.
func (a *Aggregator) writeFenced(st *shardState, mw rcr.MemWrite) (rcr.MemAck, error) {
	ha := a.cfg.HA
	if ha.WriteMem != nil {
		mack, err := ha.WriteMem(st.id, mw)
		if err == nil {
			if mack.MemFence > st.memAckFence || (mack.MemFence == st.memAckFence && mack.MemEpoch > st.memAckEpoch) {
				st.memAckFence, st.memAckEpoch = mack.MemFence, mack.MemEpoch
			}
		}
		return mack, err
	}
	ack, err := ha.WriteCap(st.id, mw.Write)
	return rcr.MemAck{Ack: ack}, err
}

// elect campaigns for the fleet lease with a fresh fence. On a majority
// of grants the replica promotes itself, adopts the most authoritative
// committed membership record its grants returned, and schedules a
// replay of the fleet's committed assignment; on a minority it releases
// what it won.
func (a *Aggregator) elect(now time.Duration) {
	ha := a.cfg.HA
	ttl := a.leaseTTL()
	fence := a.knownFence + 1
	if fence <= a.fence {
		fence = a.fence + 1
	}
	// A fresh fence opens a fresh write-sequence stream, and obsoletes
	// any of our old writes still in flight: once this fence lands on a
	// shard, its guard rejects them as stale, so the pending pessimism
	// can be dropped.
	a.seq = 0
	for _, st := range a.shards {
		st.pendingCap, st.pendingSeq = 0, 0
		st.granted = false
	}
	// Baseline adoption starts from the mirrored fencedcap meters; the
	// campaign acks below override with each reachable shard's
	// authoritative value.
	for i, st := range a.shards {
		if st.obsHasCap {
			a.applied[i] = units.Watts(st.obsCap)
		}
	}
	fleet := len(a.shards)
	var granted []int
	var bestFence, bestEpoch uint64
	var bestFrame []byte
	for i, st := range a.shards {
		w := rcr.CapWrite{Fence: fence, Leader: ha.ID, Lease: ttl, Seq: a.nextSeq()}
		mack, err := a.writeFenced(st, rcr.MemWrite{Write: w})
		if err != nil {
			continue
		}
		ack := mack.Ack
		// Every reachable shard's ack carries its guard's committed
		// membership record — grant or refusal alike: the record's
		// authority is its (fence, epoch), not this campaign's outcome.
		if mack.MemEpoch > 0 && (mack.MemFence > bestFence ||
			(mack.MemFence == bestFence && mack.MemEpoch > bestEpoch)) {
			bestFence, bestEpoch, bestFrame = mack.MemFence, mack.MemEpoch, mack.Frame
		}
		if ack.HasApplied {
			a.applied[i] = units.Watts(ack.Applied)
		}
		if ack.Status == rcr.CapApplied {
			granted = append(granted, i)
			st.granted = true
			continue
		}
		// Lost this shard: learn who actually holds it.
		if ack.Fence > a.knownFence {
			a.knownFence = ack.Fence
		}
		if ack.Expiry > a.obsExpiry {
			a.obsExpiry = ack.Expiry
		}
	}
	a.candidateAt = 0
	// Adopt the most authoritative committed membership record the acks
	// returned — (fence, epoch) order — and reconcile the book against
	// it. This runs on *failed* campaigns too: a standby whose static
	// view is the seed fleet may be campaigning over members that have
	// long departed, and can never win a majority of that dead view; the
	// acks it did get teach it the committed fleet, so its next campaign
	// runs over the members that actually exist. A deposed leader's
	// record lost the (fence, epoch) comparison the moment its successor
	// committed anything.
	adoptBest := func() {
		if bestEpoch == 0 {
			return
		}
		var rec MembershipRecord
		if err := DecodeMembership(bestFrame, &rec); err == nil {
			a.members.Adopt(rec)
			if err := a.reconcileLocked(now); err != nil {
				a.journal(telemetry.KindCapRetry, fmt.Sprintf("membership reconcile: %v", err))
			}
		}
	}
	if len(granted) < fleet/2+1 {
		// Minority: release the grants so the eventual winner need not
		// wait out our TTL on those shards, then adopt what the campaign
		// learned before the book is rebuilt under it.
		for _, i := range granted {
			st := a.shards[i]
			_, _ = a.writeFenced(st, rcr.MemWrite{Write: rcr.CapWrite{Fence: fence, Leader: ha.ID, Release: true, Seq: a.nextSeq()}})
		}
		adoptBest()
		return
	}
	// The quorum's grants carry the committed record; adopting before
	// promotion means the first partition this leader computes is over
	// the committed fleet, not this replica's possibly-stale local view.
	adoptBest()
	// A Joining member's inherited cap is its admission floor, whatever
	// its guard reports: a member re-joining under its prior identity
	// carries the committed cap of its previous life on its durable
	// ledger, but those watts were redistributed to the survivors when
	// it departed — the predecessor's conserving assignment covers the
	// joiner only at the floor its partition reserves. Re-committing the
	// residue would double-spend it on top of that redistribution.
	for i, st := range a.shards {
		if st.mstate == MemberJoining && a.applied[i] > a.cfg.Floor {
			st.residual = a.applied[i]
			a.applied[i] = a.cfg.Floor
		}
	}
	// Belt-and-braces: shards that granted above handed over their
	// authoritative caps (frozen from the grant on — a predecessor's
	// writes now bounce), but any not-yet-granted shard's value is a
	// mirrored-meter guess that the claiming phase will re-adopt on
	// grant. Scale the interim baseline back under the budget so no
	// intermediate read of the book ever reports an over-budget whole.
	if sum := float64(Sum(a.applied)); sum > float64(a.cfg.Global) {
		scale := float64(a.cfg.Global) / sum
		for i := range a.applied {
			a.applied[i] = units.Watts(float64(a.applied[i]) * scale)
		}
	}
	a.leader = true
	a.fence = fence
	if fence > a.knownFence {
		a.knownFence = fence
	}
	a.leaseUntil = now + ttl
	a.replay = true
	a.elections++
	if a.met != nil {
		a.met.elections.Inc()
		a.met.isLeader.Set(1)
	}
	a.journal(telemetry.KindLeaderElected,
		fmt.Sprintf("replica %d fence %d: %d/%d grants, adopted %.1f W committed",
			ha.ID, fence, len(granted), fleet, float64(Sum(a.applied))))
}

// demote surrenders leadership. The fence stays where it was — a
// demoted replica never reuses it — and any scheduled candidacy is
// cleared so the standby path re-evaluates from scratch.
func (a *Aggregator) demote(reason string) {
	a.leader = false
	a.replay = false
	a.candidateAt = 0
	a.demotions++
	if a.met != nil {
		a.met.demotions.Inc()
		a.met.isLeader.Set(0)
	}
	a.journal(telemetry.KindLeaderDemoted,
		fmt.Sprintf("replica %d fence %d: %s", a.cfg.HA.ID, a.fence, reason))
}

// leaderStep renews the lease and pushes the assignment: the adopted
// committed assignment first (replay, right after promotion), the
// freshly partitioned one otherwise.
func (a *Aggregator) leaderStep(now time.Duration) bool {
	if a.knownFence > a.fence {
		a.demote(fmt.Sprintf("superseded by fence %d", a.knownFence))
		return false
	}
	if now >= a.leaseUntil {
		a.demote("lease expired unrenewed")
		return false
	}
	var next []units.Watts
	if a.replay {
		// Re-assert what the fleet already holds under our fence before
		// issuing anything new: the promoted standby's first writes must
		// not move any cap, only re-commit the inherited assignment.
		a.nextCaps = append(a.nextCaps[:0], a.applied...)
		next = a.nextCaps
	} else {
		a.nextCaps = Partition(a.cfg.Global, a.reports, a.nextCaps)
		next = a.nextCaps
	}
	return a.pushFenced(next, now)
}

// membershipFrameLocked returns the registry's current record encoded
// as a CLSM frame, re-encoding only when the epoch has moved.
func (a *Aggregator) membershipFrameLocked() ([]byte, uint64) {
	epoch := a.members.Epoch()
	if epoch != a.memFrameEpoch || a.memFrame == nil {
		rec := a.members.Record()
		frame, err := AppendMembership(a.memFrame[:0], &rec)
		if err != nil {
			return nil, 0
		}
		a.memFrame, a.memFrameEpoch = frame, rec.Epoch
	}
	return a.memFrame, a.memFrameEpoch
}

// pushFenced is push over the fenced write path: conservation-safe
// apply order, one bounded retry per transport failure, a lease-only
// renewal for every shard whose cap is unchanged, quorum-counted lease
// renewal, and immediate demotion when any ack reveals a higher fence.
// Transport-failed cap writes are tracked as pending — they may be held
// in flight, not lost — and suppress every increase until an ack proves
// the shard's seq barrier has passed them.
//
// Until every *Active* member's shard has granted this replica's
// fence, all writes stay lease-only (claiming phase). A deposed
// predecessor may still hold live leases on a minority and keep
// writing those shards by its own book, which is individually
// conserving but jointly unbounded against ours; deferring actuation
// until the fleet is exclusively fenced means at most one regime's
// caps are ever in flight, and each grant ack hands over that shard's
// authoritative committed cap, frozen from then on because the
// predecessor's writes bounce.
//
// Only Active and Draining members gate the claim, because only their
// actual caps are unknown-unbounded: Draining means the step-down is
// *in progress* — the member's guard may still hold its full pre-drain
// assignment if the decrease never landed. A Joining member is
// provably at or below its floor *in the book*: no regime raises a
// member before Activate (unhealthy shards water-fill nothing, a
// healthy joiner is activated promptly but never while a replay is
// pending), and its adopted baseline is clamped to the floor because a
// member re-joining under its prior identity carries the committed cap
// of its previous life on its durable ledger — watts the fleet already
// redistributed when it departed. A Drained member was stepped down
// with the ack observed — and can never rise again, because any leader
// stale enough to still think it deserves watts carries a fence older
// than the one that stepped it down, which the guard's durable fence
// ledger rejects. Those two states' guards hold at most Floor, and the
// partitioner's phase 1 reserves at least Floor for every shard in the
// book, so Σ(actual caps) ≤ Σ(next) ≤ global even while such a member
// is unreachable. Without this carve-out a crashed joiner (a member
// whose server is down until an operator decommissions it) would gate
// actuation of the whole fleet indefinitely. Individually, a shard
// that has not granted is never sent a cap, whatever its state.
//
// With the WriteMem seam, each write also carries the registry's
// current membership record to any shard whose acked record is behind,
// so the committed membership is durable on a majority within one
// renewal round of the epoch moving.
func (a *Aggregator) pushFenced(next []units.Watts, now time.Duration) bool {
	ha := a.cfg.HA
	ttl := a.leaseTTL()
	changed := false
	blocked := false // a decrease failed; increases must wait
	for _, st := range a.shards {
		if st.pendingCap > 0 {
			// One of our caps may still be in flight from an earlier
			// poll; until a fresher ack proves the guard's seq barrier
			// has passed it, every increase stays suppressed so that
			// Σ max(applied, pending) keeps to the budget.
			blocked = true
			break
		}
	}
	claiming := false
	for _, st := range a.shards {
		if (st.mstate == MemberActive || st.mstate == MemberDraining) && !st.granted {
			claiming = true
			break
		}
	}
	var memFrame []byte
	var memEpoch uint64
	memCommitted := ^uint64(0)
	if ha.WriteMem != nil {
		memFrame, memEpoch = a.membershipFrameLocked()
		if a.members != nil {
			memCommitted = a.memQuorumEpochLocked()
		}
	}
	renewed := 0
	// Order and pessimism run over the guards' PHYSICAL caps, not the
	// book: a re-joining member's guard still enforces its previous
	// life's cap until a this-life write lands, and its clamped book
	// entry (the floor) would let ApplyOrder raise the survivors before
	// that residue has been stepped down — a real, wattmeter-visible
	// overshoot even though the book never exceeds the budget.
	eff := make([]units.Watts, len(a.applied))
	for i, st := range a.shards {
		eff[i] = a.applied[i]
		if st.residual > eff[i] {
			eff[i] = st.residual
		}
	}
	order := ApplyOrder(eff, next)
	if soakApplyTrace && a.debugTag != "" {
		line := fmt.Sprintf("[%s] PUSH @%v fence=%d replay=%v claiming=%v blocked=%v:", a.debugTag, now, a.fence, a.replay, claiming, blocked)
		for _, i := range order {
			st := a.shards[i]
			line += fmt.Sprintf(" {id=%d inc=%d ms=%d granted=%v landed=%v app=%.1f res=%.1f next=%.1f}",
				st.id, st.inc, st.mstate, st.granted, st.capLanded, float64(a.applied[i]), float64(st.residual), float64(next[i]))
		}
		fmt.Println(line)
	}
	for _, i := range order {
		st := a.shards[i]
		if a.cfg.Clock() >= a.leaseUntil {
			// The lease ran out mid-push: every further write would be a
			// stale-fence hazard. Stop; the expiry check next poll demotes.
			break
		}
		w := rcr.CapWrite{Fence: a.fence, Leader: ha.ID, Lease: ttl}
		decrease := next[i] < eff[i]
		wantCap := a.replay || next[i] != a.applied[i]
		if st.mstate == MemberJoining && !st.capLanded {
			// A joiner is promoted only after a cap write lands on its
			// current incarnation (Poll), so force one even when next
			// equals the adopted baseline: a lease-only ack can set the
			// book to the floor without any write having reached this
			// life's guard, and until one does the guard's durable ledger
			// may still hold a previous life's cap — watts the fleet
			// already redistributed, which a successor must not re-adopt.
			wantCap = true
		}
		if blocked && next[i] > eff[i] {
			wantCap = false // the unacknowledged decrease still holds its watts
		}
		if !st.granted {
			// Never actuate a shard that has not granted this fence. With
			// membership churn the book legitimately holds members whose
			// servers are down — a crashed joiner, a stopped drainer
			// awaiting decommission — and a cap write to one of those can
			// only fail transport and poison the pending-increase
			// pessimism for the whole fleet. Lease-only probes until the
			// shard grants; its first grant hands over the authoritative
			// cap and the next poll actuates it.
			wantCap = false
		} else if claiming && next[i] != a.applied[i] {
			// No cap *changes* until the fleet is exclusively ours. A
			// re-commit of a granted shard's adopted value is exempt: the
			// shard is already fenced to us, the value is its authoritative
			// committed cap, and writing it back moves nothing — it only
			// commits the inherited assignment under the new fence.
			wantCap = false
		} else if wantCap && st.stateEpoch > memCommitted {
			// The registry change that put this member in its current
			// state is not yet durable on a quorum of guards. Writing it a
			// cap now would orphan those watts if this leader died: a
			// successor elected from a quorum that missed the change
			// adopts a record without it (or with its old state) and
			// partitions the full budget over what it can see, while this
			// shard's guard keeps holding what we wrote. Hold the write —
			// the frame rides the next renewals, the quorum acks within a
			// round or two, and the cap follows. A withheld *decrease*
			// must still suppress this poll's increases, exactly as a
			// transport-failed decrease does: the leaver's watts have not
			// actually come back to the pool yet.
			wantCap = false
			if decrease {
				blocked = true
			}
		}
		if wantCap && next[i] > 0 {
			w.HasCap, w.Cap = true, float64(next[i])
		}
		ack, usedSeq, err := a.writeCapRetry(st, w, memEpoch, memFrame)
		if err != nil {
			if a.met != nil {
				a.met.capErrors.Inc()
			}
			if w.HasCap {
				// The write may be held in flight, not lost: remember the
				// largest cap that might still land and the last seq it
				// could ride in on.
				if w.Cap > st.pendingCap {
					st.pendingCap = w.Cap
				}
				st.pendingSeq = usedSeq
			}
			if decrease {
				blocked = true
			}
			continue
		}
		if st.pendingSeq != 0 && st.pendingSeq < usedSeq {
			// This ack proves the guard's seq barrier has moved past every
			// pending write for this shard: none of them can apply now.
			st.pendingCap, st.pendingSeq = 0, 0
		}
		if ack.Status == rcr.CapFenceRejected {
			if ack.Fence > a.knownFence {
				a.knownFence = ack.Fence
			}
			if ack.Fence < a.fence {
				// A hold-out: the shard still honours a predecessor's live
				// lease, so our (higher) fence was refused outright. Not a
				// supersession — keep leading the majority, keep probing;
				// the predecessor cannot renew a quorum, its lease runs
				// out, and the shard grants on a later poll.
				continue
			}
			// Either a successor's higher fence, or our own fence number
			// burned on this shard by a failed rival's released grant —
			// the guard pins a fence to its first holder forever, so an
			// equal-fence rejection can never lapse back to us. Both cases
			// read the same: this fence cannot drive the whole fleet again.
			// Surrender now and re-campaign with a fresh fence rather than
			// leave the shard orphaned until the lease runs out.
			a.demote(fmt.Sprintf("shard %d acked fence %d holder %d (ours %d)",
				st.id, ack.Fence, ack.Holder, a.fence))
			return changed
		}
		st.granted = true // the guard accepted our fence for this shard
		renewed++         // CapApplied and CapApplyFailed both renew the lease
		if ack.Status == rcr.CapApplied && w.HasCap {
			if a.applied[i] != next[i] {
				changed = true
			}
			a.applied[i] = next[i]
			st.capLanded = true
			st.residual = 0 // this life's guard now holds the book value
		} else if ack.HasApplied {
			// Lease-only ack (or refused actuation): adopt the shard's
			// authoritative committed cap. For a Joining member the
			// adoption is clamped to the floor: a re-joining guard
			// reports its previous life's committed cap, and those watts
			// were already redistributed when it departed — adopting them
			// here would make the next replay re-commit a double-spend
			// (see elect).
			v := units.Watts(ack.Applied)
			if st.mstate == MemberJoining && v > a.cfg.Floor {
				st.residual = v
				v = a.cfg.Floor
			}
			a.applied[i] = v
		}
		if ack.Status == rcr.CapApplyFailed && decrease {
			blocked = true
		}
	}
	if renewed >= len(a.shards)/2+1 {
		a.leaseUntil = now + ttl
		// Replay is done only once a poll that was allowed to carry caps
		// (claiming over, at the poll's start, so every write above
		// re-asserted the inherited assignment) renews the quorum clean.
		if a.replay && !blocked && !claiming {
			a.replay = false
		}
	}
	if changed {
		if a.met != nil {
			a.met.repartitions.Inc()
		}
		a.journal(telemetry.KindRepartition,
			fmt.Sprintf("fence %d caps sum %.1f W of %.1f W budget", a.fence, float64(Sum(a.applied)), float64(a.cfg.Global)))
	}
	return changed
}

// memQuorumEpochLocked returns the highest registry epoch that a
// quorum of the current book's guards have durably acked — the
// quorum-th largest of the per-shard acked epochs. Epochs from
// different registry lineages compare soundly because Adopt renumbers
// monotonically above anything it absorbs. Caller holds a.mu.
func (a *Aggregator) memQuorumEpochLocked() uint64 {
	n := len(a.shards)
	if n == 0 {
		return 0
	}
	if cap(a.memEpochScratch) < n {
		a.memEpochScratch = make([]uint64, n)
	}
	es := a.memEpochScratch[:n]
	for i, st := range a.shards {
		es[i] = st.memAckEpoch
	}
	sort.Slice(es, func(i, j int) bool { return es[i] < es[j] })
	return es[n-(n/2+1)]
}

// MembershipDurable reports whether the registry's current epoch is
// acked by a quorum of the fleet's guards — i.e. whether every
// membership change made so far would survive this replica's failure
// and be adopted by any successor elected from a quorum. Admin flows
// (join/drain/decommission) should wait for this before treating an
// operation as complete. Always true without the WriteMem seam, where
// membership is not replicated at all.
func (a *Aggregator) MembershipDurable() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cfg.HA == nil || a.cfg.HA.WriteMem == nil || a.members == nil {
		return true
	}
	return a.memQuorumEpochLocked() >= a.members.Epoch()
}

// nextSeq advances the per-fence write-sequence counter. Every write
// gets its own seq — retries included — so the shard guards can order
// delayed deliveries against fresher writes.
func (a *Aggregator) nextSeq() uint64 {
	a.seq++
	return a.seq
}

// writeCapRetry performs one fenced write with a single bounded
// immediate retry on transport failure (the fenced-path counterpart of
// push's cap_retry). It assigns each attempt a fresh seq and reports
// the last one used, so the caller can track what may still be in
// flight. The membership frame rides along to any shard whose acked
// record is behind the registry's current (fence, epoch).
func (a *Aggregator) writeCapRetry(st *shardState, w rcr.CapWrite, memEpoch uint64, memFrame []byte) (rcr.CapAck, uint64, error) {
	attempt := func() (rcr.CapAck, uint64, error) {
		w.Seq = a.nextSeq()
		mw := rcr.MemWrite{Write: w}
		if memEpoch > 0 && (st.memAckFence < a.fence ||
			(st.memAckFence == a.fence && st.memAckEpoch < memEpoch)) {
			mw.Epoch, mw.Frame = memEpoch, memFrame
		}
		mack, err := a.writeFenced(st, mw)
		return mack.Ack, w.Seq, err
	}
	ack, seq, err := attempt()
	if err == nil {
		return ack, seq, nil
	}
	if a.met != nil {
		a.met.capRetries.Inc()
	}
	a.journal(telemetry.KindCapRetry,
		fmt.Sprintf("shard %d fence %d: %v", st.id, w.Fence, err))
	return attempt()
}
