package cluster

import (
	"fmt"
	"time"

	"repro/internal/rcr"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// HA control plane (docs/cluster.md §HA). N aggregator replicas watch
// the same shard fleet through their own delta subscriptions; exactly
// one — the lease holder — pushes caps. There is no coordination
// service: the shard fleet itself is the quorum. Every fenced cap write
// doubles as a lease renewal, every shard's FenceGuard mirrors its
// lease state into the shard blackboard, and every standby learns that
// state passively through the delta stream it already consumes.
//
// Leadership protocol:
//
//   - The leader renews its lease by writing to every shard each poll
//     (changed caps carry the new bound; unchanged shards get a
//     lease-only write). Renewal on a majority extends the lease one
//     TTL from the poll's start. A leader that cannot renew a majority
//     steps down when its lease runs out; a leader that sees a higher
//     fence — in an ack or in a shard's mirrored meters — steps down
//     immediately and stops writing.
//   - A standby watches the freshest lease expiry the fleet reports.
//     Once host time passes expiry + grace it schedules a candidacy
//     after a deterministic per-replica jitter (so replicas don't
//     stampede), then campaigns: fence = highest-observed + 1, written
//     to every shard. A majority of grants makes it leader; a failed
//     campaign releases whatever minority it won so the real winner
//     need not wait out the TTL.
//   - A promoted standby adopts the fleet's committed assignment — from
//     the campaign acks (every ack reports the shard's applied cap) and
//     the mirrored fencedcap meters — and replays it under its own
//     fence before computing any new partition, so the conservation
//     invariant Σ(applied) ≤ budget holds across the hand-off: the new
//     leader's baseline is what the shards actually hold, not a guess.
//
// Shards enforce the fence (rcr.FenceGuard): a write from a demoted
// leader — lower fence, or equal fence after a takeover — is rejected
// no matter how delayed its delivery, which is what makes split-brain
// windows safe: both replicas may *believe* they lead, but the fleet
// applies caps from at most one.

// HAConfig tunes one replica of the redundant control plane.
type HAConfig struct {
	// ID identifies this replica in fence ownership; required non-zero
	// and unique across replicas.
	ID uint32
	// LeaseTTL is the lease duration requested with every fenced write.
	// Zero selects 6× the poll period.
	LeaseTTL time.Duration
	// Grace is how long past the observed lease expiry a standby waits
	// before scheduling its candidacy — headroom for a renewal that is
	// merely late in the delta stream. Zero selects LeaseTTL/4.
	Grace time.Duration
	// JitterSeed seeds the deterministic election jitter (0..Grace)
	// that separates replicas' candidacies.
	JitterSeed uint64
	// WriteCap performs one fenced cap write against a shard:
	// rcr.WriteCap over the shard's socket in production, the fault
	// injector's gated seam in the soak. Required.
	WriteCap func(shard int, w rcr.CapWrite) (rcr.CapAck, error)
}

func (a *Aggregator) leaseTTL() time.Duration {
	if ttl := a.cfg.HA.LeaseTTL; ttl > 0 {
		return ttl
	}
	return 6 * a.cfg.Period
}

func (a *Aggregator) electionGrace() time.Duration {
	if g := a.cfg.HA.Grace; g > 0 {
		return g
	}
	return a.leaseTTL() / 4
}

// electionJitter advances the replica's deterministic jitter stream and
// returns a delay in [0, grace).
func (a *Aggregator) electionJitter() time.Duration {
	a.jitterState = splitmix64ha(a.jitterState)
	grace := a.electionGrace()
	if grace <= 0 {
		return 0
	}
	return time.Duration(a.jitterState % uint64(grace))
}

func splitmix64ha(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// haStep is the HA replica's per-poll leadership step: fold observed
// lease state, then act as leader (renew + push) or standby (watch +
// campaign). Called from Poll with a.mu held, after observe/health.
// Reports whether any cap changed.
func (a *Aggregator) haStep(now time.Duration) bool {
	// Fold the lease state the shards mirror through their streams.
	for i := range a.shards {
		st := &a.shards[i]
		if st.obsFence > a.knownFence {
			a.knownFence = st.obsFence
		}
		if st.obsExpiry > a.obsExpiry {
			a.obsExpiry = st.obsExpiry
			if !a.leader {
				// Someone's lease is being renewed: stand down any
				// scheduled candidacy.
				a.candidateAt = 0
			}
		}
	}
	if !a.leader {
		a.standbyStep(now)
	}
	if a.leader {
		return a.leaderStep(now)
	}
	return false
}

// standbyStep watches the lease and campaigns once it has demonstrably
// lapsed. May promote the replica (a.leader) so the same poll can push.
func (a *Aggregator) standbyStep(now time.Duration) {
	if now <= a.obsExpiry+a.electionGrace() {
		a.candidateAt = 0
		return
	}
	if a.candidateAt == 0 {
		a.candidateAt = now + a.electionJitter()
		return
	}
	if now < a.candidateAt {
		return
	}
	a.elect(now)
}

// elect campaigns for the fleet lease with a fresh fence. On a majority
// of grants the replica promotes itself and schedules a replay of the
// fleet's committed assignment; on a minority it releases what it won.
func (a *Aggregator) elect(now time.Duration) {
	ha := a.cfg.HA
	ttl := a.leaseTTL()
	fence := a.knownFence + 1
	if fence <= a.fence {
		fence = a.fence + 1
	}
	// A fresh fence opens a fresh write-sequence stream, and obsoletes
	// any of our old writes still in flight: once this fence lands on a
	// shard, its guard rejects them as stale, so the pending pessimism
	// can be dropped.
	a.seq = 0
	for i := range a.pendingCap {
		a.pendingCap[i], a.pendingSeq[i] = 0, 0
		a.granted[i] = false
	}
	// Baseline adoption starts from the mirrored fencedcap meters; the
	// campaign acks below override with each reachable shard's
	// authoritative value.
	for i := range a.shards {
		if a.shards[i].obsHasCap {
			a.applied[i] = units.Watts(a.shards[i].obsCap)
		}
	}
	var granted []int
	for i := range a.shards {
		ack, err := ha.WriteCap(a.cfg.Shards[i].ID, rcr.CapWrite{Fence: fence, Leader: ha.ID, Lease: ttl, Seq: a.nextSeq()})
		if err != nil {
			continue
		}
		if ack.HasApplied {
			a.applied[i] = units.Watts(ack.Applied)
		}
		if ack.Status == rcr.CapApplied {
			granted = append(granted, i)
			a.granted[i] = true
			continue
		}
		// Lost this shard: learn who actually holds it.
		if ack.Fence > a.knownFence {
			a.knownFence = ack.Fence
		}
		if ack.Expiry > a.obsExpiry {
			a.obsExpiry = ack.Expiry
		}
	}
	a.candidateAt = 0
	if len(granted) < len(a.shards)/2+1 {
		// Minority: release the grants so the eventual winner need not
		// wait out our TTL on those shards.
		for _, i := range granted {
			_, _ = ha.WriteCap(a.cfg.Shards[i].ID, rcr.CapWrite{Fence: fence, Leader: ha.ID, Release: true, Seq: a.nextSeq()})
		}
		return
	}
	// Belt-and-braces: shards that granted above handed over their
	// authoritative caps (frozen from the grant on — a predecessor's
	// writes now bounce), but any not-yet-granted shard's value is a
	// mirrored-meter guess that the claiming phase will re-adopt on
	// grant. Scale the interim baseline back under the budget so no
	// intermediate read of the book ever reports an over-budget whole.
	if sum := float64(Sum(a.applied)); sum > float64(a.cfg.Global) {
		scale := float64(a.cfg.Global) / sum
		for i := range a.applied {
			a.applied[i] = units.Watts(float64(a.applied[i]) * scale)
		}
	}
	a.leader = true
	a.fence = fence
	if fence > a.knownFence {
		a.knownFence = fence
	}
	a.leaseUntil = now + ttl
	a.replay = true
	a.elections++
	if a.met != nil {
		a.met.elections.Inc()
		a.met.isLeader.Set(1)
	}
	a.journal(telemetry.KindLeaderElected,
		fmt.Sprintf("replica %d fence %d: %d/%d grants, adopted %.1f W committed",
			ha.ID, fence, len(granted), len(a.shards), float64(Sum(a.applied))))
}

// demote surrenders leadership. The fence stays where it was — a
// demoted replica never reuses it — and any scheduled candidacy is
// cleared so the standby path re-evaluates from scratch.
func (a *Aggregator) demote(reason string) {
	a.leader = false
	a.replay = false
	a.candidateAt = 0
	a.demotions++
	if a.met != nil {
		a.met.demotions.Inc()
		a.met.isLeader.Set(0)
	}
	a.journal(telemetry.KindLeaderDemoted,
		fmt.Sprintf("replica %d fence %d: %s", a.cfg.HA.ID, a.fence, reason))
}

// leaderStep renews the lease and pushes the assignment: the adopted
// committed assignment first (replay, right after promotion), the
// freshly partitioned one otherwise.
func (a *Aggregator) leaderStep(now time.Duration) bool {
	if a.knownFence > a.fence {
		a.demote(fmt.Sprintf("superseded by fence %d", a.knownFence))
		return false
	}
	if now >= a.leaseUntil {
		a.demote("lease expired unrenewed")
		return false
	}
	var next []units.Watts
	if a.replay {
		// Re-assert what the fleet already holds under our fence before
		// issuing anything new: the promoted standby's first writes must
		// not move any cap, only re-commit the inherited assignment.
		a.nextCaps = append(a.nextCaps[:0], a.applied...)
		next = a.nextCaps
	} else {
		a.nextCaps = Partition(a.cfg.Global, a.reports, a.nextCaps)
		next = a.nextCaps
	}
	return a.pushFenced(next, now)
}

// pushFenced is push over the fenced write path: conservation-safe
// apply order, one bounded retry per transport failure, a lease-only
// renewal for every shard whose cap is unchanged, quorum-counted lease
// renewal, and immediate demotion when any ack reveals a higher fence.
// Transport-failed cap writes are tracked as pending — they may be held
// in flight, not lost — and suppress every increase until an ack proves
// the shard's seq barrier has passed them.
//
// Until every shard has granted this replica's fence, all writes stay
// lease-only (claiming phase). A deposed predecessor may still hold
// live leases on a minority and keep writing those shards by its own
// book, which is individually conserving but jointly unbounded against
// ours; deferring actuation until the fleet is exclusively fenced means
// at most one regime's caps are ever in flight, and each grant ack
// hands over that shard's authoritative committed cap, frozen from
// then on because the predecessor's writes bounce.
func (a *Aggregator) pushFenced(next []units.Watts, now time.Duration) bool {
	ha := a.cfg.HA
	ttl := a.leaseTTL()
	changed := false
	blocked := false // a decrease failed; increases must wait
	for i := range a.pendingCap {
		if a.pendingCap[i] > 0 {
			// One of our caps may still be in flight from an earlier
			// poll; until a fresher ack proves the guard's seq barrier
			// has passed it, every increase stays suppressed so that
			// Σ max(applied, pending) keeps to the budget.
			blocked = true
			break
		}
	}
	claiming := false
	for i := range a.granted {
		if !a.granted[i] {
			claiming = true
			break
		}
	}
	renewed := 0
	order := ApplyOrder(a.applied, next)
	for _, i := range order {
		if a.cfg.Clock() >= a.leaseUntil {
			// The lease ran out mid-push: every further write would be a
			// stale-fence hazard. Stop; the expiry check next poll demotes.
			break
		}
		w := rcr.CapWrite{Fence: a.fence, Leader: ha.ID, Lease: ttl}
		decrease := next[i] < a.applied[i]
		wantCap := a.replay || next[i] != a.applied[i]
		if blocked && next[i] > a.applied[i] {
			wantCap = false // the unacknowledged decrease still holds its watts
		}
		if claiming && !(a.granted[i] && next[i] == a.applied[i]) {
			// No cap *changes* until the fleet is exclusively ours. A
			// re-commit of a granted shard's adopted value is exempt: the
			// shard is already fenced to us, the value is its authoritative
			// committed cap, and writing it back moves nothing — it only
			// commits the inherited assignment under the new fence.
			wantCap = false
		}
		if wantCap && next[i] > 0 {
			w.HasCap, w.Cap = true, float64(next[i])
		}
		ack, usedSeq, err := a.writeCapRetry(i, w)
		if err != nil {
			if a.met != nil {
				a.met.capErrors.Inc()
			}
			if w.HasCap {
				// The write may be held in flight, not lost: remember the
				// largest cap that might still land and the last seq it
				// could ride in on.
				if w.Cap > a.pendingCap[i] {
					a.pendingCap[i] = w.Cap
				}
				a.pendingSeq[i] = usedSeq
			}
			if decrease {
				blocked = true
			}
			continue
		}
		if a.pendingSeq[i] != 0 && a.pendingSeq[i] < usedSeq {
			// This ack proves the guard's seq barrier has moved past every
			// pending write for this shard: none of them can apply now.
			a.pendingCap[i], a.pendingSeq[i] = 0, 0
		}
		if ack.Status == rcr.CapFenceRejected {
			if ack.Fence > a.knownFence {
				a.knownFence = ack.Fence
			}
			if ack.Fence < a.fence {
				// A hold-out: the shard still honours a predecessor's live
				// lease, so our (higher) fence was refused outright. Not a
				// supersession — keep leading the majority, keep probing;
				// the predecessor cannot renew a quorum, its lease runs
				// out, and the shard grants on a later poll.
				continue
			}
			// Either a successor's higher fence, or our own fence number
			// burned on this shard by a failed rival's released grant —
			// the guard pins a fence to its first holder forever, so an
			// equal-fence rejection can never lapse back to us. Both cases
			// read the same: this fence cannot drive the whole fleet again.
			// Surrender now and re-campaign with a fresh fence rather than
			// leave the shard orphaned until the lease runs out.
			a.demote(fmt.Sprintf("shard %d acked fence %d holder %d (ours %d)",
				a.cfg.Shards[i].ID, ack.Fence, ack.Holder, a.fence))
			return changed
		}
		a.granted[i] = true // the guard accepted our fence for this shard
		renewed++           // CapApplied and CapApplyFailed both renew the lease
		if ack.Status == rcr.CapApplied && w.HasCap {
			if a.applied[i] != next[i] {
				changed = true
			}
			a.applied[i] = next[i]
		} else if ack.HasApplied {
			// Lease-only ack (or refused actuation): adopt the shard's
			// authoritative committed cap.
			a.applied[i] = units.Watts(ack.Applied)
		}
		if ack.Status == rcr.CapApplyFailed && decrease {
			blocked = true
		}
	}
	if renewed >= len(a.shards)/2+1 {
		a.leaseUntil = now + ttl
		// Replay is done only once a poll that was allowed to carry caps
		// (claiming over, at the poll's start, so every write above
		// re-asserted the inherited assignment) renews the quorum clean.
		if a.replay && !blocked && !claiming {
			a.replay = false
		}
	}
	if changed {
		if a.met != nil {
			a.met.repartitions.Inc()
		}
		a.journal(telemetry.KindRepartition,
			fmt.Sprintf("fence %d caps sum %.1f W of %.1f W budget", a.fence, float64(Sum(a.applied)), float64(a.cfg.Global)))
	}
	return changed
}

// nextSeq advances the per-fence write-sequence counter. Every write
// gets its own seq — retries included — so the shard guards can order
// delayed deliveries against fresher writes.
func (a *Aggregator) nextSeq() uint64 {
	a.seq++
	return a.seq
}

// writeCapRetry performs one fenced write with a single bounded
// immediate retry on transport failure (the fenced-path counterpart of
// push's cap_retry). It assigns each attempt a fresh seq and reports
// the last one used, so the caller can track what may still be in
// flight.
func (a *Aggregator) writeCapRetry(i int, w rcr.CapWrite) (rcr.CapAck, uint64, error) {
	w.Seq = a.nextSeq()
	ack, err := a.cfg.HA.WriteCap(a.cfg.Shards[i].ID, w)
	if err == nil {
		return ack, w.Seq, nil
	}
	if a.met != nil {
		a.met.capRetries.Inc()
	}
	a.journal(telemetry.KindCapRetry,
		fmt.Sprintf("shard %d fence %d: %v", a.cfg.Shards[i].ID, w.Fence, err))
	w.Seq = a.nextSeq()
	ack, err = a.cfg.HA.WriteCap(a.cfg.Shards[i].ID, w)
	return ack, w.Seq, err
}
