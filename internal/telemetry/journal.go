package telemetry

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Level values used in decision records. They mirror the maestro
// classifier (Low / Medium / High); the journal stores them as small
// integers so records round-trip exactly through JSONL.
const (
	LevelLow    int8 = 0
	LevelMedium int8 = 1
	LevelHigh   int8 = 2
)

// Record kinds used in Decision.Kind. The empty string marks a normal
// classification record; the fail-safe kinds trace the daemon's fault
// handling (docs/robustness.md): a sensor fault first seen, fail-safe
// entered (throttle released, classification suspended), and recovery
// back to normal operation.
const (
	KindDecision        = ""
	KindFaultDetected   = "fault_detected"
	KindFailsafeEntered = "failsafe_entered"
	KindRecovered       = "recovered"
)

// Record kinds written by the resilient rcrd client and the crash-safe
// state machinery (internal/resilience, docs/robustness.md §Service
// resilience): every circuit-breaker transition is journaled, as is
// every accepted or rejected state-snapshot restore.
const (
	KindBreakerClosed   = "breaker_closed"
	KindBreakerOpen     = "breaker_open"
	KindBreakerHalfOpen = "breaker_half_open"
	KindStateRestored   = "state_restored"
	KindStateRejected   = "state_rejected"
)

// Record kinds written by the client's push-subscription mode
// (docs/observability.md §Subscription): a lost delta stream and the
// subsequent successful resubscribe.
const (
	KindSubLost    = "sub_lost"
	KindSubResumed = "sub_resumed"
	// KindSubGapResync records a delta-gap episode inside a live stream:
	// the subscriber hit ErrDeltaGap (dropped deltas, usually during a
	// shard restart or queue overflow) and kept reading until the
	// server's full-frame resync arrived. One record per episode, not
	// per gapped frame.
	KindSubGapResync = "sub_gap_resync"
)

// Record kinds written by the cluster aggregator tier
// (internal/cluster, docs/cluster.md): a global-budget re-partition
// actually changing at least one shard cap, a shard going dark or
// coming back, and a shard observed restarting (its heartbeat ran
// backwards — a new incarnation).
const (
	KindRepartition    = "cluster_repartition"
	KindShardLost      = "cluster_shard_lost"
	KindShardRecovered = "cluster_shard_recovered"
	KindShardRestarted = "cluster_shard_restarted"
)

// Record kinds written by the HA control plane (docs/cluster.md §HA): a
// replica winning a lease election, a leader stepping down (lease
// expired, quorum lost, or a higher fence observed), a shard-side fence
// guard refusing a stale cap write, and the aggregator retrying one
// failed SetCap push immediately instead of waiting out a poll period.
const (
	KindLeaderElected = "leader_elected"
	KindLeaderDemoted = "leader_demoted"
	KindFenceRejected = "fence_rejected"
	KindCapRetry      = "cap_retry"
)

// Record kinds written by the fleet membership registry
// (internal/cluster/membership.go, docs/cluster.md §Membership): a
// shard admitted into the fleet, a drain requested and later completed
// (stepped down to its floor, safe to power off), a member removed
// from the fleet entirely, and a committed membership record adopted
// from the fleet by a freshly promoted leader.
const (
	KindMemberJoined         = "member_joined"
	KindMemberActivated      = "member_activated"
	KindMemberDrained        = "member_drained"
	KindMemberDecommissioned = "member_decommissioned"
	KindMembershipAdopted    = "membership_adopted"
)

// KindStateSaveFailed is written by the state Keeper when a checkpoint
// write fails (disk full, fsync error): the previous snapshot survives
// untouched by the atomic-rename contract and the keeper backs off, so
// the failure is journaled rather than fatal. One record per failure
// episode, not per retry.
const KindStateSaveFailed = "state_save_failed"

// Record kinds written by the phase-aware Adaptive maestro policy
// (internal/maestro/adaptive.go, docs/observability.md §Adaptive): the
// change-point detector segmenting the telemetry stream into a new
// workload phase, the per-phase speedup/power model being (re)fitted
// after an exploration pass, and the daemon actuating a different
// operating point (thread limit × DVFS gear) than before.
const (
	KindPhaseDetected         = "phase_detected"
	KindModelRefit            = "model_refit"
	KindOperatingPointChanged = "operating_point_changed"
)

// LevelName returns the human name of a recorded level.
func LevelName(l int8) string {
	switch l {
	case LevelLow:
		return "Low"
	case LevelMedium:
		return "Medium"
	case LevelHigh:
		return "High"
	default:
		return fmt.Sprintf("Level(%d)", l)
	}
}

// Decision is one classification epoch of the throttle daemon: the
// sampled inputs, the thresholds they were classified against, the
// per-axis levels, and the outcome. Slice fields are indexed by socket.
type Decision struct {
	// T is the virtual time of the poll.
	T time.Duration `json:"t_ns"`
	// Power and Conc are the sampled per-socket inputs (Watts,
	// outstanding memory references); Membw is the per-socket memory
	// bandwidth (bytes/s) at the same instant.
	Power []float64 `json:"power"`
	Conc  []float64 `json:"conc"`
	Membw []float64 `json:"membw"`
	// PowerLv / ConcLv are the per-socket classifications (LevelLow,
	// LevelMedium, LevelHigh).
	PowerLv []int8 `json:"power_level"`
	ConcLv  []int8 `json:"conc_level"`
	// Thresholds are the boundaries the inputs were classified against:
	// {low power, high power, low concurrency, high concurrency}.
	Thresholds [4]float64 `json:"thresholds"`
	// Outcome is the decision: "hold", "enable" or "disable".
	Outcome string `json:"outcome"`
	// Engaged is the hysteresis state after the decision (whether the
	// mechanism is applied).
	Engaged bool `json:"engaged"`
	// Limit is the per-shepherd active-worker limit in force.
	Limit int `json:"limit"`
	// Freq is the DVFS gear in force (1 = full clock). Zero on records
	// from writers that predate operating points; treat as 1.
	Freq float64 `json:"freq,omitempty"`
	// Phase is the policy's workload-phase id at record time (0 for
	// static policies, which have no phase model).
	Phase int `json:"phase,omitempty"`
	// Staleness is the age of the oldest input meter at poll time — how
	// out-of-date the data behind this decision was.
	Staleness time.Duration `json:"staleness_ns"`
	// Kind distinguishes record types: KindDecision (empty) for normal
	// classification records, or one of the fail-safe kinds
	// (fault_detected / failsafe_entered / recovered).
	Kind string `json:"kind,omitempty"`
	// Detail carries the fault or recovery reason on fail-safe records
	// ("stale", "missing"); empty on classification records. Values are
	// constant strings so recording stays allocation-free.
	Detail string `json:"detail,omitempty"`
}

// Journal is a bounded ring buffer of Decisions. Record copies the
// caller's slices into storage preallocated at construction, so the
// record path does not allocate for the topology the journal was built
// for. A single writer (the daemon's poll callback) and any number of
// concurrent readers are the intended pattern; all methods are safe for
// concurrent use.
type Journal struct {
	mu      sync.Mutex
	entries []Decision
	next    int
	filled  bool
	sockets int
}

// DefaultJournalCapacity holds ~27 minutes of decisions at the paper's
// 0.1 s daemon period.
const DefaultJournalCapacity = 1 << 14

// NewJournal creates a journal for capacity decisions over a node with
// the given socket count. capacity <= 0 selects DefaultJournalCapacity.
func NewJournal(capacity, sockets int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	if sockets < 1 {
		sockets = 1
	}
	j := &Journal{entries: make([]Decision, capacity), sockets: sockets}
	for i := range j.entries {
		j.entries[i].Power = make([]float64, 0, sockets)
		j.entries[i].Conc = make([]float64, 0, sockets)
		j.entries[i].Membw = make([]float64, 0, sockets)
		j.entries[i].PowerLv = make([]int8, 0, sockets)
		j.entries[i].ConcLv = make([]int8, 0, sockets)
	}
	return j
}

// Record appends one decision, overwriting the oldest when full. The
// slices in d are copied; the caller may reuse them. Nil-safe no-op.
func (j *Journal) Record(d Decision) {
	if j == nil {
		return
	}
	j.mu.Lock()
	slot := &j.entries[j.next]
	// Copy scalars, then splice the slot's preallocated backing arrays
	// back in and copy the slice contents into them.
	power, conc, membw := slot.Power[:0], slot.Conc[:0], slot.Membw[:0]
	plv, clv := slot.PowerLv[:0], slot.ConcLv[:0]
	*slot = d
	slot.Power = append(power, d.Power...)
	slot.Conc = append(conc, d.Conc...)
	slot.Membw = append(membw, d.Membw...)
	slot.PowerLv = append(plv, d.PowerLv...)
	slot.ConcLv = append(clv, d.ConcLv...)
	j.next++
	if j.next == len(j.entries) {
		j.next = 0
		j.filled = true
	}
	j.mu.Unlock()
}

// Len reports how many decisions are currently stored (0 for nil).
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.filled {
		return len(j.entries)
	}
	return j.next
}

// Sockets returns the per-socket width the journal was built for.
func (j *Journal) Sockets() int {
	if j == nil {
		return 0
	}
	return j.sockets
}

// Entries returns a deep copy of the stored decisions, oldest first.
func (j *Journal) Entries() []Decision {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var src []Decision
	if j.filled {
		src = make([]Decision, 0, len(j.entries))
		src = append(src, j.entries[j.next:]...)
		src = append(src, j.entries[:j.next]...)
	} else {
		src = append([]Decision(nil), j.entries[:j.next]...)
	}
	out := make([]Decision, len(src))
	for i, d := range src {
		out[i] = d
		out[i].Power = append([]float64(nil), d.Power...)
		out[i].Conc = append([]float64(nil), d.Conc...)
		out[i].Membw = append([]float64(nil), d.Membw...)
		out[i].PowerLv = append([]int8(nil), d.PowerLv...)
		out[i].ConcLv = append([]int8(nil), d.ConcLv...)
	}
	return out
}

// WriteJSONL writes the journal as one JSON object per line, oldest
// first — the sidecar format ReadJSONL parses back.
func (j *Journal) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, d := range j.Entries() {
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a WriteJSONL stream. Blank lines are skipped.
func ReadJSONL(r io.Reader) ([]Decision, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Decision
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var d Decision
		if err := json.Unmarshal(line, &d); err != nil {
			return nil, fmt.Errorf("telemetry: journal line %d: %w", len(out)+1, err)
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// csvFreq normalizes the legacy zero value (records written before
// operating points existed) to full clock for plotting.
func csvFreq(f float64) float64 {
	if f == 0 {
		return 1
	}
	return f
}

// WriteCSV writes the journal in long form for spreadsheet plotting:
// one row per decision with per-socket columns.
func (j *Journal) WriteCSV(w io.Writer) error {
	entries := j.Entries()
	cw := csv.NewWriter(w)
	header := []string{"t_seconds", "kind", "outcome", "engaged", "limit", "freq", "phase", "staleness_ms"}
	for s := 0; s < j.Sockets(); s++ {
		header = append(header,
			fmt.Sprintf("pkg%d_watts", s),
			fmt.Sprintf("pkg%d_memconc", s),
			fmt.Sprintf("pkg%d_membw", s),
			fmt.Sprintf("pkg%d_power_level", s),
			fmt.Sprintf("pkg%d_conc_level", s))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	at := func(v []float64, i int) float64 {
		if i < len(v) {
			return v[i]
		}
		return 0
	}
	lvAt := func(v []int8, i int) string {
		if i < len(v) {
			return LevelName(v[i])
		}
		return ""
	}
	for _, d := range entries {
		kind := d.Kind
		if kind == KindDecision {
			kind = "decision"
		}
		rec := []string{
			strconv.FormatFloat(d.T.Seconds(), 'f', 6, 64),
			kind,
			d.Outcome,
			strconv.FormatBool(d.Engaged),
			strconv.Itoa(d.Limit),
			strconv.FormatFloat(csvFreq(d.Freq), 'f', 2, 64),
			strconv.Itoa(d.Phase),
			strconv.FormatFloat(float64(d.Staleness)/1e6, 'f', 3, 64),
		}
		for s := 0; s < j.Sockets(); s++ {
			rec = append(rec,
				strconv.FormatFloat(at(d.Power, s), 'f', 3, 64),
				strconv.FormatFloat(at(d.Conc, s), 'f', 3, 64),
				strconv.FormatFloat(at(d.Membw, s), 'f', 0, 64),
				lvAt(d.PowerLv, s),
				lvAt(d.ConcLv, s))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
