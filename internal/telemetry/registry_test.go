package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if c.Name() != "reqs_total" {
		t.Errorf("counter name = %q", c.Name())
	}
	g := r.Gauge("engaged")
	g.Set(1)
	if g.Value() != 1 {
		t.Errorf("gauge = %g, want 1", g.Value())
	}
	g.Add(0.5)
	if g.Value() != 1.5 {
		t.Errorf("gauge after Add = %g, want 1.5", g.Value())
	}
	// Re-registration returns the same instrument.
	if r.Counter("reqs_total") != c {
		t.Error("re-registering a counter returned a new instrument")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", 0.001, 0.01, 0.1)
	for _, v := range []float64{0.0005, 0.001, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.0005+0.001+0.005+0.05+5; got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != "histogram" {
		t.Fatalf("snapshot = %+v", snap)
	}
	// value<=bound bucketing: 0.0005 and 0.001 land in bucket 0; 0.005 in
	// bucket 1; 0.05 in bucket 2; 5 in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i, b := range snap[0].Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, b, want[i], snap[0].Buckets)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", 1)
	c.Inc()
	c.Add(3)
	g.Set(7)
	g.Add(1)
	h.Observe(2)
	if c != nil || g != nil || h != nil {
		t.Error("nil registry handed out non-nil instruments")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments reported non-zero values")
	}
	if c.Name() != "" || r.Len() != 0 || r.Snapshot() != nil {
		t.Error("nil registry not inert")
	}
	var j *Journal
	j.Record(Decision{})
	if j.Len() != 0 || j.Entries() != nil || j.Sockets() != 0 {
		t.Error("nil journal not inert")
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge over a counter name did not panic")
		}
	}()
	r.Gauge("m")
}

func TestSnapshotSortedAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_gauge").Set(3.5)
	r.Histogram("c_hist", 1, 2).Observe(1.5)
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Name != "a_gauge" || snap[1].Name != "b_total" || snap[2].Name != "c_hist" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back []Metric
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[1].Value != 2 {
		t.Errorf("JSON round trip = %+v", back)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("ipc_requests_total").Add(12)
	r.Histogram("tick_seconds", 0.001, 0.01).Observe(0.005)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"ipc_requests_total 12\n",
		`tick_seconds_bucket{le="0.001"} 0`,
		`tick_seconds_bucket{le="0.01"} 1`,
		`tick_seconds_bucket{le="+Inf"} 1`,
		"tick_seconds_count 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, text)
		}
	}
}

// TestMetricRecordAllocs is the zero-allocation gate for the record
// path: counters, gauges and histograms must not allocate once
// registered — the same bar the engine's step path holds
// (TestEngineStepAllocs).
func TestMetricRecordAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1)
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(4.2)
		g.Add(0.1)
		h.Observe(0.002)
		h.Observe(42)
	})
	if allocs != 0 {
		t.Errorf("metric record path allocates: %.1f allocs per run, want 0", allocs)
	}
}

// TestRegistryConcurrent races many writers against snapshot readers;
// run under -race in CI's telemetry job.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("writes_total")
	g := r.Gauge("level")
	h := r.Histogram("lat", 1, 10, 100)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					g.Set(float64(i))
					h.Observe(float64(i * 7 % 120))
				}
			}
		}(i)
	}
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for j := 0; j < 200; j++ {
				_ = r.Snapshot()
				var buf bytes.Buffer
				_ = r.WriteText(&buf)
			}
		}()
	}
	// Concurrent registration of new instruments must also be safe.
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for j := 0; j < 100; j++ {
				r.Counter("extra_total").Inc()
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	if c.Value() == 0 {
		t.Error("writers recorded nothing")
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-5)
	}
}
