package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func decisionAt(i int) Decision {
	return Decision{
		T:          time.Duration(i) * 100 * time.Millisecond,
		Power:      []float64{60 + float64(i), 55},
		Conc:       []float64{30.5, 12.25},
		Membw:      []float64{1.5e10, 0.5e10},
		PowerLv:    []int8{LevelHigh, LevelMedium},
		ConcLv:     []int8{LevelHigh, LevelLow},
		Thresholds: [4]float64{45, 65, 10, 30},
		Outcome:    "enable",
		Engaged:    true,
		Limit:      12,
		Staleness:  7 * time.Millisecond,
	}
}

func TestJournalRoundTripJSONL(t *testing.T) {
	j := NewJournal(16, 2)
	want := make([]Decision, 5)
	for i := range want {
		want[i] = decisionAt(i)
		j.Record(want[i])
	}
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("JSONL round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestJournalRingWraps(t *testing.T) {
	j := NewJournal(4, 2)
	for i := 0; i < 10; i++ {
		j.Record(decisionAt(i))
	}
	if j.Len() != 4 {
		t.Fatalf("Len = %d, want 4", j.Len())
	}
	e := j.Entries()
	if e[0].T != 600*time.Millisecond || e[3].T != 900*time.Millisecond {
		t.Errorf("ring kept wrong window: first %v last %v", e[0].T, e[3].T)
	}
}

func TestJournalEntriesAreCopies(t *testing.T) {
	j := NewJournal(4, 2)
	d := decisionAt(0)
	j.Record(d)
	// Caller reuses its slices: the journal must have copied.
	d.Power[0] = -1
	e := j.Entries()
	if e[0].Power[0] == -1 {
		t.Error("Record aliased the caller's slice")
	}
	// And mutating what Entries returned must not corrupt the ring.
	e[0].Power[0] = -2
	if j.Entries()[0].Power[0] == -2 {
		t.Error("Entries aliased ring storage")
	}
}

func TestJournalWriteCSV(t *testing.T) {
	j := NewJournal(8, 2)
	j.Record(decisionAt(0))
	j.Record(decisionAt(1))
	var buf bytes.Buffer
	if err := j.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "t_seconds,kind,outcome,engaged,limit,freq,phase,staleness_ms,pkg0_watts") {
		t.Errorf("CSV header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "decision") || !strings.Contains(lines[1], "enable") || !strings.Contains(lines[1], "High") {
		t.Errorf("CSV row = %q", lines[1])
	}
}

// TestJournalKindRoundTrip: fail-safe records (fault_detected /
// failsafe_entered / recovered) keep their kind and detail through the
// ring and the JSONL sidecar, and normal decisions omit the fields.
func TestJournalKindRoundTrip(t *testing.T) {
	j := NewJournal(8, 2)
	d := decisionAt(0)
	d.Kind = KindFailsafeEntered
	d.Detail = "stale"
	j.Record(d)
	j.Record(decisionAt(1))
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kind":"failsafe_entered"`) {
		t.Errorf("JSONL missing kind field:\n%s", buf.String())
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Kind != KindFailsafeEntered || got[0].Detail != "stale" {
		t.Errorf("record 0 round-tripped as kind=%q detail=%q", got[0].Kind, got[0].Detail)
	}
	if got[1].Kind != KindDecision || got[1].Detail != "" {
		t.Errorf("decision record gained kind=%q detail=%q", got[1].Kind, got[1].Detail)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"t_ns\":1}\nnot json\n")); err == nil {
		t.Error("ReadJSONL accepted garbage line")
	}
}

// TestJournalRecordAllocs: recording at the journal's native socket
// width must not allocate — the ring slots own their backing arrays.
func TestJournalRecordAllocs(t *testing.T) {
	j := NewJournal(64, 2)
	d := decisionAt(3)
	allocs := testing.AllocsPerRun(200, func() {
		j.Record(d)
	})
	if allocs != 0 {
		t.Errorf("journal record path allocates: %.1f allocs per run, want 0", allocs)
	}
}

// TestJournalConcurrentReaders mirrors TestHistoryConcurrentReaders: one
// writer racing snapshot/export readers, for CI's race-enabled job.
func TestJournalConcurrentReaders(t *testing.T) {
	j := NewJournal(32, 2)
	var readers sync.WaitGroup
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
				j.Record(decisionAt(i))
				i++
			}
		}
	}()
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 100; i++ {
				_ = j.Entries()
				_ = j.Len()
				var buf bytes.Buffer
				_ = j.WriteJSONL(&buf)
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
	if j.Len() == 0 {
		t.Error("writer recorded nothing")
	}
}

func BenchmarkJournalRecord(b *testing.B) {
	j := NewJournal(1024, 2)
	d := decisionAt(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Record(d)
	}
}
