// Package telemetry is the observability layer of the throttle pipeline:
// a metrics registry (counters, gauges, fixed-bucket histograms) whose
// record path performs no allocations and takes no locks — only atomic
// operations on pre-registered instruments — plus a bounded ring-buffer
// decision journal (journal.go) recording every MAESTRO classification
// with its inputs and outcome.
//
// The design follows the repo's zero-allocation engine work: all memory
// is allocated at registration time; Add / Set / Observe are single
// atomic operations (a short CAS loop for float sums) so samplers,
// daemons and scheduler workers can publish from their hot paths without
// perturbing the measurements they take. Related work puts a number on
// why this matters: energy monitoring itself carries measurable overhead
// that must stay well under the effects being measured (the paper's
// daemon bar is <= 0.6%).
//
// Every instrument and the registry itself are nil-safe: a nil *Registry
// hands out nil instruments, and recording on a nil instrument is a
// no-op. Instrumented code therefore needs no "telemetry enabled?"
// branches of its own.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter. Nil-safe no-op.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered name ("" for nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a last-value float64 metric.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores the value. Nil-safe no-op.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds dv to the gauge.
func (g *Gauge) Add(dv float64) {
	if g == nil {
		return
	}
	addFloatBits(&g.bits, dv)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Name returns the registered name ("" for nil).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Histogram is a fixed-boundary cumulative histogram. Boundaries are
// upper bounds (value <= bound lands in that bucket); one implicit +Inf
// bucket catches the rest. The bucket array is fixed at registration, so
// Observe allocates nothing.
type Histogram struct {
	name    string
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value. Nil-safe no-op.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (<= ~16) and the branch
	// predictor does well on skewed latency distributions; a binary
	// search saves nothing at this size.
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	addFloatBits(&h.sumBits, v)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Name returns the registered name ("" for nil).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// addFloatBits atomically adds dv to a float64 stored as bits.
func addFloatBits(bits *atomic.Uint64, dv float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + dv)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Registry holds named instruments. Registration (Counter / Gauge /
// Histogram) takes a mutex and may allocate; the returned instruments
// are lock-free thereafter. A nil *Registry is valid and hands out nil
// instruments, turning all recording into no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter with this name, registering it on first
// use. Registering a name already held by another instrument kind
// panics: metric names are a schema, and a kind clash is a programming
// error best caught at startup.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFreeLocked(name, "counter")
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge with this name, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFreeLocked(name, "gauge")
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram with this name, registering it with
// the given ascending upper bounds on first use. Later calls ignore
// bounds and return the existing instrument.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.checkFreeLocked(name, "histogram")
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending: %v", name, bounds))
		}
	}
	h := &Histogram{
		name:    name,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

func (r *Registry) checkFreeLocked(name, kind string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as counter, requested as %s", name, kind))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as gauge, requested as %s", name, kind))
	}
	if _, ok := r.histograms[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as histogram, requested as %s", name, kind))
	}
}

// Len reports the number of registered instruments (0 for nil).
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.counters) + len(r.gauges) + len(r.histograms)
}

// Metric is one instrument's state in a snapshot.
type Metric struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "counter" | "gauge" | "histogram"
	// Value holds the count for counters, the value for gauges, and the
	// sum of observations for histograms.
	Value   float64   `json:"value"`
	Count   uint64    `json:"count,omitempty"`   // histogram observations
	Bounds  []float64 `json:"bounds,omitempty"`  // histogram upper bounds
	Buckets []uint64  `json:"buckets,omitempty"` // len(Bounds)+1, last is +Inf
}

// Snapshot returns every instrument's current state, name-sorted. It is
// safe to call concurrently with recording; counts are read atomically
// per instrument (no cross-instrument consistency is implied).
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.histograms {
		m := Metric{
			Name:    name,
			Kind:    "histogram",
			Value:   h.Sum(),
			Count:   h.Count(),
			Bounds:  append([]float64(nil), h.bounds...),
			Buckets: make([]uint64, len(h.buckets)),
		}
		for i := range h.buckets {
			m.Buckets[i] = h.buckets[i].Load()
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteText renders the registry in a Prometheus-style text form:
//
//	name value
//	hist_bucket{le="0.001"} 4
//	hist_bucket{le="+Inf"} 9
//	hist_sum 0.0123
//	hist_count 9
func (r *Registry) WriteText(w io.Writer) error {
	for _, m := range r.Snapshot() {
		switch m.Kind {
		case "histogram":
			cum := uint64(0)
			for i, b := range m.Buckets {
				cum += b
				le := "+Inf"
				if i < len(m.Bounds) {
					le = strconv.FormatFloat(m.Bounds[i], 'g', -1, 64)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.Name, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
				m.Name, strconv.FormatFloat(m.Value, 'g', -1, 64), m.Name, m.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %s\n", m.Name, strconv.FormatFloat(m.Value, 'g', -1, 64)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the snapshot as a JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	if snap == nil {
		snap = []Metric{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}
