package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Mean-2.5) > 1e-12 {
		t.Errorf("mean = %g", s.Mean)
	}
	if math.Abs(s.Median-2.5) > 1e-12 {
		t.Errorf("median = %g", s.Median)
	}
	// Sample stddev of {1,2,3,4} is sqrt(5/3).
	if math.Abs(s.Stddev-math.Sqrt(5.0/3)) > 1e-12 {
		t.Errorf("stddev = %g", s.Stddev)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	if got := Summarize([]float64{9, 1, 5}).Median; got != 5 {
		t.Errorf("median = %g, want 5", got)
	}
}

func TestSummarizeSingleAndEmpty(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.Median != 7 || s.Stddev != 0 {
		t.Errorf("single-element summary = %+v", s)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestCV(t *testing.T) {
	s := Summary{Mean: 100, Stddev: 5}
	if got := s.CV(); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("CV = %g", got)
	}
	if got := (Summary{Mean: 0, Stddev: 5}).CV(); got != 0 {
		t.Errorf("CV with zero mean = %g", got)
	}
}

func TestStringIncludesFields(t *testing.T) {
	out := Summarize([]float64{1, 2, 3}).String()
	for _, want := range []string{"n=3", "min=1", "max=3", "median=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 50
		}
		s := Summarize(xs)
		if s.Min > s.Median || s.Median > s.Max {
			return false
		}
		if s.Mean < s.Min || s.Mean > s.Max {
			return false
		}
		return s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
