// Package stats provides the small summary statistics the measurement
// protocol needs: the paper repeats every test ten times, reports the
// lowest execution time, and notes that "modern processors have enough
// internal heterogeneity that execution times often vary by several
// percent run to run" (§II).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of measurements.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	Stddev float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// CV returns the coefficient of variation (stddev/mean), or 0 for a
// non-positive mean.
func (s Summary) CV() float64 {
	if s.Mean <= 0 {
		return 0
	}
	return s.Stddev / s.Mean
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g median=%.4g mean=%.4g max=%.4g sd=%.3g (cv %.2f%%)",
		s.N, s.Min, s.Median, s.Mean, s.Max, s.Stddev, s.CV()*100)
}
