package phase

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The text sample format consumed by DecodeSamples: one sample per
// line, three whitespace-separated floats — power (W), memory bandwidth
// (bytes/s), outstanding memory references. Blank lines and lines
// starting with '#' are skipped. It is the interchange format for
// replaying recorded telemetry through the detector offline
// (`paperbench -phase-replay`), so the decoder must be total: any byte
// stream either decodes or returns an error, never panics and never
// produces non-finite samples.

// Decode limits. A replay file is operator input, not a firehose;
// bounding it keeps a malformed or hostile file from ballooning memory.
const (
	maxSampleLines = 1 << 20 // 1Mi samples ≈ 29 hours at a 100ms poll
	maxLineBytes   = 1 << 10
)

var (
	ErrTooManySamples = errors.New("phase: sample stream exceeds line limit")
	ErrLineTooLong    = errors.New("phase: sample line exceeds length limit")
)

// DecodeSamples parses a text sample stream. Every malformed line is an
// error naming the line number; values must be finite and non-negative
// (power and bandwidth are physical quantities — a negative or NaN
// reading is sensor garbage the caller must not feed the detector).
func DecodeSamples(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 256), maxLineBytes)
	var out []Sample
	line := 0
	for sc.Scan() {
		line++
		if line > maxSampleLines {
			return nil, ErrTooManySamples
		}
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("phase: line %d: want 3 fields (power bw conc), got %d", line, len(fields))
		}
		var vals [3]float64
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("phase: line %d: field %d: %v", line, i+1, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return nil, fmt.Errorf("phase: line %d: field %d: value %v out of range", line, i+1, v)
			}
			vals[i] = v
		}
		out = append(out, Sample{Power: vals[0], Bw: vals[1], Conc: vals[2]})
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, ErrLineTooLong
		}
		return nil, fmt.Errorf("phase: read: %w", err)
	}
	return out, nil
}

// Replay runs a decoded sample stream through a fresh detector and
// returns the indexes (0-based) of the samples on which a change point
// fired. It is the offline counterpart of the live control loop.
func Replay(samples []Sample, cfg Config) []int {
	d := New(cfg)
	var marks []int
	for i, s := range samples {
		if d.Observe(s) {
			marks = append(marks, i)
		}
	}
	return marks
}
