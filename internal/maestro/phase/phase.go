// Package phase segments a stream of node-level telemetry samples into
// workload phases. The adaptive MAESTRO policy (package maestro) feeds
// it one sample per daemon poll — node power, memory bandwidth and
// outstanding-reference concurrency — and treats every reported change
// point as a phase boundary: the per-phase speedup/power model is
// re-seeded and the operating-point search restarted.
//
// Detection is a dual-EWMA scheme: for each signal a fast and a slow
// exponential moving average track the stream, and a change point fires
// when the two diverge by more than a relative threshold for MinRun
// consecutive samples. The slow average is the phase baseline, the fast
// one the current behaviour; sustained divergence means the workload
// moved to a new regime rather than jittering inside the old one. A
// cooldown after each fire keeps one real transition from being
// reported as several.
package phase

import "math"

// Sample is one observation of the node: total power in Watts, total
// memory bandwidth in bytes/s and total outstanding memory references.
type Sample struct {
	Power float64
	Bw    float64
	Conc  float64
}

// Config tunes a Detector. The zero value selects the defaults below.
type Config struct {
	// FastAlpha / SlowAlpha are the EWMA smoothing factors of the fast
	// and slow trackers (0 < alpha <= 1; larger is more reactive).
	// Defaults: 0.5 and 0.08.
	FastAlpha, SlowAlpha float64
	// Threshold is the relative divergence |fast-slow|/max(|slow|,eps)
	// that arms a change point. Default: 0.25.
	Threshold float64
	// MinRun is how many consecutive divergent samples must be seen
	// before a change point fires (debounce against single-sample
	// spikes). Default: 2.
	MinRun int
	// Cooldown is how many samples after a fire the detector stays
	// disarmed, letting the trackers converge on the new phase.
	// Default: 4.
	Cooldown int
	// Warmup is how many samples the detector absorbs before it may
	// fire at all (the first phase is not a "change"). Default: 3.
	Warmup int
}

func (c Config) withDefaults() Config {
	if c.FastAlpha <= 0 || c.FastAlpha > 1 {
		c.FastAlpha = 0.5
	}
	if c.SlowAlpha <= 0 || c.SlowAlpha > 1 {
		c.SlowAlpha = 0.08
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.25
	}
	if c.MinRun <= 0 {
		c.MinRun = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 4
	}
	if c.Warmup <= 0 {
		c.Warmup = 3
	}
	return c
}

// track is one signal's dual-EWMA pair.
type track struct {
	fast, slow float64
}

func (tr *track) observe(v, fa, sa float64, primed bool) {
	if !primed {
		tr.fast, tr.slow = v, v
		return
	}
	tr.fast += fa * (v - tr.fast)
	tr.slow += sa * (v - tr.slow)
}

// divergence is the relative gap between a raw sample and the slow
// baseline, with a per-signal floor so near-zero baselines don't turn
// noise into infinite relative change. Testing the raw sample (not the
// fast tracker) keeps a single spike from smearing across several
// samples through the fast EWMA's decay and defeating MinRun.
func (tr *track) divergence(v, floor float64) float64 {
	base := math.Abs(tr.slow)
	if base < floor {
		base = floor
	}
	return math.Abs(v-tr.slow) / base
}

// Detector is a streaming change-point detector. The zero value is not
// ready; create with New. Observe is not safe for concurrent use — the
// intended caller is a single control loop.
type Detector struct {
	cfg    Config
	power  track
	bw     track
	conc   track
	seen   int
	run    int
	cool   int
	phases int
}

// New returns a Detector with cfg's defaults applied.
func New(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults()}
}

// Config returns the detector configuration with defaults applied.
func (d *Detector) Config() Config { return d.cfg }

// Phases returns how many change points have fired so far.
func (d *Detector) Phases() int { return d.phases }

// Reset clears the trackers (fail-safe entry: whatever the sensors said
// during the outage is not trustworthy history). The phase counter is
// preserved — phases already seen stay seen.
func (d *Detector) Reset() {
	d.power, d.bw, d.conc = track{}, track{}, track{}
	d.seen, d.run, d.cool = 0, 0, 0
}

// Observe feeds one sample and reports whether a change point fired on
// it. Non-finite inputs are ignored (the staleness watchdog upstream is
// the layer that handles sensor garbage; the detector must never let a
// NaN poison its trackers).
func (d *Detector) Observe(s Sample) bool {
	if !finite(s.Power) || !finite(s.Bw) || !finite(s.Conc) {
		return false
	}
	primed := d.seen > 0
	d.power.observe(s.Power, d.cfg.FastAlpha, d.cfg.SlowAlpha, primed)
	d.bw.observe(s.Bw, d.cfg.FastAlpha, d.cfg.SlowAlpha, primed)
	// Concurrency gets its own tracker: its scale (tens of outstanding
	// refs) would vanish inside the bandwidth signal (GB/s).
	d.conc.observe(s.Conc, d.cfg.FastAlpha, d.cfg.SlowAlpha, primed)
	d.seen++
	if d.seen <= d.cfg.Warmup {
		return false
	}
	if d.cool > 0 {
		d.cool--
		d.run = 0
		// While cooling, the baseline follows the fast tracker so the
		// detector re-arms against the new regime, not the old one.
		d.snap()
		return false
	}
	// Floors: 1 W of power, 0.1 GB/s of bandwidth, 1 outstanding ref —
	// below these the signal is idle noise, not a phase.
	if d.power.divergence(s.Power, 1) > d.cfg.Threshold ||
		d.bw.divergence(s.Bw, 1e8) > d.cfg.Threshold ||
		d.conc.divergence(s.Conc, 1) > d.cfg.Threshold {
		d.run++
	} else {
		d.run = 0
	}
	if d.run >= d.cfg.MinRun {
		d.run = 0
		d.cool = d.cfg.Cooldown
		d.phases++
		// Snap the slow trackers onto the new regime so the next
		// divergence is measured against the new phase's baseline.
		d.snap()
		return true
	}
	return false
}

func (d *Detector) snap() {
	d.power.slow = d.power.fast
	d.bw.slow = d.bw.fast
	d.conc.slow = d.conc.fast
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
