package phase

import (
	"math"
	"strings"
	"testing"
)

func feed(d *Detector, n int, s Sample) (fires int) {
	for i := 0; i < n; i++ {
		if d.Observe(s) {
			fires++
		}
	}
	return fires
}

func TestDetectorStablePhaseNeverFires(t *testing.T) {
	d := New(Config{})
	if got := feed(d, 500, Sample{Power: 120, Bw: 30e9, Conc: 25}); got != 0 {
		t.Fatalf("stable stream fired %d change points, want 0", got)
	}
	if d.Phases() != 0 {
		t.Fatalf("Phases() = %d, want 0", d.Phases())
	}
}

func TestDetectorFiresOnRegimeShift(t *testing.T) {
	d := New(Config{})
	feed(d, 50, Sample{Power: 120, Bw: 30e9, Conc: 25})
	if got := feed(d, 20, Sample{Power: 60, Bw: 5e9, Conc: 3}); got != 1 {
		t.Fatalf("regime shift fired %d change points, want exactly 1", got)
	}
	// Settled in the new phase: no further fires.
	if got := feed(d, 200, Sample{Power: 60, Bw: 5e9, Conc: 3}); got != 0 {
		t.Fatalf("post-shift steady state fired %d more, want 0", got)
	}
	if d.Phases() != 1 {
		t.Fatalf("Phases() = %d, want 1", d.Phases())
	}
}

func TestDetectorSingleSpikeDebounced(t *testing.T) {
	d := New(Config{MinRun: 2})
	feed(d, 50, Sample{Power: 120, Bw: 30e9, Conc: 25})
	if d.Observe(Sample{Power: 500, Bw: 90e9, Conc: 80}) {
		t.Fatal("single-sample spike fired a change point")
	}
	if got := feed(d, 100, Sample{Power: 120, Bw: 30e9, Conc: 25}); got != 0 {
		t.Fatalf("return to baseline after one spike fired %d, want 0", got)
	}
}

func TestDetectorIgnoresNonFinite(t *testing.T) {
	d := New(Config{})
	feed(d, 50, Sample{Power: 120, Bw: 30e9, Conc: 25})
	bad := []Sample{
		{Power: math.NaN(), Bw: 30e9, Conc: 25},
		{Power: 120, Bw: math.Inf(1), Conc: 25},
		{Power: 120, Bw: 30e9, Conc: math.Inf(-1)},
	}
	for _, s := range bad {
		if d.Observe(s) {
			t.Fatalf("non-finite sample %+v fired a change point", s)
		}
	}
	// Trackers must be unpoisoned: a later clean shift still detects.
	if got := feed(d, 20, Sample{Power: 60, Bw: 5e9, Conc: 3}); got != 1 {
		t.Fatalf("shift after non-finite garbage fired %d, want 1", got)
	}
}

func TestDetectorResetPreservesPhaseCount(t *testing.T) {
	d := New(Config{})
	feed(d, 50, Sample{Power: 120, Bw: 30e9, Conc: 25})
	feed(d, 20, Sample{Power: 60, Bw: 5e9, Conc: 3})
	if d.Phases() != 1 {
		t.Fatalf("setup: Phases() = %d, want 1", d.Phases())
	}
	d.Reset()
	if d.Phases() != 1 {
		t.Fatalf("Reset cleared the phase counter: %d", d.Phases())
	}
	// After a reset the detector re-warms: the first samples of a very
	// different regime must not fire (no trustworthy baseline to diff
	// against) but a later shift must.
	if got := feed(d, 30, Sample{Power: 200, Bw: 1e9, Conc: 1}); got != 0 {
		t.Fatalf("first regime after Reset fired %d, want 0 (it is the new baseline)", got)
	}
	if got := feed(d, 20, Sample{Power: 100, Bw: 20e9, Conc: 20}); got != 1 {
		t.Fatalf("shift after Reset fired %d, want 1", got)
	}
}

func TestDetectorDefaults(t *testing.T) {
	cfg := New(Config{}).Config()
	if cfg.FastAlpha <= cfg.SlowAlpha {
		t.Fatalf("fast alpha %v must exceed slow alpha %v", cfg.FastAlpha, cfg.SlowAlpha)
	}
	if cfg.Threshold <= 0 || cfg.MinRun <= 0 || cfg.Cooldown <= 0 || cfg.Warmup <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestDecodeSamples(t *testing.T) {
	in := `# power bw conc
120 30e9 25

 60.5	5e9	3
`
	got, err := DecodeSamples(strings.NewReader(in))
	if err != nil {
		t.Fatalf("DecodeSamples: %v", err)
	}
	want := []Sample{{120, 30e9, 25}, {60.5, 5e9, 3}}
	if len(got) != len(want) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestDecodeSamplesRejectsGarbage(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"wrong-arity", "1 2"},
		{"extra-field", "1 2 3 4"},
		{"not-a-number", "1 x 3"},
		{"nan", "NaN 2 3"},
		{"inf", "1 +Inf 3"},
		{"negative", "1 -2 3"},
	}
	for _, c := range cases {
		if _, err := DecodeSamples(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: decoded %q without error", c.name, c.in)
		}
	}
}

func TestDecodeSamplesLineTooLong(t *testing.T) {
	long := strings.Repeat("1", maxLineBytes+10)
	if _, err := DecodeSamples(strings.NewReader(long)); err != ErrLineTooLong {
		t.Fatalf("err = %v, want ErrLineTooLong", err)
	}
}

func TestReplayMarksShift(t *testing.T) {
	samples := make([]Sample, 0, 60)
	for i := 0; i < 40; i++ {
		samples = append(samples, Sample{Power: 120, Bw: 30e9, Conc: 25})
	}
	for i := 0; i < 20; i++ {
		samples = append(samples, Sample{Power: 60, Bw: 5e9, Conc: 3})
	}
	marks := Replay(samples, Config{})
	if len(marks) != 1 {
		t.Fatalf("Replay marked %d change points %v, want 1", len(marks), marks)
	}
	if marks[0] < 40 || marks[0] > 45 {
		t.Fatalf("change point at sample %d, want within a few samples of the shift at 40", marks[0])
	}
}

// FuzzDecodeSamples is the change-point input decoder's totality gate:
// arbitrary bytes must either decode into finite samples or return an
// error — no panics, no NaN/Inf/negative values escaping, and the
// decoded stream must be safe to replay through the detector.
func FuzzDecodeSamples(f *testing.F) {
	f.Add([]byte("120 30e9 25\n60 5e9 3\n"))
	f.Add([]byte("# comment\n\n1.5e2\t3.0e10\t2.5e1\n"))
	f.Add([]byte("NaN 1 2\n"))
	f.Add([]byte("1 2 3 4\n"))
	f.Add([]byte(strings.Repeat("7 7 7\n", 100)))
	f.Fuzz(func(t *testing.T, data []byte) {
		samples, err := DecodeSamples(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		for i, s := range samples {
			for _, v := range [...]float64{s.Power, s.Bw, s.Conc} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("sample %d: non-physical value %v decoded without error", i, v)
				}
			}
		}
		Replay(samples, Config{})
	})
}
