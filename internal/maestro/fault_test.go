package maestro

import (
	"sync"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/qthreads"
	"repro/internal/rcr"
	"repro/internal/resilience/leak"
	"repro/internal/telemetry"
)

// faultStack builds machine + blackboard + runtime with a controllable
// meter feeder instead of a real sampler: a 2 ms ticker publishes fresh
// High/High rows while healthy and goes silent (meters age) otherwise.
// Churn on the runtime keeps virtual time moving fast.
func faultStack(t *testing.T, dcfg Config) (*Daemon, func(bool)) {
	t.Helper()
	mcfg := machine.M620()
	mcfg.Sockets = 1
	mcfg.CoresPerSocket = 2
	mcfg.MaxStep = 500 * time.Microsecond
	mcfg.VirtualTimeLimit = 10 * time.Minute
	m, err := machine.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	bb, err := rcr.NewBlackboard(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	qcfg := qthreads.DefaultConfig()
	qcfg.Workers = 2
	rt, err := qthreads.New(m, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)

	var mu sync.Mutex
	healthy := true
	setHealthy := func(v bool) { mu.Lock(); healthy = v; mu.Unlock() }
	if _, err := m.AddTicker(2*time.Millisecond, func(now time.Duration, _ *machine.Snapshot) {
		mu.Lock()
		ok := healthy
		mu.Unlock()
		if !ok {
			return
		}
		bb.SetSocket(0, rcr.MeterPower, 100, now)             // High (default 65)
		bb.SetSocket(0, rcr.MeterMemConcurrency, 0.9*28, now) // High (0.75 × knee)
		bb.SetSocket(0, rcr.MeterMemBandwidth, 1e9, now)
	}); err != nil {
		t.Fatal(err)
	}

	d, err := Start(rt, bb, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	stopChurn := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopChurn:
				return
			default:
			}
			_ = rt.Run(func(tc *qthreads.TC) {
				tc.ParallelFor(4, 0, func(tc *qthreads.TC, lo, hi int) {
					for i := lo; i < hi; i++ {
						tc.Execute(machine.Work{Ops: 50e3, Bytes: 1e5})
					}
				})
			})
		}
	}()
	t.Cleanup(func() { close(stopChurn); wg.Wait() })
	return d, setHealthy
}

// await polls cond for up to 10 s of host time.
func await(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition never held: %s", what)
}

// TestDaemonFailsafeJournalAndCounters walks one full
// fault→fail-safe→recovery cycle and checks the observable record: the
// journal carries fault_detected, failsafe_entered and recovered events
// in order, and the maestro_* fault counters and gauge track the cycle.
func TestDaemonFailsafeJournalAndCounters(t *testing.T) {
	leak.Check(t)
	reg := telemetry.NewRegistry()
	jnl := telemetry.NewJournal(4096, 1)
	d, setHealthy := faultStack(t, Config{
		Period:           5 * time.Millisecond,
		StalenessHorizon: 10 * time.Millisecond,
		RecoveryPolls:    2,
		Telemetry:        reg,
		Journal:          jnl,
	})

	await(t, "daemon engages on High/High", func() bool { return d.Stats().Activations > 0 })
	setHealthy(false)
	await(t, "watchdog enters fail-safe", d.Failsafe)
	if v := reg.Gauge("maestro_failsafe").Value(); v != 1 {
		t.Errorf("maestro_failsafe gauge = %v during outage, want 1", v)
	}
	setHealthy(true)
	await(t, "daemon recovers", func() bool { return !d.Failsafe() })

	st := d.Stats()
	if st.FaultsSeen == 0 || st.FailsafeEntries != 1 || st.Recoveries != 1 {
		t.Errorf("stats %+v: want faults > 0, exactly one entry and one recovery", st)
	}
	if v := reg.Counter("maestro_fault_detected_total").Value(); v != st.FaultsSeen {
		t.Errorf("fault counter %v != stats %d", v, st.FaultsSeen)
	}
	if v := reg.Counter("maestro_failsafe_entered_total").Value(); v != 1 {
		t.Errorf("failsafe counter = %v, want 1", v)
	}
	if v := reg.Counter("maestro_recovered_total").Value(); v != 1 {
		t.Errorf("recovered counter = %v, want 1", v)
	}
	if v := reg.Gauge("maestro_failsafe").Value(); v != 0 {
		t.Errorf("maestro_failsafe gauge = %v after recovery, want 0", v)
	}

	// Event records appear in causal order, and the entry released the
	// throttle (Engaged false from the failsafe_entered record on).
	var order []string
	for _, e := range jnl.Entries() {
		switch e.Kind {
		case telemetry.KindFaultDetected, telemetry.KindFailsafeEntered, telemetry.KindRecovered:
			order = append(order, e.Kind)
			if e.Kind == telemetry.KindFailsafeEntered && e.Engaged {
				t.Error("failsafe_entered record still shows engaged")
			}
		}
	}
	want := []string{telemetry.KindFaultDetected, telemetry.KindFailsafeEntered, telemetry.KindRecovered}
	if len(order) < 3 {
		t.Fatalf("journal events %v, want at least %v", order, want)
	}
	for i, k := range want {
		if order[i] != k {
			t.Fatalf("journal events %v, want prefix %v", order, want)
		}
	}
}

// TestDaemonCadenceUnderActuationDelay is the regression test for the
// poll-ticker drift fix (ISSUE satellite #2): with every actuation
// delayed by 2.5 polling periods, the daemon's decision cadence must
// stay on the absolute k×Period grid — overlapped polls are missed and
// counted, never shifted. Under relative re-arming (next = now + period)
// each delay would push every subsequent poll off the grid.
func TestDaemonCadenceUnderActuationDelay(t *testing.T) {
	leak.Check(t)
	const period = 10 * time.Millisecond
	reg := telemetry.NewRegistry()
	jnl := telemetry.NewJournal(8192, 1)
	var mu sync.Mutex
	delayed := 0
	d, _ := faultStack(t, Config{
		Period:           period,
		StalenessHorizon: -1, // watchdog off: this test is about cadence
		ActuationHook: func(now time.Duration, engage bool) (time.Duration, bool) {
			mu.Lock()
			delayed++
			mu.Unlock()
			return 25 * time.Millisecond, false
		},
		Telemetry: reg,
		Journal:   jnl,
	})

	// The engage actuation is deferred 2.5 periods: the polls inside the
	// busy window must be missed (counted), not shifted.
	await(t, "first activation", func() bool { return d.Stats().Activations > 0 })
	await(t, "delayed actuation applies", func() bool { return d.rt.Throttled() })
	await(t, "missed polls accumulate", func() bool { return d.Stats().MissedPolls > 0 })
	await(t, "several more polls land", func() bool { return d.Stats().Samples > 40 })

	mu.Lock()
	nDelayed := delayed
	mu.Unlock()
	if nDelayed == 0 {
		t.Fatal("actuation hook never invoked")
	}
	if v := reg.Counter("maestro_actuation_delayed_total").Value(); v == 0 {
		t.Error("maestro_actuation_delayed_total never incremented")
	}
	st := d.Stats()
	if st.MissedPolls == 0 {
		t.Error("no missed polls: the busy window never overlapped the grid")
	}

	// Every journal record — decisions and events alike — must sit
	// exactly on the k×Period grid.
	entries := jnl.Entries()
	if len(entries) == 0 {
		t.Fatal("empty journal")
	}
	for _, e := range entries {
		if e.T%period != 0 {
			t.Fatalf("record at %v is off the %v grid: cadence drifted", e.T, period)
		}
	}
	// And the grid must be contiguous enough: gaps between consecutive
	// decisions are exact multiples of the period (missed polls skip
	// slots, they do not shift them).
	for i := 1; i < len(entries); i++ {
		gap := entries[i].T - entries[i-1].T
		if gap < 0 || gap%period != 0 {
			t.Fatalf("gap %v between records %d and %d is not a whole number of periods", gap, i-1, i)
		}
	}
}

// TestPendingActuationTracksLatestDesired is the regression test for
// grid drift when a policy changes its mind while an actuation is in
// flight (ISSUE satellite: actuation-grid drift). The machine is frozen
// and the poll/fire callbacks are driven by hand, which makes the racy
// interleaving deterministic: a poll lands exactly at the end of the
// busy window, flips the desired state, and only then does the delayed
// actuation fire. The in-flight actuation must carry no payload — the
// fire applies the *latest* desired point — and the flip must neither
// invoke the hook a second time nor re-anchor the busy window off the
// k×Period grid.
func TestPendingActuationTracksLatestDesired(t *testing.T) {
	leak.Check(t)
	const period = 100 * time.Millisecond
	mcfg := machine.M620()
	mcfg.Sockets = 1
	mcfg.CoresPerSocket = 2
	m, err := machine.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	bb, err := rcr.NewBlackboard(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	qcfg := qthreads.DefaultConfig()
	qcfg.Workers = 2
	rt, err := qthreads.New(m, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)

	hooks := 0
	d, err := Start(rt, bb, Config{
		// The daemon's own ticker never fires: the engine is stopped and
		// this test calls poll/firePending directly, single-threaded.
		Period:           time.Hour,
		StalenessHorizon: -1,
		ActuationHook: func(now time.Duration, engage bool) (time.Duration, bool) {
			hooks++
			return 250 * time.Millisecond, false // 2.5 polling periods
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	m.Stop() // freeze virtual time; callbacks below run on this goroutine

	feed := func(now time.Duration, hot bool) {
		power, conc := 30.0, 2.0 // Low/Low
		if hot {
			power, conc = 100, 0.9*28 // High/High
		}
		bb.SetSocket(0, rcr.MeterPower, power, now)
		bb.SetSocket(0, rcr.MeterMemConcurrency, conc, now)
	}

	// Poll 1: High/High → engage decided, actuation deferred 2.5 periods.
	feed(period, true)
	d.poll(period, nil)
	if hooks != 1 {
		t.Fatalf("after engage decision: hook ran %d times, want 1", hooks)
	}
	if d.pendingID < 0 {
		t.Fatal("no pending actuation registered")
	}
	if rt.Throttled() {
		t.Fatal("throttle applied before the deferred actuation fired")
	}
	if want := period + 250*time.Millisecond; d.busyUntil != want {
		t.Fatalf("busyUntil = %v, want %v", d.busyUntil, want)
	}

	// Poll 2 overlaps the busy window: missed, not shifted.
	d.poll(2*period, nil)
	if got := d.Stats().MissedPolls; got != 1 {
		t.Fatalf("MissedPolls = %d, want 1", got)
	}

	// Poll 3 lands exactly when the busy window ends but before the
	// pending actuation fires (a same-deadline tie the engine's heap may
	// order either way). The load has dropped: desired flips to released
	// while the engage actuation is still in flight. The flip must not
	// re-invoke the hook and must not move the busy window.
	tie := period + 250*time.Millisecond
	feed(tie, false)
	d.poll(tie, nil)
	if hooks != 1 {
		t.Fatalf("desired flip while pending re-invoked the hook: %d calls, want 1", hooks)
	}
	if want := period + 250*time.Millisecond; d.busyUntil != want {
		t.Fatalf("desired flip re-anchored busyUntil to %v, want %v", d.busyUntil, want)
	}

	// The deferred actuation now fires: it must apply the *latest*
	// desired point (released), not the engage captured at issue time.
	d.firePending(tie, nil)
	if d.pendingID >= 0 {
		t.Fatal("pending actuation still registered after firing")
	}
	if rt.Throttled() {
		t.Fatal("fire applied the stale engage payload over the newer release decision")
	}

	// The next hot poll re-issues the actuation anchored at its own
	// on-grid timestamp — not at any earlier decision time.
	feed(4*period, true)
	d.poll(4*period, nil)
	if hooks != 2 {
		t.Fatalf("re-engage after fire: hook ran %d times, want 2", hooks)
	}
	if want := 4*period + 250*time.Millisecond; d.busyUntil != want {
		t.Fatalf("re-engage busyUntil = %v, want %v (anchored at the poll, on-grid)", d.busyUntil, want)
	}
	d.firePending(4*period, nil)
	if !rt.Throttled() {
		t.Fatal("re-engage never applied")
	}
	st := d.Stats()
	if st.Activations != 2 || st.Deactivations != 1 {
		t.Fatalf("activations/deactivations = %d/%d, want 2/1", st.Activations, st.Deactivations)
	}
}
