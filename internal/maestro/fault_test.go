package maestro

import (
	"sync"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/qthreads"
	"repro/internal/rcr"
	"repro/internal/resilience/leak"
	"repro/internal/telemetry"
)

// faultStack builds machine + blackboard + runtime with a controllable
// meter feeder instead of a real sampler: a 2 ms ticker publishes fresh
// High/High rows while healthy and goes silent (meters age) otherwise.
// Churn on the runtime keeps virtual time moving fast.
func faultStack(t *testing.T, dcfg Config) (*Daemon, func(bool)) {
	t.Helper()
	mcfg := machine.M620()
	mcfg.Sockets = 1
	mcfg.CoresPerSocket = 2
	mcfg.MaxStep = 500 * time.Microsecond
	mcfg.VirtualTimeLimit = 10 * time.Minute
	m, err := machine.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	bb, err := rcr.NewBlackboard(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	qcfg := qthreads.DefaultConfig()
	qcfg.Workers = 2
	rt, err := qthreads.New(m, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)

	var mu sync.Mutex
	healthy := true
	setHealthy := func(v bool) { mu.Lock(); healthy = v; mu.Unlock() }
	if _, err := m.AddTicker(2*time.Millisecond, func(now time.Duration, _ *machine.Snapshot) {
		mu.Lock()
		ok := healthy
		mu.Unlock()
		if !ok {
			return
		}
		bb.SetSocket(0, rcr.MeterPower, 100, now)             // High (default 65)
		bb.SetSocket(0, rcr.MeterMemConcurrency, 0.9*28, now) // High (0.75 × knee)
		bb.SetSocket(0, rcr.MeterMemBandwidth, 1e9, now)
	}); err != nil {
		t.Fatal(err)
	}

	d, err := Start(rt, bb, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	stopChurn := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopChurn:
				return
			default:
			}
			_ = rt.Run(func(tc *qthreads.TC) {
				tc.ParallelFor(4, 0, func(tc *qthreads.TC, lo, hi int) {
					for i := lo; i < hi; i++ {
						tc.Execute(machine.Work{Ops: 50e3, Bytes: 1e5})
					}
				})
			})
		}
	}()
	t.Cleanup(func() { close(stopChurn); wg.Wait() })
	return d, setHealthy
}

// await polls cond for up to 10 s of host time.
func await(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition never held: %s", what)
}

// TestDaemonFailsafeJournalAndCounters walks one full
// fault→fail-safe→recovery cycle and checks the observable record: the
// journal carries fault_detected, failsafe_entered and recovered events
// in order, and the maestro_* fault counters and gauge track the cycle.
func TestDaemonFailsafeJournalAndCounters(t *testing.T) {
	leak.Check(t)
	reg := telemetry.NewRegistry()
	jnl := telemetry.NewJournal(4096, 1)
	d, setHealthy := faultStack(t, Config{
		Period:           5 * time.Millisecond,
		StalenessHorizon: 10 * time.Millisecond,
		RecoveryPolls:    2,
		Telemetry:        reg,
		Journal:          jnl,
	})

	await(t, "daemon engages on High/High", func() bool { return d.Stats().Activations > 0 })
	setHealthy(false)
	await(t, "watchdog enters fail-safe", d.Failsafe)
	if v := reg.Gauge("maestro_failsafe").Value(); v != 1 {
		t.Errorf("maestro_failsafe gauge = %v during outage, want 1", v)
	}
	setHealthy(true)
	await(t, "daemon recovers", func() bool { return !d.Failsafe() })

	st := d.Stats()
	if st.FaultsSeen == 0 || st.FailsafeEntries != 1 || st.Recoveries != 1 {
		t.Errorf("stats %+v: want faults > 0, exactly one entry and one recovery", st)
	}
	if v := reg.Counter("maestro_fault_detected_total").Value(); v != st.FaultsSeen {
		t.Errorf("fault counter %v != stats %d", v, st.FaultsSeen)
	}
	if v := reg.Counter("maestro_failsafe_entered_total").Value(); v != 1 {
		t.Errorf("failsafe counter = %v, want 1", v)
	}
	if v := reg.Counter("maestro_recovered_total").Value(); v != 1 {
		t.Errorf("recovered counter = %v, want 1", v)
	}
	if v := reg.Gauge("maestro_failsafe").Value(); v != 0 {
		t.Errorf("maestro_failsafe gauge = %v after recovery, want 0", v)
	}

	// Event records appear in causal order, and the entry released the
	// throttle (Engaged false from the failsafe_entered record on).
	var order []string
	for _, e := range jnl.Entries() {
		switch e.Kind {
		case telemetry.KindFaultDetected, telemetry.KindFailsafeEntered, telemetry.KindRecovered:
			order = append(order, e.Kind)
			if e.Kind == telemetry.KindFailsafeEntered && e.Engaged {
				t.Error("failsafe_entered record still shows engaged")
			}
		}
	}
	want := []string{telemetry.KindFaultDetected, telemetry.KindFailsafeEntered, telemetry.KindRecovered}
	if len(order) < 3 {
		t.Fatalf("journal events %v, want at least %v", order, want)
	}
	for i, k := range want {
		if order[i] != k {
			t.Fatalf("journal events %v, want prefix %v", order, want)
		}
	}
}

// TestDaemonCadenceUnderActuationDelay is the regression test for the
// poll-ticker drift fix (ISSUE satellite #2): with every actuation
// delayed by 2.5 polling periods, the daemon's decision cadence must
// stay on the absolute k×Period grid — overlapped polls are missed and
// counted, never shifted. Under relative re-arming (next = now + period)
// each delay would push every subsequent poll off the grid.
func TestDaemonCadenceUnderActuationDelay(t *testing.T) {
	leak.Check(t)
	const period = 10 * time.Millisecond
	reg := telemetry.NewRegistry()
	jnl := telemetry.NewJournal(8192, 1)
	var mu sync.Mutex
	delayed := 0
	d, _ := faultStack(t, Config{
		Period:           period,
		StalenessHorizon: -1, // watchdog off: this test is about cadence
		ActuationHook: func(now time.Duration, engage bool) (time.Duration, bool) {
			mu.Lock()
			delayed++
			mu.Unlock()
			return 25 * time.Millisecond, false
		},
		Telemetry: reg,
		Journal:   jnl,
	})

	// The engage actuation is deferred 2.5 periods: the polls inside the
	// busy window must be missed (counted), not shifted.
	await(t, "first activation", func() bool { return d.Stats().Activations > 0 })
	await(t, "delayed actuation applies", func() bool { return d.rt.Throttled() })
	await(t, "missed polls accumulate", func() bool { return d.Stats().MissedPolls > 0 })
	await(t, "several more polls land", func() bool { return d.Stats().Samples > 40 })

	mu.Lock()
	nDelayed := delayed
	mu.Unlock()
	if nDelayed == 0 {
		t.Fatal("actuation hook never invoked")
	}
	if v := reg.Counter("maestro_actuation_delayed_total").Value(); v == 0 {
		t.Error("maestro_actuation_delayed_total never incremented")
	}
	st := d.Stats()
	if st.MissedPolls == 0 {
		t.Error("no missed polls: the busy window never overlapped the grid")
	}

	// Every journal record — decisions and events alike — must sit
	// exactly on the k×Period grid.
	entries := jnl.Entries()
	if len(entries) == 0 {
		t.Fatal("empty journal")
	}
	for _, e := range entries {
		if e.T%period != 0 {
			t.Fatalf("record at %v is off the %v grid: cadence drifted", e.T, period)
		}
	}
	// And the grid must be contiguous enough: gaps between consecutive
	// decisions are exact multiples of the period (missed polls skip
	// slots, they do not shift them).
	for i := 1; i < len(entries); i++ {
		gap := entries[i].T - entries[i-1].T
		if gap < 0 || gap%period != 0 {
			t.Fatalf("gap %v between records %d and %d is not a whole number of periods", gap, i-1, i)
		}
	}
}
