package maestro

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/machine"
	"repro/internal/qthreads"
	"repro/internal/rcr"
	"repro/internal/units"
)

// PowerCap is a feedback controller that keeps node power under a bound
// by adjusting the concurrency-throttle limit — the paper's §V/§VI
// outlook: "concurrency throttling to match parallelism to available
// power would operate well within a multi-node power clamping
// environment" (cf. Rountree et al., reference [25]). Where the Daemon
// *minimizes energy*, PowerCap *respects a budget*: every period it
// compares sampled node power against the cap and tightens or relaxes
// the per-shepherd active-worker limit one step at a time.
type PowerCap struct {
	rt       *qthreads.Runtime
	bb       *rcr.Blackboard
	capBits  atomic.Uint64 // the bound, as math.Float64bits — SetCap retunes it live
	tickerID int

	limit       int // current per-shepherd limit (engine goroutine only)
	maxLimit    int
	fenceHW     atomic.Uint64 // highest fence token ever accepted by SetCapFenced
	fenceRej    atomic.Uint64
	tightenings atomic.Uint64
	relaxations atomic.Uint64
	overBudget  atomic.Uint64 // samples observed above the cap
	samples     atomic.Uint64
	minLimit    atomic.Int64

	met atomic.Pointer[capMetrics]
}

// DefaultCapPeriod is the controller's adjustment interval. It must be
// long enough for a limit change to show up in the power samples before
// the next decision.
const DefaultCapPeriod = 100 * time.Millisecond

// StartPowerCap launches a controller holding node power at or below cap.
// period zero selects DefaultCapPeriod.
func StartPowerCap(rt *qthreads.Runtime, bb *rcr.Blackboard, cap units.Watts, period time.Duration) (*PowerCap, error) {
	if rt == nil || bb == nil {
		return nil, errors.New("maestro: runtime and blackboard are required")
	}
	if cap <= 0 {
		return nil, fmt.Errorf("maestro: power cap %v must be positive", cap)
	}
	if period <= 0 {
		period = DefaultCapPeriod
	}
	pc := &PowerCap{
		rt:       rt,
		bb:       bb,
		maxLimit: rt.Machine().Config().CoresPerSocket,
	}
	pc.capBits.Store(math.Float64bits(float64(cap)))
	pc.limit = pc.maxLimit
	pc.minLimit.Store(int64(pc.maxLimit))
	id, err := rt.Machine().AddTicker(period, pc.poll)
	if err != nil {
		return nil, err
	}
	pc.tickerID = id
	return pc, nil
}

// capMargin is the relax hysteresis band as a fraction of the cap:
// power must fall this far below the bound before the controller widens
// the throttle again, so it does not oscillate at the boundary.
const capMargin = 0.05

// Cap returns the current bound.
func (pc *PowerCap) Cap() units.Watts {
	return units.Watts(math.Float64frombits(pc.capBits.Load()))
}

// SetCap retunes the bound while the controller runs — the seam a
// cluster-level budget partitioner (internal/cluster) uses to push a
// node's share of a global budget down into the node's own enforcement
// loop. Non-positive caps are rejected. The new bound takes effect on
// the next poll; the controller walks the throttle limit toward it one
// step per period exactly as it responds to load changes.
func (pc *PowerCap) SetCap(cap units.Watts) error {
	if cap <= 0 {
		return fmt.Errorf("maestro: power cap %v must be positive", cap)
	}
	pc.capBits.Store(math.Float64bits(float64(cap)))
	if met := pc.met.Load(); met != nil {
		met.capW.Set(float64(cap))
	}
	return nil
}

// ErrFenceRejected reports a fenced cap write that lost to a higher
// fence already accepted by this controller: the writer was demoted
// between issuing the write and its arrival.
var ErrFenceRejected = errors.New("maestro: cap write fence is stale")

// SetCapFenced is SetCap under a fencing epoch (docs/cluster.md §HA):
// the write is applied only if fence is at least the highest fence this
// controller has ever accepted, so a demoted aggregator's delayed write
// cannot roll the bound back behind its successor's. The high-water
// mark ratchets monotonically and survives any number of SetCap churn —
// the unfenced SetCap remains available for single-aggregator
// deployments and never consults the fence.
func (pc *PowerCap) SetCapFenced(cap units.Watts, fence uint64) error {
	for {
		hw := pc.fenceHW.Load()
		if fence < hw {
			pc.fenceRej.Add(1)
			return ErrFenceRejected
		}
		if pc.fenceHW.CompareAndSwap(hw, fence) {
			break
		}
	}
	return pc.SetCap(cap)
}

// FenceRejects returns how many fenced writes were refused as stale.
func (pc *PowerCap) FenceRejects() uint64 { return pc.fenceRej.Load() }

// CapStats describe the controller's activity.
type CapStats struct {
	Samples     uint64
	Tightenings uint64
	Relaxations uint64
	OverBudget  uint64 // samples above the cap
	MinLimit    int    // tightest per-shepherd limit reached
}

// Stats returns a snapshot of the controller counters.
func (pc *PowerCap) Stats() CapStats {
	return CapStats{
		Samples:     pc.samples.Load(),
		Tightenings: pc.tightenings.Load(),
		Relaxations: pc.relaxations.Load(),
		OverBudget:  pc.overBudget.Load(),
		MinLimit:    int(pc.minLimit.Load()),
	}
}

// Stop halts the controller and releases the throttle.
func (pc *PowerCap) Stop() {
	pc.rt.Machine().RemoveTicker(pc.tickerID)
	pc.rt.SetThrottle(false, pc.maxLimit)
}

// poll runs on the engine goroutine each period.
func (pc *PowerCap) poll(_ time.Duration, _ *machine.Snapshot) {
	pc.samples.Add(1)
	met := pc.met.Load()
	if met != nil {
		met.samples.Inc()
	}
	node := 0.0
	for s := 0; s < pc.bb.Sockets(); s++ {
		m, ok := pc.bb.Socket(s, rcr.MeterPower)
		if !ok {
			if met != nil {
				met.incomplete.Inc()
			}
			return // no data yet
		}
		node += m.Value
	}
	cap := math.Float64frombits(pc.capBits.Load())
	switch {
	case node > cap:
		pc.overBudget.Add(1)
		if met != nil {
			met.overBudget.Inc()
		}
		if pc.limit > 1 {
			pc.limit--
			pc.tightenings.Add(1)
			if met != nil {
				met.tightenings.Inc()
			}
			if int64(pc.limit) < pc.minLimit.Load() {
				pc.minLimit.Store(int64(pc.limit))
			}
		}
		pc.rt.SetThrottle(true, pc.limit)
	case node < cap*(1-capMargin) && pc.limit < pc.maxLimit:
		pc.limit++
		pc.relaxations.Add(1)
		if met != nil {
			met.relaxations.Inc()
		}
		if pc.limit >= pc.maxLimit {
			pc.rt.SetThrottle(false, pc.maxLimit)
		} else {
			pc.rt.SetThrottle(true, pc.limit)
		}
	}
	if met != nil {
		met.limit.Set(float64(pc.limit))
	}
}
