package maestro

import (
	"time"

	"repro/internal/maestro/phase"
	"repro/internal/telemetry"
)

// The Adaptive policy goes beyond the paper's static High/Med/Low gate
// (ROADMAP item 3, after Conoci et al. and Cuttlefish): it segments the
// telemetry stream into workload phases with a change-point detector
// (package phase) and, for each memory-bound phase, hill-climbs a
// per-phase efficiency model over thread count × DVFS gear to find the
// energy-optimal operating point instead of always jumping to the one
// configured ThrottleLimit.
//
// The controller is a three-mode state machine, driven once per daemon
// poll with fresh data only (the daemon's staleness watchdog and
// fail-safe gate every input):
//
//	monitor  — machine released. The static dual condition (any socket
//	           High power AND High concurrency, debounced) is the
//	           engagement gate, so well-scaling apps are never touched
//	           and the ≤0.6% overhead bound holds by construction.
//	explore  — hill-climb. Candidate points are held for a dwell window
//	           of several polls; the window's bandwidth-per-watt
//	           (bytes per joule — minimizing joules per byte minimizes
//	           total energy for a phase with fixed bytes to move) is
//	           compared against the best seen. First the per-shepherd
//	           thread limit descends from the calibrated seed while
//	           efficiency improves by at least the hysteresis margin,
//	           then the DVFS gear descends the same way. The margin and
//	           the dwell are the anti-flap hysteresis: a move must
//	           clearly pay for itself, and no two moves are closer than
//	           one dwell apart.
//	locked   — converged. The point holds until the detector reports a
//	           phase change, the window efficiency drifts off the
//	           fitted model, or the workload goes all-Low (release).
//
// Fail-safe interplay (docs/robustness.md): when the daemon enters
// fail-safe it has already released the machine; Reset discards the
// detector state and any half-finished climb, so recovery re-enters
// through monitor with a clean model rather than resuming a climb fed
// by pre-outage sensors. Phase ids survive resets — they are a
// monotonic journal key, not model state.
type adaptive struct {
	env AdaptiveConfig
	pe  PolicyEnv
	det *phase.Detector
	met *adaptiveMetrics

	mode    adaptiveMode
	want    OperatingPoint // point the controller is asking for
	full    OperatingPoint // released state
	phaseID int

	// Engagement / release debounce (monitor and locked modes).
	hotPolls  int
	coldPolls int

	// Dwell-window accumulators (explore and locked modes).
	dwell    int
	accPower float64
	accBw    float64

	// Hill-climb state.
	stage     exploreStage
	bestEff   float64
	bestPoint OperatingPoint
	probing   OperatingPoint
	seedPt    OperatingPoint // where the limit climb started
	climbUp   bool           // limit axis direction: true=ascend, false=descend
	gearIdx   int
	gearsDone bool // one gear sweep per phase

	// Locked-phase model: the efficiency the climb converged on, the
	// drift debounce toward a refit, and how long the lock has held
	// (the gear sweep waits for a stable lock; see locked).
	lockedEff    float64
	driftDwells  int
	stableDwells int
}

type adaptiveMode int

const (
	modeMonitor adaptiveMode = iota
	modeExplore
	modeLocked
)

type exploreStage int

const (
	stageLimit exploreStage = iota
	stageGear
)

// AdaptiveConfig tunes the Adaptive policy. The zero value selects the
// defaults below; most callers just set Config.Policy = Adaptive.
type AdaptiveConfig struct {
	// Detector tunes the change-point detector (see phase.Config).
	Detector phase.Config
	// EngagePolls is how many consecutive High/High polls engage
	// exploration. Default 1 — the same single-poll trigger as the
	// static dual-condition policy, so the two arms engage on the
	// identical poll and their energy deltas are attributable to the
	// chosen operating point, not to reaction latency.
	EngagePolls int
	// ReleasePolls is how many consecutive all-Low polls release the
	// machine back to full. Default 2.
	ReleasePolls int
	// DwellPolls is the measurement window per candidate operating
	// point, in polls. Default 3 (0.3 s at the paper's period).
	DwellPolls int
	// Margin is the minimum relative efficiency improvement a
	// candidate must show to displace the incumbent — the hill-climb's
	// hysteresis. Default 0.02 (2%).
	Margin float64
	// Gears are the DVFS scales probed (descending) once a phase has
	// held its locked thread limit for GearLagDwells windows and the
	// node is bandwidth-saturated. Default {0.9, 0.8, 0.7, 0.6}.
	Gears []float64
	// GearLagDwells is how many stable locked windows precede the gear
	// sweep. DVFS probes slow every core, so a mispredicted gear costs
	// real time; deferring the sweep means short-lived phases (and
	// short programs) only ever pay for the cheap thread-limit climb.
	// Default 3.
	GearLagDwells int
	// GearBwFrac is the fraction of the machine's aggregate plateau
	// bandwidth a phase must sustain for the gear sweep to run at all:
	// lowering the clock is close to free only when the cores are
	// waiting on memory. Default 0.5.
	GearBwFrac float64
	// RefitDrift is the relative deviation of a locked phase's window
	// efficiency from the fitted value that counts as model drift.
	// Default 0.30.
	RefitDrift float64
	// RefitDwells is how many consecutive drifted windows trigger a
	// refit. Default 2.
	RefitDwells int
	// MinLimit floors the per-shepherd thread limit the climb may
	// reach. Default 1.
	MinLimit int
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.EngagePolls <= 0 {
		c.EngagePolls = 1
	}
	if c.ReleasePolls <= 0 {
		c.ReleasePolls = 2
	}
	if c.DwellPolls <= 0 {
		c.DwellPolls = 3
	}
	if c.Margin <= 0 {
		c.Margin = 0.02
	}
	if len(c.Gears) == 0 {
		c.Gears = []float64{0.9, 0.8, 0.7, 0.6}
	}
	if c.GearLagDwells <= 0 {
		c.GearLagDwells = 3
	}
	if c.GearBwFrac <= 0 {
		c.GearBwFrac = 0.5
	}
	if c.RefitDrift <= 0 {
		c.RefitDrift = 0.30
	}
	if c.RefitDwells <= 0 {
		c.RefitDwells = 2
	}
	if c.MinLimit <= 0 {
		c.MinLimit = 1
	}
	return c
}

// NewAdaptiveDecider returns the factory Config.Decider form of the
// Adaptive policy — what Policy = Adaptive installs implicitly, exposed
// so callers can tune AdaptiveConfig.
func NewAdaptiveDecider(cfg AdaptiveConfig) DeciderFactory {
	return func(env PolicyEnv) (Decider, error) {
		cfg := cfg.withDefaults()
		a := &adaptive{
			env: cfg,
			pe:  env,
			det: phase.New(cfg.Detector),
			met: newAdaptiveMetrics(env.Telemetry),
			full: OperatingPoint{
				Throttled: false,
				Limit:     env.ThrottleLimit,
				FreqScale: 1,
			},
		}
		a.want = a.full
		return a, nil
	}
}

func (a *adaptive) Name() string { return "adaptive" }

// Phase exposes the current phase id to the daemon's decision journal.
func (a *adaptive) Phase() int { return a.phaseID }

// Reset implements the fail-safe contract: drop everything learned
// from recent (now suspect) readings and re-enter through monitor.
func (a *adaptive) Reset(time.Duration) {
	a.det.Reset()
	a.mode = modeMonitor
	a.want = a.full
	a.hotPolls, a.coldPolls = 0, 0
	a.resetWindow()
	a.driftDwells = 0
	if a.met != nil {
		a.met.lockedG.Set(0)
	}
}

func (a *adaptive) resetWindow() {
	a.dwell, a.accPower, a.accBw = 0, 0, 0
}

// Decide runs the controller one poll forward.
func (a *adaptive) Decide(in PolicyInput) OperatingPoint {
	power, bw, conc := totals(in)

	// The detector watches the workload, not the controller: any
	// operating-point move we make changes power and bandwidth too, so
	// the detector is reset whenever we move (see move) and therefore
	// only accumulates history while the point holds still.
	if a.det.Observe(phase.Sample{Power: power, Bw: bw, Conc: conc}) {
		a.onPhaseChange(in)
	}

	switch a.mode {
	case modeMonitor:
		a.monitor(in)
	case modeExplore:
		a.explore(in, power, bw)
	case modeLocked:
		a.locked(in, power, bw)
	}
	return a.want
}

// totals folds the per-socket readings into node totals.
func totals(in PolicyInput) (power, bw, conc float64) {
	for i := range in.Power {
		power += in.Power[i]
	}
	for i := range in.Membw {
		bw += in.Membw[i]
	}
	for i := range in.Conc {
		conc += in.Conc[i]
	}
	return power, bw, conc
}

// hot reports the static engagement condition: some socket classifies
// High on both power and memory concurrency.
func hot(in PolicyInput) bool {
	for i := range in.PowerLv {
		if Level(in.PowerLv[i]) == High && i < len(in.ConcLv) && Level(in.ConcLv[i]) == High {
			return true
		}
	}
	return false
}

// cold reports the static release condition: every socket classifies
// Low on both axes.
func cold(in PolicyInput) bool {
	for i := range in.PowerLv {
		if Level(in.PowerLv[i]) != Low || i >= len(in.ConcLv) || Level(in.ConcLv[i]) != Low {
			return false
		}
	}
	return len(in.PowerLv) > 0
}

// onPhaseChange handles a detector fire: journal it and, if a model
// was fitted or a climb was running, start over for the new phase.
func (a *adaptive) onPhaseChange(in PolicyInput) {
	a.phaseID++
	if a.met != nil {
		a.met.detected.Inc()
		a.met.phaseG.Set(float64(a.phaseID))
	}
	a.journal(in.Now, telemetry.KindPhaseDetected, "change_point", in)
	switch a.mode {
	case modeExplore, modeLocked:
		// The model belongs to the previous phase; refit for this one
		// by restarting the climb from the seed.
		a.startExplore(in, "phase_change")
	}
}

// monitor waits for a sustained High/High signal before spending any
// exploration effort.
func (a *adaptive) monitor(in PolicyInput) {
	if hot(in) {
		a.hotPolls++
	} else {
		a.hotPolls = 0
	}
	if a.hotPolls >= a.env.EngagePolls {
		a.hotPolls = 0
		a.startExplore(in, "engage")
	}
}

// seedLimit derives the climb's starting per-shepherd limit from the
// machine's calibrated memory-concurrency knee: with conc outstanding
// references spread over the active cores of a socket, the limit that
// would put the socket right at its knee is knee / (conc per core).
// The estimate is a starting guess, not a bound — a deeply saturated
// socket reports conc well past the knee and drives the quotient toward
// 1, which would start the climb in starved territory where every dwell
// window stretches wall time. Two guards keep the seed honest: the
// configured ThrottleLimit (the paper's 3/4 rule) caps it from above,
// and half that limit floors it from below, leaving the bidirectional
// climb (see nextCandidate) to cover the rest of the range.
func (a *adaptive) seedLimit(in PolicyInput) int {
	cores := a.pe.Machine.CoresPerSocket
	if cores < 1 {
		cores = 1
	}
	knee := float64(a.pe.Machine.Mem.KneeRefs)
	limit := a.pe.ThrottleLimit
	if knee > 0 && len(in.Conc) > 0 {
		maxConc := 0.0
		for _, c := range in.Conc {
			if c > maxConc {
				maxConc = c
			}
		}
		if perCore := maxConc / float64(cores); perCore > 0 {
			if est := int(knee / perCore); est < limit {
				limit = est
			}
		}
	}
	if floor := (a.pe.ThrottleLimit + 1) / 2; limit < floor {
		limit = floor
	}
	if limit < a.env.MinLimit {
		limit = a.env.MinLimit
	}
	if limit > cores {
		limit = cores
	}
	return limit
}

// startExplore (re)starts the hill-climb from the knee-derived seed.
func (a *adaptive) startExplore(in PolicyInput, why string) {
	a.mode = modeExplore
	a.stage = stageLimit
	// Ascend first: an upward probe is at worst mildly wasteful (it
	// moves the machine toward its unthrottled baseline), while a
	// downward probe into starved territory stretches wall time for the
	// whole dwell window. The climb only turns downward once the first
	// upward step has lost (see explore).
	a.climbUp = true
	a.gearIdx = 0
	a.gearsDone = false
	a.bestEff = 0
	a.driftDwells = 0
	a.bestPoint = OperatingPoint{Throttled: true, Limit: a.seedLimit(in), FreqScale: 1}
	a.seedPt = a.bestPoint
	a.move(in, a.bestPoint, why)
	if a.met != nil {
		a.met.lockedG.Set(0)
	}
}

// move actuates a new candidate point and opens a fresh dwell window.
func (a *adaptive) move(in PolicyInput, pt OperatingPoint, why string) {
	a.probing = pt
	a.want = pt
	a.resetWindow()
	// Our own actuation is about to shift every signal the detector
	// watches; clear its history so it doesn't mistake us for the
	// workload.
	a.det.Reset()
	if a.met != nil {
		a.met.steps.Inc()
	}
	_ = why
}

// windowDone accumulates one poll into the dwell window and reports
// whether the window is complete, yielding its mean efficiency in
// bytes per joule.
func (a *adaptive) windowDone(power, bw float64) (eff float64, done bool) {
	// The first poll after a move still reflects the previous point
	// (the sampler's window closed before the actuation landed), so the
	// window starts accumulating from the second poll of a dwell.
	a.dwell++
	if a.dwell == 1 {
		return 0, false
	}
	a.accPower += power
	a.accBw += bw
	if a.dwell < a.env.DwellPolls+1 {
		return 0, false
	}
	if a.accPower <= 0 {
		return 0, true
	}
	return a.accBw / a.accPower, true
}

// explore advances the hill-climb by one poll.
func (a *adaptive) explore(in PolicyInput, power, bw float64) {
	if cold(in) {
		a.coldPolls++
		if a.coldPolls >= a.env.ReleasePolls {
			a.release(in, "cold")
			return
		}
	} else {
		a.coldPolls = 0
	}
	eff, done := a.windowDone(power, bw)
	if !done {
		return
	}
	improved := eff > a.bestEff*(1+a.env.Margin)
	if a.bestEff == 0 {
		improved = eff > 0
	}
	if improved {
		a.bestEff = eff
		a.bestPoint = a.probing
		if next, ok := a.nextCandidate(); ok {
			a.move(in, next, "climb")
			return
		}
	} else if a.stage == stageLimit && a.climbUp && a.bestPoint == a.seedPt {
		// The knee-derived seed is a guess, not an oracle: when the very
		// first upward step already loses, the optimum may sit below the
		// seed, so the climb turns around instead of locking into the
		// starting guess.
		a.climbUp = false
		if next, ok := a.nextCandidate(); ok {
			a.move(in, next, "climb")
			return
		}
	}
	// The candidate lost (revert to the incumbent) or the axis is
	// exhausted: converge. The gear axis is not chained here — it runs
	// as a deferred second pass once the lock has proven stable (see
	// locked), so a short-lived phase only ever pays for the cheap
	// thread-limit climb.
	a.lock(in)
}

// nextCandidate proposes the next point on the current axis, or reports
// the axis exhausted.
func (a *adaptive) nextCandidate() (OperatingPoint, bool) {
	switch a.stage {
	case stageLimit:
		if a.climbUp {
			if max := a.pe.Machine.CoresPerSocket; a.bestPoint.Limit < max {
				pt := a.bestPoint
				pt.Limit++
				return pt, true
			}
			return OperatingPoint{}, false
		}
		if a.bestPoint.Limit > a.env.MinLimit {
			pt := a.bestPoint
			pt.Limit--
			return pt, true
		}
		return OperatingPoint{}, false
	default:
		for a.gearIdx < len(a.env.Gears) {
			gear := a.env.Gears[a.gearIdx]
			a.gearIdx++
			if gear > 0 && gear < a.bestPoint.FreqScale {
				pt := a.bestPoint
				pt.FreqScale = gear
				return pt, true
			}
		}
		return OperatingPoint{}, false
	}
}

// lock converges on the best point found and fits the phase model.
func (a *adaptive) lock(in PolicyInput) {
	a.mode = modeLocked
	a.lockedEff = a.bestEff
	a.driftDwells = 0
	a.stableDwells = 0
	if a.want != a.bestPoint {
		a.move(in, a.bestPoint, "converged")
	} else {
		a.resetWindow()
	}
	if a.met != nil {
		a.met.refits.Inc()
		a.met.lockedG.Set(1)
	}
	a.journal(in.Now, telemetry.KindModelRefit, "converged", in)
}

// locked holds the fitted point, watching for release, drift and phase
// changes (the detector handles the latter via onPhaseChange).
func (a *adaptive) locked(in PolicyInput, power, bw float64) {
	if cold(in) {
		a.coldPolls++
		if a.coldPolls >= a.env.ReleasePolls {
			a.release(in, "cold")
			return
		}
	} else {
		a.coldPolls = 0
	}
	eff, done := a.windowDone(power, bw)
	if !done {
		return
	}
	windowBw := a.accBw / float64(a.env.DwellPolls)
	a.resetWindow()
	if a.lockedEff <= 0 {
		return
	}
	drift := eff/a.lockedEff - 1
	if drift < 0 {
		drift = -drift
	}
	if drift > a.env.RefitDrift {
		a.driftDwells++
		a.stableDwells = 0
		if a.driftDwells >= a.env.RefitDwells {
			// The phase changed shape under the model (or the detector
			// missed a transition): refit.
			a.startExplore(in, "drift")
			a.journal(in.Now, telemetry.KindModelRefit, "drift", in)
		}
		return
	}
	a.driftDwells = 0
	a.stableDwells++
	// Deferred gear sweep: once the thread-limit lock has proven
	// stable and the phase is genuinely bandwidth-bound, probe DVFS
	// gears on top of it. Long phases amortize the probe; short ones
	// end before reaching here and never pay for it.
	if !a.gearsDone && a.stableDwells >= a.env.GearLagDwells && a.bandwidthSaturated(windowBw) {
		a.gearsDone = true
		a.mode = modeExplore
		a.stage = stageGear
		a.gearIdx = 0
		a.bestEff = eff // measure gears against the current lock, freshly
		if next, ok := a.nextCandidate(); ok {
			a.move(in, next, "gear_sweep")
			return
		}
		a.mode = modeLocked
	}
}

// bandwidthSaturated reports whether the node moved at least GearBwFrac
// of its aggregate plateau bandwidth over the last window — the regime
// where lowering the clock is nearly free.
func (a *adaptive) bandwidthSaturated(windowBw float64) bool {
	capacity := float64(a.pe.Machine.Mem.BandwidthPerSocket) * float64(a.pe.Machine.Sockets)
	return capacity > 0 && windowBw >= a.env.GearBwFrac*capacity
}

// release returns the machine to full speed and re-arms the monitor.
func (a *adaptive) release(in PolicyInput, why string) {
	a.mode = modeMonitor
	a.hotPolls, a.coldPolls = 0, 0
	a.move(in, a.full, why)
	if a.met != nil {
		a.met.lockedG.Set(0)
	}
}

// journal emits one phase-lifecycle record through the daemon's sink.
func (a *adaptive) journal(now time.Duration, kind, detail string, in PolicyInput) {
	if a.pe.Journal == nil {
		return
	}
	a.pe.Journal.Record(telemetry.Decision{
		T:         now,
		Kind:      kind,
		Detail:    detail,
		Engaged:   a.want != a.full,
		Limit:     a.want.Limit,
		Freq:      a.want.FreqScale,
		Phase:     a.phaseID,
		Staleness: in.Staleness,
	})
}
