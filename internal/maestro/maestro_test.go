package maestro

import (
	"math"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/qthreads"
	"repro/internal/rapl"
	"repro/internal/rcr"
	"repro/internal/resilience/leak"
	"repro/internal/units"
)

func TestClassify(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name      string
		v         float64
		low, high float64
		want      Level
	}{
		{"well below", 10, 25, 75, Low},
		{"at low boundary", 25, 25, 75, Low},
		{"just above low", 26, 25, 75, Medium},
		{"mid band", 50, 25, 75, Medium},
		{"just below high", 74, 25, 75, Medium},
		{"at high boundary", 75, 25, 75, High},
		{"well above", 100, 25, 75, High},
		// Degenerate low == high: the boundary value belongs to Low —
		// ties fail toward releasing the throttle, not holding it.
		{"degenerate at bound", 50, 50, 50, Low},
		{"degenerate below", 49, 50, 50, Low},
		{"degenerate above", 51, 50, 50, High},
		// Inverted thresholds (low > high) slip past a missing Validate
		// call; the overlap region must fail toward Low, never High.
		{"inverted mid", 50, 75, 25, Low},
		{"inverted low side", 10, 75, 25, Low},
		{"inverted high side", 80, 75, 25, High},
		// NaN compares false with everything: it must land in the inert
		// Medium band and never classify High (which could engage the
		// throttle off a poisoned sample).
		{"NaN value", nan, 25, 75, Medium},
		{"NaN value degenerate", nan, 50, 50, Medium},
		{"NaN low bound", 50, nan, 75, Medium},
		{"NaN high bound", 50, 25, nan, Medium},
		{"NaN both bounds", 50, nan, nan, Medium},
	}
	for _, c := range cases {
		if got := Classify(c.v, c.low, c.high); got != c.want {
			t.Errorf("%s: Classify(%g, %g, %g) = %v, want %v", c.name, c.v, c.low, c.high, got, c.want)
		}
	}
}

func TestLevelDecisionStrings(t *testing.T) {
	if Low.String() != "Low" || Medium.String() != "Medium" || High.String() != "High" {
		t.Error("level names wrong")
	}
	if Hold.String() != "Hold" || Enable.String() != "Enable" || Disable.String() != "Disable" {
		t.Error("decision names wrong")
	}
	if Level(9).String() == "" || Decision(9).String() == "" {
		t.Error("unknown values need a representation")
	}
}

func TestDefaultThresholds(t *testing.T) {
	th := DefaultThresholds(machine.M620().Mem)
	if th.HighPower != 65 || th.LowPower != 45 {
		t.Errorf("power thresholds = %v/%v, want 65/45 (paper's 75/50 rescaled to our power model)", th.HighPower, th.LowPower)
	}
	knee := float64(machine.M620().Mem.KneeRefs)
	if th.HighConcurrency != 0.75*knee || th.LowConcurrency != 0.25*knee {
		t.Errorf("concurrency thresholds = %g/%g, want 75%%/25%% of knee", th.HighConcurrency, th.LowConcurrency)
	}
	if err := th.Validate(); err != nil {
		t.Errorf("default thresholds invalid: %v", err)
	}
}

func TestThresholdsValidate(t *testing.T) {
	nan := math.NaN()
	bad := []Thresholds{
		{HighPower: 50, LowPower: 75, HighConcurrency: 10, LowConcurrency: 1},
		{HighPower: 75, LowPower: 0, HighConcurrency: 10, LowConcurrency: 1},
		{HighPower: 75, LowPower: 50, HighConcurrency: 1, LowConcurrency: 10},
		{HighPower: 75, LowPower: 50, HighConcurrency: 5, LowConcurrency: -1},
		// NaN bounds would make every Classify comparison false and
		// silently disable the daemon; Validate must refuse them.
		{HighPower: units.Watts(nan), LowPower: 50, HighConcurrency: 10, LowConcurrency: 1},
		{HighPower: 75, LowPower: units.Watts(nan), HighConcurrency: 10, LowConcurrency: 1},
		{HighPower: 75, LowPower: 50, HighConcurrency: nan, LowConcurrency: 1},
		{HighPower: 75, LowPower: 50, HighConcurrency: 10, LowConcurrency: nan},
	}
	for i, th := range bad {
		if err := th.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, th)
		}
	}
}

func TestDecideDualCondition(t *testing.T) {
	th := Thresholds{HighPower: 75, LowPower: 50, HighConcurrency: 21, LowConcurrency: 7}
	cases := []struct {
		name  string
		power []units.Watts
		conc  []float64
		want  Decision
	}{
		{"both high one socket", []units.Watts{80, 30}, []float64{25, 1}, Enable},
		{"both high other socket", []units.Watts{30, 80}, []float64{1, 25}, Enable},
		{"power high only", []units.Watts{80, 80}, []float64{10, 10}, Hold},
		{"conc high only", []units.Watts{60, 60}, []float64{25, 25}, Hold},
		{"high power low conc", []units.Watts{80, 80}, []float64{1, 1}, Hold},
		{"all low", []units.Watts{30, 40}, []float64{2, 3}, Disable},
		{"medium band holds", []units.Watts{60, 40}, []float64{3, 3}, Hold},
		{"one low one medium", []units.Watts{30, 60}, []float64{2, 2}, Hold},
		{"empty", nil, nil, Hold},
		{"mismatched", []units.Watts{80}, []float64{25, 25}, Hold},
	}
	for _, c := range cases {
		if got := th.Decide(c.power, c.conc); got != c.want {
			t.Errorf("%s: Decide = %v, want %v", c.name, got, c.want)
		}
	}
}

// stackOn builds sampler + blackboard + runtime on an existing machine.
func stackOn(t *testing.T, m *machine.Machine, workers int) (*rcr.Blackboard, *qthreads.Runtime) {
	t.Helper()
	mcfg := m.Config()
	reader, err := rapl.NewMSRReader(m.MSR())
	if err != nil {
		t.Fatal(err)
	}
	bb, err := rcr.NewBlackboard(mcfg.Sockets, mcfg.CoresPerSocket)
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := rcr.StartSampler(m, reader, bb, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sampler.Stop)
	qcfg := qthreads.DefaultConfig()
	qcfg.Workers = workers
	rt, err := qthreads.New(m, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return bb, rt
}

// fullStack builds machine + sampler + runtime + daemon.
func fullStack(t *testing.T, workers int, dcfg Config) (*machine.Machine, *qthreads.Runtime, *Daemon) {
	t.Helper()
	mcfg := machine.M620()
	mcfg.VirtualTimeLimit = 10 * time.Minute
	m, err := machine.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	m.WarmAll(65)
	bb, rt := stackOn(t, m, workers)
	d, err := Start(rt, bb, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return m, rt, d
}

// hotMemoryLoad drives all workers with mixed compute + heavy memory
// traffic for roughly the given virtual duration: power and concurrency
// both go High.
func hotMemoryLoad(rt *qthreads.Runtime, d time.Duration) error {
	cycles := float64(rt.Machine().Config().BaseFreq) * d.Seconds()
	perCoreBW := float64(rt.Machine().Config().Mem.MaxCoreBandwidth())
	return rt.Run(func(tc *qthreads.TC) {
		g := tc.NewGroup()
		for i := 0; i < rt.Workers(); i++ {
			g.Spawn(tc, func(tc *qthreads.TC) {
				for k := 0; k < 10; k++ {
					tc.Execute(machine.Work{
						Ops:     cycles / 10,
						Bytes:   perCoreBW * d.Seconds() / 10,
						Overlap: 0.85,
					})
				}
			})
		}
		g.Wait(tc)
	})
}

func TestDaemonActivatesOnHotMemoryLoad(t *testing.T) {
	leak.Check(t)
	_, rt, d := fullStack(t, 16, Config{})
	if err := hotMemoryLoad(rt, 1200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Activations == 0 {
		t.Errorf("daemon never activated throttling: %+v", st)
	}
	if st.ThrottledTime == 0 {
		t.Error("no throttled time accumulated")
	}
	stops := uint64(0)
	for _, s := range rt.Stats() {
		stops += s.ThrottleStops
	}
	if stops == 0 {
		t.Error("no worker ever hit the throttle gate")
	}
}

func TestDaemonStaysOffForComputeOnly(t *testing.T) {
	leak.Check(t)
	// Compute-bound load: power goes High but memory concurrency stays
	// Low: dual condition must keep throttling off (paper §IV-A: power
	// alone would throttle efficient programs and waste energy).
	_, rt, d := fullStack(t, 16, Config{})
	cycles := 2.7e9 * 0.8 // 800 ms
	err := rt.Run(func(tc *qthreads.TC) {
		g := tc.NewGroup()
		for i := 0; i < 16; i++ {
			g.Spawn(tc, func(tc *qthreads.TC) { tc.Compute(cycles) })
		}
		g.Wait(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Activations != 0 {
		t.Errorf("daemon activated on compute-only load: %+v", st)
	}
	if rt.Throttled() {
		t.Error("throttle left on")
	}
}

func TestDaemonDeactivatesWhenLoadDrops(t *testing.T) {
	leak.Check(t)
	m, rt, d := fullStack(t, 16, Config{})
	if err := hotMemoryLoad(rt, time.Second); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Activations == 0 {
		t.Skip("throttle never engaged; nothing to deactivate")
	}
	// With the load gone, both metrics fall to Low; the engine advances
	// (host-paced) through sampler and daemon ticks while everyone is
	// parked. Give the daemon host time to observe the idle and release.
	deadline := time.Now().Add(10 * time.Second)
	for rt.Throttled() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if rt.Throttled() {
		t.Error("throttle still on after load dropped")
	}
	if d.Stats().Deactivations == 0 {
		t.Errorf("no deactivations recorded: %+v", d.Stats())
	}
	_ = m
}

func TestDaemonDefaultConfig(t *testing.T) {
	_, _, d := fullStack(t, 16, Config{})
	cfg := d.Config()
	if cfg.Period != DefaultPeriod {
		t.Errorf("Period = %v, want %v", cfg.Period, DefaultPeriod)
	}
	if cfg.ThrottleLimit != 6 {
		t.Errorf("ThrottleLimit = %d, want 6 (3/4 of 8)", cfg.ThrottleLimit)
	}
	if cfg.Thresholds.HighPower != 65 {
		t.Errorf("thresholds not defaulted: %+v", cfg.Thresholds)
	}
}

func TestStartValidation(t *testing.T) {
	mcfg := machine.M620()
	m, err := machine.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	rt, err := qthreads.New(m, qthreads.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	bb, _ := rcr.NewBlackboard(2, 8)
	if _, err := Start(nil, bb, Config{}); err == nil {
		t.Error("Start(nil runtime) succeeded")
	}
	if _, err := Start(rt, nil, Config{}); err == nil {
		t.Error("Start(nil blackboard) succeeded")
	}
	if _, err := Start(rt, bb, Config{Thresholds: Thresholds{HighPower: 1, LowPower: 2, HighConcurrency: 2, LowConcurrency: 1}}); err == nil {
		t.Error("Start with invalid thresholds succeeded")
	}
}

func TestStopReleasesThrottle(t *testing.T) {
	leak.Check(t)
	_, rt, d := fullStack(t, 16, Config{})
	rt.SetThrottle(true, 6)
	d.Stop()
	if rt.Throttled() {
		t.Error("Stop left throttle on")
	}
}
