package maestro

import (
	"testing"
	"time"

	"repro/internal/machine"
)

// adaptiveHarness drives an adaptive Decider against a synthetic
// efficiency landscape: each poll's power/bandwidth readings are derived
// from the operating point the controller most recently asked for, which
// is exactly the feedback loop the daemon provides (one poll of sampler
// lag is modelled by windowDone's skipped first dwell poll).
type adaptiveHarness struct {
	t   *testing.T
	a   Decider
	env PolicyEnv
	now time.Duration
	// eff maps an operating point to bandwidth-per-watt; the harness
	// fixes bandwidth and derives power so windows measure exactly eff.
	eff func(pt OperatingPoint) float64
	bw  float64
	pt  OperatingPoint
}

func newAdaptiveHarness(t *testing.T, eff func(OperatingPoint) float64, bw float64) *adaptiveHarness {
	t.Helper()
	env := PolicyEnv{
		Machine:       machine.M620(),
		Period:        DefaultPeriod,
		ThrottleLimit: 6,
		FrequencyGear: 0.8,
	}
	env.Thresholds = DefaultThresholds(env.Machine.Mem)
	dec, err := NewAdaptiveDecider(AdaptiveConfig{})(env)
	if err != nil {
		t.Fatal(err)
	}
	h := &adaptiveHarness{t: t, a: dec, env: env, eff: eff, bw: bw}
	h.pt = OperatingPoint{Throttled: false, Limit: env.ThrottleLimit, FreqScale: 1}
	return h
}

// poll advances one daemon poll. hot=true feeds High/High levels on
// every socket; hot=false feeds all-Low. scale multiplies the workload
// signature (to provoke the change-point detector).
func (h *adaptiveHarness) poll(hot bool, scale float64) OperatingPoint {
	h.t.Helper()
	e := h.eff(h.pt)
	if e <= 0 {
		h.t.Fatalf("landscape has no efficiency for %+v", h.pt)
	}
	bw := h.bw * scale
	power := bw / e
	lv := Low
	if hot {
		lv = High
	}
	in := PolicyInput{
		Now:     h.now,
		Power:   []float64{power / 2, power / 2},
		Conc:    []float64{56, 56}, // knee 28 over 8 cores/socket seeds the climb at limit 4
		Membw:   []float64{bw / 2, bw / 2},
		PowerLv: []int8{int8(lv), int8(lv)},
		ConcLv:  []int8{int8(lv), int8(lv)},
		Current: h.pt,
	}
	h.pt = h.a.Decide(in)
	h.now += h.env.Period
	return h.pt
}

// settle polls hot until the requested point stops changing (quiet
// consecutive polls), failing after limit polls.
func (h *adaptiveHarness) settle(quiet, limit int) OperatingPoint {
	h.t.Helper()
	stable := 0
	for i := 0; i < limit; i++ {
		prev := h.pt
		if h.poll(true, 1) == prev {
			stable++
			if stable >= quiet {
				return h.pt
			}
		} else {
			stable = 0
		}
	}
	h.t.Fatalf("operating point never settled within %d polls (last %+v)", limit, h.pt)
	return OperatingPoint{}
}

// limitLandscape peaks at a per-shepherd limit of 5; gears only ever
// lose. Unknown limits fall off toward zero so the climb can never walk
// away unbounded.
func limitLandscape(pt OperatingPoint) float64 {
	base := map[int]float64{3: 0.80, 4: 1.00, 5: 1.25, 6: 1.10, 7: 0.95, 8: 0.85}[pt.Limit]
	if base == 0 {
		base = 0.1
	}
	if !pt.Throttled {
		base = 1.05 // released: decent but below the optimum
	}
	if pt.FreqScale < 1 {
		base *= 0.8
	}
	return base
}

func TestAdaptiveClimbsToEfficiencyPeak(t *testing.T) {
	// Bandwidth well under half the node plateau: the gear sweep's
	// saturation gate must keep DVFS out of the picture.
	h := newAdaptiveHarness(t, limitLandscape, 1e9)

	if got := h.poll(false, 1); got.Throttled {
		t.Fatalf("throttled while idle: %+v", got)
	}
	pt := h.settle(12, 400)
	want := OperatingPoint{Throttled: true, Limit: 5, FreqScale: 1}
	if pt != want {
		t.Fatalf("converged on %+v, want %+v (efficiency peak)", pt, want)
	}
}

func TestAdaptiveReleasesWhenCold(t *testing.T) {
	h := newAdaptiveHarness(t, limitLandscape, 1e9)
	h.settle(12, 400)
	var pt OperatingPoint
	for i := 0; i < 4; i++ { // ReleasePolls defaults to 2
		pt = h.poll(false, 1)
	}
	if pt.Throttled || pt.FreqScale != 1 {
		t.Fatalf("still engaged after sustained all-Low: %+v", pt)
	}
}

func TestAdaptiveGearSweepNeedsSaturation(t *testing.T) {
	// Same limit peak, but gears now improve efficiency (memory-bound
	// phase: less clock, same bandwidth, less power) and the workload
	// moves 60% of the node's plateau bandwidth.
	capacity := float64(machine.M620().Mem.BandwidthPerSocket) * 2
	eff := func(pt OperatingPoint) float64 {
		base := limitLandscape(OperatingPoint{Throttled: pt.Throttled, Limit: pt.Limit, FreqScale: 1})
		switch pt.FreqScale {
		case 0.9:
			base *= 1.10
		case 0.8:
			base *= 1.05
		case 0.7, 0.6:
			base *= 0.90
		}
		return base
	}
	h := newAdaptiveHarness(t, eff, 0.6*capacity)
	pt := h.settle(20, 600)
	want := OperatingPoint{Throttled: true, Limit: 5, FreqScale: 0.9}
	if pt != want {
		t.Fatalf("converged on %+v, want %+v (gear 0.9 pays, 0.8 does not)", pt, want)
	}
}

func TestAdaptiveResetReentersMonitor(t *testing.T) {
	h := newAdaptiveHarness(t, limitLandscape, 1e9)
	h.poll(true, 1) // engage: mid-climb now
	if !h.pt.Throttled {
		t.Fatalf("hot poll did not engage: %+v", h.pt)
	}
	h.a.Reset(h.now)
	// A Reset means fail-safe fired: the next decision must ask for the
	// released state, and learned climb state must be gone.
	if pt := h.poll(false, 1); pt.Throttled || pt.FreqScale != 1 {
		t.Fatalf("post-reset decision still engaged: %+v", pt)
	}
	// Re-engagement works from scratch.
	if pt := h.poll(true, 1); !pt.Throttled {
		t.Fatalf("monitor did not re-engage after reset: %+v", pt)
	}
}

func TestAdaptivePhaseChangeRestartsClimb(t *testing.T) {
	h := newAdaptiveHarness(t, limitLandscape, 1e9)
	h.settle(12, 400)
	ph, ok := h.a.(interface{ Phase() int })
	if !ok {
		t.Fatal("adaptive decider does not expose Phase()")
	}
	before := ph.Phase()
	// The workload triples its signature while the operating point holds
	// still: a genuine phase transition the detector must catch, after
	// which the climb restarts (FreqScale back to 1, exploring limits).
	restarted := false
	for i := 0; i < 40; i++ {
		h.poll(true, 3)
		if ph.Phase() > before {
			restarted = true
			break
		}
	}
	if !restarted {
		t.Fatalf("detector never reported the regime shift (phase still %d)", ph.Phase())
	}
	if !h.pt.Throttled || h.pt.FreqScale != 1 {
		t.Fatalf("climb not restarted from seed after phase change: %+v", h.pt)
	}
	// And the controller re-converges for the new phase.
	pt := h.settle(12, 400)
	if !pt.Throttled || pt.Limit != 5 {
		t.Fatalf("did not re-converge after phase change: %+v", pt)
	}
}
