package maestro

import (
	"repro/internal/telemetry"
)

// daemonMetrics is the throttle daemon's instrument set. All instruments
// are pre-registered at Start so the poll path records through atomics
// only — no lookups, no allocation.
type daemonMetrics struct {
	polls       *telemetry.Counter
	incomplete  *telemetry.Counter // polls aborted on a missing meter
	decHold     *telemetry.Counter
	decEnable   *telemetry.Counter
	decDisable  *telemetry.Counter
	transitions *telemetry.Counter    // actual throttle flips (≤ enable+disable)
	powerLevel  [3]*telemetry.Counter // per-socket classifications by Level
	concLevel   [3]*telemetry.Counter
	engaged     *telemetry.Gauge     // 1 while the mechanism is applied
	duty        *telemetry.Gauge     // fraction of virtual time spent engaged
	staleness   *telemetry.Histogram // age of the oldest meter read, ns

	// Fail-safe / fault-tolerance instruments.
	faultDetected   *telemetry.Counter // stale or missing inputs noticed
	failsafeEntered *telemetry.Counter // fail-safe latch engagements
	recovered       *telemetry.Counter // fail-safe releases after fresh data
	stalePolls      *telemetry.Counter // polls refused on stale/missing data
	missedPolls     *telemetry.Counter // polls swallowed by a busy actuator
	actDelayed      *telemetry.Counter // actuations deferred by the hook
	actDropped      *telemetry.Counter // actuations lost by the hook
	failsafeG       *telemetry.Gauge   // 1 while the fail-safe latch holds

	// Decider-policy instruments (static policies never touch them).
	phaseOpChanges *telemetry.Counter // desired operating-point moves
}

func newDaemonMetrics(reg *telemetry.Registry) *daemonMetrics {
	level := func(prefix string) [3]*telemetry.Counter {
		return [3]*telemetry.Counter{
			reg.Counter(prefix + "_low_total"),
			reg.Counter(prefix + "_medium_total"),
			reg.Counter(prefix + "_high_total"),
		}
	}
	return &daemonMetrics{
		polls:       reg.Counter("maestro_polls_total"),
		incomplete:  reg.Counter("maestro_incomplete_reads_total"),
		decHold:     reg.Counter("maestro_decision_hold_total"),
		decEnable:   reg.Counter("maestro_decision_enable_total"),
		decDisable:  reg.Counter("maestro_decision_disable_total"),
		transitions: reg.Counter("maestro_transitions_total"),
		powerLevel:  level("maestro_power_level"),
		concLevel:   level("maestro_conc_level"),
		engaged:     reg.Gauge("maestro_engaged"),
		duty:        reg.Gauge("maestro_throttle_duty"),
		// Meter age at decision time. The sampler refreshes every 10 ms
		// and the daemon polls every 100 ms, so a healthy loop sits in
		// the 0–10 ms buckets; anything beyond one daemon period means
		// the sampler has stalled.
		staleness: reg.Histogram("maestro_staleness_ns",
			1e6, 2.5e6, 5e6, 1e7, 2.5e7, 1e8, 1e9),
		faultDetected:   reg.Counter("maestro_fault_detected_total"),
		failsafeEntered: reg.Counter("maestro_failsafe_entered_total"),
		recovered:       reg.Counter("maestro_recovered_total"),
		stalePolls:      reg.Counter("maestro_stale_polls_total"),
		missedPolls:     reg.Counter("maestro_missed_polls_total"),
		actDelayed:      reg.Counter("maestro_actuation_delayed_total"),
		actDropped:      reg.Counter("maestro_actuation_dropped_total"),
		failsafeG:       reg.Gauge("maestro_failsafe"),
		phaseOpChanges:  reg.Counter("maestro_phase_op_changes_total"),
	}
}

// adaptiveMetrics is the Adaptive policy's instrument set; the rest of
// the maestro_phase_* family (op changes live in daemonMetrics since
// the daemon owns the desired point).
type adaptiveMetrics struct {
	detected *telemetry.Counter // maestro_phase_detected_total
	refits   *telemetry.Counter // maestro_phase_refits_total
	steps    *telemetry.Counter // maestro_phase_explore_steps_total
	phaseG   *telemetry.Gauge   // maestro_phase_current
	lockedG  *telemetry.Gauge   // maestro_phase_locked
}

func newAdaptiveMetrics(reg *telemetry.Registry) *adaptiveMetrics {
	if reg == nil {
		return nil
	}
	return &adaptiveMetrics{
		detected: reg.Counter("maestro_phase_detected_total"),
		refits:   reg.Counter("maestro_phase_refits_total"),
		steps:    reg.Counter("maestro_phase_explore_steps_total"),
		phaseG:   reg.Gauge("maestro_phase_current"),
		lockedG:  reg.Gauge("maestro_phase_locked"),
	}
}

// capMetrics is the PowerCap controller's instrument set, installed
// atomically by Instrument so it can be attached after StartPowerCap.
type capMetrics struct {
	samples     *telemetry.Counter
	incomplete  *telemetry.Counter
	tightenings *telemetry.Counter
	relaxations *telemetry.Counter
	overBudget  *telemetry.Counter
	limit       *telemetry.Gauge // current per-shepherd limit
	capW        *telemetry.Gauge // current bound in Watts (SetCap retunes it)
}

// Instrument registers the controller's counters in reg. Safe to call
// while the controller is polling.
func (pc *PowerCap) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m := &capMetrics{
		samples:     reg.Counter("maestro_powercap_samples_total"),
		incomplete:  reg.Counter("maestro_powercap_incomplete_reads_total"),
		tightenings: reg.Counter("maestro_powercap_tightenings_total"),
		relaxations: reg.Counter("maestro_powercap_relaxations_total"),
		overBudget:  reg.Counter("maestro_powercap_over_budget_total"),
		limit:       reg.Gauge("maestro_powercap_limit"),
		capW:        reg.Gauge("maestro_powercap_watts"),
	}
	m.limit.Set(float64(pc.maxLimit))
	m.capW.Set(float64(pc.Cap()))
	pc.met.Store(m)
}
