package maestro

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/machine"
	"repro/internal/telemetry"
)

// OperatingPoint is the full actuation state a policy can ask for: the
// paper's concurrency throttle (park workers beyond Limit per shepherd)
// and the DVFS gear, combinable per Cuttlefish. The released state is
// {Throttled: false, FreqScale: 1}.
type OperatingPoint struct {
	// Throttled parks workers beyond Limit on every shepherd.
	Throttled bool
	// Limit is the per-shepherd active-worker bound while Throttled.
	// The daemon clamps it to [1, cores-per-socket].
	Limit int
	// FreqScale is the socket-wide DVFS gear in (0, 1]; 1 is full
	// clock. The daemon treats out-of-range or NaN as 1.
	FreqScale float64
}

// PolicyInput is one healthy poll's view of the machine, handed to a
// Decider. The slices alias the daemon's per-poll scratch buffers: they
// are valid only for the duration of the Decide call and must not be
// retained or mutated.
type PolicyInput struct {
	// Now is the virtual timestamp of the poll.
	Now time.Duration
	// Power (W), Conc (outstanding memory references) and Membw
	// (bytes/s) are the per-socket blackboard readings.
	Power, Conc, Membw []float64
	// PowerLv and ConcLv are the per-socket High/Med/Low
	// classifications (Level values) against the daemon's thresholds.
	PowerLv, ConcLv []int8
	// Current is the operating point the daemon currently desires.
	Current OperatingPoint
	// Staleness is the age of the oldest reading behind this poll. It
	// is always within the daemon's horizon — stale polls never reach
	// a Decider.
	Staleness time.Duration
}

// Decider is the policy seam behind Config.Policy: the daemon consults
// it once per healthy poll and actuates whatever point it returns
// (clamped to hardware bounds). Implementations run on the machine's
// engine goroutine and must not block or touch the machine directly.
//
// The daemon keeps the safety machinery for every Decider: the
// staleness watchdog and fail-safe latch gate the polls (a Decider
// never sees data older than the horizon, and fail-safe releases the
// machine without asking it), and desired-vs-applied reconciliation
// retries dropped or delayed actuations on the absolute k×Period grid.
//
// A Decider may additionally implement interface{ Phase() int } to
// expose its current phase id in the decision journal.
type Decider interface {
	// Name identifies the policy in logs and registries.
	Name() string
	// Decide maps one poll's readings to the desired operating point.
	Decide(in PolicyInput) OperatingPoint
	// Reset is called when the daemon enters fail-safe: the sensors
	// went dark, the machine has been released, and any state learned
	// from recent readings should be discarded.
	Reset(now time.Duration)
}

// PolicyEnv is what a DeciderFactory gets to build a Decider from: the
// calibrated machine description plus the daemon's resolved config.
type PolicyEnv struct {
	// Machine is the full calibrated machine config (socket/core
	// topology, the memory-concurrency knee, power model).
	Machine machine.Config
	// Thresholds are the daemon's resolved classification boundaries.
	Thresholds Thresholds
	// Period is the daemon poll period.
	Period time.Duration
	// ThrottleLimit and FrequencyGear are the static policies'
	// operating point, a sensible anchor for exploration.
	ThrottleLimit int
	FrequencyGear float64
	// Telemetry and Journal are the daemon's sinks (either may be
	// nil). Policy-specific instruments and journal kinds go here.
	Telemetry *telemetry.Registry
	Journal   *telemetry.Journal
}

// DeciderFactory builds a Decider for a daemon at Start time.
type DeciderFactory func(env PolicyEnv) (Decider, error)

// The policy registry maps names to Config transforms so harnesses
// (chaos corpus, experiments) can enumerate and run every known
// policy — including third-party ones — without importing them. A
// transform rewrites a base daemon Config to select its policy,
// typically by setting Policy or Decider.
var (
	policyMu  sync.RWMutex
	policyReg = map[string]func(Config) Config{}
)

// RegisterPolicy adds a named policy to the registry. Registering a
// name twice (or an empty name or nil transform) panics: the registry
// is assembled from package init functions, where a collision is a
// programming error worth failing loudly on.
func RegisterPolicy(name string, apply func(Config) Config) {
	if name == "" || apply == nil {
		panic("maestro: RegisterPolicy needs a name and a transform")
	}
	policyMu.Lock()
	defer policyMu.Unlock()
	if _, dup := policyReg[name]; dup {
		panic(fmt.Sprintf("maestro: policy %q registered twice", name))
	}
	policyReg[name] = apply
}

// ConfigForPolicy rewrites base to select the named registered policy.
func ConfigForPolicy(name string, base Config) (Config, error) {
	policyMu.RLock()
	apply, ok := policyReg[name]
	policyMu.RUnlock()
	if !ok {
		return Config{}, fmt.Errorf("maestro: unknown policy %q", name)
	}
	return apply(base), nil
}

// RegisteredPolicies returns the sorted names of every registered
// policy. Harnesses iterate this to subject third-party policies to
// the same invariants as the built-ins (chaos corpus, zero
// stale-horizon decisions).
func RegisteredPolicies() []string {
	policyMu.RLock()
	names := make([]string, 0, len(policyReg))
	for name := range policyReg {
		names = append(names, name)
	}
	policyMu.RUnlock()
	sort.Strings(names)
	return names
}

func init() {
	RegisterPolicy(DualCondition.String(), func(c Config) Config {
		c.Policy, c.Decider = DualCondition, nil
		return c
	})
	RegisterPolicy(PowerOnly.String(), func(c Config) Config {
		c.Policy, c.Decider = PowerOnly, nil
		return c
	})
	RegisterPolicy(Adaptive.String(), func(c Config) Config {
		c.Policy, c.Decider = Adaptive, nil
		return c
	})
}
