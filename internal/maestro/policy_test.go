package maestro

import (
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/qthreads"
	"repro/internal/units"
)

func TestMechanismPolicyStrings(t *testing.T) {
	if ThrottleConcurrency.String() != "throttle-concurrency" || ScaleFrequency.String() != "scale-frequency" {
		t.Error("mechanism names wrong")
	}
	if DualCondition.String() != "dual-condition" || PowerOnly.String() != "power-only" {
		t.Error("policy names wrong")
	}
	if Mechanism(9).String() == "" || Policy(9).String() == "" {
		t.Error("unknown values need a representation")
	}
}

func TestScaleFrequencyMechanismEngages(t *testing.T) {
	m, rt, _ := fullStack(t, 16, Config{Mechanism: ScaleFrequency, FrequencyGear: 0.5})
	if err := hotMemoryLoad(rt, 1200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The DVFS mechanism must have pulled the clocks down at some point;
	// since the load just ended the daemon may not have released yet, but
	// the runtime's concurrency throttle must never have been touched.
	stops := uint64(0)
	for _, s := range rt.Stats() {
		stops += s.ThrottleStops
	}
	if stops != 0 {
		t.Errorf("frequency mechanism used the concurrency throttle (%d stops)", stops)
	}
	_ = m
}

func TestScaleFrequencyStopRestoresClock(t *testing.T) {
	m, rt, d := fullStack(t, 16, Config{Mechanism: ScaleFrequency})
	if err := hotMemoryLoad(rt, time.Second); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Activations == 0 {
		t.Skip("mechanism never engaged")
	}
	d.Stop()
	// Force an engine step so pending requests apply.
	if err := rt.Run(func(tc *qthreads.TC) { tc.Compute(1e6) }); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		if got := m.FrequencyScale(s); got != 1 {
			t.Errorf("socket %d scale after Stop = %g, want 1", s, got)
		}
	}
}

func TestPowerOnlyPolicyOverThrottles(t *testing.T) {
	// The paper's §IV-A justification for the dual condition: a
	// power-only policy throttles efficient compute-bound programs. A
	// full-node compute burn is High power but Low memory concurrency:
	// dual-condition holds off, power-only engages.
	run := func(policy Policy) uint64 {
		_, rt, d := fullStack(t, 16, Config{Policy: policy})
		cycles := 2.7e9 * 0.8
		err := rt.Run(func(tc *qthreads.TC) {
			g := tc.NewGroup()
			for i := 0; i < 16; i++ {
				g.Spawn(tc, func(tc *qthreads.TC) { tc.Compute(cycles) })
			}
			g.Wait(tc)
		})
		if err != nil {
			t.Fatal(err)
		}
		return d.Stats().Activations
	}
	if got := run(DualCondition); got != 0 {
		t.Errorf("dual-condition activated %d times on compute-only load", got)
	}
	if got := run(PowerOnly); got == 0 {
		t.Error("power-only policy never activated on a high-power compute load")
	}
}

func TestPowerCapHoldsBudget(t *testing.T) {
	mcfg := machine.M620()
	mcfg.VirtualTimeLimit = 10 * time.Minute
	m, err := machine.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	m.WarmAll(68)
	bb, rt := stackOn(t, m, 16)

	const cap = units.Watts(120)
	pc, err := StartPowerCap(rt, bb, cap, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pc.Stop)

	// Sustained full-node compute would draw ~150 W uncapped. Run a
	// settle phase for the controller to converge, then measure the
	// steady state.
	burn := func(tasks int) {
		t.Helper()
		err := rt.Run(func(tc *qthreads.TC) {
			g := tc.NewGroup()
			for i := 0; i < tasks; i++ {
				g.Spawn(tc, func(tc *qthreads.TC) { tc.Compute(2e7) })
			}
			g.Wait(tc)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	burn(640) // settle (~300+ ms)
	start := m.Now()
	startE := m.TotalEnergy()
	burn(1280) // measured steady state
	elapsed := m.Now() - start
	avg := float64(m.TotalEnergy()-startE) / elapsed.Seconds()
	st := pc.Stats()
	t.Logf("capped steady state: avg %.1f W under cap %.0f W (tightenings %d, min limit %d, over-budget samples %d/%d)",
		avg, float64(cap), st.Tightenings, st.MinLimit, st.OverBudget, st.Samples)
	if st.Tightenings == 0 {
		t.Error("controller never tightened under a 120 W cap")
	}
	if avg > float64(cap)*1.06 {
		t.Errorf("steady-state power %.1f W overshoots the %.0f W cap", avg, float64(cap))
	}
	if st.MinLimit >= 8 {
		t.Errorf("min limit %d: throttle never actually reduced concurrency", st.MinLimit)
	}
}

func TestPowerCapValidation(t *testing.T) {
	mcfg := machine.M620()
	m, err := machine.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	bb, rt := stackOn(t, m, 4)
	if _, err := StartPowerCap(nil, bb, 100, 0); err == nil {
		t.Error("nil runtime accepted")
	}
	if _, err := StartPowerCap(rt, nil, 100, 0); err == nil {
		t.Error("nil blackboard accepted")
	}
	if _, err := StartPowerCap(rt, bb, 0, 0); err == nil {
		t.Error("zero cap accepted")
	}
	pc, err := StartPowerCap(rt, bb, 140, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Stop()
	if pc.Cap() != 140 {
		t.Errorf("Cap() = %v", pc.Cap())
	}
}

func TestPowerCapSetCap(t *testing.T) {
	mcfg := machine.M620()
	mcfg.VirtualTimeLimit = 10 * time.Minute
	m, err := machine.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	m.WarmAll(68)
	bb, rt := stackOn(t, m, 16)

	pc, err := StartPowerCap(rt, bb, 200, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pc.Stop)
	if err := pc.SetCap(0); err == nil {
		t.Error("zero cap accepted by SetCap")
	}
	if err := pc.SetCap(-5); err == nil {
		t.Error("negative cap accepted by SetCap")
	}
	if pc.Cap() != 200 {
		t.Errorf("rejected SetCap changed the bound: %v", pc.Cap())
	}

	burn := func(tasks int) {
		t.Helper()
		err := rt.Run(func(tc *qthreads.TC) {
			g := tc.NewGroup()
			for i := 0; i < tasks; i++ {
				g.Spawn(tc, func(tc *qthreads.TC) { tc.Compute(2e7) })
			}
			g.Wait(tc)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// A full-node compute burn draws ~150 W, so the generous initial cap
	// never binds. Retune the bound downward mid-flight: the running
	// controller must pick up the new cap and start tightening.
	burn(640)
	if st := pc.Stats(); st.Tightenings != 0 {
		t.Fatalf("controller tightened under a non-binding 200 W cap (%d)", st.Tightenings)
	}
	if err := pc.SetCap(110); err != nil {
		t.Fatal(err)
	}
	if pc.Cap() != 110 {
		t.Errorf("Cap() after SetCap = %v, want 110", pc.Cap())
	}
	burn(1280)
	st := pc.Stats()
	if st.Tightenings == 0 {
		t.Error("controller never tightened after SetCap lowered the bound to 110 W")
	}
	if st.MinLimit >= 8 {
		t.Errorf("min limit %d: retuned cap never reduced concurrency", st.MinLimit)
	}
}
