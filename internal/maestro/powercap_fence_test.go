package maestro

import (
	"errors"
	"testing"
	"time"

	"repro/internal/machine"
)

// TestPowerCapFenced checks the controller-side fence ratchet: equal or
// higher fences pass and move the high-water mark, stale fences fail
// with ErrFenceRejected and leave the cap untouched, and the unfenced
// SetCap keeps working regardless.
func TestPowerCapFenced(t *testing.T) {
	m, err := machine.New(machine.M620())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	bb, rt := stackOn(t, m, 4)
	pc, err := StartPowerCap(rt, bb, 150, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pc.Stop)

	if err := pc.SetCapFenced(120, 3); err != nil {
		t.Fatalf("fence 3: %v", err)
	}
	if got := pc.Cap(); got != 120 {
		t.Fatalf("cap %v after fence-3 write", got)
	}
	// Equal fence (renewal by the same leader) still applies.
	if err := pc.SetCapFenced(110, 3); err != nil {
		t.Fatalf("equal fence: %v", err)
	}
	// A stale fence is refused and the cap stays where fence 3 left it.
	if err := pc.SetCapFenced(200, 2); !errors.Is(err, ErrFenceRejected) {
		t.Fatalf("stale fence: err %v, want ErrFenceRejected", err)
	}
	if got := pc.Cap(); got != 110 {
		t.Fatalf("cap %v changed by a rejected write", got)
	}
	if pc.FenceRejects() != 1 {
		t.Fatalf("fence rejects %d, want 1", pc.FenceRejects())
	}
	// Higher fence moves the ratchet; the old fence is dead for good.
	if err := pc.SetCapFenced(90, 7); err != nil {
		t.Fatal(err)
	}
	if err := pc.SetCapFenced(100, 3); !errors.Is(err, ErrFenceRejected) {
		t.Fatalf("resurrected fence accepted: %v", err)
	}
	// An invalid cap under a fresh fence is still rejected by SetCap's
	// own validation, but the fence high-water mark has already moved —
	// fencing guards ordering, not payload validity.
	if err := pc.SetCapFenced(-5, 9); err == nil || errors.Is(err, ErrFenceRejected) {
		t.Fatalf("invalid cap: %v", err)
	}
	// Unfenced SetCap ignores the ratchet entirely.
	if err := pc.SetCap(130); err != nil {
		t.Fatal(err)
	}
	if got := pc.Cap(); got != 130 {
		t.Fatalf("cap %v after unfenced SetCap", got)
	}
}
