// Package maestro implements the paper's automatic dynamic concurrency
// throttling (§IV): a user-level daemon wakes every 0.1 s of (virtual)
// time, reads socket power and memory concurrency from the RCR
// blackboard, classifies each as High, Medium or Low against calibrated
// thresholds, and toggles the runtime's throttle flag:
//
//   - both metrics High on some socket  → activate throttling
//   - both metrics Low on every socket  → deactivate throttling
//   - anything in the Medium band       → hold (hysteresis guard)
//
// When throttling is active, the qthreads scheduler parks workers beyond
// a shepherd-local limit in a duty-cycle-throttled spin loop; see
// package qthreads.
package maestro

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/machine"
	"repro/internal/qthreads"
	"repro/internal/rcr"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Level is a classified metric reading.
type Level int

// Classification levels.
const (
	Low Level = iota
	Medium
	High
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case Low:
		return "Low"
	case Medium:
		return "Medium"
	case High:
		return "High"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Classify buckets a value against a low and high threshold. Values at or
// above high are High; at or below low are Low; otherwise Medium. The
// Medium band is the hysteresis guard of §IV-A: it neither engages nor
// releases throttling, avoiding oscillation when a metric hovers near a
// threshold.
func Classify(v, low, high float64) Level {
	switch {
	case v >= high:
		return High
	case v <= low:
		return Low
	default:
		return Medium
	}
}

// Thresholds hold the per-socket classification boundaries.
type Thresholds struct {
	// Power boundaries per socket. The paper picks 75 W per socket as
	// High (few applications exceed 150 W node-wide for their entire
	// execution) and 50 W as Low (almost all applications exceed 100 W
	// node-wide while running). Our power model's socket figures run
	// about 10 W below the paper's machine at equivalent load, so the
	// calibrated defaults are 65/45 — chosen, like the paper's, so that
	// exactly the poorly-scaling high-power programs (lulesh, dijkstra,
	// health, strassen) classify High and the well-scaling ones do not.
	HighPower, LowPower units.Watts
	// Memory-concurrency boundaries in outstanding references. The paper
	// sets High at 75% and Low at 25% of the socket's effective maximum
	// (the knee of Mandel et al.'s model).
	HighConcurrency, LowConcurrency float64
}

// DefaultThresholds derives the paper-equivalent thresholds for a machine
// configuration.
func DefaultThresholds(mem machine.MemParams) Thresholds {
	knee := float64(mem.KneeRefs)
	return Thresholds{
		HighPower:       65,
		LowPower:        45,
		HighConcurrency: 0.75 * knee,
		LowConcurrency:  0.25 * knee,
	}
}

// Validate reports the first problem with the thresholds.
func (th Thresholds) Validate() error {
	if th.LowPower <= 0 || th.HighPower <= th.LowPower {
		return fmt.Errorf("maestro: power thresholds %v/%v must satisfy 0 < low < high", th.LowPower, th.HighPower)
	}
	if th.LowConcurrency < 0 || th.HighConcurrency <= th.LowConcurrency {
		return fmt.Errorf("maestro: concurrency thresholds %g/%g must satisfy 0 <= low < high", th.LowConcurrency, th.HighConcurrency)
	}
	return nil
}

// Decision is the daemon's per-sample output.
type Decision int

// Decisions.
const (
	Hold Decision = iota
	Enable
	Disable
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case Hold:
		return "Hold"
	case Enable:
		return "Enable"
	case Disable:
		return "Disable"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Decide applies the dual-condition policy to per-socket readings: Enable
// if any socket has both power and concurrency High; Disable if every
// socket has both Low; Hold otherwise.
func (th Thresholds) Decide(power []units.Watts, conc []float64) Decision {
	if len(power) == 0 || len(power) != len(conc) {
		return Hold
	}
	allLow := true
	for i := range power {
		p := Classify(float64(power[i]), float64(th.LowPower), float64(th.HighPower))
		c := Classify(conc[i], th.LowConcurrency, th.HighConcurrency)
		if p == High && c == High {
			return Enable
		}
		if p != Low || c != Low {
			allLow = false
		}
	}
	if allLow {
		return Disable
	}
	return Hold
}

// Mechanism selects how the daemon reduces power when its policy says
// High.
type Mechanism int

// Mechanisms.
const (
	// ThrottleConcurrency parks surplus workers in duty-cycle-throttled
	// spin loops — the paper's mechanism: per-core and fast.
	ThrottleConcurrency Mechanism = iota
	// ScaleFrequency lowers the whole socket's clock instead (DVFS), the
	// mechanism most prior work uses. The paper argues against it (§IV:
	// it affects all cores and transitions are slow); it is implemented
	// here so the two can be compared (experiments.MechanismAblation).
	ScaleFrequency
)

// String returns the mechanism name.
func (mech Mechanism) String() string {
	switch mech {
	case ThrottleConcurrency:
		return "throttle-concurrency"
	case ScaleFrequency:
		return "scale-frequency"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(mech))
	}
}

// Policy selects which metrics gate the mechanism.
type Policy int

// Policies.
const (
	// DualCondition requires both power and memory concurrency High —
	// the paper's policy (§IV-A).
	DualCondition Policy = iota
	// PowerOnly gates on power alone. The paper rejects it: "it often
	// limits thread count for programs running at high efficiency and
	// increased overall energy consumption". Kept for the ablation.
	PowerOnly
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case DualCondition:
		return "dual-condition"
	case PowerOnly:
		return "power-only"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config tunes the daemon.
type Config struct {
	// Period between polls; the paper uses 0.1 s, chosen to let energy
	// counter fluctuations dissipate, and notes it is adjustable to trade
	// overhead against responsiveness.
	Period time.Duration
	// Thresholds for classification. Zero value selects
	// DefaultThresholds for the runtime's machine.
	Thresholds Thresholds
	// ThrottleLimit is the shepherd-local active-worker limit applied
	// while throttled. Zero selects 3/4 of the cores per socket (12 of
	// 16 on the paper's machine, matching its 12-thread comparisons).
	ThrottleLimit int
	// Mechanism selects concurrency throttling (default, the paper's
	// choice) or socket-wide frequency scaling.
	Mechanism Mechanism
	// Policy selects the gating condition (default: the paper's dual
	// condition).
	Policy Policy
	// FrequencyGear is the DVFS scale applied while ScaleFrequency is
	// engaged; zero selects 0.6.
	FrequencyGear float64
	// StalenessHorizon bounds how old the blackboard inputs behind a
	// decision may be. When any input meter is older (or missing), the
	// daemon refuses to classify, releases any active throttle, and
	// enters fail-safe until the sensors look healthy again — it never
	// leaves threads parked on the word of a dead or frozen sampler.
	// Zero selects 3× Period; negative disables the watchdog.
	StalenessHorizon time.Duration
	// RecoveryPolls is how many consecutive fresh polls the daemon
	// requires before leaving fail-safe and classifying again (debounce
	// against a sampler that flaps). Zero selects 2.
	RecoveryPolls int
	// ActuationHook, when non-nil, intercepts mechanism actuation: it
	// may return a delay to defer the actuation by (the daemon's control
	// thread is busy for that long and misses overlapped polls, though
	// its cadence stays on the absolute Period grid) and drop=true to
	// lose the actuation entirely. The daemon treats actuation as
	// desired-state reconciliation — a dropped or delayed actuation is
	// retried every poll until the applied state matches the desired
	// one — so this is a fault-injection seam (internal/faults), not a
	// correctness risk. Fail-safe releases bypass it: they flip the
	// runtime's lock-free throttle flag directly.
	ActuationHook func(now time.Duration, engage bool) (delay time.Duration, drop bool)
	// Telemetry, when non-nil, receives the daemon's maestro_* counters,
	// gauges and staleness histogram (see docs/observability.md for the
	// catalog). The poll path records through pre-registered instruments
	// only, so enabling telemetry adds no allocation.
	Telemetry *telemetry.Registry
	// Journal, when non-nil, receives one telemetry.Decision per poll —
	// the full classification trace (inputs, levels, thresholds,
	// outcome) behind every throttle flip.
	Journal *telemetry.Journal
}

// DefaultPeriod is the paper's daemon wake interval.
const DefaultPeriod = 100 * time.Millisecond

// Daemon is a running throttling controller. Create with Start; it polls
// until Stop.
type Daemon struct {
	rt       *qthreads.Runtime
	bb       *rcr.Blackboard
	cfg      Config
	tickerID int

	// Engine-goroutine control state (poll and firePending callbacks
	// only). engaged is the desired mechanism state from classification;
	// applied is what has actually been actuated — they diverge while an
	// actuation is delayed or after one is dropped, and every poll
	// reconciles applied toward engaged.
	engaged bool
	applied bool
	// failsafe is the watchdog latch: while set, classification is
	// suspended and the throttle is released. freshPolls counts
	// consecutive healthy polls toward recovery.
	failsafe   bool
	freshPolls int
	// horizon is the resolved staleness bound (0 = watchdog disabled).
	horizon time.Duration
	// busyUntil marks the end of an in-flight delayed actuation; polls
	// landing inside the window are missed (the control thread is busy),
	// but the ticker keeps the absolute-deadline grid, so cadence holds.
	busyUntil time.Duration
	// pendingID/pendingOn track the one-shot ticker of a delayed
	// actuation (-1 when none).
	pendingID int
	pendingOn bool

	failsafeA       atomic.Bool
	stopped         atomic.Bool
	faultsSeen      atomic.Uint64
	failsafeEntries atomic.Uint64
	recoveries      atomic.Uint64
	missedPolls     atomic.Uint64

	// met and journal are fixed at Start. The scratch slices below are
	// reused every poll (engine goroutine only) so classification and
	// journaling never allocate on the hot path.
	met     *daemonMetrics
	journal *telemetry.Journal
	power   []units.Watts
	conc    []float64
	powerF  []float64
	concF   []float64
	membwF  []float64
	powerLv []int8
	concLv  []int8

	activations   atomic.Uint64
	deactivations atomic.Uint64
	samples       atomic.Uint64
	throttledTime atomic.Int64 // ns spent with throttling active
	lastSample    atomic.Int64 // ns timestamp of previous sample
}

// Start launches the daemon on the runtime's machine.
func Start(rt *qthreads.Runtime, bb *rcr.Blackboard, cfg Config) (*Daemon, error) {
	if rt == nil || bb == nil {
		return nil, errors.New("maestro: runtime and blackboard are required")
	}
	mcfg := rt.Machine().Config()
	if cfg.Period <= 0 {
		cfg.Period = DefaultPeriod
	}
	if (cfg.Thresholds == Thresholds{}) {
		cfg.Thresholds = DefaultThresholds(mcfg.Mem)
	}
	if err := cfg.Thresholds.Validate(); err != nil {
		return nil, err
	}
	if cfg.ThrottleLimit <= 0 {
		cfg.ThrottleLimit = mcfg.CoresPerSocket * 3 / 4
		if cfg.ThrottleLimit < 1 {
			cfg.ThrottleLimit = 1
		}
	}
	if cfg.FrequencyGear <= 0 || cfg.FrequencyGear > 1 {
		cfg.FrequencyGear = 0.6
	}
	if cfg.RecoveryPolls <= 0 {
		cfg.RecoveryPolls = 2
	}
	d := &Daemon{rt: rt, bb: bb, cfg: cfg, journal: cfg.Journal, pendingID: -1}
	switch {
	case cfg.StalenessHorizon == 0:
		d.horizon = 3 * cfg.Period
	case cfg.StalenessHorizon > 0:
		d.horizon = cfg.StalenessHorizon
	}
	if cfg.Telemetry != nil {
		d.met = newDaemonMetrics(cfg.Telemetry)
	}
	nSock := bb.Sockets()
	d.power = make([]units.Watts, 0, nSock)
	d.conc = make([]float64, 0, nSock)
	d.powerF = make([]float64, 0, nSock)
	d.concF = make([]float64, 0, nSock)
	d.membwF = make([]float64, 0, nSock)
	d.powerLv = make([]int8, 0, nSock)
	d.concLv = make([]int8, 0, nSock)
	id, err := rt.Machine().AddTicker(cfg.Period, d.poll)
	if err != nil {
		return nil, err
	}
	d.tickerID = id
	return d, nil
}

// Stop halts the daemon and releases any active throttle or frequency
// reduction. A delayed actuation still in flight is neutralized: its
// one-shot callback observes the stopped flag and applies nothing.
func (d *Daemon) Stop() {
	d.stopped.Store(true)
	d.rt.Machine().RemoveTicker(d.tickerID)
	d.rt.SetThrottle(false, d.cfg.ThrottleLimit)
	if d.cfg.Mechanism == ScaleFrequency {
		d.setFrequency(1)
	}
}

// Config returns the daemon configuration (with defaults applied).
func (d *Daemon) Config() Config { return d.cfg }

// Stats describe the daemon's activity so far.
type Stats struct {
	Samples       uint64
	Activations   uint64
	Deactivations uint64
	ThrottledTime time.Duration
	// Fail-safe accounting: sensor faults observed, fail-safe windows
	// entered, recoveries back to normal operation, polls missed while
	// an actuation stalled the control thread, and whether fail-safe is
	// active right now.
	FaultsSeen      uint64
	FailsafeEntries uint64
	Recoveries      uint64
	MissedPolls     uint64
	Failsafe        bool
}

// Stats returns a snapshot of the daemon counters.
func (d *Daemon) Stats() Stats {
	return Stats{
		Samples:         d.samples.Load(),
		Activations:     d.activations.Load(),
		Deactivations:   d.deactivations.Load(),
		ThrottledTime:   time.Duration(d.throttledTime.Load()),
		FaultsSeen:      d.faultsSeen.Load(),
		FailsafeEntries: d.failsafeEntries.Load(),
		Recoveries:      d.recoveries.Load(),
		MissedPolls:     d.missedPolls.Load(),
		Failsafe:        d.failsafeA.Load(),
	}
}

// Failsafe reports whether the staleness watchdog currently holds the
// daemon in fail-safe (throttle released, classification suspended).
func (d *Daemon) Failsafe() bool { return d.failsafeA.Load() }

// Horizon returns the resolved staleness bound of the watchdog (0 when
// it is disabled). External feeders — a resilience.Client mirroring a
// remote daemon's meters into the local blackboard — size their own
// cache horizons off this, so the two staleness policies cannot drift
// apart. The field is set once at Start and never written again, so the
// read is safe from any goroutine.
func (d *Daemon) Horizon() time.Duration { return d.horizon }

// poll runs on the machine's engine goroutine every Period. It reads the
// blackboard (never the machine) and flips the runtime's throttle flag
// through atomics only.
//
// The machine re-arms tickers against absolute deadlines (next += period,
// never now + period), so however long a poll or an injected actuation
// delay takes, the daemon's cadence stays on the k×Period grid — polls
// overlapping a busy window are missed, not shifted.
func (d *Daemon) poll(now time.Duration, _ *machine.Snapshot) {
	if d.stopped.Load() {
		return
	}
	d.samples.Add(1)
	met := d.met
	if met != nil {
		met.polls.Inc()
	}
	if prev := d.lastSample.Swap(int64(now)); prev != 0 && d.engaged {
		d.throttledTime.Add(int64(now) - prev)
	}
	if now < d.busyUntil {
		// The control thread is still inside a delayed actuation.
		d.missedPolls.Add(1)
		if met != nil {
			met.missedPolls.Inc()
		}
		return
	}
	// Per-socket reads are lock-free seqlock loads: the poll never
	// contends with the sampler's writes, so classification latency is
	// independent of write traffic.
	nSock := d.bb.Sockets()
	d.power, d.conc = d.power[:0], d.conc[:0]
	staleness := time.Duration(0)
	missing := false
	for s := 0; s < nSock; s++ {
		p, okP := d.bb.Socket(s, rcr.MeterPower)
		c, okC := d.bb.Socket(s, rcr.MeterMemConcurrency)
		if !okP || !okC {
			if met != nil {
				met.incomplete.Inc()
			}
			missing = true
			break
		}
		if age := now - p.Updated; age > staleness {
			staleness = age
		}
		if age := now - c.Updated; age > staleness {
			staleness = age
		}
		d.power = append(d.power, units.Watts(p.Value))
		if d.cfg.Policy == PowerOnly {
			// Power-only ablation: pretend concurrency is always High so
			// only the power classification gates the decision.
			d.conc = append(d.conc, d.cfg.Thresholds.HighConcurrency)
		} else {
			d.conc = append(d.conc, c.Value)
		}
	}
	if d.horizon > 0 && (missing || staleness > d.horizon) {
		// Watchdog: the sensors are dead, frozen or lagging beyond the
		// horizon. Never classify — and never stay throttled — on their
		// word.
		d.noteFault(now, staleness, missing)
		return
	}
	if missing {
		return // watchdog disabled: hold, as before
	}
	if d.failsafe {
		d.freshPolls++
		if d.freshPolls < d.cfg.RecoveryPolls {
			return // still debouncing; keep fail-safe
		}
		d.failsafe = false
		d.failsafeA.Store(false)
		d.recoveries.Add(1)
		if met != nil {
			met.recovered.Inc()
			met.failsafeG.Set(0)
		}
		d.recordEvent(now, telemetry.KindRecovered, "fresh", staleness)
		// This poll's data is fresh; fall through and classify it.
	}
	// Classify once per socket and derive the decision from the levels —
	// the same dual-condition rule as Thresholds.Decide, with the levels
	// retained for counters and the decision journal.
	th := d.cfg.Thresholds
	d.powerLv, d.concLv = d.powerLv[:0], d.concLv[:0]
	anyBothHigh, allLow := false, true
	for i := range d.power {
		pl := Classify(float64(d.power[i]), float64(th.LowPower), float64(th.HighPower))
		cl := Classify(d.conc[i], th.LowConcurrency, th.HighConcurrency)
		d.powerLv = append(d.powerLv, int8(pl))
		d.concLv = append(d.concLv, int8(cl))
		if met != nil {
			met.powerLevel[pl].Inc()
			met.concLevel[cl].Inc()
		}
		if pl == High && cl == High {
			anyBothHigh = true
		}
		if pl != Low || cl != Low {
			allLow = false
		}
	}
	dec := Hold
	switch {
	case anyBothHigh:
		dec = Enable
	case allLow:
		dec = Disable
	}
	outcome := "hold"
	switch dec {
	case Enable:
		outcome = "enable"
		if met != nil {
			met.decEnable.Inc()
		}
		if !d.engaged {
			d.engaged = true
			d.activations.Add(1)
			if met != nil {
				met.transitions.Inc()
			}
		}
	case Disable:
		outcome = "disable"
		if met != nil {
			met.decDisable.Inc()
		}
		if d.engaged {
			d.engaged = false
			d.deactivations.Add(1)
			if met != nil {
				met.transitions.Inc()
			}
		}
	default:
		// Hysteresis band: leave the mechanism as-is.
		if met != nil {
			met.decHold.Inc()
		}
	}
	d.reconcile(now)
	if met != nil {
		if d.engaged {
			met.engaged.Set(1)
		} else {
			met.engaged.Set(0)
		}
		if now > 0 {
			met.duty.Set(float64(d.throttledTime.Load()) / float64(now))
		}
		met.staleness.Observe(float64(staleness))
	}
	if d.journal != nil {
		d.powerF, d.concF, d.membwF = d.powerF[:0], d.concF[:0], d.membwF[:0]
		for s := 0; s < nSock; s++ {
			bw, _ := d.bb.Socket(s, rcr.MeterMemBandwidth)
			d.membwF = append(d.membwF, bw.Value)
			d.powerF = append(d.powerF, float64(d.power[s]))
			d.concF = append(d.concF, d.conc[s])
		}
		d.journal.Record(telemetry.Decision{
			T:       now,
			Power:   d.powerF,
			Conc:    d.concF,
			Membw:   d.membwF,
			PowerLv: d.powerLv,
			ConcLv:  d.concLv,
			Thresholds: [4]float64{
				float64(th.LowPower), float64(th.HighPower),
				th.LowConcurrency, th.HighConcurrency,
			},
			Outcome:   outcome,
			Engaged:   d.engaged,
			Limit:     d.cfg.ThrottleLimit,
			Staleness: staleness,
		})
	}
}

// noteFault handles a poll whose inputs are missing or older than the
// staleness horizon: record the fault, enter fail-safe (releasing any
// active throttle immediately and directly — the release is a lock-free
// flag flip that no injected actuation fault can lose), and keep
// re-asserting the release while the outage lasts.
func (d *Daemon) noteFault(now, staleness time.Duration, missing bool) {
	d.faultsSeen.Add(1)
	d.freshPolls = 0
	met := d.met
	if met != nil {
		met.faultDetected.Inc()
		met.stalePolls.Inc()
	}
	detail := "stale"
	if missing {
		detail = "missing"
	}
	if !d.failsafe {
		d.recordEvent(now, telemetry.KindFaultDetected, detail, staleness)
		d.failsafe = true
		d.failsafeA.Store(true)
		d.failsafeEntries.Add(1)
		if met != nil {
			met.failsafeEntered.Inc()
			met.failsafeG.Set(1)
		}
		if d.engaged {
			d.engaged = false
			d.deactivations.Add(1)
			if met != nil {
				met.transitions.Inc()
			}
		}
		d.cancelPending()
		d.applyNow(false)
		d.recordEvent(now, telemetry.KindFailsafeEntered, detail, staleness)
		return
	}
	// Already in fail-safe: keep asserting the release in case a
	// concurrent fault path flipped the mechanism back.
	if d.applied {
		d.applyNow(false)
	}
}

// recordEvent journals one fail-safe transition record.
func (d *Daemon) recordEvent(now time.Duration, kind, detail string, staleness time.Duration) {
	if d.journal == nil {
		return
	}
	d.journal.Record(telemetry.Decision{
		T:         now,
		Kind:      kind,
		Detail:    detail,
		Engaged:   d.engaged,
		Limit:     d.cfg.ThrottleLimit,
		Staleness: staleness,
	})
}

// reconcile drives the applied mechanism state toward the desired one.
// With no ActuationHook this is a direct call; with one, the actuation
// may be deferred (a one-shot ticker applies it later while overlapped
// polls are missed) or dropped (nothing happens now — the next poll
// finds applied != engaged and retries).
func (d *Daemon) reconcile(now time.Duration) {
	if d.pendingID >= 0 {
		if d.pendingOn == d.engaged {
			return // the right actuation is already in flight
		}
		d.cancelPending()
	}
	if d.applied == d.engaged {
		return
	}
	on := d.engaged
	if h := d.cfg.ActuationHook; h != nil {
		delay, drop := h(now, on)
		if drop {
			if d.met != nil {
				d.met.actDropped.Inc()
			}
			return
		}
		if delay > 0 {
			if d.met != nil {
				d.met.actDelayed.Inc()
			}
			d.busyUntil = now + delay
			d.pendingOn = on
			if id, err := d.rt.Machine().AddTicker(delay, d.firePending); err == nil {
				d.pendingID = id
			}
			return
		}
	}
	d.applyNow(on)
}

// firePending is the one-shot completion of a delayed actuation. It runs
// on the engine goroutine, like poll, so no extra synchronization is
// needed.
func (d *Daemon) firePending(time.Duration, *machine.Snapshot) {
	// Make the periodic ticker one-shot before anything else; removing a
	// ticker from inside its own callback is supported.
	d.rt.Machine().RemoveTicker(d.pendingID)
	d.pendingID = -1
	if d.stopped.Load() {
		return
	}
	d.applyNow(d.pendingOn)
}

// cancelPending discards an in-flight delayed actuation.
func (d *Daemon) cancelPending() {
	if d.pendingID >= 0 {
		d.rt.Machine().RemoveTicker(d.pendingID)
		d.pendingID = -1
	}
}

// applyNow actuates the configured mechanism immediately.
func (d *Daemon) applyNow(on bool) {
	d.applied = on
	switch d.cfg.Mechanism {
	case ScaleFrequency:
		if on {
			d.setFrequency(d.cfg.FrequencyGear)
		} else {
			d.setFrequency(1)
		}
	default:
		d.rt.SetThrottle(on, d.cfg.ThrottleLimit)
	}
}

// setFrequency requests the gear on every socket.
func (d *Daemon) setFrequency(scale float64) {
	m := d.rt.Machine()
	for s := 0; s < m.Config().Sockets; s++ {
		if err := m.RequestFrequencyScale(s, scale); err != nil {
			// Socket indices come from the machine's own config; a
			// failure here is a programming error.
			panic(err)
		}
	}
}
