// Package maestro implements the paper's automatic dynamic concurrency
// throttling (§IV): a user-level daemon wakes every 0.1 s of (virtual)
// time, reads socket power and memory concurrency from the RCR
// blackboard, classifies each as High, Medium or Low against calibrated
// thresholds, and toggles the runtime's throttle flag:
//
//   - both metrics High on some socket  → activate throttling
//   - both metrics Low on every socket  → deactivate throttling
//   - anything in the Medium band       → hold (hysteresis guard)
//
// When throttling is active, the qthreads scheduler parks workers beyond
// a shepherd-local limit in a duty-cycle-throttled spin loop; see
// package qthreads.
package maestro

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/machine"
	"repro/internal/qthreads"
	"repro/internal/rcr"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Level is a classified metric reading.
type Level int

// Classification levels.
const (
	Low Level = iota
	Medium
	High
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case Low:
		return "Low"
	case Medium:
		return "Medium"
	case High:
		return "High"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Classify buckets a value against a low and high threshold: Low on the
// closed interval (-inf, low], High on the closed interval [high, +inf),
// Medium strictly between. The Medium band is the hysteresis guard of
// §IV-A: it neither engages nor releases throttling, avoiding
// oscillation when a metric hovers near a threshold.
//
// Boundary semantics are deliberate and fail toward *not* throttling:
// the Low test wins over the High test, so the degenerate low == high
// config (which Thresholds.Validate rejects, but Classify must still be
// total for callers with their own validation) classifies the shared
// boundary value Low rather than High — the band collapses toward
// release, never toward engagement. NaN never classifies High or Low:
// all its comparisons are false, so it lands in Medium and holds the
// current state rather than acting on garbage.
func Classify(v, low, high float64) Level {
	switch {
	case v <= low:
		return Low
	case v >= high:
		return High
	default:
		return Medium
	}
}

// Thresholds hold the per-socket classification boundaries.
type Thresholds struct {
	// Power boundaries per socket. The paper picks 75 W per socket as
	// High (few applications exceed 150 W node-wide for their entire
	// execution) and 50 W as Low (almost all applications exceed 100 W
	// node-wide while running). Our power model's socket figures run
	// about 10 W below the paper's machine at equivalent load, so the
	// calibrated defaults are 65/45 — chosen, like the paper's, so that
	// exactly the poorly-scaling high-power programs (lulesh, dijkstra,
	// health, strassen) classify High and the well-scaling ones do not.
	HighPower, LowPower units.Watts
	// Memory-concurrency boundaries in outstanding references. The paper
	// sets High at 75% and Low at 25% of the socket's effective maximum
	// (the knee of Mandel et al.'s model).
	HighConcurrency, LowConcurrency float64
}

// DefaultThresholds derives the paper-equivalent thresholds for a machine
// configuration.
func DefaultThresholds(mem machine.MemParams) Thresholds {
	knee := float64(mem.KneeRefs)
	return Thresholds{
		HighPower:       65,
		LowPower:        45,
		HighConcurrency: 0.75 * knee,
		LowConcurrency:  0.25 * knee,
	}
}

// Validate reports the first problem with the thresholds: inverted or
// degenerate (low >= high) bands, non-positive power bounds, and NaN
// anywhere. NaN needs an explicit check because every comparison
// against it is false — a NaN threshold would otherwise sail through
// the ordering checks and silently disable a classification band.
func (th Thresholds) Validate() error {
	for _, v := range [...]float64{
		float64(th.LowPower), float64(th.HighPower),
		th.LowConcurrency, th.HighConcurrency,
	} {
		if math.IsNaN(v) {
			return fmt.Errorf("maestro: thresholds %+v contain NaN", th)
		}
	}
	if th.LowPower <= 0 || th.HighPower <= th.LowPower {
		return fmt.Errorf("maestro: power thresholds %v/%v must satisfy 0 < low < high", th.LowPower, th.HighPower)
	}
	if th.LowConcurrency < 0 || th.HighConcurrency <= th.LowConcurrency {
		return fmt.Errorf("maestro: concurrency thresholds %g/%g must satisfy 0 <= low < high", th.LowConcurrency, th.HighConcurrency)
	}
	return nil
}

// Decision is the daemon's per-sample output.
type Decision int

// Decisions.
const (
	Hold Decision = iota
	Enable
	Disable
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case Hold:
		return "Hold"
	case Enable:
		return "Enable"
	case Disable:
		return "Disable"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Decide applies the dual-condition policy to per-socket readings: Enable
// if any socket has both power and concurrency High; Disable if every
// socket has both Low; Hold otherwise.
func (th Thresholds) Decide(power []units.Watts, conc []float64) Decision {
	if len(power) == 0 || len(power) != len(conc) {
		return Hold
	}
	allLow := true
	for i := range power {
		p := Classify(float64(power[i]), float64(th.LowPower), float64(th.HighPower))
		c := Classify(conc[i], th.LowConcurrency, th.HighConcurrency)
		if p == High && c == High {
			return Enable
		}
		if p != Low || c != Low {
			allLow = false
		}
	}
	if allLow {
		return Disable
	}
	return Hold
}

// Mechanism selects how the daemon reduces power when its policy says
// High.
type Mechanism int

// Mechanisms.
const (
	// ThrottleConcurrency parks surplus workers in duty-cycle-throttled
	// spin loops — the paper's mechanism: per-core and fast.
	ThrottleConcurrency Mechanism = iota
	// ScaleFrequency lowers the whole socket's clock instead (DVFS), the
	// mechanism most prior work uses. The paper argues against it (§IV:
	// it affects all cores and transitions are slow); it is implemented
	// here so the two can be compared (experiments.MechanismAblation).
	ScaleFrequency
)

// String returns the mechanism name.
func (mech Mechanism) String() string {
	switch mech {
	case ThrottleConcurrency:
		return "throttle-concurrency"
	case ScaleFrequency:
		return "scale-frequency"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(mech))
	}
}

// Policy selects which metrics gate the mechanism.
type Policy int

// Policies.
const (
	// DualCondition requires both power and memory concurrency High —
	// the paper's policy (§IV-A).
	DualCondition Policy = iota
	// PowerOnly gates on power alone. The paper rejects it: "it often
	// limits thread count for programs running at high efficiency and
	// increased overall energy consumption". Kept for the ablation.
	PowerOnly
	// Adaptive goes beyond the static classifier: an online phase
	// detector plus a per-phase hill-climbed speedup/power model picks
	// the energy-optimal operating point (thread count × DVFS gear) per
	// workload phase. See adaptive.go and docs/DESIGN.md §Adaptive.
	Adaptive
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case DualCondition:
		return "dual-condition"
	case PowerOnly:
		return "power-only"
	case Adaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config tunes the daemon.
type Config struct {
	// Period between polls; the paper uses 0.1 s, chosen to let energy
	// counter fluctuations dissipate, and notes it is adjustable to trade
	// overhead against responsiveness.
	Period time.Duration
	// Thresholds for classification. Zero value selects
	// DefaultThresholds for the runtime's machine.
	Thresholds Thresholds
	// ThrottleLimit is the shepherd-local active-worker limit applied
	// while throttled. Zero selects 3/4 of the cores per socket (12 of
	// 16 on the paper's machine, matching its 12-thread comparisons).
	ThrottleLimit int
	// Mechanism selects concurrency throttling (default, the paper's
	// choice) or socket-wide frequency scaling.
	Mechanism Mechanism
	// Policy selects the gating condition (default: the paper's dual
	// condition). Adaptive routes decisions through a Decider (the
	// default adaptive controller unless Decider overrides it).
	Policy Policy
	// Decider, when non-nil, supplies a custom policy implementation
	// consulted on every healthy poll in place of the static
	// classifier. The staleness watchdog, fail-safe latch and
	// actuation reconciliation stay daemon-owned: no Decider can act
	// on stale data or keep the machine throttled through an outage.
	// Most callers set Policy instead; this seam exists for registered
	// third-party policies (see RegisterPolicy).
	Decider DeciderFactory
	// FrequencyGear is the DVFS scale applied while ScaleFrequency is
	// engaged; zero selects 0.6.
	FrequencyGear float64
	// StalenessHorizon bounds how old the blackboard inputs behind a
	// decision may be. When any input meter is older (or missing), the
	// daemon refuses to classify, releases any active throttle, and
	// enters fail-safe until the sensors look healthy again — it never
	// leaves threads parked on the word of a dead or frozen sampler.
	// Zero selects 3× Period; negative disables the watchdog.
	StalenessHorizon time.Duration
	// RecoveryPolls is how many consecutive fresh polls the daemon
	// requires before leaving fail-safe and classifying again (debounce
	// against a sampler that flaps). Zero selects 2.
	RecoveryPolls int
	// ActuationHook, when non-nil, intercepts mechanism actuation: it
	// may return a delay to defer the actuation by (the daemon's control
	// thread is busy for that long and misses overlapped polls, though
	// its cadence stays on the absolute Period grid) and drop=true to
	// lose the actuation entirely. The daemon treats actuation as
	// desired-state reconciliation — a dropped or delayed actuation is
	// retried every poll until the applied state matches the desired
	// one — so this is a fault-injection seam (internal/faults), not a
	// correctness risk. Fail-safe releases bypass it: they flip the
	// runtime's lock-free throttle flag directly.
	ActuationHook func(now time.Duration, engage bool) (delay time.Duration, drop bool)
	// Telemetry, when non-nil, receives the daemon's maestro_* counters,
	// gauges and staleness histogram (see docs/observability.md for the
	// catalog). The poll path records through pre-registered instruments
	// only, so enabling telemetry adds no allocation.
	Telemetry *telemetry.Registry
	// Journal, when non-nil, receives one telemetry.Decision per poll —
	// the full classification trace (inputs, levels, thresholds,
	// outcome) behind every throttle flip.
	Journal *telemetry.Journal
}

// DefaultPeriod is the paper's daemon wake interval.
const DefaultPeriod = 100 * time.Millisecond

// Daemon is a running throttling controller. Create with Start; it polls
// until Stop.
type Daemon struct {
	rt       *qthreads.Runtime
	bb       *rcr.Blackboard
	cfg      Config
	tickerID int

	// Engine-goroutine control state (poll and firePending callbacks
	// only). desired is the operating point the policy wants; applied
	// is what has actually been actuated — they diverge while an
	// actuation is delayed or after one is dropped, and every poll
	// reconciles applied toward desired. engaged caches
	// desired != fullPoint (the "is any mechanism active" view the
	// stats, metrics and journal expose).
	desired OperatingPoint
	applied OperatingPoint
	engaged bool
	// fullPoint is the released state: throttle off at the configured
	// limit, full clock. engagedPoint is the static policies' single
	// throttled state (the Adaptive policy picks its own points).
	fullPoint    OperatingPoint
	engagedPoint OperatingPoint
	// decider is non-nil for Adaptive/custom policies; phaseFn exposes
	// its current phase id when it has one.
	decider Decider
	phaseFn func() int
	// maxLimit is the hardware bound on a per-shepherd worker limit.
	maxLimit int
	// failsafe is the watchdog latch: while set, classification is
	// suspended and the throttle is released. freshPolls counts
	// consecutive healthy polls toward recovery.
	failsafe   bool
	freshPolls int
	// horizon is the resolved staleness bound (0 = watchdog disabled).
	horizon time.Duration
	// busyUntil marks the end of an in-flight delayed actuation; polls
	// landing inside the window are missed (the control thread is busy),
	// but the ticker keeps the absolute-deadline grid, so cadence holds.
	busyUntil time.Duration
	// pendingID tracks the one-shot ticker of a delayed actuation (-1
	// when none). The pending actuation carries no payload: when it
	// fires it applies whatever is desired *then*, so a policy that
	// moves while an actuation is in flight is never overwritten by a
	// stale snapshot (see reconcile).
	pendingID int

	failsafeA       atomic.Bool
	stopped         atomic.Bool
	faultsSeen      atomic.Uint64
	failsafeEntries atomic.Uint64
	recoveries      atomic.Uint64
	missedPolls     atomic.Uint64

	// met and journal are fixed at Start. The scratch slices below are
	// reused every poll (engine goroutine only) so classification and
	// journaling never allocate on the hot path.
	met     *daemonMetrics
	journal *telemetry.Journal
	power   []units.Watts
	conc    []float64
	powerF  []float64
	concF   []float64
	membwF  []float64
	powerLv []int8
	concLv  []int8

	activations   atomic.Uint64
	deactivations atomic.Uint64
	opChanges     atomic.Uint64
	samples       atomic.Uint64
	throttledTime atomic.Int64 // ns spent with throttling active
	lastSample    atomic.Int64 // ns timestamp of previous sample
}

// Start launches the daemon on the runtime's machine.
func Start(rt *qthreads.Runtime, bb *rcr.Blackboard, cfg Config) (*Daemon, error) {
	if rt == nil || bb == nil {
		return nil, errors.New("maestro: runtime and blackboard are required")
	}
	mcfg := rt.Machine().Config()
	if cfg.Period <= 0 {
		cfg.Period = DefaultPeriod
	}
	if (cfg.Thresholds == Thresholds{}) {
		cfg.Thresholds = DefaultThresholds(mcfg.Mem)
	}
	if err := cfg.Thresholds.Validate(); err != nil {
		return nil, err
	}
	if cfg.ThrottleLimit <= 0 {
		cfg.ThrottleLimit = mcfg.CoresPerSocket * 3 / 4
		if cfg.ThrottleLimit < 1 {
			cfg.ThrottleLimit = 1
		}
	}
	if cfg.FrequencyGear <= 0 || cfg.FrequencyGear > 1 {
		cfg.FrequencyGear = 0.6
	}
	if cfg.RecoveryPolls <= 0 {
		cfg.RecoveryPolls = 2
	}
	if cfg.Decider == nil && cfg.Policy == Adaptive {
		cfg.Decider = NewAdaptiveDecider(AdaptiveConfig{})
	}
	d := &Daemon{rt: rt, bb: bb, cfg: cfg, journal: cfg.Journal, pendingID: -1}
	d.maxLimit = mcfg.CoresPerSocket
	if d.maxLimit < 1 {
		d.maxLimit = 1
	}
	d.fullPoint = OperatingPoint{Throttled: false, Limit: cfg.ThrottleLimit, FreqScale: 1}
	if cfg.Mechanism == ScaleFrequency {
		d.engagedPoint = OperatingPoint{Throttled: false, Limit: cfg.ThrottleLimit, FreqScale: cfg.FrequencyGear}
	} else {
		d.engagedPoint = OperatingPoint{Throttled: true, Limit: cfg.ThrottleLimit, FreqScale: 1}
	}
	d.desired, d.applied = d.fullPoint, d.fullPoint
	if cfg.Decider != nil {
		dec, err := cfg.Decider(PolicyEnv{
			Machine:       mcfg,
			Thresholds:    cfg.Thresholds,
			Period:        cfg.Period,
			ThrottleLimit: cfg.ThrottleLimit,
			FrequencyGear: cfg.FrequencyGear,
			Telemetry:     cfg.Telemetry,
			Journal:       cfg.Journal,
		})
		if err != nil {
			return nil, err
		}
		if dec == nil {
			return nil, errors.New("maestro: Decider factory returned nil")
		}
		d.decider = dec
		if p, ok := dec.(interface{ Phase() int }); ok {
			d.phaseFn = p.Phase
		}
	}
	switch {
	case cfg.StalenessHorizon == 0:
		d.horizon = 3 * cfg.Period
	case cfg.StalenessHorizon > 0:
		d.horizon = cfg.StalenessHorizon
	}
	if cfg.Telemetry != nil {
		d.met = newDaemonMetrics(cfg.Telemetry)
	}
	nSock := bb.Sockets()
	d.power = make([]units.Watts, 0, nSock)
	d.conc = make([]float64, 0, nSock)
	d.powerF = make([]float64, 0, nSock)
	d.concF = make([]float64, 0, nSock)
	d.membwF = make([]float64, 0, nSock)
	d.powerLv = make([]int8, 0, nSock)
	d.concLv = make([]int8, 0, nSock)
	id, err := rt.Machine().AddTicker(cfg.Period, d.poll)
	if err != nil {
		return nil, err
	}
	d.tickerID = id
	return d, nil
}

// Stop halts the daemon and releases any active throttle or frequency
// reduction. A delayed actuation still in flight is neutralized: its
// one-shot callback observes the stopped flag and applies nothing.
func (d *Daemon) Stop() {
	d.stopped.Store(true)
	d.rt.Machine().RemoveTicker(d.tickerID)
	d.rt.SetThrottle(false, d.cfg.ThrottleLimit)
	// decider is written once before Start returns, so this read is
	// safe from the stopping goroutine. A Decider may have engaged
	// either mechanism, so both are released.
	if d.cfg.Mechanism == ScaleFrequency || d.decider != nil {
		d.setFrequency(1)
	}
}

// Config returns the daemon configuration (with defaults applied).
func (d *Daemon) Config() Config { return d.cfg }

// Stats describe the daemon's activity so far.
type Stats struct {
	Samples       uint64
	Activations   uint64
	Deactivations uint64
	// OpChanges counts every desired operating-point move a Decider
	// policy made, including retunes between two throttled points that
	// the activation/deactivation counters cannot see.
	OpChanges     uint64
	ThrottledTime time.Duration
	// Fail-safe accounting: sensor faults observed, fail-safe windows
	// entered, recoveries back to normal operation, polls missed while
	// an actuation stalled the control thread, and whether fail-safe is
	// active right now.
	FaultsSeen      uint64
	FailsafeEntries uint64
	Recoveries      uint64
	MissedPolls     uint64
	Failsafe        bool
}

// Stats returns a snapshot of the daemon counters.
func (d *Daemon) Stats() Stats {
	return Stats{
		Samples:         d.samples.Load(),
		Activations:     d.activations.Load(),
		Deactivations:   d.deactivations.Load(),
		OpChanges:       d.opChanges.Load(),
		ThrottledTime:   time.Duration(d.throttledTime.Load()),
		FaultsSeen:      d.faultsSeen.Load(),
		FailsafeEntries: d.failsafeEntries.Load(),
		Recoveries:      d.recoveries.Load(),
		MissedPolls:     d.missedPolls.Load(),
		Failsafe:        d.failsafeA.Load(),
	}
}

// Failsafe reports whether the staleness watchdog currently holds the
// daemon in fail-safe (throttle released, classification suspended).
func (d *Daemon) Failsafe() bool { return d.failsafeA.Load() }

// Horizon returns the resolved staleness bound of the watchdog (0 when
// it is disabled). External feeders — a resilience.Client mirroring a
// remote daemon's meters into the local blackboard — size their own
// cache horizons off this, so the two staleness policies cannot drift
// apart. The field is set once at Start and never written again, so the
// read is safe from any goroutine.
func (d *Daemon) Horizon() time.Duration { return d.horizon }

// poll runs on the machine's engine goroutine every Period. It reads the
// blackboard (never the machine) and flips the runtime's throttle flag
// through atomics only.
//
// The machine re-arms tickers against absolute deadlines (next += period,
// never now + period), so however long a poll or an injected actuation
// delay takes, the daemon's cadence stays on the k×Period grid — polls
// overlapping a busy window are missed, not shifted.
func (d *Daemon) poll(now time.Duration, _ *machine.Snapshot) {
	if d.stopped.Load() {
		return
	}
	d.samples.Add(1)
	met := d.met
	if met != nil {
		met.polls.Inc()
	}
	if prev := d.lastSample.Swap(int64(now)); prev != 0 && d.engaged {
		d.throttledTime.Add(int64(now) - prev)
	}
	if now < d.busyUntil {
		// The control thread is still inside a delayed actuation.
		d.missedPolls.Add(1)
		if met != nil {
			met.missedPolls.Inc()
		}
		return
	}
	// Per-socket reads are lock-free seqlock loads: the poll never
	// contends with the sampler's writes, so classification latency is
	// independent of write traffic.
	nSock := d.bb.Sockets()
	d.power, d.conc = d.power[:0], d.conc[:0]
	staleness := time.Duration(0)
	missing := false
	for s := 0; s < nSock; s++ {
		p, okP := d.bb.Socket(s, rcr.MeterPower)
		c, okC := d.bb.Socket(s, rcr.MeterMemConcurrency)
		if !okP || !okC {
			if met != nil {
				met.incomplete.Inc()
			}
			missing = true
			break
		}
		if age := now - p.Updated; age > staleness {
			staleness = age
		}
		if age := now - c.Updated; age > staleness {
			staleness = age
		}
		d.power = append(d.power, units.Watts(p.Value))
		if d.cfg.Policy == PowerOnly {
			// Power-only ablation: pretend concurrency is always High so
			// only the power classification gates the decision.
			d.conc = append(d.conc, d.cfg.Thresholds.HighConcurrency)
		} else {
			d.conc = append(d.conc, c.Value)
		}
	}
	if d.horizon > 0 && (missing || staleness > d.horizon) {
		// Watchdog: the sensors are dead, frozen or lagging beyond the
		// horizon. Never classify — and never stay throttled — on their
		// word.
		d.noteFault(now, staleness, missing)
		return
	}
	if missing {
		return // watchdog disabled: hold, as before
	}
	if d.failsafe {
		d.freshPolls++
		if d.freshPolls < d.cfg.RecoveryPolls {
			return // still debouncing; keep fail-safe
		}
		d.failsafe = false
		d.failsafeA.Store(false)
		d.recoveries.Add(1)
		if met != nil {
			met.recovered.Inc()
			met.failsafeG.Set(0)
		}
		d.recordEvent(now, telemetry.KindRecovered, "fresh", staleness)
		// This poll's data is fresh; fall through and classify it.
	}
	// Classify once per socket and derive the decision from the levels —
	// the same dual-condition rule as Thresholds.Decide, with the levels
	// retained for counters and the decision journal.
	th := d.cfg.Thresholds
	d.powerLv, d.concLv = d.powerLv[:0], d.concLv[:0]
	anyBothHigh, allLow := false, true
	for i := range d.power {
		pl := Classify(float64(d.power[i]), float64(th.LowPower), float64(th.HighPower))
		cl := Classify(d.conc[i], th.LowConcurrency, th.HighConcurrency)
		d.powerLv = append(d.powerLv, int8(pl))
		d.concLv = append(d.concLv, int8(cl))
		if met != nil {
			met.powerLevel[pl].Inc()
			met.concLevel[cl].Inc()
		}
		if pl == High && cl == High {
			anyBothHigh = true
		}
		if pl != Low || cl != Low {
			allLow = false
		}
	}
	var outcome string
	if d.decider != nil {
		outcome = d.decideAdaptive(now, staleness, nSock)
	} else {
		dec := Hold
		switch {
		case anyBothHigh:
			dec = Enable
		case allLow:
			dec = Disable
		}
		outcome = "hold"
		switch dec {
		case Enable:
			outcome = "enable"
			if met != nil {
				met.decEnable.Inc()
			}
			d.setDesired(now, d.engagedPoint, staleness)
		case Disable:
			outcome = "disable"
			if met != nil {
				met.decDisable.Inc()
			}
			d.setDesired(now, d.fullPoint, staleness)
		default:
			// Hysteresis band: leave the mechanism as-is.
			if met != nil {
				met.decHold.Inc()
			}
		}
	}
	d.reconcile(now)
	if met != nil {
		if d.engaged {
			met.engaged.Set(1)
		} else {
			met.engaged.Set(0)
		}
		if now > 0 {
			met.duty.Set(float64(d.throttledTime.Load()) / float64(now))
		}
		met.staleness.Observe(float64(staleness))
	}
	if d.journal != nil {
		d.powerF, d.concF, d.membwF = d.powerF[:0], d.concF[:0], d.membwF[:0]
		for s := 0; s < nSock; s++ {
			bw, _ := d.bb.Socket(s, rcr.MeterMemBandwidth)
			d.membwF = append(d.membwF, bw.Value)
			d.powerF = append(d.powerF, float64(d.power[s]))
			d.concF = append(d.concF, d.conc[s])
		}
		d.journal.Record(telemetry.Decision{
			T:       now,
			Power:   d.powerF,
			Conc:    d.concF,
			Membw:   d.membwF,
			PowerLv: d.powerLv,
			ConcLv:  d.concLv,
			Thresholds: [4]float64{
				float64(th.LowPower), float64(th.HighPower),
				th.LowConcurrency, th.HighConcurrency,
			},
			Outcome:   outcome,
			Engaged:   d.engaged,
			Limit:     d.desired.Limit,
			Freq:      d.desired.FreqScale,
			Phase:     d.phase(),
			Staleness: staleness,
		})
	}
}

// setDesired records a new desired operating point, maintaining the
// engaged view and (for Decider policies) the operating_point_changed
// journal trail. Static policies move only between fullPoint and
// engagedPoint, so their journal output is unchanged from before the
// Decider seam existed.
func (d *Daemon) setDesired(now time.Duration, pt OperatingPoint, staleness time.Duration) {
	if pt == d.desired {
		return
	}
	d.desired = pt
	eng := pt != d.fullPoint
	if eng != d.engaged {
		d.engaged = eng
		if eng {
			d.activations.Add(1)
		} else {
			d.deactivations.Add(1)
		}
		if d.met != nil {
			d.met.transitions.Inc()
		}
	}
	if d.decider == nil {
		return
	}
	d.opChanges.Add(1)
	if d.met != nil {
		d.met.phaseOpChanges.Inc()
	}
	if d.journal != nil {
		d.journal.Record(telemetry.Decision{
			T:         now,
			Kind:      telemetry.KindOperatingPointChanged,
			Engaged:   d.engaged,
			Limit:     pt.Limit,
			Freq:      pt.FreqScale,
			Phase:     d.phase(),
			Staleness: staleness,
		})
	}
}

// decideAdaptive routes one healthy poll's readings through the
// Decider. The daemon still owns clamping (a Decider cannot exceed the
// hardware's limits or emit NaN gears), the engaged bookkeeping, and
// actuation; the Decider only picks the point.
func (d *Daemon) decideAdaptive(now, staleness time.Duration, nSock int) string {
	d.powerF, d.concF, d.membwF = d.powerF[:0], d.concF[:0], d.membwF[:0]
	for s := 0; s < nSock; s++ {
		bw, _ := d.bb.Socket(s, rcr.MeterMemBandwidth)
		d.membwF = append(d.membwF, bw.Value)
		d.powerF = append(d.powerF, float64(d.power[s]))
		d.concF = append(d.concF, d.conc[s])
	}
	pt := d.clampPoint(d.decider.Decide(PolicyInput{
		Now:       now,
		Power:     d.powerF,
		Conc:      d.concF,
		Membw:     d.membwF,
		PowerLv:   d.powerLv,
		ConcLv:    d.concLv,
		Current:   d.desired,
		Staleness: staleness,
	}))
	outcome := "hold"
	switch {
	case pt == d.desired:
		if d.met != nil {
			d.met.decHold.Inc()
		}
	case pt == d.fullPoint:
		outcome = "disable"
		if d.met != nil {
			d.met.decDisable.Inc()
		}
	case d.desired == d.fullPoint:
		outcome = "enable"
		if d.met != nil {
			d.met.decEnable.Inc()
		}
	default:
		// A move between two throttled points.
		outcome = "retune"
	}
	d.setDesired(now, pt, staleness)
	return outcome
}

// clampPoint bounds a Decider's output to what the hardware can do.
// Non-finite or out-of-range gears fall back to full clock (fail toward
// speed, never toward an unbounded throttle).
func (d *Daemon) clampPoint(pt OperatingPoint) OperatingPoint {
	if !(pt.FreqScale > 0 && pt.FreqScale <= 1) { // NaN lands here too
		pt.FreqScale = 1
	}
	if pt.Throttled {
		if pt.Limit < 1 {
			pt.Limit = 1
		}
		if pt.Limit > d.maxLimit {
			pt.Limit = d.maxLimit
		}
	} else {
		// Released points are normalized so there is exactly one
		// representation of "not throttled" to compare against.
		pt.Limit = d.cfg.ThrottleLimit
	}
	return pt
}

// phase is the Decider's current phase id (0 for static policies).
func (d *Daemon) phase() int {
	if d.phaseFn != nil {
		return d.phaseFn()
	}
	return 0
}

// noteFault handles a poll whose inputs are missing or older than the
// staleness horizon: record the fault, enter fail-safe (releasing any
// active throttle immediately and directly — the release is a lock-free
// flag flip that no injected actuation fault can lose), and keep
// re-asserting the release while the outage lasts.
func (d *Daemon) noteFault(now, staleness time.Duration, missing bool) {
	d.faultsSeen.Add(1)
	d.freshPolls = 0
	met := d.met
	if met != nil {
		met.faultDetected.Inc()
		met.stalePolls.Inc()
	}
	detail := "stale"
	if missing {
		detail = "missing"
	}
	if !d.failsafe {
		d.recordEvent(now, telemetry.KindFaultDetected, detail, staleness)
		d.failsafe = true
		d.failsafeA.Store(true)
		d.failsafeEntries.Add(1)
		if met != nil {
			met.failsafeEntered.Inc()
			met.failsafeG.Set(1)
		}
		d.desired = d.fullPoint
		if d.engaged {
			d.engaged = false
			d.deactivations.Add(1)
			if met != nil {
				met.transitions.Inc()
			}
		}
		d.cancelPending()
		d.forceRelease()
		if d.decider != nil {
			// The Decider's model was fed by the sensors that just went
			// dark; whatever it learned during the outage window is not
			// trustworthy. Reset so recovery restarts exploration from
			// scratch rather than resuming a possibly-poisoned climb.
			d.decider.Reset(now)
		}
		d.recordEvent(now, telemetry.KindFailsafeEntered, detail, staleness)
		return
	}
	// Already in fail-safe: keep asserting the release in case a
	// concurrent fault path flipped the mechanism back.
	if d.applied != d.fullPoint {
		d.forceRelease()
	}
}

// recordEvent journals one fail-safe transition record.
func (d *Daemon) recordEvent(now time.Duration, kind, detail string, staleness time.Duration) {
	if d.journal == nil {
		return
	}
	d.journal.Record(telemetry.Decision{
		T:         now,
		Kind:      kind,
		Detail:    detail,
		Engaged:   d.engaged,
		Limit:     d.cfg.ThrottleLimit,
		Staleness: staleness,
	})
}

// reconcile drives the applied operating point toward the desired one.
// With no ActuationHook this is a direct call; with one, the actuation
// may be deferred (a one-shot ticker applies it later while overlapped
// polls are missed) or dropped (nothing happens now — the next poll
// finds applied != desired and retries).
func (d *Daemon) reconcile(now time.Duration) {
	if d.pendingID >= 0 {
		// An actuation is already in flight. It carries no payload —
		// firePending applies whatever is desired when it fires — so a
		// desired-state change needs no new hook invocation here.
		// Cancelling and re-issuing instead would invoke the hook a
		// second time and re-anchor the busy window at this decision's
		// timestamp (busyUntil = now + delay), dragging subsequent
		// actuations off the absolute k×Period grid every time a policy
		// moved mid-flight.
		return
	}
	if d.applied == d.desired {
		return
	}
	engage := d.desired != d.fullPoint
	if h := d.cfg.ActuationHook; h != nil {
		delay, drop := h(now, engage)
		if drop {
			if d.met != nil {
				d.met.actDropped.Inc()
			}
			return
		}
		if delay > 0 {
			if d.met != nil {
				d.met.actDelayed.Inc()
			}
			d.busyUntil = now + delay
			if id, err := d.rt.Machine().AddTicker(delay, d.firePending); err == nil {
				d.pendingID = id
			}
			return
		}
	}
	d.applyNow(d.desired)
}

// firePending is the one-shot completion of a delayed actuation. It runs
// on the engine goroutine, like poll, so no extra synchronization is
// needed.
func (d *Daemon) firePending(time.Duration, *machine.Snapshot) {
	// Make the periodic ticker one-shot before anything else; removing a
	// ticker from inside its own callback is supported.
	d.rt.Machine().RemoveTicker(d.pendingID)
	d.pendingID = -1
	if d.stopped.Load() {
		return
	}
	// Apply the operating point desired *now*, not the one desired when
	// the delay began: if the policy moved while the actuation was in
	// flight, a stale captured point must not overwrite the newer
	// decision.
	d.applyNow(d.desired)
}

// cancelPending discards an in-flight delayed actuation and its busy
// window — a cancelled actuation no longer occupies the control thread,
// so a stale window must not keep eating subsequent polls.
func (d *Daemon) cancelPending() {
	if d.pendingID >= 0 {
		d.rt.Machine().RemoveTicker(d.pendingID)
		d.pendingID = -1
	}
	d.busyUntil = 0
}

// applyNow actuates an operating point immediately, touching only the
// mechanisms that changed: a concurrency-only policy never issues a
// DVFS request and a DVFS-only policy never flips the throttle flag.
func (d *Daemon) applyNow(pt OperatingPoint) {
	prev := d.applied
	d.applied = pt
	if pt.Throttled != prev.Throttled || (pt.Throttled && pt.Limit != prev.Limit) {
		d.rt.SetThrottle(pt.Throttled, pt.Limit)
	}
	if pt.FreqScale != prev.FreqScale {
		d.setFrequency(pt.FreqScale)
	}
}

// forceRelease unconditionally re-asserts the released state through
// the mechanism the active policy can have engaged, bypassing the
// change-detection in applyNow — the fail-safe path must work even if
// some fault desynchronized the bookkeeping from the hardware.
func (d *Daemon) forceRelease() {
	d.applied = d.fullPoint
	switch {
	case d.decider != nil:
		d.rt.SetThrottle(false, d.cfg.ThrottleLimit)
		d.setFrequency(1)
	case d.cfg.Mechanism == ScaleFrequency:
		d.setFrequency(1)
	default:
		d.rt.SetThrottle(false, d.cfg.ThrottleLimit)
	}
}

// setFrequency requests the gear on every socket.
func (d *Daemon) setFrequency(scale float64) {
	m := d.rt.Machine()
	for s := 0; s < m.Config().Sockets; s++ {
		if err := m.RequestFrequencyScale(s, scale); err != nil {
			// Socket indices come from the machine's own config; a
			// failure here is a programming error.
			panic(err)
		}
	}
}
