package qthreads

import "sync/atomic"

// FEB is a full/empty-bit synchronized word, the Qthreads primitive for
// producer/consumer synchronization (paper §III: "potentially blocking
// full/empty bit (FEB) operations"). A cell is created empty; writers fill
// it, readers drain it, and blocked parties spin on the simulated core
// (costing spin power, as on the real runtime).
type FEB struct {
	// state: 0 = empty, 1 = full, 2 = transient (owner mutating value).
	state atomic.Int32
	value atomic.Uint64
}

const (
	febEmpty int32 = iota
	febFull
	febBusy
)

// NewFEB returns an empty cell.
func NewFEB() *FEB { return &FEB{} }

// Full reports whether the cell currently holds a value.
func (f *FEB) Full() bool { return f.state.Load() == febFull }

// WriteEF waits for the cell to be empty, then writes v and marks it
// full ("write empty→full").
func (f *FEB) WriteEF(tc *TC, v uint64) {
	for {
		if f.state.CompareAndSwap(febEmpty, febBusy) {
			f.value.Store(v)
			f.state.Store(febFull)
			return
		}
		tc.w.ctx.SpinUntil(func() bool { return f.state.Load() == febEmpty || tc.w.rt.shutdown.Load() })
		if tc.w.rt.shutdown.Load() {
			return
		}
	}
}

// WriteF writes v and marks the cell full regardless of its prior state,
// waiting only for a concurrent transient operation to finish.
func (f *FEB) WriteF(tc *TC, v uint64) {
	for {
		s := f.state.Load()
		if s != febBusy && f.state.CompareAndSwap(s, febBusy) {
			f.value.Store(v)
			f.state.Store(febFull)
			return
		}
		tc.w.ctx.SpinUntil(func() bool { return f.state.Load() != febBusy || tc.w.rt.shutdown.Load() })
		if tc.w.rt.shutdown.Load() {
			return
		}
	}
}

// ReadFE waits for the cell to be full, then takes the value and marks it
// empty ("read full→empty").
func (f *FEB) ReadFE(tc *TC) uint64 {
	for {
		if f.state.CompareAndSwap(febFull, febBusy) {
			v := f.value.Load()
			f.state.Store(febEmpty)
			return v
		}
		tc.w.ctx.SpinUntil(func() bool { return f.state.Load() == febFull || tc.w.rt.shutdown.Load() })
		if tc.w.rt.shutdown.Load() {
			return 0
		}
	}
}

// ReadFF waits for the cell to be full and reads it without emptying
// ("read full→full").
func (f *FEB) ReadFF(tc *TC) uint64 {
	for {
		if f.state.Load() == febFull {
			return f.value.Load()
		}
		tc.w.ctx.SpinUntil(func() bool { return f.state.Load() == febFull || tc.w.rt.shutdown.Load() })
		if tc.w.rt.shutdown.Load() {
			return 0
		}
	}
}
