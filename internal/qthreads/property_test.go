package qthreads

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/machine"
)

// TestRandomTaskDAGsComputeCorrectSums spawns randomized task trees and
// checks that joins always see every child's contribution — the core
// correctness property of spawn/sync under stealing.
func TestRandomTaskDAGsComputeCorrectSums(t *testing.T) {
	cfg := machine.M620()
	cfg.VirtualTimeLimit = 30 * time.Minute
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	rt, err := New(m, Config{Workers: 16, SpawnCost: 50, DequeueCost: 20, StealCost: 80})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := 2 + rng.Intn(4)
		fanout := 1 + rng.Intn(4)
		// The expected sum is the number of nodes in the full tree.
		want := int64(0)
		nodes := int64(1)
		for d := 0; d <= depth; d++ {
			want += nodes
			nodes *= int64(fanout)
		}
		// Draw every node's compute cost up front: tasks run on multiple
		// worker goroutines and math/rand.Rand is not safe for concurrent
		// use.
		costs := make([]float64, want)
		for i := range costs {
			costs[i] = float64(1 + rng.Intn(5000))
		}
		var got atomic.Int64
		var build func(tc *TC, d int)
		build = func(tc *TC, d int) {
			tc.Compute(costs[got.Add(1)-1])
			if d == depth {
				return
			}
			for c := 0; c < fanout; c++ {
				tc.Spawn(func(tc *TC) { build(tc, d+1) })
			}
			tc.Sync()
		}
		if err := rt.Run(func(tc *TC) { build(tc, 0) }); err != nil {
			t.Log(err)
			return false
		}
		if got.Load() != want {
			t.Logf("seed %d: visited %d nodes, want %d", seed, got.Load(), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestParallelForRandomShapes checks exact coverage for randomized range
// and chunk sizes, including chunk > n and chunk 1.
func TestParallelForRandomShapes(t *testing.T) {
	cfg := machine.M620()
	cfg.VirtualTimeLimit = 30 * time.Minute
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	rt, err := New(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	f := func(nRaw uint16, chunkRaw uint8) bool {
		n := int(nRaw%3000) + 1
		chunk := int(chunkRaw) % (n + 10) // may exceed n; 0 means auto
		var sum atomic.Int64
		err := rt.Run(func(tc *TC) {
			tc.ParallelFor(n, chunk, func(tc *TC, lo, hi int) {
				tc.Compute(float64(hi-lo) * 10)
				for i := lo; i < hi; i++ {
					sum.Add(int64(i))
				}
			})
		})
		if err != nil {
			t.Log(err)
			return false
		}
		want := int64(n) * int64(n-1) / 2
		if sum.Load() != want {
			t.Logf("n=%d chunk=%d: sum %d, want %d", n, chunk, sum.Load(), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFEBMultiProducerConsumer stresses the cell with several producers
// and consumers; the multiset of consumed values must equal the produced
// one.
func TestFEBMultiProducerConsumer(t *testing.T) {
	cfg := machine.M620()
	cfg.VirtualTimeLimit = 30 * time.Minute
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	rt, err := New(m, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	const producers = 3
	const perProducer = 15
	cell := NewFEB()
	var consumed [producers * perProducer]atomic.Int32
	err = rt.Run(func(tc *TC) {
		for p := 0; p < producers; p++ {
			p := p
			tc.Spawn(func(tc *TC) {
				for i := 0; i < perProducer; i++ {
					tc.Compute(1000)
					cell.WriteEF(tc, uint64(p*perProducer+i))
				}
			})
		}
		for c := 0; c < producers; c++ {
			tc.Spawn(func(tc *TC) {
				for i := 0; i < perProducer; i++ {
					v := cell.ReadFE(tc)
					consumed[v].Add(1)
				}
			})
		}
		tc.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range consumed {
		if got := consumed[v].Load(); got != 1 {
			t.Errorf("value %d consumed %d times", v, got)
		}
	}
	if cell.Full() {
		t.Error("cell left full after balanced produce/consume")
	}
}

// TestStatsAccounting checks that every executed task is attributed to
// exactly one worker.
func TestStatsAccounting(t *testing.T) {
	cfg := machine.M620()
	cfg.VirtualTimeLimit = 30 * time.Minute
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	rt, err := New(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	const tasks = 500
	err = rt.Run(func(tc *TC) {
		g := tc.NewGroup()
		for i := 0; i < tasks; i++ {
			g.Spawn(tc, func(tc *TC) { tc.Compute(1e5) })
		}
		g.Wait(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	var executed, popsPlusSteals uint64
	for _, s := range rt.Stats() {
		executed += s.TasksExecuted
		popsPlusSteals += s.LocalPops + s.Steals
	}
	// tasks + the root itself.
	if executed != tasks+1 {
		t.Errorf("executed = %d, want %d", executed, tasks+1)
	}
	if popsPlusSteals != executed {
		t.Errorf("pops+steals = %d, executed = %d: a task was run without being dequeued", popsPlusSteals, executed)
	}
}

// TestEpochWakesThrottledSpinners verifies the paper's "parallel phase
// termination" wake condition: spinners blocked by the throttle gate
// resume when an epoch boundary passes even if the throttle stays on.
func TestEpochWakesThrottledSpinners(t *testing.T) {
	cfg := machine.M620()
	cfg.VirtualTimeLimit = 30 * time.Minute
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	rt, err := New(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	rt.SetThrottle(true, 2) // 4 of 16 workers active
	err = rt.Run(func(tc *TC) {
		// Two phases; each bumps the epoch at its group Wait.
		for phase := 0; phase < 2; phase++ {
			g := tc.NewGroup()
			for i := 0; i < 64; i++ {
				g.Spawn(tc, func(tc *TC) { tc.Compute(1e6) })
			}
			g.Wait(tc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	stops := uint64(0)
	for _, s := range rt.Stats() {
		stops += s.ThrottleStops
	}
	if stops == 0 {
		t.Error("no throttle stops despite limit 2")
	}
	rt.SetThrottle(false, 8)
}
