// Package qthreads is a lightweight task runtime modeled on the Qthreads
// library with the Sherwood hierarchical scheduler and the MAESTRO
// extensions (paper §III): worker threads pinned to simulated cores are
// grouped into shepherds (one per socket / last-level cache); tasks and
// parallel-loop chunks go into a shepherd-local LIFO queue (constructive
// cache sharing) with work stealing between shepherds for load balancing.
//
// The MAESTRO hook (§III-A, §IV): at every thread-initiation point — a
// worker looking for a new task or loop chunk — the worker checks the
// runtime's throttle state. If throttling is active and the shepherd
// already has its limit of active workers, the worker parks in a
// duty-cycle-throttled spin loop until throttling deactivates, the
// current parallel phase terminates, or the runtime shuts down.
//
// Workloads charge their execution costs through the TC (task context)
// onto the simulated core they run on, so scheduling, contention and
// throttling effects on time and energy all emerge from the machine
// model.
package qthreads

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine"
	"repro/internal/telemetry"
)

// Config tunes the runtime.
type Config struct {
	// Workers is the number of worker threads; worker i is pinned to
	// machine core i. Defaults to all cores.
	Workers int
	// SpawnCost is the cycles charged to the spawning core per task
	// enqueue (allocation, queue push).
	SpawnCost float64
	// DequeueCost is the cycles charged per successful local pop.
	DequeueCost float64
	// StealCost is the cycles charged per steal attempt (hit or miss).
	StealCost float64
	// IdleSpinPeriod is how long an idle worker spins before parking
	// (spin-then-park, like OMP_WAIT_POLICY / GOMP_SPINCOUNT).
	IdleSpinPeriod time.Duration
	// Pinning selects how workers map to cores when fewer workers than
	// cores are requested.
	Pinning Pinning
	// SpinOnlyIdle keeps idle and waiting workers spinning instead of
	// parking after IdleSpinPeriod. The paper's Qthreads/MAESTRO runtime
	// behaves this way — its fixed-16 runs draw ~10 W more than the same
	// binaries under a parking OpenMP runtime (compare Table IV's
	// 155.9 W against Table II's 145.8 W for LULESH) — so the
	// throttling experiments enable it.
	SpinOnlyIdle bool
	// ThrottleDutyLevel is the clock-modulation level (of 32) used for
	// throttled spin loops. The paper uses the minimum, 1/32.
	ThrottleDutyLevel int
	// Tracer, when non-nil, observes scheduler events (see trace.go).
	Tracer Tracer
	// Telemetry, when non-nil, receives the runtime's qthreads_* counters
	// (aggregate scheduler activity plus per-shepherd throttled-park
	// time); see docs/observability.md. Recording is atomic-only.
	Telemetry *telemetry.Registry
}

// DefaultConfig returns the runtime defaults used throughout the
// experiments. Spawn/dequeue/steal costs are in the hundreds-of-cycles
// range measured for lightweight tasking runtimes.
func DefaultConfig() Config {
	return Config{
		SpawnCost:         220,
		DequeueCost:       120,
		StealCost:         550,
		IdleSpinPeriod:    100 * time.Microsecond,
		ThrottleDutyLevel: 1,
	}
}

// Pinning is a worker→core placement policy.
type Pinning int

// Placement policies. Scatter (the default) round-robins workers across
// sockets, matching how the Linux scheduler spreads unbound OpenMP
// threads on a multi-socket node — with 8 of 16 threads, each socket runs
// 4. Compact fills socket 0 first.
const (
	Scatter Pinning = iota
	Compact
)

// Task is a unit of schedulable work. The TC gives it access to spawning,
// synchronization and cost charging on its executing core.
type Task func(tc *TC)

// WorkerStats counts one worker's scheduler activity.
type WorkerStats struct {
	TasksExecuted uint64
	LocalPops     uint64
	Steals        uint64
	StealMisses   uint64
	ThrottleStops uint64
}

// Runtime is one instantiation of the task runtime over a machine. Create
// with New, run root tasks with Run, tear down with Shutdown.
type Runtime struct {
	m   *machine.Machine
	cfg Config

	shepherds []*shepherd
	workers   []*worker
	wg        sync.WaitGroup

	queued   atomic.Int64  // tasks currently sitting in queues
	pending  atomic.Int64  // spawned tasks not yet completed
	epoch    atomic.Uint64 // bumped at parallel-phase boundaries
	shutdown atomic.Bool
	aborted  atomic.Bool

	throttleOn    atomic.Bool
	throttleLimit atomic.Int32 // active workers allowed per shepherd

	met *qtMetrics // fixed at New; nil when Config.Telemetry is nil

	runMu sync.Mutex // serializes Run calls
}

// New builds a runtime, enrolls its workers on machine cores 0..Workers-1
// and starts them (idle). The caller must Shutdown the runtime before
// stopping the machine.
func New(m *machine.Machine, cfg Config) (*Runtime, error) {
	if cfg.Workers == 0 {
		cfg.Workers = m.Config().Cores()
	}
	if cfg.Workers < 1 || cfg.Workers > m.Config().Cores() {
		return nil, fmt.Errorf("qthreads: Workers = %d, must be in [1, %d]", cfg.Workers, m.Config().Cores())
	}
	if cfg.SpawnCost < 0 || cfg.DequeueCost < 0 || cfg.StealCost < 0 {
		return nil, errors.New("qthreads: scheduler costs must be non-negative")
	}
	if cfg.IdleSpinPeriod <= 0 {
		cfg.IdleSpinPeriod = DefaultConfig().IdleSpinPeriod
	}
	if cfg.ThrottleDutyLevel < 1 || cfg.ThrottleDutyLevel > 32 {
		cfg.ThrottleDutyLevel = 1
	}
	rt := &Runtime{m: m, cfg: cfg}
	rt.throttleLimit.Store(int32(m.Config().CoresPerSocket))

	nShep := m.Config().Sockets
	if cfg.Telemetry != nil {
		rt.met = newQTMetrics(cfg.Telemetry, nShep)
	}
	rt.shepherds = make([]*shepherd, nShep)
	for i := range rt.shepherds {
		rt.shepherds[i] = &shepherd{id: i}
	}
	rt.workers = make([]*worker, cfg.Workers)
	for i := range rt.workers {
		ctx, err := m.Enroll(coreFor(i, cfg.Pinning, m.Config()))
		if err != nil {
			// Unwind the workers already started.
			rt.Shutdown()
			return nil, fmt.Errorf("qthreads: enrolling worker %d: %w", i, err)
		}
		w := &worker{
			id:       i,
			rt:       rt,
			ctx:      ctx,
			shepherd: rt.shepherds[ctx.Socket()],
		}
		rt.workers[i] = w
		rt.wg.Add(1)
		go w.run()
	}
	return rt, nil
}

// Machine returns the machine the runtime schedules onto.
func (rt *Runtime) Machine() *machine.Machine { return rt.m }

// Config returns the runtime configuration (with defaults applied).
func (rt *Runtime) Config() Config { return rt.cfg }

// Workers returns the number of worker threads.
func (rt *Runtime) Workers() int { return len(rt.workers) }

// Shepherds returns the number of shepherds (one per socket).
func (rt *Runtime) Shepherds() int { return len(rt.shepherds) }

// ErrAborted is returned by Run when the machine aborted (stopped or hit
// its watchdog) while the root task was in flight.
var ErrAborted = errors.New("qthreads: machine aborted during run")

// Run executes fn as the root task and blocks until it and all tasks it
// transitively spawned have completed. Calls are serialized; each Run is
// one "application" execution, and its completion is a parallel-phase
// boundary for throttled workers.
func (rt *Runtime) Run(fn Task) error {
	_, err := rt.RunHeld(fn, nil)
	return err
}

// RunHeld is Run for a machine whose clock the caller parked with
// Machine.Hold while assembling the stack. It pins both ends of the run
// to the virtual timeline instead of racing the engine's paced
// ticker-only steps:
//
//   - release is invoked as soon as the root task is enqueued, so the
//     engine's next pass wakes a parked worker on the queued-work
//     condition — before any paced step can advance time — and the run
//     starts at exactly the held instant (the release cannot live inside
//     the task: fetching the task already charges DequeueCost, which
//     needs the clock running);
//   - the completing worker re-parks the clock immediately after the
//     implicit join, before the host-side wait can observe completion,
//     so the caller reads end-of-run state at exactly the last task's
//     completion time.
//
// The returned end function releases the final hold; it is nil when
// release is nil (plain Run semantics, no holds taken) or when the run
// aborted before the join. RunHeld always consumes release: it is called
// exactly once even on early error returns.
func (rt *Runtime) RunHeld(fn Task, release func()) (end func(), err error) {
	rt.runMu.Lock()
	defer rt.runMu.Unlock()
	if rt.shutdown.Load() {
		if release != nil {
			release()
		}
		return nil, errors.New("qthreads: runtime is shut down")
	}
	var done atomic.Bool
	var endHold func() // written before done.Store, read after done.Load
	root := &taskItem{fn: func(tc *TC) {
		fn(tc)
		// Implicit join: the root does not return to the scheduler until
		// everything it transitively spawned has finished.
		tc.waitAllSpawned()
		if release != nil {
			endHold = rt.m.Hold()
		}
		done.Store(true) // not reached if the machine aborts the task
	}}
	rt.shepherds[0].push(root)
	rt.queued.Add(1)
	rt.m.Kick() // host-side enqueue: wake parked workers
	if release != nil {
		release()
	}
	// Wait host-side for completion; the machine engine drives progress.
	for !done.Load() {
		if rt.aborted.Load() {
			return nil, ErrAborted
		}
		time.Sleep(200 * time.Microsecond)
	}
	rt.epoch.Add(1) // application completion is a phase boundary
	if rt.aborted.Load() {
		return endHold, ErrAborted
	}
	return endHold, nil
}

// SetThrottle enables or disables concurrency throttling with the given
// per-shepherd active-worker limit. It is safe to call from a machine
// ticker (it only touches atomics), which is exactly how the MAESTRO
// daemon uses it.
func (rt *Runtime) SetThrottle(enabled bool, perShepherdLimit int) {
	if perShepherdLimit < 1 {
		perShepherdLimit = 1
	}
	rt.throttleLimit.Store(int32(perShepherdLimit))
	rt.throttleOn.Store(enabled)
}

// Throttled reports whether concurrency throttling is currently active.
func (rt *Runtime) Throttled() bool { return rt.throttleOn.Load() }

// ThrottleLimit returns the per-shepherd active-worker limit.
func (rt *Runtime) ThrottleLimit() int { return int(rt.throttleLimit.Load()) }

// BumpEpoch marks a parallel-phase boundary, releasing throttled spinners
// so they can re-evaluate. ParallelFor and Group.Wait call it internally.
func (rt *Runtime) BumpEpoch() { rt.epoch.Add(1) }

// Stats returns a copy of each worker's scheduler counters.
func (rt *Runtime) Stats() []WorkerStats {
	out := make([]WorkerStats, len(rt.workers))
	for i, w := range rt.workers {
		out[i] = WorkerStats{
			TasksExecuted: w.tasksExecuted.Load(),
			LocalPops:     w.localPops.Load(),
			Steals:        w.steals.Load(),
			StealMisses:   w.stealMisses.Load(),
			ThrottleStops: w.throttleStops.Load(),
		}
	}
	return out
}

// ActiveWorkers returns the number of workers currently executing tasks
// in each shepherd.
func (rt *Runtime) ActiveWorkers() []int {
	out := make([]int, len(rt.shepherds))
	for i, sh := range rt.shepherds {
		out[i] = int(sh.active.Load())
	}
	return out
}

// Shutdown stops all workers and releases their cores. It must be called
// before machine.Stop for a clean teardown; calling it twice is safe.
func (rt *Runtime) Shutdown() {
	if rt.shutdown.Swap(true) {
		rt.wg.Wait()
		return
	}
	rt.m.Kick()
	rt.wg.Wait()
}

// workAvailable is the idle-worker wake condition.
func (rt *Runtime) workAvailable() bool {
	return rt.queued.Load() > 0 || rt.shutdown.Load()
}

// coreFor maps a worker index to a machine core under a placement policy.
func coreFor(i int, p Pinning, mc machine.Config) int {
	if p == Compact {
		return i
	}
	socket := i % mc.Sockets
	return socket*mc.CoresPerSocket + i/mc.Sockets
}
