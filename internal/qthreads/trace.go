package qthreads

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Scheduler event tracing. A Tracer observes the runtime's scheduling
// decisions — task execution, steals, throttle stops, idle parking — in
// virtual time, the raw material for studying how MAESTRO's decisions
// interleave with the application's phases. Tracing is disabled (nil)
// by default and costs one pointer check per event when off.

// EventKind labels a scheduler event.
type EventKind int

// Scheduler event kinds.
const (
	EvTaskStart EventKind = iota
	EvTaskEnd
	EvSteal
	EvThrottleEnter
	EvThrottleExit
	EvPark
	EvUnpark
)

// String returns the event name.
func (k EventKind) String() string {
	switch k {
	case EvTaskStart:
		return "task-start"
	case EvTaskEnd:
		return "task-end"
	case EvSteal:
		return "steal"
	case EvThrottleEnter:
		return "throttle-enter"
	case EvThrottleExit:
		return "throttle-exit"
	case EvPark:
		return "park"
	case EvUnpark:
		return "unpark"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one scheduler occurrence.
type Event struct {
	Time   time.Duration // virtual time
	Worker int
	Kind   EventKind
}

// Tracer receives scheduler events. Implementations must be safe for
// concurrent use; Observe is called from worker goroutines on their
// scheduling paths (in host code, so it costs no virtual time).
type Tracer interface {
	Observe(Event)
}

// Recorder is a bounded in-memory Tracer keeping the newest Capacity
// events.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	next   int
	filled bool
}

// NewRecorder creates a Recorder holding up to capacity events
// (capacity <= 0 selects 1<<16).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Recorder{events: make([]Event, capacity)}
}

// Observe implements Tracer.
func (r *Recorder) Observe(e Event) {
	r.mu.Lock()
	r.events[r.next] = e
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
}

// Events returns the recorded events oldest-first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		out := make([]Event, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Counts tallies events by kind.
func (r *Recorder) Counts() map[EventKind]int {
	out := make(map[EventKind]int)
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}

// WriteCSV dumps the trace as CSV.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_seconds", "worker", "event"}); err != nil {
		return err
	}
	for _, e := range r.Events() {
		rec := []string{
			strconv.FormatFloat(e.Time.Seconds(), 'f', 6, 64),
			strconv.Itoa(e.Worker),
			e.Kind.String(),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// trace emits an event if a tracer is installed.
func (w *worker) trace(kind EventKind) {
	tr := w.rt.cfg.Tracer
	if tr == nil {
		return
	}
	tr.Observe(Event{Time: w.rt.m.Now(), Worker: w.id, Kind: kind})
}

// Utilization summarizes a recorded trace per worker: the fraction of
// traced time each worker spent inside tasks, plus steal and throttle
// counts — the per-thread view behind the paper's active-worker
// accounting.
type Utilization struct {
	Worker        int
	BusyFraction  float64
	Tasks         int
	Steals        int
	ThrottleStops int
}

// Utilizations derives per-worker summaries from the recorder's current
// contents. Busy time is measured between matched task-start/task-end
// pairs; a truncated ring (missing starts) undercounts conservatively.
func (r *Recorder) Utilizations() []Utilization {
	events := r.Events()
	if len(events) == 0 {
		return nil
	}
	span := events[len(events)-1].Time - events[0].Time
	type state struct {
		busy    time.Duration
		started time.Duration
		inTask  bool
		util    Utilization
	}
	byWorker := map[int]*state{}
	get := func(w int) *state {
		s, ok := byWorker[w]
		if !ok {
			s = &state{util: Utilization{Worker: w}}
			byWorker[w] = s
		}
		return s
	}
	for _, e := range events {
		s := get(e.Worker)
		switch e.Kind {
		case EvTaskStart:
			s.inTask = true
			s.started = e.Time
			s.util.Tasks++
		case EvTaskEnd:
			if s.inTask {
				s.busy += e.Time - s.started
				s.inTask = false
			}
		case EvSteal:
			s.util.Steals++
		case EvThrottleEnter:
			s.util.ThrottleStops++
		}
	}
	out := make([]Utilization, 0, len(byWorker))
	for _, s := range byWorker {
		if span > 0 {
			s.util.BusyFraction = s.busy.Seconds() / span.Seconds()
		}
		out = append(out, s.util)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}
