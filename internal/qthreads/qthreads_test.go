package qthreads

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine"
)

func newStack(t *testing.T, workers int) (*machine.Machine, *Runtime) {
	t.Helper()
	cfg := machine.M620()
	cfg.VirtualTimeLimit = 10 * time.Minute
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	qcfg := DefaultConfig()
	qcfg.Workers = workers
	rt, err := New(m, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return m, rt
}

func TestRunSimpleTask(t *testing.T) {
	_, rt := newStack(t, 4)
	var ran atomic.Bool
	err := rt.Run(func(tc *TC) {
		tc.Compute(1000)
		ran.Store(true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Error("root task did not run")
	}
}

func TestRunAdvancesVirtualTime(t *testing.T) {
	m, rt := newStack(t, 2)
	before := m.Now()
	if err := rt.Run(func(tc *TC) { tc.Compute(2.7e8) }); err != nil { // 100 ms
		t.Fatal(err)
	}
	elapsed := m.Now() - before
	if elapsed < 95*time.Millisecond || elapsed > 120*time.Millisecond {
		t.Errorf("virtual elapsed = %v, want ~100ms", elapsed)
	}
}

func TestSpawnSyncFibonacci(t *testing.T) {
	_, rt := newStack(t, 16)
	// Recursive fib with real task recursion; answers must be exact, which
	// proves spawn/sync joins correctly under stealing.
	var fib func(tc *TC, n int, out *int64)
	fib = func(tc *TC, n int, out *int64) {
		tc.Compute(50)
		if n < 2 {
			*out = int64(n)
			return
		}
		var a, b int64
		tc.Spawn(func(tc *TC) { fib(tc, n-1, &a) })
		fib(tc, n-2, &b)
		tc.Sync()
		*out = a + b
	}
	var result int64
	if err := rt.Run(func(tc *TC) { fib(tc, 18, &result) }); err != nil {
		t.Fatal(err)
	}
	if result != 2584 {
		t.Errorf("fib(18) = %d, want 2584", result)
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	_, rt := newStack(t, 16)
	const n = 10_000
	hits := make([]atomic.Int32, n)
	err := rt.Run(func(tc *TC) {
		tc.ParallelFor(n, 64, func(tc *TC, lo, hi int) {
			tc.Compute(float64(hi-lo) * 10)
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d executed %d times", i, got)
		}
	}
}

func TestParallelForDefaultChunk(t *testing.T) {
	_, rt := newStack(t, 8)
	var total atomic.Int64
	err := rt.Run(func(tc *TC) {
		tc.ParallelFor(1000, 0, func(tc *TC, lo, hi int) {
			total.Add(int64(hi - lo))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 1000 {
		t.Errorf("covered %d indices, want 1000", total.Load())
	}
}

func TestParallelForEmpty(t *testing.T) {
	_, rt := newStack(t, 2)
	err := rt.Run(func(tc *TC) {
		tc.ParallelFor(0, 10, func(tc *TC, lo, hi int) {
			t.Error("body ran for empty range")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorkStealingAcrossShepherds(t *testing.T) {
	_, rt := newStack(t, 16)
	err := rt.Run(func(tc *TC) {
		// Spawn many tasks from one worker (all land on shepherd 0);
		// socket-1 workers can only get them by stealing.
		for i := 0; i < 200; i++ {
			tc.Spawn(func(tc *TC) { tc.Compute(1e6) })
		}
		tc.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := rt.Stats()
	steals := uint64(0)
	executedOnSocket1 := uint64(0)
	for i, s := range stats {
		steals += s.Steals
		if i >= 8 {
			executedOnSocket1 += s.TasksExecuted
		}
	}
	if steals == 0 {
		t.Error("no steals recorded")
	}
	if executedOnSocket1 == 0 {
		t.Error("socket 1 executed nothing despite idle workers")
	}
}

func TestGroupWait(t *testing.T) {
	_, rt := newStack(t, 8)
	var sum atomic.Int64
	err := rt.Run(func(tc *TC) {
		g := tc.NewGroup()
		for i := 1; i <= 100; i++ {
			i := i
			g.Spawn(tc, func(tc *TC) {
				tc.Compute(100)
				sum.Add(int64(i))
			})
		}
		g.Wait(tc)
		if got := sum.Load(); got != 5050 {
			t.Errorf("sum after Wait = %d, want 5050", got)
		}
		if g.Pending() != 0 {
			t.Errorf("Pending after Wait = %d", g.Pending())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRegionEndJoinsStragglers(t *testing.T) {
	// Spawned tasks with no Sync must still complete before Run returns
	// (implicit join at region end).
	_, rt := newStack(t, 8)
	var done atomic.Int64
	err := rt.Run(func(tc *TC) {
		for i := 0; i < 50; i++ {
			tc.Spawn(func(tc *TC) {
				tc.Compute(5e5)
				done.Add(1)
			})
		}
		// No Sync here.
	})
	if err != nil {
		t.Fatal(err)
	}
	if done.Load() != 50 {
		t.Errorf("only %d/50 stragglers completed before Run returned", done.Load())
	}
}

func TestNestedSpawns(t *testing.T) {
	_, rt := newStack(t, 16)
	var leaves atomic.Int64
	err := rt.Run(func(tc *TC) {
		for i := 0; i < 8; i++ {
			tc.Spawn(func(tc *TC) {
				for j := 0; j < 8; j++ {
					tc.Spawn(func(tc *TC) {
						tc.Compute(1e4)
						leaves.Add(1)
					})
				}
				tc.Sync()
			})
		}
		tc.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if leaves.Load() != 64 {
		t.Errorf("leaves = %d, want 64", leaves.Load())
	}
}

func TestRunSequentialReuse(t *testing.T) {
	m, rt := newStack(t, 4)
	for i := 0; i < 3; i++ {
		if err := rt.Run(func(tc *TC) { tc.Compute(1e6) }); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if m.Err() != nil {
		t.Errorf("machine error after reuse: %v", m.Err())
	}
}

func TestWorkerCountValidation(t *testing.T) {
	cfg := machine.M620()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	for _, bad := range []int{-1, 17} {
		qcfg := DefaultConfig()
		qcfg.Workers = bad
		if _, err := New(m, qcfg); err == nil {
			t.Errorf("New with %d workers succeeded", bad)
		}
	}
	// Default fills the machine.
	rt, err := New(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	if rt.Workers() != 16 {
		t.Errorf("default Workers = %d, want 16", rt.Workers())
	}
	if rt.Shepherds() != 2 {
		t.Errorf("Shepherds = %d, want 2", rt.Shepherds())
	}
}

func TestPartialWorkersEnrollment(t *testing.T) {
	m, rt := newStack(t, 12)
	if rt.Workers() != 12 {
		t.Fatalf("Workers = %d", rt.Workers())
	}
	if got := m.EnrolledCount(); got != 12 {
		t.Errorf("EnrolledCount = %d, want 12", got)
	}
}

func TestScatterPinning(t *testing.T) {
	// The default scatter policy round-robins workers across sockets:
	// 8 workers occupy 4 cores on each socket.
	mc := machine.M620()
	for i, want := range map[int]int{0: 0, 1: 8, 2: 1, 3: 9, 7: 11} {
		if got := coreFor(i, Scatter, mc); got != want {
			t.Errorf("coreFor(%d, Scatter) = %d, want %d", i, got, want)
		}
	}
	for i := 0; i < 16; i++ {
		if got := coreFor(i, Compact, mc); got != i {
			t.Errorf("coreFor(%d, Compact) = %d, want %d", i, got, i)
		}
	}
}

func TestShutdownIdempotentAndRunAfterShutdown(t *testing.T) {
	_, rt := newStack(t, 2)
	rt.Shutdown()
	rt.Shutdown()
	if err := rt.Run(func(tc *TC) {}); err == nil {
		t.Error("Run after Shutdown succeeded")
	}
}

func TestThrottleLimitsActiveWorkers(t *testing.T) {
	_, rt := newStack(t, 16)
	rt.SetThrottle(true, 6) // 12 active node-wide
	maxSeen := make([]int32, 2)
	err := rt.Run(func(tc *TC) {
		g := tc.NewGroup()
		for i := 0; i < 400; i++ {
			g.Spawn(tc, func(tc *TC) {
				for s, sh := range tc.Runtime().shepherds {
					if a := sh.active.Load(); a > atomic.LoadInt32(&maxSeen[s]) {
						atomic.StoreInt32(&maxSeen[s], a)
					}
				}
				tc.Compute(2e6)
			})
		}
		g.Wait(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := rt.Stats()
	stops := uint64(0)
	for _, s := range stats {
		stops += s.ThrottleStops
	}
	if stops == 0 {
		t.Error("throttling never engaged")
	}
	// The gate races allow brief overshoot; it must stay well below the
	// full 8 per shepherd.
	for s, mx := range maxSeen {
		if mx > 7 {
			t.Errorf("shepherd %d max active %d under limit 6", s, mx)
		}
	}
	rt.SetThrottle(false, 8)
}

func TestThrottleReducesPower(t *testing.T) {
	runPower := func(throttle bool) float64 {
		m, rt := newStack(t, 16)
		defer rt.Shutdown()
		if throttle {
			rt.SetThrottle(true, 6)
		}
		before := m.TotalEnergy()
		t0 := m.Now()
		err := rt.Run(func(tc *TC) {
			g := tc.NewGroup()
			for i := 0; i < 320; i++ {
				g.Spawn(tc, func(tc *TC) { tc.Compute(5e6) })
			}
			g.Wait(tc)
		})
		if err != nil {
			t.Fatal(err)
		}
		dt := (m.Now() - t0).Seconds()
		return float64(m.TotalEnergy()-before) / dt
	}
	full := runPower(false)
	throttled := runPower(true)
	if throttled >= full {
		t.Errorf("throttled power %.1f W >= full power %.1f W", throttled, full)
	}
	// Expect roughly the paper's magnitude: ~6-15 W saved for 4 throttled
	// threads on a compute-bound load.
	if full-throttled < 3 {
		t.Errorf("throttle saving only %.1f W", full-throttled)
	}
}

func TestThrottleDisabledNoStops(t *testing.T) {
	_, rt := newStack(t, 16)
	err := rt.Run(func(tc *TC) {
		tc.ParallelFor(1000, 10, func(tc *TC, lo, hi int) {
			tc.Compute(float64(hi-lo) * 1e4)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range rt.Stats() {
		if s.ThrottleStops != 0 {
			t.Errorf("worker %d recorded %d throttle stops with throttling off", i, s.ThrottleStops)
		}
	}
}

func TestFEBProducerConsumer(t *testing.T) {
	_, rt := newStack(t, 4)
	cell := NewFEB()
	const rounds = 20
	var received []uint64
	err := rt.Run(func(tc *TC) {
		tc.Spawn(func(tc *TC) { // producer
			for i := 0; i < rounds; i++ {
				tc.Compute(1e4)
				cell.WriteEF(tc, uint64(i))
			}
		})
		// Consumer (root).
		for i := 0; i < rounds; i++ {
			received = append(received, cell.ReadFE(tc))
		}
		tc.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(received) != rounds {
		t.Fatalf("received %d values", len(received))
	}
	for i, v := range received {
		if v != uint64(i) {
			t.Errorf("received[%d] = %d (FEB ordering broken)", i, v)
		}
	}
	if cell.Full() {
		t.Error("cell full after drain")
	}
}

func TestFEBReadFFDoesNotDrain(t *testing.T) {
	_, rt := newStack(t, 2)
	cell := NewFEB()
	err := rt.Run(func(tc *TC) {
		cell.WriteF(tc, 42)
		if v := cell.ReadFF(tc); v != 42 {
			t.Errorf("ReadFF = %d", v)
		}
		if !cell.Full() {
			t.Error("ReadFF drained the cell")
		}
		if v := cell.ReadFE(tc); v != 42 {
			t.Errorf("ReadFE = %d", v)
		}
		if cell.Full() {
			t.Error("ReadFE left the cell full")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunAbortedByWatchdog(t *testing.T) {
	cfg := machine.M620()
	cfg.VirtualTimeLimit = 20 * time.Millisecond
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	rt, err := New(m, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	err = rt.Run(func(tc *TC) { tc.Compute(2.7e9) }) // 1 s >> 20 ms limit
	if !errors.Is(err, ErrAborted) {
		t.Errorf("Run = %v, want ErrAborted", err)
	}
}

func TestIdleRuntimeParksCheaply(t *testing.T) {
	// With workers idle and one core driving time on socket 1, socket 0's
	// power should be near the all-parked floor (workers park after their
	// spin period).
	cfg := machine.M620()
	cfg.VirtualTimeLimit = 10 * time.Minute
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	qcfg := DefaultConfig()
	qcfg.Workers = 8
	qcfg.Pinning = Compact // workers on socket 0 only
	rt, err := New(m, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	ctx, err := m.Enroll(8)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer ctx.Release()
		ctx.Compute(2.7e8) // 100 ms on socket 1
	}()
	<-done
	snap := m.Snapshot()
	p0 := float64(snap.Sockets[0].Power)
	parked := float64(m.Config().Power.PredictSocketPower(0, 0, 0, 0, 8, 0, 0))
	if math.Abs(p0-parked)/parked > 0.25 {
		t.Errorf("idle worker socket draws %.1f W, want near parked %.1f W", p0, parked)
	}
}

func TestConcurrentRunsSerialize(t *testing.T) {
	_, rt := newStack(t, 8)
	var inFlight, maxInFlight atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := rt.Run(func(tc *TC) {
				c := inFlight.Add(1)
				for {
					m := maxInFlight.Load()
					if c <= m || maxInFlight.CompareAndSwap(m, c) {
						break
					}
				}
				tc.Compute(1e6)
				inFlight.Add(-1)
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if maxInFlight.Load() != 1 {
		t.Errorf("%d root tasks overlapped; Run must serialize", maxInFlight.Load())
	}
}

func TestZeroCostConfig(t *testing.T) {
	// A runtime with all scheduler costs zero is legal (pure algorithmic
	// accounting) and must still run correctly.
	cfg := machine.M620()
	cfg.VirtualTimeLimit = 10 * time.Minute
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	rt, err := New(m, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	var n atomic.Int64
	err = rt.Run(func(tc *TC) {
		g := tc.NewGroup()
		for i := 0; i < 100; i++ {
			g.Spawn(tc, func(tc *TC) { tc.Compute(1e5); n.Add(1) })
		}
		g.Wait(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Errorf("ran %d", n.Load())
	}
}

func TestFEBWriteFOverFull(t *testing.T) {
	_, rt := newStack(t, 2)
	cell := NewFEB()
	err := rt.Run(func(tc *TC) {
		cell.WriteF(tc, 1)
		cell.WriteF(tc, 2) // overwrite without waiting for empty
		if v := cell.ReadFE(tc); v != 2 {
			t.Errorf("ReadFE = %d, want the overwrite", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNegativeCostConfigRejected(t *testing.T) {
	cfg := machine.M620()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if _, err := New(m, Config{Workers: 2, SpawnCost: -1}); err == nil {
		t.Error("negative SpawnCost accepted")
	}
}

func TestThrottleLimitFloor(t *testing.T) {
	_, rt := newStack(t, 4)
	rt.SetThrottle(true, 0) // clamps to 1
	if rt.ThrottleLimit() != 1 {
		t.Errorf("limit = %d, want floor 1", rt.ThrottleLimit())
	}
	// Work must still complete with the tightest limit.
	var n atomic.Int64
	err := rt.Run(func(tc *TC) {
		g := tc.NewGroup()
		for i := 0; i < 20; i++ {
			g.Spawn(tc, func(tc *TC) { tc.Compute(1e5); n.Add(1) })
		}
		g.Wait(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != 20 {
		t.Errorf("ran %d under limit 1", n.Load())
	}
	rt.SetThrottle(false, 8)
}
