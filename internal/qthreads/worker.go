package qthreads

import (
	"sync/atomic"
	"time"

	"repro/internal/machine"
)

// worker is one scheduler thread pinned to a simulated core.
type worker struct {
	id       int
	rt       *Runtime
	ctx      *machine.CoreCtx
	shepherd *shepherd

	tasksExecuted atomic.Uint64
	localPops     atomic.Uint64
	steals        atomic.Uint64
	stealMisses   atomic.Uint64
	throttleStops atomic.Uint64
}

// run is the worker main loop: gate on the throttle, find work, execute,
// or park when idle.
func (w *worker) run() {
	defer w.rt.wg.Done()
	defer w.ctx.Release()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(machine.Abort); ok {
				w.rt.aborted.Store(true)
				return
			}
			panic(r)
		}
	}()
	rt := w.rt
	for {
		if rt.shutdown.Load() {
			return
		}
		if !w.acquireSlot() {
			return // shutdown observed while throttled
		}
		t := w.findWork()
		if t == nil {
			w.releaseSlot()
			// Spin briefly (cheap wakeup for imminent work), then park in
			// deep idle — the spin-then-park policy of OpenMP runtimes.
			// In SpinOnlyIdle mode (Qthreads/MAESTRO behaviour) keep
			// spinning at full power instead.
			if rt.cfg.SpinOnlyIdle {
				w.ctx.SpinUntil(rt.workAvailable)
			} else if !w.ctx.SpinFor(rt.workAvailable, rt.cfg.IdleSpinPeriod) {
				w.trace(EvPark)
				w.ctx.IdleUntil(rt.workAvailable)
				w.trace(EvUnpark)
			}
			continue
		}
		w.execute(t)
		w.releaseSlot()
	}
}

// acquireSlot is the MAESTRO thread-initiation hook (paper §IV): a worker
// claims an active slot in its shepherd before looking for work. When
// throttling is active and the shepherd already runs its limit of active
// workers, the worker spins in a low-power (duty-cycle 1/32) loop until
// one of the paper's wake conditions: throttling deactivation,
// application completion / shutdown, parallel-phase termination (epoch
// bump), or — to avoid starvation — an active slot opening up. Returns
// false on shutdown.
func (w *worker) acquireSlot() bool {
	rt := w.rt
	for {
		if rt.shutdown.Load() {
			return false
		}
		if !rt.throttleOn.Load() {
			w.shepherd.active.Add(1)
			return true
		}
		limit := rt.throttleLimit.Load()
		cur := w.shepherd.active.Load()
		if cur < limit {
			if w.shepherd.active.CompareAndSwap(cur, cur+1) {
				return true
			}
			continue // lost the race; retry
		}
		w.throttleStops.Add(1)
		if met := rt.met; met != nil {
			met.throttleStops.Inc()
		}
		w.trace(EvThrottleEnter)
		entryEpoch := rt.epoch.Load()
		var parkStart time.Duration
		if rt.met != nil {
			parkStart = rt.m.Now()
		}
		w.ctx.SetDutyLevel(rt.cfg.ThrottleDutyLevel)
		w.ctx.SpinUntil(func() bool {
			return rt.shutdown.Load() ||
				!rt.throttleOn.Load() ||
				rt.epoch.Load() != entryEpoch ||
				w.shepherd.active.Load() < rt.throttleLimit.Load()
		})
		w.ctx.FullDuty()
		if met := rt.met; met != nil {
			// Virtual time parked at 1/32 duty — the mechanism's footprint.
			parked := uint64(rt.m.Now() - parkStart)
			met.throttleParkNS.Add(parked)
			met.shepherdParkNS[w.shepherd.id].Add(parked)
		}
		w.trace(EvThrottleExit)
	}
}

// releaseSlot returns the worker's active slot.
func (w *worker) releaseSlot() {
	w.shepherd.active.Add(-1)
}

// findWork pops locally (LIFO) and falls back to stealing from other
// shepherds (FIFO), charging the scheduler costs to this core.
func (w *worker) findWork() *taskItem {
	rt := w.rt
	met := rt.met
	if t := w.shepherd.pop(); t != nil {
		rt.queued.Add(-1)
		w.localPops.Add(1)
		if met != nil {
			met.localPops.Inc()
		}
		w.chargeSched(rt.cfg.DequeueCost)
		return t
	}
	n := len(rt.shepherds)
	for i := 1; i < n; i++ {
		sh := rt.shepherds[(w.shepherd.id+i)%n]
		if t := sh.stealFrom(); t != nil {
			rt.queued.Add(-1)
			w.steals.Add(1)
			if met != nil {
				met.steals.Inc()
			}
			w.trace(EvSteal)
			w.chargeSched(rt.cfg.StealCost)
			return t
		}
		w.stealMisses.Add(1)
		if met != nil {
			met.stealMisses.Inc()
		}
	}
	return nil
}

// execute runs one task. The caller (worker loop or a helping wait) holds
// an active slot for the duration.
func (w *worker) execute(t *taskItem) {
	w.trace(EvTaskStart)
	tc := TC{w: w}
	t.fn(&tc)
	if t.group != nil {
		t.group.n.Add(-1)
	}
	if t.counted {
		w.rt.pending.Add(-1)
	}
	w.tasksExecuted.Add(1)
	if met := w.rt.met; met != nil {
		met.tasks.Inc()
	}
	w.trace(EvTaskEnd)
}

// chargeSched charges scheduler overhead cycles to the worker's core.
func (w *worker) chargeSched(cost float64) {
	if cost > 0 {
		w.ctx.Compute(cost)
	}
}
