package qthreads

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine"
)

func newTracedStack(t *testing.T, rec *Recorder, workers int, throttle bool) (*machine.Machine, *Runtime) {
	t.Helper()
	cfg := machine.M620()
	cfg.VirtualTimeLimit = 10 * time.Minute
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	qcfg := DefaultConfig()
	qcfg.Workers = workers
	qcfg.Tracer = rec
	rt, err := New(m, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	if throttle {
		rt.SetThrottle(true, 2)
	}
	return m, rt
}

func TestRecorderCapturesTaskLifecycle(t *testing.T) {
	rec := NewRecorder(0)
	_, rt := newTracedStack(t, rec, 8, false)
	const tasks = 40
	err := rt.Run(func(tc *TC) {
		g := tc.NewGroup()
		for i := 0; i < tasks; i++ {
			g.Spawn(tc, func(tc *TC) { tc.Compute(1e6) })
		}
		g.Wait(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := rec.Counts()
	// tasks + root.
	if counts[EvTaskStart] != tasks+1 || counts[EvTaskEnd] != tasks+1 {
		t.Errorf("task events = %d/%d, want %d", counts[EvTaskStart], counts[EvTaskEnd], tasks+1)
	}
	if counts[EvSteal] == 0 {
		t.Error("no steal events despite cross-socket spawning")
	}
	// Time stamps are monotone non-decreasing.
	events := rec.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatalf("trace out of order at %d", i)
		}
	}
}

func TestRecorderCapturesThrottleEvents(t *testing.T) {
	rec := NewRecorder(0)
	_, rt := newTracedStack(t, rec, 16, true)
	err := rt.Run(func(tc *TC) {
		g := tc.NewGroup()
		for i := 0; i < 200; i++ {
			g.Spawn(tc, func(tc *TC) { tc.Compute(2e6) })
		}
		g.Wait(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.SetThrottle(false, 8)
	counts := rec.Counts()
	if counts[EvThrottleEnter] == 0 {
		t.Fatal("no throttle-enter events under an active throttle")
	}
	if counts[EvThrottleExit] != counts[EvThrottleEnter] {
		t.Errorf("throttle enter/exit unbalanced: %d vs %d",
			counts[EvThrottleEnter], counts[EvThrottleExit])
	}
}

func TestRecorderRingWraps(t *testing.T) {
	rec := NewRecorder(16)
	_, rt := newTracedStack(t, rec, 4, false)
	err := rt.Run(func(tc *TC) {
		g := tc.NewGroup()
		for i := 0; i < 100; i++ { // far more events than 16 slots
			g.Spawn(tc, func(tc *TC) { tc.Compute(1e5) })
		}
		g.Wait(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	if len(events) != 16 {
		t.Fatalf("ring holds %d events, want 16", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatalf("wrapped ring out of order at %d", i)
		}
	}
}

func TestRecorderWriteCSV(t *testing.T) {
	rec := NewRecorder(0)
	_, rt := newTracedStack(t, rec, 4, false)
	if err := rt.Run(func(tc *TC) { tc.Compute(1e6) }); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "t_seconds,worker,event\n") {
		t.Errorf("CSV header wrong: %q", out[:40])
	}
	if !strings.Contains(out, "task-start") || !strings.Contains(out, "task-end") {
		t.Error("CSV missing task events")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvTaskStart, EvTaskEnd, EvSteal, EvThrottleEnter, EvThrottleExit, EvPark, EvUnpark}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad/duplicate name %q", int(k), s)
		}
		seen[s] = true
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kind needs a representation")
	}
}

func TestTracingOffByDefault(t *testing.T) {
	// Just exercising the nil-tracer fast path under load.
	cfg := machine.M620()
	cfg.VirtualTimeLimit = 10 * time.Minute
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	rt, err := New(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	var n atomic.Int64
	err = rt.Run(func(tc *TC) {
		g := tc.NewGroup()
		for i := 0; i < 50; i++ {
			g.Spawn(tc, func(tc *TC) { tc.Compute(1e5); n.Add(1) })
		}
		g.Wait(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != 50 {
		t.Errorf("ran %d tasks", n.Load())
	}
}

func TestUtilizations(t *testing.T) {
	rec := NewRecorder(0)
	_, rt := newTracedStack(t, rec, 8, false)
	err := rt.Run(func(tc *TC) {
		g := tc.NewGroup()
		for i := 0; i < 80; i++ {
			g.Spawn(tc, func(tc *TC) { tc.Compute(2e6) })
		}
		g.Wait(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	utils := rec.Utilizations()
	if len(utils) == 0 {
		t.Fatal("no utilization rows")
	}
	totalTasks := 0
	for _, u := range utils {
		totalTasks += u.Tasks
		if u.BusyFraction < 0 || u.BusyFraction > 1.01 {
			t.Errorf("worker %d busy fraction %g out of range", u.Worker, u.BusyFraction)
		}
	}
	if totalTasks != 81 { // 80 + root
		t.Errorf("utilization counted %d tasks, want 81", totalTasks)
	}
	// Uniform load over 8 workers: everyone should be mostly busy.
	for _, u := range utils {
		if u.Tasks > 5 && u.BusyFraction < 0.3 {
			t.Errorf("worker %d ran %d tasks at only %.0f%% busy", u.Worker, u.Tasks, u.BusyFraction*100)
		}
	}
	// Workers must be sorted by id.
	for i := 1; i < len(utils); i++ {
		if utils[i].Worker <= utils[i-1].Worker {
			t.Fatal("utilizations not sorted by worker")
		}
	}
}

func TestUtilizationsEmpty(t *testing.T) {
	if got := NewRecorder(4).Utilizations(); got != nil {
		t.Errorf("empty recorder utilizations = %v", got)
	}
}
