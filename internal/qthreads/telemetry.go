package qthreads

import (
	"fmt"

	"repro/internal/telemetry"
)

// qtMetrics is the runtime's instrument set, pre-registered at New so
// workers record through atomics only. Scheduler counters mirror
// WorkerStats but aggregate across workers; the park-time counters
// measure the paper's throttling mechanism directly — virtual
// nanoseconds workers spent in the 1/32-duty throttled spin loop,
// node-wide and per shepherd.
type qtMetrics struct {
	tasks          *telemetry.Counter
	localPops      *telemetry.Counter
	steals         *telemetry.Counter
	stealMisses    *telemetry.Counter
	throttleStops  *telemetry.Counter
	throttleParkNS *telemetry.Counter
	shepherdParkNS []*telemetry.Counter // indexed by shepherd id
}

func newQTMetrics(reg *telemetry.Registry, shepherds int) *qtMetrics {
	m := &qtMetrics{
		tasks:          reg.Counter("qthreads_tasks_total"),
		localPops:      reg.Counter("qthreads_local_pops_total"),
		steals:         reg.Counter("qthreads_steals_total"),
		stealMisses:    reg.Counter("qthreads_steal_misses_total"),
		throttleStops:  reg.Counter("qthreads_throttle_stops_total"),
		throttleParkNS: reg.Counter("qthreads_throttle_park_ns_total"),
		shepherdParkNS: make([]*telemetry.Counter, shepherds),
	}
	for i := range m.shepherdParkNS {
		m.shepherdParkNS[i] = reg.Counter(fmt.Sprintf("qthreads_shepherd%d_park_ns_total", i))
	}
	return m
}
