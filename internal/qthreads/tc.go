package qthreads

import (
	"sync/atomic"

	"repro/internal/machine"
)

// TC is the task context handed to every executing task: it provides
// spawning, synchronization and cost charging on the executing core.
// A TC is only valid for the duration of its task and must not be shared
// across goroutines.
type TC struct {
	w        *worker
	children *Group // lazily created on first Spawn
}

// Group tracks a set of spawned tasks for joining.
type Group struct {
	rt *Runtime
	n  atomic.Int64
}

// Runtime returns the runtime executing this task.
func (tc *TC) Runtime() *Runtime { return tc.w.rt }

// Machine returns the underlying simulated machine.
func (tc *TC) Machine() *machine.Machine { return tc.w.rt.m }

// WorkerID returns the executing worker's id (== its core id).
func (tc *TC) WorkerID() int { return tc.w.id }

// ShepherdID returns the executing worker's shepherd (socket).
func (tc *TC) ShepherdID() int { return tc.w.shepherd.id }

// Compute charges pure compute cycles to the executing core.
func (tc *TC) Compute(ops float64) { tc.w.ctx.Compute(ops) }

// Stream charges pure memory traffic to the executing core.
func (tc *TC) Stream(bytes float64) { tc.w.ctx.Stream(bytes) }

// Execute charges a mixed work item to the executing core.
func (tc *TC) Execute(w machine.Work) { tc.w.ctx.Execute(w) }

// Atomic charges n contended atomic operations on a shared cache line.
func (tc *TC) Atomic(line *machine.Line, n float64) { tc.w.ctx.Atomic(line, n) }

// Spawn creates a child task of the current task (OpenMP `task`). The
// child is pushed onto the local shepherd's LIFO queue; Sync joins it.
func (tc *TC) Spawn(fn Task) {
	rt := tc.w.rt
	if tc.children == nil {
		tc.children = &Group{rt: rt}
	}
	tc.children.n.Add(1)
	rt.pending.Add(1)
	tc.w.shepherd.push(&taskItem{fn: fn, group: tc.children, counted: true})
	rt.queued.Add(1)
	tc.w.chargeSched(rt.cfg.SpawnCost)
}

// NewGroup creates an explicit task group (OpenMP `taskgroup`).
func (tc *TC) NewGroup() *Group { return &Group{rt: tc.w.rt} }

// Spawn creates a task belonging to this group on the spawner's shepherd.
func (g *Group) Spawn(tc *TC, fn Task) {
	rt := tc.w.rt
	g.n.Add(1)
	rt.pending.Add(1)
	tc.w.shepherd.push(&taskItem{fn: fn, group: g, counted: true})
	rt.queued.Add(1)
	tc.w.chargeSched(rt.cfg.SpawnCost)
}

// Pending returns the number of unfinished tasks in the group.
func (g *Group) Pending() int64 { return g.n.Load() }

// Sync waits for all tasks spawned by the current task (OpenMP
// `taskwait`). While waiting, the worker helps by executing queued tasks;
// when none are available it spins until the group drains.
func (tc *TC) Sync() {
	if tc.children == nil {
		return
	}
	tc.waitGroup(tc.children)
}

// Wait joins an explicit group, helping with queued work meanwhile, and
// marks a parallel-phase boundary on completion (releasing throttled
// spinners, paper §IV: "parallel region termination").
func (g *Group) Wait(tc *TC) {
	tc.waitGroup(g)
	g.rt.BumpEpoch()
}

// waitGroup drains a group with work-stealing help. With nothing to help
// with, the worker spins briefly then parks (spin-then-park, like a
// taskwait past its spin count).
func (tc *TC) waitGroup(g *Group) {
	rt := tc.w.rt
	cond := func() bool {
		return g.n.Load() == 0 || rt.queued.Load() > 0 || rt.shutdown.Load()
	}
	for g.n.Load() > 0 {
		if t := tc.w.findWork(); t != nil {
			tc.w.execute(t)
			continue
		}
		if rt.cfg.SpinOnlyIdle {
			tc.w.ctx.SpinUntil(cond)
		} else if !tc.w.ctx.SpinFor(cond, rt.cfg.IdleSpinPeriod) {
			tc.w.ctx.IdleUntil(cond)
		}
		if rt.shutdown.Load() && g.n.Load() > 0 {
			// Shutdown mid-wait: abandon; worker loop will observe it.
			return
		}
	}
}

// waitAllSpawned blocks (helping) until every transitively spawned task
// has completed — the implicit join at the end of the root "parallel
// region".
func (tc *TC) waitAllSpawned() {
	rt := tc.w.rt
	cond := func() bool {
		return rt.pending.Load() == 0 || rt.queued.Load() > 0 || rt.shutdown.Load()
	}
	for rt.pending.Load() > 0 {
		if t := tc.w.findWork(); t != nil {
			tc.w.execute(t)
			continue
		}
		if rt.cfg.SpinOnlyIdle {
			tc.w.ctx.SpinUntil(cond)
		} else if !tc.w.ctx.SpinFor(cond, rt.cfg.IdleSpinPeriod) {
			tc.w.ctx.IdleUntil(cond)
		}
		if rt.shutdown.Load() && rt.pending.Load() > 0 {
			return
		}
	}
}

// ParallelFor executes body over [0, n) in chunks (OpenMP `parallel for`).
// Chunks are distributed round-robin across shepherds and joined before
// returning; completion bumps the phase epoch (paper: "parallel loop
// termination" wakes throttled spinners). chunk <= 0 selects one chunk
// per worker (static-like scheduling).
func (tc *TC) ParallelFor(n, chunk int, body func(tc *TC, lo, hi int)) {
	if n <= 0 {
		return
	}
	rt := tc.w.rt
	if chunk <= 0 {
		chunk = (n + len(rt.workers) - 1) / len(rt.workers)
		if chunk < 1 {
			chunk = 1
		}
	}
	g := &Group{rt: rt}
	nChunks := 0
	for lo := 0; lo < n; lo += chunk {
		lo := lo
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		g.n.Add(1)
		rt.pending.Add(1)
		sh := rt.shepherds[nChunks%len(rt.shepherds)]
		sh.push(&taskItem{
			fn:      func(tc *TC) { body(tc, lo, hi) },
			group:   g,
			counted: true,
		})
		rt.queued.Add(1)
		nChunks++
	}
	// Loop setup overhead, charged in bulk.
	tc.w.chargeSched(rt.cfg.SpawnCost * float64(nChunks))
	tc.waitGroup(g)
	rt.BumpEpoch()
}
