package qthreads

import (
	"sync"
	"sync/atomic"
)

// taskItem is a queued task: the closure plus the group accounting it
// reports completion to.
type taskItem struct {
	fn      Task
	group   *Group // parent's child group; nil for the root task
	counted bool   // whether it contributes to Runtime.pending
}

// shepherd is one locality domain (one per socket): a LIFO queue shared by
// the socket's workers, stolen from FIFO-end by other shepherds' workers
// (Sherwood scheduler, paper §III-A).
type shepherd struct {
	id int

	mu    sync.Mutex
	queue []*taskItem

	// active counts this shepherd's workers currently executing tasks;
	// the MAESTRO throttle gate compares it against the shepherd-local
	// limit.
	active atomic.Int32
}

// push adds a task at the LIFO end.
func (sh *shepherd) push(t *taskItem) {
	sh.mu.Lock()
	sh.queue = append(sh.queue, t)
	sh.mu.Unlock()
}

// pop removes the most recently pushed task (LIFO: constructive cache
// sharing within the socket).
func (sh *shepherd) pop() *taskItem {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := len(sh.queue)
	if n == 0 {
		return nil
	}
	t := sh.queue[n-1]
	sh.queue[n-1] = nil
	sh.queue = sh.queue[:n-1]
	return t
}

// stealFrom removes the oldest task (FIFO end): thieves take the work
// least likely to be cache-hot in the victim socket.
func (sh *shepherd) stealFrom() *taskItem {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.queue) == 0 {
		return nil
	}
	t := sh.queue[0]
	sh.queue[0] = nil
	sh.queue = sh.queue[1:]
	return t
}

// size reports the queue length (for tests and stats).
func (sh *shepherd) size() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.queue)
}
