package rcr

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// Binary snapshot encoding. The format is self-describing (meter names
// travel with values), mirroring the real RCRdaemon's self-describing
// shared-memory structure:
//
//	magic   [4]byte "RCR1"
//	now     int64 (ns)
//	system  meterList
//	nSock   uint16
//	per socket: meterList, nCore uint16, per core: meterList
//
//	meterList: uint16 count, then per meter:
//	  uint16 name length, name bytes, float64 value, int64 updated (ns)
//
// All integers are little-endian. Snapshot meters are name-sorted (the
// order is fixed at blackboard registration time), so two snapshots of
// identical state encode byte-identically.
//
// delta.go defines the companion incremental formats ("RCRF" full frame,
// "RCRD" delta frame) used by the pub/sub stream, where an unchanged
// board costs a fixed-size heartbeat instead of a full serialization.

var snapshotMagic = [4]byte{'R', 'C', 'R', '1'}

// maxMeters bounds decoded list sizes to keep a corrupt or hostile stream
// from causing huge allocations.
const maxMeters = 1 << 12

// snapshotSize returns the exact encoded size of s, so encoders can
// allocate (or grow) once instead of incrementally.
func snapshotSize(s Snapshot) int {
	n := 4 + 8 // magic + now
	n += meterListSize(s.System)
	n += 2 // nSock
	for _, sock := range s.Sockets {
		n += meterListSize(sock.Meters)
		n += 2 // nCore
		for _, core := range sock.Cores {
			n += meterListSize(core)
		}
	}
	return n
}

func meterListSize(ms []MeterValue) int {
	n := 2 // count
	for _, m := range ms {
		n += 2 + len(m.Name) + 8 + 8
	}
	return n
}

// AppendSnapshot serializes s onto dst and returns the extended slice.
// The exact encoded size is computed up front, so at most one allocation
// happens (none when dst has capacity) — this is the hot-path form used
// by the IPC server's per-connection scratch buffers.
func AppendSnapshot(dst []byte, s Snapshot) []byte {
	need := snapshotSize(s)
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, snapshotMagic[:]...)
	dst = appendInt64(dst, int64(s.Now))
	dst = appendMeters(dst, s.System)
	dst = appendUint16(dst, uint16(len(s.Sockets)))
	for _, sock := range s.Sockets {
		dst = appendMeters(dst, sock.Meters)
		dst = appendUint16(dst, uint16(len(sock.Cores)))
		for _, core := range sock.Cores {
			dst = appendMeters(dst, core)
		}
	}
	return dst
}

// EncodeSnapshot serializes a snapshot into a fresh, exactly-sized
// buffer (a single allocation).
func EncodeSnapshot(s Snapshot) []byte {
	return AppendSnapshot(make([]byte, 0, snapshotSize(s)), s)
}

// DecodeSnapshot parses a snapshot previously produced by EncodeSnapshot.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	r := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return Snapshot{}, fmt.Errorf("rcr: decoding magic: %w", err)
	}
	if magic != snapshotMagic {
		return Snapshot{}, fmt.Errorf("rcr: bad magic %q", magic[:])
	}
	now, err := readInt64(r)
	if err != nil {
		return Snapshot{}, err
	}
	s := Snapshot{Now: time.Duration(now)}
	if s.System, err = readMeters(r); err != nil {
		return Snapshot{}, err
	}
	nSock, err := readUint16(r)
	if err != nil {
		return Snapshot{}, err
	}
	if nSock > maxMeters {
		return Snapshot{}, fmt.Errorf("rcr: implausible socket count %d", nSock)
	}
	s.Sockets = make([]DomainSnap, nSock)
	for i := range s.Sockets {
		if s.Sockets[i].Meters, err = readMeters(r); err != nil {
			return Snapshot{}, err
		}
		nCore, err := readUint16(r)
		if err != nil {
			return Snapshot{}, err
		}
		if nCore > maxMeters {
			return Snapshot{}, fmt.Errorf("rcr: implausible core count %d", nCore)
		}
		s.Sockets[i].Cores = make([][]MeterValue, nCore)
		for c := range s.Sockets[i].Cores {
			if s.Sockets[i].Cores[c], err = readMeters(r); err != nil {
				return Snapshot{}, err
			}
		}
	}
	if r.Len() != 0 {
		return Snapshot{}, fmt.Errorf("rcr: %d trailing bytes after snapshot", r.Len())
	}
	return s, nil
}

func appendMeters(dst []byte, ms []MeterValue) []byte {
	dst = appendUint16(dst, uint16(len(ms)))
	for _, m := range ms {
		dst = appendUint16(dst, uint16(len(m.Name)))
		dst = append(dst, m.Name...)
		dst = appendFloat64(dst, m.Value)
		dst = appendInt64(dst, int64(m.Updated))
	}
	return dst
}

func readMeters(r *bytes.Reader) ([]MeterValue, error) {
	n, err := readUint16(r)
	if err != nil {
		return nil, err
	}
	if n > maxMeters {
		return nil, fmt.Errorf("rcr: implausible meter count %d", n)
	}
	ms := make([]MeterValue, n)
	for i := range ms {
		nameLen, err := readUint16(r)
		if err != nil {
			return nil, err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("rcr: decoding meter name: %w", err)
		}
		ms[i].Name = string(name)
		if ms[i].Value, err = readFloat64(r); err != nil {
			return nil, err
		}
		upd, err := readInt64(r)
		if err != nil {
			return nil, err
		}
		ms[i].Updated = time.Duration(upd)
	}
	return ms, nil
}

func appendUint16(dst []byte, v uint16) []byte {
	return append(dst, byte(v), byte(v>>8))
}

func appendUint32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendUint64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendInt64(dst []byte, v int64) []byte {
	return appendUint64(dst, uint64(v))
}

func appendFloat64(dst []byte, v float64) []byte {
	return appendUint64(dst, math.Float64bits(v))
}

func readUint16(r *bytes.Reader) (uint16, error) {
	var buf [2]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("rcr: decoding uint16: %w", err)
	}
	return binary.LittleEndian.Uint16(buf[:]), nil
}

func readInt64(r *bytes.Reader) (int64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("rcr: decoding int64: %w", err)
	}
	return int64(binary.LittleEndian.Uint64(buf[:])), nil
}

func readFloat64(r *bytes.Reader) (float64, error) {
	v, err := readInt64(r)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(uint64(v)), nil
}

// WriteJSON emits the snapshot as indented JSON — the interop-friendly
// alternative to the compact binary encoding, for piping rcrd queries
// into other tooling.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
