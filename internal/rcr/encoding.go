package rcr

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// Binary snapshot encoding. The format is self-describing (meter names
// travel with values), mirroring the real RCRdaemon's self-describing
// shared-memory structure:
//
//	magic   [4]byte "RCR1"
//	now     int64 (ns)
//	system  meterList
//	nSock   uint16
//	per socket: meterList, nCore uint16, per core: meterList
//
//	meterList: uint16 count, then per meter:
//	  uint16 name length, name bytes, float64 value, int64 updated (ns)
//
// All integers are little-endian.

var snapshotMagic = [4]byte{'R', 'C', 'R', '1'}

// maxMeters bounds decoded list sizes to keep a corrupt or hostile stream
// from causing huge allocations.
const maxMeters = 1 << 12

// EncodeSnapshot serializes a snapshot.
func EncodeSnapshot(s Snapshot) []byte {
	var b bytes.Buffer
	b.Write(snapshotMagic[:])
	writeInt64(&b, int64(s.Now))
	writeMeters(&b, s.System)
	writeUint16(&b, uint16(len(s.Sockets)))
	for _, sock := range s.Sockets {
		writeMeters(&b, sock.Meters)
		writeUint16(&b, uint16(len(sock.Cores)))
		for _, core := range sock.Cores {
			writeMeters(&b, core)
		}
	}
	return b.Bytes()
}

// DecodeSnapshot parses a snapshot previously produced by EncodeSnapshot.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	r := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return Snapshot{}, fmt.Errorf("rcr: decoding magic: %w", err)
	}
	if magic != snapshotMagic {
		return Snapshot{}, fmt.Errorf("rcr: bad magic %q", magic[:])
	}
	now, err := readInt64(r)
	if err != nil {
		return Snapshot{}, err
	}
	s := Snapshot{Now: time.Duration(now)}
	if s.System, err = readMeters(r); err != nil {
		return Snapshot{}, err
	}
	nSock, err := readUint16(r)
	if err != nil {
		return Snapshot{}, err
	}
	if nSock > maxMeters {
		return Snapshot{}, fmt.Errorf("rcr: implausible socket count %d", nSock)
	}
	s.Sockets = make([]DomainSnap, nSock)
	for i := range s.Sockets {
		if s.Sockets[i].Meters, err = readMeters(r); err != nil {
			return Snapshot{}, err
		}
		nCore, err := readUint16(r)
		if err != nil {
			return Snapshot{}, err
		}
		if nCore > maxMeters {
			return Snapshot{}, fmt.Errorf("rcr: implausible core count %d", nCore)
		}
		s.Sockets[i].Cores = make([][]MeterValue, nCore)
		for c := range s.Sockets[i].Cores {
			if s.Sockets[i].Cores[c], err = readMeters(r); err != nil {
				return Snapshot{}, err
			}
		}
	}
	if r.Len() != 0 {
		return Snapshot{}, fmt.Errorf("rcr: %d trailing bytes after snapshot", r.Len())
	}
	return s, nil
}

func writeMeters(b *bytes.Buffer, ms []MeterValue) {
	writeUint16(b, uint16(len(ms)))
	for _, m := range ms {
		writeUint16(b, uint16(len(m.Name)))
		b.WriteString(m.Name)
		writeFloat64(b, m.Value)
		writeInt64(b, int64(m.Updated))
	}
}

func readMeters(r *bytes.Reader) ([]MeterValue, error) {
	n, err := readUint16(r)
	if err != nil {
		return nil, err
	}
	if n > maxMeters {
		return nil, fmt.Errorf("rcr: implausible meter count %d", n)
	}
	ms := make([]MeterValue, n)
	for i := range ms {
		nameLen, err := readUint16(r)
		if err != nil {
			return nil, err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("rcr: decoding meter name: %w", err)
		}
		ms[i].Name = string(name)
		if ms[i].Value, err = readFloat64(r); err != nil {
			return nil, err
		}
		upd, err := readInt64(r)
		if err != nil {
			return nil, err
		}
		ms[i].Updated = time.Duration(upd)
	}
	return ms, nil
}

func writeUint16(b *bytes.Buffer, v uint16) {
	var buf [2]byte
	binary.LittleEndian.PutUint16(buf[:], v)
	b.Write(buf[:])
}

func writeInt64(b *bytes.Buffer, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	b.Write(buf[:])
}

func writeFloat64(b *bytes.Buffer, v float64) {
	writeInt64(b, int64(math.Float64bits(v)))
}

func readUint16(r *bytes.Reader) (uint16, error) {
	var buf [2]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("rcr: decoding uint16: %w", err)
	}
	return binary.LittleEndian.Uint16(buf[:]), nil
}

func readInt64(r *bytes.Reader) (int64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("rcr: decoding int64: %w", err)
	}
	return int64(binary.LittleEndian.Uint64(buf[:])), nil
}

func readFloat64(r *bytes.Reader) (float64, error) {
	v, err := readInt64(r)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(uint64(v)), nil
}

// WriteJSON emits the snapshot as indented JSON — the interop-friendly
// alternative to the compact binary encoding, for piping rcrd queries
// into other tooling.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
