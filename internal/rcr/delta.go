package rcr

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"time"
)

// Incremental snapshot encoding for the pub/sub stream (pubsub.go). The
// legacy "RCR1" snapshot is self-describing and order-independent; these
// frames instead address meters by slot index (meterID*nScopes + scope),
// the identity fixed at blackboard registration, so a tick where nothing
// moved costs a fixed-size heartbeat and a tick where k meters moved
// costs O(k):
//
//	full frame ("RCRF") — the schema + complete state, sent once at
//	subscribe and again after loss or a schema change:
//	  magic    [4]byte "RCRF"
//	  gen      uint32  schema generation
//	  ver      uint64  publish version this state reflects
//	  now      int64   (ns)
//	  flags    uint8   (FlagInitial | FlagResync | FlagSchemaChange)
//	  nSock    uint16, perSock uint16
//	  nNames   uint16, then per name: uint16 length + bytes
//	  nSlots   uint32
//	  present  bitmap, ceil(nSlots/8) bytes, LSB-first
//	  per present slot (ascending index): float64 value, int64 updated
//
//	delta frame ("RCRD") — changes in (from, to], sent every tick:
//	  magic    [4]byte "RCRD"
//	  gen      uint32
//	  from     uint64  basis publish version
//	  to       uint64  new publish version (== from: heartbeat, body ends)
//	  now      int64   (ns)
//	  flags    uint8
//	  nSlots   uint32
//	  changed  bitmap, ceil(nSlots/8) bytes, LSB-first
//	  per changed slot (ascending index): float64 value, int64 updated
//
// All integers are little-endian.

var (
	fullMagic  = [4]byte{'R', 'C', 'R', 'F'}
	deltaMagic = [4]byte{'R', 'C', 'R', 'D'}
)

// Frame flags.
const (
	// FlagInitial marks the full frame opening a subscription.
	FlagInitial uint8 = 1 << 0
	// FlagResync marks a full frame sent because the subscriber fell
	// behind (its queue overflowed) and deltas were dropped.
	FlagResync uint8 = 1 << 1
	// FlagSchemaChange marks a full frame sent because a new meter name
	// registered (the slot layout grew).
	FlagSchemaChange uint8 = 1 << 2
)

// maxFrameSlots bounds the decoded slot count: 1<<20 slots is a 128 KiB
// bitmap — far beyond any real topology, small enough to be harmless.
const maxFrameSlots = 1 << 20

// ErrDeltaGap reports a delta frame that does not connect to the state
// held by the subscriber (schema generation mismatch, or a basis version
// newer than the state). The subscriber must wait for — or request — a
// full frame.
var ErrDeltaGap = errors.New("rcr: delta frame does not extend held state")

// DeltaFrame is the decoded/collectable form of an "RCRD" frame. The
// slices are reused across Collect/Decode calls, so a warm frame costs
// zero allocations per tick.
type DeltaFrame struct {
	Gen    uint32
	From   uint64 // basis publish version
	To     uint64 // new publish version; == From means heartbeat
	Now    time.Duration
	Flags  uint8
	NSlots uint32
	Bitmap []byte    // ceil(NSlots/8), LSB-first; bit i = slot i changed
	Vals   []float64 // one per set bit, ascending slot index
	Upds   []int64
}

// Heartbeat reports whether the frame carries no slot changes.
func (f *DeltaFrame) Heartbeat() bool { return f.To == f.From }

// FullFrame is the decoded/collectable form of an "RCRF" frame.
type FullFrame struct {
	Gen     uint32
	Ver     uint64
	Now     time.Duration
	Flags   uint8
	Sockets uint16
	PerSock uint16
	Names   []string
	NSlots  uint32
	Bitmap  []byte // present slots
	Vals    []float64
	Upds    []int64
}

// growBitmap returns b resized (and zeroed) to hold n bits, reusing its
// backing array when possible.
func growBitmap(b []byte, n int) []byte {
	need := (n + 7) / 8
	if cap(b) < need {
		return make([]byte, need)
	}
	b = b[:need]
	for i := range b {
		b[i] = 0
	}
	return b
}

// CollectDelta scans the blackboard for slots written after sinceVer and
// fills f with them. f's slices are reused. The frame's To is the
// highest version actually observed in the scan — never the board's
// version counter, which may have been claimed by a write still in
// flight; such a write is simply picked up by the next collection.
func (bb *Blackboard) CollectDelta(sinceVer uint64, f *DeltaFrame) {
	sc := bb.schema.Load()
	slots := *bb.slots.Load()
	f.Gen = sc.gen
	f.From = sinceVer
	f.Flags = 0
	f.NSlots = uint32(len(slots))
	f.Bitmap = growBitmap(f.Bitmap, len(slots))
	f.Vals = f.Vals[:0]
	f.Upds = f.Upds[:0]
	maxVer := sinceVer
	for i, sl := range slots {
		b, u, v := sl.load()
		if v > sinceVer {
			f.Bitmap[i>>3] |= 1 << (i & 7)
			f.Vals = append(f.Vals, math.Float64frombits(b))
			f.Upds = append(f.Upds, u)
			if v > maxVer {
				maxVer = v
			}
		}
	}
	f.To = maxVer
}

// CollectFull fills f with the board's complete state and schema. Like
// CollectDelta, Ver is the highest version observed in the scan, so a
// delta collected later with From = an earlier collection's To never
// skips a write this frame missed.
func (bb *Blackboard) CollectFull(f *FullFrame) {
	sc := bb.schema.Load()
	slots := *bb.slots.Load()
	f.Gen = sc.gen
	f.Flags = 0
	f.Sockets = uint16(bb.nSock)
	f.PerSock = uint16(bb.perSock)
	f.Names = append(f.Names[:0], sc.names...)
	f.NSlots = uint32(len(slots))
	f.Bitmap = growBitmap(f.Bitmap, len(slots))
	f.Vals = f.Vals[:0]
	f.Upds = f.Upds[:0]
	var maxVer uint64
	for i, sl := range slots {
		b, u, v := sl.load()
		if v != 0 {
			f.Bitmap[i>>3] |= 1 << (i & 7)
			f.Vals = append(f.Vals, math.Float64frombits(b))
			f.Upds = append(f.Upds, u)
			if v > maxVer {
				maxVer = v
			}
		}
	}
	f.Ver = maxVer
}

// deltaFrameSize returns the exact encoded size of f.
func deltaFrameSize(f *DeltaFrame) int {
	n := 4 + 4 + 8 + 8 + 8 + 1
	if !f.Heartbeat() {
		n += 4 + len(f.Bitmap) + 16*len(f.Vals)
	}
	return n
}

// AppendDeltaFrame serializes f onto dst (one allocation at most).
func AppendDeltaFrame(dst []byte, f *DeltaFrame) []byte {
	need := deltaFrameSize(f)
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, deltaMagic[:]...)
	dst = appendUint32(dst, f.Gen)
	dst = appendUint64(dst, f.From)
	dst = appendUint64(dst, f.To)
	dst = appendInt64(dst, int64(f.Now))
	dst = append(dst, f.Flags)
	if f.Heartbeat() {
		return dst
	}
	dst = appendUint32(dst, f.NSlots)
	dst = append(dst, f.Bitmap...)
	for i := range f.Vals {
		dst = appendFloat64(dst, f.Vals[i])
		dst = appendInt64(dst, f.Upds[i])
	}
	return dst
}

// fullFrameSize returns the exact encoded size of f.
func fullFrameSize(f *FullFrame) int {
	n := 4 + 4 + 8 + 8 + 1 + 2 + 2 + 2
	for _, name := range f.Names {
		n += 2 + len(name)
	}
	n += 4 + len(f.Bitmap) + 16*len(f.Vals)
	return n
}

// AppendFullFrame serializes f onto dst (one allocation at most).
func AppendFullFrame(dst []byte, f *FullFrame) []byte {
	need := fullFrameSize(f)
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, fullMagic[:]...)
	dst = appendUint32(dst, f.Gen)
	dst = appendUint64(dst, f.Ver)
	dst = appendInt64(dst, int64(f.Now))
	dst = append(dst, f.Flags)
	dst = appendUint16(dst, f.Sockets)
	dst = appendUint16(dst, f.PerSock)
	dst = appendUint16(dst, uint16(len(f.Names)))
	for _, name := range f.Names {
		dst = appendUint16(dst, uint16(len(name)))
		dst = append(dst, name...)
	}
	dst = appendUint32(dst, f.NSlots)
	dst = append(dst, f.Bitmap...)
	for i := range f.Vals {
		dst = appendFloat64(dst, f.Vals[i])
		dst = appendInt64(dst, f.Upds[i])
	}
	return dst
}

// frameReader is a minimal cursor over a frame's bytes; unlike
// bytes.Reader it can reuse caller slices without interface escapes.
type frameReader struct {
	data []byte
	off  int
}

func (r *frameReader) take(n int) ([]byte, error) {
	if len(r.data)-r.off < n {
		return nil, fmt.Errorf("rcr: frame truncated at byte %d (need %d more)", r.off, n)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *frameReader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return uint16(b[0]) | uint16(b[1])<<8, nil
}

func (r *frameReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

func (r *frameReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
}

// popcount counts set bits in a bitmap.
func popcount(bm []byte) int {
	n := 0
	for _, b := range bm {
		n += bits.OnesCount8(b)
	}
	return n
}

// readSlotBody parses the shared tail of both frame kinds: nSlots,
// bitmap, and the (value, updated) pair per set bit.
func readSlotBody(r *frameReader) (nSlots uint32, bitmap []byte, vals []float64, upds []int64, err error) {
	if nSlots, err = r.u32(); err != nil {
		return
	}
	if nSlots > maxFrameSlots {
		err = fmt.Errorf("rcr: implausible frame slot count %d", nSlots)
		return
	}
	raw, err := r.take(int(nSlots+7) / 8)
	if err != nil {
		return
	}
	bitmap = append([]byte(nil), raw...)
	// Set bits past nSlots would smuggle extra values; reject them.
	for i := int(nSlots); i < 8*len(bitmap); i++ {
		if bitmap[i>>3]&(1<<(i&7)) != 0 {
			err = fmt.Errorf("rcr: frame bitmap bit %d set beyond %d slots", i, nSlots)
			return
		}
	}
	n := popcount(bitmap)
	vals = make([]float64, n)
	upds = make([]int64, n)
	for i := 0; i < n; i++ {
		var vb, ub uint64
		if vb, err = r.u64(); err != nil {
			return
		}
		if ub, err = r.u64(); err != nil {
			return
		}
		vals[i] = math.Float64frombits(vb)
		upds[i] = int64(ub)
	}
	return
}

// IsDeltaFrame reports whether data begins with the delta-frame magic —
// how a subscriber distinguishes pushed frame kinds.
func IsDeltaFrame(data []byte) bool {
	return len(data) >= 4 && [4]byte(data[:4]) == deltaMagic
}

// IsFullFrame reports whether data begins with the full-frame magic.
func IsFullFrame(data []byte) bool {
	return len(data) >= 4 && [4]byte(data[:4]) == fullMagic
}

// DecodeDeltaFrame parses an "RCRD" frame into f (slices replaced).
func DecodeDeltaFrame(data []byte, f *DeltaFrame) error {
	r := &frameReader{data: data}
	magic, err := r.take(4)
	if err != nil {
		return err
	}
	if [4]byte(magic) != deltaMagic {
		return fmt.Errorf("rcr: bad delta magic %q", magic)
	}
	if f.Gen, err = r.u32(); err != nil {
		return err
	}
	if f.From, err = r.u64(); err != nil {
		return err
	}
	if f.To, err = r.u64(); err != nil {
		return err
	}
	now, err := r.u64()
	if err != nil {
		return err
	}
	f.Now = time.Duration(int64(now))
	flags, err := r.take(1)
	if err != nil {
		return err
	}
	f.Flags = flags[0]
	if f.To < f.From {
		return fmt.Errorf("rcr: delta frame runs backwards (%d -> %d)", f.From, f.To)
	}
	if f.Heartbeat() {
		f.NSlots, f.Bitmap, f.Vals, f.Upds = 0, nil, nil, nil
	} else {
		if f.NSlots, f.Bitmap, f.Vals, f.Upds, err = readSlotBody(r); err != nil {
			return err
		}
		if len(f.Vals) == 0 {
			return fmt.Errorf("rcr: delta frame advances %d -> %d with no changed slots", f.From, f.To)
		}
	}
	if r.off != len(data) {
		return fmt.Errorf("rcr: %d trailing bytes after delta frame", len(data)-r.off)
	}
	return nil
}

// DecodeFullFrame parses an "RCRF" frame into f (slices replaced).
func DecodeFullFrame(data []byte, f *FullFrame) error {
	r := &frameReader{data: data}
	magic, err := r.take(4)
	if err != nil {
		return err
	}
	if [4]byte(magic) != fullMagic {
		return fmt.Errorf("rcr: bad full-frame magic %q", magic)
	}
	if f.Gen, err = r.u32(); err != nil {
		return err
	}
	if f.Ver, err = r.u64(); err != nil {
		return err
	}
	now, err := r.u64()
	if err != nil {
		return err
	}
	f.Now = time.Duration(int64(now))
	flags, err := r.take(1)
	if err != nil {
		return err
	}
	f.Flags = flags[0]
	if f.Sockets, err = r.u16(); err != nil {
		return err
	}
	if f.PerSock, err = r.u16(); err != nil {
		return err
	}
	nNames, err := r.u16()
	if err != nil {
		return err
	}
	if nNames > maxMeters {
		return fmt.Errorf("rcr: implausible name count %d", nNames)
	}
	f.Names = f.Names[:0]
	for i := 0; i < int(nNames); i++ {
		nameLen, err := r.u16()
		if err != nil {
			return err
		}
		raw, err := r.take(int(nameLen))
		if err != nil {
			return err
		}
		f.Names = append(f.Names, string(raw))
	}
	if f.NSlots, f.Bitmap, f.Vals, f.Upds, err = readSlotBody(r); err != nil {
		return err
	}
	// The slot count must match the declared topology and name table:
	// slot index arithmetic depends on it.
	nScopes := 1 + int(f.Sockets) + int(f.Sockets)*int(f.PerSock)
	if int(f.NSlots) != len(f.Names)*nScopes {
		return fmt.Errorf("rcr: full frame slot count %d != %d names × %d scopes",
			f.NSlots, len(f.Names), nScopes)
	}
	if r.off != len(data) {
		return fmt.Errorf("rcr: %d trailing bytes after full frame", len(data)-r.off)
	}
	return nil
}

// SubState is a subscriber's materialized copy of the blackboard, built
// from one full frame and advanced by delta frames. It detects gaps
// (dropped deltas, schema changes) so the subscriber knows to resync.
type SubState struct {
	Gen     uint32
	Ver     uint64
	Now     time.Duration
	Sockets int
	PerSock int
	Names   []string

	nScopes int
	present []bool
	vals    []float64
	upds    []int64
	ready   bool
}

// Ready reports whether a full frame has been applied yet.
func (st *SubState) Ready() bool { return st.ready }

// ApplyFull replaces the state with a full frame.
func (st *SubState) ApplyFull(f *FullFrame) error {
	nScopes := 1 + int(f.Sockets) + int(f.Sockets)*int(f.PerSock)
	if f.Sockets == 0 || f.PerSock == 0 {
		return fmt.Errorf("rcr: full frame with empty topology %d×%d", f.Sockets, f.PerSock)
	}
	st.Gen = f.Gen
	st.Ver = f.Ver
	st.Now = f.Now
	st.Sockets = int(f.Sockets)
	st.PerSock = int(f.PerSock)
	st.Names = append(st.Names[:0], f.Names...)
	st.nScopes = nScopes
	n := int(f.NSlots)
	if cap(st.present) < n {
		st.present = make([]bool, n)
		st.vals = make([]float64, n)
		st.upds = make([]int64, n)
	} else {
		st.present = st.present[:n]
		st.vals = st.vals[:n]
		st.upds = st.upds[:n]
	}
	k := 0
	for i := 0; i < n; i++ {
		if f.Bitmap[i>>3]&(1<<(i&7)) != 0 {
			st.present[i] = true
			st.vals[i] = f.Vals[k]
			st.upds[i] = f.Upds[k]
			k++
		} else {
			st.present[i] = false
			st.vals[i] = 0
			st.upds[i] = 0
		}
	}
	st.ready = true
	return nil
}

// ApplyDelta advances the state by one delta frame. Frames are applied
// only when they connect: the schema generation must match and the
// frame's basis must not be newer than the held version (From <= Ver) —
// otherwise ErrDeltaGap. A frame whose To is not newer than the held
// version carries nothing the state lacks (this happens benignly when a
// resync full frame observed writes a concurrently collected delta did
// not) and only refreshes Now.
func (st *SubState) ApplyDelta(f *DeltaFrame) error {
	if !st.ready {
		return ErrDeltaGap
	}
	if f.Gen != st.Gen {
		return fmt.Errorf("%w: schema gen %d, state holds %d", ErrDeltaGap, f.Gen, st.Gen)
	}
	if f.Heartbeat() {
		if f.Now > st.Now {
			st.Now = f.Now
		}
		return nil
	}
	if f.From > st.Ver {
		return fmt.Errorf("%w: basis %d, state holds %d", ErrDeltaGap, f.From, st.Ver)
	}
	if f.Now > st.Now {
		st.Now = f.Now
	}
	if f.To <= st.Ver {
		return nil // already covered by a newer full frame
	}
	if int(f.NSlots) > len(st.present) {
		return fmt.Errorf("%w: frame has %d slots, state %d (missed schema change)",
			ErrDeltaGap, f.NSlots, len(st.present))
	}
	k := 0
	for i := 0; i < int(f.NSlots); i++ {
		if f.Bitmap[i>>3]&(1<<(i&7)) != 0 {
			st.present[i] = true
			st.vals[i] = f.Vals[k]
			st.upds[i] = f.Upds[k]
			k++
		}
	}
	st.Ver = f.To
	return nil
}

// Snapshot converts the state to the legacy deep-copy form, meters
// name-sorted exactly as Blackboard.Snapshot produces them.
func (st *SubState) Snapshot() Snapshot {
	s := Snapshot{Now: st.Now, System: []MeterValue{}}
	if !st.ready {
		return s
	}
	sorted := make([]int, len(st.Names))
	for i := range sorted {
		sorted[i] = i
	}
	sort.Slice(sorted, func(a, b int) bool { return st.Names[sorted[a]] < st.Names[sorted[b]] })
	scope := func(dst []MeterValue, sc int) []MeterValue {
		for _, id := range sorted {
			idx := id*st.nScopes + sc
			if idx < len(st.present) && st.present[idx] {
				dst = append(dst, MeterValue{
					Name:    st.Names[id],
					Value:   st.vals[idx],
					Updated: time.Duration(st.upds[idx]),
				})
			}
		}
		return dst
	}
	s.System = scope(s.System, 0)
	s.Sockets = make([]DomainSnap, st.Sockets)
	for i := range s.Sockets {
		ds := &s.Sockets[i]
		ds.Meters = scope([]MeterValue{}, 1+i)
		ds.Cores = make([][]MeterValue, st.PerSock)
		for c := range ds.Cores {
			ds.Cores[c] = scope([]MeterValue{}, 1+st.Sockets+i*st.PerSock+c)
		}
	}
	return s
}
