package rcr

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// The IPC protocol stands in for the real RCRdaemon's shared-memory
// region: a client connects to a Unix socket, sends a one-line request,
// and receives a length-prefixed binary payload.
//
//	request:  "GET\n"  response: uint32 little-endian length, then EncodeSnapshot bytes
//	request:  "MET\n"  response: uint32 little-endian length, then metrics text
//	                   (telemetry.Registry.WriteText form; empty when the
//	                   server is not instrumented)
//	request:  "SUB\n"  response: a stream of uint32-length-prefixed frames
//	                   pushed on every sampler tick — a full frame
//	                   ("RCRF") first, then delta frames ("RCRD"); see
//	                   delta.go for the wire format and pubsub.go for the
//	                   fan-out. Requires Server.Pub; rejected otherwise.
//	request:  "CAP\n"  then a uint32-length-prefixed CAPW payload
//	                   (fence.go): a fenced cap write / lease renewal.
//	                   Response: a uint32-length-prefixed CAPA ack.
//	                   Requires Server.Fence; rejected otherwise.
//
// An overloaded server may answer any request with the 4-byte BUSY
// header (0xFFFFFFFF) and close the connection — a cheap load-shed
// response that costs the server one write and tells the client to back
// off instead of letting it hang in the listener backlog. Clients map it
// to ErrBusy; pre-BUSY clients reject it as an implausible length, which
// still fails fast.

// maxSnapshotBytes bounds the response size a client will accept.
const maxSnapshotBytes = 16 << 20

// busyHeader is the length-field sentinel of a load-shed response. It is
// deliberately far above maxSnapshotBytes so no real payload can collide
// with it.
const busyHeader = ^uint32(0)

// ErrBusy reports a request shed by an overloaded server (the BUSY
// response). It is transient: the client should back off and retry.
var ErrBusy = errors.New("rcr: server busy (load shed)")

// Defaults for the server's per-connection protections. The protocol is
// a single tiny request and one bounded response, so anything slower
// than these is a stalled or hostile peer, not a slow link.
const (
	DefaultIPCTimeout  = 2 * time.Second
	DefaultMaxConns    = 64
	DefaultAcceptQueue = 128
)

// DefaultQueryTimeout bounds Query's whole dial/request/response
// exchange when the caller supplies no context.
const DefaultQueryTimeout = 5 * time.Second

// Accept-loop backoff bounds: transient Accept errors (EMFILE, ENFILE,
// ECONNABORTED, timeouts) back off exponentially between these instead
// of killing Serve.
const (
	acceptBackoffMin = time.Millisecond
	acceptBackoffMax = time.Second
)

// maxRateBuckets bounds the per-client token-bucket table; past it the
// table is reset rather than grown without bound (an attacker cycling
// source addresses buys amnesia, not memory).
const maxRateBuckets = 4096

// Server serves blackboard snapshots over a listener. Configure the
// exported fields (if desired) and Instrument before calling Serve.
type Server struct {
	bb    *Blackboard
	clock Clock
	ln    net.Listener

	// ReadTimeout and WriteTimeout bound each connection's request read
	// and response write. Zero selects DefaultIPCTimeout; a stalled or
	// malicious client can hold a handler (and one connection slot) no
	// longer than their sum.
	ReadTimeout, WriteTimeout time.Duration
	// MaxConns caps concurrently served connections (the handler worker
	// pool size). Zero selects DefaultMaxConns.
	MaxConns int
	// AcceptQueue bounds how many accepted connections may wait for a
	// free handler. Zero selects DefaultAcceptQueue.
	AcceptQueue int
	// Shed selects the overload policy once the accept queue is full:
	// true answers further clients with a cheap BUSY response and closes
	// them (load shedding — clients fail fast and retry); false blocks
	// the accept loop, letting clients pile up in the listener backlog
	// (the legacy behavior).
	Shed bool
	// RateLimit, when positive, applies a token-bucket limit of this
	// many requests per second per client address (RateBurst deep,
	// default 2× the rate). Clients over their budget get the BUSY
	// response. Unix-socket peers usually share one anonymous address —
	// and thus one bucket — so this is chiefly for TCP listeners.
	RateLimit float64
	// RateBurst is the token-bucket depth when RateLimit is set. Zero
	// selects 2× RateLimit (minimum 1).
	RateBurst int
	// DrainTimeout is how long Close lets in-flight and queued handlers
	// finish naturally before expiring their deadlines. Zero expires
	// immediately (fastest shutdown; handlers unwind via I/O errors).
	DrainTimeout time.Duration
	// Pub, when non-nil, enables the "SUB\n" op: subscribing connections
	// are hijacked out of the request/response worker pool and handed to
	// the publisher's per-subscriber writer. Drive Pub.Tick from the
	// sampler (Sampler.AttachPublisher) or Pub.Run. Close detaches all
	// subscribers. Set before Serve.
	Pub *Publisher
	// Fence, when non-nil, enables the "CAP\n" op: fenced cap writes and
	// lease renewals from the cluster tier's aggregator replicas are
	// decided by this guard (fence.go). Set before Serve.
	Fence *FenceGuard

	reg         *telemetry.Registry
	requests    *telemetry.Counter
	errors      *telemetry.Counter
	rejected    *telemetry.Counter
	shed        *telemetry.Counter
	ratelimited *telemetry.Counter
	acceptRetry *telemetry.Counter
	active      *telemetry.Gauge
	queueDepth  *telemetry.Gauge

	aborting atomic.Bool // Close is past its drain window: expire everything

	rateMu  sync.Mutex
	buckets map[string]*tokenBucket

	mu      sync.Mutex
	closed  bool
	conns   map[net.Conn]struct{}
	serving sync.WaitGroup
}

// tokenBucket is one client's request budget.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// NewServer creates a snapshot server; call Serve to run it.
func NewServer(bb *Blackboard, clock Clock, ln net.Listener) *Server {
	return &Server{bb: bb, clock: clock, ln: ln, conns: make(map[net.Conn]struct{})}
}

// Instrument registers the server's request/error counters in reg and
// makes reg's contents available to clients through the "MET" op. Call
// before Serve.
func (s *Server) Instrument(reg *telemetry.Registry) {
	s.reg = reg
	s.requests = reg.Counter("rcr_ipc_requests_total")
	s.errors = reg.Counter("rcr_ipc_errors_total")
	s.rejected = reg.Counter("rcr_ipc_bad_requests_total")
	s.shed = reg.Counter("rcr_ipc_shed_total")
	s.ratelimited = reg.Counter("rcr_ipc_ratelimited_total")
	s.acceptRetry = reg.Counter("rcr_ipc_accept_retries_total")
	s.active = reg.Gauge("rcr_ipc_active_conns")
	s.queueDepth = reg.Gauge("rcr_ipc_queue_depth")
}

// transientAcceptError reports whether an Accept failure is worth
// retrying: timeouts and the kernel's transient refusals (EMFILE,
// ECONNABORTED, ...) surface as net.Errors that are temporary, not as
// listener death.
func transientAcceptError(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	var te interface{ Temporary() bool }
	return errors.As(err, &te) && te.Temporary()
}

// Serve accepts connections until Close. It returns nil after Close.
//
// Admission control: accepted connections are handed to a fixed pool of
// MaxConns handler workers through a bounded queue of AcceptQueue; when
// both are full the server either sheds (BUSY response, Shed=true) or
// lets the listener backlog absorb the burst (Shed=false). Transient
// Accept errors back off exponentially and continue — they never kill
// the daemon.
func (s *Server) Serve() error {
	readTO, writeTO := s.ReadTimeout, s.WriteTimeout
	if readTO <= 0 {
		readTO = DefaultIPCTimeout
	}
	if writeTO <= 0 {
		writeTO = DefaultIPCTimeout
	}
	maxConns := s.MaxConns
	if maxConns <= 0 {
		maxConns = DefaultMaxConns
	}
	queueCap := s.AcceptQueue
	if queueCap <= 0 {
		queueCap = DefaultAcceptQueue
	}
	queue := make(chan net.Conn, queueCap)
	var workers sync.WaitGroup
	workers.Add(maxConns)
	for i := 0; i < maxConns; i++ {
		go func() {
			defer workers.Done()
			// Per-worker scratch: the snapshot copy and its encoding reuse
			// the same backing arrays request after request, so the GET hot
			// path allocates nothing once warm.
			var scr encodeScratch
			for conn := range queue {
				s.queueDepth.Set(float64(len(queue)))
				hijacked := s.handle(conn, readTO, writeTO, &scr)
				if !hijacked {
					s.untrack(conn)
				}
				s.serving.Done()
			}
		}()
	}
	defer func() {
		close(queue)
		workers.Wait()
	}()
	backoff := acceptBackoffMin
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			if transientAcceptError(err) {
				// EMFILE, ECONNABORTED, accept timeouts: back off and keep
				// serving. Returning here would kill the daemon over a
				// transient kernel refusal.
				s.acceptRetry.Inc()
				time.Sleep(backoff)
				backoff *= 2
				if backoff > acceptBackoffMax {
					backoff = acceptBackoffMax
				}
				continue
			}
			return fmt.Errorf("rcr: accept: %w", err)
		}
		backoff = acceptBackoffMin
		if !s.admitRate(conn, writeTO) {
			continue // over the client's token budget; BUSY already sent
		}
		if !s.track(conn) {
			// Closed while accepting: drop the straggler.
			conn.Close()
			return nil
		}
		select {
		case queue <- conn:
			s.queueDepth.Set(float64(len(queue)))
		default:
			if s.Shed {
				// Queue full: answer cheaply instead of hanging the client.
				s.shedConn(conn, writeTO)
				continue
			}
			queue <- conn // legacy policy: block; backlog absorbs the burst
			s.queueDepth.Set(float64(len(queue)))
		}
	}
}

// admitRate enforces the per-client token bucket. A client over budget
// gets the BUSY response and false.
func (s *Server) admitRate(conn net.Conn, writeTO time.Duration) bool {
	if s.RateLimit <= 0 {
		return true
	}
	burst := float64(s.RateBurst)
	if burst < 1 {
		burst = 2 * s.RateLimit
		if burst < 1 {
			burst = 1
		}
	}
	key := conn.RemoteAddr().String()
	now := time.Now()
	s.rateMu.Lock()
	if s.buckets == nil || len(s.buckets) > maxRateBuckets {
		s.buckets = make(map[string]*tokenBucket)
	}
	b := s.buckets[key]
	if b == nil {
		b = &tokenBucket{tokens: burst, last: now}
		s.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * s.RateLimit
	if b.tokens > burst {
		b.tokens = burst
	}
	b.last = now
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	s.rateMu.Unlock()
	if !ok {
		s.ratelimited.Inc()
		s.replyBusy(conn, writeTO)
	}
	return ok
}

// shedConn answers an over-capacity connection with BUSY and closes it.
func (s *Server) shedConn(conn net.Conn, writeTO time.Duration) {
	s.shed.Inc()
	s.replyBusy(conn, writeTO)
	s.untrack(conn)
	s.serving.Done()
}

// replyBusy writes the BUSY header under a short deadline and closes the
// connection. Failures are ignored — the client learns of the overload
// either way.
func (s *Server) replyBusy(conn net.Conn, writeTO time.Duration) {
	if writeTO > 100*time.Millisecond {
		writeTO = 100 * time.Millisecond
	}
	_ = conn.SetWriteDeadline(time.Now().Add(writeTO))
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], busyHeader)
	_, _ = conn.Write(hdr[:])
	_ = conn.Close()
}

// track registers a live connection; it reports false when the server
// is already closed (the caller must drop the connection).
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	s.serving.Add(1)
	s.active.Set(float64(len(s.conns)))
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.active.Set(float64(len(s.conns)))
	s.mu.Unlock()
}

// deadline returns the I/O deadline for a handler step: the normal
// timeout while serving, the epoch once Close has decided to abort
// stragglers (so a handler that re-arms its deadline mid-drain still
// unwinds immediately).
func (s *Server) deadline(to time.Duration) time.Time {
	if s.aborting.Load() {
		return time.Unix(1, 0)
	}
	return time.Now().Add(to)
}

// Close stops the server: no new connections are accepted, in-flight and
// queued handlers get DrainTimeout to finish naturally, stragglers are
// then hastened by expiring their deadlines, and Close returns only
// after every handler has drained.
func (s *Server) Close() error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	var err error
	if !alreadyClosed {
		err = s.ln.Close()
	}
	if d := s.DrainTimeout; d > 0 {
		// Graceful phase: wait for the WaitGroup under the drain deadline.
		drained := make(chan struct{})
		go func() {
			s.serving.Wait()
			close(drained)
		}()
		select {
		case <-drained:
		case <-time.After(d):
		}
	}
	// Force phase: expire deadlines on whatever is still alive so stalled
	// handlers unwind immediately instead of waiting out their timeouts.
	// Subscriber connections are tracked too, so this also unwedges any
	// publisher writer blocked mid-Write.
	s.aborting.Store(true)
	past := time.Unix(1, 0)
	s.mu.Lock()
	for conn := range s.conns {
		_ = conn.SetDeadline(past)
	}
	s.mu.Unlock()
	s.serving.Wait()
	if s.Pub != nil {
		s.Pub.DetachAll()
	}
	return err
}

// encodeScratch is a handler worker's reusable snapshot-and-buffer pair.
type encodeScratch struct {
	snap Snapshot
	buf  []byte
	req  [4]byte
}

// handle serves one connection. It reports true when the connection was
// hijacked by the publisher ("SUB\n"): the subscriber's writer now owns
// the conn, closes it on exit, and untracks it via its exit hook.
func (s *Server) handle(conn net.Conn, readTO, writeTO time.Duration, scr *encodeScratch) (hijacked bool) {
	defer func() {
		if hijacked {
			return
		}
		if err := conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			// Nothing useful to do with a close error on a per-request
			// connection; the client has the data or it doesn't.
			_ = err
		}
	}()
	s.requests.Inc()
	if err := conn.SetReadDeadline(s.deadline(readTO)); err != nil {
		s.errors.Inc()
		return false
	}
	if _, err := io.ReadFull(conn, scr.req[:]); err != nil {
		s.errors.Inc()
		return false
	}
	var payload []byte
	switch string(scr.req[:]) {
	case "GET\n":
		s.bb.SnapshotInto(&scr.snap, s.clock.Now())
		scr.buf = AppendSnapshot(scr.buf[:0], scr.snap)
		payload = scr.buf
	case "MET\n":
		var buf bytes.Buffer
		if s.reg != nil {
			if err := s.reg.WriteText(&buf); err != nil {
				s.errors.Inc()
				return false
			}
		}
		payload = buf.Bytes()
	case "CAP\n":
		if s.Fence == nil {
			s.rejected.Inc()
			return false
		}
		var lenHdr [4]byte
		if _, err := io.ReadFull(conn, lenHdr[:]); err != nil {
			s.errors.Inc()
			return false
		}
		n := binary.LittleEndian.Uint32(lenHdr[:])
		if n != capWriteLen {
			s.rejected.Inc()
			return false
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(conn, body); err != nil {
			s.errors.Inc()
			return false
		}
		w, err := DecodeCapWrite(body)
		if err != nil {
			s.rejected.Inc()
			return false
		}
		scr.buf = AppendCapAck(scr.buf[:0], s.Fence.Offer(w))
		payload = scr.buf
	case "MEM\n":
		if s.Fence == nil {
			s.rejected.Inc()
			return false
		}
		var lenHdr [4]byte
		if _, err := io.ReadFull(conn, lenHdr[:]); err != nil {
			s.errors.Inc()
			return false
		}
		n := binary.LittleEndian.Uint32(lenHdr[:])
		if n < uint32(capWriteLen+12) || n > uint32(capWriteLen+12+MaxMemFrame) {
			s.rejected.Inc()
			return false
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(conn, body); err != nil {
			s.errors.Inc()
			return false
		}
		w, err := DecodeMemWrite(body)
		if err != nil {
			s.rejected.Inc()
			return false
		}
		scr.buf = AppendMemAck(scr.buf[:0], s.Fence.OfferMem(w))
		payload = scr.buf
	case "SUB\n":
		if s.Pub == nil {
			s.rejected.Inc()
			return false
		}
		_ = conn.SetReadDeadline(time.Time{})
		if err := s.Pub.AttachConn(conn, func() { s.untrack(conn) }); err != nil {
			s.errors.Inc()
			return false
		}
		return true
	default:
		s.rejected.Inc()
		return false
	}
	if err := conn.SetWriteDeadline(s.deadline(writeTO)); err != nil {
		s.errors.Inc()
		return false
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(hdr[:]); err != nil {
		s.errors.Inc()
		return false
	}
	if _, err := conn.Write(payload); err != nil {
		s.errors.Inc()
		return false
	}
	return false
}

// Query connects to addr (a Unix socket path by default network
// "unix"), requests a snapshot, and decodes it. The whole exchange is
// bounded by DefaultQueryTimeout; use QueryContext for caller-supplied
// deadlines or cancellation.
func Query(network, addr string) (Snapshot, error) {
	ctx, cancel := context.WithTimeout(context.Background(), DefaultQueryTimeout)
	defer cancel()
	return QueryContext(ctx, network, addr)
}

// QueryContext is Query under a context: the dial, request write and
// response read all respect ctx's deadline and cancellation, so a dead
// or wedged server cannot block the caller indefinitely.
func QueryContext(ctx context.Context, network, addr string) (Snapshot, error) {
	payload, err := roundTrip(ctx, network, addr, "GET\n")
	if err != nil {
		return Snapshot{}, err
	}
	return DecodeSnapshot(payload)
}

// QueryMetrics fetches the server's telemetry in WriteText form. An
// uninstrumented server returns "".
func QueryMetrics(ctx context.Context, network, addr string) (string, error) {
	payload, err := roundTrip(ctx, network, addr, "MET\n")
	if err != nil {
		return "", err
	}
	return string(payload), nil
}

// WriteCap performs one fenced cap write ("CAP\n" op) against addr and
// returns the shard's ack. A transport failure returns an error; a
// fence rejection is not an error — it comes back in the ack so the
// caller can distinguish "shard unreachable" from "you were demoted".
func WriteCap(ctx context.Context, network, addr string, w CapWrite) (CapAck, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return CapAck{}, fmt.Errorf("rcr: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return CapAck{}, fmt.Errorf("rcr: deadline: %w", err)
		}
	}
	stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()
	req := make([]byte, 0, 4+4+capWriteLen)
	req = append(req, "CAP\n"...)
	req = binary.LittleEndian.AppendUint32(req, uint32(capWriteLen))
	req = AppendCapWrite(req, w)
	if _, err := conn.Write(req); err != nil {
		return CapAck{}, fmt.Errorf("rcr: cap write: %w", err)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return CapAck{}, fmt.Errorf("rcr: cap ack header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == busyHeader {
		return CapAck{}, ErrBusy
	}
	if n != capAckLen {
		return CapAck{}, fmt.Errorf("rcr: implausible cap ack size %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(conn, body); err != nil {
		return CapAck{}, fmt.Errorf("rcr: cap ack body: %w", err)
	}
	return DecodeCapAck(body)
}

// roundTrip performs one request/response exchange under ctx.
func roundTrip(ctx context.Context, network, addr, req string) ([]byte, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, fmt.Errorf("rcr: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("rcr: deadline: %w", err)
		}
	}
	// Propagate mid-exchange cancellation by expiring the deadline.
	stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()
	if _, err := conn.Write([]byte(req)); err != nil {
		// A shedding server answers BUSY and closes without ever reading
		// the request (shedConn), so this write can lose the race and fail
		// with a broken pipe while the response already sits in our
		// receive buffer. Prefer the answer the server actually sent.
		var hdr [4]byte
		if _, rerr := io.ReadFull(conn, hdr[:]); rerr == nil &&
			binary.LittleEndian.Uint32(hdr[:]) == busyHeader {
			return nil, ErrBusy
		}
		return nil, fmt.Errorf("rcr: request: %w", err)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, fmt.Errorf("rcr: response header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == busyHeader {
		return nil, ErrBusy
	}
	if n > maxSnapshotBytes {
		return nil, fmt.Errorf("rcr: implausible snapshot size %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, fmt.Errorf("rcr: response body: %w", err)
	}
	return payload, nil
}
