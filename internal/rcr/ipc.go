package rcr

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// The IPC protocol stands in for the real RCRdaemon's shared-memory
// region: a client connects to a Unix socket, sends a one-line request,
// and receives a length-prefixed binary payload.
//
//	request:  "GET\n"  response: uint32 little-endian length, then EncodeSnapshot bytes
//	request:  "MET\n"  response: uint32 little-endian length, then metrics text
//	                   (telemetry.Registry.WriteText form; empty when the
//	                   server is not instrumented)

// maxSnapshotBytes bounds the response size a client will accept.
const maxSnapshotBytes = 16 << 20

// Defaults for the server's per-connection protections. The protocol is
// a single tiny request and one bounded response, so anything slower
// than these is a stalled or hostile peer, not a slow link.
const (
	DefaultIPCTimeout = 2 * time.Second
	DefaultMaxConns   = 64
)

// DefaultQueryTimeout bounds Query's whole dial/request/response
// exchange when the caller supplies no context.
const DefaultQueryTimeout = 5 * time.Second

// Server serves blackboard snapshots over a listener. Configure the
// exported fields (if desired) and Instrument before calling Serve.
type Server struct {
	bb    *Blackboard
	clock Clock
	ln    net.Listener

	// ReadTimeout and WriteTimeout bound each connection's request read
	// and response write. Zero selects DefaultIPCTimeout; a stalled or
	// malicious client can hold a handler (and one connection slot) no
	// longer than their sum.
	ReadTimeout, WriteTimeout time.Duration
	// MaxConns caps concurrently served connections; further clients
	// queue in the listener backlog. Zero selects DefaultMaxConns.
	MaxConns int

	reg      *telemetry.Registry
	requests *telemetry.Counter
	errors   *telemetry.Counter
	rejected *telemetry.Counter
	active   *telemetry.Gauge

	mu      sync.Mutex
	closed  bool
	conns   map[net.Conn]struct{}
	serving sync.WaitGroup
}

// NewServer creates a snapshot server; call Serve to run it.
func NewServer(bb *Blackboard, clock Clock, ln net.Listener) *Server {
	return &Server{bb: bb, clock: clock, ln: ln, conns: make(map[net.Conn]struct{})}
}

// Instrument registers the server's request/error counters in reg and
// makes reg's contents available to clients through the "MET" op. Call
// before Serve.
func (s *Server) Instrument(reg *telemetry.Registry) {
	s.reg = reg
	s.requests = reg.Counter("rcr_ipc_requests_total")
	s.errors = reg.Counter("rcr_ipc_errors_total")
	s.rejected = reg.Counter("rcr_ipc_bad_requests_total")
	s.active = reg.Gauge("rcr_ipc_active_conns")
}

// Serve accepts connections until Close. It returns nil after Close.
func (s *Server) Serve() error {
	readTO, writeTO, maxConns := s.ReadTimeout, s.WriteTimeout, s.MaxConns
	if readTO <= 0 {
		readTO = DefaultIPCTimeout
	}
	if writeTO <= 0 {
		writeTO = DefaultIPCTimeout
	}
	if maxConns <= 0 {
		maxConns = DefaultMaxConns
	}
	sem := make(chan struct{}, maxConns)
	for {
		sem <- struct{}{} // cap in-flight handlers before accepting more
		conn, err := s.ln.Accept()
		if err != nil {
			<-sem
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("rcr: accept: %w", err)
		}
		if !s.track(conn) {
			// Closed while accepting: drop the straggler.
			conn.Close()
			<-sem
			return nil
		}
		go func() {
			defer func() { <-sem }()
			defer s.serving.Done()
			defer s.untrack(conn)
			s.handle(conn, readTO, writeTO)
		}()
	}
}

// track registers a live connection; it reports false when the server
// is already closed (the caller must drop the connection).
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	s.serving.Add(1)
	s.active.Set(float64(len(s.conns)))
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.active.Set(float64(len(s.conns)))
	s.mu.Unlock()
}

// Close stops the server: no new connections are accepted, in-flight
// handlers are hastened by expiring their deadlines, and Close returns
// only after every handler has drained.
func (s *Server) Close() error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	// Expire deadlines on live connections so stalled handlers unwind
	// immediately instead of waiting out their timeouts.
	past := time.Unix(1, 0)
	for conn := range s.conns {
		_ = conn.SetDeadline(past)
	}
	s.mu.Unlock()
	var err error
	if !alreadyClosed {
		err = s.ln.Close()
	}
	s.serving.Wait()
	return err
}

func (s *Server) handle(conn net.Conn, readTO, writeTO time.Duration) {
	defer func() {
		if err := conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			// Nothing useful to do with a close error on a per-request
			// connection; the client has the data or it doesn't.
			_ = err
		}
	}()
	s.requests.Inc()
	if err := conn.SetReadDeadline(time.Now().Add(readTO)); err != nil {
		s.errors.Inc()
		return
	}
	req := make([]byte, 4)
	if _, err := io.ReadFull(conn, req); err != nil {
		s.errors.Inc()
		return
	}
	var payload []byte
	switch string(req) {
	case "GET\n":
		payload = EncodeSnapshot(s.bb.Snapshot(s.clock.Now()))
	case "MET\n":
		var buf bytes.Buffer
		if s.reg != nil {
			if err := s.reg.WriteText(&buf); err != nil {
				s.errors.Inc()
				return
			}
		}
		payload = buf.Bytes()
	default:
		s.rejected.Inc()
		return
	}
	if err := conn.SetWriteDeadline(time.Now().Add(writeTO)); err != nil {
		s.errors.Inc()
		return
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(hdr[:]); err != nil {
		s.errors.Inc()
		return
	}
	if _, err := conn.Write(payload); err != nil {
		s.errors.Inc()
		return
	}
}

// Query connects to addr (a Unix socket path by default network
// "unix"), requests a snapshot, and decodes it. The whole exchange is
// bounded by DefaultQueryTimeout; use QueryContext for caller-supplied
// deadlines or cancellation.
func Query(network, addr string) (Snapshot, error) {
	ctx, cancel := context.WithTimeout(context.Background(), DefaultQueryTimeout)
	defer cancel()
	return QueryContext(ctx, network, addr)
}

// QueryContext is Query under a context: the dial, request write and
// response read all respect ctx's deadline and cancellation, so a dead
// or wedged server cannot block the caller indefinitely.
func QueryContext(ctx context.Context, network, addr string) (Snapshot, error) {
	payload, err := roundTrip(ctx, network, addr, "GET\n")
	if err != nil {
		return Snapshot{}, err
	}
	return DecodeSnapshot(payload)
}

// QueryMetrics fetches the server's telemetry in WriteText form. An
// uninstrumented server returns "".
func QueryMetrics(ctx context.Context, network, addr string) (string, error) {
	payload, err := roundTrip(ctx, network, addr, "MET\n")
	if err != nil {
		return "", err
	}
	return string(payload), nil
}

// roundTrip performs one request/response exchange under ctx.
func roundTrip(ctx context.Context, network, addr, req string) ([]byte, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, fmt.Errorf("rcr: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("rcr: deadline: %w", err)
		}
	}
	// Propagate mid-exchange cancellation by expiring the deadline.
	stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()
	if _, err := conn.Write([]byte(req)); err != nil {
		return nil, fmt.Errorf("rcr: request: %w", err)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, fmt.Errorf("rcr: response header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxSnapshotBytes {
		return nil, fmt.Errorf("rcr: implausible snapshot size %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, fmt.Errorf("rcr: response body: %w", err)
	}
	return payload, nil
}
