package rcr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// The IPC protocol stands in for the real RCRdaemon's shared-memory
// region: a client connects to a Unix socket, sends a one-line request,
// and receives a length-prefixed binary snapshot.
//
//	request:  "GET\n"
//	response: uint32 little-endian length, then EncodeSnapshot bytes

// maxSnapshotBytes bounds the response size a client will accept.
const maxSnapshotBytes = 16 << 20

// Server serves blackboard snapshots over a listener.
type Server struct {
	bb    *Blackboard
	clock Clock
	ln    net.Listener

	mu     sync.Mutex
	closed bool
}

// NewServer creates a snapshot server; call Serve to run it.
func NewServer(bb *Blackboard, clock Clock, ln net.Listener) *Server {
	return &Server{bb: bb, clock: clock, ln: ln}
}

// Serve accepts connections until Close. It returns nil after Close.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("rcr: accept: %w", err)
		}
		go s.handle(conn)
	}
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.ln.Close()
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		if err := conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			// Nothing useful to do with a close error on a per-request
			// connection; the client has the data or it doesn't.
			_ = err
		}
	}()
	req := make([]byte, 4)
	if _, err := io.ReadFull(conn, req); err != nil {
		return
	}
	if string(req) != "GET\n" {
		return
	}
	payload := EncodeSnapshot(s.bb.Snapshot(s.clock.Now()))
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return
	}
	if _, err := conn.Write(payload); err != nil {
		return
	}
}

// Query connects to addr (a Unix socket path by default network "unix"),
// requests a snapshot, and decodes it.
func Query(network, addr string) (Snapshot, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return Snapshot{}, fmt.Errorf("rcr: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET\n")); err != nil {
		return Snapshot{}, fmt.Errorf("rcr: request: %w", err)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return Snapshot{}, fmt.Errorf("rcr: response header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxSnapshotBytes {
		return Snapshot{}, fmt.Errorf("rcr: implausible snapshot size %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return Snapshot{}, fmt.Errorf("rcr: response body: %w", err)
	}
	return DecodeSnapshot(payload)
}
