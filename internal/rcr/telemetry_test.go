package rcr

import (
	"context"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/rapl"
	"repro/internal/telemetry"
)

// startServerWith starts a server with custom protections applied.
func startServerWith(t *testing.T, bb *Blackboard, clock Clock, tune func(*Server)) (*Server, string) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "rcrd.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(bb, clock, ln)
	if tune != nil {
		tune(srv)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v after Close", err)
		}
	})
	return srv, sock
}

// TestServerDropsStalledClient is the regression test for the unbounded
// handler hang: a client that connects and never sends its request must
// be disconnected once the read deadline expires, and the server must
// keep serving others meanwhile.
func TestServerDropsStalledClient(t *testing.T) {
	bb, _ := NewBlackboard(1, 1)
	bb.SetSystem(MeterEnergy, 9, 0)
	_, sock := startServerWith(t, bb, &fakeClock{}, func(s *Server) {
		s.ReadTimeout = 100 * time.Millisecond
	})

	stalled, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()

	// A healthy client is served while the stalled one sits there.
	if _, err := Query("unix", sock); err != nil {
		t.Fatalf("query next to stalled client: %v", err)
	}

	// The stalled connection is closed by the server within the
	// deadline (plus slack): a read observes EOF / reset.
	if err := stalled.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	start := time.Now()
	n, rerr := stalled.Read(buf)
	if n != 0 || rerr == nil {
		t.Fatalf("stalled client read n=%d err=%v, want disconnection", n, rerr)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("server took %v to drop the stalled client", elapsed)
	}
}

// TestQueryTimesOutOnDeadServer: a listener that accepts and then goes
// silent must not block Query beyond its deadline.
func TestQueryTimesOutOnDeadServer(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "dead.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn // hold the conn open, never respond
	}()
	defer func() {
		select {
		case c := <-accepted:
			c.Close()
		default:
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = QueryContext(ctx, "unix", sock)
	if err == nil {
		t.Fatal("QueryContext succeeded against a silent server")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("QueryContext took %v, want prompt timeout", elapsed)
	}
}

// TestQueryContextCancellation: cancelling mid-exchange unblocks the
// caller even without a deadline.
func TestQueryContextCancellation(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "dead.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		time.Sleep(2 * time.Second)
	}()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := QueryContext(ctx, "unix", sock)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled QueryContext returned no error")
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled QueryContext did not return")
	}
}

// TestServerConnCap: with MaxConns=1 and one stalled connection in
// flight, a second client is only served after the stalled one is
// dropped — and is served, not lost.
func TestServerConnCap(t *testing.T) {
	bb, _ := NewBlackboard(1, 1)
	bb.SetSystem(MeterEnergy, 3, 0)
	_, sock := startServerWith(t, bb, &fakeClock{}, func(s *Server) {
		s.ReadTimeout = 100 * time.Millisecond
		s.MaxConns = 1
	})
	stalled, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	time.Sleep(20 * time.Millisecond) // let the handler claim the only slot

	s, err := Query("unix", sock)
	if err != nil {
		t.Fatalf("query behind capped stalled conn: %v", err)
	}
	if len(s.System) != 1 || s.System[0].Value != 3 {
		t.Errorf("query returned %+v", s.System)
	}
}

// TestServerCloseDrains: Close must hasten and wait out an in-flight
// stalled handler rather than leaking it.
func TestServerCloseDrains(t *testing.T) {
	bb, _ := NewBlackboard(1, 1)
	sock := filepath.Join(t.TempDir(), "rcrd.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(bb, &fakeClock{}, ln)
	srv.ReadTimeout = 10 * time.Second // Close must not wait this out
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	stalled, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	time.Sleep(20 * time.Millisecond)

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Close drained in %v, want immediate deadline expiry", elapsed)
	}
	if err := <-done; err != nil {
		t.Errorf("Serve returned %v after Close", err)
	}
}

func TestServerMetricsOp(t *testing.T) {
	bb, _ := NewBlackboard(1, 1)
	reg := telemetry.NewRegistry()
	bb.Instrument(reg)
	bb.SetSystem(MeterEnergy, 42, 0)
	_, sock := startServerWith(t, bb, &fakeClock{}, func(s *Server) {
		s.Instrument(reg)
	})
	// One snapshot query first so request counters are non-zero.
	if _, err := Query("unix", sock); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	text, err := QueryMetrics(ctx, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rcr_ipc_requests_total", "rcr_blackboard_writes_total 1"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q:\n%s", want, text)
		}
	}
}

func TestQueryMetricsUninstrumented(t *testing.T) {
	bb, _ := NewBlackboard(1, 1)
	_, sock := startServerWith(t, bb, &fakeClock{}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	text, err := QueryMetrics(ctx, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	if text != "" {
		t.Errorf("uninstrumented server returned metrics %q", text)
	}
}

// TestSamplerFirstWindowPublishesPower is the regression test for the
// first-tick gap: with the baseline seeded at StartSampler, the first
// sample window must already publish a power meter, so a consumer
// polling inside the first period never mistakes the node for idle.
func TestSamplerFirstWindowPublishesPower(t *testing.T) {
	m, s := startSimStack(t, 10*time.Millisecond)
	// Run just past ONE sampling period; the old sampler needed two.
	burn(t, m, []int{0, 1, 2, 3}, 12*time.Millisecond)
	p, ok := s.Blackboard().Socket(0, MeterPower)
	if !ok {
		t.Fatal("no power meter after the first sample window")
	}
	if p.Value <= 0 {
		t.Errorf("first-window power = %v, want positive", p.Value)
	}
	if p.Updated != 10*time.Millisecond {
		t.Errorf("first power sample at %v, want 10ms", p.Updated)
	}
	if sys, ok := s.Blackboard().System(MeterPower); !ok || sys.Value <= 0 {
		t.Errorf("system power after first window = %+v, %v", sys, ok)
	}
}

// TestSamplerInstrumented checks the sampler's counters and that the
// instrumented tick path records its own latency.
func TestSamplerInstrumented(t *testing.T) {
	m, s := startSimStack(t, 10*time.Millisecond)
	reg := telemetry.NewRegistry()
	s.Instrument(reg)
	s.Blackboard().Instrument(reg)
	burn(t, m, []int{0, 1}, 100*time.Millisecond)
	ticks := reg.Counter("rcr_sampler_ticks_total").Value()
	if ticks < 8 {
		t.Errorf("sampler ticks = %d over 100ms at 10ms, want ~10", ticks)
	}
	if h := reg.Histogram("rcr_sampler_tick_ns"); h.Count() != ticks {
		t.Errorf("tick latency observations = %d, ticks = %d", h.Count(), ticks)
	}
	if w := reg.Counter("rcr_blackboard_writes_total").Value(); w == 0 {
		t.Error("blackboard writes not counted")
	}
}

// TestSamplerPerDomainResync: after a one-domain read fault clears, the
// power meter must be derived over that domain's own stale window, not
// the global tick period (which would overstate power by the number of
// missed windows).
func TestSamplerPerDomainResync(t *testing.T) {
	cfg := machine.M620()
	cfg.VirtualTimeLimit = 5 * time.Minute
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	fake := rapl.NewFake(2)
	bb, err := NewBlackboard(cfg.Sockets, cfg.CoresPerSocket)
	if err != nil {
		t.Fatal(err)
	}
	s, err := StartSampler(m, fake, bb, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)

	// Healthy window, then a fault spanning several periods, then
	// recovery with 1 J accumulated across the whole faulty span.
	burn(t, m, []int{0}, 20*time.Millisecond)
	fake.SetError(errBoom)
	burn(t, m, []int{0}, 50*time.Millisecond)
	fake.SetError(nil)
	fake.Add(0, 1) // 1 J over the ~60 ms since the last good sample
	burn(t, m, []int{0}, 12*time.Millisecond)

	p, ok := bb.Socket(0, MeterPower)
	if !ok {
		t.Fatal("no power meter after recovery")
	}
	// Spread over its own ~60-70 ms window the joule reads ~15 W; the old
	// global-window code divided by one 10 ms period and reported ~100 W.
	if p.Value > 50 {
		t.Errorf("recovered power = %.1f W, want the joule spread over the stale window (~15 W)", p.Value)
	}
}

// TestServerConcurrentQueriesRace hammers the server from several
// goroutines for the race-enabled CI job.
func TestServerConcurrentQueriesRace(t *testing.T) {
	bb, _ := NewBlackboard(2, 2)
	bb.SetSystem(MeterEnergy, 1, 0)
	reg := telemetry.NewRegistry()
	bb.Instrument(reg)
	_, sock := startServerWith(t, bb, &fakeClock{}, func(s *Server) { s.Instrument(reg) })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if i%2 == 0 {
					if _, err := Query("unix", sock); err != nil {
						t.Errorf("query: %v", err)
						return
					}
				} else {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					if _, err := QueryMetrics(ctx, "unix", sock); err != nil {
						t.Errorf("metrics: %v", err)
						cancel()
						return
					}
					cancel()
				}
			}
		}(i)
	}
	wg.Wait()
}

// benchSampler builds a sampler detached from any machine so the raw
// per-tick cost can be measured without the engine in the loop.
func benchSampler(tb testing.TB, sockets int) (*Sampler, *machine.Snapshot) {
	tb.Helper()
	fake := rapl.NewFake(sockets)
	bb, err := NewBlackboard(sockets, 8)
	if err != nil {
		tb.Fatal(err)
	}
	s := &Sampler{
		reader:     fake,
		bb:         bb,
		period:     10 * time.Millisecond,
		lastEnergy: make([]float64, sockets),
		lastTime:   make([]time.Duration, sockets),
		haveBase:   make([]bool, sockets),
	}
	snap := &machine.Snapshot{Sockets: make([]machine.SocketSnapshot, sockets)}
	for i := range snap.Sockets {
		snap.Sockets[i] = machine.SocketSnapshot{Temperature: 55, OutstandingRefs: 12, Bandwidth: 2e10}
	}
	return s, snap
}

// BenchmarkSamplerTick quantifies the telemetry tax on the hot sampling
// path: "instrumented" must stay within a few percent of "bare"
// (docs/observability.md records the measured numbers).
func BenchmarkSamplerTick(b *testing.B) {
	for _, mode := range []string{"bare", "instrumented"} {
		b.Run(mode, func(b *testing.B) {
			s, snap := benchSampler(b, 2)
			if mode == "instrumented" {
				s.Instrument(telemetry.NewRegistry())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.sample(time.Duration(i+1)*10*time.Millisecond, snap)
			}
		})
	}
}

// TestSamplerTickAllocs: the instrumented sample path must not allocate
// — it is the hottest loop in the stack (every 10 ms of virtual time).
func TestSamplerTickAllocs(t *testing.T) {
	s, snap := benchSampler(t, 2)
	s.Instrument(telemetry.NewRegistry())
	now := 10 * time.Millisecond
	allocs := testing.AllocsPerRun(200, func() {
		s.sample(now, snap)
		now += 10 * time.Millisecond
	})
	if allocs != 0 {
		t.Errorf("instrumented sampler tick allocates: %.1f allocs per run, want 0", allocs)
	}
}
