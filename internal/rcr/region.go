package rcr

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/rapl"
	"repro/internal/units"
)

// MinRegionDuration is the shortest region the measurement is considered
// trustworthy for; the paper's implementation requires code regions of at
// least 0.1 second (§II-B). Shorter regions are still reported, with
// TooShort set.
const MinRegionDuration = 100 * time.Millisecond

// Region is an in-flight bracketed measurement, created by StartRegion
// and finished by End.
type Region struct {
	name        string
	clock       Clock
	reader      rapl.Reader
	bb          *Blackboard
	start       time.Duration
	startEnergy []units.Joules
}

// RegionReport is the result of measuring one code region: the same
// quantities the RCRdaemon API prints (paper §II-B) — elapsed time,
// energy, average power, and the most recent temperature of each chip.
type RegionReport struct {
	Name     string
	Elapsed  time.Duration
	Energy   units.Joules
	AvgPower units.Watts
	// Per-socket breakdowns.
	SocketEnergy []units.Joules
	SocketPower  []units.Watts
	Temps        []units.Celsius
	// TooShort marks regions below MinRegionDuration.
	TooShort bool
}

// StartRegion begins measuring a named code region. The reader supplies
// energy; the blackboard (optional, may be nil) supplies temperatures.
// Blackboard reads here are seqlock loads — End never blocks on the
// sampler, so instrumenting a region adds no synchronization to it.
func StartRegion(name string, clock Clock, reader rapl.Reader, bb *Blackboard) (*Region, error) {
	r := &Region{
		name:        name,
		clock:       clock,
		reader:      reader,
		bb:          bb,
		start:       clock.Now(),
		startEnergy: make([]units.Joules, reader.Domains()),
	}
	for d := range r.startEnergy {
		e, err := reader.Energy(d)
		if err != nil {
			return nil, fmt.Errorf("rcr: region %q start: %w", name, err)
		}
		r.startEnergy[d] = e
	}
	return r, nil
}

// End finishes the region and returns its report.
func (r *Region) End() (RegionReport, error) {
	now := r.clock.Now()
	rep := RegionReport{
		Name:         r.name,
		Elapsed:      now - r.start,
		SocketEnergy: make([]units.Joules, len(r.startEnergy)),
		SocketPower:  make([]units.Watts, len(r.startEnergy)),
		Temps:        make([]units.Celsius, len(r.startEnergy)),
	}
	for d := range r.startEnergy {
		e, err := r.reader.Energy(d)
		if err != nil {
			return RegionReport{}, fmt.Errorf("rcr: region %q end: %w", r.name, err)
		}
		de := e - r.startEnergy[d]
		rep.SocketEnergy[d] = de
		rep.SocketPower[d] = units.PowerOver(de, rep.Elapsed)
		rep.Energy += de
		if r.bb != nil {
			if m, ok := r.bb.Socket(d, MeterTemperature); ok {
				rep.Temps[d] = units.Celsius(m.Value)
			}
		}
	}
	rep.AvgPower = units.PowerOver(rep.Energy, rep.Elapsed)
	rep.TooShort = rep.Elapsed < MinRegionDuration
	return rep, nil
}

// String renders the report in the style of the RCRdaemon's per-region
// output line.
func (rr RegionReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "region %s: %.2f s, %.1f J, %.1f W", rr.Name, rr.Elapsed.Seconds(), float64(rr.Energy), float64(rr.AvgPower))
	for d := range rr.SocketEnergy {
		fmt.Fprintf(&b, " | pkg%d %.1f J %.1f W", d, float64(rr.SocketEnergy[d]), float64(rr.SocketPower[d]))
		if d < len(rr.Temps) && rr.Temps[d] != 0 {
			fmt.Fprintf(&b, " %.0f°C", float64(rr.Temps[d]))
		}
	}
	if rr.TooShort {
		b.WriteString(" (below 0.1s: unreliable)")
	}
	return b.String()
}
