package rcr

import (
	"fmt"
	"time"

	"repro/internal/machine"
	"repro/internal/rapl"
)

// DefaultSamplePeriod is how often the sampler refreshes the blackboard.
// The real RCRdaemon updates its shared-memory region at a similar rate;
// consumers like the MAESTRO throttle daemon poll less often (0.1 s) to
// smooth jitter (paper §IV).
const DefaultSamplePeriod = 10 * time.Millisecond

// Sampler periodically reads the RAPL counters and the machine's uncore
// metrics into a blackboard. It is driven by the simulated machine's
// virtual-time ticker, so samples land at exact virtual instants.
type Sampler struct {
	m        *machine.Machine
	reader   rapl.Reader
	bb       *Blackboard
	period   time.Duration
	tickerID int

	// Engine-goroutine state (only touched inside the ticker callback).
	lastEnergy []float64
	lastTime   time.Duration
	haveLast   bool
}

// StartSampler registers a sampler on the machine and returns it. The
// blackboard is updated every period of virtual time until Stop.
func StartSampler(m *machine.Machine, reader rapl.Reader, bb *Blackboard, period time.Duration) (*Sampler, error) {
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	if reader.Domains() != m.Config().Sockets {
		return nil, fmt.Errorf("rcr: reader has %d domains, machine has %d sockets", reader.Domains(), m.Config().Sockets)
	}
	if bb.Sockets() != m.Config().Sockets || bb.Cores() != m.Config().Cores() {
		return nil, fmt.Errorf("rcr: blackboard topology %d/%d does not match machine %d/%d",
			bb.Sockets(), bb.Cores(), m.Config().Sockets, m.Config().Cores())
	}
	s := &Sampler{
		m:          m,
		reader:     reader,
		bb:         bb,
		period:     period,
		lastEnergy: make([]float64, reader.Domains()),
	}
	id, err := m.AddTicker(period, s.sample)
	if err != nil {
		return nil, err
	}
	s.tickerID = id
	return s, nil
}

// Blackboard returns the blackboard this sampler writes.
func (s *Sampler) Blackboard() *Blackboard { return s.bb }

// Reader returns the RAPL reader this sampler polls.
func (s *Sampler) Reader() rapl.Reader { return s.reader }

// Period returns the sampling period.
func (s *Sampler) Period() time.Duration { return s.period }

// Stop unregisters the sampler's ticker.
func (s *Sampler) Stop() { s.m.RemoveTicker(s.tickerID) }

// sample runs on the machine's engine goroutine at each period.
func (s *Sampler) sample(now time.Duration, snap *machine.Snapshot) {
	dt := now - s.lastTime
	totalE, totalP := 0.0, 0.0
	for d := 0; d < s.reader.Domains(); d++ {
		e, err := s.reader.Energy(d)
		if err != nil {
			// Counter read failures are recorded as a stale meter rather
			// than tearing down the daemon.
			continue
		}
		s.bb.SetSocket(d, MeterEnergy, float64(e), now)
		totalE += float64(e)
		if s.haveLast && dt > 0 {
			p := (float64(e) - s.lastEnergy[d]) / dt.Seconds()
			s.bb.SetSocket(d, MeterPower, p, now)
			totalP += p
		}
		s.lastEnergy[d] = float64(e)
	}
	for d, sock := range snap.Sockets {
		s.bb.SetSocket(d, MeterMemBandwidth, float64(sock.Bandwidth), now)
		s.bb.SetSocket(d, MeterMemConcurrency, sock.OutstandingRefs, now)
		s.bb.SetSocket(d, MeterTemperature, float64(sock.Temperature), now)
	}
	s.bb.SetSystem(MeterEnergy, totalE, now)
	if s.haveLast && dt > 0 {
		s.bb.SetSystem(MeterPower, totalP, now)
	}
	s.lastTime = now
	s.haveLast = true
}
