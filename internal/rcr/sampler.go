package rcr

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/machine"
	"repro/internal/rapl"
	"repro/internal/telemetry"
)

// DefaultSamplePeriod is how often the sampler refreshes the blackboard.
// The real RCRdaemon updates its shared-memory region at a similar rate;
// consumers like the MAESTRO throttle daemon poll less often (0.1 s) to
// smooth jitter (paper §IV).
const DefaultSamplePeriod = 10 * time.Millisecond

// samplerMetrics is the sampler's instrument set, installed atomically
// by Instrument so publishing can begin while ticks are in flight.
type samplerMetrics struct {
	ticks      *telemetry.Counter
	readErrors *telemetry.Counter
	missed     *telemetry.Counter   // windows skipped by an injected stall
	drops      *telemetry.Counter   // meter publishes suppressed (torn rows)
	deaths     *telemetry.Counter   // injected sampler crashes
	tickNS     *telemetry.Histogram // host nanoseconds per sample tick
}

// TickAction tells the sampler what to do with one of its ticks; it is
// the return value of an installed TickGate.
type TickAction int

// Tick actions.
const (
	// TickRun samples normally.
	TickRun TickAction = iota
	// TickSkip misses this window: nothing is published, meters age.
	TickSkip
	// TickDie crashes the sampler: it unregisters its ticker and goes
	// permanently dead, as if the measurement daemon segfaulted. Only a
	// supervisor restart (StartSupervisor) brings sampling back.
	TickDie
)

// TickGate decides the fate of a sample tick at virtual time now, and
// MeterGate decides whether one socket-meter publish goes through
// (false suppresses it, modeling a torn row). Both are fault-injection
// seams (internal/faults); the signatures are primitive so this package
// carries no dependency on the injector. Gates run on the machine's
// engine goroutine and must not block or call into the machine.
type (
	TickGate  func(now time.Duration) TickAction
	MeterGate func(now time.Duration, socket int, meter string) bool
)

// samplerGates pairs the two gates for atomic installation.
type samplerGates struct {
	tick  TickGate
	meter MeterGate
}

// Sampler periodically reads the RAPL counters and the machine's uncore
// metrics into a blackboard. It is driven by the simulated machine's
// virtual-time ticker, so samples land at exact virtual instants.
type Sampler struct {
	m        *machine.Machine
	reader   rapl.Reader
	bb       *Blackboard
	period   time.Duration
	tickerID int

	met   atomic.Pointer[samplerMetrics]
	gates atomic.Pointer[samplerGates]
	pub   atomic.Pointer[Publisher]
	dead  atomic.Bool
	ticks atomic.Uint64 // completed (non-skipped) sample ticks

	// Engine-goroutine state (only touched inside the ticker callback,
	// except for the baseline seeding in StartSampler, which completes
	// before the ticker is registered). Baselines are per-domain so a
	// domain whose counter read fails resynchronizes over its own
	// window instead of borrowing a neighbour's.
	lastEnergy []float64
	lastTime   []time.Duration
	haveBase   []bool
}

// StartSampler registers a sampler on the machine and returns it. The
// blackboard is updated every period of virtual time until Stop.
//
// The energy baseline is seeded from the counters before the first tick,
// so the first sample window already publishes a power meter: consumers
// polling the blackboard during the first period see real data instead
// of a zero-valued "idle" node (they previously had to wait out two
// periods for the first derivative).
func StartSampler(m *machine.Machine, reader rapl.Reader, bb *Blackboard, period time.Duration) (*Sampler, error) {
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	if reader.Domains() != m.Config().Sockets {
		return nil, fmt.Errorf("rcr: reader has %d domains, machine has %d sockets", reader.Domains(), m.Config().Sockets)
	}
	if bb.Sockets() != m.Config().Sockets || bb.Cores() != m.Config().Cores() {
		return nil, fmt.Errorf("rcr: blackboard topology %d/%d does not match machine %d/%d",
			bb.Sockets(), bb.Cores(), m.Config().Sockets, m.Config().Cores())
	}
	s := &Sampler{
		m:          m,
		reader:     reader,
		bb:         bb,
		period:     period,
		lastEnergy: make([]float64, reader.Domains()),
		lastTime:   make([]time.Duration, reader.Domains()),
		haveBase:   make([]bool, reader.Domains()),
	}
	// Seed per-domain baselines; a domain whose read fails here starts
	// publishing power one window later, exactly as before.
	start := m.Now()
	for d := 0; d < reader.Domains(); d++ {
		e, err := reader.Energy(d)
		if err != nil {
			continue
		}
		s.lastEnergy[d] = float64(e)
		s.lastTime[d] = start
		s.haveBase[d] = true
	}
	id, err := m.AddTicker(period, s.sample)
	if err != nil {
		return nil, err
	}
	s.tickerID = id
	return s, nil
}

// Instrument registers the sampler's tick/error counters and tick
// latency histogram in reg. Safe to call while sampling is in flight.
func (s *Sampler) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.met.Store(&samplerMetrics{
		ticks:      reg.Counter("rcr_sampler_ticks_total"),
		readErrors: reg.Counter("rcr_sampler_read_errors_total"),
		missed:     reg.Counter("rcr_sampler_missed_windows_total"),
		drops:      reg.Counter("rcr_sampler_dropped_publishes_total"),
		deaths:     reg.Counter("rcr_sampler_deaths_total"),
		// Host-side cost of one sample tick: 250 ns to 1 ms.
		tickNS: reg.Histogram("rcr_sampler_tick_ns", 250, 1000, 4000, 16000, 64000, 250000, 1e6),
	})
}

// SetFaultGates installs (or, with nils, removes) the sampler's fault
// gates. Safe to call while sampling is in flight.
func (s *Sampler) SetFaultGates(tick TickGate, meter MeterGate) {
	if tick == nil && meter == nil {
		s.gates.Store(nil)
		return
	}
	s.gates.Store(&samplerGates{tick: tick, meter: meter})
}

// AttachPublisher makes the sampler drive p.Tick at the end of every
// completed sample tick, so subscribers receive exactly one frame per
// sampler window — the pub/sub cadence the paper's shared-memory pollers
// observe. Tick never blocks (bounded queues, non-blocking enqueues), so
// this is safe from the engine goroutine. Pass nil to detach.
func (s *Sampler) AttachPublisher(p *Publisher) { s.pub.Store(p) }

// Alive reports whether the sampler is still ticking (false after an
// injected crash).
func (s *Sampler) Alive() bool { return !s.dead.Load() }

// Blackboard returns the blackboard this sampler writes.
func (s *Sampler) Blackboard() *Blackboard { return s.bb }

// Reader returns the RAPL reader this sampler polls.
func (s *Sampler) Reader() rapl.Reader { return s.reader }

// Period returns the sampling period.
func (s *Sampler) Period() time.Duration { return s.period }

// Stop unregisters the sampler's ticker.
func (s *Sampler) Stop() { s.m.RemoveTicker(s.tickerID) }

// sample runs on the machine's engine goroutine at each period.
func (s *Sampler) sample(now time.Duration, snap *machine.Snapshot) {
	met := s.met.Load()
	gates := s.gates.Load()
	if gates != nil && gates.tick != nil {
		switch gates.tick(now) {
		case TickSkip:
			if met != nil {
				met.missed.Inc()
			}
			return
		case TickDie:
			s.dead.Store(true)
			// Removing our own ticker from inside its callback is legal;
			// the engine skips the re-arm of a ticker removed mid-fire.
			s.m.RemoveTicker(s.tickerID)
			if met != nil {
				met.deaths.Inc()
			}
			return
		}
	}
	var t0 time.Time
	if met != nil {
		t0 = time.Now()
		met.ticks.Inc()
	}
	totalE, totalP := 0.0, 0.0
	havePower := false
	for d := 0; d < s.reader.Domains(); d++ {
		e, err := s.reader.Energy(d)
		if err != nil {
			// Counter read failures are recorded as a stale meter rather
			// than tearing down the daemon.
			if met != nil {
				met.readErrors.Inc()
			}
			continue
		}
		s.putSocket(gates, met, d, MeterEnergy, float64(e), now)
		totalE += float64(e)
		if dt := now - s.lastTime[d]; s.haveBase[d] && dt > 0 {
			p := (float64(e) - s.lastEnergy[d]) / dt.Seconds()
			s.putSocket(gates, met, d, MeterPower, p, now)
			totalP += p
			havePower = true
		}
		s.lastEnergy[d] = float64(e)
		s.lastTime[d] = now
		s.haveBase[d] = true
	}
	for d, sock := range snap.Sockets {
		s.putSocket(gates, met, d, MeterMemBandwidth, float64(sock.Bandwidth), now)
		s.putSocket(gates, met, d, MeterMemConcurrency, sock.OutstandingRefs, now)
		s.putSocket(gates, met, d, MeterTemperature, float64(sock.Temperature), now)
	}
	s.bb.SetSystem(MeterEnergy, totalE, now)
	if havePower {
		s.bb.SetSystem(MeterPower, totalP, now)
	}
	s.bb.SetSystem(MeterHeartbeat, float64(s.ticks.Add(1)), now)
	if p := s.pub.Load(); p != nil {
		p.Tick(now)
	}
	if met != nil {
		met.tickNS.Observe(float64(time.Since(t0)))
	}
}

// putSocket publishes one socket meter unless a meter gate suppresses it
// (a torn row: some meters of the socket land, others keep their old
// stamp).
func (s *Sampler) putSocket(gates *samplerGates, met *samplerMetrics, socket int, meter string, v float64, now time.Duration) {
	if gates != nil && gates.meter != nil && !gates.meter(now, socket, meter) {
		if met != nil {
			met.drops.Inc()
		}
		return
	}
	s.bb.SetSocket(socket, meter, v, now)
}
