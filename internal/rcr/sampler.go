package rcr

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/machine"
	"repro/internal/rapl"
	"repro/internal/telemetry"
)

// DefaultSamplePeriod is how often the sampler refreshes the blackboard.
// The real RCRdaemon updates its shared-memory region at a similar rate;
// consumers like the MAESTRO throttle daemon poll less often (0.1 s) to
// smooth jitter (paper §IV).
const DefaultSamplePeriod = 10 * time.Millisecond

// samplerMetrics is the sampler's instrument set, installed atomically
// by Instrument so publishing can begin while ticks are in flight.
type samplerMetrics struct {
	ticks      *telemetry.Counter
	readErrors *telemetry.Counter
	tickNS     *telemetry.Histogram // host nanoseconds per sample tick
}

// Sampler periodically reads the RAPL counters and the machine's uncore
// metrics into a blackboard. It is driven by the simulated machine's
// virtual-time ticker, so samples land at exact virtual instants.
type Sampler struct {
	m        *machine.Machine
	reader   rapl.Reader
	bb       *Blackboard
	period   time.Duration
	tickerID int

	met atomic.Pointer[samplerMetrics]

	// Engine-goroutine state (only touched inside the ticker callback,
	// except for the baseline seeding in StartSampler, which completes
	// before the ticker is registered). Baselines are per-domain so a
	// domain whose counter read fails resynchronizes over its own
	// window instead of borrowing a neighbour's.
	lastEnergy []float64
	lastTime   []time.Duration
	haveBase   []bool
}

// StartSampler registers a sampler on the machine and returns it. The
// blackboard is updated every period of virtual time until Stop.
//
// The energy baseline is seeded from the counters before the first tick,
// so the first sample window already publishes a power meter: consumers
// polling the blackboard during the first period see real data instead
// of a zero-valued "idle" node (they previously had to wait out two
// periods for the first derivative).
func StartSampler(m *machine.Machine, reader rapl.Reader, bb *Blackboard, period time.Duration) (*Sampler, error) {
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	if reader.Domains() != m.Config().Sockets {
		return nil, fmt.Errorf("rcr: reader has %d domains, machine has %d sockets", reader.Domains(), m.Config().Sockets)
	}
	if bb.Sockets() != m.Config().Sockets || bb.Cores() != m.Config().Cores() {
		return nil, fmt.Errorf("rcr: blackboard topology %d/%d does not match machine %d/%d",
			bb.Sockets(), bb.Cores(), m.Config().Sockets, m.Config().Cores())
	}
	s := &Sampler{
		m:          m,
		reader:     reader,
		bb:         bb,
		period:     period,
		lastEnergy: make([]float64, reader.Domains()),
		lastTime:   make([]time.Duration, reader.Domains()),
		haveBase:   make([]bool, reader.Domains()),
	}
	// Seed per-domain baselines; a domain whose read fails here starts
	// publishing power one window later, exactly as before.
	start := m.Now()
	for d := 0; d < reader.Domains(); d++ {
		e, err := reader.Energy(d)
		if err != nil {
			continue
		}
		s.lastEnergy[d] = float64(e)
		s.lastTime[d] = start
		s.haveBase[d] = true
	}
	id, err := m.AddTicker(period, s.sample)
	if err != nil {
		return nil, err
	}
	s.tickerID = id
	return s, nil
}

// Instrument registers the sampler's tick/error counters and tick
// latency histogram in reg. Safe to call while sampling is in flight.
func (s *Sampler) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.met.Store(&samplerMetrics{
		ticks:      reg.Counter("rcr_sampler_ticks_total"),
		readErrors: reg.Counter("rcr_sampler_read_errors_total"),
		// Host-side cost of one sample tick: 250 ns to 1 ms.
		tickNS: reg.Histogram("rcr_sampler_tick_ns", 250, 1000, 4000, 16000, 64000, 250000, 1e6),
	})
}

// Blackboard returns the blackboard this sampler writes.
func (s *Sampler) Blackboard() *Blackboard { return s.bb }

// Reader returns the RAPL reader this sampler polls.
func (s *Sampler) Reader() rapl.Reader { return s.reader }

// Period returns the sampling period.
func (s *Sampler) Period() time.Duration { return s.period }

// Stop unregisters the sampler's ticker.
func (s *Sampler) Stop() { s.m.RemoveTicker(s.tickerID) }

// sample runs on the machine's engine goroutine at each period.
func (s *Sampler) sample(now time.Duration, snap *machine.Snapshot) {
	met := s.met.Load()
	var t0 time.Time
	if met != nil {
		t0 = time.Now()
		met.ticks.Inc()
	}
	totalE, totalP := 0.0, 0.0
	havePower := false
	for d := 0; d < s.reader.Domains(); d++ {
		e, err := s.reader.Energy(d)
		if err != nil {
			// Counter read failures are recorded as a stale meter rather
			// than tearing down the daemon.
			if met != nil {
				met.readErrors.Inc()
			}
			continue
		}
		s.bb.SetSocket(d, MeterEnergy, float64(e), now)
		totalE += float64(e)
		if dt := now - s.lastTime[d]; s.haveBase[d] && dt > 0 {
			p := (float64(e) - s.lastEnergy[d]) / dt.Seconds()
			s.bb.SetSocket(d, MeterPower, p, now)
			totalP += p
			havePower = true
		}
		s.lastEnergy[d] = float64(e)
		s.lastTime[d] = now
		s.haveBase[d] = true
	}
	for d, sock := range snap.Sockets {
		s.bb.SetSocket(d, MeterMemBandwidth, float64(sock.Bandwidth), now)
		s.bb.SetSocket(d, MeterMemConcurrency, sock.OutstandingRefs, now)
		s.bb.SetSocket(d, MeterTemperature, float64(sock.Temperature), now)
	}
	s.bb.SetSystem(MeterEnergy, totalE, now)
	if havePower {
		s.bb.SetSystem(MeterPower, totalP, now)
	}
	if met != nil {
		met.tickNS.Observe(float64(time.Since(t0)))
	}
}
