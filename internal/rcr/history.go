package rcr

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"repro/internal/machine"
)

// History records a time series of blackboard readings — the power /
// memory-concurrency / temperature timeline behind the paper's power
// utilization curves (§IV-B: "four test programs showed power
// utilization curves for which throttling ... could result in a total
// reduction"). It keeps the newest Capacity points in a ring buffer and
// can dump them as CSV for plotting.
type History struct {
	m        *machine.Machine
	bb       *Blackboard
	tickerID int

	mu     sync.Mutex
	points []HistoryPoint // ring buffer
	next   int            // write index
	filled bool
}

// HistoryPoint is one sampled instant.
type HistoryPoint struct {
	Time        time.Duration
	NodePower   float64
	SocketPower []float64
	Concurrency []float64
	Temperature []float64
}

// DefaultHistoryCapacity bounds the ring buffer (at the default 10 ms
// sampling period this is 40 s of virtual time).
const DefaultHistoryCapacity = 4000

// StartHistory begins recording the blackboard every period of virtual
// time. capacity <= 0 selects DefaultHistoryCapacity; period <= 0 selects
// the sampler default.
func StartHistory(m *machine.Machine, bb *Blackboard, period time.Duration, capacity int) (*History, error) {
	if capacity <= 0 {
		capacity = DefaultHistoryCapacity
	}
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	h := &History{m: m, bb: bb, points: make([]HistoryPoint, capacity)}
	id, err := m.AddTicker(period, h.record)
	if err != nil {
		return nil, err
	}
	h.tickerID = id
	return h, nil
}

// Stop ends recording; recorded points remain readable.
func (h *History) Stop() { h.m.RemoveTicker(h.tickerID) }

// record runs on the engine goroutine each period.
func (h *History) record(now time.Duration, _ *machine.Snapshot) {
	pt := HistoryPoint{
		Time:        now,
		SocketPower: make([]float64, h.bb.Sockets()),
		Concurrency: make([]float64, h.bb.Sockets()),
		Temperature: make([]float64, h.bb.Sockets()),
	}
	for s := 0; s < h.bb.Sockets(); s++ {
		if m, ok := h.bb.Socket(s, MeterPower); ok {
			pt.SocketPower[s] = m.Value
			pt.NodePower += m.Value
		}
		if m, ok := h.bb.Socket(s, MeterMemConcurrency); ok {
			pt.Concurrency[s] = m.Value
		}
		if m, ok := h.bb.Socket(s, MeterTemperature); ok {
			pt.Temperature[s] = m.Value
		}
	}
	h.mu.Lock()
	h.points[h.next] = pt
	h.next++
	if h.next == len(h.points) {
		h.next = 0
		h.filled = true
	}
	h.mu.Unlock()
}

// Restore replaces the recorded series with points (oldest-first) — the
// crash-safe state path (internal/resilience): a restarted daemon
// resumes its timeline instead of starting an empty ring. When points
// exceeds the ring capacity only the newest capacity points are kept.
func (h *History) Restore(points []HistoryPoint) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(points) > len(h.points) {
		points = points[len(points)-len(h.points):]
	}
	n := copy(h.points, points)
	h.filled = n == len(h.points)
	h.next = 0
	if !h.filled {
		h.next = n
	}
}

// Points returns the recorded series oldest-first.
func (h *History) Points() []HistoryPoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.filled {
		out := make([]HistoryPoint, h.next)
		copy(out, h.points[:h.next])
		return out
	}
	out := make([]HistoryPoint, 0, len(h.points))
	out = append(out, h.points[h.next:]...)
	out = append(out, h.points[:h.next]...)
	return out
}

// Len reports how many points are currently recorded.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.filled {
		return len(h.points)
	}
	return h.next
}

// WriteCSV dumps the series as long-form CSV.
func (h *History) WriteCSV(w io.Writer) error {
	pts := h.Points()
	cw := csv.NewWriter(w)
	header := []string{"t_seconds", "node_watts"}
	nSock := h.bb.Sockets()
	for s := 0; s < nSock; s++ {
		header = append(header,
			fmt.Sprintf("pkg%d_watts", s),
			fmt.Sprintf("pkg%d_memconc", s),
			fmt.Sprintf("pkg%d_temp", s))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, pt := range pts {
		rec := []string{
			strconv.FormatFloat(pt.Time.Seconds(), 'f', 6, 64),
			strconv.FormatFloat(pt.NodePower, 'f', 3, 64),
		}
		for s := 0; s < nSock; s++ {
			rec = append(rec,
				strconv.FormatFloat(pt.SocketPower[s], 'f', 3, 64),
				strconv.FormatFloat(pt.Concurrency[s], 'f', 3, 64),
				strconv.FormatFloat(pt.Temperature[s], 'f', 2, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
