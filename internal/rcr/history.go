package rcr

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"repro/internal/machine"
)

// History records a time series of blackboard readings — the power /
// memory-concurrency / temperature timeline behind the paper's power
// utilization curves (§IV-B: "four test programs showed power
// utilization curves for which throttling ... could result in a total
// reduction"). It keeps the newest Capacity points in a ring buffer and
// can dump them as CSV for plotting.
type History struct {
	m        *machine.Machine
	bb       *Blackboard
	tickerID int

	mu     sync.Mutex
	points []HistoryPoint // ring buffer
	next   int            // write index
	filled bool
}

// HistoryPoint is one sampled instant.
type HistoryPoint struct {
	Time        time.Duration
	NodePower   float64
	SocketPower []float64
	Concurrency []float64
	Temperature []float64
}

// DefaultHistoryCapacity bounds the ring buffer (at the default 10 ms
// sampling period this is 40 s of virtual time).
const DefaultHistoryCapacity = 4000

// StartHistory begins recording the blackboard every period of virtual
// time. capacity <= 0 selects DefaultHistoryCapacity; period <= 0 selects
// the sampler default.
func StartHistory(m *machine.Machine, bb *Blackboard, period time.Duration, capacity int) (*History, error) {
	if capacity <= 0 {
		capacity = DefaultHistoryCapacity
	}
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	h := &History{m: m, bb: bb, points: make([]HistoryPoint, capacity)}
	id, err := m.AddTicker(period, h.record)
	if err != nil {
		return nil, err
	}
	h.tickerID = id
	return h, nil
}

// Stop ends recording; recorded points remain readable.
func (h *History) Stop() { h.m.RemoveTicker(h.tickerID) }

// resizeFloats returns s with length n, reusing its backing array when
// it fits.
func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// copyPoint deep-copies src into dst, reusing dst's backing arrays.
// Ring slots own their slices (record refills them in place), so every
// boundary crossing — in via Restore, out via Points — must copy.
func copyPoint(dst *HistoryPoint, src HistoryPoint) {
	dst.Time = src.Time
	dst.NodePower = src.NodePower
	dst.SocketPower = append(dst.SocketPower[:0], src.SocketPower...)
	dst.Concurrency = append(dst.Concurrency[:0], src.Concurrency...)
	dst.Temperature = append(dst.Temperature[:0], src.Temperature...)
}

// record runs on the engine goroutine each period. It refills the next
// ring slot in place — meter reads are seqlock loads and the slot's
// arrays are reused — so steady-state recording allocates nothing.
func (h *History) record(now time.Duration, _ *machine.Snapshot) {
	nSock := h.bb.Sockets()
	h.mu.Lock()
	pt := &h.points[h.next]
	pt.Time = now
	pt.NodePower = 0
	pt.SocketPower = resizeFloats(pt.SocketPower, nSock)
	pt.Concurrency = resizeFloats(pt.Concurrency, nSock)
	pt.Temperature = resizeFloats(pt.Temperature, nSock)
	for s := 0; s < nSock; s++ {
		pt.SocketPower[s], pt.Concurrency[s], pt.Temperature[s] = 0, 0, 0
		if m, ok := h.bb.Socket(s, MeterPower); ok {
			pt.SocketPower[s] = m.Value
			pt.NodePower += m.Value
		}
		if m, ok := h.bb.Socket(s, MeterMemConcurrency); ok {
			pt.Concurrency[s] = m.Value
		}
		if m, ok := h.bb.Socket(s, MeterTemperature); ok {
			pt.Temperature[s] = m.Value
		}
	}
	h.next++
	if h.next == len(h.points) {
		h.next = 0
		h.filled = true
	}
	h.mu.Unlock()
}

// Restore replaces the recorded series with points (oldest-first) — the
// crash-safe state path (internal/resilience): a restarted daemon
// resumes its timeline instead of starting an empty ring. When points
// exceeds the ring capacity only the newest capacity points are kept.
// The input is deep-copied; the caller keeps ownership of its slices.
func (h *History) Restore(points []HistoryPoint) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(points) > len(h.points) {
		points = points[len(points)-len(h.points):]
	}
	for i := range h.points {
		if i < len(points) {
			copyPoint(&h.points[i], points[i])
		} else {
			h.points[i] = HistoryPoint{}
		}
	}
	h.filled = len(points) == len(h.points)
	h.next = 0
	if !h.filled {
		h.next = len(points)
	}
}

// Points returns a deep copy of the recorded series oldest-first.
func (h *History) Points() []HistoryPoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := h.next
	if h.filled {
		n = len(h.points)
	}
	out := make([]HistoryPoint, n)
	k := 0
	if h.filled {
		for _, pt := range h.points[h.next:] {
			copyPoint(&out[k], pt)
			k++
		}
	}
	for _, pt := range h.points[:h.next] {
		copyPoint(&out[k], pt)
		k++
	}
	return out
}

// Len reports how many points are currently recorded.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.filled {
		return len(h.points)
	}
	return h.next
}

// WriteCSV dumps the series as long-form CSV.
func (h *History) WriteCSV(w io.Writer) error {
	pts := h.Points()
	cw := csv.NewWriter(w)
	header := []string{"t_seconds", "node_watts"}
	nSock := h.bb.Sockets()
	for s := 0; s < nSock; s++ {
		header = append(header,
			fmt.Sprintf("pkg%d_watts", s),
			fmt.Sprintf("pkg%d_memconc", s),
			fmt.Sprintf("pkg%d_temp", s))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, pt := range pts {
		rec := []string{
			strconv.FormatFloat(pt.Time.Seconds(), 'f', 6, 64),
			strconv.FormatFloat(pt.NodePower, 'f', 3, 64),
		}
		for s := 0; s < nSock; s++ {
			rec = append(rec,
				strconv.FormatFloat(pt.SocketPower[s], 'f', 3, 64),
				strconv.FormatFloat(pt.Concurrency[s], 'f', 3, 64),
				strconv.FormatFloat(pt.Temperature[s], 'f', 2, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
