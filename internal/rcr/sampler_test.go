package rcr

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/rapl"
)

// startSimStack builds machine + MSR RAPL reader + blackboard + sampler.
func startSimStack(t *testing.T, period time.Duration) (*machine.Machine, *Sampler) {
	t.Helper()
	cfg := machine.M620()
	cfg.VirtualTimeLimit = 5 * time.Minute
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	reader, err := rapl.NewMSRReader(m.MSR())
	if err != nil {
		t.Fatal(err)
	}
	bb, err := NewBlackboard(cfg.Sockets, cfg.CoresPerSocket)
	if err != nil {
		t.Fatal(err)
	}
	s, err := StartSampler(m, reader, bb, period)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return m, s
}

// burn runs a full-compute load of the given virtual duration on the
// listed cores.
func burn(t *testing.T, m *machine.Machine, cores []int, d time.Duration) {
	t.Helper()
	cycles := float64(m.Config().BaseFreq) * d.Seconds()
	var wg sync.WaitGroup
	for _, id := range cores {
		ctx, err := m.Enroll(id)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(ctx *machine.CoreCtx) {
			defer wg.Done()
			defer ctx.Release()
			ctx.Compute(cycles)
		}(ctx)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("burn did not finish")
	}
}

func TestSamplerWritesEnergyAndPower(t *testing.T) {
	m, s := startSimStack(t, 10*time.Millisecond)
	burn(t, m, []int{0, 1, 2, 3, 4, 5, 6, 7}, 200*time.Millisecond)

	bb := s.Blackboard()
	e, ok := bb.Socket(0, MeterEnergy)
	if !ok || e.Value <= 0 {
		t.Fatalf("socket 0 energy meter = %+v, %v", e, ok)
	}
	p, ok := bb.Socket(0, MeterPower)
	if !ok {
		t.Fatal("socket 0 power meter missing")
	}
	// Full socket load: expect the compute-bound per-socket figure.
	want := float64(m.Config().Power.PredictSocketPower(8, 1, 0, 0, 0, 0, 0))
	if math.Abs(p.Value-want)/want > 0.08 {
		t.Errorf("sampled socket power = %.1f W, want ~%.1f W", p.Value, want)
	}
	// System total is the sum of socket meters.
	sysP, ok := bb.System(MeterPower)
	if !ok {
		t.Fatal("system power meter missing")
	}
	p1, _ := bb.Socket(1, MeterPower)
	if math.Abs(sysP.Value-(p.Value+p1.Value)) > 1e-6 {
		t.Errorf("system power %v != sum of sockets %v", sysP.Value, p.Value+p1.Value)
	}
}

func TestSamplerTracksTemperatureAndConcurrency(t *testing.T) {
	m, s := startSimStack(t, 10*time.Millisecond)
	m.WarmAll(66)
	// Memory-heavy load on socket 0.
	bytes := float64(m.Config().Mem.MaxCoreBandwidth())
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		ctx, err := m.Enroll(id)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(ctx *machine.CoreCtx) {
			defer wg.Done()
			defer ctx.Release()
			ctx.Stream(bytes / 2)
		}(ctx)
	}
	wg.Wait()

	bb := s.Blackboard()
	temp, ok := bb.Socket(0, MeterTemperature)
	if !ok || math.Abs(temp.Value-66) > 2 {
		t.Errorf("temperature meter = %+v, want ~66", temp)
	}
	conc, ok := bb.Socket(0, MeterMemConcurrency)
	if !ok {
		t.Fatal("memconc meter missing")
	}
	// 4 cores at the per-core cap: 40 refs, above the knee.
	if conc.Value < float64(m.Config().Mem.KneeRefs) {
		t.Errorf("memconc = %.1f, want above knee %d", conc.Value, m.Config().Mem.KneeRefs)
	}
	bw, ok := bb.Socket(0, MeterMemBandwidth)
	if !ok || bw.Value <= 0 {
		t.Errorf("membw meter = %+v", bw)
	}
}

func TestSamplerIdlePowerLow(t *testing.T) {
	m, s := startSimStack(t, 10*time.Millisecond)
	// Drive time with a single tiny-power parked core.
	ctx, err := m.Enroll(0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer ctx.Release()
		ctx.Sleep(100 * time.Millisecond)
	}()
	<-done
	p, ok := s.Blackboard().Socket(1, MeterPower)
	if !ok {
		t.Fatal("socket 1 power missing")
	}
	idle := float64(m.Config().Power.PredictSocketPower(0, 0, 0, 0, 0, 8, 0))
	if math.Abs(p.Value-idle)/idle > 0.1 {
		t.Errorf("idle socket power = %.1f W, want ~%.1f W", p.Value, idle)
	}
}

func TestStartSamplerValidation(t *testing.T) {
	cfg := machine.M620()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	bb, _ := NewBlackboard(cfg.Sockets, cfg.CoresPerSocket)
	// Wrong domain count.
	if _, err := StartSampler(m, rapl.NewFake(3), bb, 0); err == nil {
		t.Error("StartSampler accepted mismatched reader")
	}
	// Wrong blackboard topology.
	bad, _ := NewBlackboard(1, 1)
	reader, _ := rapl.NewMSRReader(m.MSR())
	if _, err := StartSampler(m, reader, bad, 0); err == nil {
		t.Error("StartSampler accepted mismatched blackboard")
	}
	// Default period applies.
	s, err := StartSampler(m, reader, bb, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if s.Period() != DefaultSamplePeriod {
		t.Errorf("Period = %v, want default %v", s.Period(), DefaultSamplePeriod)
	}
}

func TestSamplerSurvivesReaderErrors(t *testing.T) {
	cfg := machine.M620()
	cfg.VirtualTimeLimit = 5 * time.Minute
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	fake := rapl.NewFake(2)
	bb, err := NewBlackboard(cfg.Sockets, cfg.CoresPerSocket)
	if err != nil {
		t.Fatal(err)
	}
	s, err := StartSampler(m, fake, bb, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)

	fake.Add(0, 5)
	burn(t, m, []int{0}, 50*time.Millisecond)
	if _, ok := bb.Socket(0, MeterEnergy); !ok {
		t.Fatal("energy meter missing before fault")
	}
	before, _ := bb.Socket(0, MeterEnergy)

	// Reader starts failing: the daemon must keep running and keep the
	// last good energy value rather than tearing down.
	fake.SetError(errBoom)
	burn(t, m, []int{0}, 50*time.Millisecond)
	after, ok := bb.Socket(0, MeterEnergy)
	if !ok || after.Value != before.Value {
		t.Errorf("energy meter changed during reader fault: %+v vs %+v", after, before)
	}
	// Non-energy meters keep updating from the machine snapshot.
	temp, ok := bb.Socket(0, MeterTemperature)
	if !ok || temp.Updated <= before.Updated {
		t.Errorf("temperature meter stale during reader fault: %+v", temp)
	}

	// Recovery.
	fake.SetError(nil)
	fake.Add(0, 7)
	burn(t, m, []int{0}, 50*time.Millisecond)
	rec, _ := bb.Socket(0, MeterEnergy)
	if rec.Value <= before.Value {
		t.Errorf("energy meter did not recover: %+v", rec)
	}
}

var errBoom = errors.New("boom")
