package rcr

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
	"time"
)

// encTestSnapshot is a small but fully populated snapshot: system,
// socket and core meters all present.
func encTestSnapshot() Snapshot {
	bb, _ := NewBlackboard(2, 2)
	bb.SetSystem(MeterPower, 141.7, 3*time.Second)
	bb.SetSystem(MeterHeartbeat, 42, 3*time.Second)
	bb.SetSocket(0, MeterEnergy, 6860.5, 3*time.Second)
	bb.SetSocket(1, MeterMemConcurrency, 17, 2*time.Second)
	bb.SetCore(0, MeterDutyCycle, 0.25, time.Second)
	bb.SetCore(3, MeterTemperature, 55, time.Second)
	return bb.Snapshot(3 * time.Second)
}

// TestDecodeSnapshotTruncatedNeverPanics: every proper prefix of a valid
// encoding must error cleanly — no panic, no partial success.
func TestDecodeSnapshotTruncatedNeverPanics(t *testing.T) {
	full := EncodeSnapshot(encTestSnapshot())
	for n := 0; n < len(full); n++ {
		if _, err := DecodeSnapshot(full[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", n, len(full))
		}
	}
}

// TestDecodeSnapshotOversizedCounts: payloads whose count fields claim
// more meters/sockets/cores than maxMeters must be rejected before any
// large allocation happens.
func TestDecodeSnapshotOversizedCounts(t *testing.T) {
	put16 := func(b *bytes.Buffer, v uint16) {
		var buf [2]byte
		binary.LittleEndian.PutUint16(buf[:], v)
		b.Write(buf[:])
	}
	put64 := func(b *bytes.Buffer, v uint64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		b.Write(buf[:])
	}
	header := func() *bytes.Buffer {
		var b bytes.Buffer
		b.Write(snapshotMagic[:])
		put64(&b, 0) // now
		return &b
	}

	t.Run("system meter count", func(t *testing.T) {
		b := header()
		put16(b, maxMeters+1)
		if _, err := DecodeSnapshot(b.Bytes()); err == nil {
			t.Error("oversized system meter count accepted")
		}
	})
	t.Run("socket count", func(t *testing.T) {
		b := header()
		put16(b, 0) // no system meters
		put16(b, maxMeters+1)
		if _, err := DecodeSnapshot(b.Bytes()); err == nil {
			t.Error("oversized socket count accepted")
		}
	})
	t.Run("core count", func(t *testing.T) {
		b := header()
		put16(b, 0) // no system meters
		put16(b, 1) // one socket
		put16(b, 0) // no socket meters
		put16(b, maxMeters+1)
		if _, err := DecodeSnapshot(b.Bytes()); err == nil {
			t.Error("oversized core count accepted")
		}
	})
	t.Run("claimed meters without bytes", func(t *testing.T) {
		// The worst legal claim: maxMeters meters with an empty body. The
		// decoder must fail on the first missing name, not allocate per
		// claimed entry payloads it has no bytes for.
		b := header()
		put16(b, maxMeters)
		if _, err := DecodeSnapshot(b.Bytes()); err == nil {
			t.Error("meter list with no body accepted")
		}
	})
}

// TestDecodeSnapshotBitFlips: single-bit corruptions of a valid payload
// must never panic. (They may still decode — a flipped value bit yields
// a different but structurally valid snapshot — so only cleanliness is
// asserted, plus re-encode stability when decoding succeeds.)
func TestDecodeSnapshotBitFlips(t *testing.T) {
	full := EncodeSnapshot(encTestSnapshot())
	buf := make([]byte, len(full))
	for i := 0; i < len(full); i++ {
		for bit := 0; bit < 8; bit++ {
			copy(buf, full)
			buf[i] ^= 1 << bit
			s, err := DecodeSnapshot(buf)
			if err != nil {
				continue
			}
			// Structurally valid: it must round-trip exactly.
			again, err := DecodeSnapshot(EncodeSnapshot(s))
			if err != nil {
				t.Fatalf("re-encode of bit-flipped decode failed at byte %d bit %d: %v", i, bit, err)
			}
			if !reflect.DeepEqual(s, again) {
				t.Fatalf("bit flip at byte %d bit %d broke round-trip stability", i, bit)
			}
		}
	}
}

// FuzzDecodeSnapshot hammers all three wire decoders — legacy snapshot,
// full frame, delta frame — with arbitrary payloads: none may panic, and
// anything any of them accepts must round-trip bit-exactly through its
// encoder.
func FuzzDecodeSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add(snapshotMagic[:])
	f.Add(fullMagic[:])
	f.Add(deltaMagic[:])
	f.Add(EncodeSnapshot(Snapshot{}))
	f.Add(EncodeSnapshot(encTestSnapshot()))
	trunc := EncodeSnapshot(encTestSnapshot())
	f.Add(trunc[:len(trunc)/2])
	{
		bb, _ := NewBlackboard(2, 2)
		bb.SetSystem(MeterPower, 141.7, 3*time.Second)
		bb.SetSocket(0, MeterEnergy, 6860.5, 3*time.Second)
		var full FullFrame
		bb.CollectFull(&full)
		full.Flags = FlagInitial
		encF := AppendFullFrame(nil, &full)
		f.Add(encF)
		f.Add(encF[:len(encF)/2])
		bb.SetCore(1, MeterDutyCycle, 0.5, 4*time.Second)
		var delta DeltaFrame
		bb.CollectDelta(full.Ver, &delta)
		encD := AppendDeltaFrame(nil, &delta)
		f.Add(encD)
		f.Add(encD[:len(encD)/2])
		var hb DeltaFrame
		bb.CollectDelta(bb.Version(), &hb)
		f.Add(AppendDeltaFrame(nil, &hb))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := DecodeSnapshot(data); err == nil {
			re := EncodeSnapshot(s)
			if !bytes.Equal(re, data) {
				t.Fatalf("accepted payload does not re-encode to itself:\n in %x\nout %x", data, re)
			}
		}
		var full FullFrame
		if err := DecodeFullFrame(data, &full); err == nil {
			re := AppendFullFrame(nil, &full)
			if !bytes.Equal(re, data) {
				t.Fatalf("accepted full frame does not re-encode to itself:\n in %x\nout %x", data, re)
			}
		}
		var delta DeltaFrame
		if err := DecodeDeltaFrame(data, &delta); err == nil {
			re := AppendDeltaFrame(nil, &delta)
			if !bytes.Equal(re, data) {
				t.Fatalf("accepted delta frame does not re-encode to itself:\n in %x\nout %x", data, re)
			}
		}
	})
}
