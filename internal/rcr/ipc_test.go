package rcr

import (
	"encoding/binary"
	"net"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/resilience/leak"
)

func startServer(t *testing.T, bb *Blackboard, clock Clock) string {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "rcrd.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(bb, clock, ln)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v after Close", err)
		}
	})
	return sock
}

func TestServerQueryRoundTrip(t *testing.T) {
	leak.Check(t)
	bb, _ := NewBlackboard(2, 2)
	bb.SetSystem(MeterPower, 141.7, 3*time.Second)
	bb.SetSocket(0, MeterEnergy, 6860, 3*time.Second)
	clock := &fakeClock{now: 3 * time.Second}
	sock := startServer(t, bb, clock)

	got, err := Query("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	want := bb.Snapshot(3 * time.Second)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Query mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestServerMultipleClients(t *testing.T) {
	leak.Check(t)
	bb, _ := NewBlackboard(1, 1)
	bb.SetSystem(MeterEnergy, 42, 0)
	sock := startServer(t, bb, &fakeClock{})
	for i := 0; i < 5; i++ {
		s, err := Query("unix", sock)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(s.System) != 1 || s.System[0].Value != 42 {
			t.Fatalf("query %d returned %+v", i, s.System)
		}
	}
}

func TestServerIgnoresBadRequest(t *testing.T) {
	leak.Check(t)
	bb, _ := NewBlackboard(1, 1)
	sock := startServer(t, bb, &fakeClock{})
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("BAD\n")); err != nil {
		t.Fatal(err)
	}
	// Server closes without a payload.
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if n, _ := conn.Read(buf); n != 0 {
		t.Errorf("server responded to bad request with %d bytes", n)
	}
}

func TestQueryErrors(t *testing.T) {
	if _, err := Query("unix", filepath.Join(t.TempDir(), "absent.sock")); err == nil {
		t.Error("Query to absent socket succeeded")
	}
}

func TestQueryRejectsHugeHeader(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "evil.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		req := make([]byte, 4)
		if _, err := conn.Read(req); err != nil {
			return
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], 1<<31)
		if _, err := conn.Write(hdr[:]); err != nil {
			return
		}
	}()
	if _, err := Query("unix", sock); err == nil {
		t.Error("Query accepted implausible snapshot size")
	}
}
