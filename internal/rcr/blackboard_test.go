package rcr

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestNewBlackboardTopology(t *testing.T) {
	bb, err := NewBlackboard(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if bb.Sockets() != 2 || bb.Cores() != 16 {
		t.Errorf("topology = %d/%d, want 2/16", bb.Sockets(), bb.Cores())
	}
	for _, bad := range [][2]int{{0, 8}, {2, 0}, {-1, 2}} {
		if _, err := NewBlackboard(bad[0], bad[1]); err == nil {
			t.Errorf("NewBlackboard(%d, %d) succeeded", bad[0], bad[1])
		}
	}
}

func TestBlackboardReadWrite(t *testing.T) {
	bb, err := NewBlackboard(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	bb.SetSystem(MeterPower, 140, time.Second)
	bb.SetSocket(1, MeterEnergy, 1234, 2*time.Second)
	bb.SetCore(3, MeterDutyCycle, 0.5, 3*time.Second)

	if m, ok := bb.System(MeterPower); !ok || m.Value != 140 || m.Updated != time.Second {
		t.Errorf("System(power) = %+v, %v", m, ok)
	}
	if m, ok := bb.Socket(1, MeterEnergy); !ok || m.Value != 1234 {
		t.Errorf("Socket(1, energy) = %+v, %v", m, ok)
	}
	if m, ok := bb.Core(3, MeterDutyCycle); !ok || m.Value != 0.5 {
		t.Errorf("Core(3, duty) = %+v, %v", m, ok)
	}
	// Missing meters and out-of-range domains report !ok.
	if _, ok := bb.System("nope"); ok {
		t.Error("System(nope) reported ok")
	}
	if _, ok := bb.Socket(9, MeterEnergy); ok {
		t.Error("Socket(9) reported ok")
	}
	if _, ok := bb.Core(-1, MeterEnergy); ok {
		t.Error("Core(-1) reported ok")
	}
}

func TestBlackboardOverwrite(t *testing.T) {
	bb, _ := NewBlackboard(1, 1)
	bb.SetSystem(MeterPower, 100, time.Second)
	bb.SetSystem(MeterPower, 120, 2*time.Second)
	m, _ := bb.System(MeterPower)
	if m.Value != 120 || m.Updated != 2*time.Second {
		t.Errorf("overwritten meter = %+v", m)
	}
}

func TestSnapshotSortedAndDeep(t *testing.T) {
	bb, _ := NewBlackboard(1, 2)
	bb.SetSystem("zeta", 1, 0)
	bb.SetSystem("alpha", 2, 0)
	bb.SetSocket(0, MeterPower, 70, time.Second)
	bb.SetCore(1, MeterDutyCycle, 0.25, time.Second)

	s := bb.Snapshot(5 * time.Second)
	if s.Now != 5*time.Second {
		t.Errorf("snapshot Now = %v", s.Now)
	}
	if len(s.System) != 2 || s.System[0].Name != "alpha" || s.System[1].Name != "zeta" {
		t.Errorf("system meters not sorted: %+v", s.System)
	}
	if len(s.Sockets) != 1 || len(s.Sockets[0].Cores) != 2 {
		t.Fatalf("snapshot shape wrong: %+v", s)
	}
	if s.Sockets[0].Cores[1][0].Name != MeterDutyCycle {
		t.Errorf("core meter missing: %+v", s.Sockets[0].Cores[1])
	}
	// Mutating the blackboard afterwards must not affect the snapshot.
	bb.SetSystem("alpha", 99, time.Minute)
	if s.System[0].Value != 2 {
		t.Error("snapshot not deep: later write visible")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	bb, _ := NewBlackboard(2, 4)
	bb.SetSystem(MeterEnergy, 2500.5, 3*time.Second)
	bb.SetSystem(MeterPower, 141.25, 3*time.Second)
	for sck := 0; sck < 2; sck++ {
		bb.SetSocket(sck, MeterEnergy, float64(1000+sck), 3*time.Second)
		bb.SetSocket(sck, MeterTemperature, 68.5, 3*time.Second)
	}
	for c := 0; c < 8; c++ {
		bb.SetCore(c, MeterDutyCycle, 1.0/32, 3*time.Second)
	}
	s := bb.Snapshot(3 * time.Second)
	got, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, s)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("XYZ!"),
		[]byte("RCR1"), // truncated after magic
		append([]byte("RCR1"), make([]byte, 7)...), // truncated now
	}
	for i, data := range cases {
		if _, err := DecodeSnapshot(data); err == nil {
			t.Errorf("case %d: DecodeSnapshot accepted garbage", i)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	bb, _ := NewBlackboard(1, 1)
	data := EncodeSnapshot(bb.Snapshot(0))
	data = append(data, 0xFF)
	if _, err := DecodeSnapshot(data); err == nil {
		t.Error("DecodeSnapshot accepted trailing bytes")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	bb, _ := NewBlackboard(2, 4)
	bb.SetSystem(MeterEnergy, 1, 0)
	data := EncodeSnapshot(bb.Snapshot(time.Second))
	for cut := 1; cut < len(data); cut += 3 {
		if _, err := DecodeSnapshot(data[:cut]); err == nil {
			t.Errorf("DecodeSnapshot accepted truncation at %d", cut)
		}
	}
}

// TestEncodeDecodeProperty round-trips randomized snapshots.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bb, _ := NewBlackboard(1+rng.Intn(3), 1+rng.Intn(6))
		names := []string{MeterEnergy, MeterPower, MeterMemBandwidth, MeterMemConcurrency, MeterTemperature, "custom-x"}
		for i := 0; i < rng.Intn(20); i++ {
			name := names[rng.Intn(len(names))]
			v := rng.NormFloat64() * 100
			ts := time.Duration(rng.Int63n(1e12))
			switch rng.Intn(3) {
			case 0:
				bb.SetSystem(name, v, ts)
			case 1:
				bb.SetSocket(rng.Intn(bb.Sockets()), name, v, ts)
			default:
				bb.SetCore(rng.Intn(bb.Cores()), name, v, ts)
			}
		}
		s := bb.Snapshot(time.Duration(rng.Int63n(1e12)))
		got, err := DecodeSnapshot(EncodeSnapshot(s))
		if err != nil {
			t.Logf("decode error: %v", err)
			return false
		}
		return reflect.DeepEqual(got, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWriteJSON(t *testing.T) {
	bb, _ := NewBlackboard(1, 2)
	bb.SetSystem(MeterPower, 141.7, 3*time.Second)
	bb.SetSocket(0, MeterEnergy, 6860, 3*time.Second)
	var buf bytes.Buffer
	if err := bb.Snapshot(3 * time.Second).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, bb.Snapshot(3*time.Second)) {
		t.Errorf("JSON round trip mismatch:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"power"`) {
		t.Errorf("JSON missing meter name: %s", buf.String())
	}
}
