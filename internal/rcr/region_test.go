package rcr

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rapl"
	"repro/internal/units"
)

// fakeClock is a settable Clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func TestRegionReport(t *testing.T) {
	clock := &fakeClock{}
	reader := rapl.NewFake(2)
	bb, _ := NewBlackboard(2, 1)
	bb.SetSocket(0, MeterTemperature, 70, 0)
	bb.SetSocket(1, MeterTemperature, 68, 0)

	r, err := StartRegion("kernel", clock, reader, bb)
	if err != nil {
		t.Fatal(err)
	}
	reader.Add(0, 800)
	reader.Add(1, 700)
	clock.advance(10 * time.Second)
	rep, err := r.End()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "kernel" {
		t.Errorf("Name = %q", rep.Name)
	}
	if rep.Elapsed != 10*time.Second {
		t.Errorf("Elapsed = %v", rep.Elapsed)
	}
	if rep.Energy != 1500 {
		t.Errorf("Energy = %v, want 1500 J", rep.Energy)
	}
	if math.Abs(float64(rep.AvgPower-150)) > 1e-9 {
		t.Errorf("AvgPower = %v, want 150 W", rep.AvgPower)
	}
	if rep.SocketEnergy[0] != 800 || rep.SocketEnergy[1] != 700 {
		t.Errorf("SocketEnergy = %v", rep.SocketEnergy)
	}
	if math.Abs(float64(rep.SocketPower[0]-80)) > 1e-9 {
		t.Errorf("SocketPower[0] = %v, want 80 W", rep.SocketPower[0])
	}
	if rep.Temps[0] != 70 || rep.Temps[1] != 68 {
		t.Errorf("Temps = %v", rep.Temps)
	}
	if rep.TooShort {
		t.Error("10 s region marked TooShort")
	}
}

func TestRegionExcludesOutsideEnergy(t *testing.T) {
	clock := &fakeClock{}
	reader := rapl.NewFake(1)
	reader.Add(0, 5000) // consumed before the region
	r, err := StartRegion("r", clock, reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	reader.Add(0, 250)
	clock.advance(time.Second)
	rep, err := r.End()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Energy != 250 {
		t.Errorf("Energy = %v, want 250 J (pre-region energy excluded)", rep.Energy)
	}
}

func TestRegionTooShort(t *testing.T) {
	clock := &fakeClock{}
	reader := rapl.NewFake(1)
	r, _ := StartRegion("blip", clock, reader, nil)
	clock.advance(50 * time.Millisecond)
	rep, err := r.End()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TooShort {
		t.Error("50 ms region not marked TooShort")
	}
	if !strings.Contains(rep.String(), "unreliable") {
		t.Errorf("String() = %q, want unreliable marker", rep.String())
	}
}

func TestRegionReaderErrors(t *testing.T) {
	clock := &fakeClock{}
	reader := rapl.NewFake(1)
	reader.SetError(errors.New("boom"))
	if _, err := StartRegion("x", clock, reader, nil); err == nil {
		t.Error("StartRegion with failing reader succeeded")
	}
	reader.SetError(nil)
	r, err := StartRegion("x", clock, reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	reader.SetError(errors.New("boom"))
	if _, err := r.End(); err == nil {
		t.Error("End with failing reader succeeded")
	}
}

func TestRegionStringFormat(t *testing.T) {
	rep := RegionReport{
		Name:         "lulesh",
		Elapsed:      48*time.Second + 600*time.Millisecond,
		Energy:       7064,
		AvgPower:     145.4,
		SocketEnergy: []units.Joules{3500, 3564},
		SocketPower:  []units.Watts{72.0, 73.4},
		Temps:        []units.Celsius{71, 69},
	}
	s := rep.String()
	for _, want := range []string{"lulesh", "48.60 s", "7064.0 J", "145.4 W", "pkg0", "pkg1", "71°C"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
