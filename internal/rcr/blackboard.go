// Package rcr implements the Resource Centric Reflection daemon of the
// paper (§II-B): a sampler that periodically reads hardware counters
// (RAPL energy, memory concurrency, temperature) into a self-describing
// hierarchical blackboard, a region-measurement API that reports elapsed
// time, Joules, average Watts and chip temperatures for a bracketed code
// region, a compact binary snapshot encoding, and a Unix-socket server so
// external clients can query the blackboard like the real RCRdaemon's
// shared-memory region.
package rcr

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Standard meter names written by the sampler. Clients address meters by
// these names; the blackboard itself is schema-free.
const (
	MeterEnergy         = "energy"  // cumulative Joules
	MeterPower          = "power"   // average Watts over the last sample window
	MeterMemBandwidth   = "membw"   // bytes/second
	MeterMemConcurrency = "memconc" // outstanding memory references
	MeterTemperature    = "temp"    // °C
	MeterDutyCycle      = "duty"    // effective clock fraction (core scope)
	// MeterHeartbeat is the sampler's liveness beacon (system scope): its
	// value counts completed sample ticks, and — more importantly — its
	// Updated stamp is the last instant the sampler was alive. The
	// supervisor restarts a sampler whose heartbeat goes stale.
	MeterHeartbeat = "heartbeat"
)

// Meter is one measured value with its last-update timestamp (virtual
// time).
type Meter struct {
	Value   float64
	Updated time.Duration
}

// Clock supplies the current (virtual or wall) time for timestamps and
// regions. *machine.Machine satisfies it.
type Clock interface {
	Now() time.Duration
}

// Blackboard is the shared measurement store: system-level meters, one
// domain per socket, one per core. A single writer (the sampler) and many
// readers are the intended pattern; all methods are safe for concurrent
// use.
type Blackboard struct {
	mu      sync.RWMutex
	system  map[string]Meter
	sockets []map[string]Meter
	cores   []map[string]Meter // node-wide core index
	perSock int

	met atomic.Pointer[bbMetrics]
}

// bbMetrics counts blackboard traffic; installed by Instrument.
type bbMetrics struct {
	writes *telemetry.Counter
	reads  *telemetry.Counter
}

// NewBlackboard creates a blackboard for a node topology.
func NewBlackboard(sockets, coresPerSocket int) (*Blackboard, error) {
	if sockets <= 0 || coresPerSocket <= 0 {
		return nil, fmt.Errorf("rcr: invalid topology %d sockets × %d cores", sockets, coresPerSocket)
	}
	bb := &Blackboard{
		system:  make(map[string]Meter),
		sockets: make([]map[string]Meter, sockets),
		cores:   make([]map[string]Meter, sockets*coresPerSocket),
		perSock: coresPerSocket,
	}
	for i := range bb.sockets {
		bb.sockets[i] = make(map[string]Meter)
	}
	for i := range bb.cores {
		bb.cores[i] = make(map[string]Meter)
	}
	return bb, nil
}

// Instrument registers write/read counters for the blackboard in reg —
// the traffic rates behind "how hot is the measurement path". Safe to
// call while samplers and daemons are running.
func (bb *Blackboard) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	bb.met.Store(&bbMetrics{
		writes: reg.Counter("rcr_blackboard_writes_total"),
		reads:  reg.Counter("rcr_blackboard_reads_total"),
	})
}

func (bb *Blackboard) countWrite() {
	if m := bb.met.Load(); m != nil {
		m.writes.Inc()
	}
}

func (bb *Blackboard) countRead() {
	if m := bb.met.Load(); m != nil {
		m.reads.Inc()
	}
}

// Sockets returns the number of socket domains.
func (bb *Blackboard) Sockets() int { return len(bb.sockets) }

// Cores returns the total number of core domains.
func (bb *Blackboard) Cores() int { return len(bb.cores) }

// SetSystem writes a system-level meter.
func (bb *Blackboard) SetSystem(name string, v float64, now time.Duration) {
	bb.countWrite()
	bb.mu.Lock()
	bb.system[name] = Meter{Value: v, Updated: now}
	bb.mu.Unlock()
}

// SetSocket writes a socket-level meter. Out-of-range sockets are a
// programming error and panic.
func (bb *Blackboard) SetSocket(socket int, name string, v float64, now time.Duration) {
	bb.countWrite()
	bb.mu.Lock()
	bb.sockets[socket][name] = Meter{Value: v, Updated: now}
	bb.mu.Unlock()
}

// SetCore writes a core-level meter.
func (bb *Blackboard) SetCore(core int, name string, v float64, now time.Duration) {
	bb.countWrite()
	bb.mu.Lock()
	bb.cores[core][name] = Meter{Value: v, Updated: now}
	bb.mu.Unlock()
}

// System reads a system-level meter.
func (bb *Blackboard) System(name string) (Meter, bool) {
	bb.countRead()
	bb.mu.RLock()
	defer bb.mu.RUnlock()
	m, ok := bb.system[name]
	return m, ok
}

// Socket reads a socket-level meter.
func (bb *Blackboard) Socket(socket int, name string) (Meter, bool) {
	bb.countRead()
	bb.mu.RLock()
	defer bb.mu.RUnlock()
	if socket < 0 || socket >= len(bb.sockets) {
		return Meter{}, false
	}
	m, ok := bb.sockets[socket][name]
	return m, ok
}

// Core reads a core-level meter.
func (bb *Blackboard) Core(core int, name string) (Meter, bool) {
	bb.countRead()
	bb.mu.RLock()
	defer bb.mu.RUnlock()
	if core < 0 || core >= len(bb.cores) {
		return Meter{}, false
	}
	m, ok := bb.cores[core][name]
	return m, ok
}

// MeterValue is one named meter inside a snapshot.
type MeterValue struct {
	Name    string
	Value   float64
	Updated time.Duration
}

// DomainSnap is the snapshot of one socket domain and its cores.
type DomainSnap struct {
	Meters []MeterValue
	Cores  [][]MeterValue
}

// Snapshot is a deep, immutable copy of the blackboard, with meters in
// deterministic (name-sorted) order, suitable for encoding.
type Snapshot struct {
	Now     time.Duration
	System  []MeterValue
	Sockets []DomainSnap
}

// Snapshot copies the blackboard.
func (bb *Blackboard) Snapshot(now time.Duration) Snapshot {
	bb.countRead()
	bb.mu.RLock()
	defer bb.mu.RUnlock()
	s := Snapshot{
		Now:     now,
		System:  sortedMeters(bb.system),
		Sockets: make([]DomainSnap, len(bb.sockets)),
	}
	for i := range bb.sockets {
		ds := DomainSnap{
			Meters: sortedMeters(bb.sockets[i]),
			Cores:  make([][]MeterValue, bb.perSock),
		}
		for c := 0; c < bb.perSock; c++ {
			ds.Cores[c] = sortedMeters(bb.cores[i*bb.perSock+c])
		}
		s.Sockets[i] = ds
	}
	return s
}

func sortedMeters(m map[string]Meter) []MeterValue {
	out := make([]MeterValue, 0, len(m))
	for name, v := range m {
		out = append(out, MeterValue{Name: name, Value: v.Value, Updated: v.Updated})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
