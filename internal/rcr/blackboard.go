// Package rcr implements the Resource Centric Reflection daemon of the
// paper (§II-B): a sampler that periodically reads hardware counters
// (RAPL energy, memory concurrency, temperature) into a self-describing
// hierarchical blackboard, a region-measurement API that reports elapsed
// time, Joules, average Watts and chip temperatures for a bracketed code
// region, a compact binary snapshot encoding, and a Unix-socket server so
// external clients can query the blackboard like the real RCRdaemon's
// shared-memory region — or subscribe to pushed delta frames (pubsub.go),
// the closest IPC analogue of polling shared memory at zero cost.
package rcr

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Standard meter names written by the sampler. Clients address meters by
// these names; the blackboard itself is schema-free — a name registers a
// slot on first write.
const (
	MeterEnergy         = "energy"  // cumulative Joules
	MeterPower          = "power"   // average Watts over the last sample window
	MeterMemBandwidth   = "membw"   // bytes/second
	MeterMemConcurrency = "memconc" // outstanding memory references
	MeterTemperature    = "temp"    // °C
	MeterDutyCycle      = "duty"    // effective clock fraction (core scope)
	// MeterHeartbeat is the sampler's liveness beacon (system scope): its
	// value counts completed sample ticks, and — more importantly — its
	// Updated stamp is the last instant the sampler was alive. The
	// supervisor restarts a sampler whose heartbeat goes stale.
	MeterHeartbeat = "heartbeat"
)

// Meter is one measured value with its last-update timestamp (virtual
// time).
type Meter struct {
	Value   float64
	Updated time.Duration
}

// Clock supplies the current (virtual or wall) time for timestamps and
// regions. *machine.Machine satisfies it.
type Clock interface {
	Now() time.Duration
}

// Blackboard is the shared measurement store: system-level meters, one
// domain per socket, one per core — the reproduction of the RCRdaemon's
// shared-memory region.
//
// Storage is a fixed-slot, schema-registered layout: the first write of
// a meter name registers it in a copy-on-write name table and assigns a
// slot per scope (system, each socket, each core). Every slot is guarded
// by its own seqlock — an even/odd version counter bracketing atomic
// field publishes — so readers never block writers and never take a
// lock: they retry the (sub-nanosecond) copy on the rare overlap with a
// write. Same-process consumers (the MAESTRO daemon, the power cap, the
// history recorder, the region API) therefore read meters and whole
// snapshots with zero allocations and zero lock contention against the
// sampler, which is the point of the paper's shared-memory design.
//
// One writer (the sampler) and many readers are the intended pattern;
// concurrent writers are nevertheless safe (a mutex serializes them —
// uncontended in the single-writer case). Consistency is per meter: a
// reader always sees a (Value, Updated) pair from one publish, but a
// multi-meter snapshot may interleave with a concurrent write burst,
// exactly as the previous per-call-locked implementation allowed.
//
// Every write also advances a monotonic publish version recorded in the
// written slot, which is what the delta encoder (delta.go) diffs
// against: encoding "what changed since version V" is a scan, not a
// serialization of the whole board.
type Blackboard struct {
	nSock   int
	perSock int
	nScopes int // 1 + nSock + nSock*perSock

	wmu    sync.Mutex // serializes writers and schema growth
	schema atomic.Pointer[bbSchema]
	slots  atomic.Pointer[[]*slot]
	pub    atomic.Uint64 // monotonic publish version; 0 = nothing written

	met atomic.Pointer[bbMetrics]
}

// bbSchema is the registered name table, replaced copy-on-write when a
// new meter name appears (rare; the standard meter set registers within
// the first sample tick and then never changes).
type bbSchema struct {
	gen   uint32         // bumped per registration; delta streams resync on change
	ids   map[string]int // name → meter id
	names []string       // meter id → name, registration order
	// sorted holds meter ids in name-sorted order. Snapshot encoding
	// walks it, so the byte stream is bit-stable without any per-call
	// sort: the order is fixed at registration time.
	sorted []int
}

// slot is one (meter, scope) cell. The seqlock makes the three-field
// publish atomic to readers; the fields themselves are atomics so the
// retry loop is race-detector-clean.
type slot struct {
	seq  atomic.Uint32 // even = stable, odd = write in progress
	bits atomic.Uint64 // math.Float64bits of the value
	upd  atomic.Int64  // Updated, ns
	ver  atomic.Uint64 // publish version of the last write; 0 = never written
}

// load copies the slot under the seqlock retry loop.
func (sl *slot) load() (bits uint64, upd int64, ver uint64) {
	for {
		s1 := sl.seq.Load()
		if s1&1 == 0 {
			bits = sl.bits.Load()
			upd = sl.upd.Load()
			ver = sl.ver.Load()
			if sl.seq.Load() == s1 {
				return
			}
		}
		// A write is in flight; it holds the odd state for a handful of
		// atomic stores, so spinning (no yield, no sleep) is the right
		// wait.
	}
}

// store publishes the slot (writer side; callers hold bb.wmu).
func (sl *slot) store(bits uint64, upd int64, ver uint64) {
	sl.seq.Add(1) // odd: readers retry
	sl.bits.Store(bits)
	sl.upd.Store(upd)
	sl.ver.Store(ver)
	sl.seq.Add(1) // even: stable
}

// bbMetrics counts blackboard traffic; installed by Instrument.
type bbMetrics struct {
	writes *telemetry.Counter
	reads  *telemetry.Counter
}

// NewBlackboard creates a blackboard for a node topology.
func NewBlackboard(sockets, coresPerSocket int) (*Blackboard, error) {
	if sockets <= 0 || coresPerSocket <= 0 {
		return nil, fmt.Errorf("rcr: invalid topology %d sockets × %d cores", sockets, coresPerSocket)
	}
	bb := &Blackboard{
		nSock:   sockets,
		perSock: coresPerSocket,
		nScopes: 1 + sockets + sockets*coresPerSocket,
	}
	bb.schema.Store(&bbSchema{ids: map[string]int{}})
	empty := []*slot{}
	bb.slots.Store(&empty)
	return bb, nil
}

// Instrument registers write/read counters for the blackboard in reg —
// the traffic rates behind "how hot is the measurement path". Safe to
// call while samplers and daemons are running.
func (bb *Blackboard) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	bb.met.Store(&bbMetrics{
		writes: reg.Counter("rcr_blackboard_writes_total"),
		reads:  reg.Counter("rcr_blackboard_reads_total"),
	})
}

func (bb *Blackboard) countWrite() {
	if m := bb.met.Load(); m != nil {
		m.writes.Inc()
	}
}

func (bb *Blackboard) countRead() {
	if m := bb.met.Load(); m != nil {
		m.reads.Inc()
	}
}

// Sockets returns the number of socket domains.
func (bb *Blackboard) Sockets() int { return bb.nSock }

// Cores returns the total number of core domains.
func (bb *Blackboard) Cores() int { return bb.nSock * bb.perSock }

// Version returns the monotonic publish version: it advances on every
// meter write, so an unchanged version means an unchanged board. The
// delta encoder and the pub/sub publisher key off it.
func (bb *Blackboard) Version() uint64 { return bb.pub.Load() }

// SchemaGen returns the schema generation, bumped whenever a new meter
// name registers a slot. Delta subscribers resync on a change.
func (bb *Blackboard) SchemaGen() uint32 { return bb.schema.Load().gen }

// NumSlots returns the current slot count (registered names × scopes) —
// the width of a delta frame's changed-slot bitmap.
func (bb *Blackboard) NumSlots() int { return len(*bb.slots.Load()) }

// Scope indices: slot index = meterID*nScopes + scope.
func (bb *Blackboard) systemScope() int           { return 0 }
func (bb *Blackboard) socketScope(socket int) int { return 1 + socket }
func (bb *Blackboard) coreScope(core int) int     { return 1 + bb.nSock + core }

// register adds a meter name under wmu and returns its id. Slot growth
// appends pointers, so slots already handed to readers stay valid.
func (bb *Blackboard) register(sc *bbSchema, name string) int {
	if len(sc.names) >= maxMeters {
		panic(fmt.Sprintf("rcr: blackboard meter-name table full (%d names); runaway registration", maxMeters))
	}
	id := len(sc.names)
	ns := &bbSchema{
		gen:    sc.gen + 1,
		ids:    make(map[string]int, len(sc.ids)+1),
		names:  make([]string, 0, id+1),
		sorted: make([]int, 0, id+1),
	}
	for k, v := range sc.ids {
		ns.ids[k] = v
	}
	ns.ids[name] = id
	ns.names = append(ns.names, sc.names...)
	ns.names = append(ns.names, name)
	// Keep the sorted index incrementally: insert the new id at its
	// name-sorted position.
	pos := sort.Search(len(sc.sorted), func(i int) bool { return sc.names[sc.sorted[i]] >= name })
	ns.sorted = append(ns.sorted, sc.sorted[:pos]...)
	ns.sorted = append(ns.sorted, id)
	ns.sorted = append(ns.sorted, sc.sorted[pos:]...)

	cur := *bb.slots.Load()
	block := make([]slot, bb.nScopes)
	grown := make([]*slot, len(cur), len(cur)+bb.nScopes)
	copy(grown, cur)
	for i := range block {
		grown = append(grown, &block[i])
	}
	// Publish slots before the schema: a reader observing the new schema
	// is guaranteed to observe at least the new slots slice.
	bb.slots.Store(&grown)
	bb.schema.Store(ns)
	return id
}

// set publishes one meter (any scope).
func (bb *Blackboard) set(scope int, name string, v float64, now time.Duration) {
	bb.countWrite()
	bb.wmu.Lock()
	sc := bb.schema.Load()
	id, ok := sc.ids[name]
	if !ok {
		id = bb.register(sc, name)
	}
	sl := (*bb.slots.Load())[id*bb.nScopes+scope]
	ver := bb.pub.Add(1)
	sl.store(math.Float64bits(v), int64(now), ver)
	bb.wmu.Unlock()
}

// get reads one meter (any scope); zero allocations.
func (bb *Blackboard) get(scope int, name string) (Meter, bool) {
	sc := bb.schema.Load()
	id, ok := sc.ids[name]
	if !ok {
		return Meter{}, false
	}
	sl := (*bb.slots.Load())[id*bb.nScopes+scope]
	bits, upd, ver := sl.load()
	if ver == 0 {
		return Meter{}, false
	}
	return Meter{Value: math.Float64frombits(bits), Updated: time.Duration(upd)}, true
}

// SetSystem writes a system-level meter.
func (bb *Blackboard) SetSystem(name string, v float64, now time.Duration) {
	bb.set(bb.systemScope(), name, v, now)
}

// SetSocket writes a socket-level meter. Out-of-range sockets are a
// programming error and panic.
func (bb *Blackboard) SetSocket(socket int, name string, v float64, now time.Duration) {
	if socket < 0 || socket >= bb.nSock {
		panic(fmt.Sprintf("rcr: socket %d out of range [0,%d)", socket, bb.nSock))
	}
	bb.set(bb.socketScope(socket), name, v, now)
}

// SetCore writes a core-level meter.
func (bb *Blackboard) SetCore(core int, name string, v float64, now time.Duration) {
	if core < 0 || core >= bb.Cores() {
		panic(fmt.Sprintf("rcr: core %d out of range [0,%d)", core, bb.Cores()))
	}
	bb.set(bb.coreScope(core), name, v, now)
}

// System reads a system-level meter.
func (bb *Blackboard) System(name string) (Meter, bool) {
	bb.countRead()
	return bb.get(bb.systemScope(), name)
}

// Socket reads a socket-level meter.
func (bb *Blackboard) Socket(socket int, name string) (Meter, bool) {
	bb.countRead()
	if socket < 0 || socket >= bb.nSock {
		return Meter{}, false
	}
	return bb.get(bb.socketScope(socket), name)
}

// Core reads a core-level meter.
func (bb *Blackboard) Core(core int, name string) (Meter, bool) {
	bb.countRead()
	if core < 0 || core >= bb.Cores() {
		return Meter{}, false
	}
	return bb.get(bb.coreScope(core), name)
}

// MeterValue is one named meter inside a snapshot.
type MeterValue struct {
	Name    string
	Value   float64
	Updated time.Duration
}

// DomainSnap is the snapshot of one socket domain and its cores.
type DomainSnap struct {
	Meters []MeterValue
	Cores  [][]MeterValue
}

// Snapshot is a deep, immutable copy of the blackboard, with meters in
// deterministic (name-sorted) order, suitable for encoding.
type Snapshot struct {
	Now     time.Duration
	System  []MeterValue
	Sockets []DomainSnap
}

// Snapshot copies the blackboard. Each call allocates a fresh Snapshot;
// hot paths (the IPC server's per-connection workers) use SnapshotInto
// with a reused scratch instead.
func (bb *Blackboard) Snapshot(now time.Duration) Snapshot {
	var s Snapshot
	bb.SnapshotInto(&s, now)
	return s
}

// SnapshotInto fills s from the blackboard, reusing s's backing arrays:
// a scratch Snapshot refilled every cycle reaches zero allocations per
// call once its slices have grown to the board's meter population. Meter
// order is deterministic (name-sorted, fixed at registration), so two
// snapshots of identical state encode byte-identically.
func (bb *Blackboard) SnapshotInto(s *Snapshot, now time.Duration) {
	bb.countRead()
	sc := bb.schema.Load()
	slots := *bb.slots.Load()
	s.Now = now
	s.System = bb.appendScope(s.System[:0], sc, slots, bb.systemScope())
	if cap(s.Sockets) < bb.nSock {
		s.Sockets = make([]DomainSnap, bb.nSock)
	} else {
		s.Sockets = s.Sockets[:bb.nSock]
	}
	for i := 0; i < bb.nSock; i++ {
		ds := &s.Sockets[i]
		ds.Meters = bb.appendScope(ds.Meters[:0], sc, slots, bb.socketScope(i))
		if cap(ds.Cores) < bb.perSock {
			ds.Cores = make([][]MeterValue, bb.perSock)
		} else {
			ds.Cores = ds.Cores[:bb.perSock]
		}
		for c := 0; c < bb.perSock; c++ {
			ds.Cores[c] = bb.appendScope(ds.Cores[c][:0], sc, slots, bb.coreScope(i*bb.perSock+c))
		}
	}
}

// appendScope appends one scope's present meters in name-sorted order.
// The result is never nil (decode and JSON round-trips distinguish empty
// from absent).
func (bb *Blackboard) appendScope(dst []MeterValue, sc *bbSchema, slots []*slot, scope int) []MeterValue {
	if dst == nil {
		dst = make([]MeterValue, 0, len(sc.sorted))
	}
	for _, id := range sc.sorted {
		idx := id*bb.nScopes + scope
		if idx >= len(slots) {
			continue // schema newer than the slots slice we loaded
		}
		bits, upd, ver := slots[idx].load()
		if ver == 0 {
			continue
		}
		dst = append(dst, MeterValue{
			Name:    sc.names[id],
			Value:   math.Float64frombits(bits),
			Updated: time.Duration(upd),
		})
	}
	return dst
}
