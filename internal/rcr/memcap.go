package rcr

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// Fenced membership replication (docs/cluster.md §Membership). The HA
// leader replicates the fleet's epoch-versioned membership record to
// every shard guard the same way it replicates cap assignments: under
// its fence. A MemWrite is an ordinary CapWrite plus an opaque
// membership frame; the guard applies the CapWrite's fence rules first
// and stores the frame only if the write was accepted, so a deposed
// leader's stale membership view bounces exactly like its stale caps —
// which is what prevents it double-spending a departed shard's watts.
// Every ack returns the guard's stored record, so a campaigning
// standby's election probes double as the fetch: a majority of grants
// necessarily includes every majority-committed record, and the
// promoted leader adopts the most authoritative one (highest fence,
// then epoch) exactly as it adopts the cap assignment.
//
// Wire formats (little-endian, strict decode):
//
//	MEMW: CAPW bytes, epoch u64, flen u32, frame [flen]byte
//	MEMA: CAPA bytes, memfence u64, memepoch u64, flen u32, frame
//
// An epoch-0 MemWrite is a pure probe/renewal: it carries no frame and
// stores nothing, but the ack still returns the stored record. The
// frame bytes are opaque here — the cluster tier owns the CLSM format
// and validates it strictly on both ends.

// MaxMemFrame bounds a membership frame on the wire; far beyond any
// fleet this tier simulates, small enough that a crafted length cannot
// drive a giant allocation.
const MaxMemFrame = 64 << 10

// MemWrite is one fenced membership commit (or, with Epoch 0, a pure
// lease write whose ack fetches the stored record).
type MemWrite struct {
	// Write is the fenced carrier: its fence/seq/lease rules decide
	// acceptance, and it may carry a cap exactly like a plain CapWrite.
	Write CapWrite
	// Epoch is the registry epoch of Frame; 0 carries no frame.
	Epoch uint64
	// Frame is the encoded membership record (cluster CLSM), opaque at
	// this layer. Must be empty exactly when Epoch is 0.
	Frame []byte
}

// MemAck is the guard's decision plus its stored membership record.
type MemAck struct {
	Ack CapAck
	// MemFence and MemEpoch version the stored record: the fence it was
	// committed under, then its registry epoch. Zero when nothing has
	// ever been stored.
	MemFence uint64
	MemEpoch uint64
	// Frame is the stored record's bytes (empty when MemEpoch is 0).
	Frame []byte
}

// AppendMemWrite appends w's strict MEMW encoding to dst.
func AppendMemWrite(dst []byte, w MemWrite) []byte {
	dst = AppendCapWrite(dst, w.Write)
	dst = binary.LittleEndian.AppendUint64(dst, w.Epoch)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(w.Frame)))
	return append(dst, w.Frame...)
}

// DecodeMemWrite strictly decodes a MEMW payload: a valid CAPW prefix,
// a bounded frame whose presence matches the epoch, no trailing bytes.
func DecodeMemWrite(p []byte) (MemWrite, error) {
	var w MemWrite
	if len(p) < capWriteLen+12 {
		return w, fmt.Errorf("rcr: mem write length %d, want at least %d", len(p), capWriteLen+12)
	}
	var err error
	if w.Write, err = DecodeCapWrite(p[:capWriteLen]); err != nil {
		return w, err
	}
	w.Epoch = binary.LittleEndian.Uint64(p[capWriteLen:])
	flen := binary.LittleEndian.Uint32(p[capWriteLen+8:])
	if flen > MaxMemFrame {
		return w, fmt.Errorf("rcr: mem write frame length %d exceeds bound", flen)
	}
	body := p[capWriteLen+12:]
	if uint32(len(body)) != flen {
		return w, fmt.Errorf("rcr: mem write frame is %d bytes, header claims %d", len(body), flen)
	}
	if w.Epoch == 0 && flen != 0 {
		return w, fmt.Errorf("rcr: mem write carries a frame without an epoch")
	}
	if w.Epoch != 0 && flen == 0 {
		return w, fmt.Errorf("rcr: mem write epoch %d carries no frame", w.Epoch)
	}
	if flen > 0 {
		w.Frame = append([]byte(nil), body...)
	}
	return w, nil
}

// AppendMemAck appends a's strict MEMA encoding to dst.
func AppendMemAck(dst []byte, a MemAck) []byte {
	dst = AppendCapAck(dst, a.Ack)
	dst = binary.LittleEndian.AppendUint64(dst, a.MemFence)
	dst = binary.LittleEndian.AppendUint64(dst, a.MemEpoch)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(a.Frame)))
	return append(dst, a.Frame...)
}

// DecodeMemAck strictly decodes a MEMA payload.
func DecodeMemAck(p []byte) (MemAck, error) {
	var a MemAck
	if len(p) < capAckLen+20 {
		return a, fmt.Errorf("rcr: mem ack length %d, want at least %d", len(p), capAckLen+20)
	}
	var err error
	if a.Ack, err = DecodeCapAck(p[:capAckLen]); err != nil {
		return a, err
	}
	a.MemFence = binary.LittleEndian.Uint64(p[capAckLen:])
	a.MemEpoch = binary.LittleEndian.Uint64(p[capAckLen+8:])
	flen := binary.LittleEndian.Uint32(p[capAckLen+16:])
	if flen > MaxMemFrame {
		return a, fmt.Errorf("rcr: mem ack frame length %d exceeds bound", flen)
	}
	body := p[capAckLen+20:]
	if uint32(len(body)) != flen {
		return a, fmt.Errorf("rcr: mem ack frame is %d bytes, header claims %d", len(body), flen)
	}
	if a.MemEpoch == 0 && (flen != 0 || a.MemFence != 0) {
		return a, fmt.Errorf("rcr: mem ack carries membership without an epoch")
	}
	if a.MemEpoch != 0 && flen == 0 {
		return a, fmt.Errorf("rcr: mem ack epoch %d carries no frame", a.MemEpoch)
	}
	if flen > 0 {
		a.Frame = append([]byte(nil), body...)
	}
	return a, nil
}

// OfferMem decides one membership commit: the carrier CapWrite goes
// through the ordinary fence rules, and only an accepted write may
// store its frame — and then only if (fence, epoch) supersedes what is
// already stored, so replays and a deposed leader's stale records are
// refused even if they somehow ride an accepted write. The ack always
// returns the stored record (a copy), making every renewal a fetch.
func (g *FenceGuard) OfferMem(w MemWrite) MemAck {
	now := g.clock()
	g.mu.Lock()
	defer g.mu.Unlock()
	ack := g.offerLocked(w.Write, now)
	if ack.Status != CapFenceRejected && w.Epoch > 0 && len(w.Frame) <= MaxMemFrame {
		if w.Write.Fence > g.memFence || (w.Write.Fence == g.memFence && w.Epoch > g.memEpoch) {
			g.memFence, g.memEpoch = w.Write.Fence, w.Epoch
			g.memFrame = append(g.memFrame[:0], w.Frame...)
			g.mirrorLocked()
		}
	}
	return MemAck{Ack: ack, MemFence: g.memFence, MemEpoch: g.memEpoch,
		Frame: append([]byte(nil), g.memFrame...)}
}

// Membership returns the guard's stored membership record: the fence
// it was committed under, its epoch, and a copy of the frame bytes.
// Zero values when nothing has been committed.
func (g *FenceGuard) Membership() (fence, epoch uint64, frame []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.memFence, g.memEpoch, append([]byte(nil), g.memFrame...)
}

// WriteMem performs one fenced membership write ("MEM\n" op) against
// addr. Like WriteCap, a transport failure is an error while a fence
// rejection comes back in the ack.
func WriteMem(ctx context.Context, network, addr string, w MemWrite) (MemAck, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return MemAck{}, fmt.Errorf("rcr: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return MemAck{}, fmt.Errorf("rcr: deadline: %w", err)
		}
	}
	stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()
	body := AppendMemWrite(make([]byte, 0, capWriteLen+12+len(w.Frame)), w)
	req := make([]byte, 0, 4+4+len(body))
	req = append(req, "MEM\n"...)
	req = binary.LittleEndian.AppendUint32(req, uint32(len(body)))
	req = append(req, body...)
	if _, err := conn.Write(req); err != nil {
		return MemAck{}, fmt.Errorf("rcr: mem write: %w", err)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return MemAck{}, fmt.Errorf("rcr: mem ack header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == busyHeader {
		return MemAck{}, ErrBusy
	}
	if n < uint32(capAckLen+20) || n > uint32(capAckLen+20+MaxMemFrame) {
		return MemAck{}, fmt.Errorf("rcr: implausible mem ack size %d", n)
	}
	resp := make([]byte, n)
	if _, err := io.ReadFull(conn, resp); err != nil {
		return MemAck{}, fmt.Errorf("rcr: mem ack body: %w", err)
	}
	return DecodeMemAck(resp)
}
