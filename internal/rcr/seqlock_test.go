package rcr

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// populate writes a representative meter population: system totals plus
// power/energy/concurrency per socket and duty cycle per core.
func populate(bb *Blackboard, now time.Duration) {
	bb.SetSystem(MeterPower, 141.5, now)
	bb.SetSystem(MeterEnergy, 9000, now)
	bb.SetSystem(MeterHeartbeat, 7, now)
	for s := 0; s < bb.Sockets(); s++ {
		bb.SetSocket(s, MeterPower, 70+float64(s), now)
		bb.SetSocket(s, MeterEnergy, 4500, now)
		bb.SetSocket(s, MeterMemConcurrency, 12, now)
		bb.SetSocket(s, MeterMemBandwidth, 1e9, now)
		bb.SetSocket(s, MeterTemperature, 55, now)
	}
	for c := 0; c < bb.Cores(); c++ {
		bb.SetCore(c, MeterDutyCycle, 0.5, now)
	}
}

// TestSeqlockReadAllocs: the same-process read path — single meters and
// whole snapshots — must not allocate. This is the shared-memory claim
// of the design: daemons polling the blackboard at 10 Hz cost the
// sampler nothing and the GC nothing.
func TestSeqlockReadAllocs(t *testing.T) {
	bb, _ := NewBlackboard(2, 8)
	populate(bb, time.Second)
	var sink Meter
	if n := testing.AllocsPerRun(1000, func() {
		sink, _ = bb.System(MeterPower)
		sink, _ = bb.Socket(1, MeterMemConcurrency)
		sink, _ = bb.Core(3, MeterDutyCycle)
	}); n != 0 {
		t.Errorf("meter reads allocate %.1f/op, want 0", n)
	}
	_ = sink

	var snap Snapshot
	bb.SnapshotInto(&snap, time.Second) // warm the scratch
	if n := testing.AllocsPerRun(1000, func() {
		bb.SnapshotInto(&snap, 2*time.Second)
	}); n != 0 {
		t.Errorf("SnapshotInto allocates %.1f/op on a warm scratch, want 0", n)
	}
}

// TestAppendSnapshotAllocs: encoding into a warm buffer must not
// allocate (exact-size precompute, no incremental growth).
func TestAppendSnapshotAllocs(t *testing.T) {
	bb, _ := NewBlackboard(2, 8)
	populate(bb, time.Second)
	snap := bb.Snapshot(time.Second)
	buf := AppendSnapshot(nil, snap)
	if n := testing.AllocsPerRun(1000, func() {
		buf = AppendSnapshot(buf[:0], snap)
	}); n != 0 {
		t.Errorf("AppendSnapshot allocates %.1f/op on a warm buffer, want 0", n)
	}
	if !bytes.Equal(buf, EncodeSnapshot(snap)) {
		t.Error("AppendSnapshot and EncodeSnapshot disagree")
	}
}

// TestDeltaEncodeAllocs: the per-tick publisher work — scan the board
// for changes and serialize them — must not allocate once the scratch
// frame and buffer are warm. This is what makes a 1k-subscriber fan-out
// one encode and zero garbage per tick.
func TestDeltaEncodeAllocs(t *testing.T) {
	bb, _ := NewBlackboard(2, 8)
	populate(bb, time.Second)
	var f DeltaFrame
	bb.CollectDelta(0, &f)
	buf := AppendDeltaFrame(nil, &f)
	since := uint64(0)
	now := time.Second
	if n := testing.AllocsPerRun(1000, func() {
		now += time.Millisecond
		bb.SetSocket(0, MeterPower, 71, now) // keep the delta non-empty
		bb.CollectDelta(since, &f)
		buf = AppendDeltaFrame(buf[:0], &f)
		since = f.To
	}); n != 0 {
		t.Errorf("delta collect+encode allocates %.1f/op on warm scratch, want 0", n)
	}
}

// TestSnapshotEncodeDeterministic (golden): two boards reaching the same
// state through different write orders — and hence different slot
// registration orders — must encode byte-identically, and re-encoding
// the same board twice must be bit-stable. The order is fixed at
// registration (name-sorted), not at encode time.
func TestSnapshotEncodeDeterministic(t *testing.T) {
	type write struct {
		set  func(bb *Blackboard)
		name string
	}
	writes := []write{
		{func(bb *Blackboard) { bb.SetSystem("zeta", 1, time.Second) }, "zeta"},
		{func(bb *Blackboard) { bb.SetSystem("alpha", 2, time.Second) }, "alpha"},
		{func(bb *Blackboard) { bb.SetSocket(0, MeterPower, 70, time.Second) }, "power"},
		{func(bb *Blackboard) { bb.SetSocket(1, MeterEnergy, 900, time.Second) }, "energy"},
		{func(bb *Blackboard) { bb.SetCore(2, MeterDutyCycle, 0.25, time.Second) }, "duty"},
	}
	forward, _ := NewBlackboard(2, 2)
	for _, w := range writes {
		w.set(forward)
	}
	backward, _ := NewBlackboard(2, 2)
	for i := len(writes) - 1; i >= 0; i-- {
		writes[i].set(backward)
	}
	a := EncodeSnapshot(forward.Snapshot(3 * time.Second))
	b := EncodeSnapshot(backward.Snapshot(3 * time.Second))
	if !bytes.Equal(a, b) {
		t.Fatalf("write order changed the encoding:\n fwd %x\n rev %x", a, b)
	}
	if again := EncodeSnapshot(forward.Snapshot(3 * time.Second)); !bytes.Equal(a, again) {
		t.Fatal("re-encoding identical state is not bit-stable")
	}
}

// TestBlackboardVersion: the publish version advances once per write and
// an untouched board keeps its version — the invariant the delta stream
// (an unchanged tick is a heartbeat) is built on.
func TestBlackboardVersion(t *testing.T) {
	bb, _ := NewBlackboard(1, 2)
	if v := bb.Version(); v != 0 {
		t.Fatalf("fresh board version = %d, want 0", v)
	}
	bb.SetSystem(MeterPower, 1, time.Second)
	bb.SetSocket(0, MeterPower, 2, time.Second)
	if v := bb.Version(); v != 2 {
		t.Fatalf("version after 2 writes = %d, want 2", v)
	}
	var f DeltaFrame
	bb.CollectDelta(bb.Version(), &f)
	if !f.Heartbeat() {
		t.Error("delta since current version is not a heartbeat")
	}
	gen := bb.SchemaGen()
	bb.SetSystem(MeterPower, 3, 2*time.Second) // existing name: no schema change
	if bb.SchemaGen() != gen {
		t.Error("rewriting an existing meter bumped the schema generation")
	}
	bb.SetSystem("brand-new", 1, 2*time.Second)
	if bb.SchemaGen() == gen {
		t.Error("registering a new meter did not bump the schema generation")
	}
}

// TestSeqlockTornReads: a writer republishing (v, v) pairs must never be
// seen torn — every concurrent read must observe Value and Updated from
// the same publish. Catches seqlock ordering bugs under -race and under
// raw contention.
func TestSeqlockTornReads(t *testing.T) {
	bb, _ := NewBlackboard(1, 1)
	bb.SetSocket(0, MeterPower, 0, 0)
	stop := make(chan struct{})
	var wrote atomic.Uint64
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			bb.SetSocket(0, MeterPower, float64(i), time.Duration(i))
			wrote.Store(i)
		}
	}()
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for n := 0; n < 50000; n++ {
				m, ok := bb.Socket(0, MeterPower)
				if !ok {
					t.Error("meter vanished")
					return
				}
				if m.Value != float64(m.Updated) {
					t.Errorf("torn read: value %v, updated %d", m.Value, m.Updated)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	<-writerDone
	if wrote.Load() == 0 {
		t.Error("writer never ran")
	}
}

// rwBlackboard is the previous RWMutex+map design, kept here as the
// contention baseline for BenchmarkBlackboardContention.
type rwBlackboard struct {
	mu sync.RWMutex
	m  map[string]Meter
}

func (b *rwBlackboard) set(name string, v float64, now time.Duration) {
	b.mu.Lock()
	b.m[name] = Meter{Value: v, Updated: now}
	b.mu.Unlock()
}

func (b *rwBlackboard) get(name string) (Meter, bool) {
	b.mu.RLock()
	m, ok := b.m[name]
	b.mu.RUnlock()
	return m, ok
}

// BenchmarkBlackboardContention measures single-meter read throughput
// while a writer republishes at full speed — the daemon-vs-sampler
// contention pattern. Compare the seqlock board against the old
// RWMutex+map design.
func BenchmarkBlackboardContention(b *testing.B) {
	b.Run("seqlock", func(b *testing.B) {
		bb, _ := NewBlackboard(1, 1)
		bb.SetSocket(0, MeterPower, 1, 0)
		stop := make(chan struct{})
		go func() {
			for i := uint64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
					bb.SetSocket(0, MeterPower, float64(i), time.Duration(i))
				}
			}
		}()
		defer close(stop)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, ok := bb.Socket(0, MeterPower); !ok {
					b.Fatal("meter vanished")
				}
			}
		})
	})
	b.Run("rwmutex", func(b *testing.B) {
		bb := &rwBlackboard{m: map[string]Meter{MeterPower: {}}}
		stop := make(chan struct{})
		go func() {
			for i := uint64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
					bb.set(MeterPower, float64(i), time.Duration(i))
				}
			}
		}()
		defer close(stop)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, ok := bb.get(MeterPower); !ok {
					b.Fatal("meter vanished")
				}
			}
		})
	})
}

// BenchmarkSnapshotInto measures the whole-board copy on the warm
// scratch path the IPC workers use.
func BenchmarkSnapshotInto(b *testing.B) {
	for _, cores := range []int{8, 64} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			bb, _ := NewBlackboard(2, cores/2)
			populate(bb, time.Second)
			var s Snapshot
			bb.SnapshotInto(&s, time.Second)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bb.SnapshotInto(&s, time.Second)
			}
		})
	}
}
