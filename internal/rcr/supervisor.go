package rcr

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine"
	"repro/internal/rapl"
	"repro/internal/telemetry"
)

// SupervisorConfig tunes a sampler supervisor.
type SupervisorConfig struct {
	// SamplePeriod is the period of the supervised sampler (also used
	// for restarts). Zero selects DefaultSamplePeriod.
	SamplePeriod time.Duration
	// CheckPeriod is how often the supervisor inspects the heartbeat.
	// Zero selects 3× SamplePeriod.
	CheckPeriod time.Duration
	// StaleAfter is the heartbeat age that declares the sampler dead or
	// wedged and triggers a restart. Zero selects 2× CheckPeriod.
	StaleAfter time.Duration
	// Telemetry, when non-nil, instruments the supervisor and every
	// sampler incarnation it starts.
	Telemetry *telemetry.Registry
}

// supervisorMetrics is the supervisor's instrument set.
type supervisorMetrics struct {
	checks   *telemetry.Counter
	restarts *telemetry.Counter
	failures *telemetry.Counter // restart attempts that failed
}

// Supervisor owns a sampler's lifecycle, standing in for the init system
// that keeps the real rcrd running: it watches the blackboard heartbeat
// and, when the sampler has crashed or wedged (heartbeat stale), stops
// the old incarnation and starts a fresh one. StartSampler reseeds the
// energy baselines from the counters, so the restarted sampler resumes
// publishing sane power figures instead of booking the outage's energy
// into its first window.
type Supervisor struct {
	m      *machine.Machine
	reader rapl.Reader
	bb     *Blackboard
	cfg    SupervisorConfig

	tickerID int
	restarts atomic.Uint64
	met      *supervisorMetrics

	mu        sync.Mutex
	sampler   *Sampler
	tickGate  TickGate
	meterGate MeterGate
	pub       *Publisher
	stopped   bool
}

// StartSupervisor starts a sampler under supervision. The returned
// Supervisor's Stop tears down both the watchdog and the sampler.
func StartSupervisor(m *machine.Machine, reader rapl.Reader, bb *Blackboard, cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = DefaultSamplePeriod
	}
	if cfg.CheckPeriod <= 0 {
		cfg.CheckPeriod = 3 * cfg.SamplePeriod
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 2 * cfg.CheckPeriod
	}
	sup := &Supervisor{m: m, reader: reader, bb: bb, cfg: cfg}
	if reg := cfg.Telemetry; reg != nil {
		sup.met = &supervisorMetrics{
			checks:   reg.Counter("rcr_supervisor_checks_total"),
			restarts: reg.Counter("rcr_supervisor_restarts_total"),
			failures: reg.Counter("rcr_supervisor_restart_failures_total"),
		}
	}
	s, err := StartSampler(m, reader, bb, cfg.SamplePeriod)
	if err != nil {
		return nil, err
	}
	s.Instrument(cfg.Telemetry)
	sup.sampler = s
	id, err := m.AddTicker(cfg.CheckPeriod, sup.check)
	if err != nil {
		s.Stop()
		return nil, err
	}
	sup.tickerID = id
	return sup, nil
}

// SetFaultGates installs fault gates on the current sampler and every
// future incarnation — a restarted sampler stays inside the same fault
// schedule, so a crash window that is still open kills it again.
func (sup *Supervisor) SetFaultGates(tick TickGate, meter MeterGate) {
	sup.mu.Lock()
	defer sup.mu.Unlock()
	sup.tickGate, sup.meterGate = tick, meter
	sup.sampler.SetFaultGates(tick, meter)
}

// AttachPublisher attaches p to the current sampler and every future
// incarnation, so a supervised restart keeps the push stream ticking
// instead of silently starving subscribers.
func (sup *Supervisor) AttachPublisher(p *Publisher) {
	sup.mu.Lock()
	defer sup.mu.Unlock()
	sup.pub = p
	sup.sampler.AttachPublisher(p)
}

// Sampler returns the current sampler incarnation.
func (sup *Supervisor) Sampler() *Sampler {
	sup.mu.Lock()
	defer sup.mu.Unlock()
	return sup.sampler
}

// Restarts returns how many times the supervisor has restarted the
// sampler.
func (sup *Supervisor) Restarts() uint64 { return sup.restarts.Load() }

// Stop halts the watchdog and the sampler.
func (sup *Supervisor) Stop() {
	sup.m.RemoveTicker(sup.tickerID)
	sup.mu.Lock()
	defer sup.mu.Unlock()
	sup.stopped = true
	sup.sampler.Stop()
}

// check runs on the engine goroutine every CheckPeriod: a sampler that
// reports dead, or whose heartbeat has not moved for StaleAfter, is
// replaced.
func (sup *Supervisor) check(now time.Duration, _ *machine.Snapshot) {
	if sup.met != nil {
		sup.met.checks.Inc()
	}
	sup.mu.Lock()
	defer sup.mu.Unlock()
	if sup.stopped {
		return
	}
	healthy := sup.sampler.Alive()
	if healthy {
		hb, ok := sup.bb.System(MeterHeartbeat)
		switch {
		case ok:
			healthy = now-hb.Updated <= sup.cfg.StaleAfter
		default:
			// No heartbeat yet: grant a startup grace window.
			healthy = now <= sup.cfg.StaleAfter
		}
	}
	if healthy {
		return
	}
	sup.sampler.Stop()
	s, err := StartSampler(sup.m, sup.reader, sup.bb, sup.cfg.SamplePeriod)
	if err != nil {
		// Retry at the next check; the dead sampler stays in place so
		// accessors keep working.
		if sup.met != nil {
			sup.met.failures.Inc()
		}
		return
	}
	s.Instrument(sup.cfg.Telemetry)
	s.SetFaultGates(sup.tickGate, sup.meterGate)
	if sup.pub != nil {
		s.AttachPublisher(sup.pub)
	}
	sup.sampler = s
	sup.restarts.Add(1)
	if sup.met != nil {
		sup.met.restarts.Inc()
	}
}
