package rcr

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestDeltaHeartbeatIsFixedSize: a tick where nothing moved must cost a
// constant 33 bytes regardless of board size — the whole point of the
// delta stream.
func TestDeltaHeartbeatIsFixedSize(t *testing.T) {
	bb, _ := NewBlackboard(4, 16)
	populate(bb, time.Second)
	var f DeltaFrame
	bb.CollectDelta(bb.Version(), &f)
	if !f.Heartbeat() {
		t.Fatal("delta since current version is not a heartbeat")
	}
	enc := AppendDeltaFrame(nil, &f)
	if len(enc) != 33 {
		t.Errorf("heartbeat frame is %d bytes, want 33", len(enc))
	}
}

// TestDeltaCostProportionalToChanges: k changed meters encode O(k)
// values plus the bitmap, not the whole board.
func TestDeltaCostProportionalToChanges(t *testing.T) {
	bb, _ := NewBlackboard(2, 8)
	populate(bb, time.Second)
	basis := bb.Version()
	bb.SetSocket(0, MeterPower, 72, 2*time.Second)
	bb.SetSocket(1, MeterPower, 69, 2*time.Second)
	var f DeltaFrame
	bb.CollectDelta(basis, &f)
	if got := len(f.Vals); got != 2 {
		t.Fatalf("delta carries %d slots, want 2", got)
	}
	want := 33 + 4 + (bb.NumSlots()+7)/8 + 2*16
	if enc := AppendDeltaFrame(nil, &f); len(enc) != want {
		t.Errorf("2-change delta is %d bytes, want %d", len(enc), want)
	}
}

// TestFrameRoundTrips: full and delta frames must decode back to the
// collected form and re-encode bit-exactly.
func TestFrameRoundTrips(t *testing.T) {
	bb, _ := NewBlackboard(2, 2)
	populate(bb, time.Second)

	var full FullFrame
	bb.CollectFull(&full)
	full.Now = time.Second
	full.Flags = FlagInitial
	encF := AppendFullFrame(nil, &full)
	var gotF FullFrame
	if err := DecodeFullFrame(encF, &gotF); err != nil {
		t.Fatalf("DecodeFullFrame: %v", err)
	}
	if !reflect.DeepEqual(full, gotF) {
		t.Errorf("full frame round-trip mismatch:\n in  %+v\n out %+v", full, gotF)
	}
	if re := AppendFullFrame(nil, &gotF); !bytes.Equal(re, encF) {
		t.Error("full frame re-encode is not bit-exact")
	}

	basis := bb.Version()
	bb.SetCore(1, MeterDutyCycle, 0.75, 2*time.Second)
	var delta DeltaFrame
	bb.CollectDelta(basis, &delta)
	delta.Now = 2 * time.Second
	encD := AppendDeltaFrame(nil, &delta)
	var gotD DeltaFrame
	if err := DecodeDeltaFrame(encD, &gotD); err != nil {
		t.Fatalf("DecodeDeltaFrame: %v", err)
	}
	if !reflect.DeepEqual(delta, gotD) {
		t.Errorf("delta frame round-trip mismatch:\n in  %+v\n out %+v", delta, gotD)
	}
	if re := AppendDeltaFrame(nil, &gotD); !bytes.Equal(re, encD) {
		t.Error("delta frame re-encode is not bit-exact")
	}
}

// TestFrameDecodeTruncatedNeverPanics mirrors the snapshot truncation
// test for both frame kinds.
func TestFrameDecodeTruncatedNeverPanics(t *testing.T) {
	bb, _ := NewBlackboard(2, 2)
	populate(bb, time.Second)
	var full FullFrame
	bb.CollectFull(&full)
	encF := AppendFullFrame(nil, &full)
	for n := 0; n < len(encF); n++ {
		var f FullFrame
		if err := DecodeFullFrame(encF[:n], &f); err == nil {
			t.Fatalf("full frame truncated to %d of %d decoded", n, len(encF))
		}
	}
	bb.SetSystem(MeterPower, 150, 2*time.Second)
	var delta DeltaFrame
	bb.CollectDelta(full.Ver, &delta)
	encD := AppendDeltaFrame(nil, &delta)
	for n := 0; n < len(encD); n++ {
		var f DeltaFrame
		if err := DecodeDeltaFrame(encD[:n], &f); err == nil {
			t.Fatalf("delta frame truncated to %d of %d decoded", n, len(encD))
		}
	}
}

// TestDeltaDecodeRejectsBitmapOverhang: bits set past nSlots would let a
// frame smuggle extra values; the decoder must reject them.
func TestDeltaDecodeRejectsBitmapOverhang(t *testing.T) {
	f := DeltaFrame{
		Gen: 1, From: 1, To: 2, Now: time.Second,
		NSlots: 3,
		Bitmap: []byte{0b0000_0001},
		Vals:   []float64{7},
		Upds:   []int64{9},
	}
	good := AppendDeltaFrame(nil, &f)
	var out DeltaFrame
	if err := DecodeDeltaFrame(good, &out); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	// Set bit 3 (beyond the 3 declared slots) and append its value pair.
	f.Bitmap = []byte{0b0000_1001}
	f.Vals = append(f.Vals, 8)
	f.Upds = append(f.Upds, 10)
	bad := AppendDeltaFrame(nil, &f)
	if err := DecodeDeltaFrame(bad, &out); err == nil {
		t.Error("bitmap overhang accepted")
	}
}

// TestSubStateFollowsBoard: the canonical subscriber flow — one full
// frame, then deltas — must reproduce Blackboard.Snapshot exactly,
// including meter ordering.
func TestSubStateFollowsBoard(t *testing.T) {
	bb, _ := NewBlackboard(2, 2)
	populate(bb, time.Second)

	var st SubState
	var full FullFrame
	bb.CollectFull(&full)
	full.Now = time.Second
	if err := st.ApplyFull(&full); err != nil {
		t.Fatal(err)
	}
	if got, want := st.Snapshot(), bb.Snapshot(time.Second); !reflect.DeepEqual(got, want) {
		t.Fatalf("after full frame:\n got  %+v\n want %+v", got, want)
	}

	basis := full.Ver
	for tick := 1; tick <= 3; tick++ {
		now := time.Duration(tick) * 2 * time.Second
		bb.SetSocket(0, MeterPower, 70+float64(tick), now)
		bb.SetCore(3, MeterDutyCycle, 0.1*float64(tick), now)
		var delta DeltaFrame
		bb.CollectDelta(basis, &delta)
		delta.Now = now
		basis = delta.To
		if err := st.ApplyDelta(&delta); err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		if got, want := st.Snapshot(), bb.Snapshot(now); !reflect.DeepEqual(got, want) {
			t.Fatalf("tick %d:\n got  %+v\n want %+v", tick, got, want)
		}
	}

	// A heartbeat only refreshes Now.
	var hb DeltaFrame
	bb.CollectDelta(basis, &hb)
	hb.Now = 100 * time.Second
	if err := st.ApplyDelta(&hb); err != nil {
		t.Fatal(err)
	}
	if st.Now != 100*time.Second {
		t.Errorf("heartbeat did not refresh Now: %v", st.Now)
	}
}

// TestSubStateGapDetection: deltas that do not connect must surface
// ErrDeltaGap and leave the state unchanged.
func TestSubStateGapDetection(t *testing.T) {
	bb, _ := NewBlackboard(1, 1)
	bb.SetSocket(0, MeterPower, 70, time.Second)

	var st SubState
	bad := DeltaFrame{Gen: 0, From: 5, To: 6, NSlots: 1, Bitmap: []byte{1}, Vals: []float64{1}, Upds: []int64{1}}
	if err := st.ApplyDelta(&bad); !errors.Is(err, ErrDeltaGap) {
		t.Errorf("delta before any full frame: %v, want ErrDeltaGap", err)
	}

	var full FullFrame
	bb.CollectFull(&full)
	if err := st.ApplyFull(&full); err != nil {
		t.Fatal(err)
	}

	// Basis newer than held state: frames were dropped.
	gap := DeltaFrame{Gen: st.Gen, From: st.Ver + 3, To: st.Ver + 4,
		NSlots: 1, Bitmap: []byte{1}, Vals: []float64{9}, Upds: []int64{9}}
	if err := st.ApplyDelta(&gap); !errors.Is(err, ErrDeltaGap) {
		t.Errorf("version gap: %v, want ErrDeltaGap", err)
	}

	// Schema generation mismatch.
	wrongGen := DeltaFrame{Gen: st.Gen + 1, From: st.Ver, To: st.Ver + 1,
		NSlots: 1, Bitmap: []byte{1}, Vals: []float64{9}, Upds: []int64{9}}
	if err := st.ApplyDelta(&wrongGen); !errors.Is(err, ErrDeltaGap) {
		t.Errorf("gen mismatch: %v, want ErrDeltaGap", err)
	}
}

// TestSubStateFullDeltaOverlap: a resync full frame may observe writes a
// concurrently collected delta did not; the stale delta (To <= held Ver)
// must be a no-op, and the next real delta must connect.
func TestSubStateFullDeltaOverlap(t *testing.T) {
	bb, _ := NewBlackboard(1, 1)
	bb.SetSocket(0, MeterPower, 70, time.Second)
	basis := uint64(0)

	var delta DeltaFrame
	bb.CollectDelta(basis, &delta) // covers the first write
	bb.SetSocket(0, MeterPower, 71, 2*time.Second)
	var full FullFrame
	bb.CollectFull(&full) // observes the second write too

	var st SubState
	if err := st.ApplyFull(&full); err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyDelta(&delta); err != nil {
		t.Fatalf("stale delta after newer full: %v", err)
	}
	if m := st.Snapshot().Sockets[0].Meters[0]; m.Value != 71 {
		t.Errorf("stale delta regressed the state to %v", m.Value)
	}

	// The chain continues from the delta's To even though the state holds
	// a newer version: the next delta overlaps and must apply.
	bb.SetSocket(0, MeterPower, 72, 3*time.Second)
	var next DeltaFrame
	bb.CollectDelta(delta.To, &next)
	if err := st.ApplyDelta(&next); err != nil {
		t.Fatalf("overlapping delta: %v", err)
	}
	if m := st.Snapshot().Sockets[0].Meters[0]; m.Value != 72 {
		t.Errorf("state = %v after overlapping delta, want 72", m.Value)
	}
}

// TestCollectDeltaNeverLosesClaimedWrites: To must come from observed
// slot versions, not the board's version counter — a write whose version
// was claimed but not yet published must land in the NEXT delta, not be
// skipped forever. Simulated here by collecting before the write.
func TestCollectDeltaNeverLosesClaimedWrites(t *testing.T) {
	bb, _ := NewBlackboard(1, 1)
	bb.SetSocket(0, MeterPower, 70, time.Second)
	var f DeltaFrame
	bb.CollectDelta(0, &f)
	if f.To != bb.Version() {
		t.Fatalf("To = %d, version = %d", f.To, bb.Version())
	}
	// Write after the collection: the next delta from f.To must carry it.
	bb.SetSocket(0, MeterPower, 71, 2*time.Second)
	var next DeltaFrame
	bb.CollectDelta(f.To, &next)
	if next.Heartbeat() || len(next.Vals) != 1 || next.Vals[0] != 71 {
		t.Errorf("follow-up delta = %+v, want one slot with 71", next)
	}
}
