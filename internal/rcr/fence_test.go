package rcr

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestCapWriteRoundTrip(t *testing.T) {
	cases := []CapWrite{
		{Fence: 1, Leader: 1, Seq: 1, Lease: time.Second},
		{Fence: 7, Leader: 2, Seq: 9000, Lease: 50 * time.Millisecond, HasCap: true, Cap: 62.5},
		{Fence: 1<<53 - 1, Leader: 4, Seq: 1 << 40, Release: true},
	}
	for _, w := range cases {
		enc := AppendCapWrite(nil, w)
		got, err := DecodeCapWrite(enc)
		if err != nil {
			t.Fatalf("decode %+v: %v", w, err)
		}
		if got != w {
			t.Fatalf("round trip: got %+v want %+v", got, w)
		}
		if re := AppendCapWrite(nil, got); !bytes.Equal(re, enc) {
			t.Fatalf("re-encode differs:\n in %x\nout %x", enc, re)
		}
	}
}

func TestCapWriteDecodeRejects(t *testing.T) {
	good := AppendCapWrite(nil, CapWrite{Fence: 3, Leader: 1, Seq: 2, Lease: time.Second, HasCap: true, Cap: 80})
	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		f(b)
		return b
	}
	bad := map[string][]byte{
		"short":          good[:len(good)-1],
		"long":           append(append([]byte(nil), good...), 0),
		"magic":          mutate(func(b []byte) { b[0] = 'X' }),
		"unknown flag":   mutate(func(b []byte) { b[4] |= 0x80 }),
		"zero leader":    mutate(func(b []byte) { copy(b[13:17], []byte{0, 0, 0, 0}) }),
		"zero fence":     mutate(func(b []byte) { copy(b[5:13], make([]byte, 8)) }),
		"zero lease":     mutate(func(b []byte) { copy(b[17:25], make([]byte, 8)) }),
		"nan cap":        mutate(func(b []byte) { copy(b[33:], []byte{0, 0, 0, 0, 0, 0, 0xf8, 0x7f}) }),
		"zero seq":       mutate(func(b []byte) { copy(b[25:33], make([]byte, 8)) }),
		"capless bits":   mutate(func(b []byte) { b[4] &^= capwFlagHasCap }),
		"release + cap":  mutate(func(b []byte) { b[4] |= capwFlagRelease }),
		"negative lease": mutate(func(b []byte) { b[24] = 0x80 }),
	}
	for name, payload := range bad {
		if _, err := DecodeCapWrite(payload); err == nil {
			t.Errorf("%s: decode accepted %x", name, payload)
		}
	}
}

func TestCapAckRoundTrip(t *testing.T) {
	cases := []CapAck{
		{Status: CapApplied, Fence: 2, Holder: 1, Expiry: time.Second},
		{Status: CapFenceRejected, Fence: 9, Holder: 3, Expiry: 2 * time.Second, HasApplied: true, Applied: 55},
		{Status: CapApplyFailed, Fence: 1, Holder: 2},
	}
	for _, a := range cases {
		enc := AppendCapAck(nil, a)
		got, err := DecodeCapAck(enc)
		if err != nil {
			t.Fatalf("decode %+v: %v", a, err)
		}
		if got != a {
			t.Fatalf("round trip: got %+v want %+v", got, a)
		}
	}
	if _, err := DecodeCapAck(AppendCapAck(nil, CapAck{Status: 3})); err == nil {
		t.Fatal("unknown status accepted")
	}
}

// fenceTestClock is a settable host clock.
type fenceTestClock struct{ now time.Duration }

func (c *fenceTestClock) Now() time.Duration { return c.now }

func TestFenceGuardSemantics(t *testing.T) {
	clk := &fenceTestClock{}
	var applied []float64
	g := NewFenceGuard(clk.Now, func(cap float64, fence uint64) error {
		applied = append(applied, cap)
		return nil
	})
	reg := telemetry.NewRegistry()
	g.Instrument(reg)
	j := telemetry.NewJournal(64, 1)
	g.Journal(j)

	ttl := 100 * time.Millisecond
	// First write wins the virgin guard.
	ack := g.Offer(CapWrite{Fence: 1, Leader: 1, Seq: 1, Lease: ttl, HasCap: true, Cap: 60})
	if ack.Status != CapApplied || ack.Fence != 1 || ack.Holder != 1 || !ack.HasApplied || ack.Applied != 60 {
		t.Fatalf("initial grant: %+v", ack)
	}
	// A rival with the same fence is rejected; with a higher fence too,
	// while the lease is live.
	if ack := g.Offer(CapWrite{Fence: 1, Leader: 2, Seq: 1, Lease: ttl}); ack.Status != CapFenceRejected {
		t.Fatalf("same-fence rival accepted: %+v", ack)
	}
	if ack := g.Offer(CapWrite{Fence: 2, Leader: 2, Seq: 1, Lease: ttl}); ack.Status != CapFenceRejected {
		t.Fatalf("live-lease takeover accepted: %+v", ack)
	}
	// The holder renews at the same fence.
	clk.now = 50 * time.Millisecond
	if ack := g.Offer(CapWrite{Fence: 1, Leader: 1, Seq: 2, Lease: ttl}); ack.Status != CapApplied {
		t.Fatalf("renewal rejected: %+v", ack)
	}
	// A delayed duplicate — or any write at or below the last accepted
	// seq — is rejected: it cannot roll the shard back.
	if ack := g.Offer(CapWrite{Fence: 1, Leader: 1, Seq: 2, Lease: ttl, HasCap: true, Cap: 90}); ack.Status != CapFenceRejected {
		t.Fatalf("stale-seq replay accepted: %+v", ack)
	}
	// After expiry a higher fence from a new holder wins; the old
	// holder's stale fence is then rejected forever.
	clk.now = 50*time.Millisecond + ttl + time.Millisecond
	ack = g.Offer(CapWrite{Fence: 2, Leader: 2, Seq: 1, Lease: ttl, HasCap: true, Cap: 45})
	if ack.Status != CapApplied || ack.Holder != 2 {
		t.Fatalf("post-expiry takeover rejected: %+v", ack)
	}
	late := g.Offer(CapWrite{Fence: 1, Leader: 1, Seq: 3, Lease: ttl, HasCap: true, Cap: 90})
	if late.Status != CapFenceRejected {
		t.Fatalf("stale write accepted after takeover: %+v", late)
	}
	if late.Fence != 2 || late.Holder != 2 || late.Applied != 45 {
		t.Fatalf("rejection ack does not report authoritative state: %+v", late)
	}
	if want := []float64{60, 45}; len(applied) != 2 || applied[0] != want[0] || applied[1] != want[1] {
		t.Fatalf("applied caps %v, want %v", applied, want)
	}
	// Release lets a successor in without waiting out the TTL.
	if ack := g.Offer(CapWrite{Fence: 2, Leader: 2, Seq: 2, Release: true}); ack.Status != CapApplied {
		t.Fatalf("release rejected: %+v", ack)
	}
	if ack := g.Offer(CapWrite{Fence: 3, Leader: 3, Seq: 1, Lease: ttl}); ack.Status != CapApplied {
		t.Fatalf("post-release takeover rejected: %+v", ack)
	}
	if n := reg.Counter("cluster_fence_rejects_total").Value(); n != 4 {
		t.Fatalf("fence rejects counter %d, want 4", n)
	}
	rejJournaled := 0
	for _, d := range j.Entries() {
		if d.Kind == telemetry.KindFenceRejected {
			rejJournaled++
		}
	}
	if rejJournaled != 4 {
		t.Fatalf("fence_rejected journal records %d, want 4", rejJournaled)
	}
}

func TestFenceGuardMirrorsLeaseMeters(t *testing.T) {
	clk := &fenceTestClock{now: time.Second}
	g := NewFenceGuard(clk.Now, func(float64, uint64) error { return nil })
	bb, err := NewBlackboard(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Bind(bb)
	g.Offer(CapWrite{Fence: 5, Leader: 2, Seq: 1, Lease: time.Second, HasCap: true, Cap: 72})
	check := func(name string, want float64) {
		t.Helper()
		m, ok := bb.System(name)
		if !ok {
			t.Fatalf("meter %s missing", name)
		}
		if m.Value != want {
			t.Fatalf("meter %s = %v, want %v", name, m.Value, want)
		}
	}
	check(MeterFence, 5)
	check(MeterLeaseHolder, 2)
	check(MeterLeaseExpiry, 2) // 1 s now + 1 s lease
	check(MeterFencedCap, 72)

	// Rebinding a fresh blackboard (shard restart) republishes state.
	bb2, err := NewBlackboard(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Bind(bb2)
	if m, ok := bb2.System(MeterFence); !ok || m.Value != 5 {
		t.Fatalf("fence not republished after rebind: %v %v", m, ok)
	}
}

// TestWriteCapOverWire drives the CAP op end-to-end: client → server →
// guard → ack.
func TestWriteCapOverWire(t *testing.T) {
	dir := t.TempDir()
	socket := filepath.Join(dir, "rcrd.sock")
	ln, err := net.Listen("unix", socket)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := NewBlackboard(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	clk := &fenceTestClock{}
	g := NewFenceGuard(clk.Now, func(float64, uint64) error { return nil })
	g.Bind(bb)
	srv := NewServer(bb, clk, ln)
	srv.Fence = g
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	defer func() { srv.Close(); <-done }()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	ack, err := WriteCap(ctx, "unix", socket, CapWrite{Fence: 1, Leader: 1, Seq: 1, Lease: time.Second, HasCap: true, Cap: 64})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Status != CapApplied || ack.Applied != 64 {
		t.Fatalf("ack %+v", ack)
	}
	ack, err = WriteCap(ctx, "unix", socket, CapWrite{Fence: 1, Leader: 2, Seq: 1, Lease: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Status != CapFenceRejected || ack.Holder != 1 {
		t.Fatalf("rival ack %+v", ack)
	}

	// A server without a guard rejects the op outright.
	ln2, err := net.Listen("unix", filepath.Join(dir, "bare.sock"))
	if err != nil {
		t.Fatal(err)
	}
	bare := NewServer(bb, clk, ln2)
	done2 := make(chan error, 1)
	go func() { done2 <- bare.Serve() }()
	defer func() { bare.Close(); <-done2 }()
	if _, err := WriteCap(ctx, "unix", filepath.Join(dir, "bare.sock"),
		CapWrite{Fence: 1, Leader: 1, Seq: 1, Lease: time.Second}); err == nil {
		t.Fatal("guardless server accepted a cap write")
	}
}

// FuzzDecodeCapWrite hammers the fenced cap-write decoder with the
// bit-exact re-encode property, then checks that any accepted write is
// safe to offer to a guard.
func FuzzDecodeCapWrite(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("CAPW"))
	f.Add(AppendCapWrite(nil, CapWrite{Fence: 1, Leader: 1, Seq: 1, Lease: time.Second}))
	f.Add(AppendCapWrite(nil, CapWrite{Fence: 2, Leader: 3, Seq: 7, Lease: time.Millisecond, HasCap: true, Cap: 60}))
	f.Add(AppendCapWrite(nil, CapWrite{Fence: 9, Leader: 2, Seq: 3, Release: true}))
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := DecodeCapWrite(data)
		if err != nil {
			return
		}
		re := AppendCapWrite(nil, w)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted payload does not re-encode to itself:\n in %x\nout %x", data, re)
		}
		// Any decoded write must round-trip through a guard without
		// panicking, and the ack must itself round-trip on the wire.
		clk := &fenceTestClock{}
		g := NewFenceGuard(clk.Now, func(cap float64, fence uint64) error {
			if cap <= 0 {
				return fmt.Errorf("non-positive cap %v reached apply", cap)
			}
			return nil
		})
		ack := g.Offer(w)
		enc := AppendCapAck(nil, ack)
		back, err := DecodeCapAck(enc)
		if err != nil {
			t.Fatalf("ack %+v does not decode: %v", ack, err)
		}
		if back != ack {
			t.Fatalf("ack round trip: got %+v want %+v", back, ack)
		}
	})
}
