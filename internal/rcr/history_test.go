package rcr

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistoryRecordsSeries(t *testing.T) {
	m, s := startSimStack(t, 10*time.Millisecond)
	h, err := StartHistory(m, s.Blackboard(), 10*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()

	burn(t, m, []int{0, 1, 2, 3}, 200*time.Millisecond)

	pts := h.Points()
	if len(pts) < 15 {
		t.Fatalf("recorded %d points over 200 ms at 10 ms, want ~20", len(pts))
	}
	if h.Len() != len(pts) {
		t.Errorf("Len() = %d, Points() = %d", h.Len(), len(pts))
	}
	// Monotone time, plausible power during the burn.
	var sawLoad bool
	for i := 1; i < len(pts); i++ {
		if pts[i].Time <= pts[i-1].Time {
			t.Fatalf("time not monotone at %d", i)
		}
		if pts[i].NodePower > 60 {
			sawLoad = true
		}
	}
	if !sawLoad {
		t.Error("history never saw the load's power")
	}
	if len(pts[0].SocketPower) != 2 || len(pts[0].Concurrency) != 2 || len(pts[0].Temperature) != 2 {
		t.Errorf("point shape wrong: %+v", pts[0])
	}
}

func TestHistoryRingWraps(t *testing.T) {
	m, s := startSimStack(t, 10*time.Millisecond)
	h, err := StartHistory(m, s.Blackboard(), 10*time.Millisecond, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	burn(t, m, []int{0}, 300*time.Millisecond) // ~30 samples into 8 slots
	pts := h.Points()
	if len(pts) != 8 {
		t.Fatalf("ring holds %d points, want 8", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time <= pts[i-1].Time {
			t.Fatalf("wrapped ring out of order at %d", i)
		}
	}
	// Oldest retained point must be from near the end of the run.
	if pts[0].Time < 200*time.Millisecond {
		t.Errorf("ring kept stale point at %v", pts[0].Time)
	}
}

func TestHistoryWriteCSV(t *testing.T) {
	m, s := startSimStack(t, 10*time.Millisecond)
	h, err := StartHistory(m, s.Blackboard(), 10*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	burn(t, m, []int{0, 1}, 100*time.Millisecond)

	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != h.Len()+1 {
		t.Errorf("CSV has %d lines, want %d", len(lines), h.Len()+1)
	}
	if !strings.HasPrefix(lines[0], "t_seconds,node_watts,pkg0_watts") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestHistoryConcurrentReaders(t *testing.T) {
	m, s := startSimStack(t, 5*time.Millisecond)
	h, err := StartHistory(m, s.Blackboard(), 5*time.Millisecond, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = h.Points()
					_ = h.Len()
				}
			}
		}()
	}
	burn(t, m, []int{0, 1, 2}, 150*time.Millisecond)
	close(stop)
	wg.Wait()
}
