package rcr

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistoryRecordsSeries(t *testing.T) {
	m, s := startSimStack(t, 10*time.Millisecond)
	h, err := StartHistory(m, s.Blackboard(), 10*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()

	burn(t, m, []int{0, 1, 2, 3}, 200*time.Millisecond)

	pts := h.Points()
	if len(pts) < 15 {
		t.Fatalf("recorded %d points over 200 ms at 10 ms, want ~20", len(pts))
	}
	if h.Len() != len(pts) {
		t.Errorf("Len() = %d, Points() = %d", h.Len(), len(pts))
	}
	// Monotone time, plausible power during the burn.
	var sawLoad bool
	for i := 1; i < len(pts); i++ {
		if pts[i].Time <= pts[i-1].Time {
			t.Fatalf("time not monotone at %d", i)
		}
		if pts[i].NodePower > 60 {
			sawLoad = true
		}
	}
	if !sawLoad {
		t.Error("history never saw the load's power")
	}
	if len(pts[0].SocketPower) != 2 || len(pts[0].Concurrency) != 2 || len(pts[0].Temperature) != 2 {
		t.Errorf("point shape wrong: %+v", pts[0])
	}
}

func TestHistoryRingWraps(t *testing.T) {
	m, s := startSimStack(t, 10*time.Millisecond)
	h, err := StartHistory(m, s.Blackboard(), 10*time.Millisecond, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	burn(t, m, []int{0}, 300*time.Millisecond) // ~30 samples into 8 slots
	pts := h.Points()
	if len(pts) != 8 {
		t.Fatalf("ring holds %d points, want 8", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time <= pts[i-1].Time {
			t.Fatalf("wrapped ring out of order at %d", i)
		}
	}
	// Oldest retained point must be from near the end of the run.
	if pts[0].Time < 200*time.Millisecond {
		t.Errorf("ring kept stale point at %v", pts[0].Time)
	}
}

func TestHistoryWriteCSV(t *testing.T) {
	m, s := startSimStack(t, 10*time.Millisecond)
	h, err := StartHistory(m, s.Blackboard(), 10*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	burn(t, m, []int{0, 1}, 100*time.Millisecond)

	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != h.Len()+1 {
		t.Errorf("CSV has %d lines, want %d", len(lines), h.Len()+1)
	}
	if !strings.HasPrefix(lines[0], "t_seconds,node_watts,pkg0_watts") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

// TestHistoryRecordAllocs: once every ring slot's backing arrays exist,
// the 10 ms recorder must run allocation-free — it rides the seqlock
// read path and refills slots in place.
func TestHistoryRecordAllocs(t *testing.T) {
	bb, _ := NewBlackboard(2, 2)
	populate(bb, time.Second)
	h := &History{bb: bb, points: make([]HistoryPoint, 8)}
	now := time.Second
	for i := 0; i < 2*len(h.points); i++ { // warm every slot, wrap once
		now += 10 * time.Millisecond
		h.record(now, nil)
	}
	avg := testing.AllocsPerRun(200, func() {
		now += 10 * time.Millisecond
		h.record(now, nil)
	})
	if avg != 0 {
		t.Errorf("record allocates %v objects per tick, want 0", avg)
	}
}

// TestHistoryPointsDeepCopy: ring slots are reused in place, so Points
// must hand out copies — later recording must not mutate what a caller
// already holds.
func TestHistoryPointsDeepCopy(t *testing.T) {
	bb, _ := NewBlackboard(2, 2)
	bb.SetSocket(0, MeterPower, 50, time.Second)
	h := &History{bb: bb, points: make([]HistoryPoint, 2)}
	h.record(time.Second, nil)
	pts := h.Points()
	if len(pts) != 1 || pts[0].SocketPower[0] != 50 {
		t.Fatalf("unexpected points: %+v", pts)
	}
	// Wrap the ring over the recorded slot with a different reading.
	bb.SetSocket(0, MeterPower, 99, 2*time.Second)
	h.record(2*time.Second, nil)
	h.record(3*time.Second, nil)
	if pts[0].SocketPower[0] != 50 {
		t.Errorf("Points result mutated by later recording: %v", pts[0].SocketPower[0])
	}
	// And mutating the caller's copy must not poison the ring.
	pts[0].SocketPower[0] = -1
	if again := h.Points(); again[0].SocketPower[0] == -1 {
		t.Error("caller mutation leaked into the ring")
	}
}

// TestHistoryRestoreDeepCopy: Restore must copy the input — the ring
// refills slots in place and would otherwise scribble over the caller's
// (possibly persisted) slices.
func TestHistoryRestoreDeepCopy(t *testing.T) {
	bb, _ := NewBlackboard(2, 2)
	bb.SetSocket(0, MeterPower, 77, time.Second)
	h := &History{bb: bb, points: make([]HistoryPoint, 2)}
	saved := []HistoryPoint{{
		Time:        time.Second,
		NodePower:   10,
		SocketPower: []float64{10, 0},
		Concurrency: []float64{1, 2},
		Temperature: []float64{40, 41},
	}}
	h.Restore(saved)
	h.record(2*time.Second, nil) // overwrites ring slot 1
	h.record(3*time.Second, nil) // wraps onto the restored slot
	if saved[0].SocketPower[0] != 10 || saved[0].Time != time.Second {
		t.Errorf("Restore aliased caller slices: %+v", saved[0])
	}
}

func TestHistoryConcurrentReaders(t *testing.T) {
	m, s := startSimStack(t, 5*time.Millisecond)
	h, err := StartHistory(m, s.Blackboard(), 5*time.Millisecond, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = h.Points()
					_ = h.Len()
				}
			}
		}()
	}
	burn(t, m, []int{0, 1, 2}, 150*time.Millisecond)
	close(stop)
	wg.Wait()
}
