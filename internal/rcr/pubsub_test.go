package rcr

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience/leak"
	"repro/internal/telemetry"
)

// startPubServer runs a Server with an attached Publisher on a unix
// socket and tears both down at test end.
func startPubServer(t testing.TB, bb *Blackboard, clock Clock, tune func(*Server)) (*Server, *Publisher, string) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "rcrd.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(bb, clock, ln)
	srv.Pub = NewPublisher(bb)
	if tune != nil {
		tune(srv)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, srv.Pub, sock
}

// waitSubscribers spins until the publisher sees n subscribers (the SUB
// handshake crosses goroutines).
func waitSubscribers(t testing.TB, p *Publisher, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Subscribers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d subscribers attached", p.Subscribers(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSubscribeStream: the canonical flow — subscribe, receive an
// initial full frame, then deltas tick by tick, with the materialized
// state matching the board exactly. A tick with no writes must arrive as
// a heartbeat that only refreshes Now.
func TestSubscribeStream(t *testing.T) {
	leak.Check(t)
	bb, _ := NewBlackboard(2, 2)
	populate(bb, time.Second)
	clock := &fakeClock{now: time.Second}
	_, pub, sock := startPubServer(t, bb, clock, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sub, err := Subscribe(ctx, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitSubscribers(t, pub, 1)

	pub.Tick(time.Second)
	if err := sub.Next(ctx); err != nil {
		t.Fatalf("first frame: %v", err)
	}
	if !sub.State().Ready() {
		t.Fatal("state not ready after first frame")
	}
	if got, want := sub.Snapshot(), bb.Snapshot(time.Second); !reflect.DeepEqual(got, want) {
		t.Fatalf("after full frame:\n got  %+v\n want %+v", got, want)
	}

	for tick := 1; tick <= 3; tick++ {
		now := time.Second + time.Duration(tick)*time.Second
		bb.SetSocket(0, MeterPower, 70+float64(tick), now)
		pub.Tick(now)
		if err := sub.Next(ctx); err != nil {
			t.Fatalf("delta %d: %v", tick, err)
		}
		if got, want := sub.Snapshot(), bb.Snapshot(now); !reflect.DeepEqual(got, want) {
			t.Fatalf("delta %d:\n got  %+v\n want %+v", tick, got, want)
		}
	}

	verBefore := sub.State().Ver
	pub.Tick(10 * time.Second) // nothing written: heartbeat
	if err := sub.Next(ctx); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	if sub.State().Ver != verBefore {
		t.Error("heartbeat advanced the version")
	}
	if sub.State().Now != 10*time.Second {
		t.Errorf("heartbeat Now = %v, want 10s", sub.State().Now)
	}
}

// TestSubscribeSchemaChange: registering a new meter mid-stream must
// resync subscribers with a fresh full frame instead of shipping deltas
// whose slot layout the client cannot interpret.
func TestSubscribeSchemaChange(t *testing.T) {
	leak.Check(t)
	bb, _ := NewBlackboard(1, 1)
	bb.SetSocket(0, MeterPower, 70, time.Second)
	clock := &fakeClock{now: time.Second}
	_, pub, sock := startPubServer(t, bb, clock, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sub, err := Subscribe(ctx, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitSubscribers(t, pub, 1)
	pub.Tick(time.Second)
	if err := sub.Next(ctx); err != nil {
		t.Fatal(err)
	}

	bb.SetSocket(0, "exotic-new-meter", 3.5, 2*time.Second)
	pub.Tick(2 * time.Second)
	if err := sub.Next(ctx); err != nil {
		t.Fatalf("post-schema-change frame: %v", err)
	}
	got := sub.Snapshot()
	want := bb.Snapshot(2 * time.Second)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after schema change:\n got  %+v\n want %+v", got, want)
	}
}

// TestSlowSubscriberResync: a subscriber that stops reading while the
// board keeps ticking must get drop-oldest (never a stalled tick), then
// a resync full frame once it drains — and converge to the live state.
func TestSlowSubscriberResync(t *testing.T) {
	leak.Check(t)
	bb, _ := NewBlackboard(1, 1)
	bb.SetSocket(0, MeterPower, 70, time.Second)
	clock := &fakeClock{now: time.Second}
	reg := telemetry.NewRegistry()
	_, pub, sock := startPubServer(t, bb, clock, func(s *Server) {
		s.Pub.QueueDepth = 2
		s.Pub.Instrument(reg)
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sub, err := Subscribe(ctx, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitSubscribers(t, pub, 1)

	// Tick far past the queue depth without reading. The unread frames
	// overflow: oldest dropped, subscriber marked for resync.
	var now time.Duration
	for i := 1; i <= 50; i++ {
		now = time.Second + time.Duration(i)*time.Second
		bb.SetSocket(0, MeterPower, 70+float64(i), now)
		pub.Tick(now)
	}
	if reg.Counter("rcr_sub_resyncs_total").Value() == 0 {
		t.Error("no resyncs recorded despite overflow")
	}

	// Drain with the board quiescent; the stream must recover via a
	// resync full frame and converge to the live state.
	for i := 0; i < 100; i++ {
		if err := sub.Next(ctx); err != nil && !errors.Is(err, ErrDeltaGap) {
			t.Fatalf("drain: %v", err)
		}
		if sub.State().Ready() && sub.State().Ver == bb.Version() {
			break
		}
		pub.Tick(now) // resyncs any subscriber marked by the overflow
	}
	if got, want := sub.Snapshot(), bb.Snapshot(now); !reflect.DeepEqual(got, want) {
		t.Fatalf("slow subscriber never converged:\n got  %+v\n want %+v", got, want)
	}
	if reg.Counter("rcr_sub_dropped_frames_total").Value() == 0 {
		t.Error("no dropped frames recorded despite overflow")
	}
}

// TestServerCloseDetachesSubscribers: closing the server must terminate
// subscriber streams and their writer goroutines (the leak gate is the
// real assertion).
func TestServerCloseDetachesSubscribers(t *testing.T) {
	leak.Check(t)
	bb, _ := NewBlackboard(1, 1)
	bb.SetSocket(0, MeterPower, 70, time.Second)
	clock := &fakeClock{now: time.Second}
	sock := filepath.Join(t.TempDir(), "rcrd.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(bb, clock, ln)
	srv.Pub = NewPublisher(bb)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	subs := make([]*Subscription, 0, 4)
	for i := 0; i < 4; i++ {
		sub, err := Subscribe(ctx, "unix", sock)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	waitSubscribers(t, srv.Pub, 4)
	srv.Pub.Tick(time.Second)

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if n := srv.Pub.Subscribers(); n != 0 {
		t.Errorf("%d subscribers survive Close", n)
	}
	// Streams are dead: reads must fail once the pushed backlog is done.
	for _, sub := range subs {
		var err error
		for i := 0; i < 10 && err == nil; i++ {
			err = sub.Next(ctx)
		}
		if err == nil {
			t.Error("subscriber stream still alive after server Close")
		}
		sub.Close()
	}
}

// TestSubRejectedWithoutPublisher: a server with no Publisher must
// reject the SUB op by closing the connection.
func TestSubRejectedWithoutPublisher(t *testing.T) {
	leak.Check(t)
	bb, _ := NewBlackboard(1, 1)
	sock := filepath.Join(t.TempDir(), "rcrd.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(bb, &fakeClock{}, ln)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	sub, err := Subscribe(ctx, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Next(ctx); err == nil {
		t.Error("SUB against a publisher-less server delivered a frame")
	}
}

// BenchmarkSnapshotFanout measures fan-out throughput: subscribers × the
// ticks they actually received over real unix sockets. The acceptance
// bar is >=100k snapshots/sec across 1k subscribers; the per-tick
// publisher cost is one delta encode regardless of subscriber count.
func BenchmarkSnapshotFanout(b *testing.B) {
	for _, nSubs := range []int{16, 1000} {
		b.Run(fmt.Sprintf("subs=%d", nSubs), func(b *testing.B) {
			bb, _ := NewBlackboard(2, 8)
			populate(bb, time.Second)
			clock := &fakeClock{now: time.Second}
			_, pub, sock := startPubServer(b, bb, clock, func(s *Server) {
				s.Pub.QueueDepth = 64
			})

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var delivered atomic.Int64
			readers := make(chan struct{}, nSubs)
			for i := 0; i < nSubs; i++ {
				sub, err := Subscribe(ctx, "unix", sock)
				if err != nil {
					b.Fatal(err)
				}
				go func() {
					defer func() { readers <- struct{}{} }()
					defer sub.Close()
					for {
						err := sub.Next(ctx)
						if err == nil {
							delivered.Add(1)
							continue
						}
						if errors.Is(err, ErrDeltaGap) {
							continue // server resyncs with a full frame
						}
						return
					}
				}()
			}
			waitSubscribers(b, pub, nSubs)

			b.ResetTimer()
			now := time.Second
			for i := 0; i < b.N; i++ {
				now += 10 * time.Millisecond
				bb.SetSocket(i%2, MeterPower, 70+float64(i%7), now)
				pub.Tick(now)
			}
			// Ticks outrun delivery (drop-oldest absorbs the burst), so
			// most frames land during the drain: wait until delivery
			// plateaus and report the sustained rate over the whole run.
			deadline := time.Now().Add(10 * time.Second)
			last := int64(-1)
			for time.Now().Before(deadline) {
				cur := delivered.Load()
				if cur == last {
					break
				}
				last = cur
				time.Sleep(5 * time.Millisecond)
			}
			b.StopTimer()
			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(delivered.Load())/elapsed, "snapshots/sec")
			}
			pub.DetachAll()
			cancel()
			for i := 0; i < nSubs; i++ {
				<-readers
			}
		})
	}
}
