package rcr

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience/leak"
	"repro/internal/telemetry"
)

// tempError is a transient net.Error, as the kernel produces for EMFILE /
// ECONNABORTED / accept timeouts.
type tempError struct{}

func (tempError) Error() string   { return "transient accept failure" }
func (tempError) Timeout() bool   { return true }
func (tempError) Temporary() bool { return true }

// flakyListener injects transient Accept errors before delegating to the
// real listener.
type flakyListener struct {
	net.Listener
	mu        sync.Mutex
	transient int // inject this many transient errors first
	fatal     error
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if l.transient > 0 {
		l.transient--
		l.mu.Unlock()
		return nil, tempError{}
	}
	fatal := l.fatal
	l.mu.Unlock()
	if fatal != nil {
		return nil, fatal
	}
	return l.Listener.Accept()
}

// TestServeSurvivesTransientAcceptErrors is the regression test for the
// accept loop: a transient net.Error must back off and continue — before
// the fix, any Accept error returned from Serve and killed the daemon.
func TestServeSurvivesTransientAcceptErrors(t *testing.T) {
	leak.Check(t)
	bb, _ := NewBlackboard(1, 1)
	bb.SetSystem(MeterEnergy, 7, 0)
	sock := filepath.Join(t.TempDir(), "rcrd.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: ln, transient: 5}
	srv := NewServer(bb, &fakeClock{}, fl)
	reg := telemetry.NewRegistry()
	srv.Instrument(reg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v after Close", err)
		}
	})

	// The five injected failures must not have killed Serve.
	snap, err := Query("unix", sock)
	if err != nil {
		t.Fatalf("query after transient accept errors: %v", err)
	}
	if len(snap.System) != 1 || snap.System[0].Value != 7 {
		t.Errorf("query returned %+v", snap.System)
	}
	if got := reg.Counter("rcr_ipc_accept_retries_total").Value(); got != 5 {
		t.Errorf("accept retries counter = %d, want 5", got)
	}
}

// TestServeReturnsOnFatalAcceptError: a non-transient accept error still
// tears Serve down (with the error), as before.
func TestServeReturnsOnFatalAcceptError(t *testing.T) {
	leak.Check(t)
	bb, _ := NewBlackboard(1, 1)
	sock := filepath.Join(t.TempDir(), "rcrd.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fatal := errors.New("listener torn out")
	srv := NewServer(bb, &fakeClock{}, &flakyListener{Listener: ln, fatal: fatal})
	err = srv.Serve()
	if err == nil || !errors.Is(err, fatal) {
		t.Errorf("Serve returned %v, want wrapped %v", err, fatal)
	}
}

// TestServerShedsWhenSaturated: with one handler slot and a one-deep
// accept queue both occupied by stalled peers, a further client gets the
// cheap BUSY response (ErrBusy) instead of hanging in the backlog.
func TestServerShedsWhenSaturated(t *testing.T) {
	leak.Check(t)
	bb, _ := NewBlackboard(1, 1)
	reg := telemetry.NewRegistry()
	_, sock := startServerWith(t, bb, &fakeClock{}, func(s *Server) {
		s.MaxConns = 1
		s.AcceptQueue = 1
		s.Shed = true
		s.ReadTimeout = 2 * time.Second
		s.Instrument(reg)
	})

	// Stall one connection in the handler and one in the queue.
	for i := 0; i < 2; i++ {
		c, err := net.Dial("unix", sock)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		time.Sleep(30 * time.Millisecond) // let it reach its slot
	}

	if _, err := Query("unix", sock); !errors.Is(err, ErrBusy) {
		t.Errorf("query against saturated server returned %v, want ErrBusy", err)
	}
	if got := reg.Counter("rcr_ipc_shed_total").Value(); got == 0 {
		t.Error("shed counter did not move")
	}
}

// TestServerRateLimit: over-budget clients get BUSY. All Unix-socket
// peers share one anonymous address, hence one bucket, which is exactly
// what the test uses.
func TestServerRateLimit(t *testing.T) {
	leak.Check(t)
	bb, _ := NewBlackboard(1, 1)
	bb.SetSystem(MeterEnergy, 1, 0)
	reg := telemetry.NewRegistry()
	_, sock := startServerWith(t, bb, &fakeClock{}, func(s *Server) {
		s.RateLimit = 0.001 // effectively no refill during the test
		s.RateBurst = 2
		s.Instrument(reg)
	})

	for i := 0; i < 2; i++ {
		if _, err := Query("unix", sock); err != nil {
			t.Fatalf("query %d inside burst budget: %v", i, err)
		}
	}
	if _, err := Query("unix", sock); !errors.Is(err, ErrBusy) {
		t.Errorf("over-budget query returned %v, want ErrBusy", err)
	}
	if got := reg.Counter("rcr_ipc_ratelimited_total").Value(); got == 0 {
		t.Error("ratelimited counter did not move")
	}
}

// TestServerGracefulDrain: with a DrainTimeout, Close lets an in-flight
// slow request finish and deliver its payload instead of expiring it.
func TestServerGracefulDrain(t *testing.T) {
	leak.Check(t)
	bb, _ := NewBlackboard(1, 1)
	bb.SetSystem(MeterEnergy, 99, 0)
	sock := filepath.Join(t.TempDir(), "rcrd.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(bb, &fakeClock{}, ln)
	srv.DrainTimeout = 5 * time.Second
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	// A slow client: connected before Close, it sends its request only
	// after Close has begun draining.
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	time.Sleep(20 * time.Millisecond) // let the handler claim it

	closeRet := make(chan error, 1)
	go func() { closeRet <- srv.Close() }()
	time.Sleep(50 * time.Millisecond) // Close is now inside its drain window

	if _, err := conn.Write([]byte("GET\n")); err != nil {
		t.Fatalf("late request write: %v", err)
	}
	snap, err := readSnapshotFrom(conn)
	if err != nil {
		t.Fatalf("late request was not served during drain: %v", err)
	}
	if len(snap.System) != 1 || snap.System[0].Value != 99 {
		t.Errorf("drained request returned %+v", snap.System)
	}
	if err := <-closeRet; err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := <-done; err != nil {
		t.Errorf("Serve returned %v after Close", err)
	}
}

// readSnapshotFrom reads one length-prefixed snapshot response from an
// open connection.
func readSnapshotFrom(conn net.Conn) (Snapshot, error) {
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return Snapshot{}, err
	}
	var hdr [4]byte
	if _, err := readFullConn(conn, hdr[:]); err != nil {
		return Snapshot{}, err
	}
	n := uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24
	if n == busyHeader {
		return Snapshot{}, ErrBusy
	}
	if n > maxSnapshotBytes {
		return Snapshot{}, fmt.Errorf("implausible size %d", n)
	}
	buf := make([]byte, n)
	if _, err := readFullConn(conn, buf); err != nil {
		return Snapshot{}, err
	}
	return DecodeSnapshot(buf)
}

func readFullConn(conn net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// BenchmarkIPCQuery measures end-to-end query throughput through the
// admission-control path (accept → queue → worker → encode → reply) —
// the smoke CI runs to catch admission regressions.
func BenchmarkIPCQuery(b *testing.B) {
	bb, _ := NewBlackboard(2, 8)
	now := time.Second
	for s := 0; s < 2; s++ {
		bb.SetSocket(s, MeterPower, 70, now)
		bb.SetSocket(s, MeterEnergy, 1000, now)
		bb.SetSocket(s, MeterMemConcurrency, 12, now)
	}
	sock := filepath.Join(b.TempDir(), "rcrd.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(bb, &fakeClock{now: now}, ln)
	srv.Shed = true
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	b.Cleanup(func() {
		if err := srv.Close(); err != nil {
			b.Errorf("Close: %v", err)
		}
		<-done
	})

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := Query("unix", sock); err != nil {
				b.Fatalf("query: %v", err)
			}
		}
	})
}
