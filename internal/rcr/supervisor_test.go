package rcr

import (
	"sync"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/rapl"
	"repro/internal/resilience/leak"
	"repro/internal/telemetry"
)

// TestSupervisorRestartsCrashedSampler injects a sampler crash window
// that spans several restart attempts: the supervisor must keep
// replacing the sampler (fault gates persist onto every incarnation, so
// a still-open crash window kills the replacement too) and end with a
// live sampler and a fresh heartbeat once the window closes.
func TestSupervisorRestartsCrashedSampler(t *testing.T) {
	leak.Check(t)
	cfg := machine.M620()
	cfg.VirtualTimeLimit = 5 * time.Minute
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	reader, err := rapl.NewMSRReader(m.MSR())
	if err != nil {
		t.Fatal(err)
	}
	bb, err := NewBlackboard(cfg.Sockets, cfg.CoresPerSocket)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	sup, err := StartSupervisor(m, reader, bb, SupervisorConfig{
		SamplePeriod: 5 * time.Millisecond,
		CheckPeriod:  10 * time.Millisecond,
		StaleAfter:   20 * time.Millisecond,
		Telemetry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	first := sup.Sampler()

	// Crash window [30 ms, 75 ms): long enough that at least one
	// restarted incarnation dies inside it again.
	sup.SetFaultGates(func(now time.Duration) TickAction {
		if now >= 30*time.Millisecond && now < 75*time.Millisecond {
			return TickDie
		}
		return TickRun
	}, nil)

	burn(t, m, []int{0, 1}, 300*time.Millisecond)

	if sup.Restarts() < 2 {
		t.Errorf("Restarts() = %d, want >= 2 (crash window spans restarts)", sup.Restarts())
	}
	cur := sup.Sampler()
	if cur == first {
		t.Error("supervisor never replaced the crashed sampler")
	}
	if !cur.Alive() {
		t.Error("final sampler incarnation is dead")
	}
	hb, ok := bb.System(MeterHeartbeat)
	if !ok {
		t.Fatal("no heartbeat on the blackboard")
	}
	if age := m.Now() - hb.Updated; age > 20*time.Millisecond {
		t.Errorf("heartbeat is %v old at shutdown, want fresh", age)
	}
	if v := reg.Counter("rcr_supervisor_restarts_total").Value(); v != sup.Restarts() {
		t.Errorf("restart counter %v != Restarts() %d", v, sup.Restarts())
	}
	if v := reg.Counter("rcr_sampler_deaths_total").Value(); v < 2 {
		t.Errorf("deaths counter = %v, want >= 2", v)
	}
	if v := reg.Counter("rcr_supervisor_checks_total").Value(); v == 0 {
		t.Error("supervisor never ran a check")
	}
}

// TestSupervisorResyncsBaselineAcrossOutage: the energy burned during a
// sampler outage must not be booked into the restarted sampler's first
// power window. A 1 ms watcher ticker records every published power
// figure; all of them must stay at node scale rather than showing the
// outage-sized spike a naive restart would publish.
func TestSupervisorResyncsBaselineAcrossOutage(t *testing.T) {
	leak.Check(t)
	cfg := machine.M620()
	cfg.VirtualTimeLimit = 5 * time.Minute
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	reader, err := rapl.NewMSRReader(m.MSR())
	if err != nil {
		t.Fatal(err)
	}
	bb, err := NewBlackboard(cfg.Sockets, cfg.CoresPerSocket)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := StartSupervisor(m, reader, bb, SupervisorConfig{
		SamplePeriod: 5 * time.Millisecond,
		CheckPeriod:  10 * time.Millisecond,
		StaleAfter:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	// One fatal crash at 30 ms; the supervisor restarts ~50-60 ms, so
	// roughly 25 ms of full-load energy accumulates unobserved.
	sup.SetFaultGates(func(now time.Duration) TickAction {
		if now >= 30*time.Millisecond && now < 35*time.Millisecond {
			return TickDie
		}
		return TickRun
	}, nil)

	// Physical ceiling of the node: every core active plus uncore and
	// peak bandwidth power, with headroom for boost and leakage. Any
	// published power above this is accounting error, not physics.
	p := cfg.Power
	maxNode := 3 * float64(cfg.Sockets) * (float64(p.UncoreBase) + float64(p.BandwidthMax) +
		float64(cfg.CoresPerSocket)*float64(p.CoreActive))
	var mu sync.Mutex
	maxSeen := 0.0
	if _, err := m.AddTicker(time.Millisecond, func(now time.Duration, _ *machine.Snapshot) {
		if row, ok := bb.System(MeterPower); ok {
			mu.Lock()
			if row.Value > maxSeen {
				maxSeen = row.Value
			}
			mu.Unlock()
		}
	}); err != nil {
		t.Fatal(err)
	}

	burn(t, m, []int{0, 1, 2, 3}, 200*time.Millisecond)

	if sup.Restarts() == 0 {
		t.Fatal("sampler was never restarted; the outage never happened")
	}
	mu.Lock()
	defer mu.Unlock()
	if maxSeen == 0 {
		t.Fatal("no power was ever published")
	}
	if maxSeen > maxNode {
		t.Errorf("published power peaked at %.1f W, above the %.1f W physical ceiling: outage energy booked into a window", maxSeen, maxNode)
	}
}
