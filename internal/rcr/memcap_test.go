package rcr

import (
	"bytes"
	"testing"
	"time"
)

// TestMemWriteAckRoundTrip: MEMW/MEMA encode→decode is the identity and
// re-encodes to the same bytes.
func TestMemWriteAckRoundTrip(t *testing.T) {
	w := MemWrite{
		Write: CapWrite{Fence: 3, Leader: 2, Seq: 7, Lease: time.Second, HasCap: true, Cap: 120},
		Epoch: 9,
		Frame: []byte("CLSM-opaque-frame-bytes"),
	}
	enc := AppendMemWrite(nil, w)
	got, err := DecodeMemWrite(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Write != w.Write || got.Epoch != w.Epoch || !bytes.Equal(got.Frame, w.Frame) {
		t.Fatalf("round trip: got %+v want %+v", got, w)
	}
	if re := AppendMemWrite(nil, got); !bytes.Equal(re, enc) {
		t.Fatal("re-encode differs")
	}

	a := MemAck{
		Ack:      CapAck{Status: CapApplied, Fence: 3, Holder: 2, Expiry: time.Second, HasApplied: true, Applied: 120},
		MemFence: 3, MemEpoch: 9, Frame: []byte("stored"),
	}
	aenc := AppendMemAck(nil, a)
	aGot, err := DecodeMemAck(aenc)
	if err != nil {
		t.Fatal(err)
	}
	if aGot.Ack != a.Ack || aGot.MemFence != a.MemFence || aGot.MemEpoch != a.MemEpoch || !bytes.Equal(aGot.Frame, a.Frame) {
		t.Fatalf("ack round trip: got %+v want %+v", aGot, a)
	}
}

// TestMemWireRejects: epoch/frame consistency is enforced both ways.
func TestMemWireRejects(t *testing.T) {
	base := CapWrite{Fence: 1, Leader: 1, Seq: 1, Lease: time.Second}
	frameNoEpoch := AppendMemWrite(nil, MemWrite{Write: base, Epoch: 0, Frame: []byte("x")})
	if _, err := DecodeMemWrite(frameNoEpoch); err == nil {
		t.Error("frame without epoch accepted")
	}
	epochNoFrame := AppendMemWrite(nil, MemWrite{Write: base, Epoch: 5})
	if _, err := DecodeMemWrite(epochNoFrame); err == nil {
		t.Error("epoch without frame accepted")
	}
	good := AppendMemWrite(nil, MemWrite{Write: base, Epoch: 5, Frame: []byte("f")})
	if _, err := DecodeMemWrite(good[:len(good)-1]); err == nil {
		t.Error("truncated frame accepted")
	}
	if _, err := DecodeMemWrite(append(append([]byte(nil), good...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	ackMemNoEpoch := AppendMemAck(nil, MemAck{Ack: CapAck{Status: CapApplied, Fence: 1, Holder: 1}, MemFence: 2})
	if _, err := DecodeMemAck(ackMemNoEpoch); err == nil {
		t.Error("ack with mem fence but no epoch accepted")
	}
}

// TestOfferMemStoresUnderFenceRules: an accepted carrier stores the
// frame; a fence-rejected one stores nothing; (fence, epoch) ordering
// refuses a deposed leader's stale record even on an accepted renewal;
// and every ack returns the stored record (a probe doubles as a fetch).
func TestOfferMemStoresUnderFenceRules(t *testing.T) {
	clk := &fenceTestClock{}
	g := NewFenceGuard(clk.Now, nil)
	ttl := 100 * time.Millisecond

	ack := g.OfferMem(MemWrite{
		Write: CapWrite{Fence: 2, Leader: 1, Seq: 1, Lease: ttl},
		Epoch: 4, Frame: []byte("epoch4"),
	})
	if ack.Ack.Status != CapApplied || ack.MemFence != 2 || ack.MemEpoch != 4 || string(ack.Frame) != "epoch4" {
		t.Fatalf("first commit: %+v", ack)
	}

	// A rival's rejected write must not store its frame.
	ack = g.OfferMem(MemWrite{
		Write: CapWrite{Fence: 1, Leader: 2, Seq: 1, Lease: ttl},
		Epoch: 99, Frame: []byte("stale-leader"),
	})
	if ack.Ack.Status != CapFenceRejected || ack.MemEpoch != 4 || string(ack.Frame) != "epoch4" {
		t.Fatalf("rejected write stored membership: %+v", ack)
	}

	// The holder's renewal with an older epoch is accepted as a lease
	// write but its stale record is refused.
	ack = g.OfferMem(MemWrite{
		Write: CapWrite{Fence: 2, Leader: 1, Seq: 2, Lease: ttl},
		Epoch: 3, Frame: []byte("epoch3"),
	})
	if ack.Ack.Status != CapApplied || ack.MemEpoch != 4 {
		t.Fatalf("stale epoch overwrote the stored record: %+v", ack)
	}

	// A pure probe (epoch 0) still fetches.
	ack = g.OfferMem(MemWrite{Write: CapWrite{Fence: 2, Leader: 1, Seq: 3, Lease: ttl}})
	if ack.MemEpoch != 4 || string(ack.Frame) != "epoch4" {
		t.Fatalf("probe fetch: %+v", ack)
	}

	// A successor's first commit supersedes regardless of epoch number.
	clk.now = 2 * ttl
	ack = g.OfferMem(MemWrite{
		Write: CapWrite{Fence: 5, Leader: 3, Seq: 1, Lease: ttl},
		Epoch: 2, Frame: []byte("successor"),
	})
	if ack.Ack.Status != CapApplied || ack.MemFence != 5 || ack.MemEpoch != 2 || string(ack.Frame) != "successor" {
		t.Fatalf("successor commit: %+v", ack)
	}
	fence, epoch, frame := g.Membership()
	if fence != 5 || epoch != 2 || string(frame) != "successor" {
		t.Fatalf("Membership() = (%d, %d, %q)", fence, epoch, frame)
	}
}

// TestPowerCyclePreservesRatchetClearsCap: a power cycle wipes the
// applied-cap ledger (the enforcement registers reset when the node
// loses power) but keeps the fence high-water mark and the committed
// membership frame (the on-disk state a daemon restores) — so a
// rejoining incarnation reports no committed cap, yet still refuses a
// fence its previous life refused.
func TestPowerCyclePreservesRatchetClearsCap(t *testing.T) {
	clk := &fenceTestClock{}
	g := NewFenceGuard(clk.Now, func(float64, uint64) error { return nil })
	ttl := 100 * time.Millisecond

	ack := g.OfferMem(MemWrite{
		Write: CapWrite{Fence: 4, Leader: 1, Seq: 1, Lease: ttl, HasCap: true, Cap: 130},
		Epoch: 7, Frame: []byte("committed"),
	})
	if ack.Ack.Status != CapApplied || !ack.Ack.HasApplied {
		t.Fatalf("setup write: %+v", ack)
	}

	g.PowerCycle()

	st := g.State()
	if st.HasApplied || st.Applied != 0 {
		t.Fatalf("cap ledger survived the power cycle: %+v", st)
	}
	if st.Fence != 4 {
		t.Fatalf("fence ratchet lost: %+v", st)
	}
	fence, epoch, frame := g.Membership()
	if fence != 4 || epoch != 7 || string(frame) != "committed" {
		t.Fatalf("membership lost in power cycle: (%d, %d, %q)", fence, epoch, frame)
	}
	// The ratchet still fences: a lower fence stays rejected after the
	// cycle, even with the lease long expired.
	clk.now = time.Hour
	if ack := g.Offer(CapWrite{Fence: 3, Leader: 2, Seq: 1, Lease: ttl}); ack.Status != CapFenceRejected {
		t.Fatalf("power cycle weakened the fence ratchet: %+v", ack)
	}
	// The next life's first accepted write rebuilds the ledger.
	if ack := g.Offer(CapWrite{Fence: 5, Leader: 2, Seq: 1, Lease: ttl, HasCap: true, Cap: 10}); ack.Status != CapApplied || ack.Applied != 10 {
		t.Fatalf("post-cycle write: %+v", ack)
	}
}
