package rcr

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Pub/sub fan-out: instead of polling GET (a full snapshot serialization
// per query), a client sends "SUB\n" once and the server pushes one
// length-prefixed frame per sampler tick — a full frame ("RCRF") to open
// or resync the stream, then delta frames ("RCRD") carrying only the
// slots that moved. The server encodes each tick's delta exactly once
// and shares the buffer across every subscriber through refcounted
// frames, so fan-out cost is writes, not serializations — the closest
// IPC analogue of the paper's many-readers shared-memory region.
//
// Slow subscribers never stall the tick: each has a bounded queue; on
// overflow the oldest queued frame is dropped and the subscriber is
// marked for resync, receiving a fresh full frame (FlagResync) on the
// next tick instead of a broken delta chain.

// DefaultSubQueueDepth is the per-subscriber frame queue bound.
const DefaultSubQueueDepth = 8

// Publisher fans blackboard deltas out to subscribers on every Tick.
// Attach subscribers via the Server's SUB op (or AttachConn directly);
// drive ticks from the sampler (Sampler.AttachPublisher) or a host-time
// loop (Run).
type Publisher struct {
	bb *Blackboard

	// QueueDepth bounds each subscriber's pending-frame queue; zero
	// selects DefaultSubQueueDepth. When a queue is full the oldest frame
	// is dropped and the subscriber resyncs from a full frame.
	QueueDepth int
	// WriteTimeout bounds each frame write to a subscriber; zero selects
	// DefaultIPCTimeout.
	WriteTimeout time.Duration

	pool sync.Pool // *frameBuf

	tmu     sync.Mutex // serializes Tick with itself
	delta   DeltaFrame // tick scratch
	full    FullFrame  // tick scratch
	lastVer uint64
	lastGen uint32
	started bool

	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool
	wg     sync.WaitGroup

	subscribers *telemetry.Gauge
	ticks       *telemetry.Counter
	frames      *telemetry.Counter
	fullFrames  *telemetry.Counter
	dropped     *telemetry.Counter
	resyncs     *telemetry.Counter
	disconnects *telemetry.Counter
	bytesOut    *telemetry.Counter
}

// frameBuf is one encoded frame shared by every subscriber queue it sits
// in; the last release returns it to the pool.
type frameBuf struct {
	buf  []byte
	refs atomic.Int32
	pool *sync.Pool
}

func (fb *frameBuf) release() {
	if fb.refs.Add(-1) == 0 {
		fb.pool.Put(fb)
	}
}

// subscriber is one attached connection.
type subscriber struct {
	conn     net.Conn
	q        chan *frameBuf
	needFull atomic.Bool // next tick must send a full frame
	initial  bool        // never sent anything yet (FlagInitial)
	dead     atomic.Bool // writer hit an error; drain without writing
	detached bool        // guarded by Publisher.mu; q already closed
	onExit   func()
}

// NewPublisher creates a publisher over bb.
func NewPublisher(bb *Blackboard) *Publisher {
	return &Publisher{bb: bb, subs: make(map[*subscriber]struct{})}
}

// Instrument registers the publisher's rcr_sub_* instruments in reg.
// Call before attaching subscribers.
func (p *Publisher) Instrument(reg *telemetry.Registry) {
	p.subscribers = reg.Gauge("rcr_sub_subscribers")
	p.ticks = reg.Counter("rcr_sub_ticks_total")
	p.frames = reg.Counter("rcr_sub_frames_total")
	p.fullFrames = reg.Counter("rcr_sub_full_frames_total")
	p.dropped = reg.Counter("rcr_sub_dropped_frames_total")
	p.resyncs = reg.Counter("rcr_sub_resyncs_total")
	p.disconnects = reg.Counter("rcr_sub_disconnects_total")
	p.bytesOut = reg.Counter("rcr_sub_bytes_total")
}

// Subscribers returns the current subscriber count.
func (p *Publisher) Subscribers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.subs)
}

// AttachConn registers conn as a subscriber and starts its writer
// goroutine. onExit (may be nil) runs exactly once when the writer
// exits — the Server uses it to untrack hijacked connections. The
// subscriber receives a FlagInitial full frame on the next tick.
func (p *Publisher) AttachConn(conn net.Conn, onExit func()) error {
	sub := &subscriber{
		conn:   conn,
		q:      make(chan *frameBuf, p.queueDepth()),
		onExit: onExit,
	}
	sub.needFull.Store(true)
	sub.initial = true
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("rcr: publisher closed")
	}
	p.subs[sub] = struct{}{}
	p.subscribers.Set(float64(len(p.subs)))
	p.wg.Add(1)
	p.mu.Unlock()
	go p.writer(sub)
	return nil
}

func (p *Publisher) queueDepth() int {
	if p.QueueDepth > 0 {
		return p.QueueDepth
	}
	return DefaultSubQueueDepth
}

func (p *Publisher) writeTimeout() time.Duration {
	if p.WriteTimeout > 0 {
		return p.WriteTimeout
	}
	return DefaultIPCTimeout
}

// maxWriteBatch bounds how many queued bytes a subscriber writer
// coalesces into one syscall.
const maxWriteBatch = 32 << 10

// writer owns sub.conn: it drains the queue, coalescing whatever frames
// are already waiting into a single write (frames are length-prefixed,
// so concatenation is the wire format), and detaches on the first error.
// It always fully drains the (closed) queue so shared frame refcounts
// balance.
func (p *Publisher) writer(sub *subscriber) {
	defer p.wg.Done()
	var batch []byte
	for fb := range sub.q {
		if sub.dead.Load() {
			fb.release()
			continue
		}
		nFrames := uint64(1)
		batch = append(batch[:0], fb.buf...)
		fb.release()
	coalesce:
		for len(batch) < maxWriteBatch {
			select {
			case more, ok := <-sub.q:
				if !ok {
					break coalesce // closed; the outer range exits after this write
				}
				batch = append(batch, more.buf...)
				more.release()
				nFrames++
			default:
				break coalesce
			}
		}
		_ = sub.conn.SetWriteDeadline(time.Now().Add(p.writeTimeout()))
		if _, err := sub.conn.Write(batch); err != nil {
			sub.dead.Store(true)
			p.disconnects.Inc()
			p.detach(sub)
		} else {
			p.frames.Add(nFrames)
			p.bytesOut.Add(uint64(len(batch)))
		}
	}
	_ = sub.conn.Close()
	if sub.onExit != nil {
		sub.onExit()
	}
}

// detach removes sub and closes its queue (idempotent). The writer keeps
// draining the closed queue, then exits.
func (p *Publisher) detach(sub *subscriber) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if sub.detached {
		return
	}
	sub.detached = true
	delete(p.subs, sub)
	p.subscribers.Set(float64(len(p.subs)))
	close(sub.q)
}

// acquire returns a pooled frame buffer holding one publisher reference.
func (p *Publisher) acquire() *frameBuf {
	fb, _ := p.pool.Get().(*frameBuf)
	if fb == nil {
		fb = &frameBuf{pool: &p.pool}
	}
	fb.buf = fb.buf[:0]
	fb.refs.Store(1)
	return fb
}

// Tick collects and fans out one frame generation: at most one delta
// encode and one full encode per call, regardless of subscriber count.
// It never blocks on a subscriber — safe to call from the sampler's
// engine-tick context. now is the virtual timestamp stamped on frames.
func (p *Publisher) Tick(now time.Duration) {
	p.tmu.Lock()
	defer p.tmu.Unlock()
	p.ticks.Inc()

	gen := p.bb.SchemaGen()
	schemaChanged := p.started && gen != p.lastGen
	p.started = true

	p.bb.CollectDelta(p.lastVer, &p.delta)
	p.delta.Now = now
	p.lastVer = p.delta.To
	p.lastGen = p.delta.Gen

	var deltaFB *frameBuf
	var fullFB *frameBuf
	defer func() {
		if deltaFB != nil {
			deltaFB.release()
		}
		if fullFB != nil {
			fullFB.release()
		}
	}()

	p.mu.Lock()
	defer p.mu.Unlock()
	for sub := range p.subs {
		if schemaChanged {
			sub.needFull.Store(true)
		}
		if sub.needFull.Load() {
			if fullFB == nil {
				p.bb.CollectFull(&p.full)
				p.full.Now = now
				p.full.Flags = 0
				if schemaChanged {
					p.full.Flags |= FlagSchemaChange
				}
				fullFB = p.acquire()
				fullFB.buf = append(fullFB.buf, 0, 0, 0, 0)
				fullFB.buf = AppendFullFrame(fullFB.buf, &p.full)
				binary.LittleEndian.PutUint32(fullFB.buf[:4], uint32(len(fullFB.buf)-4))
				// A full frame's version may exceed the delta basis (its
				// scan ran later); SubState's overlap rules absorb that.
				p.fullFrames.Inc()
			}
			// The full frame supersedes everything queued: drain first so
			// it cannot be the frame a later overflow drops.
			p.drainQueue(sub)
			flags := p.full.Flags
			if sub.initial {
				flags |= FlagInitial
			} else {
				flags |= FlagResync
			}
			// Flags live at a fixed offset (4-byte length prefix + magic +
			// gen + ver + now); patching them in place would race on the
			// shared buffer, so per-subscriber flag variants get their own
			// copy. Full frames are the rare resync path, so the copy is
			// cheap where it matters.
			if flags != p.full.Flags {
				fb := p.acquire()
				fb.buf = append(fb.buf, fullFB.buf...)
				fb.buf[4+4+4+8+8] = flags
				fb.refs.Add(1)
				p.enqueue(sub, fb)
				fb.release() // creation reference
			} else {
				fullFB.refs.Add(1)
				p.enqueue(sub, fullFB)
			}
			sub.needFull.Store(false)
			sub.initial = false
			continue
		}
		if deltaFB == nil {
			deltaFB = p.acquire()
			deltaFB.buf = append(deltaFB.buf, 0, 0, 0, 0)
			deltaFB.buf = AppendDeltaFrame(deltaFB.buf, &p.delta)
			binary.LittleEndian.PutUint32(deltaFB.buf[:4], uint32(len(deltaFB.buf)-4))
		}
		deltaFB.refs.Add(1)
		if !p.enqueue(sub, deltaFB) {
			// Overflow: the chain to this subscriber is broken anyway, so
			// drop the oldest queued frame and resync from a full frame
			// next tick rather than queueing a delta it cannot apply.
			sub.needFull.Store(true)
			p.resyncs.Inc()
		}
	}
}

// enqueue offers fb (whose reference the caller has already added) to
// sub without blocking. On overflow it drops the oldest queued frame,
// releases fb's reference, and reports false.
func (p *Publisher) enqueue(sub *subscriber, fb *frameBuf) bool {
	if sub.detached {
		fb.release()
		return false
	}
	select {
	case sub.q <- fb:
		return true
	default:
	}
	select {
	case old := <-sub.q:
		old.release()
		p.dropped.Inc()
	default:
	}
	fb.release()
	return false
}

// drainQueue empties sub's queue, releasing every dropped frame.
func (p *Publisher) drainQueue(sub *subscriber) {
	for {
		select {
		case fb := <-sub.q:
			fb.release()
			p.dropped.Inc()
		default:
			return
		}
	}
}

// Run drives Tick from a host-time loop — for servers whose sampler
// runs on a real clock, and for soak harnesses. It returns when ctx is
// done.
func (p *Publisher) Run(ctx context.Context, period time.Duration, clock Clock) {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.Tick(clock.Now())
		}
	}
}

// DetachAll disconnects every subscriber and waits for their writers to
// exit. Further AttachConn calls fail. Used by Server.Close and by
// harness teardown; the goroutine-leak gates depend on it.
func (p *Publisher) DetachAll() {
	p.mu.Lock()
	p.closed = true
	subs := make([]*subscriber, 0, len(p.subs))
	for sub := range p.subs {
		subs = append(subs, sub)
	}
	p.mu.Unlock()
	past := time.Unix(1, 0)
	for _, sub := range subs {
		sub.dead.Store(true)
		_ = sub.conn.SetDeadline(past) // unwedge a writer blocked in Write
		p.detach(sub)
	}
	p.wg.Wait()
}

// Subscription is the client side of the SUB stream: it decodes pushed
// frames into a materialized SubState, reusing its buffers so steady
// state reads allocate only inside Snapshot(). Reads are buffered, so a
// burst of coalesced frames costs one syscall.
type Subscription struct {
	conn  net.Conn
	br    *bufio.Reader
	state SubState
	delta DeltaFrame
	full  FullFrame
	buf   []byte
	hdr   [4]byte

	watchCtx  context.Context
	stopWatch func() bool
}

// Subscribe dials addr and opens a push stream. The first frame (a
// FlagInitial full frame) arrives on the server's next tick.
func Subscribe(ctx context.Context, network, addr string) (*Subscription, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, fmt.Errorf("rcr: dial %s: %w", addr, err)
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetWriteDeadline(deadline)
	}
	if _, err := conn.Write([]byte("SUB\n")); err != nil {
		conn.Close()
		return nil, fmt.Errorf("rcr: subscribe: %w", err)
	}
	_ = conn.SetWriteDeadline(time.Time{})
	return &Subscription{conn: conn, br: bufio.NewReaderSize(conn, 16<<10)}, nil
}

// State exposes the materialized blackboard copy. Valid after the first
// successful Next; check State().Ready().
func (s *Subscription) State() *SubState { return &s.state }

// Snapshot converts the current state to the legacy deep-copy form.
func (s *Subscription) Snapshot() Snapshot { return s.state.Snapshot() }

// Next blocks for the next pushed frame and applies it. A nil return
// means the state advanced (or a heartbeat refreshed Now). ErrDeltaGap
// means a frame arrived that does not connect — the state is unchanged
// and the caller may keep reading (the server resyncs with a full frame
// after drops) or tear down and resubscribe. Other errors are fatal to
// the stream. ErrBusy reports a server that shed the subscription.
//
// The cancellation watch is armed once per distinct ctx (not per call),
// so a steady read loop passing the same ctx pays no per-frame setup;
// canceling that ctx kills the stream even between Next calls.
func (s *Subscription) Next(ctx context.Context) error {
	if ctx != s.watchCtx {
		if s.stopWatch != nil {
			s.stopWatch()
		}
		if deadline, ok := ctx.Deadline(); ok {
			if err := s.conn.SetReadDeadline(deadline); err != nil {
				return fmt.Errorf("rcr: deadline: %w", err)
			}
		} else if err := s.conn.SetReadDeadline(time.Time{}); err != nil {
			return fmt.Errorf("rcr: deadline: %w", err)
		}
		s.watchCtx = ctx
		s.stopWatch = context.AfterFunc(ctx, func() { _ = s.conn.SetDeadline(time.Unix(1, 0)) })
	}
	if _, err := io.ReadFull(s.br, s.hdr[:]); err != nil {
		return fmt.Errorf("rcr: frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(s.hdr[:])
	if n == busyHeader {
		return ErrBusy
	}
	if n > maxSnapshotBytes {
		return fmt.Errorf("rcr: implausible frame size %d", n)
	}
	if cap(s.buf) < int(n) {
		s.buf = make([]byte, n)
	}
	s.buf = s.buf[:n]
	if _, err := io.ReadFull(s.br, s.buf); err != nil {
		return fmt.Errorf("rcr: frame body: %w", err)
	}
	switch {
	case IsFullFrame(s.buf):
		if err := DecodeFullFrame(s.buf, &s.full); err != nil {
			return err
		}
		return s.state.ApplyFull(&s.full)
	case IsDeltaFrame(s.buf):
		if err := DecodeDeltaFrame(s.buf, &s.delta); err != nil {
			return err
		}
		return s.state.ApplyDelta(&s.delta)
	default:
		return fmt.Errorf("rcr: unknown frame magic %q", s.buf[:min(4, len(s.buf))])
	}
}

// Close tears down the stream.
func (s *Subscription) Close() error {
	if s.stopWatch != nil {
		s.stopWatch()
		s.stopWatch = nil
	}
	return s.conn.Close()
}
