package rcr

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Fenced cap writes (docs/cluster.md §HA). The cluster tier's cap-write
// path carries a monotone fence token so a demoted aggregator — one
// whose lease a standby has since taken over — cannot roll a shard back
// to a stale assignment. The shard side is a FenceGuard attached to its
// rcrd server ("CAP\n" op): it accepts a write only if the fence is
// fresh, renews the holder's lease on every accepted write, and mirrors
// the lease state into the shard blackboard as ordinary system meters —
// which means every aggregator replica learns who leads, under which
// fence, and until when, passively through the delta streams it already
// subscribes to. No extra coordination service exists: the shard fleet
// itself is the quorum.
//
// Wire formats (both little-endian, strict decode with bit-exact
// re-encode — FuzzDecodeCapWrite):
//
//	CAPW: magic "CAPW", flags u8 (bit0 cap present, bit1 release),
//	      fence u64, leader u32, lease u64 (ns), seq u64, cap f64 bits
//	CAPA: magic "CAPA", status u8, flags u8 (bit0 applied-cap present),
//	      fence u64, holder u32, expiry u64 (host ns), applied f64 bits

// Lease meters the FenceGuard mirrors into the shard blackboard at
// system scope. Expiry is in host-clock seconds; fence and holder are
// exact for any realistic token (float64 holds integers to 2^53).
const (
	MeterFence       = "fence"
	MeterLeaseHolder = "leaseholder"
	MeterLeaseExpiry = "leasexpiry"
	// MeterFencedCap is the shard's last successfully applied fenced cap
	// in Watts — the passively replicated "committed assignment" a
	// promoted standby replays before issuing its own.
	MeterFencedCap = "fencedcap"
	// MeterMemberEpoch is the registry epoch of the committed membership
	// record this shard's guard stores — every standby replica learns how
	// current each shard's membership view is through the delta stream.
	MeterMemberEpoch = "memepoch"
)

// Cap-write ack statuses.
const (
	// CapApplied: the fence was accepted; the lease is renewed and any
	// carried cap was applied.
	CapApplied uint8 = 0
	// CapFenceRejected: the write lost to a fresher fence or a live
	// lease held by another leader. Nothing changed.
	CapFenceRejected uint8 = 1
	// CapApplyFailed: the fence was accepted and the lease renewed, but
	// the cap actuation itself failed (the shard's controller refused).
	CapApplyFailed uint8 = 2
)

const (
	capWriteLen = 4 + 1 + 8 + 4 + 8 + 8 + 8
	capAckLen   = 4 + 1 + 1 + 8 + 4 + 8 + 8

	capwFlagHasCap  = 1 << 0
	capwFlagRelease = 1 << 1
	capaFlagApplied = 1 << 0
)

// CapWrite is one fenced cap-write / lease-renewal request.
type CapWrite struct {
	// Fence is the writer's fencing epoch. Shards accept monotonically:
	// a lower fence — or an equal fence from a different holder — is
	// rejected.
	Fence uint64
	// Leader identifies the issuing replica (non-zero).
	Leader uint32
	// Seq orders writes within one (fence, leader) stream: the guard
	// accepts only strictly increasing sequence numbers, so a write that
	// was delayed in flight — held back by a partition healing, say —
	// can never land after a fresher write from the same leader and roll
	// the cap back to a stale assignment. Required non-zero; a leader
	// starts each fence's stream at 1.
	Seq uint64
	// Lease is the requested lease duration; an accepted write renews
	// the holder's lease for this long from the shard's host clock.
	// Required positive unless Release is set.
	Lease time.Duration
	// HasCap marks Cap as present: false is a lease-only renewal (or an
	// election probe).
	HasCap bool
	// Cap is the power bound in Watts when HasCap is set.
	Cap float64
	// Release relinquishes the lease: the holder expires its own lease
	// immediately so a successor need not wait out the TTL. A release
	// carries no cap and no lease.
	Release bool
}

// CapAck reports the shard's decision plus its authoritative fence
// state, so even a rejected writer learns who actually leads and what
// cap the shard is really holding.
type CapAck struct {
	Status uint8
	// Fence and Holder are the guard's state after the decision.
	Fence  uint64
	Holder uint32
	// Expiry is the guard's lease expiry on its host clock.
	Expiry time.Duration
	// HasApplied marks Applied as present: the shard has had at least
	// one fenced cap applied.
	HasApplied bool
	// Applied is the shard's last successfully applied fenced cap.
	Applied float64
}

// AppendCapWrite appends w's strict CAPW encoding to dst.
func AppendCapWrite(dst []byte, w CapWrite) []byte {
	var flags uint8
	if w.HasCap {
		flags |= capwFlagHasCap
	}
	if w.Release {
		flags |= capwFlagRelease
	}
	dst = append(dst, 'C', 'A', 'P', 'W', flags)
	dst = binary.LittleEndian.AppendUint64(dst, w.Fence)
	dst = binary.LittleEndian.AppendUint32(dst, w.Leader)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(w.Lease))
	dst = binary.LittleEndian.AppendUint64(dst, w.Seq)
	var capBits uint64
	if w.HasCap {
		capBits = math.Float64bits(w.Cap)
	}
	return binary.LittleEndian.AppendUint64(dst, capBits)
}

// DecodeCapWrite strictly decodes a CAPW payload: exact length, known
// flags only, a positive finite cap exactly when the cap flag is set, a
// positive lease exactly when the write is not a release. Every decoded
// write re-encodes bit-exactly.
func DecodeCapWrite(p []byte) (CapWrite, error) {
	var w CapWrite
	if len(p) != capWriteLen {
		return w, fmt.Errorf("rcr: cap write length %d, want %d", len(p), capWriteLen)
	}
	if string(p[:4]) != "CAPW" {
		return w, fmt.Errorf("rcr: cap write magic %q", p[:4])
	}
	flags := p[4]
	if flags&^uint8(capwFlagHasCap|capwFlagRelease) != 0 {
		return w, fmt.Errorf("rcr: cap write unknown flags %#x", flags)
	}
	w.HasCap = flags&capwFlagHasCap != 0
	w.Release = flags&capwFlagRelease != 0
	w.Fence = binary.LittleEndian.Uint64(p[5:])
	w.Leader = binary.LittleEndian.Uint32(p[13:])
	w.Lease = time.Duration(binary.LittleEndian.Uint64(p[17:]))
	w.Seq = binary.LittleEndian.Uint64(p[25:])
	capBits := binary.LittleEndian.Uint64(p[33:])
	if w.Leader == 0 {
		return w, fmt.Errorf("rcr: cap write leader 0 is reserved")
	}
	if w.Fence == 0 {
		return w, fmt.Errorf("rcr: cap write fence 0 is reserved")
	}
	if w.Seq == 0 {
		return w, fmt.Errorf("rcr: cap write seq 0 is reserved")
	}
	if w.Release {
		if w.HasCap || w.Lease != 0 {
			return w, fmt.Errorf("rcr: cap write release must carry no cap and no lease")
		}
	} else if w.Lease <= 0 {
		return w, fmt.Errorf("rcr: cap write lease %d must be positive", w.Lease)
	}
	if w.HasCap {
		w.Cap = math.Float64frombits(capBits)
		if math.IsNaN(w.Cap) || math.IsInf(w.Cap, 0) || w.Cap <= 0 {
			return w, fmt.Errorf("rcr: cap write cap %v must be positive and finite", w.Cap)
		}
	} else if capBits != 0 {
		return w, fmt.Errorf("rcr: cap write carries cap bits without the cap flag")
	}
	return w, nil
}

// AppendCapAck appends a's strict CAPA encoding to dst.
func AppendCapAck(dst []byte, a CapAck) []byte {
	var flags uint8
	if a.HasApplied {
		flags |= capaFlagApplied
	}
	dst = append(dst, 'C', 'A', 'P', 'A', a.Status, flags)
	dst = binary.LittleEndian.AppendUint64(dst, a.Fence)
	dst = binary.LittleEndian.AppendUint32(dst, a.Holder)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(a.Expiry))
	var bits uint64
	if a.HasApplied {
		bits = math.Float64bits(a.Applied)
	}
	return binary.LittleEndian.AppendUint64(dst, bits)
}

// DecodeCapAck strictly decodes a CAPA payload.
func DecodeCapAck(p []byte) (CapAck, error) {
	var a CapAck
	if len(p) != capAckLen {
		return a, fmt.Errorf("rcr: cap ack length %d, want %d", len(p), capAckLen)
	}
	if string(p[:4]) != "CAPA" {
		return a, fmt.Errorf("rcr: cap ack magic %q", p[:4])
	}
	a.Status = p[4]
	if a.Status > CapApplyFailed {
		return a, fmt.Errorf("rcr: cap ack status %d", a.Status)
	}
	flags := p[5]
	if flags&^uint8(capaFlagApplied) != 0 {
		return a, fmt.Errorf("rcr: cap ack unknown flags %#x", flags)
	}
	a.HasApplied = flags&capaFlagApplied != 0
	a.Fence = binary.LittleEndian.Uint64(p[6:])
	a.Holder = binary.LittleEndian.Uint32(p[14:])
	a.Expiry = time.Duration(binary.LittleEndian.Uint64(p[18:]))
	bits := binary.LittleEndian.Uint64(p[26:])
	if a.HasApplied {
		a.Applied = math.Float64frombits(bits)
		if math.IsNaN(a.Applied) || math.IsInf(a.Applied, 0) {
			return a, fmt.Errorf("rcr: cap ack applied %v must be finite", a.Applied)
		}
	} else if bits != 0 {
		return a, fmt.Errorf("rcr: cap ack carries applied bits without the flag")
	}
	return a, nil
}

// FenceGuard is a shard's fencing state machine: the single authority
// over which aggregator replica may write this shard's cap. It outlives
// server incarnations — a restarted shard re-attaches the same guard
// (and Bind()s its fresh blackboard), so a crash never resets the fence
// high-water mark; a production daemon would persist it alongside the
// crash-safe state snapshots.
type FenceGuard struct {
	clock func() time.Duration
	apply func(cap float64, fence uint64) error

	journal *telemetry.Journal
	rejects *telemetry.Counter
	grants  *telemetry.Counter

	mu         sync.Mutex
	bb         *Blackboard
	fence      uint64
	holder     uint32
	seq        uint64 // last accepted seq within the current (fence, holder) stream
	expiry     time.Duration
	applied    float64
	hasApplied bool

	// Committed membership (opaque to the guard: the cluster tier owns
	// the frame format). Authority is ordered by (memFence, memEpoch):
	// fences are totally ordered across leaders, so a successor's first
	// commit supersedes everything a deposed leader stored, while one
	// leader's own commits order by registry epoch. Like the fence
	// high-water mark it survives server incarnations.
	memFence uint64
	memEpoch uint64
	memFrame []byte
}

// NewFenceGuard builds a guard. clock supplies host time (the lease
// timebase); apply actuates an accepted cap (nil makes the guard
// lease-only). Call Bind to mirror lease state into a blackboard and
// Instrument/Journal for observability.
func NewFenceGuard(clock func() time.Duration, apply func(cap float64, fence uint64) error) *FenceGuard {
	return &FenceGuard{clock: clock, apply: apply}
}

// Instrument registers the guard's counters. Guards across a fleet may
// share one registry: they then share the counters, which is exactly
// the fleet-wide total the soak gates on.
func (g *FenceGuard) Instrument(reg *telemetry.Registry) {
	g.rejects = reg.Counter("cluster_fence_rejects_total")
	g.grants = reg.Counter("cluster_fence_grants_total")
}

// Journal routes fence_rejected records to j.
func (g *FenceGuard) Journal(j *telemetry.Journal) { g.journal = j }

// Bind mirrors lease state into bb (a fresh incarnation's blackboard
// after a shard restart) and republishes the current state so the new
// delta stream carries it from the first frame.
func (g *FenceGuard) Bind(bb *Blackboard) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.bb = bb
	g.mirrorLocked()
}

func (g *FenceGuard) mirrorLocked() {
	if g.bb == nil {
		return
	}
	now := g.clock()
	g.bb.SetSystem(MeterFence, float64(g.fence), now)
	g.bb.SetSystem(MeterLeaseHolder, float64(g.holder), now)
	g.bb.SetSystem(MeterLeaseExpiry, g.expiry.Seconds(), now)
	if g.hasApplied {
		g.bb.SetSystem(MeterFencedCap, g.applied, now)
	}
	if g.memEpoch > 0 {
		g.bb.SetSystem(MeterMemberEpoch, float64(g.memEpoch), now)
	}
}

// PowerCycle clears the guard's applied-cap ledger while keeping the
// fence high-water mark, sequence barrier, and committed membership
// frame. The split mirrors what a production daemon persists across a
// power-off: the fence ratchet and membership live on disk and must
// survive (a rejoining node must never grant a fence its predecessor
// refused), but the cap lives in the package's enforcement registers,
// which reset when the node loses power. A decommissioned node that
// later rejoins therefore reports no committed cap — the fleet already
// reclaimed those watts, and resurrecting the stale ledger would make
// the new incarnation's admission look like a step-down from power it
// no longer draws.
func (g *FenceGuard) PowerCycle() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.applied, g.hasApplied = 0, false
	g.mirrorLocked()
}

// State returns the guard's current fence state as an ack-shaped view.
func (g *FenceGuard) State() CapAck {
	g.mu.Lock()
	defer g.mu.Unlock()
	return CapAck{
		Status: CapApplied, Fence: g.fence, Holder: g.holder,
		Expiry: g.expiry, HasApplied: g.hasApplied, Applied: g.applied,
	}
}

// Offer decides one cap write. Acceptance rules:
//
//   - a lower fence is always rejected (the writer was demoted);
//   - an equal fence is accepted only from the current holder (lease
//     renewal) — a rival candidate reusing the fence loses — and only
//     with a sequence number above the last one accepted, so a delayed
//     duplicate or a partition-held write released after fresher writes
//     have landed cannot roll the cap back;
//   - a higher fence is accepted from a new holder only once the
//     current lease has expired on this shard's clock, so a standby
//     cannot seize a shard out from under a leader that is still
//     renewing it. The current holder may always raise its own fence.
//
// An accepted non-release write renews the lease; an accepted release
// expires it immediately. Rejections change nothing and are journaled.
func (g *FenceGuard) Offer(w CapWrite) CapAck {
	now := g.clock()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.offerLocked(w, now)
}

// offerLocked is Offer's body; OfferMem shares it so the fence decision
// and the membership store land in one critical section. Called with
// g.mu held.
func (g *FenceGuard) offerLocked(w CapWrite, now time.Duration) CapAck {
	reject := func(why string) CapAck {
		if g.rejects != nil {
			g.rejects.Inc()
		}
		if g.journal != nil {
			g.journal.Record(telemetry.Decision{T: now, Kind: telemetry.KindFenceRejected,
				Detail: fmt.Sprintf("fence %d from replica %d rejected (%s): holder %d fence %d", w.Fence, w.Leader, why, g.holder, g.fence)})
		}
		return CapAck{Status: CapFenceRejected, Fence: g.fence, Holder: g.holder,
			Expiry: g.expiry, HasApplied: g.hasApplied, Applied: g.applied}
	}
	switch {
	case w.Fence == 0:
		return reject("zero fence")
	case w.Fence < g.fence:
		return reject("stale fence")
	case w.Fence == g.fence && g.fence != 0 && w.Leader != g.holder:
		return reject("fence owned")
	case w.Fence == g.fence && w.Leader == g.holder && w.Seq <= g.seq:
		return reject("stale seq")
	case w.Fence > g.fence && g.fence != 0 && w.Leader != g.holder && now < g.expiry:
		return reject("lease live")
	}
	g.fence = w.Fence
	g.holder = w.Leader
	g.seq = w.Seq
	if w.Release {
		g.expiry = now
	} else {
		g.expiry = now + w.Lease
	}
	status := CapApplied
	if w.HasCap {
		if g.apply == nil {
			status = CapApplyFailed
		} else if err := g.apply(w.Cap, w.Fence); err != nil {
			status = CapApplyFailed
		} else {
			g.applied, g.hasApplied = w.Cap, true
		}
	}
	if g.grants != nil {
		g.grants.Inc()
	}
	g.mirrorLocked()
	return CapAck{Status: status, Fence: g.fence, Holder: g.holder,
		Expiry: g.expiry, HasApplied: g.hasApplied, Applied: g.applied}
}
