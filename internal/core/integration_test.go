package core

import (
	"math"
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/machine"
	"repro/internal/qthreads"
	"repro/internal/rcr"
	"repro/internal/workloads"
	"repro/internal/workloads/lulesh"
)

// TestFullStackIntegration exercises every subsystem in one scenario:
// a LULESH run under the MAESTRO daemon with scheduler tracing and
// history recording, while an RCR snapshot server answers queries over a
// Unix socket — the paper's complete deployment in miniature.
func TestFullStackIntegration(t *testing.T) {
	mcfg := machine.M620()
	mcfg.VirtualTimeLimit = 30 * time.Minute

	rec := qthreads.NewRecorder(0)
	qcfg := qthreads.DefaultConfig()
	qcfg.SpinOnlyIdle = true
	qcfg.Tracer = rec

	sys, err := New(Options{
		Machine:            mcfg,
		Qthreads:           qcfg,
		AdaptiveThrottling: true,
		RecordHistory:      true,
		Warm:               true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// Snapshot server on a Unix socket, like cmd/rcrd.
	sock := filepath.Join(t.TempDir(), "rcrd.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := rcr.NewServer(sys.Blackboard(), sys.Machine(), ln)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Error(err)
		}
		if err := <-serveDone; err != nil {
			t.Error(err)
		}
	}()

	wl := lulesh.New()
	target := compiler.Target{Compiler: compiler.GCC, Opt: compiler.O3}
	if err := wl.Prepare(workloads.Params{MachineConfig: mcfg, Target: target, Scale: 0.25}); err != nil {
		t.Fatal(err)
	}

	// Query the daemon from a client goroutine while the run proceeds.
	queried := make(chan rcr.Snapshot, 1)
	go func() {
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			s, err := rcr.Query("unix", sock)
			if err == nil && len(s.Sockets) == 2 {
				if _, ok := findMeter(s.Sockets[0].Meters, rcr.MeterPower); ok {
					queried <- s
					return
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
		close(queried)
	}()

	rep, err := sys.RunWorkload(wl)
	if err != nil {
		t.Fatal(err)
	}

	// 1. The measured region is sane (quarter-scale lulesh ≈ 12 s).
	if rep.Elapsed.Seconds() < 8 || rep.Elapsed.Seconds() > 16 {
		t.Errorf("elapsed = %v, want ~12 s", rep.Elapsed)
	}
	if math.Abs(float64(rep.AvgPower)) < 100 {
		t.Errorf("power = %v, implausibly low for lulesh", rep.AvgPower)
	}
	// 2. The daemon engaged (lulesh is a throttling target).
	stats, ok := sys.Throttling()
	if !ok || stats.Activations == 0 {
		t.Errorf("daemon stats = %+v, want an activation", stats)
	}
	// 3. The trace saw tasks, steals and throttle events.
	counts := rec.Counts()
	if counts[qthreads.EvTaskStart] == 0 || counts[qthreads.EvSteal] == 0 || counts[qthreads.EvThrottleEnter] == 0 {
		t.Errorf("trace counts = %v, want tasks+steals+throttle", counts)
	}
	// 4. The history recorded the power timeline.
	if sys.History().Len() < 100 {
		t.Errorf("history has %d points over a ~12 s run", sys.History().Len())
	}
	// 5. A client saw live meters over the socket.
	snap, ok := <-queried
	if !ok {
		t.Fatal("snapshot client never got an answer")
	}
	if p, ok := findMeter(snap.Sockets[0].Meters, rcr.MeterPower); !ok || p <= 0 {
		t.Errorf("queried snapshot power = %v, %v", p, ok)
	}
}

func findMeter(ms []rcr.MeterValue, name string) (float64, bool) {
	for _, m := range ms {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}
