// Package core is the library's public facade: it assembles the full
// stack of the paper's system — simulated Sandybridge node (or any
// machine.Config), RAPL energy counters, the RCR measurement daemon, the
// Qthreads-style task runtime, and optionally the MAESTRO adaptive
// concurrency-throttling daemon — behind one System type.
//
// Typical use:
//
//	sys, err := core.New(core.Options{AdaptiveThrottling: true})
//	defer sys.Close()
//	report, err := sys.Run("my-kernel", func(tc *qthreads.TC) {
//	    tc.ParallelFor(n, 0, func(tc *qthreads.TC, lo, hi int) { ... })
//	})
//	fmt.Println(report) // elapsed, Joules, Watts, per-socket temps
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/machine"
	"repro/internal/maestro"
	"repro/internal/qthreads"
	"repro/internal/rapl"
	"repro/internal/rcr"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workloads"
)

// Options configure a System. The zero value is a 16-worker M620 with
// measurement only (no throttling).
type Options struct {
	// Machine is the simulated node; zero value selects the paper's
	// M620 preset.
	Machine machine.Config
	// Workers is the task-runtime worker count; zero means all cores.
	Workers int
	// Qthreads tunes the runtime beyond the worker count; zero values
	// take the runtime defaults. Workers above overrides Qthreads.Workers.
	Qthreads qthreads.Config
	// SamplePeriod is the RCR blackboard refresh interval; zero selects
	// the default (10 ms of virtual time).
	SamplePeriod time.Duration
	// FaultTolerant hardens the measurement path (docs/robustness.md):
	// the RAPL reader is wrapped in a rapl.Guard (per-domain retry,
	// bounded-backoff quarantine, plausibility clamp), and the sampler
	// runs under an rcr.Supervisor that restarts it if it dies or wedges.
	// The MAESTRO staleness watchdog is always on regardless (it defaults
	// to 3× the poll period); this option adds the sensing-side armor.
	FaultTolerant bool
	// AdaptiveThrottling starts the MAESTRO daemon (paper §IV).
	AdaptiveThrottling bool
	// Maestro tunes the daemon when AdaptiveThrottling is set.
	Maestro maestro.Config
	// PowerCap, when positive, starts a power-capping controller holding
	// node power at or below the bound (the §V/§VI outlook: concurrency
	// throttling under a power budget). Mutually exclusive with
	// AdaptiveThrottling — both would fight over the throttle limit.
	PowerCap units.Watts
	// RecordHistory keeps a time series of power / memory-concurrency /
	// temperature samples, readable via History.
	RecordHistory bool
	// Warm pre-heats the machine to the paper's warm-system operating
	// point. Experiments that care about the cold-start effect leave it
	// false and manage temperature explicitly.
	Warm bool
	// Telemetry instruments the whole stack — blackboard, sampler, task
	// runtime, and the MAESTRO daemon or power-cap controller — into one
	// registry, and attaches a decision journal to the daemon. True
	// creates the registry and journal internally (read them back via
	// Telemetry/Journal); to publish into an existing registry set
	// Qthreads.Telemetry / Maestro.Telemetry / Maestro.Journal yourself
	// and leave this false.
	Telemetry bool
}

// System is a ready-to-run instance of the paper's full stack.
type System struct {
	m       *machine.Machine
	reader  rapl.Reader
	guard   *rapl.Guard
	bb      *rcr.Blackboard
	sampler *rcr.Sampler
	sup     *rcr.Supervisor
	rt      *qthreads.Runtime
	daemon  *maestro.Daemon
	cap     *maestro.PowerCap
	history *rcr.History
	reg     *telemetry.Registry
	journal *telemetry.Journal
	closed  bool
}

// New builds and starts a System.
func New(opts Options) (*System, error) {
	mcfg := opts.Machine
	if mcfg.Sockets == 0 {
		mcfg = machine.M620()
	}
	m, err := machine.New(mcfg)
	if err != nil {
		return nil, err
	}
	sys := &System{m: m}
	fail := func(err error) (*System, error) {
		sys.Close()
		return nil, err
	}
	if opts.Warm {
		m.WarmAll(workloads.WarmTemp)
	}
	if opts.Telemetry {
		// The registry exists before the guard and sampler so their
		// instruments are registered from the first read.
		sys.reg = telemetry.NewRegistry()
		sys.journal = telemetry.NewJournal(0, mcfg.Sockets)
		opts.Qthreads.Telemetry = sys.reg
		opts.Maestro.Telemetry = sys.reg
		opts.Maestro.Journal = sys.journal
	}
	msrReader, err := rapl.NewMSRReader(m.MSR())
	if err != nil {
		return fail(err)
	}
	sys.reader = msrReader
	if opts.FaultTolerant {
		// The sampler calls the guard with the machine lock released, so
		// virtual time is a safe backoff clock here.
		if sys.guard, err = rapl.NewGuard(msrReader, rapl.GuardConfig{Clock: m.Now, Telemetry: sys.reg}); err != nil {
			return fail(err)
		}
		sys.reader = sys.guard
	}
	if sys.bb, err = rcr.NewBlackboard(mcfg.Sockets, mcfg.CoresPerSocket); err != nil {
		return fail(err)
	}
	if opts.FaultTolerant {
		if sys.sup, err = rcr.StartSupervisor(m, sys.reader, sys.bb, rcr.SupervisorConfig{
			SamplePeriod: opts.SamplePeriod,
			Telemetry:    sys.reg,
		}); err != nil {
			return fail(err)
		}
	} else {
		if sys.sampler, err = rcr.StartSampler(m, sys.reader, sys.bb, opts.SamplePeriod); err != nil {
			return fail(err)
		}
		sys.sampler.Instrument(sys.reg) // no-op when reg is nil
	}
	if sys.reg != nil {
		sys.bb.Instrument(sys.reg)
	}
	qcfg := opts.Qthreads
	if qcfg.SpawnCost == 0 && qcfg.DequeueCost == 0 && qcfg.StealCost == 0 {
		base := qthreads.DefaultConfig()
		base.Workers = qcfg.Workers
		base.SpinOnlyIdle = qcfg.SpinOnlyIdle
		base.Pinning = qcfg.Pinning
		base.Telemetry = qcfg.Telemetry
		qcfg = base
	}
	if opts.Workers != 0 {
		qcfg.Workers = opts.Workers
	}
	if sys.rt, err = qthreads.New(m, qcfg); err != nil {
		return fail(err)
	}
	if opts.AdaptiveThrottling && opts.PowerCap > 0 {
		return fail(errors.New("core: AdaptiveThrottling and PowerCap are mutually exclusive"))
	}
	if opts.AdaptiveThrottling {
		if sys.daemon, err = maestro.Start(sys.rt, sys.bb, opts.Maestro); err != nil {
			return fail(err)
		}
	}
	if opts.PowerCap > 0 {
		if sys.cap, err = maestro.StartPowerCap(sys.rt, sys.bb, opts.PowerCap, 0); err != nil {
			return fail(err)
		}
		sys.cap.Instrument(sys.reg) // no-op when reg is nil
	}
	if opts.RecordHistory {
		if sys.history, err = rcr.StartHistory(m, sys.bb, opts.SamplePeriod, 0); err != nil {
			return fail(err)
		}
	}
	return sys, nil
}

// Machine returns the underlying simulated node.
func (s *System) Machine() *machine.Machine { return s.m }

// Runtime returns the task runtime.
func (s *System) Runtime() *qthreads.Runtime { return s.rt }

// Blackboard returns the RCR measurement blackboard.
func (s *System) Blackboard() *rcr.Blackboard { return s.bb }

// Reader returns the RAPL energy reader the stack measures through —
// the fault-containment Guard when FaultTolerant is set.
func (s *System) Reader() rapl.Reader { return s.reader }

// Guard returns the RAPL fault-containment wrapper, or nil when
// FaultTolerant was not set.
func (s *System) Guard() *rapl.Guard { return s.guard }

// Supervisor returns the sampler supervisor, or nil when FaultTolerant
// was not set.
func (s *System) Supervisor() *rcr.Supervisor { return s.sup }

// Throttling reports whether adaptive throttling is installed and its
// statistics so far.
func (s *System) Throttling() (maestro.Stats, bool) {
	if s.daemon == nil {
		return maestro.Stats{}, false
	}
	return s.daemon.Stats(), true
}

// PowerCapController returns the power-capping controller, or nil when
// Options.PowerCap was not set. Cluster-tier budget partitioners
// (internal/cluster) use it to retune the node's bound live via SetCap.
func (s *System) PowerCapController() *maestro.PowerCap { return s.cap }

// Capping reports whether a power cap is installed and its statistics so
// far.
func (s *System) Capping() (maestro.CapStats, bool) {
	if s.cap == nil {
		return maestro.CapStats{}, false
	}
	return s.cap.Stats(), true
}

// History returns the recorded measurement time series, or nil when
// RecordHistory was not set.
func (s *System) History() *rcr.History { return s.history }

// AttachPublisher wires a delta publisher into the sampling path so
// every sampler tick also fans frames out to subscribers. Under
// FaultTolerant the attachment goes through the supervisor and survives
// sampler restarts.
func (s *System) AttachPublisher(p *rcr.Publisher) {
	if s.sup != nil {
		s.sup.AttachPublisher(p)
		return
	}
	if s.sampler != nil {
		s.sampler.AttachPublisher(p)
	}
}

// Telemetry returns the stack-wide metrics registry, or nil when
// Options.Telemetry was not set.
func (s *System) Telemetry() *telemetry.Registry { return s.reg }

// Journal returns the MAESTRO decision journal, or nil when
// Options.Telemetry was not set. It only fills while AdaptiveThrottling
// is enabled — the journal records classifications, and only the daemon
// classifies.
func (s *System) Journal() *telemetry.Journal { return s.journal }

// Checkpoint captures the crash-safe daemon state (internal/resilience):
// the RAPL guard's fail-safe machine and the recorded history timeline.
// The keeper stamps the wall-clock save instant itself.
func (s *System) Checkpoint() resilience.DaemonState {
	st := resilience.DaemonState{VirtualNow: s.m.Now()}
	if s.guard != nil {
		st.Guard = s.guard.Checkpoint()
	}
	if s.history != nil {
		st.History = s.history.Points()
	}
	return st
}

// RestoreCheckpoint installs a previously saved daemon state: quarantined
// RAPL domains stay quarantined (a restart is not evidence the hardware
// healed) and the history ring resumes its timeline. Components the
// system was built without (no guard, no history) silently skip their
// part, so a state file from a differently-configured run degrades
// instead of failing.
func (s *System) RestoreCheckpoint(st resilience.DaemonState) {
	if s.guard != nil && len(st.Guard) > 0 {
		s.guard.Restore(st.Guard)
	}
	if s.history != nil && len(st.History) > 0 {
		s.history.Restore(st.History)
	}
}

// Run executes task as a root task on the runtime, measured as an RCR
// region.
func (s *System) Run(name string, task qthreads.Task) (rcr.RegionReport, error) {
	if s.closed {
		return rcr.RegionReport{}, errors.New("core: system is closed")
	}
	region, err := rcr.StartRegion(name, s.m, s.reader, s.bb)
	if err != nil {
		return rcr.RegionReport{}, err
	}
	if err := s.rt.Run(task); err != nil {
		return rcr.RegionReport{}, fmt.Errorf("core: running %q: %w", name, err)
	}
	return region.End()
}

// RunWorkload prepares nothing — the workload must already be Prepared —
// and runs it measured and validated.
func (s *System) RunWorkload(wl workloads.Workload) (rcr.RegionReport, error) {
	if s.closed {
		return rcr.RegionReport{}, errors.New("core: system is closed")
	}
	return workloads.RunOnRuntime(s.rt, s.reader, s.bb, wl)
}

// Power returns the most recently sampled node power.
func (s *System) Power() units.Watts {
	total := 0.0
	for d := 0; d < s.bb.Sockets(); d++ {
		if m, ok := s.bb.Socket(d, rcr.MeterPower); ok {
			total += m.Value
		}
	}
	return units.Watts(total)
}

// Close tears the stack down in dependency order. It is idempotent.
func (s *System) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.history != nil {
		s.history.Stop()
	}
	if s.cap != nil {
		s.cap.Stop()
	}
	if s.daemon != nil {
		s.daemon.Stop()
	}
	if s.rt != nil {
		s.rt.Shutdown()
	}
	if s.sup != nil {
		s.sup.Stop()
	}
	if s.sampler != nil {
		s.sampler.Stop()
	}
	if s.m != nil {
		s.m.Stop()
	}
}
