package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/qthreads"
	"repro/internal/workloads"
	"repro/internal/workloads/micro"
)

func newSystem(t *testing.T, opts Options) *System {
	t.Helper()
	if opts.Machine.Sockets == 0 {
		opts.Machine = machine.M620()
		opts.Machine.VirtualTimeLimit = 30 * time.Minute
	}
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func TestRunMeasuredRegion(t *testing.T) {
	sys := newSystem(t, Options{Warm: true})
	rep, err := sys.Run("kernel", func(tc *qthreads.TC) {
		tc.ParallelFor(1600, 100, func(tc *qthreads.TC, lo, hi int) {
			tc.Compute(float64(hi-lo) * 1e6) // 100 ms of work node-wide
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "kernel" {
		t.Errorf("report name = %q", rep.Name)
	}
	// 1.6e9 cycles over 16 workers at 2.7 GHz ≈ 37 ms.
	if rep.Elapsed < 30*time.Millisecond || rep.Elapsed > 60*time.Millisecond {
		t.Errorf("elapsed = %v, want ~37 ms", rep.Elapsed)
	}
	if rep.Energy <= 0 {
		t.Error("no energy recorded")
	}
	if !strings.Contains(rep.String(), "kernel") {
		t.Errorf("report string %q missing region name", rep.String())
	}
}

func TestRunWorkload(t *testing.T) {
	sys := newSystem(t, Options{Warm: true})
	wl := micro.NewDijkstra()
	if err := wl.Prepare(workloads.Params{Scale: 0.3}); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunWorkload(wl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elapsed <= 0 || rep.Energy <= 0 {
		t.Errorf("empty report: %+v", rep)
	}
}

func TestWorkersOption(t *testing.T) {
	sys := newSystem(t, Options{Workers: 4})
	if got := sys.Runtime().Workers(); got != 4 {
		t.Errorf("Workers = %d, want 4", got)
	}
}

func TestThrottlingOption(t *testing.T) {
	sys := newSystem(t, Options{Warm: true, AdaptiveThrottling: true})
	if _, ok := sys.Throttling(); !ok {
		t.Fatal("throttling not installed")
	}
	// Run something; the daemon must at least be sampling.
	if _, err := sys.Run("warm", func(tc *qthreads.TC) { tc.Compute(2.7e9) }); err != nil {
		t.Fatal(err)
	}
	stats, _ := sys.Throttling()
	if stats.Samples == 0 {
		t.Error("daemon took no samples during a 1 s run")
	}
	// No throttling expected on a compute-only kernel.
	if stats.Activations != 0 {
		t.Errorf("daemon activated %d times on compute-only work", stats.Activations)
	}
}

func TestThrottlingAbsent(t *testing.T) {
	sys := newSystem(t, Options{})
	if _, ok := sys.Throttling(); ok {
		t.Error("Throttling reports installed without the option")
	}
}

func TestPowerMeter(t *testing.T) {
	sys := newSystem(t, Options{Warm: true})
	var midRun float64
	if _, err := sys.Run("burn", func(tc *qthreads.TC) {
		g := tc.NewGroup()
		for i := 0; i < 16; i++ {
			g.Spawn(tc, func(tc *qthreads.TC) { tc.Compute(2.7e8) })
		}
		// Let the burners establish steady state, then read the meter
		// from inside the region (the root's charge keeps time moving).
		tc.Compute(1.35e8) // 50 ms
		midRun = float64(sys.Power())
		g.Wait(tc)
	}); err != nil {
		t.Fatal(err)
	}
	// Mid-run: 15-16 active cores plus the sampling lag — near the
	// compute-bound figure.
	want := float64(sys.Machine().Config().Power.PredictSocketPower(8, 1, 0, 0, 0, 0, 0)) * 2
	if math.Abs(midRun-want)/want > 0.15 {
		t.Errorf("mid-run Power() = %.1f W, want ~%.1f W", midRun, want)
	}
	// After the run the workers are parked and the meter reflects idle.
	idle := float64(sys.Power())
	if idle >= midRun {
		t.Errorf("post-run Power() = %.1f W, want below mid-run %.1f W", idle, midRun)
	}
}

func TestRunAfterClose(t *testing.T) {
	sys := newSystem(t, Options{})
	sys.Close()
	if _, err := sys.Run("x", func(tc *qthreads.TC) {}); err == nil {
		t.Error("Run succeeded on a closed system")
	}
	sys.Close() // idempotent
}

func TestCustomMachineConfig(t *testing.T) {
	cfg := machine.M620()
	cfg.Sockets = 1
	cfg.CoresPerSocket = 4
	sys := newSystem(t, Options{Machine: cfg})
	if sys.Runtime().Workers() != 4 {
		t.Errorf("Workers = %d, want 4 (all cores of custom machine)", sys.Runtime().Workers())
	}
	if sys.Blackboard().Sockets() != 1 {
		t.Errorf("blackboard sockets = %d", sys.Blackboard().Sockets())
	}
}

func TestWarmOption(t *testing.T) {
	sys := newSystem(t, Options{Warm: true})
	if got := sys.Machine().Temperature(0); math.Abs(float64(got-workloads.WarmTemp)) > 1 {
		t.Errorf("temperature = %v, want warm (%v)", got, workloads.WarmTemp)
	}
	cold := newSystem(t, Options{})
	if got := cold.Machine().Temperature(0); got >= workloads.WarmTemp {
		t.Errorf("unwarmed machine already at %v", got)
	}
}

func TestPowerCapOption(t *testing.T) {
	sys := newSystem(t, Options{Warm: true, PowerCap: 110})
	if _, ok := sys.Capping(); !ok {
		t.Fatal("power cap not installed")
	}
	// A sustained full-node burn must be held near the cap. The
	// controller adjusts once per 100 ms: give it a settle phase, then
	// measure the steady state.
	burn := func(tasks int) {
		t.Helper()
		if _, err := sys.Run("burn", func(tc *qthreads.TC) {
			g := tc.NewGroup()
			for i := 0; i < tasks; i++ {
				g.Spawn(tc, func(tc *qthreads.TC) { tc.Compute(2e7) })
			}
			g.Wait(tc)
		}); err != nil {
			t.Fatal(err)
		}
	}
	burn(2400) // settle: > 1 s even at full speed
	start := sys.Machine().Now()
	startE := sys.Machine().TotalEnergy()
	burn(2400)
	elapsed := sys.Machine().Now() - start
	avg := float64(sys.Machine().TotalEnergy()-startE) / elapsed.Seconds()
	stats, _ := sys.Capping()
	if stats.Tightenings == 0 {
		t.Error("cap controller never tightened")
	}
	if avg > 110*1.08 {
		t.Errorf("steady-state power %.1f W above the 110 W cap", avg)
	}
}

func TestPowerCapExclusiveWithThrottling(t *testing.T) {
	_, err := New(Options{AdaptiveThrottling: true, PowerCap: 100})
	if err == nil {
		t.Fatal("conflicting options accepted")
	}
}

func TestHistoryOption(t *testing.T) {
	sys := newSystem(t, Options{Warm: true, RecordHistory: true})
	if sys.History() == nil {
		t.Fatal("history not installed")
	}
	if _, err := sys.Run("burn", func(tc *qthreads.TC) { tc.Compute(2.7e8) }); err != nil {
		t.Fatal(err)
	}
	if sys.History().Len() < 5 {
		t.Errorf("history recorded only %d points over a 100 ms run", sys.History().Len())
	}
	cold := newSystem(t, Options{})
	if cold.History() != nil {
		t.Error("history present without the option")
	}
}

func TestTelemetryOption(t *testing.T) {
	sys := newSystem(t, Options{Warm: true, AdaptiveThrottling: true, Telemetry: true})
	if sys.Telemetry() == nil || sys.Journal() == nil {
		t.Fatal("Telemetry option did not install registry/journal")
	}
	// ~370 ms of virtual work, several MAESTRO poll periods.
	_, err := sys.Run("kernel", func(tc *qthreads.TC) {
		tc.ParallelFor(1600, 100, func(tc *qthreads.TC, lo, hi int) {
			tc.Compute(float64(hi-lo) * 1e7)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := sys.Telemetry().Snapshot()
	if len(snap) < 10 {
		t.Errorf("stack publishes %d metrics, want >= 10", len(snap))
	}
	want := map[string]bool{
		"rcr_sampler_ticks_total":     false,
		"rcr_blackboard_writes_total": false,
		"qthreads_tasks_total":        false,
		"maestro_polls_total":         false,
	}
	for _, m := range snap {
		if _, ok := want[m.Name]; ok && m.Value > 0 {
			want[m.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("metric %s absent or zero after a run", name)
		}
	}
	if sys.Journal().Len() == 0 {
		t.Error("daemon recorded no decisions in the journal")
	}
}

func TestTelemetryOffByDefault(t *testing.T) {
	sys := newSystem(t, Options{})
	if sys.Telemetry() != nil || sys.Journal() != nil {
		t.Error("telemetry installed without Options.Telemetry")
	}
}

func TestFaultTolerantOption(t *testing.T) {
	sys := newSystem(t, Options{FaultTolerant: true, Telemetry: true})
	if sys.Guard() == nil || sys.Supervisor() == nil {
		t.Fatal("FaultTolerant system missing guard or supervisor")
	}
	if sys.Reader() != sys.Guard() {
		t.Error("system does not measure through the guard")
	}
	rep, err := sys.Run("kernel", func(tc *qthreads.TC) {
		tc.ParallelFor(320, 20, func(tc *qthreads.TC, lo, hi int) {
			tc.Compute(float64(hi-lo) * 1e6)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Energy <= 0 {
		t.Error("no energy measured through the guarded reader")
	}
	if got := sys.Guard().Quarantined(); got != 0 {
		t.Errorf("%d domains quarantined on a healthy run", got)
	}
	if sys.Supervisor().Restarts() != 0 {
		t.Error("supervisor restarted a healthy sampler")
	}
	// The guard's instruments are in the shared registry.
	found := false
	for _, m := range sys.Telemetry().Snapshot() {
		if m.Name == "rapl_guard_faults_total" {
			found = true
		}
	}
	if !found {
		t.Error("guard counters not registered")
	}
}

func TestFaultTolerantOffByDefault(t *testing.T) {
	sys := newSystem(t, Options{})
	if sys.Guard() != nil || sys.Supervisor() != nil {
		t.Error("zero-value options grew a guard or supervisor")
	}
}
