package machine

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestAddTickerDuringIdlePaceSleepKicksReplan registers a fast ticker
// while the engine is parked in an idle-pace host sleep toward a far
// slower ticker's deadline. The AddTicker kick must make the engine
// abandon that in-flight plan and re-plan, so the new ticker's first
// fire lands at exactly one period of virtual time — not coalesced into
// the old plan's distant step.
func TestAddTickerDuringIdlePaceSleepKicksReplan(t *testing.T) {
	cfg := testConfig()
	// A long pace makes "during the sleep" easy to hit: the engine sits
	// in a 100 ms host sleep before its first (1 s virtual) advance.
	cfg.IdlePace = 100 * time.Millisecond
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)

	var slowFires atomic.Int32
	if _, err := m.AddTicker(time.Second, func(time.Duration, *Snapshot) {
		slowFires.Add(1)
	}); err != nil {
		t.Fatal(err)
	}

	// Let the engine plan the 1 s step and enter its pace sleep, then add
	// the fast ticker mid-sleep.
	time.Sleep(5 * time.Millisecond)
	fastFire := make(chan time.Duration, 1)
	fastID, err := m.AddTicker(500*time.Microsecond, func(now time.Duration, _ *Snapshot) {
		select {
		case fastFire <- now:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.RemoveTicker(fastID)

	select {
	case now := <-fastFire:
		if now != 500*time.Microsecond {
			t.Errorf("first fast fire at %v, want exactly 500µs: engine did not re-plan after the kick", now)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fast ticker never fired; engine stayed on the stale plan")
	}
	if n := slowFires.Load(); n != 0 {
		t.Errorf("slow ticker fired %d times before the fast ticker; the stale 1s step was taken", n)
	}
}

// TestAddTickerRejectsNonPositivePeriod covers the zero- and
// negative-period rejection (zero alone is covered in machine_test.go).
func TestAddTickerRejectsNonPositivePeriod(t *testing.T) {
	m := newTestMachine(t)
	for _, period := range []time.Duration{0, -time.Nanosecond, -time.Second} {
		if id, err := m.AddTicker(period, func(time.Duration, *Snapshot) {}); err == nil {
			t.Errorf("AddTicker(%v) succeeded with id %d, want error", period, id)
		}
	}
}

// TestRemoveTickerFromOwnCallback removes a ticker from inside its own
// callback. The callback runs with the engine lock released, so this
// must neither deadlock nor re-arm the ticker: it fires exactly once.
func TestRemoveTickerFromOwnCallback(t *testing.T) {
	m := newTestMachine(t)
	var fires atomic.Int32
	idCh := make(chan int, 1)
	if id, err := m.AddTicker(100*time.Microsecond, func(time.Duration, *Snapshot) {
		fires.Add(1)
		m.RemoveTicker(<-idCh) // self-removal mid-fire
	}); err != nil {
		t.Fatal(err)
	} else {
		idCh <- id
	}

	// Drive ~1 ms of virtual time; an un-removed 100 µs ticker would fire
	// about ten times.
	runOn(t, m, map[int]func(*CoreCtx){
		0: func(ctx *CoreCtx) { ctx.Compute(2.7e6) },
	})
	if n := fires.Load(); n != 1 {
		t.Errorf("self-removing ticker fired %d times, want exactly 1", n)
	}
	if err := m.Err(); err != nil {
		t.Errorf("machine error after self-removal: %v", err)
	}
}

// TestRemoveTickerFromOtherCallback removes ticker B from inside ticker
// A's callback while both are due at the same instant: B must not fire
// after its removal, and the sweep must survive the heap mutation.
func TestRemoveTickerFromOtherCallback(t *testing.T) {
	m := newTestMachine(t)
	var bFires atomic.Int32
	bID, err := m.AddTicker(200*time.Microsecond, func(time.Duration, *Snapshot) {
		bFires.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	// A has a shorter period, so A's first fire precedes B's and A's
	// later fires share instants with B's deadlines (200 µs multiples).
	if _, err := m.AddTicker(100*time.Microsecond, func(now time.Duration, _ *Snapshot) {
		if now >= 200*time.Microsecond {
			m.RemoveTicker(bID) // idempotent; first call lands at B's own due instant
		}
	}); err != nil {
		t.Fatal(err)
	}
	runOn(t, m, map[int]func(*CoreCtx){
		0: func(ctx *CoreCtx) { ctx.Compute(2.7e6) },
	})
	// At 200µs, A fires first (registered later but earlier period means
	// its heap position is settled by deadline; both orders are legal for
	// equal deadlines) — so B may legitimately fire once at 200 µs, but
	// never again afterwards.
	if n := bFires.Load(); n > 1 {
		t.Errorf("removed ticker fired %d times, want at most 1", n)
	}
	if err := m.Err(); err != nil {
		t.Errorf("machine error after cross-removal: %v", err)
	}
}
