package machine

import (
	"math"
	"testing"
	"time"
)

func TestThermalSteadyState(t *testing.T) {
	tp := M620().Thermal
	ss := tp.SteadyState(75) // one socket at the paper's High threshold
	want := tp.Ambient + 0.60*75
	if math.Abs(float64(ss-want)) > 1e-9 {
		t.Errorf("SteadyState(75W) = %v, want %v", ss, want)
	}
}

func TestThermalStepConvergesToSteadyState(t *testing.T) {
	tp := M620().Thermal
	T := tp.Ambient
	for i := 0; i < 600; i++ { // 10 minutes in 1 s steps
		T = tp.step(T, 75, time.Second)
	}
	ss := tp.SteadyState(75)
	if math.Abs(float64(T-ss)) > 0.5 {
		t.Errorf("after 10 min, T = %v, want steady state %v", T, ss)
	}
}

func TestThermalStepMonotone(t *testing.T) {
	tp := M620().Thermal
	T := tp.Ambient
	prev := T
	for i := 0; i < 100; i++ {
		T = tp.step(T, 75, time.Second)
		if T < prev {
			t.Fatalf("heating not monotone: %v after %v", T, prev)
		}
		prev = T
	}
	// Cooling from above steady state is also monotone.
	T = tp.SteadyState(75) + 30
	prev = T
	for i := 0; i < 100; i++ {
		T = tp.step(T, 75, time.Second)
		if T > prev {
			t.Fatalf("cooling not monotone: %v after %v", T, prev)
		}
		prev = T
	}
}

func TestThermalStepTimeConstant(t *testing.T) {
	tp := M620().Thermal
	T0 := tp.Ambient
	ss := tp.SteadyState(100)
	// After exactly one time constant, the gap closes to 1/e.
	T := tp.step(T0, 100, tp.TimeConstant)
	wantGap := float64(ss-T0) / math.E
	gotGap := float64(ss - T)
	if math.Abs(gotGap-wantGap) > 0.01*wantGap {
		t.Errorf("gap after one τ = %g, want %g", gotGap, wantGap)
	}
}

func TestThermalStepExactSplit(t *testing.T) {
	// Stepping 2 s must equal stepping 1 s twice (exact exponential).
	tp := M620().Thermal
	one := tp.step(tp.step(30, 120, time.Second), 120, time.Second)
	two := tp.step(30, 120, 2*time.Second)
	if math.Abs(float64(one-two)) > 1e-9 {
		t.Errorf("1s+1s = %v, 2s = %v: integration not exact", one, two)
	}
}

func TestThermalStepZeroDuration(t *testing.T) {
	tp := M620().Thermal
	if got := tp.step(55, 100, 0); got != 55 {
		t.Errorf("step(55, 100, 0) = %v, want 55", got)
	}
	if got := tp.step(55, 100, -time.Second); got != 55 {
		t.Errorf("negative duration step = %v, want unchanged", got)
	}
}

func TestLeakageFactor(t *testing.T) {
	tp := M620().Thermal
	if got := tp.leakageFactor(tp.LeakageRef); got != 1 {
		t.Errorf("leakage at reference = %g, want 1", got)
	}
	// A hot chip draws a few percent more (paper fn.2: ~3% cold effect).
	hot := tp.leakageFactor(tp.LeakageRef + 30)
	if hot < 1.02 || hot > 1.06 {
		t.Errorf("leakage at +30°C = %g, want 1.02..1.06", hot)
	}
	// Never below the floor.
	if got := tp.leakageFactor(-300); got != 0.9 {
		t.Errorf("leakage floor = %g, want 0.9", got)
	}
}
