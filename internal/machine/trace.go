package machine

import "time"

// SocketStep is one socket's contribution to a StepRecord. All float
// fields carry the engine's exact values (no rounding), so two engines
// producing the same physics agree bit-for-bit under math.Float64bits.
type SocketStep struct {
	// Energy is the exact cumulative energy in joules after the step.
	Energy float64
	// Power is the socket power integrated over the step, in watts.
	Power float64
	// Temperature is the die temperature after the step, in °C.
	Temperature float64
	// Refs is the outstanding-reference count of the step's demand set.
	Refs float64
	// Util is the fraction of plateau bandwidth granted this step.
	Util float64
	// Bandwidth is the total granted bandwidth (bytes/s) of cores still
	// busy after the step, matching Snapshot.Bandwidth.
	Bandwidth float64
	// Boost is the Turbo frequency multiplier applied this step.
	Boost float64
	// FreqScale is the DVFS scale applied this step.
	FreqScale float64
	// RAPLCounter is the raw MSR_PKG_ENERGY_STATUS value after the step
	// (32-bit, 15.3 µJ units, wrapping).
	RAPLCounter uint32
}

// StepRecord is the full post-step state of one engine quantum: the new
// virtual time, the step length, and every socket's integrated physics.
// The differential oracle (internal/refmodel) replays a scenario on a
// naive reference engine and asserts records match bit-for-bit.
type StepRecord struct {
	Now     time.Duration
	Dt      time.Duration
	Sockets []SocketStep
}

// StepHook observes every engine step. It runs on the engine goroutine
// with the machine lock held: it must be fast, must not block, and must
// not call Machine or CoreCtx methods. It owns the record it receives.
type StepHook func(StepRecord)

// SetStepHook installs (or, with nil, removes) the machine's step hook.
// Install it before enrolling workers: the hook is read by the engine
// without further synchronization beyond the machine lock, and steps
// taken before installation are simply unobserved. The steady-state
// engine allocates only while a hook is installed (one record per step).
func (m *Machine) SetStepHook(h StepHook) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stepHook = h
}

// stepRecordLocked assembles the post-step record handed to the step
// hook. Called at the end of advanceLocked, after updateSnapLocked, so
// lastSnap already reflects the completed step.
func (m *Machine) stepRecordLocked(dt time.Duration) StepRecord {
	rec := StepRecord{Now: m.now, Dt: dt, Sockets: make([]SocketStep, m.cfg.Sockets)}
	for sock := range rec.Sockets {
		ls := m.lastSnap.Sockets[sock]
		rec.Sockets[sock] = SocketStep{
			Energy:      m.energy[sock],
			Power:       float64(ls.Power),
			Temperature: float64(ls.Temperature),
			Refs:        ls.OutstandingRefs,
			Util:        ls.BandwidthUtilization,
			Bandwidth:   float64(ls.Bandwidth),
			Boost:       m.stepBoost[sock],
			FreqScale:   m.freqScale[sock],
			RAPLCounter: m.msrFile.PackageEnergyCounter(sock),
		}
	}
	return rec
}
