package machine

import (
	"fmt"
	"time"

	"repro/internal/msr"
)

// CoreCtx is a worker goroutine's handle on the simulated core it has
// enrolled on. All methods must be called from the owning goroutine.
//
// Blocking methods (Execute, Atomic, the waits) panic with Abort when the
// machine is stopped or aborted while the call is in flight; worker loops
// are expected to recover Abort and unwind.
type CoreCtx struct {
	m *Machine
	c *core
}

// ID returns the node-wide core index.
func (x *CoreCtx) ID() int { return x.c.id }

// Socket returns the socket that owns this core.
func (x *CoreCtx) Socket() int { return x.c.socket }

// Machine returns the machine this core belongs to.
func (x *CoreCtx) Machine() *Machine { return x.m }

// block performs the standard transition into a blocked state: setup runs
// under the machine lock with the core still in coreRunning, then the
// engine is released and the call waits for its wakeup.
func (x *CoreCtx) block(setup func(c *core)) wakeMsg {
	m := x.m
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		panic(Abort{Err: ErrStopped})
	}
	if x.c.state != coreRunning {
		state := x.c.state
		m.mu.Unlock()
		panic(fmt.Sprintf("machine: core %d charging call in state %d (concurrent use of CoreCtx?)", x.c.id, state))
	}
	setup(x.c)
	m.indexBlockedLocked(x.c)
	m.running--
	m.engCond.Signal()
	m.mu.Unlock()
	msg := <-x.c.wake
	if msg.abort != nil {
		panic(Abort{Err: msg.abort})
	}
	return msg
}

// Execute charges one work item to the core and blocks until the machine
// has executed it in virtual time. Zero-valued work returns immediately.
func (x *CoreCtx) Execute(w Work) {
	if w.Ops <= 0 && w.Bytes <= 0 {
		return
	}
	if w.Ops < 0 {
		w.Ops = 0
	}
	if w.Bytes < 0 {
		w.Bytes = 0
	}
	if w.Overlap < 0 {
		w.Overlap = 0
	}
	if w.Overlap > 1 {
		w.Overlap = 1
	}
	x.block(func(c *core) {
		c.state = coreBusy
		c.work = w
		c.remOps = w.Ops
		c.remBytes = w.Bytes
	})
}

// Compute charges pure compute cycles.
func (x *CoreCtx) Compute(ops float64) { x.Execute(Work{Ops: ops}) }

// Stream charges pure memory traffic with no compute overlap.
func (x *CoreCtx) Stream(bytes float64) { x.Execute(Work{Bytes: bytes}) }

// Atomic charges n serialized operations on a contended cache line. Cost
// per operation grows with the number of cores concurrently operating on
// the same line (coherence ping-pong).
func (x *CoreCtx) Atomic(line *Line, n float64) {
	if line == nil {
		panic("machine: Atomic on nil line")
	}
	if n <= 0 {
		return
	}
	x.block(func(c *core) {
		c.state = coreAtomic
		c.line = line
		c.remAtomics = n
	})
}

// SpinUntil spins the core (at its current duty cycle, drawing spin power)
// until cond returns true. cond is evaluated by the engine under the
// machine lock: it must be fast, non-blocking, and must not call Machine
// or CoreCtx methods; reading atomics is the intended pattern.
func (x *CoreCtx) SpinUntil(cond func() bool) {
	if cond() {
		return
	}
	x.block(func(c *core) {
		c.state = coreSpinWait
		c.cond = cond
	})
}

// SpinFor spins the core until cond returns true or d of virtual time has
// passed, whichever is first. It reports whether cond was satisfied. This
// is the building block of spin-then-park idle loops.
func (x *CoreCtx) SpinFor(cond func() bool, d time.Duration) bool {
	if cond() {
		return true
	}
	if d <= 0 {
		return false
	}
	deadline := x.m.Now() + d
	msg := x.block(func(c *core) {
		c.state = coreSpinWait
		c.cond = cond
		c.deadline = deadline
	})
	return msg.condMet
}

// IdleUntil parks the core (deep idle, near-zero power) until cond returns
// true. The same restrictions on cond apply as for SpinUntil.
func (x *CoreCtx) IdleUntil(cond func() bool) {
	if cond() {
		return
	}
	x.block(func(c *core) {
		c.state = coreIdleWait
		c.cond = cond
	})
}

// Sleep parks the core for a fixed amount of virtual time.
func (x *CoreCtx) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := x.m.Now() + d
	x.block(func(c *core) {
		c.state = coreIdleWait
		c.deadline = deadline
	})
}

// SetDutyLevel writes the core's clock-modulation register: the core runs
// at level/32 of nominal frequency (level in [1, 32]). This is the
// low-overhead per-core mechanism the paper uses instead of DVFS (§IV).
func (x *CoreCtx) SetDutyLevel(level int) {
	m := x.m
	m.mu.Lock()
	defer m.mu.Unlock()
	enable := level < msr.DutyLevels
	if err := m.msrFile.SetCoreDuty(x.c.id, enable, level); err != nil {
		panic(err) // core id is valid by construction
	}
	d, err := m.msrFile.CoreDuty(x.c.id)
	if err != nil {
		panic(err)
	}
	x.c.duty = d
}

// FullDuty restores the core to full speed.
func (x *CoreCtx) FullDuty() { x.SetDutyLevel(msr.DutyLevels) }

// DutyCycle returns the core's current effective duty cycle.
func (x *CoreCtx) DutyCycle() float64 {
	x.m.mu.Lock()
	defer x.m.mu.Unlock()
	return x.c.duty
}

// Release returns the core to the unowned (deep C-state) pool. The CoreCtx
// must not be used afterwards. Releasing on a stopped machine is a no-op.
func (x *CoreCtx) Release() {
	m := x.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if x.c.state == coreUnowned {
		return
	}
	if x.c.state != coreRunning {
		// Can only happen on misuse from a second goroutine.
		panic(fmt.Sprintf("machine: Release of core %d in state %d", x.c.id, x.c.state))
	}
	if err := m.msrFile.AddCoreCycles(x.c.id, x.c.cycles); err != nil {
		panic(err)
	}
	x.c.cycles = 0
	if err := m.msrFile.SetCoreDuty(x.c.id, false, 0); err != nil {
		panic(err)
	}
	x.c.duty = 1
	x.c.state = coreUnowned
	m.running--
	m.engCond.Signal()
}
