package machine

import (
	"math"
	"testing"
	"time"
)

func TestBoostForCurve(t *testing.T) {
	tp := DefaultTurbo()
	if got := tp.boostFor(0, 8); got != 1 {
		t.Errorf("boost with 0 busy = %g, want 1", got)
	}
	for busy := 1; busy <= 4; busy++ {
		if got := tp.boostFor(busy, 8); got != 1.15 {
			t.Errorf("boost with %d busy = %g, want full 1.15", busy, got)
		}
	}
	if got := tp.boostFor(8, 8); got != 1 {
		t.Errorf("boost with all busy = %g, want 1", got)
	}
	mid := tp.boostFor(6, 8)
	if mid <= 1 || mid >= 1.15 {
		t.Errorf("boost with 6 busy = %g, want between 1 and 1.15", mid)
	}
	// Disabled model never boosts.
	off := TurboParams{}
	if got := off.boostFor(2, 8); got != 1 {
		t.Errorf("disabled boost = %g, want 1", got)
	}
}

func TestTurboDisabledByDefault(t *testing.T) {
	if M620().Turbo.Enabled {
		t.Fatal("M620 preset must have Turbo disabled (the paper's BIOS setting)")
	}
}

func TestTurboSpeedsUpLowOccupancy(t *testing.T) {
	run := func(turbo bool) time.Duration {
		cfg := testConfig()
		if turbo {
			cfg.Turbo = DefaultTurbo()
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Stop()
		var elapsed time.Duration
		runOn(t, m, map[int]func(*CoreCtx){
			0: func(c *CoreCtx) {
				start := m.Now()
				c.Compute(2.7e8)
				elapsed = m.Now() - start
			},
		})
		return elapsed
	}
	base := run(false)
	boosted := run(true)
	ratio := base.Seconds() / boosted.Seconds()
	if math.Abs(ratio-1.15) > 0.01 {
		t.Errorf("single-core turbo speedup = %.3f, want 1.15", ratio)
	}
}

func TestTurboFadesAtFullOccupancy(t *testing.T) {
	cfg := testConfig()
	cfg.Turbo = DefaultTurbo()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	// All 8 cores of socket 0 busy: no boost, so 2.7e8 cycles take 100 ms.
	var elapsed time.Duration
	bodies := map[int]func(*CoreCtx){}
	for i := 0; i < 8; i++ {
		i := i
		bodies[i] = func(c *CoreCtx) {
			start := m.Now()
			c.Compute(2.7e8)
			if i == 0 {
				elapsed = m.Now() - start
			}
		}
	}
	runOn(t, m, bodies)
	if math.Abs(elapsed.Seconds()-0.1) > 0.005 {
		t.Errorf("full-occupancy compute took %v, want ~100 ms (no boost)", elapsed)
	}
}

// TestTurboHurryUpAndFinish reproduces the paper's §I framing: boosting
// frequency draws more power but can lower total energy by finishing
// sooner — the "hurry up and finish" rule of §VI.
func TestTurboHurryUpAndFinish(t *testing.T) {
	run := func(turbo bool) (seconds, joules float64) {
		cfg := testConfig()
		if turbo {
			cfg.Turbo = DefaultTurbo()
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Stop()
		m.WarmAll(68)
		start := m.Now()
		startE := m.TotalEnergy()
		bodies := map[int]func(*CoreCtx){}
		for i := 0; i < 4; i++ { // 2 busy per socket under scatter-like ids
			bodies[i*4] = func(c *CoreCtx) { c.Compute(2.7e9) }
		}
		runOn(t, m, bodies)
		return (m.Now() - start).Seconds(), float64(m.TotalEnergy() - startE)
	}
	baseSec, baseJ := run(false)
	turboSec, turboJ := run(true)
	if turboSec >= baseSec*0.9 {
		t.Errorf("turbo run %.3f s not clearly faster than %.3f s", turboSec, baseSec)
	}
	// Power is higher while boosted...
	if turboJ/turboSec <= baseJ/baseSec {
		t.Errorf("turbo power %.1f W not above base %.1f W", turboJ/turboSec, baseJ/baseSec)
	}
	// ...but the base-power floor amortizes over less time: total energy
	// must not grow by more than a few percent, and typically shrinks.
	if turboJ > baseJ*1.03 {
		t.Errorf("turbo energy %.1f J far above base %.1f J — 'hurry up and finish' broken", turboJ, baseJ)
	}
}

func TestLaptopPreset(t *testing.T) {
	cfg := Laptop()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Laptop preset invalid: %v", err)
	}
	if cfg.Cores() != 4 || cfg.Sockets != 1 {
		t.Errorf("topology = %d sockets x %d cores", cfg.Sockets, cfg.CoresPerSocket)
	}
	if !cfg.Turbo.Enabled {
		t.Error("laptops boost; Turbo should be enabled in the preset")
	}
	cfg.VirtualTimeLimit = 5 * time.Minute
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	m.WarmAll(60)
	start := m.Now()
	startE := m.TotalEnergy()
	bodies := map[int]func(*CoreCtx){}
	for i := 0; i < 4; i++ {
		bodies[i] = func(c *CoreCtx) { c.Compute(2.4e8) } // 100 ms nominal
	}
	runOn(t, m, bodies)
	elapsed := (m.Now() - start).Seconds()
	power := float64(m.TotalEnergy()-startE) / elapsed
	// Full 4-core load on a laptop-class part: tens of watts.
	if power < 20 || power > 45 {
		t.Errorf("laptop full-load power = %.1f W, want 20-45 W", power)
	}
}
