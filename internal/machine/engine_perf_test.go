package machine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// steadyStateLoad enrolls a background mix that keeps the engine stepping
// through every index it maintains: a compute/memory busy core, two cores
// contending one atomic line, and a deadline spinner. It returns a stop
// function that winds the workers down.
func steadyStateLoad(tb testing.TB, m *Machine) (stop func()) {
	tb.Helper()
	var done atomic.Bool
	line := m.NewLine(40, 0.5, 0.85)
	var wg sync.WaitGroup
	bg := func(id int, body func(*CoreCtx)) {
		ctx, err := m.Enroll(id)
		if err != nil {
			tb.Fatalf("Enroll(%d): %v", id, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(Abort); !ok {
						panic(r)
					}
				}
			}()
			defer ctx.Release()
			for !done.Load() {
				body(ctx)
			}
		}()
	}
	// The spin condition is hoisted out of the loop: a fresh closure per
	// SpinFor call escapes into the core and would count as a (worker-side)
	// allocation per iteration.
	spinDone := func() bool { return done.Load() }
	bg(1, func(ctx *CoreCtx) { ctx.Execute(Work{Ops: 2.7e6, Bytes: 1e6, Overlap: 0.5}) })
	bg(2, func(ctx *CoreCtx) { ctx.Atomic(line, 1000) })
	bg(3, func(ctx *CoreCtx) { ctx.Atomic(line, 1000) })
	bg(4, func(ctx *CoreCtx) { ctx.SpinFor(spinDone, time.Millisecond) })
	return func() {
		done.Store(true)
		m.Kick()
		wg.Wait()
	}
}

// TestEngineStepAllocs is the zero-allocation regression gate for the
// engine's steady state: with a busy/atomic/spin mix in flight and a
// ticker firing, charging a long work item (hundreds of MaxStep quanta)
// must not allocate. The old scan-per-step engine allocated several slices
// per quantum, i.e. thousands per run measured here.
func TestEngineStepAllocs(t *testing.T) {
	m := newTestMachine(t)
	if _, err := m.AddTicker(100*time.Microsecond, func(time.Duration, *Snapshot) {}); err != nil {
		t.Fatal(err)
	}
	stop := steadyStateLoad(t, m)
	defer stop()

	fg, err := m.Enroll(0)
	if err != nil {
		t.Fatal(err)
	}
	defer fg.Release()

	// ~1e9 ops at 2.7 GHz is ~370 ms of virtual time = ~370 MaxStep quanta
	// (plus as many ticker fires and background wake/sleep cycles) per
	// measured call. AllocsPerRun's warm-up call grows every scratch
	// buffer, heap and pool to its steady-state size.
	const steps = 370.0
	allocs := testing.AllocsPerRun(5, func() {
		fg.Execute(Work{Ops: 1e9})
	})
	// Tolerate a handful of runtime-internal allocations (sudog cache
	// refills and the like); the engine's own per-step allocations would
	// show up as hundreds per run.
	if allocs > 10 {
		t.Errorf("engine steady state allocates: %.0f allocs per run (%.3f per step), want 0",
			allocs, allocs/steps)
	}
}

// TestTickerCoalescesOvershoot exercises fireTickersLocked's fallback
// directly: if a step somehow lands beyond several deadlines of one
// ticker, the ticker fires once, the skipped deadlines are counted in
// tk.coalesced, and the next deadline is re-armed strictly in the future.
func TestTickerCoalescesOvershoot(t *testing.T) {
	m := newTestMachine(t)
	fires := 0
	id, err := m.AddTicker(10*time.Microsecond, func(time.Duration, *Snapshot) { fires++ })
	if err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	tk := m.tickers[id]
	m.now = 55 * time.Microsecond // 5.5 periods past registration
	m.fireTickersLocked()
	next, coalesced := tk.next, tk.coalesced
	m.mu.Unlock()
	if fires != 1 {
		t.Errorf("ticker fired %d times for one overshot step, want 1", fires)
	}
	if coalesced != 4 {
		t.Errorf("coalesced = %d, want 4 (deadlines at 20..50µs merged into the fire at 10µs)", coalesced)
	}
	if want := 60 * time.Microsecond; next != want {
		t.Errorf("next deadline = %v, want %v", next, want)
	}
}

// TestTickerFiresAdvanceMonotonically checks the planning invariant the
// coalescing fallback backstops: with a ticker period far below MaxStep,
// every fire sees a strictly later virtual time and no deadline is ever
// skipped while work is in flight.
func TestTickerFiresAdvanceMonotonically(t *testing.T) {
	m := newTestMachine(t)
	var mu sync.Mutex
	var fires []time.Duration
	id, err := m.AddTicker(50*time.Microsecond, func(now time.Duration, _ *Snapshot) {
		mu.Lock()
		fires = append(fires, now)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	runOn(t, m, map[int]func(*CoreCtx){
		0: func(ctx *CoreCtx) { ctx.Compute(2.7e6) }, // ~1 ms
	})
	m.RemoveTicker(id)
	mu.Lock()
	defer mu.Unlock()
	if len(fires) < 10 {
		t.Fatalf("got %d fires across ~1ms with a 50µs period, want >= 10", len(fires))
	}
	for i := 1; i < len(fires); i++ {
		if fires[i] <= fires[i-1] {
			t.Fatalf("fire %d at %v not after fire %d at %v", i, fires[i], i-1, fires[i-1])
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, tk := range m.tickers {
		if tk.coalesced != 0 {
			t.Errorf("ticker %d coalesced %d deadlines; planning should bound every step", id, tk.coalesced)
		}
	}
}

// BenchmarkEngineStep measures one engine quantum with a representative
// background mix: the foreground work is sized so each step advances a
// full MaxStep, making ns/op the cost of planning + advancing one step.
func BenchmarkEngineStep(b *testing.B) {
	cfg := testConfig()
	cfg.VirtualTimeLimit = 0 // b.N steps of 1ms each can pass any fixed limit
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Stop()
	stop := steadyStateLoad(b, m)
	defer stop()
	fg, err := m.Enroll(0)
	if err != nil {
		b.Fatal(err)
	}
	defer fg.Release()
	opsPerStep := float64(cfg.BaseFreq) * cfg.MaxStep.Seconds()
	b.ReportAllocs()
	b.ResetTimer()
	fg.Execute(Work{Ops: opsPerStep * float64(b.N)})
}

// BenchmarkChargingCall measures the round-trip of a minimal charging
// call: block, one engine step, wake.
func BenchmarkChargingCall(b *testing.B) {
	cfg := testConfig()
	cfg.VirtualTimeLimit = 0
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Stop()
	fg, err := m.Enroll(0)
	if err != nil {
		b.Fatal(err)
	}
	defer fg.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fg.Compute(1)
	}
}

// BenchmarkMembwAllocate measures one socket's bandwidth allocation for a
// full complement of demanding cores.
func BenchmarkMembwAllocate(b *testing.B) {
	mem := M620().Mem
	demands := make([]float64, 8)
	for i := range demands {
		demands[i] = float64(mem.BandwidthPerSocket) / 4 * float64(i+1) / 8
	}
	var s allocScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mem.allocateInto(demands, &s)
	}
}
