package machine

import "fmt"

// Incrementally-maintained engine indexes. The engine used to rescan
// m.cores several times per step (occupancy, busy demand, atomic groups,
// wait conditions, deadlines); these structures are updated at state
// transitions instead, so each step touches only the cores that matter.
// Every container below is allocation-free in steady state: lists and
// heaps keep their backing arrays, and emptied line groups are pooled.
//
// Ordering rules (docs/engine.md): every core list is kept in ascending
// core-id order so floating-point accumulations (bandwidth demand,
// max-min shares) happen in exactly the order the old full scans used —
// the simulated physics is bit-for-bit unchanged.

// socketIndex is the engine's incremental view of one socket.
type socketIndex struct {
	busy    []*core // coreBusy cores, ascending id
	nAtomic int     // cores in coreAtomic on this socket
}

// occupied returns the Turbo-relevant occupancy (busy + atomic cores).
func (si *socketIndex) occupied() int { return len(si.busy) + si.nAtomic }

// lineGroup is the set of cores currently in coreAtomic on one Line.
// Groups are pooled when they empty so contention churn never allocates.
type lineGroup struct {
	members []*core // ascending id
}

// insertCore inserts c into an id-ordered core list. Lists are bounded by
// the core count, so a linear shift beats any clever structure.
func insertCore(list []*core, c *core) []*core {
	i := len(list)
	for i > 0 && list[i-1].id > c.id {
		i--
	}
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = c
	return list
}

// removeCore removes c from an id-ordered core list, preserving order.
func removeCore(list []*core, c *core) []*core {
	for i, x := range list {
		if x == c {
			copy(list[i:], list[i+1:])
			return list[: len(list)-1 : cap(list)]
		}
	}
	panic(fmt.Sprintf("machine: core %d missing from engine index", c.id))
}

// indexBlockedLocked registers a core that just left coreRunning through a
// charging call. It must run after the core's state fields are set.
func (m *Machine) indexBlockedLocked(c *core) {
	switch c.state {
	case coreBusy:
		si := &m.socks[c.socket]
		si.busy = insertCore(si.busy, c)
		m.totBusy++
	case coreAtomic:
		m.groupAddLocked(c)
		m.socks[c.socket].nAtomic++
		m.totAtomic++
	case coreSpinWait, coreIdleWait:
		if c.cond != nil {
			m.condWaiters = insertCore(m.condWaiters, c)
		}
		if c.deadline > 0 {
			m.dlPushLocked(c)
		}
	}
}

// unindexBlockedLocked removes a blocked core from the engine indexes. It
// must run before the core's state fields are cleared (it keys off state,
// line, cond and deadline).
func (m *Machine) unindexBlockedLocked(c *core) {
	switch c.state {
	case coreBusy:
		si := &m.socks[c.socket]
		si.busy = removeCore(si.busy, c)
		m.totBusy--
	case coreAtomic:
		m.groupRemoveLocked(c)
		m.socks[c.socket].nAtomic--
		m.totAtomic--
	case coreSpinWait, coreIdleWait:
		if c.cond != nil {
			m.condWaiters = removeCore(m.condWaiters, c)
		}
		if c.dlIdx >= 0 {
			m.dlRemoveLocked(c)
		}
	}
}

// groupAddLocked adds a core to its line's contention group.
func (m *Machine) groupAddLocked(c *core) {
	g := m.lineGroups[c.line]
	if g == nil {
		if n := len(m.groupPool); n > 0 {
			g = m.groupPool[n-1]
			m.groupPool = m.groupPool[:n-1]
		} else {
			g = &lineGroup{}
		}
		m.lineGroups[c.line] = g
	}
	g.members = insertCore(g.members, c)
}

// groupRemoveLocked removes a core from its line's contention group,
// recycling the group when it empties.
func (m *Machine) groupRemoveLocked(c *core) {
	g := m.lineGroups[c.line]
	if g == nil {
		panic(fmt.Sprintf("machine: core %d has no line group", c.id))
	}
	g.members = removeCore(g.members, c)
	if len(g.members) == 0 {
		delete(m.lineGroups, c.line)
		m.groupPool = append(m.groupPool, g)
	}
}

// Deadline heap: a min-heap over cores in a wait state with a non-zero
// virtual-time deadline, keyed by deadline. c.dlIdx tracks the core's
// position (-1 when absent) so wakes remove in O(log n).

func (m *Machine) dlPushLocked(c *core) {
	c.dlIdx = len(m.dlHeap)
	m.dlHeap = append(m.dlHeap, c)
	m.dlUp(c.dlIdx)
}

func (m *Machine) dlRemoveLocked(c *core) {
	i := c.dlIdx
	last := len(m.dlHeap) - 1
	m.dlHeap[i] = m.dlHeap[last]
	m.dlHeap[i].dlIdx = i
	m.dlHeap[last] = nil
	m.dlHeap = m.dlHeap[:last]
	c.dlIdx = -1
	if i < last {
		m.dlDown(i)
		m.dlUp(i)
	}
}

func (m *Machine) dlUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if m.dlHeap[p].deadline <= m.dlHeap[i].deadline {
			break
		}
		m.dlSwap(p, i)
		i = p
	}
}

func (m *Machine) dlDown(i int) {
	n := len(m.dlHeap)
	for {
		l, r, min := 2*i+1, 2*i+2, i
		if l < n && m.dlHeap[l].deadline < m.dlHeap[min].deadline {
			min = l
		}
		if r < n && m.dlHeap[r].deadline < m.dlHeap[min].deadline {
			min = r
		}
		if min == i {
			return
		}
		m.dlSwap(min, i)
		i = min
	}
}

func (m *Machine) dlSwap(i, j int) {
	m.dlHeap[i], m.dlHeap[j] = m.dlHeap[j], m.dlHeap[i]
	m.dlHeap[i].dlIdx = i
	m.dlHeap[j].dlIdx = j
}

// Ticker heap: a min-heap over registered tickers keyed by their next
// virtual-time deadline. tk.heapIdx tracks position for RemoveTicker.

func (m *Machine) tkPushLocked(tk *ticker) {
	tk.heapIdx = len(m.tickerHeap)
	m.tickerHeap = append(m.tickerHeap, tk)
	m.tkUp(tk.heapIdx)
}

func (m *Machine) tkRemoveLocked(tk *ticker) {
	i := tk.heapIdx
	last := len(m.tickerHeap) - 1
	m.tickerHeap[i] = m.tickerHeap[last]
	m.tickerHeap[i].heapIdx = i
	m.tickerHeap[last] = nil
	m.tickerHeap = m.tickerHeap[:last]
	tk.heapIdx = -1
	if i < last {
		m.tkDown(i)
		m.tkUp(i)
	}
}

// tkFixLocked restores heap order after the root ticker's next deadline
// advanced (the common re-arm after a fire).
func (m *Machine) tkFixLocked(i int) { m.tkDown(i); m.tkUp(i) }

func (m *Machine) tkUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if m.tickerHeap[p].next <= m.tickerHeap[i].next {
			break
		}
		m.tkSwap(p, i)
		i = p
	}
}

func (m *Machine) tkDown(i int) {
	n := len(m.tickerHeap)
	for {
		l, r, min := 2*i+1, 2*i+2, i
		if l < n && m.tickerHeap[l].next < m.tickerHeap[min].next {
			min = l
		}
		if r < n && m.tickerHeap[r].next < m.tickerHeap[min].next {
			min = r
		}
		if min == i {
			return
		}
		m.tkSwap(min, i)
		i = min
	}
}

func (m *Machine) tkSwap(i, j int) {
	m.tickerHeap[i], m.tickerHeap[j] = m.tickerHeap[j], m.tickerHeap[i]
	m.tickerHeap[i].heapIdx = i
	m.tickerHeap[j].heapIdx = j
}
