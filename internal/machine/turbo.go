package machine

// Turbo Boost model. The paper's platform disables Turbo in the BIOS
// (§II) so all its measurements run at nominal frequency, but §I frames
// Turbo as one of the hardware levers in the energy/performance
// trade-off: "Increasing frequency, e.g., using Intel's Turbo Boost ...
// can save energy by completing the problem faster (but typically
// drawing higher power)." This model makes that lever available:
// per-socket opportunistic frequency boost that decays with the number
// of busy cores, with dynamic power following f·V² like the DVFS model.

// TurboParams configure opportunistic boost. The zero value disables it,
// matching the paper's BIOS setting.
type TurboParams struct {
	// Enabled turns the model on.
	Enabled bool
	// MaxBoost is the frequency multiplier with at most FullBoostCores
	// busy (e.g. 1.15 for a 2.7 GHz part boosting to ~3.1 GHz).
	MaxBoost float64
	// FullBoostCores is the busy-core count at or below which MaxBoost
	// applies; above it the boost decays linearly to 1.0 with every core
	// busy.
	FullBoostCores int
}

// DefaultTurbo returns E5-2680-like boost parameters (3.5 GHz single
// core to 3.1 GHz all-but-idle on a 2.7 GHz base is roughly +15% in the
// regime we model).
func DefaultTurbo() TurboParams {
	return TurboParams{Enabled: true, MaxBoost: 1.15, FullBoostCores: 4}
}

// boostFor returns the frequency multiplier for a socket with the given
// number of busy cores (of coresPerSocket).
func (tp TurboParams) boostFor(busy, coresPerSocket int) float64 {
	if !tp.Enabled || tp.MaxBoost <= 1 || busy == 0 {
		return 1
	}
	if busy <= tp.FullBoostCores {
		return tp.MaxBoost
	}
	if busy >= coresPerSocket {
		return 1
	}
	// Linear decay from MaxBoost at FullBoostCores to 1.0 at all cores.
	span := float64(coresPerSocket - tp.FullBoostCores)
	frac := float64(busy-tp.FullBoostCores) / span
	return tp.MaxBoost - (tp.MaxBoost-1)*frac
}
