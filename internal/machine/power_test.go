package machine

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestCorePowerStates(t *testing.T) {
	p := M620().Power
	if got := p.corePower(coreUnowned, 1, 1, 0); got != p.CoreUnowned {
		t.Errorf("unowned power = %v, want %v", got, p.CoreUnowned)
	}
	if got := p.corePower(coreIdleWait, 1, 1, 0); got != p.CoreParked {
		t.Errorf("parked power = %v, want %v", got, p.CoreParked)
	}
	if got := p.corePower(coreSpinWait, 1, 1, 0); got != p.CoreSpin {
		t.Errorf("full-duty spin power = %v, want %v", got, p.CoreSpin)
	}
	if got := p.corePower(coreBusy, 1, 1, 1); math.Abs(float64(got-p.CoreActive)) > 1e-9 {
		t.Errorf("fully active power = %v, want %v", got, p.CoreActive)
	}
	if got := p.corePower(coreBusy, 1, 1, 0); got != p.CoreStall {
		t.Errorf("fully stalled power = %v, want %v", got, p.CoreStall)
	}
}

func TestSpinPowerScalesWithDuty(t *testing.T) {
	p := M620().Power
	full := p.corePower(coreSpinWait, 1, 1, 0)
	throttled := p.corePower(coreSpinWait, 1.0/32, 1, 0)
	// The paper: each throttled spinning thread saves about 3 W (§IV).
	saving := float64(full - throttled)
	if saving < 2.5 || saving > 4 {
		t.Errorf("throttled spin saving = %.2f W, want ~3 W", saving)
	}
}

func TestCorePowerClampsActiveFrac(t *testing.T) {
	p := M620().Power
	if got := p.corePower(coreBusy, 1, 1, 2); math.Abs(float64(got-p.CoreActive)) > 1e-9 {
		t.Errorf("activeFrac > 1 power = %v, want clamp at %v", got, p.CoreActive)
	}
	if got := p.corePower(coreBusy, 1, 1, -1); got != p.CoreStall {
		t.Errorf("activeFrac < 0 power = %v, want clamp at %v", got, p.CoreStall)
	}
}

// TestComputeBoundNodePower checks the headline calibration: 16 fully
// active cores on two sockets draw ~150 W, in the paper's observed range
// for compute-bound applications (§II-C.2: most apps 120–145 W, top
// around 158 W).
func TestComputeBoundNodePower(t *testing.T) {
	p := M620().Power
	perSocket := p.PredictSocketPower(8, 1, 0, 0, 0, 0, 0.1)
	node := 2 * float64(perSocket)
	if node < 145 || node > 160 {
		t.Errorf("compute-bound node power = %.1f W, want ~150 W", node)
	}
}

// TestMemoryBoundNodePower checks the low-power end: a mergesort-like
// profile (2 effective memory-stalled workers, the rest parked) lands in
// the ~60 W regime the paper reports.
func TestMemoryBoundNodePower(t *testing.T) {
	p := M620().Power
	// Socket 0: two busy cores almost fully stalled, 6 parked.
	s0 := p.PredictSocketPower(2, 0.08, 0, 0, 6, 0, 1.0)
	// Socket 1: all 8 parked.
	s1 := p.PredictSocketPower(0, 0, 0, 0, 8, 0, 0)
	node := float64(s0 + s1)
	if node < 52 || node > 72 {
		t.Errorf("memory-bound node power = %.1f W, want ~60 W", node)
	}
}

// TestThrottleFourThreadsSavings reproduces the paper's §IV observation:
// idling four threads via duty-cycle modulation saves over 12 W
// (134 W vs 147 W in their example).
func TestThrottleFourThreadsSavings(t *testing.T) {
	p := M620().Power
	// 16 active vs 12 active + 4 throttled spinners (duty 1/32).
	full := 2 * p.PredictSocketPower(8, 1, 0, 0, 0, 0, 0.3)
	throttled := p.PredictSocketPower(8, 1, 0, 0, 0, 0, 0.3) +
		p.PredictSocketPower(4, 1, 4, 1.0/32, 0, 0, 0.3)
	saving := float64(full - throttled)
	if saving < 10 || saving > 15 {
		t.Errorf("4-thread throttle saving = %.1f W, want ~12 W", saving)
	}
}

// TestParkedVsThrottledSavings reproduces Table IV's margin: OS-parking
// four threads (fixed 12) saves ~10 W more than throttled spinning.
func TestParkedVsThrottledSavings(t *testing.T) {
	p := M620().Power
	throttledSpin := 4 * float64(p.corePower(coreSpinWait, 1.0/32, 1, 0))
	parked := 4 * float64(p.CoreParked)
	saving := throttledSpin - parked
	if saving < 7 || saving > 13 {
		t.Errorf("parked-vs-throttled saving = %.1f W, want ~10 W", saving)
	}
}

func TestActiveFracForPowerInverts(t *testing.T) {
	p := M620().Power
	for _, af := range []float64{0, 0.25, 0.5, 0.75, 1} {
		target := p.PredictSocketPower(8, af, 0, 0, 0, 0, 0.2)
		got := p.ActiveFracForPower(target, 8, 0, 0, 0.2)
		if math.Abs(got-af) > 1e-9 {
			t.Errorf("ActiveFracForPower inverse = %g, want %g", got, af)
		}
	}
}

func TestActiveFracForPowerClamps(t *testing.T) {
	p := M620().Power
	if got := p.ActiveFracForPower(units.Watts(1e6), 8, 0, 0, 0); got != 1 {
		t.Errorf("huge target activeFrac = %g, want 1", got)
	}
	if got := p.ActiveFracForPower(0, 8, 0, 0, 0); got != 0 {
		t.Errorf("zero target activeFrac = %g, want 0", got)
	}
	if got := p.ActiveFracForPower(100, 0, 0, 0, 0); got != 0 {
		t.Errorf("no busy cores activeFrac = %g, want 0", got)
	}
}

func TestPredictSocketPowerBandwidthClamped(t *testing.T) {
	p := M620().Power
	hi := p.PredictSocketPower(0, 0, 0, 0, 0, 8, 5)  // util > 1
	lo := p.PredictSocketPower(0, 0, 0, 0, 0, 8, -1) // util < 0
	if math.Abs(float64(hi-lo-p.BandwidthMax)) > 1e-9 {
		t.Errorf("bw term = %v, want exactly BandwidthMax %v", hi-lo, p.BandwidthMax)
	}
}
