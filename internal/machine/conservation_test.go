package machine

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

// TestEnergyEqualsPowerIntegral checks the engine's core conservation
// law on randomized load shapes: the energy accumulated by the exact
// accounting equals the RAPL counters (within quantization), and average
// power stays within the physical envelope of the model.
func TestEnergyEqualsPowerIntegral(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer m.Stop()

		before := make([]uint32, 2)
		for s := range before {
			before[s] = m.MSR().PackageEnergyCounter(s)
		}
		start := m.Now()

		nCores := 1 + rng.Intn(16)
		var wg sync.WaitGroup
		for i := 0; i < nCores; i++ {
			ctx, err := m.Enroll(i)
			if err != nil {
				t.Fatal(err)
			}
			kind := rng.Intn(3)
			ops := 1e6 * float64(1+rng.Intn(200))
			bytes := 1e5 * float64(rng.Intn(2000))
			wg.Add(1)
			go func(ctx *CoreCtx, kind int, ops, bytes float64) {
				defer wg.Done()
				defer ctx.Release()
				switch kind {
				case 0:
					ctx.Compute(ops)
				case 1:
					ctx.Execute(Work{Ops: ops, Bytes: bytes, Overlap: 0.5})
				default:
					ctx.Sleep(time.Duration(ops/2.7e9*1e9) * time.Nanosecond)
				}
			}(ctx, kind, ops, bytes)
		}
		wg.Wait()

		elapsed := m.Now() - start
		if elapsed <= 0 {
			return true // nothing ran long enough to measure
		}
		var counted units.Joules
		for s := range before {
			counted += units.RAPLDelta(before[s], m.MSR().PackageEnergyCounter(s))
		}
		exact := m.TotalEnergy()
		if math.Abs(float64(counted-exact)) > 0.01*float64(exact)+0.001 {
			t.Logf("seed %d: counters %v vs exact %v", seed, counted, exact)
			return false
		}
		// Physical envelope: between all-idle and all-out power.
		avg := float64(exact) / elapsed.Seconds()
		cfg := m.Config()
		min := 2 * float64(cfg.Power.UncoreBase) * 0.9
		max := 2 * float64(cfg.Power.PredictSocketPower(8, 1, 0, 0, 0, 0, 1)) * 1.1
		if avg < min || avg > max {
			t.Logf("seed %d: average power %.1f W outside [%.1f, %.1f]", seed, avg, min, max)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestWorkProportionality checks that splitting one work item into many
// chunks takes the same virtual time (no per-call discount or surcharge
// beyond rounding).
func TestWorkProportionality(t *testing.T) {
	run := func(chunks int) time.Duration {
		m := newTestMachine(t)
		defer m.Stop()
		var elapsed time.Duration
		runOn(t, m, map[int]func(*CoreCtx){
			0: func(c *CoreCtx) {
				start := m.Now()
				for i := 0; i < chunks; i++ {
					c.Execute(Work{Ops: 2.7e8 / float64(chunks), Bytes: 1e8 / float64(chunks)})
				}
				elapsed = m.Now() - start
			},
		})
		return elapsed
	}
	one := run(1)
	many := run(64)
	if math.Abs(one.Seconds()-many.Seconds())/one.Seconds() > 0.01 {
		t.Errorf("1 chunk: %v, 64 chunks: %v — charging is not linear", one, many)
	}
}

// TestAtomicThroughputDegradesMonotonically checks the contended-line
// model: total completion time for a fixed op budget never improves as
// contenders are added.
func TestAtomicThroughputDegradesMonotonically(t *testing.T) {
	const totalOps = 5.4e5 // 100 cycles each => 20 ms serial
	timeFor := func(k int) float64 {
		m := newTestMachine(t)
		defer m.Stop()
		line := m.NewLine(100, 0.3, 0.85)
		start := m.Now()
		bodies := map[int]func(*CoreCtx){}
		for i := 0; i < k; i++ {
			bodies[i] = func(c *CoreCtx) { c.Atomic(line, totalOps/float64(k)) }
		}
		runOn(t, m, bodies)
		return (m.Now() - start).Seconds()
	}
	prev := 0.0
	for _, k := range []int{1, 2, 4, 8, 16} {
		cur := timeFor(k)
		if cur < prev*0.99 {
			t.Errorf("contention model not monotone: %d contenders took %.4fs after %.4fs", k, cur, prev)
		}
		prev = cur
	}
}

// TestBandwidthConservationUnderChurn drives random arrivals/departures
// of streaming cores and checks the socket never exceeds its plateau
// bandwidth over any run.
func TestBandwidthConservationUnderChurn(t *testing.T) {
	m := newTestMachine(t)
	mem := m.Config().Mem
	totalBytes := 0.0
	var mu sync.Mutex
	start := m.Now()
	bodies := map[int]func(*CoreCtx){}
	// Draw each core's arrival delay and volume up front: the bodies run
	// on concurrent goroutines and math/rand.Rand is not safe for shared
	// use.
	rng := rand.New(rand.NewSource(7))
	perCore := make([]float64, 8)
	for i := 0; i < 8; i++ {
		perCore[i] = float64(1+rng.Intn(20)) * 1e8
	}
	delay := make([]time.Duration, 8)
	for i := 0; i < 8; i++ {
		delay[i] = time.Duration(rng.Intn(10)) * time.Millisecond
	}
	for i := 0; i < 8; i++ {
		i := i
		bodies[i] = func(c *CoreCtx) {
			c.Sleep(delay[i])
			c.Stream(perCore[i])
			mu.Lock()
			totalBytes += perCore[i]
			mu.Unlock()
		}
	}
	runOn(t, m, bodies)
	elapsed := (m.Now() - start).Seconds()
	if rate := totalBytes / elapsed; rate > float64(mem.BandwidthPerSocket)*1.01 {
		t.Errorf("socket 0 moved %.2f GB/s, plateau is %v", rate/1e9, mem.BandwidthPerSocket)
	}
}

// TestDutyCycleComposesWithDVFS checks the two rate knobs multiply.
func TestDutyCycleComposesWithDVFS(t *testing.T) {
	m := newTestMachine(t)
	if err := m.RequestFrequencyScale(0, 0.5); err != nil {
		t.Fatal(err)
	}
	var elapsed time.Duration
	runOn(t, m, map[int]func(*CoreCtx){
		0: func(c *CoreCtx) {
			c.SetDutyLevel(16) // 1/2 duty
			start := m.Now()
			c.Compute(2.7e8) // 100 ms at full speed
			elapsed = m.Now() - start
			c.FullDuty()
		},
	})
	// 0.5 duty × 0.5 frequency = 4x slowdown.
	if math.Abs(elapsed.Seconds()-0.4) > 0.01 {
		t.Errorf("duty 1/2 × dvfs 1/2 took %v, want ~400 ms", elapsed)
	}
}
