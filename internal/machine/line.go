package machine

import "fmt"

// Line models one contended cache line (a shared counter, a lock word, a
// work-queue head). Atomic operations on a line are serialized across all
// cores currently operating on it, and each operation's cost grows with
// the number of contenders: cost = costCycles × (1 + pingpong × (k−1)).
//
// This is what makes naively parallelized reductions slower at high
// thread counts than serially (paper §II-C.4: 16-thread reduction took
// 3.2× the serial time).
type Line struct {
	costCycles float64
	pingpong   float64
	activity   float64
}

// NewLine creates a contended-line model. costCycles is the uncontended
// cost of one atomic operation in cycles; pingpong is the fractional cost
// growth per additional contender; activity is the power-relevant
// instruction density while a core operates on the line (coherence
// ping-pong on a hot counter keeps the pipeline busy, ~0.85, while
// latency-bound lock/allocator traffic idles it, ~0.35).
func (m *Machine) NewLine(costCycles, pingpong, activity float64) *Line {
	if costCycles <= 0 {
		panic(fmt.Sprintf("machine: NewLine costCycles = %g, must be positive", costCycles))
	}
	if pingpong < 0 {
		panic(fmt.Sprintf("machine: NewLine pingpong = %g, must be non-negative", pingpong))
	}
	if activity < 0 || activity > 1 {
		panic(fmt.Sprintf("machine: NewLine activity = %g, must be in [0,1]", activity))
	}
	return &Line{costCycles: costCycles, pingpong: pingpong, activity: activity}
}
