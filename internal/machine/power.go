package machine

import "repro/internal/units"

// corePower returns the power draw of one core.
//
//	state          power
//	unowned        CoreUnowned (deep C-state)
//	parked         CoreParked (mwait)
//	spinning       CoreSpinFloor + (CoreSpin−CoreSpinFloor) × duty × g(fs)
//	busy/atomic    CoreStall + (CoreActive−CoreStall) × duty × activeFrac × g(fs)
//
// activeFrac is the fraction of cycles the core retires work rather than
// stalling; for workloads that overlap memory traffic with computation it
// includes the overlap credit (paper §II-C.2: overlapping algorithms need
// more peak power). fs is the socket's DVFS frequency scale; the dynamic
// (above-floor) power scales with g(fs) = f·V(f)² while the static floor
// does not.
func (p PowerParams) corePower(st coreState, duty, fs, activeFrac float64) units.Watts {
	switch st {
	case coreUnowned:
		return p.CoreUnowned
	case coreIdleWait:
		return p.CoreParked
	case coreSpinWait:
		return p.CoreSpinFloor + (p.CoreSpin-p.CoreSpinFloor)*units.Watts(duty*dvfsPowerFactor(fs))
	case coreBusy, coreAtomic:
		if activeFrac < 0 {
			activeFrac = 0
		}
		if activeFrac > 1 {
			activeFrac = 1
		}
		return p.CoreStall + (p.CoreActive-p.CoreStall)*units.Watts(duty*activeFrac*dvfsPowerFactor(fs))
	case coreRunning:
		// Host-side execution is instantaneous in virtual time; a core in
		// this state never accumulates energy, but give it a sensible
		// value for instantaneous queries.
		return p.CoreStall
	default:
		return p.CoreUnowned
	}
}

// PredictSocketPower computes the steady-state power of one socket from an
// aggregate description of its cores. It exists so that the compiler
// package can invert the power model during workload calibration and so
// tests can cross-check the engine's integration. bwUtilization is in
// [0, 1].
func (p PowerParams) PredictSocketPower(nBusy int, activeFrac float64, nSpin int, spinDuty float64, nParked, nUnowned int, bwUtilization float64) units.Watts {
	w := p.UncoreBase
	w += units.Watts(nBusy) * p.corePower(coreBusy, 1, 1, activeFrac)
	w += units.Watts(nSpin) * p.corePower(coreSpinWait, spinDuty, 1, 0)
	w += units.Watts(nParked) * p.CoreParked
	w += units.Watts(nUnowned) * p.CoreUnowned
	if bwUtilization < 0 {
		bwUtilization = 0
	}
	if bwUtilization > 1 {
		bwUtilization = 1
	}
	w += p.BandwidthMax * units.Watts(bwUtilization)
	return w
}

// ActiveFracForPower inverts PredictSocketPower for the busy-core activity
// fraction: given a target socket power with nBusy busy cores, nParked
// parked cores, nUnowned unowned cores and a bandwidth utilization, it
// returns the activeFrac in [0, 1] that produces the target. Used by the
// workload calibrator to translate the paper's measured watts into an
// instruction-mix parameter. The result is clamped to [0, 1].
func (p PowerParams) ActiveFracForPower(target units.Watts, nBusy, nParked, nUnowned int, bwUtilization float64) float64 {
	if nBusy <= 0 {
		return 0
	}
	base := p.PredictSocketPower(nBusy, 0, 0, 0, nParked, nUnowned, bwUtilization)
	perCore := p.CoreActive - p.CoreStall
	if perCore <= 0 {
		return 0
	}
	f := float64(target-base) / (float64(nBusy) * float64(perCore))
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
