package machine

// Memory bandwidth allocation: per engine step, every core stalled on (or
// streaming from) memory declares a bandwidth demand in bytes/second, and
// the socket's capacity is divided among them max-min fairly. Beyond the
// outstanding-references knee the total achievable bandwidth plateaus and
// the effective capacity degrades slightly, modeling worsening latency
// (Mandel et al., ISPASS 2010).

// MaxMinFair allocates capacity among the given demands using the
// water-filling algorithm. The returned slice is aligned with demands.
//
// Invariants (enforced by property tests):
//   - alloc[i] <= demands[i]
//   - sum(alloc) <= capacity (+ float slop)
//   - a demand at or below its fair share is fully satisfied
//   - unsatisfied demands all receive the same share
//
// Negative demands are treated as zero.
func MaxMinFair(demands []float64, capacity float64) []float64 {
	alloc := make([]float64, len(demands))
	maxMinFairInto(demands, alloc, make([]bool, len(demands)), capacity)
	return alloc
}

// maxMinFairInto is MaxMinFair writing into caller-owned buffers: alloc
// and satisfied must be len(demands). It is the engine's allocation-free
// hot path; the arithmetic (and its order) is exactly MaxMinFair's.
func maxMinFairInto(demands, alloc []float64, satisfied []bool, capacity float64) {
	for i := range alloc {
		alloc[i] = 0
	}
	if capacity <= 0 || len(demands) == 0 {
		return
	}
	remaining := capacity
	unsat := 0
	for i, d := range demands {
		if d <= 0 {
			satisfied[i] = true
		} else {
			satisfied[i] = false
			unsat++
		}
	}
	// Each round, grant every unsatisfied demand its equal share of the
	// remaining capacity; demands below the share are fully satisfied and
	// return their slack to the pool. At least one demand is satisfied per
	// round, so this terminates in at most len(demands) rounds.
	for unsat > 0 && remaining > 0 {
		share := remaining / float64(unsat)
		progressed := false
		for i, d := range demands {
			if satisfied[i] {
				continue
			}
			if d <= share {
				alloc[i] = d
				remaining -= d
				satisfied[i] = true
				unsat--
				progressed = true
			}
		}
		if !progressed {
			// Every remaining demand exceeds the share: split evenly.
			for i := range demands {
				if !satisfied[i] {
					alloc[i] = share
				}
			}
			remaining = 0
		}
	}
}

// EffectiveCapacity returns the socket's usable bandwidth given the total
// outstanding references implied by the demand set. At or below the knee
// the full plateau bandwidth is available; beyond it, capacity degrades by
// OversubPenalty per unit of relative oversubscription. It is exported
// for calibration code that needs the oversubscription-degraded socket
// bandwidth.
func (m MemParams) EffectiveCapacity(outstandingRefs float64) float64 {
	c := float64(m.BandwidthPerSocket)
	knee := float64(m.KneeRefs)
	if outstandingRefs <= knee || knee <= 0 {
		return c
	}
	over := outstandingRefs/knee - 1
	return c / (1 + m.OversubPenalty*over)
}

// outstandingRefs converts a set of bandwidth demands into the number of
// reference streams they represent, with each core capped at
// MaxRefsPerCore.
func (m MemParams) outstandingRefs(demands []float64) float64 {
	perRef := float64(m.PerRefBandwidth())
	if perRef <= 0 {
		return 0
	}
	total := 0.0
	cap := float64(m.MaxRefsPerCore)
	for _, d := range demands {
		if d <= 0 {
			continue
		}
		refs := d / perRef
		if refs > cap {
			refs = cap
		}
		total += refs
	}
	return total
}

// allocScratch holds the per-call working slices of allocateInto so the
// engine's per-step allocations can reuse one buffer set. Owned by the
// engine goroutine; see docs/engine.md for the ownership rules.
type allocScratch struct {
	capped    []float64
	grants    []float64
	satisfied []bool
}

// grow sizes the scratch for n demands, reusing backing arrays when they
// are already large enough.
func (s *allocScratch) grow(n int) {
	if cap(s.capped) < n {
		s.capped = make([]float64, n)
		s.grants = make([]float64, n)
		s.satisfied = make([]bool, n)
	}
	s.capped = s.capped[:n]
	s.grants = s.grants[:n]
	s.satisfied = s.satisfied[:n]
}

// allocate runs the full per-socket allocation: cap each demand at the
// per-core limit, derive outstanding references, degrade capacity if
// oversubscribed, and split max-min fairly. It returns the grants, the
// outstanding-reference count, and the utilization of the plateau
// bandwidth in [0, 1].
func (m MemParams) allocate(demands []float64) (grants []float64, refs float64, utilization float64) {
	var s allocScratch
	return m.allocateInto(demands, &s)
}

// allocateInto is allocate writing into reusable scratch buffers: the
// engine's zero-allocation hot path. The returned grants slice aliases
// the scratch and is only valid until the next call with the same
// scratch.
func (m MemParams) allocateInto(demands []float64, s *allocScratch) (grants []float64, refs float64, utilization float64) {
	s.grow(len(demands))
	coreCap := float64(m.MaxCoreBandwidth())
	for i, d := range demands {
		if d < 0 {
			d = 0
		}
		if d > coreCap {
			d = coreCap
		}
		s.capped[i] = d
	}
	refs = m.outstandingRefs(s.capped)
	maxMinFairInto(s.capped, s.grants, s.satisfied, m.EffectiveCapacity(refs))
	grants = s.grants
	total := 0.0
	for _, g := range grants {
		total += g
	}
	if c := float64(m.BandwidthPerSocket); c > 0 {
		utilization = total / c
		if utilization > 1 {
			utilization = 1
		}
	}
	return grants, refs, utilization
}
