package machine

import (
	"math"
	"testing"
	"time"
)

func TestFrequencyScaleSlowsCompute(t *testing.T) {
	m := newTestMachine(t)
	var full, scaled time.Duration
	runOn(t, m, map[int]func(*CoreCtx){
		0: func(c *CoreCtx) {
			start := m.Now()
			c.Compute(2.7e8)
			full = m.Now() - start

			if err := m.RequestFrequencyScale(0, 0.5); err != nil {
				t.Error(err)
			}
			start = m.Now()
			c.Compute(2.7e8)
			scaled = m.Now() - start
			if err := m.RequestFrequencyScale(0, 1); err != nil {
				t.Error(err)
			}
		},
	})
	ratio := scaled.Seconds() / full.Seconds()
	if math.Abs(ratio-2) > 0.05 {
		t.Errorf("half-frequency slowdown = %.2fx, want 2x", ratio)
	}
}

func TestFrequencyScaleIsPerSocket(t *testing.T) {
	m := newTestMachine(t)
	if err := m.RequestFrequencyScale(0, 0.5); err != nil {
		t.Fatal(err)
	}
	var s0, s1 time.Duration
	runOn(t, m, map[int]func(*CoreCtx){
		0: func(c *CoreCtx) { // socket 0: scaled
			start := m.Now()
			c.Compute(2.7e8)
			s0 = m.Now() - start
		},
		8: func(c *CoreCtx) { // socket 1: full speed
			start := m.Now()
			c.Compute(2.7e8)
			s1 = m.Now() - start
		},
	})
	if ratio := s0.Seconds() / s1.Seconds(); math.Abs(ratio-2) > 0.1 {
		t.Errorf("socket isolation broken: s0/s1 = %.2f, want 2", ratio)
	}
	if got := m.FrequencyScale(0); got != 0.5 {
		t.Errorf("FrequencyScale(0) = %g", got)
	}
	if got := m.FrequencyScale(1); got != 1 {
		t.Errorf("FrequencyScale(1) = %g", got)
	}
}

func TestFrequencyScaleClamps(t *testing.T) {
	m := newTestMachine(t)
	if err := m.RequestFrequencyScale(0, 0.01); err != nil {
		t.Fatal(err)
	}
	// Force the engine to apply the request.
	runOn(t, m, map[int]func(*CoreCtx){0: func(c *CoreCtx) { c.Compute(1e6) }})
	if got := m.FrequencyScale(0); got != MinFrequencyScale {
		t.Errorf("scale clamped to %g, want %g", got, MinFrequencyScale)
	}
	if err := m.RequestFrequencyScale(0, 5); err != nil {
		t.Fatal(err)
	}
	runOn(t, m, map[int]func(*CoreCtx){0: func(c *CoreCtx) { c.Compute(1e6) }})
	if got := m.FrequencyScale(0); got != 1 {
		t.Errorf("scale clamped to %g, want 1", got)
	}
	if err := m.RequestFrequencyScale(9, 1); err == nil {
		t.Error("bad socket accepted")
	}
}

func TestDVFSPowerFactor(t *testing.T) {
	if got := dvfsPowerFactor(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("factor at full speed = %g, want 1", got)
	}
	// Cubic-ish: at half frequency, power falls well below half.
	if got := dvfsPowerFactor(0.5); got >= 0.5 || got < 0.2 {
		t.Errorf("factor at half speed = %g, want in [0.2, 0.5)", got)
	}
	// Monotone increasing.
	prev := 0.0
	for fs := MinFrequencyScale; fs <= 1.0; fs += 0.05 {
		f := dvfsPowerFactor(fs)
		if f <= prev {
			t.Fatalf("factor not monotone at %g", fs)
		}
		prev = f
	}
}

func TestDVFSSavesPowerButCostsTime(t *testing.T) {
	// The energy trade-off the paper discusses: halving frequency cuts
	// power superlinearly but doubles compute time.
	energyAt := func(scale float64) (joules, seconds float64) {
		m := newTestMachine(t)
		defer m.Stop()
		m.WarmAll(68)
		if err := m.RequestFrequencyScale(0, scale); err != nil {
			t.Fatal(err)
		}
		start := m.Now()
		startE := m.TotalEnergy()
		bodies := map[int]func(*CoreCtx){}
		for i := 0; i < 8; i++ {
			bodies[i] = func(c *CoreCtx) { c.Compute(2.7e8) }
		}
		runOn(t, m, bodies)
		return float64(m.TotalEnergy() - startE), (m.Now() - start).Seconds()
	}
	eFull, tFull := energyAt(1)
	eHalf, tHalf := energyAt(0.5)
	if tHalf < tFull*1.8 {
		t.Errorf("half-speed run only %.2fx slower", tHalf/tFull)
	}
	pFull, pHalf := eFull/tFull, eHalf/tHalf
	if pHalf >= pFull {
		t.Errorf("half-speed power %.1f W >= full-speed %.1f W", pHalf, pFull)
	}
}
