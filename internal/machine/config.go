// Package machine simulates the two-socket Intel Sandybridge node the
// paper measures: cores with per-core duty-cycle (clock modulation)
// control, a shared memory subsystem with an outstanding-references
// bandwidth model, an analytic power model feeding RAPL-style energy
// counters, and a first-order thermal model with temperature-dependent
// leakage.
//
// # Execution model
//
// Time is virtual. Worker goroutines enroll on simulated cores and charge
// work to them (Execute, Atomic, SpinUntil, IdleUntil); the charging call
// blocks while a single engine goroutine advances virtual time in
// variable-size steps. A step never crosses a work-item completion or a
// ticker deadline, so piecewise-constant rate assumptions are exact. The
// engine only advances when every enrolled core is parked in one of the
// blocking calls, which makes the simulation independent of the host's
// core count and (modulo Go scheduling of work stealing) repeatable.
//
// Host-side execution between charging calls costs zero virtual time by
// design: the simulated machine accounts only for modeled work.
package machine

import (
	"fmt"
	"time"

	"repro/internal/units"
)

// MemParams models the shared memory subsystem of one socket, after the
// outstanding-references model of Mandel, Fowler and Porterfield
// (ISPASS 2010, paper reference [10]): bandwidth grows with concurrent
// references up to a knee, beyond which bandwidth plateaus and latency
// worsens.
type MemParams struct {
	// BandwidthPerSocket is the plateau bandwidth of one socket.
	BandwidthPerSocket units.BytesPerSecond
	// KneeRefs is the number of outstanding references at which the
	// socket's bandwidth saturates. One reference stream is worth
	// BandwidthPerSocket/KneeRefs bytes per second.
	KneeRefs int
	// MaxRefsPerCore bounds a single core's outstanding references
	// (line-fill buffers), capping per-core bandwidth.
	MaxRefsPerCore int
	// OversubPenalty is the fractional capacity degradation per unit of
	// oversubscription beyond the knee: effective capacity is
	// C / (1 + OversubPenalty × (refs/knee − 1)) when refs > knee.
	OversubPenalty float64
}

// PerRefBandwidth returns the bandwidth carried by one reference stream.
func (m MemParams) PerRefBandwidth() units.BytesPerSecond {
	if m.KneeRefs <= 0 {
		return m.BandwidthPerSocket
	}
	return m.BandwidthPerSocket / units.BytesPerSecond(m.KneeRefs)
}

// MaxCoreBandwidth returns the bandwidth cap of a single core.
func (m MemParams) MaxCoreBandwidth() units.BytesPerSecond {
	return m.PerRefBandwidth() * units.BytesPerSecond(m.MaxRefsPerCore)
}

// PowerParams is the analytic power model of one socket. All per-core
// figures are at nominal frequency and the leakage reference temperature;
// the thermal model scales total socket power with temperature.
//
// Calibration (DESIGN.md §5): 16 compute-bound threads ≈ 150 W total,
// memory-stalled cores pull an app like mergesort down to ~60 W, a
// duty-cycle-throttled spinner saves ≈3 W versus an active core, and
// OS-parked threads save a further ≈2.5 W each versus throttled spinners.
type PowerParams struct {
	// UncoreBase is the always-on per-socket power (LLC, ring, memory
	// controller at idle, fixed leakage).
	UncoreBase units.Watts
	// CoreActive is the power of a core retiring instructions at full
	// duty cycle.
	CoreActive units.Watts
	// CoreStall is the power of a core stalled on memory with no
	// compute overlap.
	CoreStall units.Watts
	// CoreSpin is the power of a core spinning at full duty cycle.
	CoreSpin units.Watts
	// CoreSpinFloor is the asymptotic spin power as duty cycle goes to
	// zero; spin power interpolates linearly in duty between the floor
	// and CoreSpin.
	CoreSpinFloor units.Watts
	// CoreParked is the power of an enrolled but OS-parked (deep-idle,
	// monitor/mwait) core.
	CoreParked units.Watts
	// CoreUnowned is the power of a core no worker has enrolled on.
	CoreUnowned units.Watts
	// BandwidthMax is the additional uncore power of one socket at full
	// memory-bandwidth utilization; it scales linearly with utilization.
	BandwidthMax units.Watts
}

// ThermalParams is a first-order (single time constant) thermal model per
// socket with temperature-dependent leakage. It reproduces the paper's
// §II-C footnote 2 observation that an initially cold chip uses ~3% less
// energy than a warm one for the same run.
type ThermalParams struct {
	// Ambient is the inlet/heatsink reference temperature.
	Ambient units.Celsius
	// Resistance is the steady-state temperature rise per watt of socket
	// power, in °C/W.
	Resistance float64
	// TimeConstant is the exponential time constant of the die+heatsink.
	TimeConstant time.Duration
	// LeakageCoef is the fractional increase in socket power per °C
	// above LeakageRef.
	LeakageCoef float64
	// LeakageRef is the temperature at which PowerParams are calibrated.
	LeakageRef units.Celsius
}

// Config describes a simulated node.
type Config struct {
	Sockets        int
	CoresPerSocket int
	// BaseFreq is the nominal core clock (Turbo disabled, as in the
	// paper's BIOS setup).
	BaseFreq units.Hertz
	// MaxStep caps one engine step of virtual time; spin phases and
	// long homogeneous work advance in at most MaxStep increments
	// between condition polls.
	MaxStep time.Duration
	// VirtualTimeLimit aborts the simulation if virtual time exceeds it,
	// catching scheduling deadlocks in tests. Zero means no limit.
	VirtualTimeLimit time.Duration
	// IdlePace is a host-time sleep applied per engine step while the
	// only thing driving virtual time is a periodic ticker (every core is
	// parked on a condition with no deadline and no work is in flight).
	// Without it, daemons such as the RCR sampler would let virtual time
	// race unboundedly ahead of host-side actions between runs. Zero
	// selects the default; negative disables pacing.
	IdlePace time.Duration

	Mem     MemParams
	Power   PowerParams
	Thermal ThermalParams
	// Turbo configures opportunistic frequency boost; the zero value
	// disables it, matching the paper's BIOS setting (§II).
	Turbo TurboParams
}

// Cores returns the total core count of the node.
func (c Config) Cores() int { return c.Sockets * c.CoresPerSocket }

// SocketOf returns the socket that owns a node-wide core index.
func (c Config) SocketOf(core int) int { return core / c.CoresPerSocket }

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Sockets <= 0:
		return fmt.Errorf("machine: Sockets = %d, must be positive", c.Sockets)
	case c.CoresPerSocket <= 0:
		return fmt.Errorf("machine: CoresPerSocket = %d, must be positive", c.CoresPerSocket)
	case c.BaseFreq <= 0:
		return fmt.Errorf("machine: BaseFreq = %v, must be positive", c.BaseFreq)
	case c.MaxStep <= 0:
		return fmt.Errorf("machine: MaxStep = %v, must be positive", c.MaxStep)
	case c.Mem.BandwidthPerSocket <= 0:
		return fmt.Errorf("machine: Mem.BandwidthPerSocket = %v, must be positive", c.Mem.BandwidthPerSocket)
	case c.Mem.KneeRefs <= 0:
		return fmt.Errorf("machine: Mem.KneeRefs = %d, must be positive", c.Mem.KneeRefs)
	case c.Mem.MaxRefsPerCore <= 0:
		return fmt.Errorf("machine: Mem.MaxRefsPerCore = %d, must be positive", c.Mem.MaxRefsPerCore)
	case c.Mem.OversubPenalty < 0:
		return fmt.Errorf("machine: Mem.OversubPenalty = %g, must be non-negative", c.Mem.OversubPenalty)
	case c.Thermal.TimeConstant <= 0:
		return fmt.Errorf("machine: Thermal.TimeConstant = %v, must be positive", c.Thermal.TimeConstant)
	case c.Thermal.Resistance < 0:
		return fmt.Errorf("machine: Thermal.Resistance = %g, must be non-negative", c.Thermal.Resistance)
	}
	return nil
}

// M620 returns the configuration of the paper's test platform: a Dell
// M620 blade with two Xeon E5-2680 packages (8 cores each) at 2.7 GHz
// with Turbo Boost disabled, calibrated per DESIGN.md §5.
func M620() Config {
	return Config{
		Sockets:        2,
		CoresPerSocket: 8,
		BaseFreq:       2.7 * units.GHz,
		MaxStep:        time.Millisecond,
		IdlePace:       defaultIdlePace,
		Mem: MemParams{
			// ~2/3 of the E5-2680's theoretical 51.2 GB/s per socket,
			// a realistic achievable stream bandwidth.
			BandwidthPerSocket: 34e9,
			KneeRefs:           28,
			MaxRefsPerCore:     10,
			OversubPenalty:     0.08,
		},
		Power: PowerParams{
			UncoreBase:    17.5,
			CoreActive:    7.2,
			CoreStall:     1.6,
			CoreSpin:      7.0,
			CoreSpinFloor: 3.7,
			CoreParked:    1.4,
			CoreUnowned:   1.1,
			BandwidthMax:  6.0,
		},
		Thermal: ThermalParams{
			Ambient:      25,
			Resistance:   0.60,
			TimeConstant: 40 * time.Second,
			LeakageCoef:  0.0011,
			LeakageRef:   40,
		},
	}
}

// Laptop returns a small single-socket configuration (4 cores, 2.4 GHz,
// one memory channel's worth of bandwidth) for users who want the
// library's measurement and throttling stack on a modest simulated
// machine rather than the paper's blade.
func Laptop() Config {
	cfg := M620()
	cfg.Sockets = 1
	cfg.CoresPerSocket = 4
	cfg.BaseFreq = 2.4 * units.GHz
	cfg.Mem.BandwidthPerSocket = 17e9
	cfg.Mem.KneeRefs = 14
	cfg.Power.UncoreBase = 6
	cfg.Power.CoreActive = 5.5
	cfg.Power.CoreSpin = 5.2
	cfg.Power.CoreSpinFloor = 2.6
	cfg.Thermal.Resistance = 1.8
	cfg.Thermal.TimeConstant = 15 * time.Second
	cfg.Turbo = DefaultTurbo()
	return cfg
}
