package machine

import (
	"fmt"
	"math"
	"time"

	"repro/internal/units"
)

// never is a sentinel "no deadline" duration.
const never = time.Duration(math.MaxInt64)

// defaultIdlePace is the host sleep per ticker-only engine step (see
// Config.IdlePace).
const defaultIdlePace = 200 * time.Microsecond

// engine is the single goroutine that advances virtual time. It runs until
// the machine is stopped. See the package comment and docs/engine.md for
// the execution model.
func (m *Machine) engine() {
	defer close(m.engineDone)
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.stopped {
			return
		}
		if m.running > 0 {
			// Some owner is executing host code; virtual time is frozen.
			m.engCond.Wait()
			continue
		}
		// Every enrolled core is blocked in a charging call. First wake
		// any waiter whose condition is already satisfied.
		if m.wakeReadyLocked() {
			continue
		}
		if m.held > 0 {
			// A Hold has the clock parked: zero-time activity (wakes on
			// already-satisfied conditions, enrolment, task pickup) still
			// proceeds above, but time never advances and tickers never
			// fire until the hold is released.
			m.engCond.Wait()
			continue
		}
		m.applyFrequencyRequestsLocked()
		dt, tickerOnly, ok := m.planStepLocked()
		if !ok {
			// Only condition waits remain (no demand, no deadlines, no
			// tickers): time cannot meaningfully advance. Sleep until a
			// host-side Kick or a state change.
			if m.kicked {
				m.kicked = false
				continue // re-poll conditions once after a kick
			}
			m.engCond.Wait()
			continue
		}
		if tickerOnly {
			// Only a periodic ticker is driving time: pace the advance in
			// host time so virtual time cannot race unboundedly ahead of
			// host-side actions (see Config.IdlePace).
			pace := m.cfg.IdlePace
			if pace == 0 {
				pace = defaultIdlePace
			}
			if pace > 0 {
				m.mu.Unlock()
				time.Sleep(pace)
				m.mu.Lock()
				// State may have changed during the sleep; recompute. The
				// kick is consumed here: the re-plan it asked for is the
				// continue itself. Leaving it set would livelock the
				// ticker-only path (plan, sleep, see the stale kick,
				// discard the plan, forever).
				if m.running > 0 || m.stopped || m.kicked || m.held > 0 {
					m.kicked = false
					continue
				}
			}
		}
		m.kicked = false
		m.advanceLocked(dt)
		m.fireTickersLocked()
		m.wakeReadyLocked()
		if m.cfg.VirtualTimeLimit > 0 && m.now > m.cfg.VirtualTimeLimit {
			m.abortLocked(fmt.Errorf("machine: virtual time %v exceeded watchdog limit %v", m.now, m.cfg.VirtualTimeLimit))
		}
	}
}

// wakeReadyLocked wakes every waiting core whose condition is true or
// whose deadline has been reached. It reports whether any core was woken.
// Conditions are arbitrary host functions, so the cores carrying one
// (m.condWaiters) are polled each pass; pure deadline sleeps cost nothing
// until the deadline heap's front comes due.
func (m *Machine) wakeReadyLocked() bool {
	woke := false
	for i := 0; i < len(m.condWaiters); {
		c := m.condWaiters[i]
		if c.cond() {
			m.wakeLocked(c, wakeMsg{condMet: true}) // removes condWaiters[i]
			woke = true
			continue
		}
		i++
	}
	for len(m.dlHeap) > 0 && m.now >= m.dlHeap[0].deadline {
		m.wakeLocked(m.dlHeap[0], wakeMsg{})
		woke = true
	}
	return woke
}

// wakeLocked transitions a blocked core back to host execution.
func (m *Machine) wakeLocked(c *core, msg wakeMsg) {
	m.unindexBlockedLocked(c)
	c.state = coreRunning
	c.cond = nil
	c.deadline = 0
	m.running++
	c.wake <- msg
}

// planStepLocked computes per-core progress rates for the next step and
// the step length: the time to the earliest work completion, ticker
// deadline or wait deadline, capped by MaxStep while demand exists. It
// returns ok=false when nothing can advance time (pure condition waits);
// tickerOnly=true when the step exists solely to reach a ticker deadline.
// It reads only the incremental indexes (busy lists, line groups, event
// heaps) — never the full core array.
func (m *Machine) planStepLocked() (dt time.Duration, tickerOnly, ok bool) {
	earliest := never
	hasDemand := m.totBusy > 0 || m.totAtomic > 0
	hasDeadline := len(m.dlHeap) > 0

	// Per-socket Turbo boost from current occupancy (busy + atomic
	// cores); constant across the step because occupancy only changes at
	// completions, which bound the step.
	for sock := range m.socks {
		m.stepBoost[sock] = m.cfg.Turbo.boostFor(m.socks[sock].occupied(), m.cfg.CoresPerSocket)
	}

	// Memory-contended busy cores, socket by socket. The busy lists are
	// id-ordered, so demand vectors match the order the old full scans
	// produced and the allocator's arithmetic is unchanged.
	for sock := range m.socks {
		busy := m.socks[sock].busy
		if len(busy) == 0 {
			m.stepRefs[sock] = 0
			m.stepUtil[sock] = 0
			continue
		}
		demands := m.demandScratch[:0]
		for _, c := range busy {
			demands = append(demands, c.bwDemand(m.cfg, m.freqScale[sock]*m.stepBoost[sock]))
		}
		m.demandScratch = demands[:0]
		grants, refs, util := m.cfg.Mem.allocateInto(demands, &m.allocScratch)
		m.stepRefs[sock] = refs
		m.stepUtil[sock] = util
		for i, c := range busy {
			cycleRate := float64(m.cfg.BaseFreq) * c.duty * m.freqScale[sock] * m.stepBoost[sock]
			var opsRate, bytesRate float64
			switch {
			case c.work.Ops > 0 && c.work.Bytes > 0:
				bytesPerOp := c.work.Bytes / c.work.Ops
				opsRate = cycleRate
				if g := grants[i] / bytesPerOp; g < opsRate {
					opsRate = g
				}
				bytesRate = opsRate * bytesPerOp
			case c.work.Ops > 0:
				opsRate = cycleRate
			default:
				bytesRate = grants[i]
			}
			c.stepOpsRate, c.stepBytesRate = opsRate, bytesRate
			if cycleRate > 0 {
				c.stepActiveFrac = opsRate / cycleRate
			} else {
				c.stepActiveFrac = 0
			}
			t := never
			if c.remOps > 0 && opsRate > 0 {
				t = secondsToDuration(c.remOps / opsRate)
			} else if c.remBytes > 0 && bytesRate > 0 {
				t = secondsToDuration(c.remBytes / bytesRate)
			}
			if t == never {
				// A busy core that can make no progress is a model bug
				// (capacity is validated positive).
				m.abortLocked(fmt.Errorf("machine: core %d stalled with no progress possible", c.id))
				return 0, false, false
			}
			if t < earliest {
				earliest = t
			}
		}
	}

	// Atomic (contended cache line) cores, grouped by line. Service is
	// serialized across the group and each operation's cost grows with
	// the number of contenders (coherence ping-pong). The groups are
	// maintained incrementally at state transitions.
	for line, g := range m.lineGroups {
		k := float64(len(g.members))
		mult := 1 + line.pingpong*(k-1)
		for _, c := range g.members {
			rate := float64(m.cfg.BaseFreq) * c.duty * m.freqScale[c.socket] * m.stepBoost[c.socket] / (line.costCycles * mult * k)
			c.stepOpsRate = rate
			if rate <= 0 {
				m.abortLocked(fmt.Errorf("machine: core %d atomic rate is zero", c.id))
				return 0, false, false
			}
			if t := secondsToDuration(c.remAtomics / rate); t < earliest {
				earliest = t
			}
		}
	}

	// Ticker and wait deadlines: the earliest of each is the front of its
	// min-heap.
	if len(m.tickerHeap) > 0 {
		if d := m.tickerHeap[0].next - m.now; d < earliest {
			earliest = d
		}
	}
	if hasDeadline {
		if d := m.dlHeap[0].deadline - m.now; d < earliest {
			earliest = d
		}
	}

	if earliest == never {
		return 0, false, false
	}
	if hasDemand && earliest > m.cfg.MaxStep {
		earliest = m.cfg.MaxStep
	}
	// Never jump past the watchdog limit: land just beyond it so the
	// post-step check fires before any deadline at or after the limit.
	if m.cfg.VirtualTimeLimit > 0 {
		if rem := m.cfg.VirtualTimeLimit - m.now + time.Nanosecond; rem < earliest {
			earliest = rem
		}
	}
	if earliest < time.Nanosecond {
		earliest = time.Nanosecond
	}
	return earliest, !hasDemand && !hasDeadline, true
}

// advanceLocked moves virtual time forward by dt: integrates energy and
// temperature with the rates computed by planStepLocked, progresses work,
// and wakes cores whose work completed.
func (m *Machine) advanceLocked(dt time.Duration) {
	secs := dt.Seconds()

	// Energy and thermal integration per socket, using pre-progress
	// states (rates are constant across the step by construction). Every
	// core contributes power whatever its state, so this walks each
	// socket's contiguous core range once (in id order — the same
	// summation order as ever).
	for sock := 0; sock < m.cfg.Sockets; sock++ {
		p := m.cfg.Power.UncoreBase
		for _, c := range m.coresOf(sock) {
			p += m.cfg.Power.corePower(c.state, c.duty, m.freqScale[sock]*m.stepBoost[sock], c.effActiveFrac())
		}
		p += m.cfg.Power.BandwidthMax * units.Watts(m.stepUtil[sock])
		p = units.Watts(float64(p) * m.cfg.Thermal.leakageFactor(m.temp[sock]))
		e := float64(p) * secs
		m.energy[sock] += e
		if err := m.msrFile.AddPackageEnergy(sock, units.Joules(e)); err != nil {
			panic(err) // socket indices are internally consistent
		}
		m.temp[sock] = m.cfg.Thermal.step(m.temp[sock], p, dt)
		m.stepPower[sock] = p
	}
	// Mirror temperatures into IA32_THERM_STATUS once cumulative drift
	// since the last flush exceeds the register's useful resolution.
	for sock := range m.temp {
		if math.Abs(float64(m.temp[sock]-m.flushedTemp[sock])) > 0.25 {
			m.flushThermLocked()
			break
		}
	}

	// Progress work and cycle counters; wake completed cores. This walks
	// the stable core array (not the mutable busy lists) because
	// completions unindex cores mid-loop.
	for _, c := range m.cores {
		switch c.state {
		case coreBusy:
			c.remOps -= c.stepOpsRate * secs
			c.remBytes -= c.stepBytesRate * secs
			c.cycles += float64(m.cfg.BaseFreq) * c.duty * m.freqScale[c.socket] * m.stepBoost[c.socket] * secs
			if c.remOps <= 0.5 && c.remBytes <= 0.5 {
				m.completeLocked(c)
			}
		case coreAtomic:
			c.remAtomics -= c.stepOpsRate * secs
			c.cycles += float64(m.cfg.BaseFreq) * c.duty * m.freqScale[c.socket] * m.stepBoost[c.socket] * secs
			if c.remAtomics <= 1e-6 {
				m.completeLocked(c)
			}
		case coreSpinWait:
			c.cycles += float64(m.cfg.BaseFreq) * c.duty * m.freqScale[c.socket] * secs
		}
	}

	m.now += dt
	m.updateSnapLocked()
	if m.stepHook != nil {
		m.stepHook(m.stepRecordLocked(dt))
	}
}

// coresOf returns socket sock's cores, which are contiguous (and
// id-ordered) in m.cores.
func (m *Machine) coresOf(sock int) []*core {
	return m.cores[sock*m.cfg.CoresPerSocket : (sock+1)*m.cfg.CoresPerSocket]
}

// completeLocked finishes a core's current work item and resumes its
// owner.
func (m *Machine) completeLocked(c *core) {
	c.remOps, c.remBytes, c.remAtomics = 0, 0, 0
	if err := m.msrFile.AddCoreCycles(c.id, c.cycles); err != nil {
		panic(err) // core ids are internally consistent
	}
	c.cycles = 0
	m.wakeLocked(c, wakeMsg{}) // unindexes first, so c.line must still be set
	c.line = nil
}

// fireTickersLocked runs every ticker whose deadline has arrived, passing
// each the same post-step snapshot (a reused buffer — see TickerFunc).
//
// Step planning never advances past a pending ticker deadline (the heap
// front bounds every step, and AddTicker kicks a re-plan), so each due
// ticker fires exactly once per crossed deadline. If a step nonetheless
// overshoots several periods, the missed deadlines are coalesced into the
// single fire and counted on the ticker rather than replayed against one
// stale snapshot.
//
// Callbacks run with the machine lock released so they may call
// non-blocking Machine methods — in particular RemoveTicker, including on
// themselves. Virtual time cannot move meanwhile (the engine goroutine is
// the one here), so the snapshot stays consistent for the duration of the
// fire. After each callback the loop revalidates against the heap: the
// fired ticker is re-armed only if it is still registered (heapIdx >= 0),
// and the sweep stops if the machine was stopped.
func (m *Machine) fireTickersLocked() {
	if len(m.tickerHeap) == 0 || m.tickerHeap[0].next > m.now {
		return
	}
	m.tickSnap.Now = m.lastSnap.Now
	if len(m.tickSnap.Sockets) != len(m.lastSnap.Sockets) {
		m.tickSnap.Sockets = make([]SocketSnapshot, len(m.lastSnap.Sockets))
	}
	copy(m.tickSnap.Sockets, m.lastSnap.Sockets)
	for len(m.tickerHeap) > 0 && m.tickerHeap[0].next <= m.now {
		tk := m.tickerHeap[0]
		m.mu.Unlock()
		tk.fn(m.now, &m.tickSnap)
		m.mu.Lock()
		if m.stopped {
			return
		}
		if tk.heapIdx < 0 {
			continue // removed during its own callback
		}
		tk.next += tk.period
		if tk.next <= m.now {
			// Overshoot: coalesce the deadlines this step skipped.
			n := (m.now-tk.next)/tk.period + 1
			tk.coalesced += uint64(n)
			tk.next += time.Duration(n) * tk.period
		}
		m.tkFixLocked(tk.heapIdx)
	}
}

// updateSnapLocked refreshes the cached instantaneous snapshot from the
// values computed in the current step.
func (m *Machine) updateSnapLocked() {
	if len(m.lastSnap.Sockets) != m.cfg.Sockets {
		m.lastSnap.Sockets = make([]SocketSnapshot, m.cfg.Sockets)
	}
	m.lastSnap.Now = m.now
	for sock := 0; sock < m.cfg.Sockets; sock++ {
		grantTotal := 0.0
		for _, c := range m.socks[sock].busy {
			grantTotal += c.stepBytesRate
		}
		m.lastSnap.Sockets[sock] = SocketSnapshot{
			Power:                m.stepPower[sock],
			Energy:               units.Joules(m.energy[sock]),
			Temperature:          m.temp[sock],
			OutstandingRefs:      m.stepRefs[sock],
			Bandwidth:            units.BytesPerSecond(grantTotal),
			BandwidthUtilization: m.stepUtil[sock],
		}
	}
}

// secondsToDuration converts seconds to a duration, saturating at never.
func secondsToDuration(s float64) time.Duration {
	if s <= 0 {
		return 0
	}
	if s >= float64(never)/float64(time.Second) {
		return never
	}
	return time.Duration(s * float64(time.Second))
}
